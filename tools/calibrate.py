#!/usr/bin/env python3
"""Fits the per-device calibration constants (GPC_CALIB lines in
src/arch/devices.cpp) so the measured synthetic benchmarks land on the
paper's Figure 1 / Figure 2 achieved-peak values.

Each constant scales one bound of the timing model linearly when that bound
is active, so a fixed-point update (eff *= target/measured) converges in a
few rounds.

Usage: python3 tools/calibrate.py [--rounds N] [--build-dir build]
"""
import argparse
import re
import subprocess
import sys

DEVICES = "src/arch/devices.cpp"


def run(cmd):
    return subprocess.run(cmd, shell=True, check=True,
                          capture_output=True, text=True).stdout


def measured_values(build_dir):
    """Returns {(device, knob): measured} from the fig01/fig02 binaries."""
    out = {}
    bw = run(f"./{build_dir}/bench/fig01_peak_bandwidth")
    for line in bw.splitlines():
        m = re.match(r"\| (GTX\d+) *\| *[\d.]+ *\| *([\d.]+) *\| *([\d.]+)", line)
        if m:
            out[(m.group(1), "dram_cuda")] = float(m.group(2))
            out[(m.group(1), "dram_opencl")] = float(m.group(3))
    fl = run(f"./{build_dir}/bench/fig02_peak_flops")
    for line in fl.splitlines():
        m = re.match(r"\| (GTX\d+) *\| [^|]+\| *[\d.]+ *\| *([\d.]+) *\| *([\d.]+)",
                     line)
        if m:
            out[(m.group(1), "flop_cuda")] = float(m.group(2))
            out[(m.group(1), "flop_opencl")] = float(m.group(3))
    return out


CALIB_RE = re.compile(
    r"= ([\d.]+);(\s*// GPC_CALIB (GTX\d+) (\w+) target ([\d.]+))")


def update_constants(measured):
    src = open(DEVICES).read()
    changed = []

    def repl(m):
        old = float(m.group(1))
        device, knob, target = m.group(3), m.group(4), float(m.group(5))
        got = measured.get((device, knob))
        if not got:
            return m.group(0)
        new = old * target / got
        changed.append((device, knob, old, new, got, target))
        return f"= {new:.4f};{m.group(2)}"

    src = CALIB_RE.sub(repl, src)
    open(DEVICES, "w").write(src)
    return changed


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--build-dir", default="build")
    args = ap.parse_args()

    for rnd in range(args.rounds):
        run(f"cmake --build {args.build_dir}")
        measured = measured_values(args.build_dir)
        changed = update_constants(measured)
        print(f"round {rnd}:")
        worst = 0.0
        for device, knob, old, new, got, target in changed:
            err = abs(got - target) / target
            worst = max(worst, err)
            print(f"  {device:7s} {knob:12s} measured={got:9.2f} "
                  f"target={target:9.2f} err={100*err:5.2f}%  "
                  f"eff {old:.4f} -> {new:.4f}")
        if worst < 0.005:
            print("converged")
            break
    run(f"cmake --build {args.build_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
