# ctest runner (see bench/CMakeLists.txt, tests "prof_trace_schema" and
# "aiwc_trace_schema"): runs a real multi-launch benchmark with profiling
# enabled, then schema-checks the exported trace.json/counters.jsonl (and,
# with -DAIWC=1, aiwc.jsonl) with tools/validate_trace.py.
#
# Expects -DBENCH_BIN, -DVALIDATOR, -DPYTHON, -DOUT_DIR; optional -DAIWC=1
# arms GPC_AIWC so every launch carries workload-characterization features;
# optional -DEXPECT_SERVE=1 makes the validator require "type":"serve"
# records in counters.jsonl (the serve_trace_schema ctest).
foreach(var BENCH_BIN VALIDATOR PYTHON OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "prof_trace_check.cmake: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")

set(bench_env GPC_PROF=trace,counters)
if(AIWC)
  list(APPEND bench_env GPC_AIWC=1)
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env ${bench_env}
          "${BENCH_BIN}" --quick --prof-out "${OUT_DIR}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "benchmark under GPC_PROF failed (rc=${bench_rc})")
endif()

if(AIWC AND NOT EXISTS "${OUT_DIR}/aiwc.jsonl")
  message(FATAL_ERROR "GPC_AIWC=1 run did not export ${OUT_DIR}/aiwc.jsonl")
endif()

set(validator_args)
if(EXPECT_SERVE)
  list(APPEND validator_args --expect-serve)
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${OUT_DIR}" ${validator_args}
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "validate_trace.py rejected the exports (rc=${validate_rc})")
endif()
