#!/usr/bin/env bash
# Re-baselines the serving-layer perf-smoke floor
# (bench/serve_latency_floor.json, checked by the serve_latency_floor
# ctest). Run this ON A QUIET MACHINE after an *intentional* change to
# gpc::serve performance; the stored floor is 80% of the best of three
# measurements, so machine noise does not turn into spurious CI failures.
#
#   $ tools/rebaseline_serve_floor.sh [build-dir]     # default: ./build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BIN="$BUILD/bench/extra_serve_latency"
OUT="bench/serve_latency_floor.json"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD --target extra_serve_latency)" >&2
  exit 2
fi

# Best of three: the floor guards against regressions, so it should be
# derived from what the machine can actually do, not from a noisy run.
best=""
for i in 1 2 3; do
  "$BIN" --quick --write-floor="$OUT.try$i" >/dev/null
  m=$(sed -n 's/.*"measured_launches_per_min": \([0-9.]*\).*/\1/p' "$OUT.try$i")
  echo "run $i: $m launches/min"
  if [[ -z "$best" ]] || awk "BEGIN{exit !($m > $best)}"; then
    best="$m"
    mv "$OUT.try$i" "$OUT"
  else
    rm "$OUT.try$i"
  fi
done

echo "baseline: $best launches/min -> floor $(sed -n 's/.*"floor_launches_per_min": \([0-9.]*\).*/\1/p' "$OUT") ($OUT)"
