// gpcc — compiler explorer for the benchmark kernels.
//
//   gpcc list
//   gpcc <kernel> [--toolchain=cuda|opencl] [--stage=ptx|exe] [--histogram]
//
// Dumps the PTX-level or executable (post-PTXAS) disassembly of any
// benchmark kernel under either front end, optionally with its Table V
// style instruction histogram — the tool behind the paper's §IV-B.4
// methodology of "looking into intermediate codes".
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench_kernels/kernels.h"
#include "common/error.h"
#include "compiler/pipeline.h"
#include "ir/function.h"

using namespace gpc;

namespace {

std::map<std::string, kernel::KernelDef> kernel_table() {
  using namespace bench::kernels;
  std::map<std::string, kernel::KernelDef> t;
  t.emplace("devicememory", devicememory(16));
  t.emplace("maxflops", maxflops(16, true));
  t.emplace("sobel", sobel(true, 16));
  t.emplace("sobel_global", sobel(false, 16));
  t.emplace("tranp", tranp(true, 16));
  t.emplace("reduce", reduce_stage1(256));
  t.emplace("mxm", mxm(16));
  t.emplace("stencil2d", stencil2d(16));
  t.emplace("fdtd", fdtd(kernel::Unroll::cuda_only(9), kernel::Unroll::both(-1)));
  t.emplace("fft", fft_forward());
  t.emplace("md", md(16));
  t.emplace("spmv", spmv_scalar());
  t.emplace("spmv_vector", spmv_vector(128));
  t.emplace("scan", scan_block(256));
  t.emplace("sortnw", sortnw_shared(128));
  t.emplace("dxtc", dxtc());
  t.emplace("radix", radix_block_sort(256, 2));
  t.emplace("bfs", bfs_expand());
  return t;
}

void print_histogram(const ir::Function& fn) {
  const auto h = ir::Histogram::of(fn);
  const ir::InstrClass classes[] = {
      ir::InstrClass::Arithmetic, ir::InstrClass::LogicShift,
      ir::InstrClass::DataMovement, ir::InstrClass::FlowControl,
      ir::InstrClass::Synchronization};
  for (ir::InstrClass c : classes) {
    std::printf("%-16s %4d\n", ir::to_string(c), h.class_total(c));
    for (const auto& [m, n] : h.mnemonics(c)) {
      std::printf("    %-12s %4d\n", m.c_str(), n);
    }
  }
  std::printf("%-16s %4d\n", "TOTAL", h.total());
}

}  // namespace

int main(int argc, char** argv) {
  auto table = kernel_table();
  if (argc < 2 || std::strcmp(argv[1], "list") == 0 ||
      std::strcmp(argv[1], "--help") == 0) {
    std::printf("usage: gpcc <kernel> [--toolchain=cuda|opencl] "
                "[--stage=ptx|exe] [--histogram]\nkernels:\n");
    for (const auto& [name, def] : table) {
      std::printf("  %s\n", name.c_str());
    }
    return argc < 2 ? 1 : 0;
  }

  const std::string name = argv[1];
  auto it = table.find(name);
  if (it == table.end()) {
    std::fprintf(stderr, "unknown kernel '%s' (try: gpcc list)\n",
                 name.c_str());
    return 1;
  }

  arch::Toolchain tc = arch::Toolchain::Cuda;
  bool want_ptx = true;
  bool want_hist = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--toolchain=opencl") == 0) {
      tc = arch::Toolchain::OpenCl;
    } else if (std::strcmp(argv[i], "--toolchain=cuda") == 0) {
      tc = arch::Toolchain::Cuda;
    } else if (std::strcmp(argv[i], "--stage=exe") == 0) {
      want_ptx = false;
    } else if (std::strcmp(argv[i], "--stage=ptx") == 0) {
      want_ptx = true;
    } else if (std::strcmp(argv[i], "--histogram") == 0) {
      want_hist = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  const auto ck = compiler::compile(it->second, tc);
  const ir::Function& fn = want_ptx ? ck.ptx : ck.fn;
  std::printf("// %s | %s | %s stage | regs=%d shared=%dB local=%dB/thread\n",
              name.c_str(), arch::to_string(tc), want_ptx ? "PTX" : "executable",
              ck.reg_estimate, ck.shared_bytes(), ck.local_bytes_per_thread());
  if (want_hist) {
    print_histogram(fn);
  } else {
    std::printf("%s", ir::to_text(fn).c_str());
  }
  return 0;
}
