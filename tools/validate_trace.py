#!/usr/bin/env python3
"""Schema validation for gpc::prof exports (DESIGN.md §11).

Usage:
    validate_trace.py PROF_DIR          # expects PROF_DIR/trace.json and
                                        # PROF_DIR/counters.jsonl; validates
                                        # PROF_DIR/aiwc.jsonl when present
    validate_trace.py trace.json [counters.jsonl]

Checks, stdlib only (run as a ctest, label "prof"):
  * trace.json is valid JSON: {"displayTimeUnit", "traceEvents": [...]} with
    only known event types (ph X/M/i, plus "C" AIWC counter tracks on device
    pids), known track pids (0 host, 1 CUDA device, 2 OpenCL device) and
    non-negative ts/dur;
  * host spans are properly nested per (pid, tid) — RAII spans cannot
    partially overlap;
  * device-track slices do not overlap per pid (a device runs one grid at a
    time) and every "kernel" slice carries the timing-breakdown args
    (runtime, launch_us/issue_us/dram_us, occupancy, limiter);
  * counters.jsonl "type":"serve" lines (gpc::serve, DESIGN.md §17) carry
    one record per served job: a terminal class in {OK, DEG, ABT, SHED},
    kernel/device provenance, shard >= -1 (-1 = shed at admission, never
    enqueued), batch >= 1, queue_depth >= 0, a boolean cache_hit, and
    0 <= queue_ns <= total_ns. Serve lines are excluded from the
    launch-line count below; --expect-serve makes their absence an error
    (the serve_trace_schema ctest);
  * the remaining counters.jsonl lines are valid JSON with the full
    BlockStats counter set
    (21 counters) plus the dispatch/instruction-mix/fusion fields
    (dispatch mode, per-XKind issue mix, fused execution + static census)
    and the cohort-scheduler divergence diagnostics (splits, merges,
    max_live, depth_max). Every launch record must carry all of these —
    divergent launches included (records from split warps used to omit the
    dispatch/static-fusion keys, which this check now rejects) — and the
    line count equals the trace's kernel-slice count when both files come
    from the same run;
  * aiwc.jsonl lines (gpc::aiwc, DESIGN.md §16) carry the full finalize()
    feature vector with entropies inside their information-theoretic bounds
    (0 <= H <= log2(n) over n outcomes, decimation levels non-increasing),
    fractions in [0, 1], and the raw histograms summing to the record's own
    totals (occupancy -> issues, reuse + cold -> global accesses, stride ->
    global instructions). When counters.jsonl from the same run covers the
    same launches, each record's total issues must equal the counter
    stream's per-XKind issue sum — the two exporters describe one stream.

Exit code 0 on success, 1 with per-finding messages on stderr otherwise.
"""
import json
import math
import os
import re
import sys

TRACK_NAMES = {0: "host", 1: "CUDA device", 2: "OpenCL device"}
KERNEL_ARGS = (
    "device", "runtime", "blocks", "tpb",
    "launch_us", "issue_us", "dram_us",
    "latency_factor", "occupancy", "limiter",
)
COUNTER_KEYS = (
    "alu_issues", "ialu_issues", "agu_issues", "mad_issues", "mul_issues",
    "sfu_issues", "branch_issues", "mem_issues", "shared_cycles",
    "const_cycles", "barrier_count", "dram_read_bytes", "dram_write_bytes",
    "dram_transactions", "useful_global_bytes", "local_bytes",
    "tex_requests", "tex_hits", "l1_hits", "atomic_serial_ops", "flops",
)
JSONL_KEYS = (
    "kernel", "runtime", "device", "blocks", "tpb", "seconds", "launch_s",
    "issue_s", "dram_s", "latency_factor", "occupancy", "resident_warps",
    "limiter", "counters", "dispatch", "xkind_issues", "fused_groups",
    "fused_exec", "static_fusion", "cohort",
)
COHORT_KEYS = ("splits", "merges", "max_live", "depth_max")
DISPATCH_MODES = ("switch", "threaded", "simd")
XKIND_KEYS = (
    "bra", "exit", "bar", "ld_param", "mem_global", "mem_shared",
    "mem_local", "mem_const", "mem_tex", "read_sreg", "mov", "cvt",
    "setp", "selp", "float_op", "int_op",
)
FUSED_KEYS = ("addr_gen", "shl_add", "mul_add", "setp_bra")
# aiwc.jsonl: finalize()'s fixed metric order (aiwc/aiwc.h) and record keys.
FEATURE_KEYS = (
    "opcode_unique", "opcode_entropy", "flop_issue_fraction",
    "fused_idiom_density", "branch_entropy", "branch_divergence_rate",
    "simt_efficiency", "workgroup_utilization", "barriers_per_warp",
    "global_unique_words", "shared_unique_words",
) + tuple("mem_entropy_l%d" % i for i in range(10)) + (
    "reuse_cold_fraction", "reuse_median_log2",
    "stride_broadcast_fraction", "stride_unit_fraction",
    "stride_strided_fraction", "stride_gather_fraction",
)
FRACTION_KEYS = (
    "flop_issue_fraction", "fused_idiom_density", "branch_entropy",
    "branch_divergence_rate", "simt_efficiency", "workgroup_utilization",
    "reuse_cold_fraction", "stride_broadcast_fraction",
    "stride_unit_fraction", "stride_strided_fraction",
    "stride_gather_fraction",
)
AIWC_KEYS = (
    "kernel", "runtime", "device", "blocks", "tpb", "warp_size", "warps",
    "features", "histograms", "totals", "digest",
)
AIWC_TOTAL_KEYS = (
    "issues", "lanes", "branch_exec", "branch_splits", "global_accesses",
    "shared_accesses", "global_instrs", "global_unique_words",
    "shared_unique_words", "reuse_cold",
)
AIWC_COUNTER_ARGS = (
    "simt_efficiency", "branch_entropy", "opcode_entropy",
    "mem_entropy_l0", "reuse_cold_fraction",
)
SERVE_KEYS = (
    "job", "class", "kernel", "device", "shard", "batch", "queue_depth",
    "cache_hit", "queue_ns", "total_ns",
)
SERVE_CLASSES = ("OK", "DEG", "ABT", "SHED")
EPS = 1e-6

errors = []


def err(msg):
    errors.append(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_event(i, ev):
    where = "traceEvents[%d]" % i
    if not isinstance(ev, dict):
        err("%s: not an object" % where)
        return None
    ph = ev.get("ph")
    if ph not in ("X", "M", "i", "C"):
        err("%s: unknown ph %r" % (where, ph))
        return None
    if ev.get("pid") not in TRACK_NAMES:
        err("%s: unknown track pid %r" % (where, ev.get("pid")))
        return None
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        err("%s: missing/empty name" % where)
    if ph == "C":
        # AIWC counter track: device pids only, numeric series in args.
        if ev["pid"] == 0:
            err("%s: counter events are device-track only" % where)
        if not is_num(ev.get("ts")) or ev["ts"] < 0:
            err("%s: bad ts %r" % (where, ev.get("ts")))
        args = ev.get("args")
        if not isinstance(args, dict) or not args:
            err("%s: counter event has no args" % where)
        else:
            for key in AIWC_COUNTER_ARGS:
                if not is_num(args.get(key)):
                    err("%s: counter args missing %r" % (where, key))
        return None
    if ph == "M":
        # process_name labels a track; thread_name labels a per-tenant row
        # on a device track (gpc::virt).
        if ev["name"] not in ("process_name", "thread_name") \
                or "name" not in ev.get("args", {}):
            err("%s: metadata event must set args.name" % where)
        elif ev["name"] == "thread_name" and ev["pid"] == 0:
            err("%s: thread_name rows are device-track only" % where)
        return None
    if not is_num(ev.get("ts")) or ev["ts"] < 0:
        err("%s: bad ts %r" % (where, ev.get("ts")))
        return None
    if ph == "i":
        return None
    # ph == "X": complete event.
    if not is_num(ev.get("dur")) or ev["dur"] < 0:
        err("%s: bad dur %r" % (where, ev.get("dur")))
        return None
    if not isinstance(ev.get("cat"), str):
        err("%s: X event missing cat" % where)
        return None
    if ev["cat"] == "kernel":
        args = ev.get("args")
        if not isinstance(args, dict):
            err("%s: kernel slice has no args" % where)
        else:
            for key in KERNEL_ARGS:
                if key not in args:
                    err("%s: kernel args missing %r" % (where, key))
            if args.get("runtime") not in ("CUDA", "OpenCL"):
                err("%s: bad runtime %r" % (where, args.get("runtime")))
            occ = args.get("occupancy")
            if is_num(occ) and not 0 < occ <= 1:
                err("%s: occupancy %r outside (0, 1]" % (where, occ))
    return ev


def check_nesting(track, tid, spans):
    """Spans on one host thread must be disjoint or properly nested."""
    spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    stack = []
    for ev in spans:
        end = ev["ts"] + ev["dur"]
        while stack and ev["ts"] >= stack[-1]:
            stack.pop()
        if stack and end > stack[-1]:
            err("%s tid %s: span %r (ts=%s) partially overlaps its parent"
                % (track, tid, ev["name"], ev["ts"]))
            return
        stack.append(end)


def check_device_serial(track, slices):
    """Device slices (launch overhead + kernel) must not overlap."""
    slices.sort(key=lambda e: e["ts"])
    prev_end, prev_name = 0.0, None
    for ev in slices:
        # The exporter rounds to 0.001 us; allow that much slack.
        if ev["ts"] < prev_end - 0.002:
            err("%s: %r (ts=%s) overlaps previous slice %r (ends %s)"
                % (track, ev["name"], ev["ts"], prev_name, prev_end))
            return
        prev_end, prev_name = ev["ts"] + ev["dur"], ev["name"]


def validate_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            err("%s: invalid JSON: %s" % (path, e))
            return 0
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        err("%s: expected object with traceEvents" % path)
        return 0
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        err("%s: bad displayTimeUnit %r" % (path, doc.get("displayTimeUnit")))
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        err("%s: traceEvents empty" % path)
        return 0

    host_spans = {}   # (tid) -> [events]
    device = {}       # pid -> [events]
    kernels = 0
    for i, raw in enumerate(events):
        ev = check_event(i, raw)
        if ev is None:
            continue
        if ev["pid"] == 0:
            host_spans.setdefault(ev["tid"], []).append(ev)
        else:
            device.setdefault(ev["pid"], []).append(ev)
            if ev["cat"] == "kernel":
                kernels += 1
    for tid, spans in host_spans.items():
        check_nesting("host", tid, spans)
    for pid, slices in device.items():
        check_device_serial(TRACK_NAMES[pid], slices)
    if kernels == 0:
        err("%s: no kernel slices on any device track" % path)
    print("%s: %d events, %d kernel slices, %d host threads, %d device tracks"
          % (path, len(events), kernels, len(host_spans), len(device)))
    return kernels


def validate_serve_rec(where, rec):
    """One "type":"serve" line: class/provenance/latency for a served job."""
    for key in SERVE_KEYS:
        if key not in rec:
            err("%s: serve record missing key %r" % (where, key))
    extra = set(rec) - set(SERVE_KEYS) - {"type"}
    if extra:
        err("%s: unknown serve keys %s" % (where, sorted(extra)))
    if rec.get("class") not in SERVE_CLASSES:
        err("%s: bad serve class %r" % (where, rec.get("class")))
    if not isinstance(rec.get("kernel"), str) \
            or not isinstance(rec.get("device"), str):
        err("%s: serve kernel/device must be strings" % where)
    elif not rec["kernel"] and rec.get("class") != "SHED":
        err("%s: empty kernel on a non-SHED serve record" % where)
    for key, lo in (("job", 0), ("shard", -1), ("batch", 1),
                    ("queue_depth", 0), ("queue_ns", 0), ("total_ns", 0)):
        v = rec.get(key)
        if not is_num(v) or v < lo:
            err("%s: serve %r is %r (must be >= %s)" % (where, key, v, lo))
    if not isinstance(rec.get("cache_hit"), bool):
        err("%s: serve cache_hit is %r" % (where, rec.get("cache_hit")))
    if is_num(rec.get("queue_ns")) and is_num(rec.get("total_ns")) \
            and rec["queue_ns"] > rec["total_ns"]:
        err("%s: queue_ns %s exceeds total_ns %s"
            % (where, rec["queue_ns"], rec["total_ns"]))
    # A job shed at admission was never enqueued, so no queue provenance.
    if rec.get("shard") == -1 and rec.get("class") != "SHED":
        err("%s: shard -1 on a non-SHED serve record" % where)


def validate_counters(path, expect_lines):
    n = 0
    serve_n = 0
    recs = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            where = "%s:%d" % (path, lineno)
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                err("%s: invalid JSON: %s" % (where, e))
                continue
            if isinstance(rec, dict) and rec.get("type") == "serve":
                serve_n += 1
                validate_serve_rec(where, rec)
                continue
            n += 1
            recs.append(rec)
            for key in JSONL_KEYS:
                if key not in rec:
                    err("%s: missing key %r" % (where, key))
            if rec.get("runtime") not in ("CUDA", "OpenCL"):
                err("%s: bad runtime %r" % (where, rec.get("runtime")))
            counters = rec.get("counters")
            if not isinstance(counters, dict):
                err("%s: counters is not an object" % where)
                continue
            for key in COUNTER_KEYS:
                v = counters.get(key)
                if not is_num(v) or v < 0:
                    err("%s: counter %r is %r" % (where, key, v))
            extra = set(counters) - set(COUNTER_KEYS)
            if extra:
                err("%s: unknown counters %s" % (where, sorted(extra)))
            if rec.get("dispatch") not in DISPATCH_MODES:
                err("%s: bad dispatch %r" % (where, rec.get("dispatch")))
            for obj_key, keys in (("xkind_issues", XKIND_KEYS),
                                  ("fused_exec", FUSED_KEYS)):
                obj = rec.get(obj_key)
                if not isinstance(obj, dict):
                    err("%s: %s is not an object" % (where, obj_key))
                    continue
                for key in keys:
                    v = obj.get(key)
                    if not is_num(v) or v < 0:
                        err("%s: %s[%r] is %r" % (where, obj_key, key, v))
            sf = rec.get("static_fusion")
            if not isinstance(sf, dict) or not isinstance(
                    sf.get("groups"), dict):
                err("%s: static_fusion malformed" % where)
            elif not all(is_num(sf.get(k)) for k in ("ops", "fused_ops")):
                err("%s: static_fusion ops counts malformed" % where)
            co = rec.get("cohort")
            if not isinstance(co, dict):
                err("%s: cohort is not an object" % where)
            else:
                for key in COHORT_KEYS:
                    v = co.get(key)
                    if not is_num(v) or v < 0:
                        err("%s: cohort[%r] is %r" % (where, key, v))
                extra = set(co) - set(COHORT_KEYS)
                if extra:
                    err("%s: unknown cohort keys %s" % (where, sorted(extra)))
                # A warp can only re-merge after a split, and a split always
                # leaves at least two live cohorts.
                if is_num(co.get("merges")) and is_num(co.get("splits")) \
                        and co["merges"] > 0 and co["splits"] == 0:
                    err("%s: cohort merges without splits" % where)
                if is_num(co.get("splits")) and co["splits"] > 0 \
                        and is_num(co.get("max_live")) and co["max_live"] < 2:
                    err("%s: cohort splits but max_live < 2" % where)
    if n == 0:
        err("%s: no launch records" % path)
    if expect_lines is not None and n != expect_lines:
        err("%s: %d launch lines but trace has %d kernel slices" %
            (path, n, expect_lines))
    print("%s: %d launch records, %d serve records" % (path, n, serve_n))
    return recs, serve_n


def check_entropy(where, name, h, outcomes):
    """0 <= H <= log2(n) for an entropy over n observed outcomes."""
    if not is_num(h):
        err("%s: feature %r is %r" % (where, name, h))
        return
    bound = math.log2(outcomes) if outcomes and outcomes > 0 else 0.0
    if h < -EPS or h > bound + EPS:
        err("%s: %s = %r outside [0, log2(%s) = %.4f]"
            % (where, name, h, outcomes, bound))


def validate_aiwc(path, counter_recs):
    n = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            n += 1
            where = "%s:%d" % (path, lineno)
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                err("%s: invalid JSON: %s" % (where, e))
                continue
            for key in AIWC_KEYS:
                if key not in rec:
                    err("%s: missing key %r" % (where, key))
            if rec.get("runtime") not in ("CUDA", "OpenCL"):
                err("%s: bad runtime %r" % (where, rec.get("runtime")))
            if not re.fullmatch(r"[0-9a-f]{16}", str(rec.get("digest"))):
                err("%s: digest %r is not 16 hex chars"
                    % (where, rec.get("digest")))

            feat = rec.get("features")
            if not isinstance(feat, dict):
                err("%s: features is not an object" % where)
                continue
            missing = [k for k in FEATURE_KEYS if k not in feat]
            extra = set(feat) - set(FEATURE_KEYS)
            if missing:
                err("%s: features missing %s" % (where, missing))
            if extra:
                err("%s: unknown features %s" % (where, sorted(extra)))
            for key in FRACTION_KEYS:
                v = feat.get(key)
                if not is_num(v) or v < -EPS or v > 1 + EPS:
                    err("%s: %s = %r outside [0, 1]" % (where, key, v))
            # Entropy bounds: H over n outcomes cannot exceed log2(n).
            check_entropy(where, "opcode_entropy",
                          feat.get("opcode_entropy"),
                          feat.get("opcode_unique"))
            check_entropy(where, "mem_entropy_l0",
                          feat.get("mem_entropy_l0"),
                          feat.get("global_unique_words"))
            # Decimation merges address groups, so entropy never increases
            # with the level (the AIWC locality curve is non-increasing).
            for lvl in range(1, 10):
                lo = feat.get("mem_entropy_l%d" % lvl)
                hi = feat.get("mem_entropy_l%d" % (lvl - 1))
                if is_num(lo) and is_num(hi) and lo > hi + EPS:
                    err("%s: mem_entropy_l%d (%r) > mem_entropy_l%d (%r)"
                        % (where, lvl, lo, lvl - 1, hi))

            hist = rec.get("histograms")
            tot = rec.get("totals")
            if not isinstance(hist, dict) or not isinstance(tot, dict):
                err("%s: histograms/totals malformed" % where)
                continue
            for key in AIWC_TOTAL_KEYS:
                v = tot.get(key)
                if not is_num(v) or v < 0:
                    err("%s: totals[%r] is %r" % (where, key, v))
            for key, length in (("occupancy", 65), ("reuse", 40),
                                ("stride", 4)):
                h = hist.get(key)
                if not isinstance(h, list) or len(h) != length \
                        or not all(is_num(v) and v >= 0 for v in h):
                    err("%s: histogram %r malformed" % (where, key))
            # Histogram sums must match the record's own totals.
            if isinstance(hist.get("occupancy"), list) \
                    and sum(hist["occupancy"]) != tot.get("issues"):
                err("%s: occupancy histogram sums to %s, issues = %s"
                    % (where, sum(hist["occupancy"]), tot.get("issues")))
            if isinstance(hist.get("reuse"), list) \
                    and is_num(tot.get("reuse_cold")) \
                    and sum(hist["reuse"]) + tot["reuse_cold"] \
                    != tot.get("global_accesses"):
                err("%s: reuse histogram + cold = %s, global_accesses = %s"
                    % (where, sum(hist["reuse"]) + tot["reuse_cold"],
                       tot.get("global_accesses")))
            if isinstance(hist.get("stride"), list) \
                    and sum(hist["stride"]) != tot.get("global_instrs"):
                err("%s: stride histogram sums to %s, global_instrs = %s"
                    % (where, sum(hist["stride"]), tot.get("global_instrs")))
            ws = rec.get("warp_size")
            if is_num(ws) and is_num(tot.get("issues")) \
                    and is_num(tot.get("lanes")):
                if tot["lanes"] > tot["issues"] * ws:
                    err("%s: lanes %s exceed issues * warp_size = %s"
                        % (where, tot["lanes"], tot["issues"] * ws))
                if isinstance(hist.get("occupancy"), list) and ws < 64 \
                        and sum(hist["occupancy"][ws + 1:]) != 0:
                    err("%s: occupancy above warp_size %s" % (where, ws))

            # Cross-exporter invariant: the counter stream's per-XKind issue
            # mix and this record describe the same scheduled-issue stream.
            if counter_recs is not None and n <= len(counter_recs):
                c = counter_recs[n - 1]
                if c.get("kernel") != rec.get("kernel"):
                    err("%s: kernel %r but counters line %d has %r"
                        % (where, rec.get("kernel"), n, c.get("kernel")))
                xk = c.get("xkind_issues")
                if isinstance(xk, dict) and is_num(tot.get("issues")):
                    xk_sum = sum(v for v in xk.values() if is_num(v))
                    if xk_sum != tot["issues"]:
                        err("%s: issues %s != counters xkind sum %s"
                            % (where, tot["issues"], xk_sum))
    if n == 0:
        err("%s: no aiwc records" % path)
    print("%s: %d aiwc records" % (path, n))


def main(argv):
    expect_serve = "--expect-serve" in argv
    argv = [a for a in argv if a != "--expect-serve"]
    if len(argv) not in (2, 3):
        sys.stderr.write(__doc__)
        return 2
    aiwc = None
    if os.path.isdir(argv[1]):
        trace = os.path.join(argv[1], "trace.json")
        jsonl = os.path.join(argv[1], "counters.jsonl")
        candidate = os.path.join(argv[1], "aiwc.jsonl")
        if os.path.exists(candidate):
            aiwc = candidate
    else:
        trace = argv[1]
        jsonl = argv[2] if len(argv) == 3 else None
    kernels = validate_trace(trace)
    counter_recs = None
    if jsonl is not None:
        counter_recs, serve_n = validate_counters(
            jsonl, kernels if kernels else None)
        if expect_serve and serve_n == 0:
            err("%s: --expect-serve but no \"type\":\"serve\" records"
                % jsonl)
    elif expect_serve:
        err("--expect-serve requires counters.jsonl")
    if aiwc is not None:
        # The 1:1 cross-check against counters.jsonl only applies when
        # GPC_AIWC armed every launch of the run (equal line counts); a
        # partially-armed run still gets the per-record invariants.
        if not isinstance(counter_recs, list):
            counter_recs = None
        elif sum(1 for _ in open(aiwc)) != len(counter_recs):
            counter_recs = None
        validate_aiwc(aiwc, counter_recs)
    for msg in errors:
        sys.stderr.write("FAIL: %s\n" % msg)
    if errors:
        return 1
    print("OK: profiler exports conform to the DESIGN.md §11 schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
