#!/usr/bin/env python3
"""Schema validation for gpc::prof exports (DESIGN.md §11).

Usage:
    validate_trace.py PROF_DIR          # expects PROF_DIR/trace.json and
                                        # PROF_DIR/counters.jsonl
    validate_trace.py trace.json [counters.jsonl]

Checks, stdlib only (run as a ctest, label "prof"):
  * trace.json is valid JSON: {"displayTimeUnit", "traceEvents": [...]} with
    only known event types (ph X/M/i), known track pids (0 host, 1 CUDA
    device, 2 OpenCL device) and non-negative ts/dur;
  * host spans are properly nested per (pid, tid) — RAII spans cannot
    partially overlap;
  * device-track slices do not overlap per pid (a device runs one grid at a
    time) and every "kernel" slice carries the timing-breakdown args
    (runtime, launch_us/issue_us/dram_us, occupancy, limiter);
  * counters.jsonl lines are valid JSON with the full BlockStats counter set
    (21 counters) plus the dispatch/instruction-mix/fusion fields
    (dispatch mode, per-XKind issue mix, fused execution + static census)
    and the cohort-scheduler divergence diagnostics (splits, merges,
    max_live, depth_max). Every launch record must carry all of these —
    divergent launches included (records from split warps used to omit the
    dispatch/static-fusion keys, which this check now rejects) — and the
    line count equals the trace's kernel-slice count when both files come
    from the same run.

Exit code 0 on success, 1 with per-finding messages on stderr otherwise.
"""
import json
import os
import sys

TRACK_NAMES = {0: "host", 1: "CUDA device", 2: "OpenCL device"}
KERNEL_ARGS = (
    "device", "runtime", "blocks", "tpb",
    "launch_us", "issue_us", "dram_us",
    "latency_factor", "occupancy", "limiter",
)
COUNTER_KEYS = (
    "alu_issues", "ialu_issues", "agu_issues", "mad_issues", "mul_issues",
    "sfu_issues", "branch_issues", "mem_issues", "shared_cycles",
    "const_cycles", "barrier_count", "dram_read_bytes", "dram_write_bytes",
    "dram_transactions", "useful_global_bytes", "local_bytes",
    "tex_requests", "tex_hits", "l1_hits", "atomic_serial_ops", "flops",
)
JSONL_KEYS = (
    "kernel", "runtime", "device", "blocks", "tpb", "seconds", "launch_s",
    "issue_s", "dram_s", "latency_factor", "occupancy", "resident_warps",
    "limiter", "counters", "dispatch", "xkind_issues", "fused_groups",
    "fused_exec", "static_fusion", "cohort",
)
COHORT_KEYS = ("splits", "merges", "max_live", "depth_max")
DISPATCH_MODES = ("switch", "threaded", "simd")
XKIND_KEYS = (
    "bra", "exit", "bar", "ld_param", "mem_global", "mem_shared",
    "mem_local", "mem_const", "mem_tex", "read_sreg", "mov", "cvt",
    "setp", "selp", "float_op", "int_op",
)
FUSED_KEYS = ("addr_gen", "shl_add", "mul_add", "setp_bra")

errors = []


def err(msg):
    errors.append(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_event(i, ev):
    where = "traceEvents[%d]" % i
    if not isinstance(ev, dict):
        err("%s: not an object" % where)
        return None
    ph = ev.get("ph")
    if ph not in ("X", "M", "i"):
        err("%s: unknown ph %r" % (where, ph))
        return None
    if ev.get("pid") not in TRACK_NAMES:
        err("%s: unknown track pid %r" % (where, ev.get("pid")))
        return None
    if not isinstance(ev.get("name"), str) or not ev["name"]:
        err("%s: missing/empty name" % where)
    if ph == "M":
        # process_name labels a track; thread_name labels a per-tenant row
        # on a device track (gpc::virt).
        if ev["name"] not in ("process_name", "thread_name") \
                or "name" not in ev.get("args", {}):
            err("%s: metadata event must set args.name" % where)
        elif ev["name"] == "thread_name" and ev["pid"] == 0:
            err("%s: thread_name rows are device-track only" % where)
        return None
    if not is_num(ev.get("ts")) or ev["ts"] < 0:
        err("%s: bad ts %r" % (where, ev.get("ts")))
        return None
    if ph == "i":
        return None
    # ph == "X": complete event.
    if not is_num(ev.get("dur")) or ev["dur"] < 0:
        err("%s: bad dur %r" % (where, ev.get("dur")))
        return None
    if not isinstance(ev.get("cat"), str):
        err("%s: X event missing cat" % where)
        return None
    if ev["cat"] == "kernel":
        args = ev.get("args")
        if not isinstance(args, dict):
            err("%s: kernel slice has no args" % where)
        else:
            for key in KERNEL_ARGS:
                if key not in args:
                    err("%s: kernel args missing %r" % (where, key))
            if args.get("runtime") not in ("CUDA", "OpenCL"):
                err("%s: bad runtime %r" % (where, args.get("runtime")))
            occ = args.get("occupancy")
            if is_num(occ) and not 0 < occ <= 1:
                err("%s: occupancy %r outside (0, 1]" % (where, occ))
    return ev


def check_nesting(track, tid, spans):
    """Spans on one host thread must be disjoint or properly nested."""
    spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    stack = []
    for ev in spans:
        end = ev["ts"] + ev["dur"]
        while stack and ev["ts"] >= stack[-1]:
            stack.pop()
        if stack and end > stack[-1]:
            err("%s tid %s: span %r (ts=%s) partially overlaps its parent"
                % (track, tid, ev["name"], ev["ts"]))
            return
        stack.append(end)


def check_device_serial(track, slices):
    """Device slices (launch overhead + kernel) must not overlap."""
    slices.sort(key=lambda e: e["ts"])
    prev_end, prev_name = 0.0, None
    for ev in slices:
        # The exporter rounds to 0.001 us; allow that much slack.
        if ev["ts"] < prev_end - 0.002:
            err("%s: %r (ts=%s) overlaps previous slice %r (ends %s)"
                % (track, ev["name"], ev["ts"], prev_name, prev_end))
            return
        prev_end, prev_name = ev["ts"] + ev["dur"], ev["name"]


def validate_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            err("%s: invalid JSON: %s" % (path, e))
            return 0
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        err("%s: expected object with traceEvents" % path)
        return 0
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        err("%s: bad displayTimeUnit %r" % (path, doc.get("displayTimeUnit")))
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        err("%s: traceEvents empty" % path)
        return 0

    host_spans = {}   # (tid) -> [events]
    device = {}       # pid -> [events]
    kernels = 0
    for i, raw in enumerate(events):
        ev = check_event(i, raw)
        if ev is None:
            continue
        if ev["pid"] == 0:
            host_spans.setdefault(ev["tid"], []).append(ev)
        else:
            device.setdefault(ev["pid"], []).append(ev)
            if ev["cat"] == "kernel":
                kernels += 1
    for tid, spans in host_spans.items():
        check_nesting("host", tid, spans)
    for pid, slices in device.items():
        check_device_serial(TRACK_NAMES[pid], slices)
    if kernels == 0:
        err("%s: no kernel slices on any device track" % path)
    print("%s: %d events, %d kernel slices, %d host threads, %d device tracks"
          % (path, len(events), kernels, len(host_spans), len(device)))
    return kernels


def validate_counters(path, expect_lines):
    n = 0
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if not line.strip():
                continue
            n += 1
            where = "%s:%d" % (path, lineno)
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                err("%s: invalid JSON: %s" % (where, e))
                continue
            for key in JSONL_KEYS:
                if key not in rec:
                    err("%s: missing key %r" % (where, key))
            if rec.get("runtime") not in ("CUDA", "OpenCL"):
                err("%s: bad runtime %r" % (where, rec.get("runtime")))
            counters = rec.get("counters")
            if not isinstance(counters, dict):
                err("%s: counters is not an object" % where)
                continue
            for key in COUNTER_KEYS:
                v = counters.get(key)
                if not is_num(v) or v < 0:
                    err("%s: counter %r is %r" % (where, key, v))
            extra = set(counters) - set(COUNTER_KEYS)
            if extra:
                err("%s: unknown counters %s" % (where, sorted(extra)))
            if rec.get("dispatch") not in DISPATCH_MODES:
                err("%s: bad dispatch %r" % (where, rec.get("dispatch")))
            for obj_key, keys in (("xkind_issues", XKIND_KEYS),
                                  ("fused_exec", FUSED_KEYS)):
                obj = rec.get(obj_key)
                if not isinstance(obj, dict):
                    err("%s: %s is not an object" % (where, obj_key))
                    continue
                for key in keys:
                    v = obj.get(key)
                    if not is_num(v) or v < 0:
                        err("%s: %s[%r] is %r" % (where, obj_key, key, v))
            sf = rec.get("static_fusion")
            if not isinstance(sf, dict) or not isinstance(
                    sf.get("groups"), dict):
                err("%s: static_fusion malformed" % where)
            elif not all(is_num(sf.get(k)) for k in ("ops", "fused_ops")):
                err("%s: static_fusion ops counts malformed" % where)
            co = rec.get("cohort")
            if not isinstance(co, dict):
                err("%s: cohort is not an object" % where)
            else:
                for key in COHORT_KEYS:
                    v = co.get(key)
                    if not is_num(v) or v < 0:
                        err("%s: cohort[%r] is %r" % (where, key, v))
                extra = set(co) - set(COHORT_KEYS)
                if extra:
                    err("%s: unknown cohort keys %s" % (where, sorted(extra)))
                # A warp can only re-merge after a split, and a split always
                # leaves at least two live cohorts.
                if is_num(co.get("merges")) and is_num(co.get("splits")) \
                        and co["merges"] > 0 and co["splits"] == 0:
                    err("%s: cohort merges without splits" % where)
                if is_num(co.get("splits")) and co["splits"] > 0 \
                        and is_num(co.get("max_live")) and co["max_live"] < 2:
                    err("%s: cohort splits but max_live < 2" % where)
    if n == 0:
        err("%s: no launch records" % path)
    if expect_lines is not None and n != expect_lines:
        err("%s: %d lines but trace has %d kernel slices" %
            (path, n, expect_lines))
    print("%s: %d launch records" % (path, n))


def main(argv):
    if len(argv) not in (2, 3):
        sys.stderr.write(__doc__)
        return 2
    if os.path.isdir(argv[1]):
        trace = os.path.join(argv[1], "trace.json")
        jsonl = os.path.join(argv[1], "counters.jsonl")
    else:
        trace = argv[1]
        jsonl = argv[2] if len(argv) == 3 else None
    kernels = validate_trace(trace)
    if jsonl is not None:
        validate_counters(jsonl, kernels if kernels else None)
    for msg in errors:
        sys.stderr.write("FAIL: %s\n" % msg)
    if errors:
        return 1
    print("OK: profiler exports conform to the DESIGN.md §11 schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
