#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive test
# suites (ctest labels "sanitize", "prof", "resil", "virt", "dispatch",
# "aiwc" and "serve": the
# thread-pool cancellation tests, the launch-path sanitizer/fault tests, the
# gpc::prof recorder tests — lock-free per-thread buffers, the synthetic
# device-clock CAS — the gpc::resil fault-injection tests, whose per-site
# atomic call/injection counters and armed() gate run on every worker
# thread, and the gpc::virt tests, whose fair-share scheduler hands the
# driver role between concurrently submitting tenant threads — plus the
# dispatch-engine differential tests, which toggle the process-wide
# GPC_SIM_DISPATCH knob while the block pool executes — and the gpc::aiwc
# tests, whose per-block collectors merge into the launch Collector under a
# mutex while the recorder's latency histogram takes relaxed atomic hits —
# and the gpc::serve tests, whose sharded queues, worker pool, completion
# latch, breaker state machine and compiled-kernel cache all run cross-
# thread by construction).
#
#   $ tools/run_tsan.sh            # full sanitize-labelled suite under tsan
#   $ tools/run_tsan.sh -R Cancel  # extra ctest args are passed through
#
# A tsan report makes ctest fail (halt_on_error): the suite passing means no
# data race was observed on these paths.
set -euo pipefail
cd "$(dirname "$0")/.."

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
# Perf-floor smoke tests (sim_throughput_floor, serve_latency_floor) are
# excluded: their committed floors are 80% of an *uninstrumented* baseline,
# which tsan's ~10x slowdown cannot meet — a miss there says nothing about
# data races.
ctest --preset tsan -L 'sanitize|prof|resil|virt|dispatch|aiwc|serve' \
  -E '_floor$' "$@"
