#!/usr/bin/env bash
# Builds the ThreadSanitizer preset and runs the concurrency-sensitive test
# suites (ctest labels "sanitize", "prof", "resil", "virt", "dispatch" and
# "aiwc": the
# thread-pool cancellation tests, the launch-path sanitizer/fault tests, the
# gpc::prof recorder tests — lock-free per-thread buffers, the synthetic
# device-clock CAS — the gpc::resil fault-injection tests, whose per-site
# atomic call/injection counters and armed() gate run on every worker
# thread, and the gpc::virt tests, whose fair-share scheduler hands the
# driver role between concurrently submitting tenant threads — plus the
# dispatch-engine differential tests, which toggle the process-wide
# GPC_SIM_DISPATCH knob while the block pool executes — and the gpc::aiwc
# tests, whose per-block collectors merge into the launch Collector under a
# mutex while the recorder's latency histogram takes relaxed atomic hits).
#
#   $ tools/run_tsan.sh            # full sanitize-labelled suite under tsan
#   $ tools/run_tsan.sh -R Cancel  # extra ctest args are passed through
#
# A tsan report makes ctest fail (halt_on_error): the suite passing means no
# data race was observed on these paths.
set -euo pipefail
cd "$(dirname "$0")/.."

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"

cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan -L 'sanitize|prof|resil|virt|dispatch|aiwc' "$@"
