# ctest runner (see bench/CMakeLists.txt, test "table06_outcome_grid"): runs
# the Table VI portability sweep with --json and diffs the emitted outcome
# grid (status strings only — OK/FL/ABT/DEG per device × benchmark) against
# the committed expectation. Statuses are scale-independent, so --quick is
# safe; any drift in the portability claim fails the build.
#
# Expects -DBENCH_BIN, -DEXPECTED, -DOUT_FILE.
foreach(var BENCH_BIN EXPECTED OUT_FILE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "table06_grid_check.cmake: missing -D${var}")
  endif()
endforeach()

file(REMOVE "${OUT_FILE}")

# Resilience knobs must be off for the baseline grid: a stray GPC_DEGRADE
# would legitimately turn the Cell/BE ABTs into DEGs.
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env --unset=GPC_FAULT --unset=GPC_RETRY
          --unset=GPC_DEGRADE --unset=GPC_WATCHDOG
          "${BENCH_BIN}" --quick --json "${OUT_FILE}"
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "table06_portability failed (rc=${bench_rc})")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT_FILE}" "${EXPECTED}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  file(READ "${OUT_FILE}" got)
  file(READ "${EXPECTED}" want)
  message(FATAL_ERROR "Table VI outcome grid drifted.\n--- got ---\n${got}"
                      "--- expected ---\n${want}")
endif()
