#!/usr/bin/env bash
# Chaos-soak driver: builds the default preset and runs the seeded
# fault-injection soak (bench/extra_chaos_soak) repeatedly under a hard
# timeout. The soak itself asserts that >= 100 injected runs terminate with
# classified outcomes (OK/DEG/FL/ABT) and that seed replay is bit-for-bit;
# this wrapper adds the anti-hang guarantee (timeout) and lets CI shake the
# suite N times in a row.
#
#   $ tools/run_chaos.sh           # one full soak
#   $ tools/run_chaos.sh 5         # five consecutive soaks
#   $ CHAOS_TIMEOUT=600 tools/run_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${1:-1}"
TIMEOUT="${CHAOS_TIMEOUT:-300}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target extra_chaos_soak

for round in $(seq 1 "$ROUNDS"); do
  echo "=== chaos soak round ${round}/${ROUNDS} (timeout ${TIMEOUT}s) ==="
  if ! timeout --signal=KILL "$TIMEOUT" ./build/bench/extra_chaos_soak; then
    rc=$?
    if [ "$rc" -ge 124 ]; then
      echo "FAIL: chaos soak hung (killed after ${TIMEOUT}s)" >&2
    else
      echo "FAIL: chaos soak exited with rc=${rc}" >&2
    fi
    exit 1
  fi
done
echo "chaos: ${ROUNDS} round(s) clean"
