#!/usr/bin/env bash
# Chaos-soak driver: builds the default preset and runs the seeded
# fault-injection soak (bench/extra_chaos_soak) repeatedly under a hard
# timeout. The soak itself asserts that >= 100 injected runs terminate with
# classified outcomes (OK/DEG/FL/ABT) and that seed replay is bit-for-bit;
# this wrapper adds the anti-hang guarantee (timeout) and lets CI shake the
# suite N times in a row.
#
#   $ tools/run_chaos.sh           # one full soak
#   $ tools/run_chaos.sh 5         # five consecutive soaks
#   $ tools/run_chaos.sh --serve   # route the soak through gpc::serve
#   $ tools/run_chaos.sh --serve 3 # three consecutive serve soaks
#   $ CHAOS_TIMEOUT=600 tools/run_chaos.sh
#
# With --serve, the 112-run soak goes through the async launch server
# (bench/extra_serve_soak): per-job seeded fault plans at full worker
# concurrency, exactly-once completion accounting, bit-identical non-victim
# outputs vs direct launches, and bit-for-bit seed replay.
set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=extra_chaos_soak
NAME=chaos
if [ "${1:-}" = "--serve" ]; then
  TARGET=extra_serve_soak
  NAME="serve chaos"
  shift
fi
ROUNDS="${1:-1}"
TIMEOUT="${CHAOS_TIMEOUT:-300}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target "$TARGET"

for round in $(seq 1 "$ROUNDS"); do
  echo "=== ${NAME} soak round ${round}/${ROUNDS} (timeout ${TIMEOUT}s) ==="
  if ! timeout --signal=KILL "$TIMEOUT" "./build/bench/$TARGET"; then
    rc=$?
    if [ "$rc" -ge 124 ]; then
      echo "FAIL: ${NAME} soak hung (killed after ${TIMEOUT}s)" >&2
    else
      echo "FAIL: ${NAME} soak exited with rc=${rc}" >&2
    fi
    exit 1
  fi
done
echo "${NAME}: ${ROUNDS} round(s) clean"
