#!/usr/bin/env bash
# Re-baselines the interpreter-throughput perf-smoke floor
# (bench/sim_throughput_floor.json, checked by the sim_throughput_floor
# ctest). Run this ON A QUIET MACHINE after an *intentional* change to
# interpreter performance; the stored floor is 80% of the best of three
# measurements, so machine noise does not turn into spurious CI failures.
#
#   $ tools/rebaseline_sim_floor.sh [build-dir]     # default: ./build
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BIN="$BUILD/bench/extra_sim_throughput"
OUT="bench/sim_throughput_floor.json"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake --build $BUILD --target extra_sim_throughput)" >&2
  exit 2
fi

# Best of three: the floor guards against regressions, so it should be
# derived from what the machine can actually do, not from a noisy run.
best=""
for i in 1 2 3; do
  "$BIN" --workload=mxm --dispatch=simd --write-floor="$OUT.try$i" >/dev/null
  m=$(sed -n 's/.*"measured_minstr_per_sec": \([0-9.]*\).*/\1/p' "$OUT.try$i")
  echo "run $i: $m Minstr/sec"
  if [[ -z "$best" ]] || awk "BEGIN{exit !($m > $best)}"; then
    best="$m"
    mv "$OUT.try$i" "$OUT"
  else
    rm "$OUT.try$i"
  fi
done

echo "baseline: $best Minstr/sec -> floor $(sed -n 's/.*"floor_minstr_per_sec": \([0-9.]*\).*/\1/p' "$OUT") ($OUT)"
