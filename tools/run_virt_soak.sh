#!/usr/bin/env bash
# Virtualization-soak driver: builds the default preset and runs the
# multi-tenant isolation soak (bench/extra_virt_soak) repeatedly under a
# hard timeout. The soak itself asserts the tenants=1 scheduler-overhead
# bar (<2% median), the weighted fair-share split, that hundreds of
# concurrent tenant sessions complete bit-identical next to fault-injected
# victim tenants, and that the seeded round-0 outcome vector replays
# bit-for-bit; this wrapper adds the anti-hang guarantee (timeout) and lets
# CI shake the suite N times in a row. Each round leaves
# build/BENCH_virt_fairness.json behind for tracking.
#
#   $ tools/run_virt_soak.sh            # one full soak
#   $ tools/run_virt_soak.sh 5          # five consecutive soaks
#   $ GPC_VIRT_SEED=7 tools/run_virt_soak.sh   # a different (replayable) seed
#   $ VIRT_TIMEOUT=600 tools/run_virt_soak.sh
set -euo pipefail
cd "$(dirname "$0")/.."

ROUNDS="${1:-1}"
TIMEOUT="${VIRT_TIMEOUT:-300}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target extra_virt_soak

for round in $(seq 1 "$ROUNDS"); do
  echo "=== virt soak round ${round}/${ROUNDS} (timeout ${TIMEOUT}s) ==="
  if ! (cd build && timeout --signal=KILL "$TIMEOUT" ./bench/extra_virt_soak); then
    rc=$?
    if [ "$rc" -ge 124 ]; then
      echo "FAIL: virt soak hung (killed after ${TIMEOUT}s)" >&2
    else
      echo "FAIL: virt soak exited with rc=${rc}" >&2
    fi
    exit 1
  fi
done
echo "virt: ${ROUNDS} round(s) clean"
