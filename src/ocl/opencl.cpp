#include "ocl/opencl.h"

#include "common/error.h"
#include "common/log.h"
#include "compiler/pipeline.h"
#include "prof/prof.h"
#include "resil/fault.h"
#include "virt/virt.h"

namespace gpc::ocl {

const char* to_string(Status s) {
  switch (s) {
    case Status::Success: return "CL_SUCCESS";
    case Status::DeviceNotFound: return "CL_DEVICE_NOT_FOUND";
    case Status::BuildProgramFailure: return "CL_BUILD_PROGRAM_FAILURE";
    case Status::InvalidKernelArgs: return "CL_INVALID_KERNEL_ARGS";
    case Status::InvalidWorkGroupSize: return "CL_INVALID_WORK_GROUP_SIZE";
    case Status::OutOfResources: return "CL_OUT_OF_RESOURCES";
    case Status::OutOfHostMemory: return "CL_OUT_OF_HOST_MEMORY";
    case Status::DeviceFault: return "CL_DEVICE_FAULT";
  }
  return "?";
}

std::vector<Platform> get_platforms() {
  std::vector<Platform> ps;
  ps.push_back({"NVIDIA CUDA", "NVIDIA Corporation",
                {&arch::gtx280(), &arch::gtx480()}});
  ps.push_back({"AMD Accelerated Parallel Processing",
                "Advanced Micro Devices, Inc.",
                {&arch::hd5870(), &arch::intel920()}});
  ps.push_back({"IBM OpenCL Development Kit", "IBM", {&arch::cellbe()}});
  return ps;
}

std::vector<const arch::DeviceSpec*> get_devices(DeviceType type) {
  std::vector<const arch::DeviceSpec*> out;
  for (const Platform& p : get_platforms()) {
    for (const arch::DeviceSpec* d : p.devices) {
      const bool is_gpu = d->is_gpu();
      const bool is_cpu = d->family == arch::ArchFamily::X86;
      const bool is_acc = d->family == arch::ArchFamily::CellBE;
      if (type == DeviceType::All || (type == DeviceType::Gpu && is_gpu) ||
          (type == DeviceType::Cpu && is_cpu) ||
          (type == DeviceType::Accelerator && is_acc)) {
        out.push_back(d);
      }
    }
  }
  return out;
}

const arch::DeviceSpec* find_device(const std::string& short_name) {
  for (const arch::DeviceSpec* d : get_devices(DeviceType::All)) {
    if (d->short_name == short_name) return d;
  }
  return nullptr;
}

Context::Context(const arch::DeviceSpec& spec, std::size_t heap_bytes)
    : spec_(spec), runtime_(arch::opencl_runtime()), mem_(heap_bytes) {}

Buffer Context::create_buffer(std::size_t bytes) {
  prof::ScopedSpan span("api", "clCreateBuffer");
  return Buffer{mem_.alloc(bytes), bytes};
}

Program::Program(Context& ctx, const kernel::KernelDef& def)
    : ctx_(ctx), def_(def) {}

Status Program::build() {
  prof::ScopedSpan span("compile", "clBuildProgram");
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Build, def_.name)) {
      // Transient build failure: the injection budget advances, so a retry
      // (resil policy / GPC_RETRY) can succeed on a later call.
      log_ = "build failed: " + inj->detail;
      return Status::BuildProgramFailure;
    }
  }
  try {
    compiler::CompiledKernel ck =
        compiler::compile(def_, arch::Toolchain::OpenCl);
    kernel_.emplace(Kernel(std::move(ck)));
    log_ = "build succeeded for " + ctx_.spec_.short_name;
    return Status::Success;
  } catch (const Error& e) {
    log_ = std::string("build failed: ") + e.what();
    return Status::BuildProgramFailure;
  }
}

const Kernel& Program::kernel() const {
  GPC_REQUIRE(kernel_.has_value(), "program not built");
  return *kernel_;
}

Status CommandQueue::enqueue_write_buffer(Buffer dst, const void* src,
                                          std::size_t bytes) {
  last_error_.clear();
  if (bytes > dst.bytes) {
    last_error_ = "write of " + std::to_string(bytes) +
                  " B exceeds buffer size " + std::to_string(dst.bytes);
    return Status::InvalidKernelArgs;
  }
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Memcpy, "clEnqueueWriteBuffer")) {
      last_error_ = inj->detail;
      return Status::OutOfHostMemory;
    }
  }
  prof::ScopedSpan span("xfer", "clEnqueueWriteBuffer");
  ctx_.mem_.write(dst.addr, src, bytes);
  transfer_seconds_ += bytes / (ctx_.spec_.pcie_gb_per_s * 1e9) + 10e-6;
  return Status::Success;
}

Status CommandQueue::enqueue_read_buffer(void* dst, Buffer src,
                                         std::size_t bytes) {
  last_error_.clear();
  if (bytes > src.bytes) {
    last_error_ = "read of " + std::to_string(bytes) +
                  " B exceeds buffer size " + std::to_string(src.bytes);
    return Status::InvalidKernelArgs;
  }
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Memcpy, "clEnqueueReadBuffer")) {
      last_error_ = inj->detail;
      return Status::OutOfHostMemory;
    }
  }
  prof::ScopedSpan span("xfer", "clEnqueueReadBuffer");
  ctx_.mem_.read(src.addr, dst, bytes);
  transfer_seconds_ += bytes / (ctx_.spec_.pcie_gb_per_s * 1e9) + 10e-6;
  return Status::Success;
}

Status CommandQueue::enqueue_nd_range(const Kernel& k, sim::Dim3 global,
                                      sim::Dim3 local,
                                      std::span<const sim::KernelArg> args,
                                      Event* event, int dynamic_local_bytes,
                                      const LaunchOverrides* overrides) {
  last_error_.clear();
  if (global.x % local.x != 0 || global.y % local.y != 0 ||
      global.z % local.z != 0) {
    last_error_ = "global size is not a multiple of the work-group size";
    return Status::InvalidWorkGroupSize;
  }
  sim::LaunchConfig cfg;
  cfg.grid = {global.x / local.x, global.y / local.y, global.z / local.z};
  cfg.block = local;
  cfg.dynamic_shared_bytes = dynamic_local_bytes;
  if (overrides != nullptr) {
    cfg.grid_offset = overrides->grid_offset;
    cfg.logical_grid = overrides->logical_grid;
    cfg.degraded_exec = overrides->degraded_exec;
    cfg.step_budget = overrides->step_budget;
  }
  try {
    prof::ScopedSpan span("api", "clEnqueueNDRangeKernel");
    sim::LaunchResult r =
        virt_ ? virt_->launch(ctx_.spec_, ctx_.runtime_, k.compiled(), cfg,
                              args, ctx_.mem_, {})
              : sim::launch_kernel(ctx_.spec_, ctx_.runtime_, k.compiled(),
                                   cfg, args, ctx_.mem_);
    kernel_seconds_ += r.timing.seconds;
    launch_seconds_ += r.timing.launch_s;
    issue_seconds_ += r.timing.issue_s;
    dram_seconds_ += r.timing.dram_s;
    last_occupancy_ = r.timing.occupancy;
    ++launches_;
    if (prof::enabled()) {
      prof::recorder().record_launch(arch::Toolchain::OpenCl,
                                     ctx_.spec_.short_name, k.name(),
                                     r.timing, r.stats,
                                     virt_ ? virt_->tenant_id() : -1, r.aiwc);
    }
    if (event != nullptr) {
      event->queued_to_start_s = r.timing.launch_s;
      event->start_to_end_s = r.timing.seconds - r.timing.launch_s;
      event->stats = r.stats;
      event->timing = r.timing;
      event->sanitizer = r.sanitizer;
      event->aiwc = r.aiwc;
    }
    return Status::Success;
  } catch (const OutOfResources& e) {
    last_error_ = e.what();
    GPC_LOG(Info) << "enqueue_nd_range(" << k.name()
                  << "): " << to_string(Status::OutOfResources) << " — "
                  << e.what();
    return Status::OutOfResources;
  } catch (const DeviceFault& e) {
    // A kernel-side fault (OOB access, divergent barrier, runaway loop):
    // OpenCL surfaces this as an error status, not an exception — the grid
    // has already been stopped early by the pool's batch cancellation.
    last_error_ = e.what();
    GPC_LOG(Info) << "enqueue_nd_range(" << k.name()
                  << "): " << to_string(Status::DeviceFault) << " — "
                  << e.what();
    return Status::DeviceFault;
  } catch (const InvalidArgument& e) {
    last_error_ = e.what();
    return Status::InvalidKernelArgs;
  }
}

}  // namespace gpc::ocl
