// OpenCL-like host platform API over the simulator.
//
// Mirrors the OpenCL 1.1 host model: platform/device enumeration across three
// vendors ("NVIDIA CUDA", "AMD APP", "IBM OpenCL"), contexts, command queues
// with profiling, buffers, programs and kernels. Unlike the CUDA facade this
// API reports failures through error codes — clEnqueueNDRangeKernel returning
// CL_OUT_OF_RESOURCES on the Cell/BE is Table VI's "ABT" result, so the error
// path is part of the reproduction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "kernel/ast.h"
#include "sim/launch.h"
#include "sim/memory.h"

namespace gpc::virt {
class TenantQueue;
}  // namespace gpc::virt

namespace gpc::ocl {

/// Error codes are the OpenCL way of reporting failure, and several of them
/// are part of the reproduction (see file comment) — dropping one on the
/// floor is almost always a bug, hence [[nodiscard]].
enum class [[nodiscard]] Status {
  Success,
  DeviceNotFound,
  BuildProgramFailure,
  InvalidKernelArgs,
  InvalidWorkGroupSize,
  OutOfResources,
  OutOfHostMemory,
  /// The kernel itself faulted mid-grid (out-of-bounds access, divergent
  /// barrier, instruction-budget blowout). The grid stops early; details
  /// via CommandQueue::last_error().
  DeviceFault,
};

const char* to_string(Status s);

enum class DeviceType { Gpu, Cpu, Accelerator, All };

struct Platform {
  std::string name;
  std::string vendor;
  std::vector<const arch::DeviceSpec*> devices;
};

/// The installed platforms of the paper's testbeds (Table III plus the
/// portability targets of §V).
std::vector<Platform> get_platforms();

/// clGetDeviceIDs-style selection over all platforms.
std::vector<const arch::DeviceSpec*> get_devices(DeviceType type);

/// Finds a device by paper short name ("GTX480", "Cell/BE", ...).
const arch::DeviceSpec* find_device(const std::string& short_name);

struct Buffer {
  std::uint64_t addr = 0;
  std::size_t bytes = 0;
};

class Context;

/// A built kernel. Thin handle over the compiled artefact. Normally obtained
/// from Program::kernel(); directly constructible for callers that manage
/// compilation themselves (e.g. the benchmark harness).
class Kernel {
 public:
  explicit Kernel(compiler::CompiledKernel ck) : ck_(std::move(ck)) {}
  const compiler::CompiledKernel& compiled() const { return ck_; }
  const std::string& name() const { return ck_.name(); }

 private:
  compiler::CompiledKernel ck_;
};

/// clCreateProgramWithSource + clBuildProgram analogue: compiles kernel
/// definitions with the OpenCL front-end for the context's device.
class Program {
 public:
  Program(Context& ctx, const kernel::KernelDef& def);

  Status build();
  /// Valid after a successful build().
  const Kernel& kernel() const;
  const std::string& build_log() const { return log_; }

 private:
  Context& ctx_;
  kernel::KernelDef def_;
  std::optional<Kernel> kernel_;
  std::string log_;
};

/// Profiling info of one enqueued command (CL_PROFILING_COMMAND_* analogue).
struct Event {
  double queued_to_start_s = 0;  // the "kernel launch time" of §IV-B.4
  double start_to_end_s = 0;
  sim::LaunchStats stats;
  sim::KernelTiming timing;
  /// Checking-layer findings when sanitizing was requested for the launch
  /// (LaunchConfig::sanitize / GPC_SIM_SANITIZE); empty otherwise.
  sim::SanitizerReport sanitizer;
  /// Workload-characterization features when GPC_AIWC / LaunchConfig::aiwc
  /// armed collection; null otherwise.
  std::shared_ptr<aiwc::Features> aiwc;
};

class Context {
 public:
  explicit Context(const arch::DeviceSpec& spec,
                   std::size_t heap_bytes = std::size_t{512} << 20);

  const arch::DeviceSpec& device() const { return spec_; }
  sim::DeviceMemory& memory() { return mem_; }

  Buffer create_buffer(std::size_t bytes);

 private:
  friend class CommandQueue;
  friend class Program;
  const arch::DeviceSpec& spec_;
  arch::RuntimeSpec runtime_;
  sim::DeviceMemory mem_;
};

/// Resilience-layer launch knobs threaded through enqueue_nd_range into
/// sim::LaunchConfig (see interp.h): sub-grid execution for split launches
/// and degraded-execution mode. Default-constructed = a plain full launch.
struct LaunchOverrides {
  sim::Dim3 grid_offset{0, 0, 0};
  sim::Dim3 logical_grid{0, 0, 0};
  bool degraded_exec = false;
  /// Per-launch step budget (0 = unset); deadline propagation from
  /// harness::DeviceSession::set_step_budget / gpc::serve.
  std::uint64_t step_budget = 0;
};

class CommandQueue {
 public:
  explicit CommandQueue(Context& ctx) : ctx_(ctx) {}

  Status enqueue_write_buffer(Buffer dst, const void* src, std::size_t bytes);
  Status enqueue_read_buffer(void* dst, Buffer src, std::size_t bytes);

  /// clEnqueueNDRangeKernel analogue. `global` is the total work-item count
  /// per dimension (the paper's NDRange-vs-GridDim programming-model
  /// difference: OpenCL specifies work-items, CUDA specifies blocks);
  /// `local` the work-group size. global must be a multiple of local.
  Status enqueue_nd_range(const Kernel& k, sim::Dim3 global, sim::Dim3 local,
                          std::span<const sim::KernelArg> args,
                          Event* event = nullptr,
                          int dynamic_local_bytes = 0,
                          const LaunchOverrides* overrides = nullptr);

  double kernel_seconds() const { return kernel_seconds_; }
  double transfer_seconds() const { return transfer_seconds_; }
  int launches() const { return launches_; }
  /// Component sums of the analytical timing model over all launches
  /// (launch overhead / issue-bound / memory-bound); same contract as
  /// cuda::Context so PR outliers are explainable on either side.
  double launch_seconds() const { return launch_seconds_; }
  double issue_seconds() const { return issue_seconds_; }
  double dram_seconds() const { return dram_seconds_; }
  /// Occupancy of the most recent successful enqueue (incl. the limiter).
  const sim::Occupancy& last_occupancy() const { return last_occupancy_; }
  void reset_timers() {
    kernel_seconds_ = transfer_seconds_ = 0;
    launch_seconds_ = issue_seconds_ = dram_seconds_ = 0;
    launches_ = 0;
  }

  /// Human-readable detail of the last enqueue that returned an error
  /// status (OpenCL's error codes carry no message; this is the analogue of
  /// checking the driver log). Empty when the last enqueued operation
  /// succeeded: every enqueue method (kernel *and* buffer ops) resets it on
  /// entry, so a fault in launch N can never bleed into the diagnosis of
  /// launch N+1.
  const std::string& last_error() const { return last_error_; }

  // ---- Virtualization (gpc::virt) ----
  /// Routes every subsequent enqueue_nd_range through the tenant's command
  /// queue (time-sliced, fair-share scheduled). nullptr detaches: enqueues
  /// run directly on the simulator, bit-identical to a build without virt.
  void attach_virt(virt::TenantQueue* q) { virt_ = q; }
  virt::TenantQueue* virt_queue() const { return virt_; }

 private:
  Context& ctx_;
  double kernel_seconds_ = 0;
  double transfer_seconds_ = 0;
  double launch_seconds_ = 0;
  double issue_seconds_ = 0;
  double dram_seconds_ = 0;
  sim::Occupancy last_occupancy_;
  int launches_ = 0;
  std::string last_error_;
  virt::TenantQueue* virt_ = nullptr;
};

}  // namespace gpc::ocl
