// The paper's eight-step fair-comparison protocol (Fig. 9, §IV-C) as code.
//
// A Configuration records the choice made at each of the eight steps of the
// GPU-program development flow for one measured artefact; audit() diffs two
// configurations step by step. The paper's definition: a comparison is
// "fair" exactly when all eight steps match.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "arch/device_spec.h"

namespace gpc::fairness {

enum class Step {
  ProblemDescription = 0,    // 1) what is being solved
  AlgorithmTranslation,      // 2) the pseudo-code algorithm
  Implementation,            // 3) host+kernel implementation & timers
  NativeKernelOptimizations, // 4) texture/constant/shared/unroll choices
  FirstStageCompilation,     // 5) front-end compiler (NVOPENCC vs CLC)
  SecondStageCompilation,    // 6) back-end compiler (PTXAS)
  ProgramConfiguration,      // 7) problem & algorithmic parameters
  RunningOnGpu,              // 8) device & driver
};

const char* step_name(Step s);
/// Who the paper holds responsible for the step (Fig. 9's three roles).
const char* step_role(Step s);

struct Configuration {
  std::string label;                  // e.g. "MD/CUDA as shipped in SHOC"
  std::array<std::string, 8> choices;

  std::string& at(Step s) { return choices[static_cast<int>(s)]; }
  const std::string& at(Step s) const { return choices[static_cast<int>(s)]; }

  /// Baseline configuration for a benchmark run in this study: fills steps
  /// 1-3 and 5-8 from the toolchain/device/workgroup, leaving step 4
  /// (native kernel optimisations) to the caller.
  static Configuration for_run(const std::string& benchmark,
                               arch::Toolchain tc,
                               const arch::DeviceSpec& device, int workgroup,
                               const std::string& native_opts);
};

struct AuditEntry {
  Step step = Step::ProblemDescription;
  std::string a, b;
  bool same = false;
};

/// Step-by-step diff of two configurations.
std::vector<AuditEntry> audit(const Configuration& a, const Configuration& b);

/// The paper's criterion: fair iff every step matches.
bool is_fair(const std::vector<AuditEntry>& entries);

/// Human-readable audit report.
std::string report(const Configuration& a, const Configuration& b);

}  // namespace gpc::fairness
