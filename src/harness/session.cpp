#include "harness/session.h"

#include "common/error.h"
#include "common/log.h"
#include "compiler/pipeline.h"
#include "prof/prof.h"
#include "resil/fault.h"
#include "sim/timing.h"
#include "virt/virt.h"

namespace gpc::harness {

namespace {
// Backoff-jitter salts, one per retried operation kind, so the deterministic
// jitter streams of different sites do not alias.
constexpr std::uint64_t kSaltMemcpy = 0x11;
constexpr std::uint64_t kSaltBuild = 0x22;
constexpr std::uint64_t kSaltLaunch = 0x33;
}  // namespace

DeviceSession::DeviceSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                             std::size_t heap_bytes)
    : spec_(spec), tc_(tc) {
  if (tc == arch::Toolchain::Cuda) {
    cuda_.emplace(spec, heap_bytes);
  } else {
    ocl_ctx_.emplace(spec, heap_bytes);
    ocl_queue_.emplace(*ocl_ctx_);
  }
}

std::uint64_t DeviceSession::alloc(std::size_t bytes) {
  if (cuda_) return cuda_->malloc(bytes);
  return ocl_ctx_->create_buffer(bytes).addr;
}

void DeviceSession::note_retry(const char* site, int attempt,
                               std::uint64_t salt) {
  ++retries_;
  resil::counters().retries.fetch_add(1, std::memory_order_relaxed);
  if (prof::enabled()) {
    prof::recorder().record_instant("resil", std::string("retry:") + site);
  }
  GPC_LOG(Info) << "resil: retrying " << site << " (attempt " << (attempt + 1)
                << "/" << policy_.max_retries << ")";
  resil::backoff_sleep(policy_, attempt, salt);
}

void DeviceSession::write(std::uint64_t addr, const void* src,
                          std::size_t bytes) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (cuda_) {
        cuda_->memcpy_h2d(addr, src, bytes);
        return;
      }
      const ocl::Status st =
          ocl_queue_->enqueue_write_buffer({addr, bytes}, src, bytes);
      if (st == ocl::Status::OutOfHostMemory) {
        throw TransientFault(ocl_queue_->last_error().empty()
                                 ? "buffer write failed transiently"
                                 : ocl_queue_->last_error());
      }
      GPC_CHECK(st == ocl::Status::Success, "buffer write failed");
      return;
    } catch (const TransientFault&) {
      if (attempt >= policy_.max_retries) throw;
      note_retry("memcpy", attempt, kSaltMemcpy);
    }
  }
}

void DeviceSession::read(void* dst, std::uint64_t addr, std::size_t bytes) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (cuda_) {
        cuda_->memcpy_d2h(dst, addr, bytes);
        return;
      }
      const ocl::Status st =
          ocl_queue_->enqueue_read_buffer(dst, {addr, bytes}, bytes);
      if (st == ocl::Status::OutOfHostMemory) {
        throw TransientFault(ocl_queue_->last_error().empty()
                                 ? "buffer read failed transiently"
                                 : ocl_queue_->last_error());
      }
      GPC_CHECK(st == ocl::Status::Success, "buffer read failed");
      return;
    } catch (const TransientFault&) {
      if (attempt >= policy_.max_retries) throw;
      note_retry("memcpy", attempt, kSaltMemcpy);
    }
  }
}

compiler::CompiledKernel DeviceSession::compile(
    const kernel::KernelDef& def, const compiler::CompileOptions& opts) {
  for (int attempt = 0;; ++attempt) {
    try {
      if (cuda_) return cuda_->compile(def, opts);
      // OpenCL path: this facade compiles directly (the drivers do not go
      // through ocl::Program), so the build injection site lives here.
      if (resil::armed()) {
        if (auto inj = resil::sample(resil::Site::Build, def.name)) {
          throw TransientFault(inj->detail);
        }
      }
      prof::ScopedSpan span("compile", "clBuildProgram");
      return compiler::compile(def, tc_, opts);
    } catch (const TransientFault&) {
      if (attempt >= policy_.max_retries) throw;
      note_retry("build", attempt, kSaltBuild);
    }
  }
}

void DeviceSession::bind_texture(int unit, std::uint64_t base,
                                 std::size_t bytes, ir::Type elem) {
  if (cuda_) cuda_->bind_texture(unit, base, bytes, elem);
  // OpenCL 1.1 has no 1D texture path in this study; kernels fall back to
  // plain global loads there (see kernel::KernelBuilder::tex1d).
}

sim::LaunchResult DeviceSession::launch(const compiler::CompiledKernel& ck,
                                        sim::Dim3 grid, sim::Dim3 block,
                                        std::span<const sim::KernelArg> args,
                                        int dynamic_shared_bytes) {
  return launch_resilient(ck, grid, block, args, dynamic_shared_bytes,
                          sim::Dim3{0, 0, 0}, sim::Dim3{0, 0, 0}, 0);
}

sim::LaunchResult DeviceSession::launch_once(
    const compiler::CompiledKernel& ck, sim::Dim3 grid, sim::Dim3 block,
    std::span<const sim::KernelArg> args, int dynamic_shared_bytes,
    sim::Dim3 offset, sim::Dim3 logical, bool degraded) {
  if (cuda_) {
    sim::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = block;
    cfg.dynamic_shared_bytes = dynamic_shared_bytes;
    cfg.grid_offset = offset;
    cfg.logical_grid = logical;
    cfg.degraded_exec = degraded;
    cfg.step_budget = step_budget_;
    return cuda_->launch(ck, cfg, args);
  }
  ocl::Kernel k(ck);
  ocl::Event ev;
  const sim::Dim3 global{grid.x * block.x, grid.y * block.y,
                         grid.z * block.z};
  ocl::LaunchOverrides ov;
  ov.grid_offset = offset;
  ov.logical_grid = logical;
  ov.degraded_exec = degraded;
  ov.step_budget = step_budget_;
  const ocl::Status st = ocl_queue_->enqueue_nd_range(
      k, global, block, args, &ev, dynamic_shared_bytes, &ov);
  if (st == ocl::Status::OutOfResources) {
    throw OutOfResources(ocl_queue_->last_error().empty()
                             ? std::string(ocl::to_string(st)) + " for " +
                                   ck.name() + " on " + spec_.short_name
                             : ocl_queue_->last_error());
  }
  if (st == ocl::Status::DeviceFault) {
    // Convert the OpenCL error code back into the common exception so the
    // benchmark drivers keep one kernel-fault failure path across both
    // runtimes (CUDA throws it directly).
    throw DeviceFault(ocl_queue_->last_error().empty()
                          ? std::string(ocl::to_string(st)) + " for " +
                                ck.name() + " on " + spec_.short_name
                          : ocl_queue_->last_error());
  }
  GPC_CHECK(st == ocl::Status::Success,
            std::string("enqueue failed: ") + ocl::to_string(st));
  sim::LaunchResult r;
  r.stats = ev.stats;
  r.timing = ev.timing;
  r.sanitizer = ev.sanitizer;
  r.aiwc = ev.aiwc;
  return r;
}

bool DeviceSession::structural_oor(const compiler::CompiledKernel& ck,
                                   sim::Dim3 block,
                                   int dynamic_shared_bytes) const {
  sim::LaunchConfig probe;
  probe.grid = {1, 1, 1};
  probe.block = block;
  probe.dynamic_shared_bytes = dynamic_shared_bytes;
  try {
    (void)sim::compute_occupancy(spec_, ck, probe);
    return false;
  } catch (const OutOfResources&) {
    return true;
  }
}

sim::LaunchResult DeviceSession::launch_resilient(
    const compiler::CompiledKernel& ck, sim::Dim3 grid, sim::Dim3 block,
    std::span<const sim::KernelArg> args, int dynamic_shared_bytes,
    sim::Dim3 offset, sim::Dim3 logical, int depth) {
  for (int attempt = 0;; ++attempt) {
    try {
      return launch_once(ck, grid, block, args, dynamic_shared_bytes, offset,
                         logical, /*degraded=*/false);
    } catch (const OutOfResources& e) {
      if (structural_oor(ck, block, dynamic_shared_bytes)) {
        // The kernel genuinely does not fit at this block shape; retrying
        // cannot help. Degraded execution is the caller-gated last resort.
        if (policy_.degrade && allow_degraded_exec_) {
          ++degraded_events_;
          resil::counters().degraded_launches.fetch_add(
              1, std::memory_order_relaxed);
          if (prof::enabled()) {
            prof::recorder().record_instant("resil", "degraded_exec");
          }
          GPC_LOG(Info) << "resil: " << ck.name() << " on "
                        << spec_.short_name
                        << " runs in degraded-execution mode — " << e.what();
          return launch_once(ck, grid, block, args, dynamic_shared_bytes,
                             offset, logical, /*degraded=*/true);
        }
        throw;
      }
      // Non-structural (injected/transient) resource failure: retry, then
      // shed load by splitting the grid.
      if (attempt < policy_.max_retries) {
        note_retry("launch", attempt, kSaltLaunch);
        continue;
      }
      if (policy_.degrade && depth < policy_.max_split_depth &&
          grid.count() > 1) {
        return split_launch(ck, grid, block, args, dynamic_shared_bytes,
                            offset, logical, depth);
      }
      throw;
    } catch (const TransientFault&) {
      if (attempt >= policy_.max_retries) throw;
      note_retry("launch", attempt, kSaltLaunch);
    } catch (const DeviceFault&) {
      // Mid-grid faults can be transient (injected chaos); a real kernel
      // bug simply re-faults and exhausts the budget.
      if (attempt >= policy_.max_retries) throw;
      note_retry("launch", attempt, kSaltLaunch);
    }
  }
}

sim::LaunchResult DeviceSession::split_launch(
    const compiler::CompiledKernel& ck, sim::Dim3 grid, sim::Dim3 block,
    std::span<const sim::KernelArg> args, int dynamic_shared_bytes,
    sim::Dim3 offset, sim::Dim3 logical, int depth) {
  // Kernels observe the logical grid (NCtaId) and offset block ids, so the
  // two half-launches compute exactly what the full launch would.
  const sim::Dim3 log = logical.x > 0 ? logical : grid;
  sim::Dim3 g1 = grid, g2 = grid, o2 = offset;
  if (grid.x >= grid.y && grid.x >= grid.z) {
    g1.x = grid.x / 2;
    g2.x = grid.x - g1.x;
    o2.x += g1.x;
  } else if (grid.y >= grid.z) {
    g1.y = grid.y / 2;
    g2.y = grid.y - g1.y;
    o2.y += g1.y;
  } else {
    g1.z = grid.z / 2;
    g2.z = grid.z - g1.z;
    o2.z += g1.z;
  }
  ++degraded_events_;
  resil::counters().split_launches.fetch_add(1, std::memory_order_relaxed);
  if (prof::enabled()) {
    prof::recorder().record_instant("resil", "split_launch");
  }
  GPC_LOG(Info) << "resil: splitting " << ck.name() << " grid ("
                << grid.x << "," << grid.y << "," << grid.z
                << ") after repeated OutOfResources (depth " << depth << ")";
  sim::LaunchResult r1 = launch_resilient(ck, g1, block, args,
                                          dynamic_shared_bytes, offset, log,
                                          depth + 1);
  sim::LaunchResult r2 = launch_resilient(ck, g2, block, args,
                                          dynamic_shared_bytes, o2, log,
                                          depth + 1);
  // Merge as if one launch had run: order-independent sums for stats and
  // the timing components, concatenated sanitizer findings.
  r1.stats.total.merge(r2.stats.total);
  for (std::size_t i = 0; i < r1.stats.sm_issue_weight.size() &&
                          i < r2.stats.sm_issue_weight.size();
       ++i) {
    r1.stats.sm_issue_weight[i] += r2.stats.sm_issue_weight[i];
  }
  r1.stats.blocks += r2.stats.blocks;
  r1.timing.seconds += r2.timing.seconds;
  r1.timing.launch_s += r2.timing.launch_s;
  r1.timing.issue_s += r2.timing.issue_s;
  r1.timing.dram_s += r2.timing.dram_s;
  r1.sanitizer.findings.insert(r1.sanitizer.findings.end(),
                               r2.sanitizer.findings.begin(),
                               r2.sanitizer.findings.end());
  r1.sanitizer.dropped += r2.sanitizer.dropped;
  // AIWC features merge like BlockStats: order-independent sums, so the
  // split result is bit-identical to the whole-grid launch.
  if (!r1.aiwc) {
    r1.aiwc = r2.aiwc;
  } else if (r2.aiwc) {
    r1.aiwc->merge(*r2.aiwc);
  }
  return r1;
}

double DeviceSession::kernel_seconds() const {
  return cuda_ ? cuda_->kernel_seconds() : ocl_queue_->kernel_seconds();
}

double DeviceSession::transfer_seconds() const {
  return cuda_ ? cuda_->transfer_seconds() : ocl_queue_->transfer_seconds();
}

int DeviceSession::launches() const {
  return cuda_ ? cuda_->launches() : ocl_queue_->launches();
}

double DeviceSession::launch_seconds() const {
  return cuda_ ? cuda_->launch_seconds() : ocl_queue_->launch_seconds();
}

double DeviceSession::issue_seconds() const {
  return cuda_ ? cuda_->issue_seconds() : ocl_queue_->issue_seconds();
}

double DeviceSession::dram_seconds() const {
  return cuda_ ? cuda_->dram_seconds() : ocl_queue_->dram_seconds();
}

const sim::Occupancy& DeviceSession::last_occupancy() const {
  return cuda_ ? cuda_->last_occupancy() : ocl_queue_->last_occupancy();
}

void DeviceSession::reset_timers() {
  if (cuda_) {
    cuda_->reset_timers();
  } else {
    ocl_queue_->reset_timers();
  }
}

sim::DeviceMemory& DeviceSession::memory() {
  return cuda_ ? cuda_->memory() : ocl_ctx_->memory();
}

void DeviceSession::reset_memory() { memory().reset(); }

void DeviceSession::attach_virt(virt::TenantQueue* q) {
  if (cuda_) {
    cuda_->attach_virt(q);
  } else {
    ocl_queue_->attach_virt(q);
  }
}

// ---------------------------------------------------------------------------
// TenantSession

TenantSession::TenantSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                             virt::TenantQueue& queue)
    : DeviceSession(spec, tc, /*heap_bytes=*/queue.quota()), queue_(&queue) {
  attach_virt(&queue);
}

TenantSession::~TenantSession() = default;

int TenantSession::tenant_id() const { return queue_->tenant_id(); }

std::uint64_t TenantSession::alloc(std::size_t bytes) {
  try {
    const std::uint64_t addr = DeviceSession::alloc(bytes);
    queue_->note_alloc(memory().used());
    return addr;
  } catch (const OutOfResources& e) {
    // Over-quota: surfaced to THIS tenant only, tagged so logs distinguish
    // a quota bounce from a device-wide resource failure.
    queue_->note_quota_rejection();
    throw OutOfResources(std::string(e.what()) + " (tenant " +
                         std::to_string(queue_->tenant_id()) +
                         " memory quota exceeded)");
  }
}

}  // namespace gpc::harness
