#include "harness/session.h"

#include "common/error.h"
#include "compiler/pipeline.h"
#include "prof/prof.h"

namespace gpc::harness {

DeviceSession::DeviceSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                             std::size_t heap_bytes)
    : spec_(spec), tc_(tc) {
  if (tc == arch::Toolchain::Cuda) {
    cuda_.emplace(spec, heap_bytes);
  } else {
    ocl_ctx_.emplace(spec, heap_bytes);
    ocl_queue_.emplace(*ocl_ctx_);
  }
}

std::uint64_t DeviceSession::alloc(std::size_t bytes) {
  if (cuda_) return cuda_->malloc(bytes);
  return ocl_ctx_->create_buffer(bytes).addr;
}

void DeviceSession::write(std::uint64_t addr, const void* src,
                          std::size_t bytes) {
  if (cuda_) {
    cuda_->memcpy_h2d(addr, src, bytes);
    return;
  }
  const ocl::Status st =
      ocl_queue_->enqueue_write_buffer({addr, bytes}, src, bytes);
  GPC_CHECK(st == ocl::Status::Success, "buffer write failed");
}

void DeviceSession::read(void* dst, std::uint64_t addr, std::size_t bytes) {
  if (cuda_) {
    cuda_->memcpy_d2h(dst, addr, bytes);
    return;
  }
  const ocl::Status st =
      ocl_queue_->enqueue_read_buffer(dst, {addr, bytes}, bytes);
  GPC_CHECK(st == ocl::Status::Success, "buffer read failed");
}

compiler::CompiledKernel DeviceSession::compile(
    const kernel::KernelDef& def, const compiler::CompileOptions& opts) {
  prof::ScopedSpan span(
      "compile", tc_ == arch::Toolchain::Cuda ? "nvcc" : "clBuildProgram");
  return compiler::compile(def, tc_, opts);
}

void DeviceSession::bind_texture(int unit, std::uint64_t base,
                                 std::size_t bytes, ir::Type elem) {
  if (cuda_) cuda_->bind_texture(unit, base, bytes, elem);
  // OpenCL 1.1 has no 1D texture path in this study; kernels fall back to
  // plain global loads there (see kernel::KernelBuilder::tex1d).
}

sim::LaunchResult DeviceSession::launch(const compiler::CompiledKernel& ck,
                                        sim::Dim3 grid, sim::Dim3 block,
                                        std::span<const sim::KernelArg> args,
                                        int dynamic_shared_bytes) {
  if (cuda_) {
    sim::LaunchConfig cfg;
    cfg.grid = grid;
    cfg.block = block;
    cfg.dynamic_shared_bytes = dynamic_shared_bytes;
    return cuda_->launch(ck, cfg, args);
  }
  ocl::Kernel k(ck);
  ocl::Event ev;
  const sim::Dim3 global{grid.x * block.x, grid.y * block.y,
                         grid.z * block.z};
  const ocl::Status st = ocl_queue_->enqueue_nd_range(
      k, global, block, args, &ev, dynamic_shared_bytes);
  if (st == ocl::Status::OutOfResources) {
    throw OutOfResources(std::string(ocl::to_string(st)) + " for " +
                         ck.name() + " on " + spec_.short_name);
  }
  if (st == ocl::Status::DeviceFault) {
    // Convert the OpenCL error code back into the common exception so the
    // benchmark drivers keep one kernel-fault failure path across both
    // runtimes (CUDA throws it directly).
    throw DeviceFault(ocl_queue_->last_error().empty()
                          ? std::string(ocl::to_string(st)) + " for " +
                                ck.name() + " on " + spec_.short_name
                          : ocl_queue_->last_error());
  }
  GPC_CHECK(st == ocl::Status::Success,
            std::string("enqueue failed: ") + ocl::to_string(st));
  sim::LaunchResult r;
  r.stats = ev.stats;
  r.timing = ev.timing;
  r.sanitizer = ev.sanitizer;
  return r;
}

double DeviceSession::kernel_seconds() const {
  return cuda_ ? cuda_->kernel_seconds() : ocl_queue_->kernel_seconds();
}

double DeviceSession::transfer_seconds() const {
  return cuda_ ? cuda_->transfer_seconds() : ocl_queue_->transfer_seconds();
}

int DeviceSession::launches() const {
  return cuda_ ? cuda_->launches() : ocl_queue_->launches();
}

double DeviceSession::launch_seconds() const {
  return cuda_ ? cuda_->launch_seconds() : ocl_queue_->launch_seconds();
}

double DeviceSession::issue_seconds() const {
  return cuda_ ? cuda_->issue_seconds() : ocl_queue_->issue_seconds();
}

double DeviceSession::dram_seconds() const {
  return cuda_ ? cuda_->dram_seconds() : ocl_queue_->dram_seconds();
}

const sim::Occupancy& DeviceSession::last_occupancy() const {
  return cuda_ ? cuda_->last_occupancy() : ocl_queue_->last_occupancy();
}

void DeviceSession::reset_timers() {
  if (cuda_) {
    cuda_->reset_timers();
  } else {
    ocl_queue_->reset_timers();
  }
}

}  // namespace gpc::harness
