// DeviceSession: a toolchain-neutral driver facade for benchmarks.
//
// Each benchmark drives the device through this facade so the same driver
// code runs through the CUDA runtime (gpc::cuda) or the OpenCL platform API
// (gpc::ocl) depending on the toolchain under test — the per-toolchain
// behavioural differences (front-end, launch latency, texture support,
// error-code reporting) all live below this interface, exactly where the
// paper locates them.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "cuda/runtime.h"
#include "kernel/ast.h"
#include "ocl/opencl.h"
#include "sim/launch.h"

namespace gpc::harness {

class DeviceSession {
 public:
  /// Throws InvalidArgument for impossible combinations (CUDA on non-NVIDIA).
  DeviceSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                std::size_t heap_bytes = std::size_t{512} << 20);

  const arch::DeviceSpec& device() const { return spec_; }
  arch::Toolchain toolchain() const { return tc_; }

  std::uint64_t alloc(std::size_t bytes);
  void write(std::uint64_t addr, const void* src, std::size_t bytes);
  void read(void* dst, std::uint64_t addr, std::size_t bytes);

  template <typename T>
  std::uint64_t upload(std::span<const T> host) {
    const std::uint64_t p = alloc(host.size_bytes());
    write(p, host.data(), host.size_bytes());
    return p;
  }
  template <typename T>
  void download(std::uint64_t addr, std::span<T> host) {
    read(host.data(), addr, host.size_bytes());
  }

  compiler::CompiledKernel compile(const kernel::KernelDef& def,
                                   const compiler::CompileOptions& opts = {});

  /// CUDA only; silently ignored under OpenCL (the kernel's fallback loads
  /// are used there anyway).
  void bind_texture(int unit, std::uint64_t base, std::size_t bytes,
                    ir::Type elem);

  /// Launches and accumulates kernel time. Throws OutOfResources when the
  /// kernel does not fit the device, and DeviceFault when the kernel itself
  /// faults mid-grid (under OpenCL this converts the CL_OUT_OF_RESOURCES /
  /// CL_DEVICE_FAULT error codes back into the common exceptions so
  /// benchmark drivers have one failure path per outcome).
  sim::LaunchResult launch(const compiler::CompiledKernel& ck, sim::Dim3 grid,
                           sim::Dim3 block,
                           std::span<const sim::KernelArg> args,
                           int dynamic_shared_bytes = 0);

  /// Accumulated kernel-side seconds (includes per-launch overhead — the
  /// paper's BFS analysis depends on this being included).
  double kernel_seconds() const;
  double transfer_seconds() const;
  int launches() const;
  /// Timing-model component sums over all launches (launch overhead /
  /// issue-bound / dram-bound seconds) and the last launch's occupancy —
  /// what a PR outlier needs to be explained without a debugger.
  double launch_seconds() const;
  double issue_seconds() const;
  double dram_seconds() const;
  const sim::Occupancy& last_occupancy() const;
  void reset_timers();

 private:
  const arch::DeviceSpec& spec_;
  arch::Toolchain tc_;
  std::optional<cuda::Context> cuda_;
  std::optional<ocl::Context> ocl_ctx_;
  std::optional<ocl::CommandQueue> ocl_queue_;
};

}  // namespace gpc::harness
