// DeviceSession: a toolchain-neutral driver facade for benchmarks.
//
// Each benchmark drives the device through this facade so the same driver
// code runs through the CUDA runtime (gpc::cuda) or the OpenCL platform API
// (gpc::ocl) depending on the toolchain under test — the per-toolchain
// behavioural differences (front-end, launch latency, texture support,
// error-code reporting) all live below this interface, exactly where the
// paper locates them.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "cuda/runtime.h"
#include "kernel/ast.h"
#include "ocl/opencl.h"
#include "resil/policy.h"
#include "sim/launch.h"

namespace gpc::virt {
class TenantQueue;
}  // namespace gpc::virt

namespace gpc::harness {

class DeviceSession {
 public:
  /// Throws InvalidArgument for impossible combinations (CUDA on non-NVIDIA).
  DeviceSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                std::size_t heap_bytes = std::size_t{512} << 20);
  virtual ~DeviceSession() = default;

  const arch::DeviceSpec& device() const { return spec_; }
  arch::Toolchain toolchain() const { return tc_; }

  virtual std::uint64_t alloc(std::size_t bytes);
  void write(std::uint64_t addr, const void* src, std::size_t bytes);
  void read(void* dst, std::uint64_t addr, std::size_t bytes);

  template <typename T>
  std::uint64_t upload(std::span<const T> host) {
    const std::uint64_t p = alloc(host.size_bytes());
    write(p, host.data(), host.size_bytes());
    return p;
  }
  template <typename T>
  void download(std::uint64_t addr, std::span<T> host) {
    read(host.data(), addr, host.size_bytes());
  }

  compiler::CompiledKernel compile(const kernel::KernelDef& def,
                                   const compiler::CompileOptions& opts = {});

  /// CUDA only; silently ignored under OpenCL (the kernel's fallback loads
  /// are used there anyway).
  void bind_texture(int unit, std::uint64_t base, std::size_t bytes,
                    ir::Type elem);

  /// Launches and accumulates kernel time. Throws OutOfResources when the
  /// kernel does not fit the device, and DeviceFault when the kernel itself
  /// faults mid-grid (under OpenCL this converts the CL_OUT_OF_RESOURCES /
  /// CL_DEVICE_FAULT error codes back into the common exceptions so
  /// benchmark drivers have one failure path per outcome).
  ///
  /// Resilience (src/resil, all off by default): with a retry budget,
  /// transient failures (TransientFault, DeviceFault, injected
  /// OutOfResources) are retried with exponential backoff and deterministic
  /// jitter. With degradation enabled, a *non-structural* OutOfResources
  /// that survives its retries falls back to a split launch (half the grid
  /// per sub-launch, recursively, results merged — kernels observe logical
  /// grid coordinates so outputs are bit-identical); a *structural* one
  /// (probed against sim::compute_occupancy, consuming no injection
  /// samples) falls back to degraded execution when
  /// set_allow_degraded_exec(true) was called. Either fallback counts as a
  /// degraded_events() for the caller's "DEG" classification.
  sim::LaunchResult launch(const compiler::CompiledKernel& ck, sim::Dim3 grid,
                           sim::Dim3 block,
                           std::span<const sim::KernelArg> args,
                           int dynamic_shared_bytes = 0);

  /// Resilience policy for this session. Defaults to resil::active_policy()
  /// (GPC_RETRY / GPC_DEGRADE / GPC_WATCHDOG) at construction time.
  void set_policy(const resil::Policy& p) { policy_ = p; }
  const resil::Policy& policy() const { return policy_; }
  /// Permits the degraded-execution fallback for structural OutOfResources
  /// (policy.degrade must also be on). Off by default — the benchmark layer
  /// enables it only for its last-resort attempt, after work-group
  /// shrinking failed, so "DEG" stays a deliberate outcome.
  void set_allow_degraded_exec(bool v) { allow_degraded_exec_ = v; }
  /// Per-launch step budget for every launch issued through this session
  /// (0 = unset: GPC_SIM_STEP_BUDGET / the policy watchdog apply as usual).
  /// gpc::serve converts a job's deadline into this budget, so a deadline
  /// bounds simulated execution via the PR 2 watchdog instead of wall-clock
  /// timers — an over-deadline kernel becomes a classified DeviceFault.
  void set_step_budget(std::uint64_t steps) { step_budget_ = steps; }
  std::uint64_t step_budget() const { return step_budget_; }
  /// Degradation events so far: split sub-launch fan-outs plus
  /// degraded-execution launches. Nonzero means results were produced at
  /// reduced fidelity/width and the run should be classified "DEG".
  int degraded_events() const { return degraded_events_; }
  /// Retries performed (memcpy, build and launch sites combined).
  int retries() const { return retries_; }

  /// Accumulated kernel-side seconds (includes per-launch overhead — the
  /// paper's BFS analysis depends on this being included).
  double kernel_seconds() const;
  double transfer_seconds() const;
  int launches() const;
  /// Timing-model component sums over all launches (launch overhead /
  /// issue-bound / dram-bound seconds) and the last launch's occupancy —
  /// what a PR outlier needs to be explained without a debugger.
  double launch_seconds() const;
  double issue_seconds() const;
  double dram_seconds() const;
  const sim::Occupancy& last_occupancy() const;
  void reset_timers();

  /// The session's simulated device DRAM (the per-tenant heap for a
  /// TenantSession — its capacity IS the tenant's quota).
  sim::DeviceMemory& memory();
  /// Frees every allocation (bump-allocator reset). Lets one session run
  /// several benchmark attempts without leaking quota between them.
  void reset_memory();

  /// Routes this session's launches through a gpc::virt tenant command
  /// queue (nullptr detaches). TenantSession wires this at construction.
  void attach_virt(virt::TenantQueue* q);

 private:
  /// One raw launch of a (sub-)grid; no retry/fallback logic.
  sim::LaunchResult launch_once(const compiler::CompiledKernel& ck,
                                sim::Dim3 grid, sim::Dim3 block,
                                std::span<const sim::KernelArg> args,
                                int dynamic_shared_bytes, sim::Dim3 offset,
                                sim::Dim3 logical, bool degraded);
  sim::LaunchResult launch_resilient(const compiler::CompiledKernel& ck,
                                     sim::Dim3 grid, sim::Dim3 block,
                                     std::span<const sim::KernelArg> args,
                                     int dynamic_shared_bytes,
                                     sim::Dim3 offset, sim::Dim3 logical,
                                     int depth);
  sim::LaunchResult split_launch(const compiler::CompiledKernel& ck,
                                 sim::Dim3 grid, sim::Dim3 block,
                                 std::span<const sim::KernelArg> args,
                                 int dynamic_shared_bytes, sim::Dim3 offset,
                                 sim::Dim3 logical, int depth);
  /// True when the kernel genuinely cannot fit the device at this block
  /// shape (re-validated directly against the occupancy model, which draws
  /// no injection samples — so injected OutOfResources probe as false).
  bool structural_oor(const compiler::CompiledKernel& ck, sim::Dim3 block,
                      int dynamic_shared_bytes) const;
  void note_retry(const char* site, int attempt, std::uint64_t salt);

  const arch::DeviceSpec& spec_;
  arch::Toolchain tc_;
  std::optional<cuda::Context> cuda_;
  std::optional<ocl::Context> ocl_ctx_;
  std::optional<ocl::CommandQueue> ocl_queue_;
  resil::Policy policy_ = resil::active_policy();
  std::uint64_t step_budget_ = 0;
  bool allow_degraded_exec_ = false;
  int degraded_events_ = 0;
  int retries_ = 0;
};

/// A DeviceSession bound to one virtual device (gpc::virt tenant): its heap
/// is sized to the tenant's memory quota — an over-quota allocation
/// surfaces as the ordinary OutOfResources / CL_OUT_OF_RESOURCES to THIS
/// tenant only and flows into the retry/degrade ladder like any other
/// resource failure — and every launch is submitted to the tenant's command
/// queue, where the fair-share scheduler time-slices it against the other
/// tenants. Everything else (compile, memcpy, textures, policy ladder) is
/// the plain DeviceSession behaviour; benchmark drivers cannot tell the
/// difference, which is the point.
class TenantSession : public DeviceSession {
 public:
  TenantSession(const arch::DeviceSpec& spec, arch::Toolchain tc,
                virt::TenantQueue& queue);
  ~TenantSession() override;

  virt::TenantQueue& queue() { return *queue_; }
  int tenant_id() const;

  /// Quota-accounted allocation: success updates the tenant's memory
  /// high-water mark; failure counts a quota rejection and rethrows with
  /// the tenant id in the message.
  std::uint64_t alloc(std::size_t bytes) override;

 private:
  virt::TenantQueue* queue_;
};

}  // namespace gpc::harness
