// Benchmark interface + registry for the paper's Table II applications.
#pragma once

#include <string>
#include <vector>

#include "arch/device_spec.h"
#include "sim/stats.h"
#include "sim/timing.h"

namespace gpc::harness {
class DeviceSession;
}  // namespace gpc::harness

namespace gpc::bench {

/// Per-benchmark performance metrics (paper Table II). Seconds is the only
/// lower-is-better metric; PerformanceRatio handles the inversion.
enum class Metric {
  Seconds,
  GBps,
  GFlops,
  MElemsPerSec,
  MPixelsPerSec,
  MPointsPerSec,
};

const char* unit_name(Metric m);
bool higher_is_better(Metric m);

/// Variant knobs. Each maps to one of the paper's controlled experiments;
/// defaults reproduce the *unmodified* benchmarks of Figure 3.
struct Options {
  double scale = 1.0;  // problem-size multiplier (per-benchmark meaning)
  int workgroup = 0;   // work-group size override; 0 = benchmark default

  // Fig. 4/5: texture memory in the CUDA MD and SPMV kernels.
  bool use_texture = true;
  // Fig. 8: the OpenCL Sobel keeps its filter in constant memory; the CUDA
  // version reads it from global memory. Toggles per-toolchain below.
  bool sobel_constant_cuda = false;
  bool sobel_constant_opencl = true;
  // Fig. 6/7: FDTD unroll pragmas per source variant. Point (a) is the
  // z-plane loop (#pragma unroll 9), point (b) the radius loop.
  bool fdtd_unroll_a_cuda = true;
  bool fdtd_unroll_a_opencl = false;
  bool fdtd_unroll_b_cuda = true;
  bool fdtd_unroll_b_opencl = true;
  // §V CPU penalties: SPMV warp-per-row kernel and TranP local-memory
  // staging. spmv_vector selects the vector kernel where it is the natural
  // default (lockstep devices); spmv_force_vector imposes it even on
  // serialising CPU devices, reproducing the §V degradation experiment.
  bool spmv_vector = true;
  bool spmv_force_vector = false;
  bool tranp_use_local = true;
};

struct Result {
  double value = 0;  // in metric units; 0 when the run failed
  Metric metric = Metric::Seconds;
  double seconds = 0;  // accumulated kernel time (incl. launch overhead)
  bool correct = false;
  /// "OK", "FL" (wrong results, quarantined from aggregates), "ABT" (out of
  /// resources / fault), or "DEG" (completed via a resilience fallback —
  /// work-group shrink, split launch or degraded execution — only possible
  /// when GPC_DEGRADE / the resil policy enables degradation). Only "OK"
  /// results enter PR aggregates (ok()).
  std::string status;
  int launches = 0;
  sim::BlockStats stats;  // aggregated dynamic stats of all kernel launches

  // Timing-model component sums over all launches, and the last launch's
  // occupancy (with its limiter) — enough to explain a PR outlier (launch
  // latency vs compiler/issue difference vs memory behaviour) straight from
  // the result. Surfaced by fig03/fig09 --verbose.
  double launch_seconds = 0;
  double issue_seconds = 0;
  double dram_seconds = 0;
  sim::Occupancy occupancy;

  bool ok() const { return status == "OK"; }
};

/// perf(OpenCL)/perf(CUDA) per the paper's Eq. 1, inverting Seconds metrics.
double performance_ratio(const Result& opencl, const Result& cuda);

class Benchmark {
 public:
  virtual ~Benchmark() = default;
  virtual std::string name() const = 0;         // "BFS"
  virtual std::string suite() const = 0;        // "Rodinia"/"SELF"/...
  virtual std::string dwarf() const = 0;        // Table II dwarf/class
  virtual std::string description() const = 0;  // Table II description
  virtual Metric metric() const = 0;

  /// Runs on the given device+toolchain, verifying against the sequential
  /// reference. Never throws for device-capability failures — those are
  /// reported as status "ABT"/"FL", mirroring how the paper tabulates them.
  virtual Result run(const arch::DeviceSpec& device, arch::Toolchain tc,
                     const Options& opts) const = 0;

  /// Same protocol as run(), but drives a caller-owned session instead of
  /// creating one — the device and toolchain are the session's. This is how
  /// multi-tenant drivers (gpc::virt's TenantSession) run benchmarks inside
  /// a tenant's quota'd, fair-share-scheduled virtual device: session state
  /// (timers, device heap) is reset per attempt, so the classification
  /// ladder behaves exactly as in run().
  virtual Result run_in_session(harness::DeviceSession& session,
                                const Options& opts) const = 0;
};

/// The 14 real-world applications in Table II order (BFS ... FDTD).
const std::vector<const Benchmark*>& real_world_benchmarks();

/// Lookup by Table II name; throws InvalidArgument when unknown.
const Benchmark& benchmark_by_name(const std::string& name);

/// The two synthetic applications (§III-B.1).
const Benchmark& devicememory_benchmark();
const Benchmark& maxflops_benchmark();

}  // namespace gpc::bench
