#include "harness/benchmark.h"

#include "common/error.h"

namespace gpc::bench {

const char* unit_name(Metric m) {
  switch (m) {
    case Metric::Seconds: return "sec";
    case Metric::GBps: return "GB/sec";
    case Metric::GFlops: return "GFlops/sec";
    case Metric::MElemsPerSec: return "MElements/sec";
    case Metric::MPixelsPerSec: return "MPixels/sec";
    case Metric::MPointsPerSec: return "MPoints/sec";
  }
  return "?";
}

bool higher_is_better(Metric m) { return m != Metric::Seconds; }

double performance_ratio(const Result& opencl, const Result& cuda) {
  GPC_REQUIRE(opencl.metric == cuda.metric, "PR across different metrics");
  if (!opencl.ok() || !cuda.ok()) return 0;
  if (higher_is_better(opencl.metric)) {
    return cuda.value == 0 ? 0 : opencl.value / cuda.value;
  }
  // Seconds: performance is inversely proportional to time (§III-A).
  return opencl.value == 0 ? 0 : cuda.value / opencl.value;
}

}  // namespace gpc::bench
