#include "harness/fairness.h"

#include <sstream>

namespace gpc::fairness {

const char* step_name(Step s) {
  switch (s) {
    case Step::ProblemDescription: return "Problem Description";
    case Step::AlgorithmTranslation: return "Algorithm Translation";
    case Step::Implementation: return "Implementation";
    case Step::NativeKernelOptimizations: return "Native Kernel Optimizations";
    case Step::FirstStageCompilation: return "First-Stage Compilation";
    case Step::SecondStageCompilation: return "Second-Stage Compilation";
    case Step::ProgramConfiguration: return "Program Configuration";
    case Step::RunningOnGpu: return "Running on GPUs";
  }
  return "?";
}

const char* step_role(Step s) {
  switch (s) {
    case Step::ProblemDescription:
    case Step::AlgorithmTranslation:
    case Step::Implementation:
    case Step::NativeKernelOptimizations:
      return "programmer";
    case Step::FirstStageCompilation:
    case Step::SecondStageCompilation:
      return "compiler";
    case Step::ProgramConfiguration:
    case Step::RunningOnGpu:
      return "user";
  }
  return "?";
}

Configuration Configuration::for_run(const std::string& benchmark,
                                     arch::Toolchain tc,
                                     const arch::DeviceSpec& device,
                                     int workgroup,
                                     const std::string& native_opts) {
  Configuration c;
  c.label = benchmark + "/" + arch::to_string(tc);
  c.at(Step::ProblemDescription) = benchmark;
  c.at(Step::AlgorithmTranslation) = benchmark + " reference algorithm";
  c.at(Step::Implementation) = "shared kernel AST + device timers";
  c.at(Step::NativeKernelOptimizations) = native_opts;
  c.at(Step::FirstStageCompilation) =
      tc == arch::Toolchain::Cuda ? "NVOPENCC policy" : "OpenCL C policy";
  c.at(Step::SecondStageCompilation) = "PTXAS (shared back end)";
  c.at(Step::ProgramConfiguration) =
      "workgroup=" + std::to_string(workgroup);
  c.at(Step::RunningOnGpu) = device.short_name;
  return c;
}

std::vector<AuditEntry> audit(const Configuration& a, const Configuration& b) {
  std::vector<AuditEntry> out;
  for (int i = 0; i < 8; ++i) {
    AuditEntry e;
    e.step = static_cast<Step>(i);
    e.a = a.choices[i];
    e.b = b.choices[i];
    e.same = e.a == e.b;
    out.push_back(std::move(e));
  }
  return out;
}

bool is_fair(const std::vector<AuditEntry>& entries) {
  for (const AuditEntry& e : entries) {
    if (!e.same) return false;
  }
  return true;
}

std::string report(const Configuration& a, const Configuration& b) {
  const auto entries = audit(a, b);
  std::ostringstream os;
  os << "Fairness audit: \"" << a.label << "\" vs \"" << b.label << "\"\n";
  for (const AuditEntry& e : entries) {
    os << "  [" << (e.same ? "same" : "DIFF") << "] step "
       << static_cast<int>(e.step) + 1 << " (" << step_name(e.step) << ", "
       << step_role(e.step) << ")";
    if (!e.same) os << ": \"" << e.a << "\" vs \"" << e.b << "\"";
    os << "\n";
  }
  os << "  => " << (is_fair(entries)
                        ? "FAIR comparison (all eight steps match)"
                        : "NOT a fair comparison under the paper's definition")
     << "\n";
  return os.str();
}

}  // namespace gpc::fairness
