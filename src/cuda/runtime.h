// CUDA-like host runtime API over the simulator.
//
// Mirrors the CUDA runtime's shape (context-per-device, cudaMalloc/cudaMemcpy,
// kernel launches with grid/block dims, texture binding) so the benchmark
// drivers read like their CUDA-SDK/SHOC originals. Kernels are compiled with
// the NVOPENCC-policy front end and launched with the CUDA runtime's low
// enqueue latency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "compiler/pipeline.h"
#include "kernel/ast.h"
#include "sim/launch.h"
#include "sim/memory.h"

namespace gpc::virt {
class TenantQueue;
}  // namespace gpc::virt

namespace gpc::cuda {

using DevicePtr = std::uint64_t;

class Context {
 public:
  /// heap_bytes: size of the simulated device DRAM.
  explicit Context(const arch::DeviceSpec& spec,
                   std::size_t heap_bytes = std::size_t{512} << 20);

  const arch::DeviceSpec& device() const { return spec_; }
  sim::DeviceMemory& memory() { return mem_; }

  // ---- Memory management ----
  DevicePtr malloc(std::size_t bytes);
  void memcpy_h2d(DevicePtr dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, DevicePtr src, std::size_t bytes);

  template <typename T>
  DevicePtr upload(std::span<const T> host) {
    const DevicePtr p = malloc(host.size_bytes());
    memcpy_h2d(p, host.data(), host.size_bytes());
    return p;
  }
  template <typename T>
  void download(DevicePtr src, std::span<T> host) {
    memcpy_d2h(host.data(), src, host.size_bytes());
  }

  // ---- Compilation ----
  compiler::CompiledKernel compile(const kernel::KernelDef& def,
                                   const compiler::CompileOptions& opts = {});

  // ---- Textures ----
  void bind_texture(int unit, DevicePtr base, std::size_t bytes,
                    ir::Type elem);
  void unbind_textures() { textures_.clear(); }

  // ---- Launch ----
  /// Synchronous launch. Error model is CUDA's, not OpenCL's: kernel-side
  /// faults (out-of-bounds access, divergent barrier, instruction-budget
  /// blowout) propagate as gpc::DeviceFault exceptions — the analogue of a
  /// sticky cudaErrorLaunchFailed — and resource-validation failures as
  /// gpc::OutOfResources. The grid is stopped early on the first fault.
  sim::LaunchResult launch(const compiler::CompiledKernel& ck,
                           const sim::LaunchConfig& config,
                           std::span<const sim::KernelArg> args);

  // ---- Virtualization (gpc::virt) ----
  /// Routes every subsequent launch through the tenant's command queue —
  /// time-sliced and fair-share scheduled against the other tenants of the
  /// queue's VirtualDeviceManager. nullptr (the default) detaches: launches
  /// run directly on the simulator, bit-identical to a build without virt.
  void attach_virt(virt::TenantQueue* q) { virt_ = q; }
  virt::TenantQueue* virt_queue() const { return virt_; }

  // ---- Timers (event-style accumulation) ----
  double kernel_seconds() const { return kernel_seconds_; }
  double transfer_seconds() const { return transfer_seconds_; }
  int launches() const { return launches_; }
  /// Component sums of the analytical timing model over all launches, so a
  /// caller can explain *where* kernel_seconds() went without re-running
  /// under a profiler: launch overhead / issue-bound / memory-bound time.
  double launch_seconds() const { return launch_seconds_; }
  double issue_seconds() const { return issue_seconds_; }
  double dram_seconds() const { return dram_seconds_; }
  /// Occupancy of the most recent launch (including what limited it).
  const sim::Occupancy& last_occupancy() const { return last_occupancy_; }
  void reset_timers() {
    kernel_seconds_ = transfer_seconds_ = 0;
    launch_seconds_ = issue_seconds_ = dram_seconds_ = 0;
    launches_ = 0;
  }

 private:
  const arch::DeviceSpec& spec_;
  arch::RuntimeSpec runtime_;
  sim::DeviceMemory mem_;
  std::vector<sim::TexBinding> textures_;
  double kernel_seconds_ = 0;
  double transfer_seconds_ = 0;
  double launch_seconds_ = 0;
  double issue_seconds_ = 0;
  double dram_seconds_ = 0;
  sim::Occupancy last_occupancy_;
  int launches_ = 0;
  virt::TenantQueue* virt_ = nullptr;
};

}  // namespace gpc::cuda
