#include "cuda/runtime.h"

#include "common/error.h"

namespace gpc::cuda {

Context::Context(const arch::DeviceSpec& spec, std::size_t heap_bytes)
    : spec_(spec), runtime_(arch::cuda_runtime()), mem_(heap_bytes) {
  GPC_REQUIRE(spec.vendor == arch::Vendor::Nvidia,
              "CUDA runs only on NVIDIA devices (" + spec.short_name + ")");
}

void Context::memcpy_h2d(DevicePtr dst, const void* src, std::size_t bytes) {
  mem_.write(dst, src, bytes);
  transfer_seconds_ += bytes / (spec_.pcie_gb_per_s * 1e9) + 8e-6;
}

void Context::memcpy_d2h(void* dst, DevicePtr src, std::size_t bytes) {
  mem_.read(src, dst, bytes);
  transfer_seconds_ += bytes / (spec_.pcie_gb_per_s * 1e9) + 8e-6;
}

void Context::bind_texture(int unit, DevicePtr base, std::size_t bytes,
                           ir::Type elem) {
  if (unit >= static_cast<int>(textures_.size())) {
    textures_.resize(unit + 1);
  }
  textures_[unit] = sim::TexBinding{base, bytes, elem};
}

sim::LaunchResult Context::launch(const compiler::CompiledKernel& ck,
                                  const sim::LaunchConfig& config,
                                  std::span<const sim::KernelArg> args) {
  GPC_REQUIRE(ck.toolchain == arch::Toolchain::Cuda,
              "kernel " + ck.name() + " was not compiled for CUDA");
  sim::LaunchResult r =
      sim::launch_kernel(spec_, runtime_, ck, config, args, mem_, textures_);
  kernel_seconds_ += r.timing.seconds;
  ++launches_;
  return r;
}

}  // namespace gpc::cuda
