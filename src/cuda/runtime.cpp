#include "cuda/runtime.h"

#include "common/error.h"
#include "prof/prof.h"
#include "resil/fault.h"
#include "virt/virt.h"

namespace gpc::cuda {

Context::Context(const arch::DeviceSpec& spec, std::size_t heap_bytes)
    : spec_(spec), runtime_(arch::cuda_runtime()), mem_(heap_bytes) {
  GPC_REQUIRE(spec.vendor == arch::Vendor::Nvidia,
              "CUDA runs only on NVIDIA devices (" + spec.short_name + ")");
}

DevicePtr Context::malloc(std::size_t bytes) {
  prof::ScopedSpan span("api", "cudaMalloc");
  return mem_.alloc(bytes);
}

void Context::memcpy_h2d(DevicePtr dst, const void* src, std::size_t bytes) {
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Memcpy, "cudaMemcpy(H2D)")) {
      throw TransientFault(inj->detail);
    }
  }
  prof::ScopedSpan span("xfer", "cudaMemcpy(H2D)");
  mem_.write(dst, src, bytes);
  transfer_seconds_ += bytes / (spec_.pcie_gb_per_s * 1e9) + 8e-6;
}

void Context::memcpy_d2h(void* dst, DevicePtr src, std::size_t bytes) {
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Memcpy, "cudaMemcpy(D2H)")) {
      throw TransientFault(inj->detail);
    }
  }
  prof::ScopedSpan span("xfer", "cudaMemcpy(D2H)");
  mem_.read(src, dst, bytes);
  transfer_seconds_ += bytes / (spec_.pcie_gb_per_s * 1e9) + 8e-6;
}

compiler::CompiledKernel Context::compile(const kernel::KernelDef& def,
                                          const compiler::CompileOptions& opts) {
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Build, def.name)) {
      // Transient toolchain failure; a retry draws a fresh decision.
      throw TransientFault(inj->detail);
    }
  }
  prof::ScopedSpan span("compile", "nvcc");
  return compiler::compile(def, arch::Toolchain::Cuda, opts);
}

void Context::bind_texture(int unit, DevicePtr base, std::size_t bytes,
                           ir::Type elem) {
  if (unit >= static_cast<int>(textures_.size())) {
    textures_.resize(unit + 1);
  }
  textures_[unit] = sim::TexBinding{base, bytes, elem};
}

sim::LaunchResult Context::launch(const compiler::CompiledKernel& ck,
                                  const sim::LaunchConfig& config,
                                  std::span<const sim::KernelArg> args) {
  GPC_REQUIRE(ck.toolchain == arch::Toolchain::Cuda,
              "kernel " + ck.name() + " was not compiled for CUDA");
  prof::ScopedSpan span("api", "cudaLaunchKernel");
  sim::LaunchResult r =
      virt_ ? virt_->launch(spec_, runtime_, ck, config, args, mem_, textures_)
            : sim::launch_kernel(spec_, runtime_, ck, config, args, mem_,
                                 textures_);
  kernel_seconds_ += r.timing.seconds;
  launch_seconds_ += r.timing.launch_s;
  issue_seconds_ += r.timing.issue_s;
  dram_seconds_ += r.timing.dram_s;
  last_occupancy_ = r.timing.occupancy;
  ++launches_;
  if (prof::enabled()) {
    prof::recorder().record_launch(arch::Toolchain::Cuda, spec_.short_name,
                                   ck.name(), r.timing, r.stats,
                                   virt_ ? virt_->tenant_id() : -1, r.aiwc);
  }
  return r;
}

}  // namespace gpc::cuda
