#include "sim/decode.h"

#include <mutex>

#include "common/error.h"
#include "sim/value_codec.h"

namespace gpc::sim {

using ir::Instr;
using ir::Opcode;
using ir::Operand;
using ir::Space;
using ir::Type;

namespace {

/// Mirrors BlockExecutor's historical operand() encoding for immediates so
/// a pre-encoded MOp fetch is bit-identical to the old per-lane switch.
MOp make_operand(const Operand& o, Type t) {
  MOp m;
  switch (o.kind) {
    case Operand::Kind::Reg:
      m.reg = o.reg;
      break;
    case Operand::Kind::ImmInt:
      m.imm = enc_int(t, o.ival);
      break;
    case Operand::Kind::ImmFloat:
      m.imm = ir::is_float(t) ? enc_float(t, o.fval)
                              : enc_int(t, static_cast<std::int64_t>(o.fval));
      break;
    case Operand::Kind::None:
      break;
  }
  return m;
}

IssueClass issue_class(const Instr& in) {
  switch (in.op) {
    case Opcode::Mad:
    case Opcode::Fma:
      return ir::is_float(in.type) ? IssueClass::Mad : IssueClass::Alu;
    case Opcode::Mul:
      return ir::is_float(in.type) ? IssueClass::Mul : IssueClass::Alu;
    default:
      if (in.is_sfu()) return IssueClass::Sfu;
      if (ir::is_float(in.type)) return IssueClass::Alu;
      if (in.type == Type::U64) return IssueClass::Agu;
      return IssueClass::IAlu;
  }
}

MicroOp decode_one(const Instr& in) {
  MicroOp m;
  m.op = in.op;
  m.type = in.type;
  m.src_type = in.src_type;
  m.cmp = in.cmp;
  m.sreg = in.sreg;
  m.msize = static_cast<std::uint8_t>(ir::size_of(in.type));
  m.type_is_float = ir::is_float(in.type);
  m.dst = in.dst;
  m.guard = in.guard;
  m.guard_negated = in.guard_negated;
  m.target = in.target;

  const Type t = in.type;
  if (in.op == Opcode::Bra) {
    m.kind = XKind::Bra;
    return m;
  }
  if (in.op == Opcode::Exit) {
    m.kind = XKind::Exit;
    return m;
  }
  if (in.op == Opcode::Bar) {
    m.kind = XKind::Bar;
    return m;
  }
  if (in.is_memory()) {
    switch (in.space) {
      case Space::Param:
        m.kind = XKind::LdParam;
        m.aux = static_cast<std::int32_t>(in.a.ival);
        return m;
      case Space::Global:
        m.kind = XKind::MemGlobal;
        m.a = make_operand(in.a, Type::U64);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Shared:
        m.kind = XKind::MemShared;
        m.a = make_operand(in.a, Type::U32);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Local:
        m.kind = XKind::MemLocal;
        m.a = make_operand(in.a, Type::U32);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Const:
        m.kind = XKind::MemConst;
        m.a = make_operand(in.a, Type::U32);
        return m;
      case Space::Texture:
        m.kind = XKind::MemTex;
        m.a = make_operand(in.a, Type::S32);
        m.aux = in.tex_unit;
        return m;
      case Space::Reg:
        break;
    }
    throw InternalError("bad memory space in decode");
  }

  // Compute instructions: operands use the instruction type except Cvt's
  // source. Issue class and flop count are static per instruction.
  m.issue = issue_class(in);
  m.flops = static_cast<std::uint8_t>(ir::flop_count(in));
  switch (in.op) {
    case Opcode::ReadSReg:
      m.kind = XKind::ReadSReg;
      return m;
    case Opcode::Mov:
      m.kind = XKind::Mov;
      m.a = make_operand(in.a, t);
      return m;
    case Opcode::Cvt:
      m.kind = XKind::Cvt;
      m.a = make_operand(in.a, in.src_type);
      return m;
    case Opcode::SetP:
      m.kind = XKind::SetP;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      return m;
    case Opcode::SelP:
      m.kind = XKind::SelP;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      m.c = make_operand(in.c, t);
      return m;
    default:
      m.kind = ir::is_float(t) ? XKind::FloatOp : XKind::IntOp;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      m.c = make_operand(in.c, t);
      return m;
  }
}

}  // namespace

DecodedProgram decode(const ir::Function& fn) {
  DecodedProgram prog;
  prog.ops.reserve(fn.body.size());
  for (const Instr& in : fn.body) prog.ops.push_back(decode_one(in));
  return prog;
}

const DecodedProgram& decoded(const compiler::CompiledKernel& ck) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  if (const auto* hit = dynamic_cast<const DecodedProgram*>(ck.sim_cache.get())) {
    return *hit;
  }
  auto fresh = std::make_shared<DecodedProgram>(decode(ck.fn));
  const DecodedProgram* raw = fresh.get();
  ck.sim_cache = std::move(fresh);
  return *raw;
}

}  // namespace gpc::sim
