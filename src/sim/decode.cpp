#include "sim/decode.h"

#include <mutex>

#include "common/error.h"
#include "sim/value_codec.h"

namespace gpc::sim {

using ir::Instr;
using ir::Opcode;
using ir::Operand;
using ir::Space;
using ir::Type;

namespace {

/// Mirrors BlockExecutor's historical operand() encoding for immediates so
/// a pre-encoded MOp fetch is bit-identical to the old per-lane switch.
MOp make_operand(const Operand& o, Type t) {
  MOp m;
  switch (o.kind) {
    case Operand::Kind::Reg:
      m.reg = o.reg;
      break;
    case Operand::Kind::ImmInt:
      m.imm = enc_int(t, o.ival);
      break;
    case Operand::Kind::ImmFloat:
      m.imm = ir::is_float(t) ? enc_float(t, o.fval)
                              : enc_int(t, static_cast<std::int64_t>(o.fval));
      break;
    case Operand::Kind::None:
      break;
  }
  return m;
}

/// Position of a float opcode within GPC_XOP_FLOAT_OPS, or -1.
int float_op_index(Opcode op) {
  switch (op) {
    case Opcode::Add: return 0;
    case Opcode::Sub: return 1;
    case Opcode::Mul: return 2;
    case Opcode::Div: return 3;
    case Opcode::Mad: return 4;
    case Opcode::Fma: return 5;
    case Opcode::Neg: return 6;
    case Opcode::Abs: return 7;
    case Opcode::Min: return 8;
    case Opcode::Max: return 9;
    case Opcode::Sqrt: return 10;
    case Opcode::Rsqrt: return 11;
    case Opcode::Rcp: return 12;
    case Opcode::Sin: return 13;
    case Opcode::Cos: return 14;
    case Opcode::Ex2: return 15;
    case Opcode::Lg2: return 16;
    default: return -1;
  }
}

/// Position of an integer opcode within GPC_XOP_INT_OPS, or -1.
int int_op_index(Opcode op) {
  switch (op) {
    case Opcode::Add: return 0;
    case Opcode::Sub: return 1;
    case Opcode::Mul: return 2;
    case Opcode::MulHi: return 3;
    case Opcode::Div: return 4;
    case Opcode::Rem: return 5;
    case Opcode::Mad: return 6;
    case Opcode::Neg: return 7;
    case Opcode::Abs: return 8;
    case Opcode::Min: return 9;
    case Opcode::Max: return 10;
    case Opcode::And: return 11;
    case Opcode::Or: return 12;
    case Opcode::Xor: return 13;
    case Opcode::Not: return 14;
    case Opcode::Shl: return 15;
    case Opcode::Shr: return 16;
    default: return -1;
  }
}

/// Widened handler index for the threaded dispatcher: (kind, op, type)
/// collapsed into one dense XOp. Combinations outside the typed handler
/// lists (e.g. predicate-typed arithmetic) fall back to ComputeOther, which
/// routes through the generic exec_compute path.
XOp xop_for(const MicroOp& m) {
  switch (m.kind) {
    case XKind::Bra: return XOp::Bra;
    case XKind::Exit: return XOp::Exit;
    case XKind::Bar: return XOp::Bar;
    case XKind::LdParam: return XOp::LdParam;
    case XKind::MemGlobal: return XOp::MemGlobal;
    case XKind::MemShared: return XOp::MemShared;
    case XKind::MemLocal: return XOp::MemLocal;
    case XKind::MemConst: return XOp::MemConst;
    case XKind::MemTex: return XOp::MemTex;
    case XKind::ReadSReg: return XOp::ReadSReg;
    case XKind::Mov: return XOp::Mov;
    case XKind::SelP: return XOp::SelP;
    case XKind::Cvt: {
      // First letter = source domain, second = destination domain.
      const bool sf = ir::is_float(m.src_type);
      return m.type_is_float ? (sf ? XOp::CvtFF : XOp::CvtIF)
                             : (sf ? XOp::CvtFI : XOp::CvtII);
    }
    case XKind::SetP:
      switch (m.type) {
        case Type::F32: return XOp::SetpF32;
        case Type::F64: return XOp::SetpF64;
        case Type::S32: return XOp::SetpS32;
        case Type::U32: return XOp::SetpU32;
        case Type::U64: return XOp::SetpU64;
        default: return XOp::ComputeOther;
      }
    case XKind::FloatOp: {
      const int fi = float_op_index(m.op);
      if (fi < 0 || (m.type != Type::F32 && m.type != Type::F64)) {
        return XOp::ComputeOther;
      }
      // GPC_XOP_FLOAT_OPS interleaves F32/F64 per op, stride 2.
      return static_cast<XOp>(static_cast<int>(XOp::F32Add) + 2 * fi +
                              (m.type == Type::F64 ? 1 : 0));
    }
    case XKind::IntOp: {
      const int ii = int_op_index(m.op);
      int ti;
      switch (m.type) {
        case Type::S32: ti = 0; break;
        case Type::U32: ti = 1; break;
        case Type::U64: ti = 2; break;
        default: ti = -1; break;
      }
      if (ii < 0 || ti < 0) return XOp::ComputeOther;
      // GPC_XOP_INT_OPS interleaves S32/U32/U64 per op, stride 3.
      return static_cast<XOp>(static_cast<int>(XOp::S32Add) + 3 * ii + ti);
    }
  }
  return XOp::ComputeOther;
}

// ---------------------------------------------------------------------------
// Superinstruction fusion (paper Table V idioms). Fusion is IN PLACE: the
// head op gets the superinstruction XOp plus a fused_len; interior ops keep
// their ordinary XOp and all their fields, so direct entry at an interior pc
// (branch target, divergent re-entry, preempt/resume) executes them unfused
// and bit-identically. Groups require every component to be an unguarded
// register-writing compute op (the SetpBra tail Bra excepted — its guard IS
// the fused predicate) and no branch to target a group interior.

bool unguarded_def(const MicroOp& m) { return m.guard < 0 && m.dst >= 0; }

bool reads_reg(const MicroOp& m, std::int32_t reg) {
  return m.a.reg == reg || m.b.reg == reg;
}

void fuse(DecodedProgram& prog) {
  std::vector<MicroOp>& ops = prog.ops;
  const int n = static_cast<int>(ops.size());
  std::vector<bool> btarget(static_cast<std::size_t>(n) + 1, false);
  for (const MicroOp& m : ops) {
    if (m.kind == XKind::Bra && m.target >= 0 && m.target <= n) {
      btarget[m.target] = true;
    }
  }
  const auto interior_free = [&](int head, int len) {
    for (int k = head + 1; k < head + len; ++k) {
      if (btarget[k]) return false;
    }
    return true;
  };
  const auto mark = [&](int head, int len, FusedPattern p, XOp xop) {
    ops[head].xop = xop;
    ops[head].fused_len = static_cast<std::uint8_t>(len);
    ops[head].fused_pattern = p;
    prog.fusion.groups[static_cast<int>(p)]++;
    prog.fusion.fused_ops += static_cast<std::uint32_t>(len);
  };

  int i = 0;
  while (i < n) {
    // AddrGen: cvt.u64 <32-bit int> / and.u64 imm / shl.u64 imm / add.u64 —
    // the per-access global-address chain the OpenCL front end re-expands
    // (Table V); the CUDA front end's mad.u64 makes it a non-idiom there.
    if (i + 4 <= n) {
      const MicroOp& c0 = ops[i];
      const MicroOp& c1 = ops[i + 1];
      const MicroOp& c2 = ops[i + 2];
      const MicroOp& c3 = ops[i + 3];
      if (c0.kind == XKind::Cvt && c0.type == Type::U64 &&
          (c0.src_type == Type::S32 || c0.src_type == Type::U32) &&
          unguarded_def(c0) &&
          c1.kind == XKind::IntOp && c1.op == Opcode::And &&
          c1.type == Type::U64 && unguarded_def(c1) &&
          c1.a.reg == c0.dst && c1.b.reg < 0 &&
          c2.kind == XKind::IntOp && c2.op == Opcode::Shl &&
          c2.type == Type::U64 && unguarded_def(c2) &&
          c2.a.reg == c1.dst && c2.b.reg < 0 &&
          c3.kind == XKind::IntOp && c3.op == Opcode::Add &&
          c3.type == Type::U64 && unguarded_def(c3) &&
          reads_reg(c3, c2.dst) && interior_free(i, 4)) {
        mark(i, 4, FusedPattern::AddrGen, XOp::FusedAddrGen);
        i += 4;
        continue;
      }
    }
    if (i + 2 <= n) {
      const MicroOp& c0 = ops[i];
      const MicroOp& c1 = ops[i + 1];
      // setp / @p bra: the ubiquitous compare-and-branch of both front ends.
      if (c0.kind == XKind::SetP && unguarded_def(c0) &&
          c0.xop != XOp::ComputeOther &&
          c1.kind == XKind::Bra && c1.guard == c0.dst &&
          interior_free(i, 2)) {
        mark(i, 2, FusedPattern::SetpBra, XOp::FusedSetpBra);
        i += 2;
        continue;
      }
      // shl imm + add: shared/global address tail.
      if (c0.kind == XKind::IntOp && c0.op == Opcode::Shl &&
          unguarded_def(c0) && c0.xop != XOp::ComputeOther &&
          c0.b.reg < 0 &&
          c1.kind == XKind::IntOp && c1.op == Opcode::Add &&
          c1.type == c0.type && unguarded_def(c1) &&
          reads_reg(c1, c0.dst) && interior_free(i, 2)) {
        mark(i, 2, FusedPattern::ShlAdd, XOp::FusedShlAdd);
        i += 2;
        continue;
      }
      // mul + add consuming it: the mad idiom, integer or float. The fused
      // handler replays mul-then-add (two roundings for float) — it does NOT
      // contract to an actual fma, so results stay bit-identical.
      if ((c0.kind == XKind::IntOp || c0.kind == XKind::FloatOp) &&
          c0.op == Opcode::Mul && unguarded_def(c0) &&
          c0.xop != XOp::ComputeOther &&
          c1.kind == c0.kind && c1.op == Opcode::Add &&
          c1.type == c0.type && unguarded_def(c1) &&
          reads_reg(c1, c0.dst) && interior_free(i, 2)) {
        mark(i, 2, FusedPattern::MulAdd, XOp::FusedMulAdd);
        i += 2;
        continue;
      }
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Immediate post-dominators (Cooper-Harvey-Kennedy iteration over the
// reverse micro-op CFG, rooted at a virtual exit node). The cohort
// scheduler stamps prog.rpc[branch_pc] on every divergent split as the pc
// where the halves are expected to reconverge, which is what makes the
// divergence-depth diagnostics cheap (depth pops when a merged cohort
// reaches its stamped rpc). Merging itself is order-based — the sorted
// cohort list reproduces min-PC issue order exactly — so a conservative or
// missing rpc (-1) can never change execution, only the metrics.

void compute_rpc(DecodedProgram& prog) {
  const int n = static_cast<int>(prog.ops.size());
  prog.rpc.assign(static_cast<std::size_t>(n), -1);
  if (n == 0) return;
  const int exit_node = n;  // virtual sink; running off the end lands here

  // Successors over micro-op pcs (at most 2 each). Unguarded Bra: {target};
  // guarded Bra: {fallthrough, target}; Exit (guards are ignored by every
  // engine): {exit}; everything else: {pc + 1}.
  const auto successors = [&](int i, int out[2]) {
    const MicroOp& m = prog.ops[static_cast<std::size_t>(i)];
    int cnt = 0;
    const auto push = [&](int s) {
      if (s < 0 || s > n) s = exit_node;
      if (cnt == 1 && out[0] == s) return;
      out[cnt++] = s;
    };
    if (m.kind == XKind::Exit) {
      push(exit_node);
    } else if (m.kind == XKind::Bra) {
      if (m.guard >= 0) push(i + 1);
      push(m.target);
    } else {
      push(i + 1);
    }
    return cnt;
  };

  std::vector<std::vector<std::int32_t>> preds(
      static_cast<std::size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    int out[2];
    const int cnt = successors(i, out);
    for (int k = 0; k < cnt; ++k) preds[out[k]].push_back(i);
  }

  // Postorder of the reverse CFG from the exit node (iterative DFS over
  // predecessor edges). Nodes that cannot reach exit keep po = -1.
  std::vector<std::int32_t> order;
  std::vector<std::int32_t> po(static_cast<std::size_t>(n) + 1, -1);
  {
    std::vector<std::int32_t> stack{exit_node};
    std::vector<std::uint8_t> expanded(static_cast<std::size_t>(n) + 1, 0);
    std::vector<bool> seen(static_cast<std::size_t>(n) + 1, false);
    seen[exit_node] = true;
    while (!stack.empty()) {
      const int v = stack.back();
      if (!expanded[v]) {
        expanded[v] = 1;
        for (const std::int32_t p : preds[v]) {
          if (!seen[p]) {
            seen[p] = true;
            stack.push_back(p);
          }
        }
      } else {
        stack.pop_back();
        if (po[v] < 0) {
          po[v] = static_cast<std::int32_t>(order.size());
          order.push_back(v);
        }
      }
    }
  }

  std::vector<std::int32_t> idom(static_cast<std::size_t>(n) + 1, -1);
  idom[exit_node] = exit_node;
  const auto intersect = [&](std::int32_t a, std::int32_t b) {
    while (a != b) {
      while (po[a] < po[b]) a = idom[a];
      while (po[b] < po[a]) b = idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    // Reverse postorder of the reverse CFG, root skipped.
    for (int oi = static_cast<int>(order.size()) - 1; oi >= 0; --oi) {
      const int v = order[oi];
      if (v == exit_node) continue;
      int out[2];
      const int cnt = successors(v, out);
      std::int32_t nd = -1;
      for (int k = 0; k < cnt; ++k) {
        const int s = out[k];
        if (po[s] < 0 || idom[s] < 0) continue;
        nd = nd < 0 ? s : intersect(nd, s);
      }
      if (nd >= 0 && idom[v] != nd) {
        idom[v] = nd;
        changed = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (idom[i] >= 0 && idom[i] != exit_node) {
      prog.rpc[static_cast<std::size_t>(i)] = idom[i];
    }
  }
}

IssueClass issue_class(const Instr& in) {
  switch (in.op) {
    case Opcode::Mad:
    case Opcode::Fma:
      return ir::is_float(in.type) ? IssueClass::Mad : IssueClass::Alu;
    case Opcode::Mul:
      return ir::is_float(in.type) ? IssueClass::Mul : IssueClass::Alu;
    default:
      if (in.is_sfu()) return IssueClass::Sfu;
      if (ir::is_float(in.type)) return IssueClass::Alu;
      if (in.type == Type::U64) return IssueClass::Agu;
      return IssueClass::IAlu;
  }
}

MicroOp decode_one(const Instr& in) {
  MicroOp m;
  m.op = in.op;
  m.type = in.type;
  m.src_type = in.src_type;
  m.cmp = in.cmp;
  m.sreg = in.sreg;
  m.msize = static_cast<std::uint8_t>(ir::size_of(in.type));
  m.type_is_float = ir::is_float(in.type);
  m.dst = in.dst;
  m.guard = in.guard;
  m.guard_negated = in.guard_negated;
  m.target = in.target;

  const Type t = in.type;
  if (in.op == Opcode::Bra) {
    m.kind = XKind::Bra;
    return m;
  }
  if (in.op == Opcode::Exit) {
    m.kind = XKind::Exit;
    return m;
  }
  if (in.op == Opcode::Bar) {
    m.kind = XKind::Bar;
    return m;
  }
  if (in.is_memory()) {
    switch (in.space) {
      case Space::Param:
        m.kind = XKind::LdParam;
        m.aux = static_cast<std::int32_t>(in.a.ival);
        return m;
      case Space::Global:
        m.kind = XKind::MemGlobal;
        m.a = make_operand(in.a, Type::U64);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Shared:
        m.kind = XKind::MemShared;
        m.a = make_operand(in.a, Type::U32);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Local:
        m.kind = XKind::MemLocal;
        m.a = make_operand(in.a, Type::U32);
        m.b = make_operand(in.b, t);
        return m;
      case Space::Const:
        m.kind = XKind::MemConst;
        m.a = make_operand(in.a, Type::U32);
        return m;
      case Space::Texture:
        m.kind = XKind::MemTex;
        m.a = make_operand(in.a, Type::S32);
        m.aux = in.tex_unit;
        return m;
      case Space::Reg:
        break;
    }
    throw InternalError("bad memory space in decode");
  }

  // Compute instructions: operands use the instruction type except Cvt's
  // source. Issue class and flop count are static per instruction.
  m.issue = issue_class(in);
  m.flops = static_cast<std::uint8_t>(ir::flop_count(in));
  switch (in.op) {
    case Opcode::ReadSReg:
      m.kind = XKind::ReadSReg;
      return m;
    case Opcode::Mov:
      m.kind = XKind::Mov;
      m.a = make_operand(in.a, t);
      return m;
    case Opcode::Cvt:
      m.kind = XKind::Cvt;
      m.a = make_operand(in.a, in.src_type);
      return m;
    case Opcode::SetP:
      m.kind = XKind::SetP;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      return m;
    case Opcode::SelP:
      m.kind = XKind::SelP;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      m.c = make_operand(in.c, t);
      return m;
    default:
      m.kind = ir::is_float(t) ? XKind::FloatOp : XKind::IntOp;
      m.a = make_operand(in.a, t);
      m.b = make_operand(in.b, t);
      m.c = make_operand(in.c, t);
      return m;
  }
}

}  // namespace

const char* to_string(XKind k) {
  switch (k) {
    case XKind::Bra: return "bra";
    case XKind::Exit: return "exit";
    case XKind::Bar: return "bar";
    case XKind::LdParam: return "ld_param";
    case XKind::MemGlobal: return "mem_global";
    case XKind::MemShared: return "mem_shared";
    case XKind::MemLocal: return "mem_local";
    case XKind::MemConst: return "mem_const";
    case XKind::MemTex: return "mem_tex";
    case XKind::ReadSReg: return "read_sreg";
    case XKind::Mov: return "mov";
    case XKind::Cvt: return "cvt";
    case XKind::SetP: return "setp";
    case XKind::SelP: return "selp";
    case XKind::FloatOp: return "float_op";
    case XKind::IntOp: return "int_op";
  }
  return "?";
}

const char* to_string(FusedPattern p) {
  switch (p) {
    case FusedPattern::AddrGen: return "addr_gen";
    case FusedPattern::ShlAdd: return "shl_add";
    case FusedPattern::MulAdd: return "mul_add";
    case FusedPattern::SetpBra: return "setp_bra";
  }
  return "?";
}

DecodedProgram decode(const ir::Function& fn, bool fuse_idioms) {
  DecodedProgram prog;
  prog.ops.reserve(fn.body.size());
  for (const Instr& in : fn.body) {
    MicroOp m = decode_one(in);
    m.xop = xop_for(m);
    prog.ops.push_back(m);
  }
  prog.fusion.total_ops = static_cast<std::uint32_t>(prog.ops.size());
  if (fuse_idioms) fuse(prog);
  compute_rpc(prog);
  return prog;
}

const DecodedProgram& decoded(const compiler::CompiledKernel& ck) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  if (const auto* hit = dynamic_cast<const DecodedProgram*>(ck.sim_cache.get())) {
    return *hit;
  }
  auto fresh = std::make_shared<DecodedProgram>(decode(ck.fn));
  const DecodedProgram* raw = fresh.get();
  ck.sim_cache = std::move(fresh);
  return *raw;
}

}  // namespace gpc::sim
