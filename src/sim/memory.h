// Simulated device global memory.
//
// One flat byte-addressable heap per device with a bump allocator (device
// addresses are offsets into it; address 0 is reserved so null pointers
// fault). Loads and stores from concurrently executing blocks go through
// std::atomic_ref so the benign same-value races some kernels rely on
// (e.g. BFS frontier flags) are well-defined on the host too.
//
// The heap is backed by an anonymous demand-zero mapping on POSIX hosts, so
// constructing a multi-hundred-megabyte device costs no page faults until a
// kernel actually touches the pages (sessions are created per benchmark run,
// so eager zero-fill used to dominate wall-clock). A plain zero-filled
// vector is the portable fallback.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.h"

namespace gpc::sim {

class DeviceMemory {
 public:
  /// One live allocation, in [base, base + bytes).
  struct Allocation {
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
  };

  /// capacity_bytes: total simulated DRAM.
  explicit DeviceMemory(std::size_t capacity_bytes);
  ~DeviceMemory();

  DeviceMemory(const DeviceMemory&) = delete;
  DeviceMemory& operator=(const DeviceMemory&) = delete;

  /// Allocates `bytes` with 256-byte alignment (matching cudaMalloc);
  /// returns the device address. Throws OutOfResources when DRAM is full.
  std::uint64_t alloc(std::size_t bytes);

  /// Resets the allocator (frees everything). Contents are cleared.
  void reset();

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return top_; }

  // Host-side bulk access (cudaMemcpy-style).
  void write(std::uint64_t addr, const void* src, std::size_t bytes);
  void read(std::uint64_t addr, void* dst, std::size_t bytes) const;

  /// Device-side accesses: 4- or 8-byte, naturally aligned, atomic-relaxed.
  /// Throws DeviceFault on out-of-bounds or misaligned access. Inline —
  /// these run once per lane per global memory instruction, the hottest
  /// per-lane path in divergent kernels; only the fault throw is
  /// out-of-line.
  std::uint64_t load(std::uint64_t addr, int size) const {
    check(addr, size);
    const std::uint8_t* p = base_ + addr;
    if (size == 4) {
      const auto* w = reinterpret_cast<const std::uint32_t*>(p);
      return std::atomic_ref<const std::uint32_t>(*w).load(
          std::memory_order_relaxed);
    }
    const auto* w = reinterpret_cast<const std::uint64_t*>(p);
    return std::atomic_ref<const std::uint64_t>(*w).load(
        std::memory_order_relaxed);
  }
  void store(std::uint64_t addr, std::uint64_t value, int size) {
    check(addr, size);
    std::uint8_t* p = base_ + addr;
    if (size == 4) {
      auto* w = reinterpret_cast<std::uint32_t*>(p);
      std::atomic_ref<std::uint32_t>(*w).store(
          static_cast<std::uint32_t>(value), std::memory_order_relaxed);
      return;
    }
    auto* w = reinterpret_cast<std::uint64_t*>(p);
    std::atomic_ref<std::uint64_t>(*w).store(value, std::memory_order_relaxed);
  }

  /// Atomic integer add; returns the previous value.
  std::uint64_t atomic_add(std::uint64_t addr, std::uint64_t value, int size);
  /// Atomic float add (CAS loop); returns the previous value's bits.
  std::uint32_t atomic_add_f32(std::uint64_t addr, float value);

  void check(std::uint64_t addr, int size) const {
    // size is 4 or 8 (a power of two), so alignment is a mask test.
    if (addr + size > capacity_ || addr < 256 ||
        (addr & (static_cast<std::uint64_t>(size) - 1)) != 0) [[unlikely]] {
      check_fail(addr, size);
    }
  }

  /// The allocation containing `addr`, or null when `addr` falls in
  /// alignment padding / a red zone / past the bump pointer. O(log n).
  const Allocation* find_allocation(std::uint64_t addr) const;

  /// The allocation with the greatest base <= addr (whether or not it
  /// contains addr), or null. Used by memcheck to phrase overrun reports.
  const Allocation* preceding_allocation(std::uint64_t addr) const;

  /// Live allocations in increasing base order (bump allocator).
  const std::vector<Allocation>& allocations() const { return allocs_; }

  /// Inserts `bytes` of unallocated guard space after every subsequent
  /// allocation so memcheck catches overruns into what would otherwise be
  /// the 256-byte-aligned neighbouring buffer. Enabled automatically at
  /// construction when GPC_SIM_SANITIZE includes "mem".
  void set_red_zone(std::size_t bytes) { red_zone_ = bytes; }

 private:
  [[noreturn]] void check_fail(std::uint64_t addr, int size) const;

  std::uint8_t* base_ = nullptr;  // mmap region or fallback_.data()
  std::size_t capacity_ = 0;
  bool mapped_ = false;           // true when base_ came from mmap
  std::vector<std::uint8_t> fallback_;
  std::size_t top_ = 256;  // address 0..255 reserved (null page)
  std::size_t red_zone_ = 0;
  std::vector<Allocation> allocs_;  // sorted by base
};

}  // namespace gpc::sim
