#include "sim/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace gpc::sim {

namespace {

std::atomic<DispatchMode> g_mode{[] {
  DispatchMode m = DispatchMode::Simd;
  if (const char* e = std::getenv("GPC_SIM_DISPATCH")) {
    if (!parse_dispatch_mode(e, &m) && e[0] != '\0') {
      GPC_LOG(Warn) << "GPC_SIM_DISPATCH: unknown mode '" << e
                    << "' (want switch|threaded|simd), using simd";
    }
  }
  return m;
}()};

std::atomic<bool> g_cohort{[] {
  bool on = true;
  if (const char* e = std::getenv("GPC_SIM_COHORT")) {
    if (std::strcmp(e, "0") == 0) {
      on = false;
    } else if (std::strcmp(e, "1") != 0 && e[0] != '\0') {
      GPC_LOG(Warn) << "GPC_SIM_COHORT: unknown value '" << e
                    << "' (want 0|1), using 1";
    }
  }
  return on;
}()};

}  // namespace

const char* to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::Switch: return "switch";
    case DispatchMode::Threaded: return "threaded";
    case DispatchMode::Simd: return "simd";
  }
  return "?";
}

bool parse_dispatch_mode(const char* spec, DispatchMode* out) {
  if (spec == nullptr) return false;
  if (std::strcmp(spec, "switch") == 0) {
    *out = DispatchMode::Switch;
  } else if (std::strcmp(spec, "threaded") == 0) {
    *out = DispatchMode::Threaded;
  } else if (std::strcmp(spec, "simd") == 0) {
    *out = DispatchMode::Simd;
  } else {
    return false;
  }
  return true;
}

DispatchMode dispatch_mode() {
  return g_mode.load(std::memory_order_relaxed);
}

void set_dispatch_mode(DispatchMode m) {
  g_mode.store(m, std::memory_order_relaxed);
}

bool cohort_scheduler_enabled() {
  return g_cohort.load(std::memory_order_relaxed);
}

void set_cohort_scheduler(bool on) {
  g_cohort.store(on, std::memory_order_relaxed);
}

}  // namespace gpc::sim
