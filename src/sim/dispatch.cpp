#include "sim/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace gpc::sim {

namespace {

std::atomic<DispatchMode> g_mode{[] {
  DispatchMode m = DispatchMode::Simd;
  if (const char* e = std::getenv("GPC_SIM_DISPATCH")) {
    if (!parse_dispatch_mode(e, &m) && e[0] != '\0') {
      GPC_LOG(Warn) << "GPC_SIM_DISPATCH: unknown mode '" << e
                    << "' (want switch|threaded|simd), using simd";
    }
  }
  return m;
}()};

}  // namespace

const char* to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::Switch: return "switch";
    case DispatchMode::Threaded: return "threaded";
    case DispatchMode::Simd: return "simd";
  }
  return "?";
}

bool parse_dispatch_mode(const char* spec, DispatchMode* out) {
  if (spec == nullptr) return false;
  if (std::strcmp(spec, "switch") == 0) {
    *out = DispatchMode::Switch;
  } else if (std::strcmp(spec, "threaded") == 0) {
    *out = DispatchMode::Threaded;
  } else if (std::strcmp(spec, "simd") == 0) {
    *out = DispatchMode::Simd;
  } else {
    return false;
  }
  return true;
}

DispatchMode dispatch_mode() {
  return g_mode.load(std::memory_order_relaxed);
}

void set_dispatch_mode(DispatchMode m) {
  g_mode.store(m, std::memory_order_relaxed);
}

}  // namespace gpc::sim
