// Threaded-dispatch / SIMD convergent-warp engine.
//
// run_converged_goto is the computed-goto counterpart of run_converged: one
// jump table indexed by the widened XOp (generated from the same X-macro
// lists as the enum, so indices and labels agree by construction) replaces
// the nested kind/op/type switches, and each handler is specialised for its
// (op, type) pair — F32Add decodes f32, adds, encodes f32, with no inner
// dispatch. Superinstruction heads (sim/decode.h fusion pass) jump to fused
// handlers that execute the whole group in one lane loop while replaying the
// component ops' issue-class / flop / step / XKind accounting one by one, so
// every counter the timing model and the differential tests read is
// bit-identical to unfused execution.
//
// The kSimd template parameter selects lane addressing:
//   * kSimd=true ("simd"): handler loops run over the contiguous lane range
//     [0, width) with stride-1 operand pointers (immediates are broadcast
//     into ExecArena::splat rows), the shape the compiler auto-vectorizes.
//   * kSimd=false ("threaded"): the same loops read lanes through the
//     identity lane list, which defeats vectorization — this is the scalar
//     threaded-dispatch baseline the bench sweep compares against.
//
// The kCohort template parameter turns the same handler table into the
// divergent-cohort engine (engine_goto<false, true>, wrapped by
// run_cohort_goto): the lane set is a cohort's non-contiguous lane list, the
// run stops at CohortRun::limit (the next cohort's PC) instead of running to
// a control event, and branches/barriers/exits return a CohortStop for the
// reconvergence-stack scheduler (interp.cpp run_divergent, DESIGN.md §15)
// instead of materialising per-lane PCs. kSimd and kCohort are mutually
// exclusive — cohort lane lists defeat the contiguity kSimd relies on — so
// exactly three instantiations exist: <false,false> (threaded),
// <true,false> (simd) and <false,true> (cohort).
//
// Under the `switch` engine (or GPC_SIM_COHORT=0), divergence still hands
// the per-lane PCs to the min-PC scheduler — the reference path the cohort
// scheduler is locked against bit-for-bit.
//
// Computed goto is a GNU extension (GCC/Clang). Elsewhere the engine
// degrades to the switch interpreter — same results, no fused execution —
// and the cohort scheduler reports itself unavailable.

#include "sim/interp.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "resil/fault.h"
#include "sim/value_codec.h"

#if defined(__GNUC__) || defined(__clang__)
#define GPC_HAVE_COMPUTED_GOTO 1
#else
#define GPC_HAVE_COMPUTED_GOTO 0
#endif

namespace gpc::sim {

using ir::CmpOp;
using ir::Type;

#if !GPC_HAVE_COMPUTED_GOTO

bool cohort_engine_available() { return false; }

template <bool kSimd>
void BlockExecutor::run_converged_goto(Warp& w) {
  run_converged(w);  // portable fallback: same results, no fused execution
}

BlockExecutor::CohortStop BlockExecutor::run_cohort_goto(Warp&, CohortRun&) {
  // Unreachable: cohort_path_ requires cohort_engine_available().
  throw InternalError("cohort engine requires computed goto");
}

#else

bool cohort_engine_available() { return true; }

namespace {

/// Returns a stride-1 pointer to the operand's per-lane values: the register
/// row itself, or the immediate broadcast into the caller's splat row.
inline const std::uint64_t* lane_src(const MOp& o, std::uint64_t* regs,
                                     int width, std::uint64_t* splat_row) {
  if (o.reg >= 0) {
    return regs + static_cast<std::size_t>(o.reg) * width;
  }
  // Fill the full warp width: cohort lane lists index the splat row by lane
  // id, which can reach width-1 even when few lanes are active.
  for (int i = 0; i < width; ++i) splat_row[i] = o.imm;
  return splat_row;
}

/// Issue-class + flop accounting for one warp instruction over n lanes —
/// the exact prefix of exec_compute, replayed per component by the fused
/// handlers so fused and unfused execution account identically.
inline void bump_issue(BlockStats& s, const MicroOp& m, int n) {
  switch (m.issue) {
    case IssueClass::Alu: s.alu_issues++; break;
    case IssueClass::IAlu: s.ialu_issues++; break;
    case IssueClass::Agu: s.agu_issues++; break;
    case IssueClass::Mad: s.mad_issues++; break;
    case IssueClass::Mul: s.mul_issues++; break;
    case IssueClass::Sfu: s.sfu_issues++; break;
  }
  s.flops += static_cast<double>(m.flops) * static_cast<double>(n);
}

// Typed register codecs, mirroring dec_int/enc_int/dec_float/enc_float with
// the type resolved at compile time (this is what the widened XOp buys).

template <Type kT>
inline std::int64_t idec(std::uint64_t raw) {
  if constexpr (kT == Type::S32) {
    return static_cast<std::int32_t>(raw);
  } else if constexpr (kT == Type::U32) {
    return static_cast<std::uint32_t>(raw);
  } else {
    return static_cast<std::int64_t>(raw);
  }
}

template <Type kT>
inline std::uint64_t ienc(std::int64_t r) {
  if constexpr (kT == Type::S32) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(r)));
  } else if constexpr (kT == Type::U32) {
    return static_cast<std::uint32_t>(r);
  } else {
    return static_cast<std::uint64_t>(r);
  }
}

template <Type kT>
inline double fdec(std::uint64_t raw) {
  if constexpr (kT == Type::F32) {
    return dec_f32(raw);
  } else {
    return dec_f64(raw);
  }
}

template <Type kT>
inline std::uint64_t fenc(double v) {
  if constexpr (kT == Type::F32) {
    return enc_f32(static_cast<float>(v));
  } else {
    return enc_f64(v);
  }
}

/// SetP operand interpretation per type, matching exec_compute: floats
/// compare as double, S32 sign-extends, U32/U64 compare unsigned.
template <Type kT>
inline auto setp_dec(std::uint64_t raw) {
  if constexpr (kT == Type::F32) {
    return static_cast<double>(dec_f32(raw));
  } else if constexpr (kT == Type::F64) {
    return dec_f64(raw);
  } else if constexpr (kT == Type::S32) {
    return static_cast<std::int64_t>(static_cast<std::int32_t>(raw));
  } else if constexpr (kT == Type::U32) {
    return raw & 0xFFFFFFFFull;
  } else {
    return raw;
  }
}

/// Evaluates one unguarded SetP over all n lanes into its dst row. Shared
/// by the Setp* handlers and the FusedSetpBra superinstruction.
#define GPC_SETP_CASE(name, OP)                                            \
  case CmpOp::name:                                                        \
    for (int i = 0; i < n; ++i) {                                          \
      const int l = kSimd ? i : all[i];                                    \
      pd[l] = (setp_dec<kT>(pa[l]) OP setp_dec<kT>(pb[l])) ? 1 : 0;        \
    }                                                                      \
    break;

template <bool kSimd, Type kT>
inline void setp_eval(const MicroOp& m, std::uint64_t* regs, int width,
                      const int* all, int n, std::uint64_t* s0,
                      std::uint64_t* s1) {
  const std::uint64_t* pa = lane_src(m.a, regs, width, s0);
  const std::uint64_t* pb = lane_src(m.b, regs, width, s1);
  std::uint64_t* pd = regs + static_cast<std::size_t>(m.dst) * width;
  switch (m.cmp) {
    GPC_SETP_CASE(Eq, ==)
    GPC_SETP_CASE(Ne, !=)
    GPC_SETP_CASE(Lt, <)
    GPC_SETP_CASE(Le, <=)
    GPC_SETP_CASE(Gt, >)
    default:
      for (int i = 0; i < n; ++i) {
        const int l = kSimd ? i : all[i];
        pd[l] = (setp_dec<kT>(pa[l]) >= setp_dec<kT>(pb[l])) ? 1 : 0;
      }
      break;
  }
}

#undef GPC_SETP_CASE

// Fused-group bodies. All components are unguarded register defs verified by
// the fusion pass; every intermediate dst is written so the register file is
// indistinguishable from unfused execution at every group boundary (and a
// later divergence / preempt / resume sees identical state). Where a later
// component reads a register an earlier component just wrote, the freshly
// encoded value is forwarded through the same encode/decode round-trip the
// register file would have applied.

/// shl dst0, a, imm ; add dst1, ·, · — one operand of the add is dst0.
template <bool kSimd, Type kT>
inline void fused_shladd(const MicroOp& c0, const MicroOp& c1,
                         std::uint64_t* regs, int width, const int* all,
                         int n, std::uint64_t* s0, std::uint64_t* s1) {
  const std::int64_t sh = idec<kT>(c0.b.imm) & (kT == Type::U64 ? 63 : 31);
  const std::uint64_t* pa = lane_src(c0.a, regs, width, s0);
  const MOp& oth = (c1.a.reg == c0.dst) ? c1.b : c1.a;
  const bool ochain = oth.reg == c0.dst;
  const std::uint64_t* po =
      ochain ? nullptr : lane_src(oth, regs, width, s1);
  std::uint64_t* pd0 = regs + static_cast<std::size_t>(c0.dst) * width;
  std::uint64_t* pd1 = regs + static_cast<std::size_t>(c1.dst) * width;
  for (int i = 0; i < n; ++i) {
    const int l = kSimd ? i : all[i];
    const std::uint64_t e0 = ienc<kT>(idec<kT>(pa[l]) << sh);
    const std::int64_t ch = idec<kT>(e0);
    const std::int64_t ov = ochain ? ch : idec<kT>(po[l]);
    pd0[l] = e0;
    pd1[l] = ienc<kT>(ch + ov);
  }
}

/// mul dst0, a, b ; add dst1, ·, · — the integer mad idiom.
template <bool kSimd, Type kT>
inline void fused_muladd_i(const MicroOp& c0, const MicroOp& c1,
                           std::uint64_t* regs, int width, const int* all,
                           int n, std::uint64_t* s0, std::uint64_t* s1,
                           std::uint64_t* s2) {
  const std::uint64_t* pa = lane_src(c0.a, regs, width, s0);
  const std::uint64_t* pb = lane_src(c0.b, regs, width, s1);
  const MOp& oth = (c1.a.reg == c0.dst) ? c1.b : c1.a;
  const bool ochain = oth.reg == c0.dst;
  const std::uint64_t* po =
      ochain ? nullptr : lane_src(oth, regs, width, s2);
  std::uint64_t* pd0 = regs + static_cast<std::size_t>(c0.dst) * width;
  std::uint64_t* pd1 = regs + static_cast<std::size_t>(c1.dst) * width;
  for (int i = 0; i < n; ++i) {
    const int l = kSimd ? i : all[i];
    const std::uint64_t e0 = ienc<kT>(idec<kT>(pa[l]) * idec<kT>(pb[l]));
    const std::int64_t ch = idec<kT>(e0);
    const std::int64_t ov = ochain ? ch : idec<kT>(po[l]);
    pd0[l] = e0;
    pd1[l] = ienc<kT>(ch + ov);
  }
}

/// Float mul/add pair. The multiply result goes through the f32/f64
/// writeback rounding before the add reads it — two roundings, never a
/// contracted fma — and the add preserves its original operand order (IEEE
/// addition is value-commutative but not payload-commutative for NaNs).
template <bool kSimd, Type kT>
inline void fused_muladd_f(const MicroOp& c0, const MicroOp& c1,
                           std::uint64_t* regs, int width, const int* all,
                           int n, std::uint64_t* s0, std::uint64_t* s1,
                           std::uint64_t* s2) {
  const std::uint64_t* pa = lane_src(c0.a, regs, width, s0);
  const std::uint64_t* pb = lane_src(c0.b, regs, width, s1);
  const bool chain_is_a = c1.a.reg == c0.dst;
  const MOp& oth = chain_is_a ? c1.b : c1.a;
  const bool ochain = oth.reg == c0.dst;
  const std::uint64_t* po =
      ochain ? nullptr : lane_src(oth, regs, width, s2);
  std::uint64_t* pd0 = regs + static_cast<std::size_t>(c0.dst) * width;
  std::uint64_t* pd1 = regs + static_cast<std::size_t>(c1.dst) * width;
  for (int i = 0; i < n; ++i) {
    const int l = kSimd ? i : all[i];
    const std::uint64_t e0 = fenc<kT>(fdec<kT>(pa[l]) * fdec<kT>(pb[l]));
    const double ch = fdec<kT>(e0);
    const double ov = ochain ? ch : fdec<kT>(po[l]);
    const double x = chain_is_a ? ch : ov;
    const double y = chain_is_a ? ov : ch;
    pd0[l] = e0;
    pd1[l] = fenc<kT>(x + y);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// The engine.

// Budget / bounds / dynamic-mix accounting per scheduler-issued warp
// instruction, then dispatch: guarded non-control ops take the generic
// guard-filter path (identical to run_converged's default case); everything
// else jumps through the XOp table. The cohort limit check comes first —
// reaching the next cohort's PC ends the run before the op there is issued,
// so no budget/xkind accounting happens for it (the min-PC scheduler would
// issue it for the merged lane set on the next step).
#define GPC_DISPATCH()                                                     \
  do {                                                                     \
    if constexpr (kCohort) {                                               \
      if (pc >= run.limit) {                                               \
        run.pc = pc;                                                       \
        return CohortStop::Limit;                                          \
      }                                                                    \
    }                                                                      \
    GPC_CHECK(pc < nops, "pc ran past end of " + fn_.name);                \
    if (++steps_ > budget_) [[unlikely]] {                                 \
      resil::note_watchdog_trip();                                         \
      throw DeviceFault("kernel exceeded instruction budget in " +         \
                        fn_.name);                                         \
    }                                                                      \
    m = ops + pc;                                                          \
    stats_.xkind_issues[static_cast<int>(m->kind)]++;                      \
    if (baiwc) [[unlikely]] baiwc->issue(pc, n);                         \
    if (m->guard >= 0 && m->kind > XKind::Bar) goto L_guarded;             \
    goto* table[static_cast<std::uint16_t>(m->xop)];                       \
  } while (false)

// Generic typed-handler bodies. `expr` sees per-lane operands a, b, c
// already decoded for the handler's type; the result is encoded with the
// same writeback the scalar interpreter applies.
#define GPC_FLT_BODY(TY, expr)                                             \
  {                                                                        \
    bump_issue(stats_, *m, n);                                             \
    if (m->dst >= 0) {                                                     \
      const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);       \
      const std::uint64_t* pb = lane_src(m->b, regs, width, sp1);       \
      const std::uint64_t* pcc = lane_src(m->c, regs, width, sp2);      \
      std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width; \
      for (int i = 0; i < n; ++i) {                                        \
        const int l = kSimd ? i : all[i];                                  \
        const double a = fdec<TY>(pa[l]);                                  \
        const double b = fdec<TY>(pb[l]);                                  \
        const double c = fdec<TY>(pcc[l]);                                 \
        (void)b;                                                           \
        (void)c;                                                           \
        pd[l] = fenc<TY>(expr);                                            \
      }                                                                    \
    }                                                                      \
    ++pc;                                                                  \
    GPC_DISPATCH();                                                        \
  }

#define GPC_FLT2(name, expr)                                               \
  L_F32##name : GPC_FLT_BODY(Type::F32, expr)                              \
  L_F64##name : GPC_FLT_BODY(Type::F64, expr)

#define GPC_INT_BODY(TY, expr)                                             \
  {                                                                        \
    bump_issue(stats_, *m, n);                                             \
    if (m->dst >= 0) {                                                     \
      const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);       \
      const std::uint64_t* pb = lane_src(m->b, regs, width, sp1);       \
      const std::uint64_t* pcc = lane_src(m->c, regs, width, sp2);      \
      std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width; \
      for (int i = 0; i < n; ++i) {                                        \
        const int l = kSimd ? i : all[i];                                  \
        const std::int64_t a = idec<TY>(pa[l]);                            \
        const std::int64_t b = idec<TY>(pb[l]);                            \
        const std::int64_t c = idec<TY>(pcc[l]);                           \
        (void)b;                                                           \
        (void)c;                                                           \
        pd[l] = ienc<TY>(expr);                                            \
      }                                                                    \
    }                                                                      \
    ++pc;                                                                  \
    GPC_DISPATCH();                                                        \
  }

// 32-bit-lane variant for S32/U32 ops whose int64 result, truncated to the
// low 32 bits by ienc, equals the same computation done in uint32 wraparound
// arithmetic (add/sub/mul/mad/neg, bitwise, shifts, and — via explicit
// casts in expr — min/max). Working in 32-bit lanes matters because AVX2
// has native 32-bit multiplies but only emulated 64-bit ones; the unrolled
// MxM inner loop is two integer mads per ld.shared.
#define GPC_INT_BODY32(TY, expr)                                           \
  {                                                                        \
    bump_issue(stats_, *m, n);                                             \
    if (m->dst >= 0) {                                                     \
      const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);       \
      const std::uint64_t* pb = lane_src(m->b, regs, width, sp1);       \
      const std::uint64_t* pcc = lane_src(m->c, regs, width, sp2);      \
      std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width; \
      for (int i = 0; i < n; ++i) {                                        \
        const int l = kSimd ? i : all[i];                                  \
        const std::uint32_t a = static_cast<std::uint32_t>(pa[l]);         \
        const std::uint32_t b = static_cast<std::uint32_t>(pb[l]);         \
        const std::uint32_t c = static_cast<std::uint32_t>(pcc[l]);        \
        (void)b;                                                           \
        (void)c;                                                           \
        pd[l] = ienc<TY>(static_cast<std::int64_t>(                        \
            static_cast<std::int32_t>(expr)));                             \
      }                                                                    \
    }                                                                      \
    ++pc;                                                                  \
    GPC_DISPATCH();                                                        \
  }

#define GPC_INT3(name, expr)                                               \
  L_S32##name : GPC_INT_BODY(Type::S32, expr)                              \
  L_U32##name : GPC_INT_BODY(Type::U32, expr)                              \
  L_U64##name : GPC_INT_BODY(Type::U64, expr)

// S32/U32 run the 32-bit body (expr32 over uint32 a/b/c), U64 keeps the
// generic 64-bit body (expr64 over int64 a/b/c).
#define GPC_INT3_32(name, expr32, expr64)                                  \
  L_S32##name : GPC_INT_BODY32(Type::S32, expr32)                          \
  L_U32##name : GPC_INT_BODY32(Type::U32, expr32)                          \
  L_U64##name : GPC_INT_BODY(Type::U64, expr64)

template <bool kSimd, bool kCohort>
BlockExecutor::CohortStop BlockExecutor::engine_goto(Warp& w, CohortRun& run) {
  static_assert(!(kSimd && kCohort),
                "cohort lane lists are non-contiguous: no simd addressing");
  // Generated from the same X-macro lists as the XOp enum: table[i] is the
  // handler for XOp(i) by construction.
  static const void* const table[kNumXOps] = {
#define GPC_X(name) &&L_##name,
      GPC_XOP_BASIC(GPC_X)
#undef GPC_X
#define GPC_X(name) &&L_F32##name, &&L_F64##name,
          GPC_XOP_FLOAT_OPS(GPC_X)
#undef GPC_X
#define GPC_X(name) &&L_S32##name, &&L_U32##name, &&L_U64##name,
              GPC_XOP_INT_OPS(GPC_X)
#undef GPC_X
  };

  // Shared-memory conflict accounting, inlined for the fast path below:
  // power-of-two bank counts (every GPU spec) get the bitmask degree-1
  // proof without the account_shared call; mask 0 means "call the slow
  // path" (single-bank CPU devices, exotic bank counts).
  const int sbanks = spec_.shared_banks;
  const std::uint64_t sbank_mask =
      (sbanks > 1 && sbanks <= 64 && (sbanks & (sbanks - 1)) == 0)
          ? static_cast<std::uint64_t>(sbanks) - 1
          : 0;
  if (sbank_mask != 0 &&
      arena_.bank_word.size() < static_cast<std::size_t>(sbanks)) {
    arena_.bank_word.assign(sbanks, 0);
  }

  const MicroOp* const ops = prog_.ops.data();
  const int nops = static_cast<int>(prog_.ops.size());
  // In cohort mode the active lane set is the scheduler's (sorted,
  // non-contiguous) lane list; converged runs use the identity list over the
  // full warp width.
  const int n = kCohort ? run.n : w.width;
  const int width = w.width;
  const int* const all = kCohort ? run.lanes : arena_.all_lanes.data();
  int* const exec = arena_.exec.data();
  std::uint64_t* const regs = w.regs;
  std::uint64_t* const sp0 = arena_.splat.data();
  std::uint64_t* const sp1 = sp0 + spec_.warp_size;
  std::uint64_t* const sp2 = sp1 + spec_.warp_size;
  int pc = kCohort ? run.pc : w.cpc;
  const MicroOp* m = nullptr;
  // Hoisted: the dispatch macro tests this per instruction; a local lets the
  // compiler keep it in a register across the opaque handler calls instead
  // of reloading the member through `this` every dispatch.
  aiwc::BlockAiwc* const baiwc = baiwc_.get();

  GPC_DISPATCH();

  // ---- Control flow ------------------------------------------------------

L_Exit:
  if constexpr (kCohort) {
    // The scheduler retires this cohort's lanes (it owns pc[]).
    run.pc = pc;
    return CohortStop::Exited;
  } else {
    for (int l = 0; l < n; ++l) w.pc[l] = -1;
    return CohortStop::Exited;  // finished; converged stays set
  }

L_Bar:
  if constexpr (kCohort) {
    // The scheduler owns the divergence check, pc[] sync and barrier
    // accounting — it can see the cohorts that are NOT here. The xkind
    // bump for the Bar already happened at dispatch, matching min-PC's
    // bump-then-check order.
    run.pc = pc;
    return CohortStop::Barrier;
  } else {
    // All live lanes are here by construction — never divergent here.
    stats_.barrier_count++;
    ++pc;
    for (int l = 0; l < n; ++l) w.pc[l] = pc;
    w.cpc = pc;
    w.waiting = true;
    return CohortStop::Barrier;
  }

L_Bra : {
  stats_.branch_issues++;
  if (m->guard < 0) {
    if (baiwc) [[unlikely]] baiwc->branch(pc, n, n);
    pc = m->target;
    GPC_DISPATCH();
  }
  int taken = 0;
  std::uint64_t tmask = 0;
  if constexpr (kCohort) {
    // One pass: the mask doubles as the split payload (splits are the
    // common outcome on this path, unlike the converged engine).
    for (int i = 0; i < n; ++i) {
      const int l = all[i];
      const bool t = guard_pass(w, *m, l);
      tmask |= static_cast<std::uint64_t>(t) << l;
      taken += t;
    }
  } else {
    for (int i = 0; i < n; ++i) {
      taken += guard_pass(w, *m, kSimd ? i : all[i]);
    }
  }
  if (baiwc) [[unlikely]] baiwc->branch(pc, taken, n);
  if (taken == n) {
    pc = m->target;
    GPC_DISPATCH();
  }
  // A partial-taken branch whose target IS the fallthrough never splits:
  // both sides land on pc+1 (min-PC would see one cohort there too).
  if (taken == 0 || (kCohort && m->target == pc + 1)) {
    ++pc;
    GPC_DISPATCH();
  }
  if constexpr (kCohort) {
    // The cohort splits: report both sides to the reconvergence stack.
    run.bra_pc = pc;
    run.target = m->target;
    run.taken_mask = tmask;
    run.pc = pc + 1;
    return CohortStop::Split;
  } else {
    // The warp splits: hand the per-lane PCs to the min-PC scheduler.
    for (int l = 0; l < n; ++l) {
      w.pc[l] = guard_pass(w, *m, l) ? m->target : pc + 1;
    }
    w.converged = false;
    return CohortStop::Split;
  }
}

  // ---- Guarded non-control ops: generic filter path ----------------------

L_guarded : {
  int nexec = 0;
  for (int i = 0; i < n; ++i) {
    const int l = kCohort ? all[i] : i;
    if (guard_pass(w, *m, l)) exec[nexec++] = l;
  }
  if (nexec == n) {
    // Every lane passes — the dominant case for boundary-guard predication
    // (interior blocks of St2D/Sobel never clip). The guard only filters
    // lanes, so the unguarded handler is semantically and accounting-wise
    // identical on the full lane set. Fused heads are always unguarded
    // (decode.cpp), so m->xop here is never a superinstruction.
    goto* table[static_cast<std::uint16_t>(m->xop)];
  }
  if (nexec > 0) {
    if (m->kind <= XKind::MemTex) {
      exec_memory(w, *m, exec, nexec);
    } else {
      exec_compute(w, *m, exec, nexec);
    }
  } else {
    stats_.alu_issues++;  // predicated-off issue still consumes a slot
  }
  ++pc;
  GPC_DISPATCH();
}

  // ---- Memory (all state spaces share the batched implementation) --------

L_LdParam:
L_MemGlobal:
L_MemLocal:
L_MemTex:
  exec_memory(w, *m, all, n);
  ++pc;
  GPC_DISPATCH();

L_MemConst : {
  // Immediate constant-bank load: the OpenCL front end materialises every
  // literal as an ld.const with an immediate address, so this runs at
  // register-mov frequency. One bounds check, one load, broadcast —
  // replicating the generic path (which account_const prices as one
  // broadcast cycle) without the per-lane gather.
  const MicroOp& mm = *m;
  if (mm.op == ir::Opcode::Ld && mm.dst >= 0 && mm.a.reg < 0) {
    const std::uint64_t a = mm.a.imm;
    if (a + mm.msize > fn_.const_data.size()) [[unlikely]] {
      exec_memory(w, mm, all, n);  // throws the exact fault message
    }
    std::uint64_t raw = 0;
    std::memcpy(&raw, fn_.const_data.data() + a, mm.msize);
    if (mm.type == Type::S32) {
      raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
    }
    std::uint64_t* const pd = regs + static_cast<std::size_t>(mm.dst) * width;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = raw;
    }
    stats_.const_cycles += 1;  // uniform address: broadcast, one cycle
    ++pc;
    GPC_DISPATCH();
  }
  exec_memory(w, mm, all, n);
  ++pc;
  GPC_DISPATCH();
}

L_MemShared : {
  // Specialised path for the dominant shared-memory traffic (tiled kernels
  // issue two ld.shared per unrolled inner-loop step — the generic
  // exec_memory was 70% of the convergent-MxM profile): unguarded 4-byte
  // ld/st with no sanitizer attached runs in three vectorizable passes —
  // gather+check, load-or-store, conflict accounting. Anything else
  // (atomics, other widths, sanitizer on, a faulting lane) falls back to
  // exec_memory, which replays the checks and throws the exact fault.
  const MicroOp& mm = *m;
  if (!bsan_ && !baiwc && mm.msize == 4 &&
      (mm.op == ir::Opcode::St ||
       (mm.op == ir::Opcode::Ld && mm.dst >= 0))) {
    arena_.addr.resize(static_cast<std::size_t>(n));
    std::uint64_t* const ad = arena_.addr.data();
    const std::uint64_t* pa = lane_src(mm.a, regs, width, sp0);
    const std::uint64_t limit = arena_.shared.size();
    std::uint64_t bad = 0;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      const std::uint64_t a = pa[l];
      ad[i] = a;
      bad |= static_cast<std::uint64_t>(a + 4 > limit) | (a & 3);
    }
    if (bad != 0) [[unlikely]] {
      exec_memory(w, mm, all, n);  // throws with the faulting offset
    }
    std::uint8_t* const sh = arena_.shared.data();
    if (mm.op == ir::Opcode::Ld) {
      std::uint64_t* const pd =
          regs + static_cast<std::size_t>(mm.dst) * width;
      if (mm.type == Type::S32) {
        for (int i = 0; i < n; ++i) {
          const int l = kSimd ? i : all[i];
          std::uint32_t raw;
          std::memcpy(&raw, sh + ad[i], 4);
          pd[l] = enc_int(Type::S32, static_cast<std::int32_t>(raw));
        }
      } else {
        for (int i = 0; i < n; ++i) {
          const int l = kSimd ? i : all[i];
          std::uint32_t raw;
          std::memcpy(&raw, sh + ad[i], 4);
          pd[l] = raw;
        }
      }
    } else {
      const std::uint64_t* pb = lane_src(mm.b, regs, width, sp1);
      for (int i = 0; i < n; ++i) {
        const int l = kSimd ? i : all[i];
        const std::uint32_t v = static_cast<std::uint32_t>(pb[l]);
        std::memcpy(sh + ad[i], &v, 4);
      }
    }
    if (sbank_mask != 0) {
      std::uint64_t* const bw = arena_.bank_word.data();
      std::uint64_t used = 0;
      bool clean = true;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t wd = ad[i] >> 2;
        const std::uint64_t b = wd & sbank_mask;
        const std::uint64_t bit = 1ull << b;
        if ((used & bit) == 0) {
          used |= bit;
          bw[b] = wd;
        } else if (bw[b] != wd) {
          clean = false;  // bank conflict: take the exact stamped count
          break;
        }
      }
      if (clean) {
        stats_.shared_cycles += 1;
      } else {
        account_shared(ad, n);
      }
    } else {
      account_shared(ad, n);
    }
    ++pc;
    GPC_DISPATCH();
  }
  exec_memory(w, mm, all, n);
  ++pc;
  GPC_DISPATCH();
}

  // ---- Compute: generic fallbacks ----------------------------------------

L_ReadSReg : {
  // Special-register reads are hot in index-heavy kernels (every thread
  // computes its tid first). In the converged engine the lane set is the
  // identity, so flat ids are consecutive: TidX and LaneId reduce to an
  // increment-with-wrap (one divide per warp, not per lane), and everything
  // except TidX/TidY/TidZ/LaneId is warp-uniform and broadcasts one value.
  // A cohort's lane ids are NOT consecutive — the wrap trick would
  // misnumber them, so a per-lane flat-id computation runs instead
  // (uniform sregs still broadcast one value).
  if constexpr (kCohort) {
    const MicroOp& mm = *m;
    bump_issue(stats_, mm, n);
    if (mm.dst >= 0) {
      std::uint64_t* const pd =
          regs + static_cast<std::size_t>(mm.dst) * width;
      const ir::SReg s = mm.sreg;
      if (s == ir::SReg::TidX || s == ir::SReg::LaneId) {
        const std::int64_t mod =
            (s == ir::SReg::TidX) ? config_.block.x : spec_.warp_size;
        for (int i = 0; i < n; ++i) {
          const int l = all[i];
          pd[l] = enc_int(Type::S32, (w.base + l) % mod);
        }
      } else if (s == ir::SReg::TidY || s == ir::SReg::TidZ) {
        for (int i = 0; i < n; ++i) {
          const int l = all[i];
          pd[l] = enc_int(Type::S32,
                          static_cast<std::int64_t>(sreg_value(s, w, l)));
        }
      } else {
        const std::uint64_t v =
            enc_int(Type::S32, static_cast<std::int64_t>(sreg_value(s, w, 0)));
        for (int i = 0; i < n; ++i) pd[all[i]] = v;
      }
    }
    ++pc;
    GPC_DISPATCH();
  }
  const MicroOp& mm = *m;
  bump_issue(stats_, mm, n);
  if (mm.dst >= 0) {
    std::uint64_t* const pd = regs + static_cast<std::size_t>(mm.dst) * width;
    const ir::SReg s = mm.sreg;
    if (s == ir::SReg::TidX || s == ir::SReg::LaneId) {
      const std::int64_t mod =
          (s == ir::SReg::TidX) ? config_.block.x : spec_.warp_size;
      std::int64_t v = w.base % mod;
      for (int i = 0; i < n; ++i) {
        const int l = kSimd ? i : all[i];
        pd[l] = enc_int(Type::S32, v);
        if (++v == mod) v = 0;
      }
    } else if (s == ir::SReg::TidY || s == ir::SReg::TidZ) {
      for (int i = 0; i < n; ++i) {
        const int l = kSimd ? i : all[i];
        pd[l] = enc_int(Type::S32,
                        static_cast<std::int64_t>(sreg_value(s, w, l)));
      }
    } else {
      const std::uint64_t v =
          enc_int(Type::S32, static_cast<std::int64_t>(sreg_value(s, w, 0)));
      for (int i = 0; i < n; ++i) {
        const int l = kSimd ? i : all[i];
        pd[l] = v;
      }
    }
  }
  ++pc;
  GPC_DISPATCH();
}

L_ComputeOther:
  exec_compute(w, *m, all, n);
  ++pc;
  GPC_DISPATCH();

L_Mov : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = pa[l];
    }
  }
  ++pc;
  GPC_DISPATCH();
}

L_SelP : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    const std::uint64_t* pb = lane_src(m->b, regs, width, sp1);
    const std::uint64_t* pcc = lane_src(m->c, regs, width, sp2);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = (pa[l] & 1) != 0 ? pb[l] : pcc[l];
    }
  }
  ++pc;
  GPC_DISPATCH();
}

  // ---- Conversions, split by source/destination domain --------------------

L_CvtFF : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    const Type st = m->src_type, dt = m->type;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = enc_float(dt, dec_float(st, pa[l]));
    }
  }
  ++pc;
  GPC_DISPATCH();
}

L_CvtFI : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    const Type st = m->src_type, dt = m->type;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = enc_int(
          dt, static_cast<std::int64_t>(dec_float(st, pa[l])));
    }
  }
  ++pc;
  GPC_DISPATCH();
}

L_CvtIF : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    const Type st = m->src_type, dt = m->type;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = enc_float(dt, static_cast<double>(dec_int(st, pa[l])));
    }
  }
  ++pc;
  GPC_DISPATCH();
}

L_CvtII : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    const std::uint64_t* pa = lane_src(m->a, regs, width, sp0);
    std::uint64_t* pd = regs + static_cast<std::size_t>(m->dst) * width;
    const Type st = m->src_type, dt = m->type;
    for (int i = 0; i < n; ++i) {
      const int l = kSimd ? i : all[i];
      pd[l] = enc_int(dt, dec_int(st, pa[l]));
    }
  }
  ++pc;
  GPC_DISPATCH();
}

  // ---- Compares, split by operand type ------------------------------------

L_SetpF32 : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    setp_eval<kSimd, Type::F32>(*m, regs, width, all, n, sp0, sp1);
  }
  ++pc;
  GPC_DISPATCH();
}

L_SetpF64 : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    setp_eval<kSimd, Type::F64>(*m, regs, width, all, n, sp0, sp1);
  }
  ++pc;
  GPC_DISPATCH();
}

L_SetpS32 : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    setp_eval<kSimd, Type::S32>(*m, regs, width, all, n, sp0, sp1);
  }
  ++pc;
  GPC_DISPATCH();
}

L_SetpU32 : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    setp_eval<kSimd, Type::U32>(*m, regs, width, all, n, sp0, sp1);
  }
  ++pc;
  GPC_DISPATCH();
}

L_SetpU64 : {
  bump_issue(stats_, *m, n);
  if (m->dst >= 0) {
    setp_eval<kSimd, Type::U64>(*m, regs, width, all, n, sp0, sp1);
  }
  ++pc;
  GPC_DISPATCH();
}

  // ---- Superinstructions ---------------------------------------------------

L_FusedAddrGen : {
  // cvt.u64 d0, src ; and.u64 d1, d0, imm ; shl.u64 d2, d1, imm ;
  // add.u64 d3, ·, · — the OpenCL front end's per-access global address.
  const MicroOp& c0 = ops[pc];
  const MicroOp& c1 = ops[pc + 1];
  const MicroOp& c2 = ops[pc + 2];
  const MicroOp& c3 = ops[pc + 3];
  check_budget_extra(3);
  stats_.xkind_issues[static_cast<int>(c1.kind)]++;
  stats_.xkind_issues[static_cast<int>(c2.kind)]++;
  stats_.xkind_issues[static_cast<int>(c3.kind)]++;
  if (baiwc) [[unlikely]] {
    baiwc->issue(pc + 1, n);
    baiwc->issue(pc + 2, n);
    baiwc->issue(pc + 3, n);
  }
  bump_issue(stats_, c0, n);
  bump_issue(stats_, c1, n);
  bump_issue(stats_, c2, n);
  bump_issue(stats_, c3, n);
  stats_.fused_groups++;
  stats_.fused_exec[static_cast<int>(FusedPattern::AddrGen)]++;

  const bool sext = c0.src_type == Type::S32;
  const std::uint64_t mask64 = c1.b.imm;
  const std::int64_t sh = static_cast<std::int64_t>(c2.b.imm) & 63;
  const std::uint64_t* psrc = lane_src(c0.a, regs, width, sp0);
  const MOp& oth = (c3.a.reg == c2.dst) ? c3.b : c3.a;
  // The add's second operand may itself name a register an earlier
  // component just redefined; forward the in-flight value in that case.
  int osel;
  const std::uint64_t* po = nullptr;
  if (oth.reg == c2.dst) {
    osel = 3;
  } else if (oth.reg == c1.dst) {
    osel = 2;
  } else if (oth.reg == c0.dst) {
    osel = 1;
  } else {
    osel = 0;
    po = lane_src(oth, regs, width, sp1);
  }
  std::uint64_t* pd0 = regs + static_cast<std::size_t>(c0.dst) * width;
  std::uint64_t* pd1 = regs + static_cast<std::size_t>(c1.dst) * width;
  std::uint64_t* pd2 = regs + static_cast<std::size_t>(c2.dst) * width;
  std::uint64_t* pd3 = regs + static_cast<std::size_t>(c3.dst) * width;
  for (int i = 0; i < n; ++i) {
    const int l = kSimd ? i : all[i];
    const std::uint64_t raw = psrc[l];
    const std::uint64_t v0 =
        sext ? static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(static_cast<std::int32_t>(raw)))
             : static_cast<std::uint64_t>(static_cast<std::uint32_t>(raw));
    const std::uint64_t v1 = v0 & mask64;
    const std::uint64_t v2 = v1 << sh;
    const std::uint64_t vo =
        osel == 0 ? po[l] : osel == 1 ? v0 : osel == 2 ? v1 : v2;
    pd0[l] = v0;
    pd1[l] = v1;
    pd2[l] = v2;
    pd3[l] = v2 + vo;
  }
  pc += 4;
  GPC_DISPATCH();
}

L_FusedShlAdd : {
  const MicroOp& c0 = ops[pc];
  const MicroOp& c1 = ops[pc + 1];
  check_budget_extra(1);
  stats_.xkind_issues[static_cast<int>(c1.kind)]++;
  if (baiwc) [[unlikely]] baiwc->issue(pc + 1, n);
  bump_issue(stats_, c0, n);
  bump_issue(stats_, c1, n);
  stats_.fused_groups++;
  stats_.fused_exec[static_cast<int>(FusedPattern::ShlAdd)]++;
  switch (c0.type) {
    case Type::S32:
      fused_shladd<kSimd, Type::S32>(c0, c1, regs, width, all, n, sp0, sp1);
      break;
    case Type::U32:
      fused_shladd<kSimd, Type::U32>(c0, c1, regs, width, all, n, sp0, sp1);
      break;
    default:
      fused_shladd<kSimd, Type::U64>(c0, c1, regs, width, all, n, sp0, sp1);
      break;
  }
  pc += 2;
  GPC_DISPATCH();
}

L_FusedMulAdd : {
  const MicroOp& c0 = ops[pc];
  const MicroOp& c1 = ops[pc + 1];
  check_budget_extra(1);
  stats_.xkind_issues[static_cast<int>(c1.kind)]++;
  if (baiwc) [[unlikely]] baiwc->issue(pc + 1, n);
  bump_issue(stats_, c0, n);
  bump_issue(stats_, c1, n);
  stats_.fused_groups++;
  stats_.fused_exec[static_cast<int>(FusedPattern::MulAdd)]++;
  if (c0.kind == XKind::FloatOp) {
    if (c0.type == Type::F32) {
      fused_muladd_f<kSimd, Type::F32>(c0, c1, regs, width, all, n, sp0, sp1,
                                       sp2);
    } else {
      fused_muladd_f<kSimd, Type::F64>(c0, c1, regs, width, all, n, sp0, sp1,
                                       sp2);
    }
  } else {
    switch (c0.type) {
      case Type::S32:
        fused_muladd_i<kSimd, Type::S32>(c0, c1, regs, width, all, n, sp0,
                                         sp1, sp2);
        break;
      case Type::U32:
        fused_muladd_i<kSimd, Type::U32>(c0, c1, regs, width, all, n, sp0,
                                         sp1, sp2);
        break;
      default:
        fused_muladd_i<kSimd, Type::U64>(c0, c1, regs, width, all, n, sp0,
                                         sp1, sp2);
        break;
    }
  }
  pc += 2;
  GPC_DISPATCH();
}

L_FusedSetpBra : {
  // setp d, a, b ; @d bra target — compare-and-branch. The predicate is a
  // real register write; the branch decision replays guard_pass semantics.
  const MicroOp& c0 = ops[pc];
  const MicroOp& c1 = ops[pc + 1];
  check_budget_extra(1);
  stats_.xkind_issues[static_cast<int>(c1.kind)]++;
  if (baiwc) [[unlikely]] baiwc->issue(pc + 1, n);
  bump_issue(stats_, c0, n);
  stats_.branch_issues++;
  stats_.fused_groups++;
  stats_.fused_exec[static_cast<int>(FusedPattern::SetpBra)]++;
  switch (c0.type) {
    case Type::F32:
      setp_eval<kSimd, Type::F32>(c0, regs, width, all, n, sp0, sp1);
      break;
    case Type::F64:
      setp_eval<kSimd, Type::F64>(c0, regs, width, all, n, sp0, sp1);
      break;
    case Type::S32:
      setp_eval<kSimd, Type::S32>(c0, regs, width, all, n, sp0, sp1);
      break;
    case Type::U32:
      setp_eval<kSimd, Type::U32>(c0, regs, width, all, n, sp0, sp1);
      break;
    default:
      setp_eval<kSimd, Type::U64>(c0, regs, width, all, n, sp0, sp1);
      break;
  }
  const std::uint64_t* pd = regs + static_cast<std::size_t>(c0.dst) * width;
  const bool neg = c1.guard_negated;
  int taken = 0;
  for (int i = 0; i < n; ++i) {
    const int l = kSimd ? i : all[i];
    const bool p = (pd[l] & 1) != 0;
    taken += (neg ? !p : p) ? 1 : 0;
  }
  if (baiwc) [[unlikely]] baiwc->branch(pc + 1, taken, n);
  if (taken == n) {
    pc = c1.target;
    GPC_DISPATCH();
  }
  if (taken == 0 || (kCohort && c1.target == pc + 2)) {
    pc += 2;
    GPC_DISPATCH();
  }
  if constexpr (kCohort) {
    std::uint64_t tmask = 0;
    for (int i = 0; i < n; ++i) {
      const bool p = (pd[all[i]] & 1) != 0;
      if (neg ? !p : p) tmask |= 1ull << all[i];
    }
    run.bra_pc = pc + 1;  // the Bra component's PC, for the rpc table
    run.target = c1.target;
    run.taken_mask = tmask;
    run.pc = pc + 2;
    return CohortStop::Split;
  } else {
    for (int l = 0; l < n; ++l) {
      const bool p = (pd[l] & 1) != 0;
      w.pc[l] = (neg ? !p : p) ? c1.target : pc + 2;
    }
    w.converged = false;
    return CohortStop::Split;
  }
}

  // ---- Typed float arithmetic ---------------------------------------------

  GPC_FLT2(Add, a + b)
  GPC_FLT2(Sub, a - b)
  GPC_FLT2(Mul, a * b)
  GPC_FLT2(Div, ({
             double r;
             if (b == 0) {
               note_div_by_zero(*m);
               r = 0;
             } else {
               r = a / b;
             }
             r;
           }))
  // GT200-style mad: the multiply rounds to f32 first (both precisions,
  // matching the scalar interpreter).
  GPC_FLT2(Mad, static_cast<double>(static_cast<float>(a) *
                                    static_cast<float>(b)) +
                    c)
  GPC_FLT2(Fma, std::fma(a, b, c))
  GPC_FLT2(Neg, -a)
  GPC_FLT2(Abs, std::fabs(a))
  GPC_FLT2(Min, (std::min(a, b)))
  GPC_FLT2(Max, (std::max(a, b)))
  GPC_FLT2(Sqrt, std::sqrt(a))
  GPC_FLT2(Rsqrt, 1.0 / std::sqrt(a))
  GPC_FLT2(Rcp, 1.0 / a)
  // f32 sin/cos evaluate at float precision (GPU SFU semantics).
  L_F32Sin : GPC_FLT_BODY(Type::F32, std::sin(static_cast<float>(a)))
  L_F64Sin : GPC_FLT_BODY(Type::F64, std::sin(a))
  L_F32Cos : GPC_FLT_BODY(Type::F32, std::cos(static_cast<float>(a)))
  L_F64Cos : GPC_FLT_BODY(Type::F64, std::cos(a))
  GPC_FLT2(Ex2, std::exp2(a))
  GPC_FLT2(Lg2, std::log2(a))

  // ---- Typed integer arithmetic -------------------------------------------

  GPC_INT3_32(Add, a + b, a + b)
  GPC_INT3_32(Sub, a - b, a - b)
  GPC_INT3_32(Mul, a * b, a * b)
  L_S32MulHi : GPC_INT_BODY(
      Type::S32,
      static_cast<std::int64_t>((static_cast<__int128>(a) * b) >> 32))
  L_U32MulHi : GPC_INT_BODY(
      Type::U32,
      static_cast<std::int64_t>((static_cast<__int128>(a) * b) >> 32))
  L_U64MulHi : GPC_INT_BODY(
      Type::U64,
      static_cast<std::int64_t>((static_cast<__int128>(a) * b) >> 64))
  GPC_INT3(Div, ({
             std::int64_t r;
             if (b == 0) {
               note_div_by_zero(*m);
               r = 0;
             } else {
               r = a / b;
             }
             r;
           }))
  GPC_INT3(Rem, ({
             std::int64_t r;
             if (b == 0) {
               note_div_by_zero(*m);
               r = 0;
             } else {
               r = a % b;
             }
             r;
           }))
  GPC_INT3_32(Mad, a* b + c, a* b + c)
  GPC_INT3_32(Neg, 0u - a, -a)
  GPC_INT3(Abs, std::abs(a))
  // Min/Max compare real values, so the 32-bit exprs pick the signedness
  // explicitly instead of relying on wraparound.
  L_S32Min : GPC_INT_BODY32(Type::S32,
                            std::min(static_cast<std::int32_t>(a),
                                     static_cast<std::int32_t>(b)))
  L_U32Min : GPC_INT_BODY32(Type::U32, std::min(a, b))
  L_U64Min : GPC_INT_BODY(Type::U64, (std::min(a, b)))
  L_S32Max : GPC_INT_BODY32(Type::S32,
                            std::max(static_cast<std::int32_t>(a),
                                     static_cast<std::int32_t>(b)))
  L_U32Max : GPC_INT_BODY32(Type::U32, std::max(a, b))
  L_U64Max : GPC_INT_BODY(Type::U64, (std::max(a, b)))
  GPC_INT3_32(And, a& b, a& b)
  GPC_INT3_32(Or, a | b, a | b)
  GPC_INT3_32(Xor, a ^ b, a ^ b)
  // Pred-typed Not routes through ComputeOther; these are the wide variants.
  GPC_INT3_32(Not, ~a, ~a)
  L_S32Shl : GPC_INT_BODY32(Type::S32, a << (b & 31))
  L_U32Shl : GPC_INT_BODY32(Type::U32, a << (b & 31))
  L_U64Shl : GPC_INT_BODY(Type::U64, a << (b & 63))
  L_S32Shr : GPC_INT_BODY32(Type::S32,
                            static_cast<std::int32_t>(a) >> (b & 31))
  L_U32Shr : GPC_INT_BODY32(Type::U32, a >> (b & 31))
  L_U64Shr : GPC_INT_BODY(
      Type::U64, static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                           (b & 63)))
}

#undef GPC_INT3_32
#undef GPC_INT3
#undef GPC_INT_BODY32
#undef GPC_INT_BODY
#undef GPC_FLT2
#undef GPC_FLT_BODY
#undef GPC_DISPATCH

template <bool kSimd>
void BlockExecutor::run_converged_goto(Warp& w) {
  CohortRun dummy;  // kCohort=false never reads it
  engine_goto<kSimd, false>(w, dummy);
}

BlockExecutor::CohortStop BlockExecutor::run_cohort_goto(Warp& w,
                                                         CohortRun& run) {
  return engine_goto<false, true>(w, run);
}

#endif  // GPC_HAVE_COMPUTED_GOTO

template void BlockExecutor::run_converged_goto<false>(Warp& w);
template void BlockExecutor::run_converged_goto<true>(Warp& w);

}  // namespace gpc::sim
