// Pre-decoded micro-op stream.
//
// The interpreter used to re-derive, for every lane of every dynamic
// instruction, facts that are static per *static* instruction: operand kinds
// (register vs immediate), the encoded bit pattern of immediates, the memory
// access width, the issue-class the instruction charges, and its flop count.
// The decode pass flattens each ir::Instr into a MicroOp with all of that
// baked in, so BlockExecutor's hot loops reduce to "load slot or use
// pre-encoded immediate" plus one top-level dispatch on XKind.
//
// Decoding runs once per CompiledKernel (cached on it via
// compiler::KernelCache) rather than once per block or launch.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/compiled_kernel.h"
#include "ir/function.h"

namespace gpc::sim {

/// Top-level execution dispatch, hoisting the Opcode/Space/Type re-switching
/// out of the per-step path. Memory kinds correspond to ir::Space.
enum class XKind : std::uint8_t {
  Bra,
  Exit,
  Bar,
  LdParam,
  MemGlobal,
  MemShared,
  MemLocal,
  MemConst,
  MemTex,
  ReadSReg,
  Mov,
  Cvt,
  SetP,
  SelP,
  FloatOp,  // generic float arithmetic (switch on op inside)
  IntOp,    // generic integer/predicate arithmetic
};

/// Issue-class accounting bucket, precomputed from (op, type).
enum class IssueClass : std::uint8_t { Alu, IAlu, Agu, Mad, Mul, Sfu };

/// A resolved operand: a register slot or a pre-encoded immediate. The
/// immediate is encoded with the type the interpreter would have used at the
/// use site (e.g. U64 for global addresses, the instruction type for values),
/// so fetching it is a plain load with no enc/dec switch.
struct MOp {
  std::int32_t reg = -1;   // >= 0: virtual register index
  std::uint64_t imm = 0;   // pre-encoded value when reg < 0
};

struct MicroOp {
  XKind kind = XKind::Exit;
  ir::Opcode op = ir::Opcode::Exit;
  ir::Type type = ir::Type::S32;
  ir::Type src_type = ir::Type::S32;  // Cvt source interpretation
  ir::CmpOp cmp = ir::CmpOp::Eq;
  ir::SReg sreg = ir::SReg::TidX;
  IssueClass issue = IssueClass::Alu;
  std::uint8_t msize = 0;     // size_of(type): memory access width
  std::uint8_t flops = 0;     // per-lane flop count
  bool type_is_float = false;
  bool guard_negated = false;
  std::int32_t dst = -1;
  std::int32_t guard = -1;    // guard predicate vreg (-1 = unconditional)
  std::int32_t target = -1;   // Bra target
  std::int32_t aux = -1;      // Param index / Tex unit
  MOp a, b, c;
};

struct DecodedProgram final : compiler::KernelCache {
  std::vector<MicroOp> ops;  // 1:1 with ir::Function::body
};

/// Decodes one function (exposed for tests; most callers want `decoded`).
DecodedProgram decode(const ir::Function& fn);

/// Returns the decode cache for `ck`, building and attaching it on first
/// use. Thread-safe; the returned reference lives as long as any
/// CompiledKernel sharing the cache.
const DecodedProgram& decoded(const compiler::CompiledKernel& ck);

}  // namespace gpc::sim
