// Pre-decoded micro-op stream.
//
// The interpreter used to re-derive, for every lane of every dynamic
// instruction, facts that are static per *static* instruction: operand kinds
// (register vs immediate), the encoded bit pattern of immediates, the memory
// access width, the issue-class the instruction charges, and its flop count.
// The decode pass flattens each ir::Instr into a MicroOp with all of that
// baked in, so BlockExecutor's hot loops reduce to "load slot or use
// pre-encoded immediate" plus one top-level dispatch on XKind.
//
// On top of XKind the decode pass assigns every micro-op a *widened*
// execution opcode (XOp) that bakes the operation AND the operating type
// into a single dense handler index — `FloatOp`+`Opcode::Add`+`F32` is one
// XOp — so the threaded dispatcher (sim/interp_threaded.cpp) jumps straight
// to a type-specialised handler with no inner switches. A fusion pass then
// recognises the paper's Table V address idioms (the cvt/and/shl/add chains
// and mul/add pairs the OpenCL front end re-expands per address, and the
// setp/bra compare-and-branch) and marks each group head with a
// superinstruction XOp. Fusion never moves or removes micro-ops: interior
// ops stay in place with their ordinary XOp (branches into the middle of a
// group are excluded by construction, and the min-PC scheduler keeps using
// the per-op XKind), so provenance (micro-op indices), branch targets, and
// the divergent path are untouched. Fused handlers replay the component
// ops' issue-class/flop/step accounting one by one, which is why every
// counter stays bit-identical to unfused execution.
//
// Decoding runs once per CompiledKernel (cached on it via
// compiler::KernelCache) rather than once per block or launch.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/compiled_kernel.h"
#include "ir/function.h"

namespace gpc::sim {

/// Top-level execution dispatch, hoisting the Opcode/Space/Type re-switching
/// out of the per-step path. Memory kinds correspond to ir::Space.
enum class XKind : std::uint8_t {
  Bra,
  Exit,
  Bar,
  LdParam,
  MemGlobal,
  MemShared,
  MemLocal,
  MemConst,
  MemTex,
  ReadSReg,
  Mov,
  Cvt,
  SetP,
  SelP,
  FloatOp,  // generic float arithmetic (switch on op inside)
  IntOp,    // generic integer/predicate arithmetic
};

constexpr int kNumXKinds = 16;

/// Lower-snake-case kind name ("mem_shared", "float_op", ...) for the prof
/// counters export and the Table V fused-idiom report.
const char* to_string(XKind k);

/// Issue-class accounting bucket, precomputed from (op, type).
enum class IssueClass : std::uint8_t { Alu, IAlu, Agu, Mad, Mul, Sfu };

// ---------------------------------------------------------------------------
// Widened execution opcodes. The X-macro lists below generate both the XOp
// enum and, in interp_threaded.cpp, the computed-goto handler table — the
// two MUST stay generated from the same lists so indices and labels agree.

// Handlers that dispatch on something other than (op, type): control flow,
// memory (per state space), moves/selects, conversions (by float-ness of
// source and destination), compares (by operand type), a generic fallback
// for rare combinations (e.g. predicate-typed arithmetic), and the fused
// superinstructions.
#define GPC_XOP_BASIC(X)                                                  \
  X(Exit) X(Bar) X(Bra)                                                   \
  X(LdParam) X(MemGlobal) X(MemShared) X(MemLocal) X(MemConst) X(MemTex)  \
  X(ReadSReg) X(Mov) X(SelP)                                              \
  X(CvtFF) X(CvtFI) X(CvtIF) X(CvtII)                                     \
  X(SetpF32) X(SetpF64) X(SetpS32) X(SetpU32) X(SetpU64)                  \
  X(ComputeOther)                                                         \
  X(FusedAddrGen) X(FusedShlAdd) X(FusedMulAdd) X(FusedSetpBra)

// Float arithmetic: every opcode exists as an F32 and an F64 handler.
#define GPC_XOP_FLOAT_OPS(X)                                              \
  X(Add) X(Sub) X(Mul) X(Div) X(Mad) X(Fma) X(Neg) X(Abs) X(Min) X(Max)  \
  X(Sqrt) X(Rsqrt) X(Rcp) X(Sin) X(Cos) X(Ex2) X(Lg2)

// Integer arithmetic: every opcode exists as an S32, U32 and U64 handler.
#define GPC_XOP_INT_OPS(X)                                                \
  X(Add) X(Sub) X(Mul) X(MulHi) X(Div) X(Rem) X(Mad) X(Neg) X(Abs)       \
  X(Min) X(Max) X(And) X(Or) X(Xor) X(Not) X(Shl) X(Shr)

enum class XOp : std::uint16_t {
#define GPC_X(name) name,
  GPC_XOP_BASIC(GPC_X)
#undef GPC_X
#define GPC_X(name) F32##name, F64##name,
  GPC_XOP_FLOAT_OPS(GPC_X)
#undef GPC_X
#define GPC_X(name) S32##name, U32##name, U64##name,
  GPC_XOP_INT_OPS(GPC_X)
#undef GPC_X
  Count,
};

constexpr int kNumXOps = static_cast<int>(XOp::Count);

/// Superinstruction patterns recognised by the fusion pass (paper Table V:
/// the OpenCL front end re-expands address math per access — cvt/and/shl/add
/// chains and mul/add pairs — where the CUDA front end emits mad; setp/bra
/// is the ubiquitous compare-and-branch of both front ends).
enum class FusedPattern : std::uint8_t {
  AddrGen,  // cvt.u64 + and.u64 imm + shl.u64 imm + add.u64 (global address)
  ShlAdd,   // shl imm + add consuming it (shared/global address tail)
  MulAdd,   // mul + add consuming it (the mad idiom, int or float)
  SetpBra,  // setp + bra guarded on its predicate
};

constexpr int kNumFusedPatterns = 4;

const char* to_string(FusedPattern p);

/// A resolved operand: a register slot or a pre-encoded immediate. The
/// immediate is encoded with the type the interpreter would have used at the
/// use site (e.g. U64 for global addresses, the instruction type for values),
/// so fetching it is a plain load with no enc/dec switch.
struct MOp {
  std::int32_t reg = -1;   // >= 0: virtual register index
  std::uint64_t imm = 0;   // pre-encoded value when reg < 0
};

struct MicroOp {
  XKind kind = XKind::Exit;
  ir::Opcode op = ir::Opcode::Exit;
  ir::Type type = ir::Type::S32;
  ir::Type src_type = ir::Type::S32;  // Cvt source interpretation
  ir::CmpOp cmp = ir::CmpOp::Eq;
  ir::SReg sreg = ir::SReg::TidX;
  IssueClass issue = IssueClass::Alu;
  std::uint8_t msize = 0;     // size_of(type): memory access width
  std::uint8_t flops = 0;     // per-lane flop count
  bool type_is_float = false;
  bool guard_negated = false;
  /// Widened handler index for the threaded dispatcher. For the head of a
  /// fused group this is the superinstruction XOp; interior ops keep their
  /// ordinary XOp (direct entry at an interior pc executes them unfused).
  XOp xop = XOp::Exit;
  /// Number of micro-ops covered by the fused group this op heads (>= 2),
  /// or 0 when the op is not a fusion head.
  std::uint8_t fused_len = 0;
  FusedPattern fused_pattern = FusedPattern::AddrGen;  // valid iff fused_len
  std::int32_t dst = -1;
  std::int32_t guard = -1;    // guard predicate vreg (-1 = unconditional)
  std::int32_t target = -1;   // Bra target
  std::int32_t aux = -1;      // Param index / Tex unit
  MOp a, b, c;
};

/// Static fusion census of one decoded program (consumed by the prof
/// counters exporter and bench/table05_ptx_stats, where the CUDA-vs-OpenCL
/// idiom gap of the paper's Table V becomes directly countable).
struct FusionStats {
  std::uint32_t groups[kNumFusedPatterns] = {};
  std::uint32_t fused_ops = 0;  // micro-ops inside fused groups (incl. heads)
  std::uint32_t total_ops = 0;  // program length
  std::uint32_t total_groups() const {
    std::uint32_t s = 0;
    for (std::uint32_t g : groups) s += g;
    return s;
  }
};

struct DecodedProgram final : compiler::KernelCache {
  std::vector<MicroOp> ops;  // 1:1 with ir::Function::body
  FusionStats fusion;
  /// Immediate post-dominator of each micro-op over the micro-op CFG
  /// (-1 = reconverges only at the virtual exit node, or the op cannot
  /// reach exit). Computed once per kernel. The cohort scheduler stamps
  /// rpc[branch_pc] on every divergent split as the expected reconvergence
  /// point; it feeds the divergence-depth/cohort diagnostics only — merging
  /// itself is order-based (sorted cohorts, min-pc first), so execution
  /// never depends on this table.
  std::vector<std::int32_t> rpc;
};

/// Decodes one function (exposed for tests; most callers want `decoded`).
/// Runs the superinstruction fusion pass unless `fuse` is false (tests use
/// an unfused decode as the reference when locking fusion semantics).
DecodedProgram decode(const ir::Function& fn, bool fuse = true);

/// Returns the decode cache for `ck`, building and attaching it on first
/// use. Thread-safe; the returned reference lives as long as any
/// CompiledKernel sharing the cache.
const DecodedProgram& decoded(const compiler::CompiledKernel& ck);

}  // namespace gpc::sim
