#include "sim/launch.h"

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "resil/fault.h"
#include "resil/policy.h"
#include "sim/decode.h"
#include "sim/dispatch.h"

namespace gpc::sim {

namespace {

std::uint64_t step_budget_from_env() {
  if (const char* e = std::getenv("GPC_SIM_STEP_BUDGET")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(e, &end, 10);
    if (end != e && *end == '\0' && v > 0) return v;
  }
  return 0;
}

}  // namespace

LaunchResult launch_kernel(const arch::DeviceSpec& spec,
                           const arch::RuntimeSpec& runtime,
                           const compiler::CompiledKernel& ck,
                           const LaunchConfig& config,
                           std::span<const KernelArg> args, DeviceMemory& mem,
                           std::span<const TexBinding> textures) {
  GPC_REQUIRE(config.grid.count() > 0, "empty grid");
  GPC_REQUIRE(ck.num_textures <= static_cast<int>(textures.size()),
              "kernel " + ck.name() + " references unbound texture units");

  // Fault injection (resil). Decisions are drawn once per launch, up front,
  // so the fault sequence is a pure function of the plan's seeds and the
  // host-side launch order — never of block scheduling. Cost when no plan
  // is armed: one relaxed load.
  long long midgrid_victim = -1;
  std::string midgrid_detail;
  if (resil::armed()) {
    if (auto inj = resil::sample(resil::Site::Enqueue, ck.name())) {
      throw OutOfResources(inj->detail + " on " + spec.short_name);
    }
    if (auto inj = resil::sample(resil::Site::Hang, ck.name())) {
      // A launch that would stall forever. The step-budget watchdog is what
      // catches real stalls (interp.cpp check_budget); injecting one
      // surfaces the identical classified outcome without burning cycles.
      resil::note_watchdog_trip();
      throw DeviceFault(inj->detail + ": kernel exceeded instruction budget" +
                        " (hung launch tripped the watchdog)");
    }
    if (auto inj = resil::sample(resil::Site::MidGrid, ck.name())) {
      midgrid_victim =
          static_cast<long long>(inj->aux % static_cast<std::uint64_t>(
                                                config.grid.count()));
      midgrid_detail = inj->detail;
    }
  }

  // Resource validation happens before any execution — this is the
  // clEnqueueNDRangeKernel CL_OUT_OF_RESOURCES path.
  LaunchResult result;
  result.stats.sm_issue_weight.assign(spec.sm_count, 0.0);
  result.stats.blocks = static_cast<int>(config.grid.count());
  result.stats.threads_per_block = static_cast<int>(config.block.count());
  (void)compute_occupancy(spec, ck, config);

  const DecodedProgram& prog = decoded(ck);  // once per kernel, not per block

  // Dispatch/fusion provenance for the prof counters export: the mode this
  // launch runs under and the decode pass's static fusion census.
  result.stats.dispatch = static_cast<int>(dispatch_mode());
  result.stats.static_ops = prog.fusion.total_ops;
  result.stats.static_fused_ops = prog.fusion.fused_ops;
  for (int p = 0; p < kNumFusedPatterns; ++p) {
    result.stats.static_fused_groups[p] = prog.fusion.groups[p];
  }

  // Per-launch knobs: programmatic settings OR-ed with / overridden by the
  // environment (re-read every launch so tests can toggle them).
  LaunchConfig cfg = config;
  cfg.sanitize = config.sanitize | sanitize_options_from_env();
  if (cfg.step_budget == 0) cfg.step_budget = step_budget_from_env();
  if (cfg.step_budget == 0) {
    // Per-launch watchdog (resil policy): GPC_WATCHDOG bounds every launch
    // that did not set its own budget, so a hung kernel becomes a
    // classified DeviceFault instead of a wall-clock stall.
    cfg.step_budget = resil::active_policy().watchdog_budget;
  }
  std::unique_ptr<Sanitizer> san;
  if (cfg.sanitize.any()) {
    san = std::make_unique<Sanitizer>(cfg.sanitize, ck.name());
  }
  cfg.aiwc = config.aiwc || aiwc::enabled_from_env();
  std::unique_ptr<aiwc::Collector> awc;
  if (cfg.aiwc) {
    // Static per-pc site table: the fusion-invariant (kind, op, type, flops)
    // facts the feature derivation keys on.
    std::vector<aiwc::SiteInfo> sites(prog.ops.size());
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
      const MicroOp& m = prog.ops[i];
      sites[i].kind = static_cast<std::uint8_t>(m.kind);
      sites[i].op = static_cast<std::uint8_t>(m.op);
      sites[i].type = static_cast<std::uint8_t>(m.type);
      sites[i].flops = static_cast<std::uint8_t>(m.flops);
    }
    awc = std::make_unique<aiwc::Collector>(
        std::move(sites), static_cast<std::uint64_t>(config.grid.count()),
        result.stats.threads_per_block, spec.warp_size,
        prog.fusion.total_ops, prog.fusion.fused_ops);
  }

  const long long nblocks = config.grid.count();
  // Blocks are attributed to SM buckets by their LOGICAL flat index, so a
  // grid executed as split sub-launches (resil retry ladder, virt
  // time-slicing) lands every block in the same bucket as the single full
  // launch would — merged sm_issue_weight, and hence the load-imbalance
  // term of the timing model, match the unsliced launch. For ordinary
  // launches logical == grid and offset == 0: identical to the plain index.
  const Dim3 logical = cfg.logical();
  ThreadPool& pool = ThreadPool::shared();

  // Contention-free accumulation: each pool slot owns a BlockStats and an
  // SM-weight vector, merged once below — no mutex on the per-block path.
  const std::size_t nslots = pool.slots();
  std::vector<BlockStats> slot_stats(nslots);
  std::vector<std::vector<double>> slot_weights(
      nslots, std::vector<double>(spec.sm_count, 0.0));

  pool.parallel_for_slotted(
      static_cast<std::size_t>(nblocks),
      [&](std::size_t slot, std::size_t flat) {
        if (static_cast<long long>(flat) == midgrid_victim) {
          throw DeviceFault(midgrid_detail + " (block " +
                            std::to_string(flat) + "/" +
                            std::to_string(nblocks) + ")");
        }
        Dim3 bid;
        bid.x = static_cast<int>(flat % config.grid.x);
        bid.y = static_cast<int>((flat / config.grid.x) % config.grid.y);
        bid.z = static_cast<int>(flat / (static_cast<long long>(config.grid.x) *
                                         config.grid.y));
        // Split launches execute a sub-grid at a logical-grid offset.
        bid.x += cfg.grid_offset.x;
        bid.y += cfg.grid_offset.y;
        bid.z += cfg.grid_offset.z;
        // One arena per OS thread, reused across blocks and launches so the
        // register file / shared memory / scratch allocations amortise away.
        static thread_local ExecArena arena;
        BlockExecutor exec(spec, ck.fn, prog, args, mem, textures, cfg, bid,
                           arena, san.get(), awc.get());
        BlockStats bs = exec.run();
        const long long logical_flat =
            (static_cast<long long>(bid.z) * logical.y + bid.y) * logical.x +
            bid.x;
        slot_weights[slot][logical_flat % spec.sm_count] +=
            issue_cycles_for_attribution(bs, spec);
        slot_stats[slot].merge(bs);
      });

  for (std::size_t s = 0; s < nslots; ++s) {
    result.stats.total.merge(slot_stats[s]);
    for (int sm = 0; sm < spec.sm_count; ++sm) {
      result.stats.sm_issue_weight[sm] += slot_weights[s][sm];
    }
  }

  result.timing = time_kernel(spec, runtime, ck, config, result.stats);
  if (san) result.sanitizer = san->report();
  if (awc) result.aiwc = awc->take();
  return result;
}

}  // namespace gpc::sim
