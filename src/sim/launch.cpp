#include "sim/launch.h"

#include <mutex>
#include <string>

#include "common/error.h"
#include "common/thread_pool.h"

namespace gpc::sim {

LaunchResult launch_kernel(const arch::DeviceSpec& spec,
                           const arch::RuntimeSpec& runtime,
                           const compiler::CompiledKernel& ck,
                           const LaunchConfig& config,
                           std::span<const KernelArg> args, DeviceMemory& mem,
                           std::span<const TexBinding> textures) {
  GPC_REQUIRE(config.grid.count() > 0, "empty grid");
  GPC_REQUIRE(ck.num_textures <= static_cast<int>(textures.size()),
              "kernel " + ck.name() + " references unbound texture units");

  // Resource validation happens before any execution — this is the
  // clEnqueueNDRangeKernel CL_OUT_OF_RESOURCES path.
  LaunchResult result;
  result.stats.sm_issue_weight.assign(spec.sm_count, 0.0);
  result.stats.blocks = static_cast<int>(config.grid.count());
  result.stats.threads_per_block = static_cast<int>(config.block.count());
  (void)compute_occupancy(spec, ck, config);

  const long long nblocks = config.grid.count();
  std::mutex merge_mutex;

  ThreadPool::shared().parallel_for(
      static_cast<std::size_t>(nblocks), [&](std::size_t flat) {
        Dim3 bid;
        bid.x = static_cast<int>(flat % config.grid.x);
        bid.y = static_cast<int>((flat / config.grid.x) % config.grid.y);
        bid.z = static_cast<int>(flat / (static_cast<long long>(config.grid.x) *
                                         config.grid.y));
        BlockExecutor exec(spec, ck.fn, args, mem, textures, config, bid);
        BlockStats bs = exec.run();
        const double weight = issue_cycles_for_attribution(bs, spec);
        std::lock_guard<std::mutex> lock(merge_mutex);
        result.stats.total.merge(bs);
        result.stats.sm_issue_weight[flat % spec.sm_count] += weight;
      });

  result.timing = time_kernel(spec, runtime, ck, config, result.stats);
  return result;
}

}  // namespace gpc::sim
