// Encoding/decoding of scalar values into the 64-bit register slots of the
// virtual ISA. Shared between the decode pass (which pre-encodes immediates
// per use-site type) and the interpreter (which decodes register contents in
// its lane loops) so both agree bit-for-bit on every representation.
#pragma once

#include <cstdint>
#include <cstring>

#include "ir/types.h"

namespace gpc::sim {

inline std::uint64_t enc_f32(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

inline float dec_f32(std::uint64_t r) {
  const std::uint32_t b = static_cast<std::uint32_t>(r);
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

inline std::uint64_t enc_f64(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

inline double dec_f64(std::uint64_t r) {
  double d;
  std::memcpy(&d, &r, 8);
  return d;
}

inline std::uint64_t enc_int(ir::Type t, std::int64_t v) {
  switch (t) {
    case ir::Type::Pred: return v ? 1 : 0;
    case ir::Type::S32:
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    case ir::Type::U32: return static_cast<std::uint32_t>(v);
    case ir::Type::U64: return static_cast<std::uint64_t>(v);
    case ir::Type::F32: return enc_f32(static_cast<float>(v));
    case ir::Type::F64: return enc_f64(static_cast<double>(v));
  }
  return 0;
}

inline std::int64_t dec_int(ir::Type t, std::uint64_t raw) {
  switch (t) {
    case ir::Type::Pred: return raw & 1;
    case ir::Type::S32: return static_cast<std::int32_t>(raw);
    case ir::Type::U32: return static_cast<std::uint32_t>(raw);
    case ir::Type::U64: return static_cast<std::int64_t>(raw);
    default: return static_cast<std::int64_t>(raw);
  }
}

inline double dec_float(ir::Type t, std::uint64_t raw) {
  return t == ir::Type::F32 ? dec_f32(raw) : dec_f64(raw);
}

inline std::uint64_t enc_float(ir::Type t, double v) {
  return t == ir::Type::F32 ? enc_f32(static_cast<float>(v)) : enc_f64(v);
}

}  // namespace gpc::sim
