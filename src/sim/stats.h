// Dynamic execution statistics collected by the interpreter and consumed by
// the timing model. BlockStats is accumulated single-threadedly per block;
// LaunchStats merges blocks (order-independent sums) plus per-SM attribution
// for load-imbalance modelling.
#pragma once

#include <cstdint>
#include <vector>

namespace gpc::sim {

struct BlockStats {
  // Warp-instruction issue counts by cost category.
  std::uint64_t alu_issues = 0;   // fp arithmetic and other full-rate ops
  std::uint64_t ialu_issues = 0;  // 32-bit integer/logic ops — these
                                  // co-issue with the fp pipe at half cost
  std::uint64_t agu_issues = 0;   // 64-bit address chains — quarter cost,
                                  // folded into the LSU address path
  std::uint64_t mad_issues = 0;   // mad/fma (GT200 co-issue candidate, 2 flops)
  std::uint64_t mul_issues = 0;   // fp mul (GT200 co-issue candidate)
  std::uint64_t sfu_issues = 0;   // transcendental / rcp / rsqrt / fp div
  std::uint64_t branch_issues = 0;
  std::uint64_t mem_issues = 0;   // global/local/tex ld/st warp instructions
  std::uint64_t shared_cycles = 0;  // bank-conflict-adjusted shared accesses
  std::uint64_t const_cycles = 0;   // broadcast=1, divergent=#distinct addrs
  std::uint64_t barrier_count = 0;

  // Memory system.
  std::uint64_t dram_read_bytes = 0;   // after coalescing and caches
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t dram_transactions = 0;
  std::uint64_t useful_global_bytes = 0;  // requested by lanes (efficiency)
  std::uint64_t local_bytes = 0;          // .local traffic (spills/arrays)
  std::uint64_t tex_requests = 0;
  std::uint64_t tex_hits = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t atomic_serial_ops = 0;

  // Dynamic instruction mix: one bump per scheduler-issued warp instruction,
  // indexed by sim::XKind (16 buckets). Mode-invariant: every dispatch mode
  // issues the same warp-instruction sequence, so these compare bit-for-bit
  // across switch/threaded/simd and the min-PC scheduler (locked by
  // tests/dispatch_test.cpp). Exported per launch via GPC_PROF=counters.
  std::uint64_t xkind_issues[16] = {};

  // Superinstruction execution: groups dispatched fused, total and per
  // sim::FusedPattern. These are diagnostics of HOW the interpreter ran, not
  // of what the kernel did — the only BlockStats fields that legitimately
  // differ across dispatch modes (the switch engine and the min-PC scheduler
  // never execute fused groups). Cross-mode comparisons must exclude them.
  std::uint64_t fused_groups = 0;
  std::uint64_t fused_exec[4] = {};

  // Divergence structure diagnostics from the cohort scheduler (DESIGN.md
  // §15): branch splits, cohort merges, the peak number of simultaneously
  // live cohorts in one warp, and the deepest reconvergence-stack nesting
  // seen. Like fused_*, these describe HOW the interpreter ran — the min-PC
  // scheduler reports zeros — so cross-mode comparisons must exclude them.
  // splits/merges sum across blocks; the two maxima merge by max.
  std::uint64_t cohort_splits = 0;
  std::uint64_t cohort_merges = 0;
  std::uint32_t cohort_max_live = 0;
  std::uint32_t div_depth_max = 0;

  double flops = 0;  // per-lane floating point operations executed

  void merge(const BlockStats& o) {
    alu_issues += o.alu_issues;
    ialu_issues += o.ialu_issues;
    agu_issues += o.agu_issues;
    mad_issues += o.mad_issues;
    mul_issues += o.mul_issues;
    sfu_issues += o.sfu_issues;
    branch_issues += o.branch_issues;
    mem_issues += o.mem_issues;
    shared_cycles += o.shared_cycles;
    const_cycles += o.const_cycles;
    barrier_count += o.barrier_count;
    dram_read_bytes += o.dram_read_bytes;
    dram_write_bytes += o.dram_write_bytes;
    dram_transactions += o.dram_transactions;
    useful_global_bytes += o.useful_global_bytes;
    local_bytes += o.local_bytes;
    tex_requests += o.tex_requests;
    tex_hits += o.tex_hits;
    l1_hits += o.l1_hits;
    atomic_serial_ops += o.atomic_serial_ops;
    for (int i = 0; i < 16; ++i) xkind_issues[i] += o.xkind_issues[i];
    fused_groups += o.fused_groups;
    for (int i = 0; i < 4; ++i) fused_exec[i] += o.fused_exec[i];
    cohort_splits += o.cohort_splits;
    cohort_merges += o.cohort_merges;
    if (o.cohort_max_live > cohort_max_live) cohort_max_live = o.cohort_max_live;
    if (o.div_depth_max > div_depth_max) div_depth_max = o.div_depth_max;
    flops += o.flops;
  }

  std::uint64_t dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

struct LaunchStats {
  BlockStats total;
  /// Per-SM issue-weight attribution (sum of per-block issue weights routed
  /// round-robin); the timing model takes the max for load imbalance.
  std::vector<double> sm_issue_weight;
  int blocks = 0;
  int threads_per_block = 0;

  /// Dispatch/fusion provenance of this launch, carried into the prof
  /// counters export. `dispatch` is the sim::DispatchMode the launch ran
  /// under; the static_* fields are the decode pass's fusion census of the
  /// kernel (sim::FusionStats): program length, micro-ops covered by fused
  /// groups, and groups per sim::FusedPattern. Like BlockStats::fused_*,
  /// these describe how the interpreter ran, not what the kernel computed.
  int dispatch = 0;
  std::uint32_t static_ops = 0;
  std::uint32_t static_fused_ops = 0;
  std::uint32_t static_fused_groups[4] = {};
};

}  // namespace gpc::sim
