#include "sim/cache.h"

#include "common/error.h"

namespace gpc::sim {

CacheModel::CacheModel(int size_bytes, int line_bytes, int ways) {
  reconfigure(size_bytes, line_bytes, ways);
}

void CacheModel::reconfigure(int size_bytes, int line_bytes, int ways) {
  GPC_REQUIRE(size_bytes > 0 && line_bytes > 0 && ways > 0,
              "cache parameters must be positive");
  line_bytes_ = line_bytes;
  ways_ = ways;
  sets_ = size_bytes / (line_bytes * ways);
  GPC_REQUIRE(sets_ > 0, "cache too small for its associativity");
  tags_.assign(static_cast<std::size_t>(sets_) * ways_, 0);
  lru_.assign(tags_.size(), 0);
  tick_ = hits_ = misses_ = 0;
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line = addr / line_bytes_;
  const int set = static_cast<int>(line % sets_);
  const std::uint64_t tag = line + 1;  // +1 so tag 0 means invalid
  ++tick_;
  const int base = set * ways_;
  int victim = base;
  for (int w = 0; w < ways_; ++w) {
    if (tags_[base + w] == tag) {
      lru_[base + w] = tick_;
      ++hits_;
      return true;
    }
    if (lru_[base + w] < lru_[victim]) victim = base + w;
  }
  tags_[victim] = tag;
  lru_[victim] = tick_;
  ++misses_;
  return false;
}

void CacheModel::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  tick_ = hits_ = misses_ = 0;
}

}  // namespace gpc::sim
