#include "sim/cache.h"

#include <bit>

#include "common/error.h"

namespace gpc::sim {

CacheModel::CacheModel(int size_bytes, int line_bytes, int ways) {
  reconfigure(size_bytes, line_bytes, ways);
}

void CacheModel::reconfigure(int size_bytes, int line_bytes, int ways) {
  GPC_REQUIRE(size_bytes > 0 && line_bytes > 0 && ways > 0,
              "cache parameters must be positive");
  line_bytes_ = line_bytes;
  ways_ = ways;
  sets_ = size_bytes / (line_bytes * ways);
  GPC_REQUIRE(sets_ > 0, "cache too small for its associativity");
  line_shift_ = (line_bytes_ & (line_bytes_ - 1)) == 0
                    ? std::countr_zero(static_cast<unsigned>(line_bytes_))
                    : -1;
  set_mask_ = (sets_ & (sets_ - 1)) == 0
                  ? static_cast<std::uint64_t>(sets_) - 1
                  : 0;
  tags_.assign(static_cast<std::size_t>(sets_) * ways_, 0);
  lru_.assign(tags_.size(), 0);
  tick_ = hits_ = misses_ = 0;
}

void CacheModel::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lru_.begin(), lru_.end(), 0);
  tick_ = hits_ = misses_ = 0;
}

}  // namespace gpc::sim
