#include "sim/memory.h"

#include <string>

namespace gpc::sim {

DeviceMemory::DeviceMemory(std::size_t capacity_bytes)
    : bytes_(capacity_bytes, 0) {}

std::uint64_t DeviceMemory::alloc(std::size_t bytes) {
  const std::size_t aligned = (top_ + 255) & ~std::size_t{255};
  if (aligned + bytes > bytes_.size()) {
    throw OutOfResources("device memory exhausted: need " +
                         std::to_string(bytes) + " bytes, " +
                         std::to_string(bytes_.size() - aligned) + " free");
  }
  top_ = aligned + bytes;
  return aligned;
}

void DeviceMemory::reset() {
  top_ = 256;
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

void DeviceMemory::check(std::uint64_t addr, int size) const {
  if (addr + size > bytes_.size() || addr < 256) {
    throw DeviceFault("global access out of bounds: addr=" +
                      std::to_string(addr) + " size=" + std::to_string(size));
  }
  if (addr % size != 0) {
    throw DeviceFault("misaligned global access: addr=" +
                      std::to_string(addr) + " size=" + std::to_string(size));
  }
}

void DeviceMemory::write(std::uint64_t addr, const void* src,
                         std::size_t bytes) {
  GPC_REQUIRE(addr >= 256 && addr + bytes <= bytes_.size(),
              "host write out of device memory bounds");
  std::memcpy(bytes_.data() + addr, src, bytes);
}

void DeviceMemory::read(std::uint64_t addr, void* dst,
                        std::size_t bytes) const {
  GPC_REQUIRE(addr >= 256 && addr + bytes <= bytes_.size(),
              "host read out of device memory bounds");
  std::memcpy(dst, bytes_.data() + addr, bytes);
}

std::uint64_t DeviceMemory::load(std::uint64_t addr, int size) const {
  check(addr, size);
  const std::uint8_t* p = bytes_.data() + addr;
  if (size == 4) {
    const auto* w = reinterpret_cast<const std::uint32_t*>(p);
    return std::atomic_ref<const std::uint32_t>(*w).load(
        std::memory_order_relaxed);
  }
  const auto* w = reinterpret_cast<const std::uint64_t*>(p);
  return std::atomic_ref<const std::uint64_t>(*w).load(
      std::memory_order_relaxed);
}

void DeviceMemory::store(std::uint64_t addr, std::uint64_t value, int size) {
  check(addr, size);
  std::uint8_t* p = bytes_.data() + addr;
  if (size == 4) {
    auto* w = reinterpret_cast<std::uint32_t*>(p);
    std::atomic_ref<std::uint32_t>(*w).store(
        static_cast<std::uint32_t>(value), std::memory_order_relaxed);
    return;
  }
  auto* w = reinterpret_cast<std::uint64_t*>(p);
  std::atomic_ref<std::uint64_t>(*w).store(value, std::memory_order_relaxed);
}

std::uint64_t DeviceMemory::atomic_add(std::uint64_t addr,
                                       std::uint64_t value, int size) {
  check(addr, size);
  std::uint8_t* p = bytes_.data() + addr;
  if (size == 4) {
    auto* w = reinterpret_cast<std::uint32_t*>(p);
    return std::atomic_ref<std::uint32_t>(*w).fetch_add(
        static_cast<std::uint32_t>(value), std::memory_order_relaxed);
  }
  auto* w = reinterpret_cast<std::uint64_t*>(p);
  return std::atomic_ref<std::uint64_t>(*w).fetch_add(
      value, std::memory_order_relaxed);
}

std::uint32_t DeviceMemory::atomic_add_f32(std::uint64_t addr, float value) {
  check(addr, 4);
  auto* w = reinterpret_cast<std::uint32_t*>(bytes_.data() + addr);
  std::atomic_ref<std::uint32_t> ref(*w);
  std::uint32_t old = ref.load(std::memory_order_relaxed);
  for (;;) {
    float f;
    std::memcpy(&f, &old, 4);
    f += value;
    std::uint32_t desired;
    std::memcpy(&desired, &f, 4);
    if (ref.compare_exchange_weak(old, desired, std::memory_order_relaxed)) {
      return old;
    }
  }
}

}  // namespace gpc::sim
