#include "sim/memory.h"

#include <algorithm>
#include <string>

#include "sim/sanitizer.h"

#if defined(__unix__) || defined(__APPLE__)
#define GPC_HAVE_MMAP 1
#include <sys/mman.h>
#endif

namespace gpc::sim {

DeviceMemory::DeviceMemory(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  // Memcheck red zones: when the process opted into memcheck via the
  // environment, leave a guard gap after every allocation so an overrun
  // lands in unallocated space instead of the neighbouring buffer.
  // Programmatic (per-launch) memcheck users call set_red_zone themselves
  // before allocating if they want the same.
  if (sanitize_options_from_env().mem) red_zone_ = 256;
#ifdef GPC_HAVE_MMAP
  if (capacity_ > 0) {
    void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      base_ = static_cast<std::uint8_t*>(p);
      mapped_ = true;
      return;
    }
  }
#endif
  fallback_.assign(capacity_, 0);
  base_ = fallback_.data();
}

DeviceMemory::~DeviceMemory() {
#ifdef GPC_HAVE_MMAP
  if (mapped_) ::munmap(base_, capacity_);
#endif
}

std::uint64_t DeviceMemory::alloc(std::size_t bytes) {
  const std::size_t aligned = (top_ + 255) & ~std::size_t{255};
  if (aligned + bytes > capacity_) {
    throw OutOfResources("device memory exhausted: need " +
                         std::to_string(bytes) + " bytes, " +
                         std::to_string(capacity_ - aligned) + " free");
  }
  top_ = aligned + bytes + red_zone_;
  allocs_.push_back(Allocation{aligned, bytes});
  return aligned;
}

const DeviceMemory::Allocation* DeviceMemory::preceding_allocation(
    std::uint64_t addr) const {
  auto it = std::upper_bound(
      allocs_.begin(), allocs_.end(), addr,
      [](std::uint64_t a, const Allocation& al) { return a < al.base; });
  if (it == allocs_.begin()) return nullptr;
  return &*--it;
}

const DeviceMemory::Allocation* DeviceMemory::find_allocation(
    std::uint64_t addr) const {
  const Allocation* al = preceding_allocation(addr);
  if (al == nullptr || addr >= al->base + al->bytes) return nullptr;
  return al;
}

void DeviceMemory::reset() {
  top_ = 256;
  allocs_.clear();
#ifdef GPC_HAVE_MMAP
  if (mapped_) {
    // Drop the pages back to demand-zero instead of touching all of them.
    if (::madvise(base_, capacity_, MADV_DONTNEED) == 0) return;
  }
#endif
  std::memset(base_, 0, capacity_);
}

void DeviceMemory::check_fail(std::uint64_t addr, int size) const {
  if (addr + size > capacity_ || addr < 256) {
    throw DeviceFault("global access out of bounds: addr=" +
                      std::to_string(addr) + " size=" + std::to_string(size));
  }
  throw DeviceFault("misaligned global access: addr=" +
                    std::to_string(addr) + " size=" + std::to_string(size));
}

void DeviceMemory::write(std::uint64_t addr, const void* src,
                         std::size_t bytes) {
  GPC_REQUIRE(addr >= 256 && addr + bytes <= capacity_,
              "host write out of device memory bounds");
  std::memcpy(base_ + addr, src, bytes);
}

void DeviceMemory::read(std::uint64_t addr, void* dst,
                        std::size_t bytes) const {
  GPC_REQUIRE(addr >= 256 && addr + bytes <= capacity_,
              "host read out of device memory bounds");
  std::memcpy(dst, base_ + addr, bytes);
}

std::uint64_t DeviceMemory::atomic_add(std::uint64_t addr,
                                       std::uint64_t value, int size) {
  check(addr, size);
  std::uint8_t* p = base_ + addr;
  if (size == 4) {
    auto* w = reinterpret_cast<std::uint32_t*>(p);
    return std::atomic_ref<std::uint32_t>(*w).fetch_add(
        static_cast<std::uint32_t>(value), std::memory_order_relaxed);
  }
  auto* w = reinterpret_cast<std::uint64_t*>(p);
  return std::atomic_ref<std::uint64_t>(*w).fetch_add(
      value, std::memory_order_relaxed);
}

std::uint32_t DeviceMemory::atomic_add_f32(std::uint64_t addr, float value) {
  check(addr, 4);
  auto* w = reinterpret_cast<std::uint32_t*>(base_ + addr);
  std::atomic_ref<std::uint32_t> ref(*w);
  std::uint32_t old = ref.load(std::memory_order_relaxed);
  for (;;) {
    float f;
    std::memcpy(&f, &old, 4);
    f += value;
    std::uint32_t desired;
    std::memcpy(&desired, &f, 4);
    if (ref.compare_exchange_weak(old, desired, std::memory_order_relaxed)) {
      return old;
    }
  }
}

}  // namespace gpc::sim
