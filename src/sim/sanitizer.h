// Opt-in device-side checking layer for the SIMT interpreter, modelled on
// the cuda-memcheck tool family:
//
//  * racecheck — shadow state on shared memory (last writer lane / step /
//    micro-op per word, last cross-lane reader per word) flagging the
//    hazards the paper's RdxS failure is made of: same-instruction lockstep
//    write-write conflicts and read-modify-write lost updates (how the
//    warp-leader fold breaks on a 64-wide wavefront), and barrier-free
//    dependencies between threads whose assumed 32-wide warp was split by a
//    narrower hardware warp (how the warp-synchronous scan breaks on the
//    serialising width-1 runtimes). Kernels that are correct under a
//    32-wide lockstep stay silent at warp 32.
//  * memcheck — per-allocation bounds on global memory via the allocation
//    table in DeviceMemory (the bump allocator's whole-heap check silently
//    accepts reads of a *neighbouring* buffer), plus reads of
//    never-written shared memory.
//  * synccheck — divergent barriers are reported with per-lane provenance
//    (which lanes arrived, where the missing ones are parked) instead of
//    faulting, so a launch can finish and surface every site.
//
// The layer is zero-cost when off: launches carry a null Sanitizer pointer
// and the interpreter's only overhead is one predictable branch per memory
// micro-op. Enable per launch via LaunchConfig::sanitize or process-wide
// via GPC_SIM_SANITIZE=race,mem,sync (see README).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpc::sim {

class DeviceMemory;

struct SanitizeOptions {
  bool race = false;
  bool mem = false;
  bool sync = false;

  bool any() const { return race || mem || sync; }
};

SanitizeOptions operator|(SanitizeOptions a, SanitizeOptions b);

/// Parses a GPC_SIM_SANITIZE-style spec: a comma-separated subset of
/// {race, mem, sync}, or "all" / "1" for everything. Unknown tokens are
/// ignored. Null or empty means everything off.
SanitizeOptions parse_sanitize_spec(const char* spec);

/// Reads GPC_SIM_SANITIZE. Deliberately re-read per call (launch_kernel
/// calls it once per launch) so tests can toggle the variable at runtime.
SanitizeOptions sanitize_options_from_env();

enum class SanitizerTool : std::uint8_t { Racecheck, Memcheck, Synccheck };

const char* to_string(SanitizerTool t);

/// One distinct finding site. Findings are deduplicated by
/// (tool, kind, pc): repeated occurrences of the same hazard at the same
/// static micro-op bump `occurrences` instead of flooding the report.
struct SanitizerFinding {
  SanitizerTool tool = SanitizerTool::Racecheck;
  std::string kind;     // stable slug, e.g. "write-write-conflict"
  std::string message;  // human-readable, with lanes / addresses / PCs
  std::string kernel;
  std::int32_t pc = -1;       // micro-op index of the triggering access
  int block[3] = {0, 0, 0};   // block id of the first occurrence
  std::uint64_t occurrences = 1;
  /// For synccheck findings: lane-bitmask of the cohort that arrived at the
  /// faulting barrier (the lanes still live at that PC, not the warp's
  /// pre-split population). 0 when not applicable to the finding.
  std::uint64_t cohort_mask = 0;
};

struct SanitizerReport {
  SanitizeOptions checks;  // which checks ran (all false when off)
  std::vector<SanitizerFinding> findings;
  std::uint64_t dropped = 0;  // distinct sites beyond the per-launch cap

  bool enabled() const { return checks.any(); }
  bool clean() const { return findings.empty() && dropped == 0; }
  /// Human-readable dump (multi-line; empty string when clean).
  std::string to_string() const;
};

/// Launch-scoped finding collector, shared by all blocks of one launch.
/// Thread-safe; blocks execute on the host pool concurrently.
class Sanitizer {
 public:
  Sanitizer(SanitizeOptions opts, std::string kernel_name);

  const SanitizeOptions& options() const { return opts_; }
  const std::string& kernel() const { return kernel_; }

  /// Records one occurrence of a finding. `block` is the reporting block's
  /// id. The first occurrence per (tool, kind, pc) keeps its message and
  /// cohort mask.
  void record(SanitizerTool tool, const char* kind, std::int32_t pc,
              const int block[3], std::string message,
              std::uint64_t cohort_mask = 0);

  SanitizerReport report() const;

 private:
  static constexpr std::size_t kMaxFindings = 64;

  SanitizeOptions opts_;
  std::string kernel_;
  mutable std::mutex mutex_;
  std::vector<SanitizerFinding> findings_;
  std::uint64_t dropped_ = 0;
};

/// Per-block shadow state, owned by one BlockExecutor (blocks do not share
/// shared memory, so no locking on the access path; findings funnel into
/// the launch-wide Sanitizer). All lane ids below are block-flat thread
/// ids; `pc` is the micro-op index into the DecodedProgram.
class BlockSanitizer {
 public:
  BlockSanitizer(Sanitizer& collector, int warp_size,
                 std::size_t shared_bytes, int bx, int by, int bz);

  bool race_on() const { return collector_.options().race; }
  bool mem_on() const { return collector_.options().mem; }
  bool sync_on() const { return collector_.options().sync; }

  /// One lockstep shared-memory load instruction: n active lanes, lane i
  /// reading `size` bytes at byte offset addrs[i].
  void shared_load(const std::uint64_t* addrs, const int* lanes, int n,
                   int base_lane, int size, std::int32_t pc);

  /// One lockstep shared-memory store instruction (values gathered before
  /// any lane writes — the semantics lost updates emerge from).
  void shared_store(const std::uint64_t* addrs, const std::uint64_t* vals,
                    const int* lanes, int n, int base_lane, int size,
                    std::int32_t pc);

  /// Shared atomics serialise in hardware: they update the shadow (the
  /// word becomes initialized, with a known last writer) but are never
  /// themselves a conflict.
  void shared_atomic(const std::uint64_t* addrs, const int* lanes, int n,
                     int base_lane, int size, std::int32_t pc);

  /// Per-allocation bounds for a batch of global addresses (already
  /// validated against the whole heap by DeviceMemory::check).
  void global_batch(const DeviceMemory& mem, const std::uint64_t* addrs,
                    int n, int size, bool is_store, std::int32_t pc);

  /// Reports a divergent barrier with per-lane provenance. `arrived` is the
  /// lane-bitmask of the cohort actually at the barrier (live lanes only —
  /// exited lanes are not named). Returns true when synccheck is on, i.e.
  /// execution should tolerate the barrier (report-and-continue) instead of
  /// faulting.
  bool divergent_barrier(std::int32_t pc, std::uint64_t arrived,
                         const std::string& detail);

  /// Div/Rem with a zero divisor: the device silently produces 0, so with
  /// memcheck enabled the event is surfaced as a diagnostic finding (one
  /// per lane execution, deduplicated per static micro-op like every other
  /// finding) instead of being buried. No-op unless memcheck is on.
  void div_by_zero(std::int32_t pc);

  /// Block-wide barrier release: cross-instruction hazard tracking resets
  /// (a barrier orders every prior access before every later one).
  void barrier_release();

 private:
  struct Word {
    std::int32_t writer = -1;       // flat tid of last write; -1 = none
    std::int32_t write_pc = -1;
    std::uint32_t write_epoch = 0;  // barrier epoch of last write
    std::int32_t reader = -1;       // flat tid of last read since the write
    std::uint32_t read_epoch = 0;
    bool init = false;              // ever written (epoch-independent)
  };

  void report(SanitizerTool tool, const char* kind, std::int32_t pc,
              std::string message, std::uint64_t cohort_mask = 0);
  int warp_of(int flat_tid) const { return flat_tid / warp_size_; }
  /// True when a and b belong to the same ASSUMED 32-wide warp (the width
  /// warp-synchronous kernels are written against) but to different
  /// HARDWARE warps — i.e. warp_size < 32 split the assumed warp and a
  /// barrier-free dependency between them is no longer lockstep-ordered.
  /// Cross-warp dependencies between different assumed warps are out of
  /// scope (they would need a happens-before model and are exactly the
  /// scheduling-luck cases the paper's kernels rely on at width 32).
  bool split_warp(int a, int b) const {
    return warp_of(a) != warp_of(b) && a / 32 == b / 32;
  }

  Sanitizer& collector_;
  int warp_size_;
  int block_[3];
  std::vector<Word> words_;  // one per 4-byte shared-memory word
  std::uint32_t epoch_ = 1;
};

}  // namespace gpc::sim
