#include "sim/interp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/error.h"

namespace gpc::sim {

using ir::CmpOp;
using ir::Instr;
using ir::Opcode;
using ir::Operand;
using ir::Space;
using ir::Type;

namespace {

constexpr std::uint64_t kStepBudget = 8ull << 30;  // runaway-kernel backstop
constexpr int kTexLineBytes = 32;

std::uint64_t enc_f32(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

float dec_f32(std::uint64_t r) {
  const std::uint32_t b = static_cast<std::uint32_t>(r);
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

std::uint64_t enc_f64(double d) {
  std::uint64_t b;
  std::memcpy(&b, &d, 8);
  return b;
}

double dec_f64(std::uint64_t r) {
  double d;
  std::memcpy(&d, &r, 8);
  return d;
}

std::uint64_t enc_int(Type t, std::int64_t v) {
  switch (t) {
    case Type::Pred: return v ? 1 : 0;
    case Type::S32:
      return static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    case Type::U32: return static_cast<std::uint32_t>(v);
    case Type::U64: return static_cast<std::uint64_t>(v);
    case Type::F32: return enc_f32(static_cast<float>(v));
    case Type::F64: return enc_f64(static_cast<double>(v));
  }
  return 0;
}

std::int64_t dec_int(Type t, std::uint64_t raw) {
  switch (t) {
    case Type::Pred: return raw & 1;
    case Type::S32: return static_cast<std::int32_t>(raw);
    case Type::U32: return static_cast<std::uint32_t>(raw);
    case Type::U64: return static_cast<std::int64_t>(raw);
    default: return static_cast<std::int64_t>(raw);
  }
}

double dec_float(Type t, std::uint64_t raw) {
  return t == Type::F32 ? dec_f32(raw) : dec_f64(raw);
}

std::uint64_t enc_float(Type t, double v) {
  return t == Type::F32 ? enc_f32(static_cast<float>(v)) : enc_f64(v);
}

}  // namespace

KernelArg KernelArg::ptr(std::uint64_t device_addr) {
  return {Type::U64, device_addr};
}
KernelArg KernelArg::s32(std::int32_t v) {
  return {Type::S32, enc_int(Type::S32, v)};
}
KernelArg KernelArg::u32(std::uint32_t v) {
  return {Type::U32, enc_int(Type::U32, v)};
}
KernelArg KernelArg::f32(float v) { return {Type::F32, enc_f32(v)}; }

BlockExecutor::BlockExecutor(const arch::DeviceSpec& spec,
                             const ir::Function& fn,
                             std::span<const KernelArg> args,
                             DeviceMemory& mem,
                             std::span<const TexBinding> textures,
                             const LaunchConfig& config, Dim3 block_id)
    : spec_(spec),
      fn_(fn),
      args_(args),
      mem_(mem),
      textures_(textures),
      config_(config),
      block_id_(block_id),
      tex_cache_(spec.has_texture_cache ? spec.tex_cache_bytes
                                        : kTexLineBytes * 4,
                 kTexLineBytes, 4),
      l1_cache_(spec.has_l1 ? spec.l1_bytes : 64 * 4, 64, 4) {
  GPC_REQUIRE(args_.size() == fn_.params.size(),
              "kernel argument count mismatch for " + fn_.name);
  const int threads = static_cast<int>(config.block.count());
  shared_.assign(
      static_cast<std::size_t>(fn.static_shared_bytes) +
          config.dynamic_shared_bytes,
      0);
  const int wsz = spec.warp_size;
  const int nwarps = (threads + wsz - 1) / wsz;
  warps_.resize(nwarps);
  for (int w = 0; w < nwarps; ++w) {
    Warp& wp = warps_[w];
    wp.base = w * wsz;
    wp.width = std::min(wsz, threads - wp.base);
    wp.pc.assign(wp.width, 0);
    wp.regs.assign(static_cast<std::size_t>(fn.num_vregs) * wp.width, 0);
    wp.local.assign(static_cast<std::size_t>(fn.local_bytes) * wp.width, 0);
  }
}

std::uint64_t BlockExecutor::sreg_value(ir::SReg s, const Warp& w,
                                        int lane) const {
  const int flat = w.base + lane;
  const int bx = config_.block.x, by = config_.block.y;
  switch (s) {
    case ir::SReg::TidX: return flat % bx;
    case ir::SReg::TidY: return (flat / bx) % by;
    case ir::SReg::TidZ: return flat / (bx * by);
    case ir::SReg::NTidX: return bx;
    case ir::SReg::NTidY: return by;
    case ir::SReg::NTidZ: return config_.block.z;
    case ir::SReg::CtaIdX: return block_id_.x;
    case ir::SReg::CtaIdY: return block_id_.y;
    case ir::SReg::CtaIdZ: return block_id_.z;
    case ir::SReg::NCtaIdX: return config_.grid.x;
    case ir::SReg::NCtaIdY: return config_.grid.y;
    case ir::SReg::NCtaIdZ: return config_.grid.z;
    case ir::SReg::LaneId: return flat % spec_.warp_size;
    case ir::SReg::WarpSize: return spec_.warp_size;
    case ir::SReg::GridDimFlatX: return config_.grid.x;
  }
  return 0;
}

std::uint64_t BlockExecutor::operand(const Warp& w, const Operand& o, Type t,
                                     int lane) const {
  switch (o.kind) {
    case Operand::Kind::Reg:
      return w.regs[static_cast<std::size_t>(o.reg) * w.width + lane];
    case Operand::Kind::ImmInt:
      return enc_int(t, o.ival);
    case Operand::Kind::ImmFloat:
      return ir::is_float(t) ? enc_float(t, o.fval)
                             : enc_int(t, static_cast<std::int64_t>(o.fval));
    case Operand::Kind::None:
      return 0;
  }
  return 0;
}

bool BlockExecutor::guard_pass(const Warp& w, const Instr& in,
                               int lane) const {
  if (in.guard < 0) return true;
  const bool p =
      (w.regs[static_cast<std::size_t>(in.guard) * w.width + lane] & 1) != 0;
  return in.guard_negated ? !p : p;
}

// ---------------------------------------------------------------------------
// Cost accounting

void BlockExecutor::account_global(const std::vector<std::uint64_t>& addrs,
                                   int size, bool is_read) {
  if (addrs.empty()) return;
  stats_.mem_issues++;
  stats_.useful_global_bytes += addrs.size() * size;
  const int seg = spec_.dram_segment_bytes;
  std::vector<std::uint64_t>& segs = seg_scratch_;
  segs.clear();
  for (std::uint64_t a : addrs) segs.push_back(a / seg);
  std::sort(segs.begin(), segs.end());
  segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
  for (std::uint64_t s : segs) {
    if (is_read && spec_.has_l1) {
      if (l1_cache_.access(s * seg)) {
        stats_.l1_hits++;
        continue;
      }
    }
    stats_.dram_transactions++;
    if (is_read) {
      stats_.dram_read_bytes += seg;
    } else {
      stats_.dram_write_bytes += seg;
    }
  }
}

void BlockExecutor::account_shared(const std::vector<std::uint64_t>& addrs) {
  if (addrs.empty()) return;
  const int banks = spec_.shared_banks;
  if (banks <= 1) {
    stats_.shared_cycles += 1;
    return;
  }
  // Distinct word addresses per bank; identical addresses broadcast.
  std::vector<std::uint64_t>& words = seg_scratch_;
  words.clear();
  for (std::uint64_t a : addrs) words.push_back(a / 4);
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  std::vector<int> per_bank(banks, 0);
  int degree = 1;
  for (std::uint64_t wd : words) {
    const int b = static_cast<int>(wd % banks);
    degree = std::max(degree, ++per_bank[b]);
  }
  stats_.shared_cycles += degree;
}

void BlockExecutor::account_const(const std::vector<std::uint64_t>& addrs) {
  if (addrs.empty()) return;
  std::vector<std::uint64_t> uniq(addrs);
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  // Uniform access broadcasts in one cycle; divergent constant access
  // serialises per distinct address (GT200 behaviour; Fermi is similar
  // through its constant cache).
  stats_.const_cycles += uniq.size();
}

// ---------------------------------------------------------------------------
// Execution

void BlockExecutor::exec_memory(Warp& w, const Instr& in,
                                const std::vector<int>& lanes) {
  const int size = ir::size_of(in.type);
  auto dst_slot = [&](int lane) -> std::uint64_t& {
    return w.regs[static_cast<std::size_t>(in.dst) * w.width + lane];
  };

  switch (in.space) {
    case Space::Param: {
      const int idx = static_cast<int>(in.a.ival);
      GPC_CHECK(idx >= 0 && idx < static_cast<int>(args_.size()));
      for (int l : lanes) dst_slot(l) = args_[idx].raw;
      stats_.alu_issues++;  // parameter loads are register-file traffic
      return;
    }
    case Space::Global: {
      std::vector<std::uint64_t>& addrs = addr_scratch_;
      addrs.clear();
      if (in.op == Opcode::Ld) {
        for (int l : lanes) {
          const std::uint64_t a = operand(w, in.a, Type::U64, l);
          addrs.push_back(a);
          dst_slot(l) = size == 4 ? enc_int(in.type, 0) : 0;
        }
        // All lanes read the pre-instruction memory state.
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          std::uint64_t raw = mem_.load(addrs[i], size);
          if (in.type == Type::S32) raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          dst_slot(lanes[i]) = raw;
        }
        account_global(addrs, size, /*is_read=*/true);
      } else if (in.op == Opcode::St) {
        std::vector<std::uint64_t>& vals = val_scratch_;
        vals.clear();
        for (int l : lanes) {
          addrs.push_back(operand(w, in.a, Type::U64, l));
          vals.push_back(operand(w, in.b, in.type, l));
        }
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          mem_.store(addrs[i], vals[i], size);
        }
        account_global(addrs, size, /*is_read=*/false);
      } else {  // atomics: serialised, both read and write DRAM
        stats_.mem_issues++;
        for (int l : lanes) {
          const std::uint64_t a = operand(w, in.a, Type::U64, l);
          const std::uint64_t v = operand(w, in.b, in.type, l);
          std::uint64_t old;
          if (in.type == Type::F32) {
            old = mem_.atomic_add_f32(a, dec_f32(v));
          } else {
            old = mem_.atomic_add(a, v, size);
            if (in.type == Type::S32) {
              old = enc_int(Type::S32, static_cast<std::int32_t>(old));
            }
          }
          if (in.dst >= 0) dst_slot(l) = old;
          stats_.atomic_serial_ops++;
          stats_.dram_read_bytes += size;
          stats_.dram_write_bytes += size;
        }
      }
      return;
    }
    case Space::Shared: {
      std::vector<std::uint64_t>& addrs = addr_scratch_;
      addrs.clear();
      for (int l : lanes) addrs.push_back(operand(w, in.a, Type::U32, l));
      for (std::uint64_t a : addrs) {
        if (a + size > shared_.size() || a % size != 0) {
          throw DeviceFault("shared access out of bounds in " + fn_.name +
                            ": offset " + std::to_string(a));
        }
      }
      if (in.op == Opcode::Ld) {
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, shared_.data() + addrs[i], size);
          if (in.type == Type::S32) raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          dst_slot(lanes[i]) = raw;
        }
      } else if (in.op == Opcode::St) {
        // Lockstep semantics: gather all values first, then write.
        std::vector<std::uint64_t>& vals = val_scratch_;
        vals.clear();
        for (int l : lanes) vals.push_back(operand(w, in.b, in.type, l));
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          std::memcpy(shared_.data() + addrs[i], &vals[i], size);
        }
      } else {  // shared atomics: serialised by hardware, hence correct
        for (std::size_t i = 0; i < lanes.size(); ++i) {
          const std::uint64_t v = operand(w, in.b, in.type, lanes[i]);
          if (in.type == Type::F32) {
            float cur;
            std::memcpy(&cur, shared_.data() + addrs[i], 4);
            cur += dec_f32(v);
            std::memcpy(shared_.data() + addrs[i], &cur, 4);
          } else {
            std::uint32_t cur;
            std::memcpy(&cur, shared_.data() + addrs[i], 4);
            const std::uint32_t old = cur;
            cur += static_cast<std::uint32_t>(v);
            std::memcpy(shared_.data() + addrs[i], &cur, 4);
            if (in.dst >= 0) {
              dst_slot(lanes[i]) = enc_int(in.type, old);
            }
          }
          stats_.atomic_serial_ops++;
        }
      }
      account_shared(addrs);
      return;
    }
    case Space::Local: {
      stats_.mem_issues++;
      stats_.local_bytes += lanes.size() * size;
      for (int l : lanes) {
        const std::uint64_t off = operand(w, in.a, Type::U32, l);
        if (off + size > static_cast<std::uint64_t>(fn_.local_bytes)) {
          throw DeviceFault("local access out of bounds in " + fn_.name);
        }
        std::uint8_t* p =
            w.local.data() + static_cast<std::size_t>(l) * fn_.local_bytes + off;
        if (in.op == Opcode::Ld) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, p, size);
          if (in.type == Type::S32) raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          dst_slot(l) = raw;
        } else {
          const std::uint64_t v = operand(w, in.b, in.type, l);
          std::memcpy(p, &v, size);
        }
      }
      return;
    }
    case Space::Const: {
      std::vector<std::uint64_t>& addrs = addr_scratch_;
      addrs.clear();
      for (int l : lanes) addrs.push_back(operand(w, in.a, Type::U32, l));
      for (std::size_t i = 0; i < lanes.size(); ++i) {
        if (addrs[i] + size > fn_.const_data.size()) {
          throw DeviceFault("constant access out of bounds in " + fn_.name);
        }
        std::uint64_t raw = 0;
        std::memcpy(&raw, fn_.const_data.data() + addrs[i], size);
        if (in.type == Type::S32) raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
        dst_slot(lanes[i]) = raw;
      }
      account_const(addrs);
      return;
    }
    case Space::Texture: {
      GPC_CHECK(in.tex_unit >= 0 &&
                in.tex_unit < static_cast<int>(textures_.size()),
                "unbound texture unit in " + fn_.name);
      const TexBinding& tb = textures_[in.tex_unit];
      stats_.mem_issues++;
      stats_.tex_requests += lanes.size();
      for (int l : lanes) {
        const std::int64_t idx =
            dec_int(Type::S32, operand(w, in.a, Type::S32, l));
        const std::uint64_t addr = tb.base + static_cast<std::uint64_t>(idx) * size;
        if (idx < 0 || addr + size > tb.base + tb.bytes) {
          throw DeviceFault("texture fetch out of bounds in " + fn_.name);
        }
        std::uint64_t raw = mem_.load(addr, size);
        if (in.type == Type::S32) raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
        dst_slot(l) = raw;
        if (tex_cache_.access(addr)) {
          stats_.tex_hits++;
        } else {
          stats_.dram_read_bytes += kTexLineBytes;
          stats_.dram_transactions++;
        }
      }
      return;
    }
    case Space::Reg:
      break;
  }
  throw InternalError("bad memory space in exec_memory");
}

void BlockExecutor::exec_compute(Warp& w, const Instr& in,
                                 const std::vector<int>& lanes) {
  auto dst_slot = [&](int lane) -> std::uint64_t& {
    return w.regs[static_cast<std::size_t>(in.dst) * w.width + lane];
  };

  // Issue-class accounting (one issue per warp instruction).
  switch (in.op) {
    case Opcode::Mad:
    case Opcode::Fma:
      if (ir::is_float(in.type)) {
        stats_.mad_issues++;
      } else {
        stats_.alu_issues++;
      }
      break;
    case Opcode::Mul:
      if (ir::is_float(in.type)) {
        stats_.mul_issues++;
      } else {
        stats_.alu_issues++;
      }
      break;
    default:
      if (in.is_sfu()) {
        stats_.sfu_issues++;
      } else if (ir::is_float(in.type)) {
        stats_.alu_issues++;
      } else if (in.type == Type::U64) {
        stats_.agu_issues++;  // pointer arithmetic rides the LSU/AGU path
      } else {
        stats_.ialu_issues++;  // integer/predicate work
      }
      break;
  }
  stats_.flops += ir::flop_count(in) * static_cast<double>(lanes.size());

  const Type t = in.type;
  for (int l : lanes) {
    const std::uint64_t ra = operand(w, in.a, t, l);
    std::uint64_t out = 0;

    switch (in.op) {
      case Opcode::ReadSReg:
        out = enc_int(Type::S32, static_cast<std::int64_t>(sreg_value(in.sreg, w, l)));
        break;
      case Opcode::Mov:
        out = ra;
        break;
      case Opcode::Cvt: {
        if (ir::is_float(in.src_type)) {
          const double v = dec_float(in.src_type, operand(w, in.a, in.src_type, l));
          out = ir::is_float(t) ? enc_float(t, v)
                                : enc_int(t, static_cast<std::int64_t>(v));
        } else {
          const std::int64_t v = dec_int(in.src_type, operand(w, in.a, in.src_type, l));
          out = ir::is_float(t) ? enc_float(t, static_cast<double>(v))
                                : enc_int(t, v);
        }
        break;
      }
      case Opcode::SetP: {
        bool r;
        const std::uint64_t rb = operand(w, in.b, t, l);
        if (ir::is_float(t)) {
          const double x = dec_float(t, ra), y = dec_float(t, rb);
          switch (in.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        } else if (t == Type::U32 || t == Type::U64) {
          const std::uint64_t x = t == Type::U32 ? (ra & 0xFFFFFFFFull) : ra;
          const std::uint64_t y = t == Type::U32
                                      ? (rb & 0xFFFFFFFFull)
                                      : rb;
          switch (in.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        } else {
          const std::int64_t x = dec_int(t, ra), y = dec_int(t, rb);
          switch (in.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        }
        out = r ? 1 : 0;
        break;
      }
      case Opcode::SelP: {
        const bool p = (ra & 1) != 0;
        out = p ? operand(w, in.b, t, l) : operand(w, in.c, t, l);
        break;
      }
      default: {
        if (ir::is_float(t)) {
          const double a = dec_float(t, ra);
          const double b = in.b.is_none() ? 0 : dec_float(t, operand(w, in.b, t, l));
          const double c = in.c.is_none() ? 0 : dec_float(t, operand(w, in.c, t, l));
          double r = 0;
          switch (in.op) {
            case Opcode::Add: r = a + b; break;
            case Opcode::Sub: r = a - b; break;
            case Opcode::Mul: r = a * b; break;
            case Opcode::Div: r = b == 0 ? 0 : a / b; break;
            case Opcode::Mad:
              // GT200-style mad: the multiply rounds to f32 first.
              r = static_cast<double>(static_cast<float>(a) *
                                      static_cast<float>(b)) + c;
              break;
            case Opcode::Fma:
              r = std::fma(a, b, c);
              break;
            case Opcode::Neg: r = -a; break;
            case Opcode::Abs: r = std::fabs(a); break;
            case Opcode::Min: r = std::min(a, b); break;
            case Opcode::Max: r = std::max(a, b); break;
            case Opcode::Sqrt: r = std::sqrt(a); break;
            case Opcode::Rsqrt: r = 1.0 / std::sqrt(a); break;
            case Opcode::Rcp: r = 1.0 / a; break;
            case Opcode::Sin: r = std::sin(static_cast<float>(a)); break;
            case Opcode::Cos: r = std::cos(static_cast<float>(a)); break;
            case Opcode::Ex2: r = std::exp2(a); break;
            case Opcode::Lg2: r = std::log2(a); break;
            default:
              throw InternalError(std::string("float op unsupported: ") +
                                  ir::to_string(in.op));
          }
          out = enc_float(t, t == Type::F32 ? static_cast<float>(r) : r);
        } else {
          const std::int64_t a = dec_int(t, ra);
          const std::int64_t b =
              in.b.is_none() ? 0 : dec_int(t, operand(w, in.b, t, l));
          const std::int64_t c =
              in.c.is_none() ? 0 : dec_int(t, operand(w, in.c, t, l));
          std::int64_t r = 0;
          switch (in.op) {
            case Opcode::Add: r = a + b; break;
            case Opcode::Sub: r = a - b; break;
            case Opcode::Mul: r = a * b; break;
            case Opcode::MulHi:
              r = static_cast<std::int64_t>(
                  (static_cast<__int128>(a) * b) >> (t == Type::U64 ? 64 : 32));
              break;
            case Opcode::Div: r = b == 0 ? 0 : a / b; break;
            case Opcode::Rem: r = b == 0 ? 0 : a % b; break;
            case Opcode::Mad: r = a * b + c; break;
            case Opcode::Neg: r = -a; break;
            case Opcode::Abs: r = std::abs(a); break;
            case Opcode::Min: r = std::min(a, b); break;
            case Opcode::Max: r = std::max(a, b); break;
            case Opcode::And: r = a & b; break;
            case Opcode::Or: r = a | b; break;
            case Opcode::Xor: r = a ^ b; break;
            case Opcode::Not:
              r = t == Type::Pred ? !a : ~a;
              break;
            case Opcode::Shl: r = a << (b & (t == Type::U64 ? 63 : 31)); break;
            case Opcode::Shr:
              if (t == Type::S32) {
                r = static_cast<std::int32_t>(a) >> (b & 31);
              } else if (t == Type::U32) {
                r = static_cast<std::int64_t>(
                    static_cast<std::uint32_t>(a) >> (b & 31));
              } else {
                r = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(a) >> (b & 63));
              }
              break;
            default:
              throw InternalError(std::string("int op unsupported: ") +
                                  ir::to_string(in.op));
          }
          out = enc_int(t, r);
        }
        break;
      }
    }
    if (in.dst >= 0) dst_slot(l) = out;
  }
}

bool BlockExecutor::step(Warp& w) {
  // Min-PC selection over live, non-waiting lanes.
  int pcmin = INT32_MAX;
  for (int l = 0; l < w.width; ++l) {
    if (w.pc[l] >= 0) pcmin = std::min(pcmin, w.pc[l]);
  }
  if (pcmin == INT32_MAX || w.waiting) return false;

  if (++steps_ > kStepBudget) {
    throw DeviceFault("kernel exceeded instruction budget in " + fn_.name);
  }
  GPC_CHECK(pcmin < static_cast<int>(fn_.body.size()),
            "pc ran past end of " + fn_.name);
  const Instr& in = fn_.body[pcmin];

  std::vector<int>& mask = mask_scratch_;
  mask.clear();
  for (int l = 0; l < w.width; ++l) {
    if (w.pc[l] == pcmin) mask.push_back(l);
  }

  if (in.op == Opcode::Bra) {
    stats_.branch_issues++;
    for (int l : mask) {
      w.pc[l] = guard_pass(w, in, l) ? in.target : pcmin + 1;
    }
    return true;
  }
  if (in.op == Opcode::Exit) {
    for (int l : mask) w.pc[l] = -1;
    return true;
  }
  if (in.op == Opcode::Bar) {
    // All live lanes of the warp must arrive together.
    int live = 0;
    for (int l = 0; l < w.width; ++l) {
      if (w.pc[l] >= 0) ++live;
    }
    if (static_cast<int>(mask.size()) != live) {
      throw DeviceFault("divergent barrier in " + fn_.name);
    }
    stats_.barrier_count++;
    for (int l : mask) w.pc[l] = pcmin + 1;
    w.waiting = true;
    return false;
  }

  std::vector<int>& exec = exec_scratch_;
  exec.clear();
  for (int l : mask) {
    if (guard_pass(w, in, l)) exec.push_back(l);
  }

  if (!exec.empty()) {
    if (in.is_memory()) {
      exec_memory(w, in, exec);
    } else {
      exec_compute(w, in, exec);
    }
  } else {
    stats_.alu_issues++;  // predicated-off issue still consumes a slot
  }
  for (int l : mask) w.pc[l] = pcmin + 1;
  return true;
}

void BlockExecutor::run_warp(Warp& w) {
  while (step(w)) {
  }
}

BlockStats BlockExecutor::run() {
  for (;;) {
    bool all_finished = true;
    for (Warp& w : warps_) {
      if (w.finished()) continue;
      all_finished = false;
      if (!w.waiting) run_warp(w);
    }
    if (all_finished) break;

    bool all_parked = true;
    for (const Warp& w : warps_) {
      if (!w.finished() && !w.waiting) all_parked = false;
    }
    if (all_parked) {
      for (Warp& w : warps_) w.waiting = false;  // release the barrier
    } else {
      // Some warp is neither finished, waiting, nor able to progress.
      bool stuck = true;
      for (Warp& w : warps_) {
        if (!w.finished() && !w.waiting) {
          // It will be run on the next outer iteration; progress happens
          // unless the step budget trips. Guard against livelock:
          stuck = false;
        }
      }
      GPC_CHECK(!stuck, "block scheduler stuck in " + fn_.name);
    }
  }
  return stats_;
}

}  // namespace gpc::sim
