#include "sim/interp.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "resil/fault.h"
#include "sim/value_codec.h"

namespace gpc::sim {

using ir::CmpOp;
using ir::Opcode;
using ir::Type;

namespace {

constexpr std::uint64_t kStepBudget = 8ull << 30;  // runaway-kernel backstop
constexpr int kTexLineBytes = 32;

std::atomic<bool> g_fast_path{[] {
  const char* e = std::getenv("GPC_SIM_FASTPATH");
  return !(e && e[0] == '0' && e[1] == '\0');
}()};

/// Operand fetch against the pre-decoded stream: a register-slot load or the
/// immediate already encoded for this use site by the decode pass.
inline std::uint64_t fetch(const MOp& o, const std::uint64_t* regs, int width,
                           int lane) {
  return o.reg >= 0
             ? regs[static_cast<std::size_t>(o.reg) * width + lane]
             : o.imm;
}

}  // namespace

void set_convergent_fast_path(bool enabled) {
  g_fast_path.store(enabled, std::memory_order_relaxed);
}

bool convergent_fast_path_enabled() {
  return g_fast_path.load(std::memory_order_relaxed);
}

KernelArg KernelArg::ptr(std::uint64_t device_addr) {
  return {Type::U64, device_addr};
}
KernelArg KernelArg::s32(std::int32_t v) {
  return {Type::S32, enc_int(Type::S32, v)};
}
KernelArg KernelArg::u32(std::uint32_t v) {
  return {Type::U32, enc_int(Type::U32, v)};
}
KernelArg KernelArg::f32(float v) { return {Type::F32, enc_f32(v)}; }

BlockExecutor::BlockExecutor(const arch::DeviceSpec& spec,
                             const ir::Function& fn,
                             const DecodedProgram& prog,
                             std::span<const KernelArg> args,
                             DeviceMemory& mem,
                             std::span<const TexBinding> textures,
                             const LaunchConfig& config, Dim3 block_id,
                             ExecArena& arena, Sanitizer* sanitizer,
                             aiwc::Collector* aiwc)
    : spec_(spec),
      fn_(fn),
      prog_(prog),
      args_(args),
      mem_(mem),
      textures_(textures),
      config_(config),
      block_id_(block_id),
      arena_(arena) {
  GPC_REQUIRE(args_.size() == fn_.params.size(),
              "kernel argument count mismatch for " + fn_.name);
  GPC_CHECK(prog_.ops.size() == fn_.body.size(),
            "decode cache out of sync with " + fn_.name);
  arena_.tex_cache.reconfigure(
      spec.has_texture_cache ? spec.tex_cache_bytes : kTexLineBytes * 4,
      kTexLineBytes, 4);
  arena_.l1_cache.reconfigure(spec.has_l1 ? spec.l1_bytes : 64 * 4, 64, 4);

  const int threads = static_cast<int>(config.block.count());
  arena_.shared.assign(
      static_cast<std::size_t>(fn.static_shared_bytes) +
          config.dynamic_shared_bytes,
      0);
  arena_.pc.assign(threads, 0);
  arena_.regs.assign(static_cast<std::size_t>(fn.num_vregs) * threads, 0);
  arena_.local.assign(static_cast<std::size_t>(fn.local_bytes) * threads, 0);

  const int wsz = spec.warp_size;
  if (static_cast<int>(arena_.all_lanes.size()) < wsz) {
    arena_.all_lanes.resize(wsz);
    for (int l = 0; l < wsz; ++l) arena_.all_lanes[l] = l;
  }
  arena_.mask.resize(wsz);
  arena_.exec.resize(wsz);
  arena_.splat.resize(static_cast<std::size_t>(wsz) * 3);

  budget_ = config.step_budget > 0 ? config.step_budget : kStepBudget;
  dispatch_ = dispatch_mode();
  if (sanitizer != nullptr) {
    bsan_ = std::make_unique<BlockSanitizer>(
        *sanitizer, wsz, arena_.shared.size(), block_id.x, block_id.y,
        block_id.z);
  }
  if (aiwc != nullptr) {
    baiwc_ = std::make_unique<aiwc::BlockAiwc>(*aiwc);
  }

  fast_path_ = convergent_fast_path_enabled();
  cohort_path_ = fast_path_ && dispatch_ != DispatchMode::Switch &&
                 cohort_scheduler_enabled() && cohort_engine_available();
  const int nwarps = (threads + wsz - 1) / wsz;
  warps_.resize(nwarps);
  for (int w = 0; w < nwarps; ++w) {
    Warp& wp = warps_[w];
    wp.base = w * wsz;
    wp.width = std::min(wsz, threads - wp.base);
    wp.pc = arena_.pc.data() + wp.base;
    wp.regs = arena_.regs.data() +
              static_cast<std::size_t>(fn.num_vregs) * wp.base;
    wp.local = arena_.local.data() +
               static_cast<std::size_t>(fn.local_bytes) * wp.base;
    wp.converged = fast_path_;
    wp.cpc = 0;
  }
}

void BlockExecutor::check_budget() {
  if (++steps_ > budget_) {
    // The per-launch watchdog event: a hung/runaway launch becomes a
    // classified DeviceFault instead of a wall-clock stall.
    resil::note_watchdog_trip();
    throw DeviceFault("kernel exceeded instruction budget in " + fn_.name);
  }
}

void BlockExecutor::check_budget_extra(std::uint64_t extra) {
  steps_ += extra;
  if (steps_ > budget_) {
    resil::note_watchdog_trip();
    throw DeviceFault("kernel exceeded instruction budget in " + fn_.name);
  }
}

void BlockExecutor::note_div_by_zero(const MicroOp& m) {
  if (bsan_) [[unlikely]] {
    bsan_->div_by_zero(mop_pc(m));
  }
}

std::int32_t BlockExecutor::mop_pc(const MicroOp& m) const {
  return static_cast<std::int32_t>(&m - prog_.ops.data());
}

std::string BlockExecutor::divergence_detail(const Warp& w,
                                             const int* arrived, int n,
                                             std::int32_t bar_pc) const {
  constexpr int kMaxListed = 8;
  std::string s = "threads ";
  for (int i = 0; i < n && i < kMaxListed; ++i) {
    if (i > 0) s += ",";
    s += std::to_string(w.base + arrived[i]);
  }
  if (n > kMaxListed) s += ",…(" + std::to_string(n) + " total)";
  s += " arrived at the barrier (micro-op " + std::to_string(bar_pc) +
       ") while";
  int listed = 0, missing = 0;
  for (int l = 0; l < w.width; ++l) {
    if (w.pc[l] < 0 || w.pc[l] == bar_pc) continue;
    ++missing;
    if (listed >= kMaxListed) continue;
    s += (listed > 0 ? "," : " ") + std::string("thread ") +
         std::to_string(w.base + l) + " is at micro-op " +
         std::to_string(w.pc[l]);
    ++listed;
  }
  if (missing > listed) {
    s += ",…(" + std::to_string(missing) + " threads elsewhere)";
  }
  return s;
}

std::uint64_t BlockExecutor::sreg_value(ir::SReg s, const Warp& w,
                                        int lane) const {
  const int flat = w.base + lane;
  const int bx = config_.block.x, by = config_.block.y;
  switch (s) {
    case ir::SReg::TidX: return flat % bx;
    case ir::SReg::TidY: return (flat / bx) % by;
    case ir::SReg::TidZ: return flat / (bx * by);
    case ir::SReg::NTidX: return bx;
    case ir::SReg::NTidY: return by;
    case ir::SReg::NTidZ: return config_.block.z;
    case ir::SReg::CtaIdX: return block_id_.x;
    case ir::SReg::CtaIdY: return block_id_.y;
    case ir::SReg::CtaIdZ: return block_id_.z;
    // Split launches (resil policy layer) execute a sub-grid of a logical
    // grid; kernels must observe the logical extent or index math breaks.
    case ir::SReg::NCtaIdX: return config_.logical().x;
    case ir::SReg::NCtaIdY: return config_.logical().y;
    case ir::SReg::NCtaIdZ: return config_.logical().z;
    case ir::SReg::LaneId: return flat % spec_.warp_size;
    case ir::SReg::WarpSize: return spec_.warp_size;
    case ir::SReg::GridDimFlatX: return config_.logical().x;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Cost accounting

namespace {

/// Sizes the stamped open-address dedup table for up to n keys (load factor
/// <= 0.5) and returns the index mask. Stamps survive across instructions —
/// a slot is live only when its stamp equals the current epoch, so there is
/// no per-instruction clearing.
std::size_t dedup_reserve(ExecArena& a, int n) {
  std::size_t cap = a.dedup_key.size();
  if (cap < static_cast<std::size_t>(n) * 2) {
    cap = 64;
    while (cap < static_cast<std::size_t>(n) * 2) cap <<= 1;
    a.dedup_key.assign(cap, 0);
    a.dedup_stamp.assign(cap, 0);
  }
  return cap - 1;
}

inline std::size_t dedup_hash(std::uint64_t key) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 17);
}

}  // namespace

void BlockExecutor::account_global(const std::uint64_t* addrs, int n,
                                   int size, bool is_read) {
  if (n == 0) return;
  if (baiwc_) [[unlikely]] baiwc_->global_access(addrs, n, size);
  stats_.mem_issues++;
  stats_.useful_global_bytes += static_cast<std::uint64_t>(n) * size;
  const int seg = spec_.dram_segment_bytes;
  std::vector<std::uint64_t>& segs = arena_.seg;
  segs.resize(n);
  // Every real spec uses a power-of-two segment: a shift instead of one
  // 64-bit divide per lane per memory instruction.
  if ((seg & (seg - 1)) == 0) {
    const int sh = std::countr_zero(static_cast<unsigned>(seg));
    for (int i = 0; i < n; ++i) segs[i] = addrs[i] >> sh;
  } else {
    for (int i = 0; i < n; ++i) segs[i] = addrs[i] / seg;
  }
  // The L1 model is stateful (LRU), so segments must be probed in the same
  // ascending distinct order the original sort+unique produced. Coalesced
  // kernels arrive already sorted — detect that instead of always sorting.
  bool sorted = true;
  for (int i = 1; i < n; ++i) {
    if (segs[i] < segs[i - 1]) {
      sorted = false;
      break;
    }
  }
  if (!sorted) {
    if (n <= 32) {
      // One warp's worth of segments: insertion sort beats introsort's
      // setup (divergent gathers hit this on every memory instruction).
      for (int i = 1; i < n; ++i) {
        const std::uint64_t v = segs[i];
        int j = i - 1;
        for (; j >= 0 && segs[j] > v; --j) segs[j + 1] = segs[j];
        segs[j + 1] = v;
      }
    } else {
      std::sort(segs.begin(), segs.end());
    }
  }
  std::uint64_t last = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t s = segs[i];
    if (i > 0 && s == last) continue;  // duplicates are adjacent once sorted
    last = s;
    if (is_read && spec_.has_l1) {
      if (arena_.l1_cache.access(s * seg)) {
        stats_.l1_hits++;
        continue;
      }
    }
    stats_.dram_transactions++;
    if (is_read) {
      stats_.dram_read_bytes += seg;
    } else {
      stats_.dram_write_bytes += seg;
    }
  }
}

void BlockExecutor::account_shared(const std::uint64_t* addrs, int n) {
  if (n == 0) return;
  if (baiwc_) [[unlikely]] baiwc_->shared_access(addrs, n);
  const int banks = spec_.shared_banks;
  if (banks <= 1) {
    stats_.shared_cycles += 1;
    return;
  }
  // Conflict degree = max over banks of the number of DISTINCT word
  // addresses mapping to that bank; identical addresses broadcast. The
  // degree is order-independent, so an O(n) stamped dedup + stamped
  // per-bank counters replace the old sort+unique (which dominated the
  // convergent-MxM profile: two shared loads per inner-loop iteration).
  ExecArena& a = arena_;
  // Fast path: prove degree == 1 with one bitmask pass. A warp access is
  // conflict-free exactly when no bank holds two DISTINCT words, which a
  // 64-bit used-bank mask plus one remembered word per bank decides in a
  // handful of ALU ops per lane — no hashing. Tuned kernels (broadcast rows,
  // stride-1 word runs) take this path on essentially every access; the
  // first genuine conflict falls through to the exact stamped count below.
  if (banks <= 64 && (banks & (banks - 1)) == 0) {
    if (static_cast<int>(a.bank_word.size()) < banks) {
      a.bank_word.assign(banks, 0);
    }
    const std::uint64_t bmask = static_cast<std::uint64_t>(banks) - 1;
    std::uint64_t* bw = a.bank_word.data();
    std::uint64_t used = 0;
    int i = 0;
    for (; i < n; ++i) {
      const std::uint64_t wd = addrs[i] >> 2;
      const std::uint64_t bit = 1ull << (wd & bmask);
      if (!(used & bit)) {
        used |= bit;
        bw[wd & bmask] = wd;
      } else if (bw[wd & bmask] != wd) {
        break;  // two distinct words in one bank: real conflict
      }
    }
    if (i == n) {
      stats_.shared_cycles += 1;
      return;
    }
  }
  const std::uint64_t stamp = ++a.dedup_epoch;
  const std::size_t mask = dedup_reserve(a, n);
  if (static_cast<int>(a.bank_count.size()) < banks) {
    a.bank_stamp.assign(banks, 0);
    a.bank_count.assign(banks, 0);
  }
  int degree = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t wd = addrs[i] / 4;
    std::size_t h = dedup_hash(wd) & mask;
    for (;;) {
      if (a.dedup_stamp[h] != stamp) {
        a.dedup_stamp[h] = stamp;
        a.dedup_key[h] = wd;
        break;
      }
      if (a.dedup_key[h] == wd) goto duplicate;  // broadcast
      h = (h + 1) & mask;
    }
    {
      const int b = static_cast<int>(wd % banks);
      const int c = (a.bank_stamp[b] == stamp ? a.bank_count[b] : 0) + 1;
      a.bank_stamp[b] = stamp;
      a.bank_count[b] = c;
      degree = std::max(degree, c);
    }
  duplicate:;
  }
  stats_.shared_cycles += degree;
}

void BlockExecutor::account_const(const std::uint64_t* addrs, int n) {
  if (n == 0) return;
  // Uniform access broadcasts in one cycle; divergent constant access
  // serialises per distinct address (GT200 behaviour; Fermi is similar
  // through its constant cache). The uniform case is overwhelmingly the
  // common one (literal loads put the same address in every lane), so prove
  // it with one vectorizable scan before paying for the stamped dedup.
  std::uint64_t diff = 0;
  for (int i = 1; i < n; ++i) diff |= addrs[i] ^ addrs[0];
  if (diff == 0) {
    stats_.const_cycles += 1;
    return;
  }
  ExecArena& a = arena_;
  const std::uint64_t stamp = ++a.dedup_epoch;
  const std::size_t mask = dedup_reserve(a, n);
  std::uint64_t distinct = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t ad = addrs[i];
    std::size_t h = dedup_hash(ad) & mask;
    for (;;) {
      if (a.dedup_stamp[h] != stamp) {
        a.dedup_stamp[h] = stamp;
        a.dedup_key[h] = ad;
        ++distinct;
        break;
      }
      if (a.dedup_key[h] == ad) break;
      h = (h + 1) & mask;
    }
  }
  stats_.const_cycles += distinct;
}

// ---------------------------------------------------------------------------
// Execution

void BlockExecutor::exec_memory(Warp& w, const MicroOp& m, const int* lanes,
                                int n) {
  const int size = m.msize;
  const int width = w.width;
  std::uint64_t* regs = w.regs;
  auto dst_slot = [&](int lane) -> std::uint64_t& {
    return regs[static_cast<std::size_t>(m.dst) * width + lane];
  };

  switch (m.kind) {
    case XKind::LdParam: {
      const int idx = m.aux;
      GPC_CHECK(idx >= 0 && idx < static_cast<int>(args_.size()));
      for (int i = 0; i < n; ++i) dst_slot(lanes[i]) = args_[idx].raw;
      stats_.alu_issues++;  // parameter loads are register-file traffic
      return;
    }
    case XKind::MemGlobal: {
      std::vector<std::uint64_t>& addrs = arena_.addr;
      if (m.op == Opcode::Ld) {
        addrs.resize(n);
        for (int i = 0; i < n; ++i) {
          addrs[i] = fetch(m.a, regs, width, lanes[i]);
        }
        if (bsan_) [[unlikely]] {
          bsan_->global_batch(mem_, addrs.data(), n, size,
                              /*is_store=*/false, mop_pc(m));
        }
        // All lanes read the pre-instruction memory state.
        for (int i = 0; i < n; ++i) {
          std::uint64_t raw = mem_.load(addrs[i], size);
          if (m.type == Type::S32) {
            raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          }
          dst_slot(lanes[i]) = raw;
        }
        account_global(addrs.data(), n, size, /*is_read=*/true);
      } else if (m.op == Opcode::St) {
        std::vector<std::uint64_t>& vals = arena_.val;
        addrs.resize(n);
        vals.resize(n);
        for (int i = 0; i < n; ++i) {
          addrs[i] = fetch(m.a, regs, width, lanes[i]);
          vals[i] = fetch(m.b, regs, width, lanes[i]);
        }
        if (bsan_) [[unlikely]] {
          bsan_->global_batch(mem_, addrs.data(), n, size,
                              /*is_store=*/true, mop_pc(m));
        }
        for (int i = 0; i < n; ++i) {
          mem_.store(addrs[i], vals[i], size);
        }
        account_global(addrs.data(), n, size, /*is_read=*/false);
      } else {  // atomics: serialised, both read and write DRAM
        if (baiwc_) [[unlikely]] {
          // account_global never sees atomics; collect the lane addresses
          // here (the re-fetch below is side-effect-free).
          addrs.resize(n);
          for (int i = 0; i < n; ++i) {
            addrs[i] = fetch(m.a, regs, width, lanes[i]);
          }
          baiwc_->global_access(addrs.data(), n, size);
        }
        stats_.mem_issues++;
        for (int i = 0; i < n; ++i) {
          const int l = lanes[i];
          const std::uint64_t a = fetch(m.a, regs, width, l);
          const std::uint64_t v = fetch(m.b, regs, width, l);
          if (bsan_) [[unlikely]] {
            bsan_->global_batch(mem_, &a, 1, size, /*is_store=*/true,
                                mop_pc(m));
          }
          std::uint64_t old;
          if (m.type == Type::F32) {
            old = mem_.atomic_add_f32(a, dec_f32(v));
          } else {
            old = mem_.atomic_add(a, v, size);
            if (m.type == Type::S32) {
              old = enc_int(Type::S32, static_cast<std::int32_t>(old));
            }
          }
          if (m.dst >= 0) dst_slot(l) = old;
          stats_.atomic_serial_ops++;
          stats_.dram_read_bytes += size;
          stats_.dram_write_bytes += size;
        }
      }
      return;
    }
    case XKind::MemShared: {
      std::vector<std::uint64_t>& addrs = arena_.addr;
      addrs.resize(n);
      for (int i = 0; i < n; ++i) {
        addrs[i] = fetch(m.a, regs, width, lanes[i]);
      }
      // msize is a power of two, so alignment is a mask test (a modulo here
      // is a hardware divide per lane on the hottest instruction there is).
      const std::uint64_t align_mask = static_cast<std::uint64_t>(size) - 1;
      const std::uint64_t limit = arena_.shared.size();
      for (std::uint64_t a : addrs) {
        if (a + size > limit || (a & align_mask) != 0) {
          throw DeviceFault("shared access out of bounds in " + fn_.name +
                            ": offset " + std::to_string(a));
        }
      }
      if (m.op == Opcode::Ld) {
        if (bsan_) [[unlikely]] {
          bsan_->shared_load(addrs.data(), lanes, n, w.base, size, mop_pc(m));
        }
        const std::uint8_t* shared = arena_.shared.data();
        for (int i = 0; i < n; ++i) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, shared + addrs[i], size);
          if (m.type == Type::S32) {
            raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          }
          dst_slot(lanes[i]) = raw;
        }
      } else if (m.op == Opcode::St) {
        // Lockstep semantics: gather all values first, then write.
        std::vector<std::uint64_t>& vals = arena_.val;
        vals.resize(n);
        for (int i = 0; i < n; ++i) {
          vals[i] = fetch(m.b, regs, width, lanes[i]);
        }
        if (bsan_) [[unlikely]] {
          bsan_->shared_store(addrs.data(), vals.data(), lanes, n, w.base,
                              size, mop_pc(m));
        }
        for (int i = 0; i < n; ++i) {
          std::memcpy(arena_.shared.data() + addrs[i], &vals[i], size);
        }
      } else {  // shared atomics: serialised by hardware, hence correct
        if (bsan_) [[unlikely]] {
          bsan_->shared_atomic(addrs.data(), lanes, n, w.base, size,
                               mop_pc(m));
        }
        for (int i = 0; i < n; ++i) {
          const std::uint64_t v = fetch(m.b, regs, width, lanes[i]);
          if (m.type == Type::F32) {
            float cur;
            std::memcpy(&cur, arena_.shared.data() + addrs[i], 4);
            cur += dec_f32(v);
            std::memcpy(arena_.shared.data() + addrs[i], &cur, 4);
          } else {
            std::uint32_t cur;
            std::memcpy(&cur, arena_.shared.data() + addrs[i], 4);
            const std::uint32_t old = cur;
            cur += static_cast<std::uint32_t>(v);
            std::memcpy(arena_.shared.data() + addrs[i], &cur, 4);
            if (m.dst >= 0) {
              dst_slot(lanes[i]) = enc_int(m.type, old);
            }
          }
          stats_.atomic_serial_ops++;
        }
      }
      account_shared(addrs.data(), n);
      return;
    }
    case XKind::MemLocal: {
      stats_.mem_issues++;
      stats_.local_bytes += static_cast<std::uint64_t>(n) * size;
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const std::uint64_t off = fetch(m.a, regs, width, l);
        if (off + size > static_cast<std::uint64_t>(fn_.local_bytes)) {
          throw DeviceFault("local access out of bounds in " + fn_.name);
        }
        std::uint8_t* p =
            w.local + static_cast<std::size_t>(l) * fn_.local_bytes + off;
        if (m.op == Opcode::Ld) {
          std::uint64_t raw = 0;
          std::memcpy(&raw, p, size);
          if (m.type == Type::S32) {
            raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
          }
          dst_slot(l) = raw;
        } else {
          const std::uint64_t v = fetch(m.b, regs, width, l);
          std::memcpy(p, &v, size);
        }
      }
      return;
    }
    case XKind::MemConst: {
      std::vector<std::uint64_t>& addrs = arena_.addr;
      addrs.resize(n);
      for (int i = 0; i < n; ++i) {
        addrs[i] = fetch(m.a, regs, width, lanes[i]);
      }
      for (int i = 0; i < n; ++i) {
        if (addrs[i] + size > fn_.const_data.size()) {
          throw DeviceFault("constant access out of bounds in " + fn_.name);
        }
        std::uint64_t raw = 0;
        std::memcpy(&raw, fn_.const_data.data() + addrs[i], size);
        if (m.type == Type::S32) {
          raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
        }
        dst_slot(lanes[i]) = raw;
      }
      account_const(addrs.data(), n);
      return;
    }
    case XKind::MemTex: {
      GPC_CHECK(m.aux >= 0 && m.aux < static_cast<int>(textures_.size()),
                "unbound texture unit in " + fn_.name);
      const TexBinding& tb = textures_[m.aux];
      stats_.mem_issues++;
      stats_.tex_requests += n;
      std::vector<std::uint64_t>& taddrs = arena_.addr;
      if (baiwc_) [[unlikely]] taddrs.resize(n);
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const std::int64_t idx =
            dec_int(Type::S32, fetch(m.a, regs, width, l));
        const std::uint64_t addr =
            tb.base + static_cast<std::uint64_t>(idx) * size;
        if (idx < 0 || addr + size > tb.base + tb.bytes) {
          throw DeviceFault("texture fetch out of bounds in " + fn_.name);
        }
        if (baiwc_) [[unlikely]] taddrs[i] = addr;
        std::uint64_t raw = mem_.load(addr, size);
        if (m.type == Type::S32) {
          raw = enc_int(Type::S32, static_cast<std::int32_t>(raw));
        }
        dst_slot(l) = raw;
        if (arena_.tex_cache.access(addr)) {
          stats_.tex_hits++;
        } else {
          stats_.dram_read_bytes += kTexLineBytes;
          stats_.dram_transactions++;
        }
      }
      if (baiwc_) [[unlikely]] baiwc_->global_access(taddrs.data(), n, size);
      return;
    }
    default:
      break;
  }
  throw InternalError("bad micro-op kind in exec_memory");
}

void BlockExecutor::exec_compute(Warp& w, const MicroOp& m, const int* lanes,
                                 int n) {
  const int width = w.width;
  std::uint64_t* regs = w.regs;
  auto dst_slot = [&](int lane) -> std::uint64_t& {
    return regs[static_cast<std::size_t>(m.dst) * width + lane];
  };

  // Issue-class accounting (one issue per warp instruction), precomputed by
  // the decode pass.
  switch (m.issue) {
    case IssueClass::Alu: stats_.alu_issues++; break;
    case IssueClass::IAlu: stats_.ialu_issues++; break;
    case IssueClass::Agu: stats_.agu_issues++; break;
    case IssueClass::Mad: stats_.mad_issues++; break;
    case IssueClass::Mul: stats_.mul_issues++; break;
    case IssueClass::Sfu: stats_.sfu_issues++; break;
  }
  stats_.flops += static_cast<double>(m.flops) * static_cast<double>(n);
  if (m.dst < 0) return;  // no writeback target; accounting above stands

  const Type t = m.type;
  switch (m.kind) {
    case XKind::ReadSReg:
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        dst_slot(l) = enc_int(
            Type::S32, static_cast<std::int64_t>(sreg_value(m.sreg, w, l)));
      }
      return;
    case XKind::Mov:
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        dst_slot(l) = fetch(m.a, regs, width, l);
      }
      return;
    case XKind::Cvt: {
      if (ir::is_float(m.src_type)) {
        for (int i = 0; i < n; ++i) {
          const int l = lanes[i];
          const double v = dec_float(m.src_type, fetch(m.a, regs, width, l));
          dst_slot(l) = m.type_is_float
                            ? enc_float(t, v)
                            : enc_int(t, static_cast<std::int64_t>(v));
        }
      } else {
        for (int i = 0; i < n; ++i) {
          const int l = lanes[i];
          const std::int64_t v =
              dec_int(m.src_type, fetch(m.a, regs, width, l));
          dst_slot(l) = m.type_is_float
                            ? enc_float(t, static_cast<double>(v))
                            : enc_int(t, v);
        }
      }
      return;
    }
    case XKind::SetP: {
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const std::uint64_t ra = fetch(m.a, regs, width, l);
        const std::uint64_t rb = fetch(m.b, regs, width, l);
        bool r;
        if (m.type_is_float) {
          const double x = dec_float(t, ra), y = dec_float(t, rb);
          switch (m.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        } else if (t == Type::U32 || t == Type::U64) {
          const std::uint64_t x = t == Type::U32 ? (ra & 0xFFFFFFFFull) : ra;
          const std::uint64_t y = t == Type::U32 ? (rb & 0xFFFFFFFFull) : rb;
          switch (m.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        } else {
          const std::int64_t x = dec_int(t, ra), y = dec_int(t, rb);
          switch (m.cmp) {
            case CmpOp::Eq: r = x == y; break;
            case CmpOp::Ne: r = x != y; break;
            case CmpOp::Lt: r = x < y; break;
            case CmpOp::Le: r = x <= y; break;
            case CmpOp::Gt: r = x > y; break;
            default: r = x >= y; break;
          }
        }
        dst_slot(l) = r ? 1 : 0;
      }
      return;
    }
    case XKind::SelP:
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const bool p = (fetch(m.a, regs, width, l) & 1) != 0;
        dst_slot(l) = p ? fetch(m.b, regs, width, l)
                        : fetch(m.c, regs, width, l);
      }
      return;
    case XKind::FloatOp: {
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const double a = dec_float(t, fetch(m.a, regs, width, l));
        const double b = dec_float(t, fetch(m.b, regs, width, l));
        const double c = dec_float(t, fetch(m.c, regs, width, l));
        double r = 0;
        switch (m.op) {
          case Opcode::Add: r = a + b; break;
          case Opcode::Sub: r = a - b; break;
          case Opcode::Mul: r = a * b; break;
          case Opcode::Div:
            if (b == 0) [[unlikely]] {
              note_div_by_zero(m);
              r = 0;
            } else {
              r = a / b;
            }
            break;
          case Opcode::Mad:
            // GT200-style mad: the multiply rounds to f32 first.
            r = static_cast<double>(static_cast<float>(a) *
                                    static_cast<float>(b)) + c;
            break;
          case Opcode::Fma:
            r = std::fma(a, b, c);
            break;
          case Opcode::Neg: r = -a; break;
          case Opcode::Abs: r = std::fabs(a); break;
          case Opcode::Min: r = std::min(a, b); break;
          case Opcode::Max: r = std::max(a, b); break;
          case Opcode::Sqrt: r = std::sqrt(a); break;
          case Opcode::Rsqrt: r = 1.0 / std::sqrt(a); break;
          case Opcode::Rcp: r = 1.0 / a; break;
          case Opcode::Sin:
            // f32 evaluates at float precision (GPU SFU semantics); f64 is
            // a full-precision library call.
            r = t == Type::F64 ? std::sin(a)
                               : std::sin(static_cast<float>(a));
            break;
          case Opcode::Cos:
            r = t == Type::F64 ? std::cos(a)
                               : std::cos(static_cast<float>(a));
            break;
          case Opcode::Ex2: r = std::exp2(a); break;
          case Opcode::Lg2: r = std::log2(a); break;
          default:
            throw InternalError(std::string("float op unsupported: ") +
                                ir::to_string(m.op));
        }
        dst_slot(l) = enc_float(t, t == Type::F32 ? static_cast<float>(r) : r);
      }
      return;
    }
    case XKind::IntOp: {
      for (int i = 0; i < n; ++i) {
        const int l = lanes[i];
        const std::int64_t a = dec_int(t, fetch(m.a, regs, width, l));
        const std::int64_t b = dec_int(t, fetch(m.b, regs, width, l));
        const std::int64_t c = dec_int(t, fetch(m.c, regs, width, l));
        std::int64_t r = 0;
        switch (m.op) {
          case Opcode::Add: r = a + b; break;
          case Opcode::Sub: r = a - b; break;
          case Opcode::Mul: r = a * b; break;
          case Opcode::MulHi:
            r = static_cast<std::int64_t>(
                (static_cast<__int128>(a) * b) >> (t == Type::U64 ? 64 : 32));
            break;
          case Opcode::Div:
            if (b == 0) [[unlikely]] {
              note_div_by_zero(m);
              r = 0;
            } else {
              r = a / b;
            }
            break;
          case Opcode::Rem:
            if (b == 0) [[unlikely]] {
              note_div_by_zero(m);
              r = 0;
            } else {
              r = a % b;
            }
            break;
          case Opcode::Mad: r = a * b + c; break;
          case Opcode::Neg: r = -a; break;
          case Opcode::Abs: r = std::abs(a); break;
          case Opcode::Min: r = std::min(a, b); break;
          case Opcode::Max: r = std::max(a, b); break;
          case Opcode::And: r = a & b; break;
          case Opcode::Or: r = a | b; break;
          case Opcode::Xor: r = a ^ b; break;
          case Opcode::Not:
            r = t == Type::Pred ? !a : ~a;
            break;
          case Opcode::Shl: r = a << (b & (t == Type::U64 ? 63 : 31)); break;
          case Opcode::Shr:
            if (t == Type::S32) {
              r = static_cast<std::int32_t>(a) >> (b & 31);
            } else if (t == Type::U32) {
              r = static_cast<std::int64_t>(
                  static_cast<std::uint32_t>(a) >> (b & 31));
            } else {
              r = static_cast<std::int64_t>(
                  static_cast<std::uint64_t>(a) >> (b & 63));
            }
            break;
          default:
            throw InternalError(std::string("int op unsupported: ") +
                                ir::to_string(m.op));
        }
        dst_slot(l) = enc_int(t, r);
      }
      return;
    }
    default:
      throw InternalError("bad micro-op kind in exec_compute");
  }
}

// ---------------------------------------------------------------------------
// Scheduling

// Convergent fast path: the whole warp is live at one PC, so instructions
// execute for the contiguous lane range [0, width) with no mask vector, no
// min-PC scan and no per-lane PC writes. Falls back to the divergent
// scheduler the moment a guarded branch splits the warp.
void BlockExecutor::run_converged(Warp& w) {
  const MicroOp* ops = prog_.ops.data();
  const int nops = static_cast<int>(prog_.ops.size());
  const int n = w.width;
  const int* all = arena_.all_lanes.data();
  int* exec = arena_.exec.data();
  int pc = w.cpc;
  // Hoisted like the goto engine's copy: tested per issued instruction.
  aiwc::BlockAiwc* const baiwc = baiwc_.get();

  for (;;) {
    GPC_CHECK(pc < nops, "pc ran past end of " + fn_.name);
    check_budget();
    const MicroOp& m = ops[pc];
    stats_.xkind_issues[static_cast<int>(m.kind)]++;
    if (baiwc) [[unlikely]] baiwc->issue(pc, n);
    switch (m.kind) {
      case XKind::Bra: {
        stats_.branch_issues++;
        if (m.guard < 0) {
          if (baiwc) [[unlikely]] baiwc->branch(pc, n, n);
          pc = m.target;
          continue;
        }
        int taken = 0;
        for (int l = 0; l < n; ++l) taken += guard_pass(w, m, l);
        if (baiwc) [[unlikely]] baiwc->branch(pc, taken, n);
        if (taken == n) {
          pc = m.target;
          continue;
        }
        if (taken == 0) {
          ++pc;
          continue;
        }
        // The warp splits: hand the per-lane PCs to the min-PC scheduler.
        for (int l = 0; l < n; ++l) {
          w.pc[l] = guard_pass(w, m, l) ? m.target : pc + 1;
        }
        w.converged = false;
        return;
      }
      case XKind::Exit:
        for (int l = 0; l < n; ++l) w.pc[l] = -1;
        return;  // finished; converged stays set, pc[] says it all
      case XKind::Bar:
        // All live lanes are here by construction — never a divergent
        // barrier on this path.
        stats_.barrier_count++;
        ++pc;
        for (int l = 0; l < n; ++l) w.pc[l] = pc;
        w.cpc = pc;
        w.waiting = true;
        return;
      default: {
        const int* lanes = all;
        int nexec = n;
        if (m.guard >= 0) {
          nexec = 0;
          for (int l = 0; l < n; ++l) {
            if (guard_pass(w, m, l)) exec[nexec++] = l;
          }
          lanes = exec;
        }
        if (nexec > 0) {
          if (m.kind <= XKind::MemTex) {
            exec_memory(w, m, lanes, nexec);
          } else {
            exec_compute(w, m, lanes, nexec);
          }
        } else {
          stats_.alu_issues++;  // predicated-off issue still consumes a slot
        }
        ++pc;
      }
    }
  }
}

bool BlockExecutor::step(Warp& w) {
  // Min-PC selection over live, non-waiting lanes; also detects full
  // reconvergence so the warp can re-enter the fast path.
  int pcmin = INT32_MAX, pcmax = -1;
  int live = 0;
  for (int l = 0; l < w.width; ++l) {
    const int p = w.pc[l];
    if (p >= 0) {
      ++live;
      pcmin = std::min(pcmin, p);
      pcmax = std::max(pcmax, p);
    }
  }
  if (pcmin == INT32_MAX || w.waiting) return false;

  if (fast_path_ && live == w.width && pcmin == pcmax) {
    w.converged = true;
    w.cpc = pcmin;
    return true;  // run_warp switches to the fast path
  }

  check_budget();
  GPC_CHECK(pcmin < static_cast<int>(prog_.ops.size()),
            "pc ran past end of " + fn_.name);
  const MicroOp& m = prog_.ops[pcmin];
  stats_.xkind_issues[static_cast<int>(m.kind)]++;

  int* mask = arena_.mask.data();
  int nmask = 0;
  for (int l = 0; l < w.width; ++l) {
    if (w.pc[l] == pcmin) mask[nmask++] = l;
  }
  if (baiwc_) [[unlikely]] baiwc_->issue(pcmin, nmask);

  if (m.kind == XKind::Bra) {
    stats_.branch_issues++;
    int taken = 0;
    for (int i = 0; i < nmask; ++i) {
      const int l = mask[i];
      const bool t = guard_pass(w, m, l);
      taken += t;
      w.pc[l] = t ? m.target : pcmin + 1;
    }
    if (baiwc_) [[unlikely]] baiwc_->branch(pcmin, taken, nmask);
    return true;
  }
  if (m.kind == XKind::Exit) {
    for (int i = 0; i < nmask; ++i) w.pc[mask[i]] = -1;
    return true;
  }
  if (m.kind == XKind::Bar) {
    // All live lanes of the warp must arrive together. With synccheck on,
    // the violation is recorded with per-lane provenance and the arrived
    // subset proceeds past the barrier (report-and-continue, so one launch
    // surfaces every divergent site); otherwise it is a fault.
    if (nmask != live) {
      std::uint64_t arrived = 0;
      for (int i = 0; i < nmask; ++i) arrived |= 1ull << mask[i];
      const std::string detail = divergence_detail(w, mask, nmask, pcmin);
      if (!bsan_ || !bsan_->divergent_barrier(mop_pc(m), arrived, detail)) {
        throw DeviceFault("divergent barrier in " + fn_.name + ": " + detail);
      }
    }
    stats_.barrier_count++;
    for (int i = 0; i < nmask; ++i) w.pc[mask[i]] = pcmin + 1;
    w.waiting = true;
    return false;
  }

  int* exec = arena_.exec.data();
  int nexec = 0;
  for (int i = 0; i < nmask; ++i) {
    const int l = mask[i];
    if (guard_pass(w, m, l)) exec[nexec++] = l;
  }

  if (nexec > 0) {
    if (m.kind <= XKind::MemTex) {
      exec_memory(w, m, exec, nexec);
    } else {
      exec_compute(w, m, exec, nexec);
    }
  } else {
    stats_.alu_issues++;  // predicated-off issue still consumes a slot
  }
  for (int i = 0; i < nmask; ++i) w.pc[mask[i]] = pcmin + 1;
  return true;
}

// Reconvergence-stack cohort scheduler (DESIGN.md §15): the divergent
// counterpart of the convergent fast path. The warp's live lanes group into
// cohorts — one per DISTINCT pc, kept sorted ascending — and the front
// (min-pc) cohort runs straight-line through the computed-goto engine until
// it reaches the next cohort's pc (pop/merge), splits at a guarded branch
// (push), exits, or arrives at a barrier. Because the running cohort's limit
// is exactly the next cohort's pc, warp instructions issue in EXACTLY the
// order the per-step min-PC scan produced — which is what keeps BlockStats,
// intra-warp memory ordering (the RdxS lost-update mechanisms) and fault
// points bit-identical across schedulers. The rpc/depth stamps (immediate
// post-dominators, decode.cpp) only feed the cohort_splits/merges and
// divergence-depth diagnostics; merging never depends on them.
//
// pc[] is stale while cohorts hold the truth and is re-synced at every
// scheduler exit (reconvergence, barrier, exit). A DeviceFault mid-run
// leaves it stale, which is fine: the launch aborts and block state is
// discarded (same rationale as check_budget_extra's mid-group trip).
bool BlockExecutor::run_divergent(Warp& w) {
  std::vector<Cohort>& cohorts = arena_.cohorts;
  cohorts.clear();
  const std::uint64_t full =
      w.width == 64 ? ~0ull : (1ull << w.width) - 1;
  std::uint64_t live = 0;

  const auto insert = [&cohorts](std::int32_t pc, std::uint64_t lanes,
                                 std::int32_t rpc, std::uint32_t depth,
                                 std::uint64_t* merges) {
    std::size_t i = 0;
    while (i < cohorts.size() && cohorts[i].pc < pc) ++i;
    if (i < cohorts.size() && cohorts[i].pc == pc) {
      Cohort& c = cohorts[i];
      c.lanes |= lanes;
      if (depth < c.depth) {  // the shallower frame owns the merged cohort
        c.depth = depth;
        c.rpc = rpc;
      }
      if (merges != nullptr) ++*merges;
    } else {
      cohorts.insert(cohorts.begin() + i, Cohort{pc, rpc, depth, lanes});
    }
  };

  for (int l = 0; l < w.width; ++l) {
    const std::int32_t p = w.pc[l];
    if (p < 0) continue;
    live |= 1ull << l;
    insert(p, 1ull << l, -1, 0, nullptr);
  }

  int* const lane_buf = arena_.mask.data();
  if (cohorts.size() > stats_.cohort_max_live) {
    stats_.cohort_max_live = static_cast<std::uint32_t>(cohorts.size());
  }
  if (cohorts.size() > 1) {
    // The warp arrives already split: the branch that diverged it ran in
    // the convergent engine, which materialises pc[] instead of reporting
    // CohortStop::Split. Count that entry divergence here so the
    // splits/merges diagnostics pair up (a merge can never precede a
    // split) and depth reflects the live divergence level.
    stats_.cohort_splits += cohorts.size() - 1;
    if (stats_.div_depth_max < 1) stats_.div_depth_max = 1;
    // Stamp the entry cohorts at level 1 so a split inside the scheduler
    // reports level 2, not 1: the warp is already one level diverged when
    // it gets here. rpc stays -1 (no frame to pop; diagnostics only).
    for (Cohort& c : cohorts) c.depth = 1;
  }

  while (!cohorts.empty()) {
    // Full reconvergence: hand the warp back to the convergent fast path
    // (cohort_path_ implies fast_path_), exactly where step() would.
    if (cohorts.size() == 1 && cohorts.front().lanes == full) {
      const std::int32_t pc = cohorts.front().pc;
      for (int l = 0; l < w.width; ++l) w.pc[l] = pc;
      w.converged = true;
      w.cpc = pc;
      return true;
    }

    Cohort cur = cohorts.front();
    cohorts.erase(cohorts.begin());
    int n = 0;
    for (std::uint64_t b = cur.lanes; b != 0; b &= b - 1) {
      lane_buf[n++] = std::countr_zero(b);
    }
    CohortRun run;
    run.lanes = lane_buf;
    run.n = n;
    run.pc = cur.pc;
    run.limit = cohorts.empty() ? INT32_MAX : cohorts.front().pc;

    switch (run_cohort_goto(w, run)) {
      case CohortStop::Limit: {
        std::int32_t rpc = cur.rpc;
        std::uint32_t depth = cur.depth;
        if (rpc >= 0 && run.pc >= rpc) {
          // Reached the stamped reconvergence point: this frame pops.
          rpc = -1;
          if (depth > 0) --depth;
        }
        insert(run.pc, cur.lanes, rpc, depth, &stats_.cohort_merges);
        break;
      }
      case CohortStop::Split: {
        stats_.cohort_splits++;
        const std::uint32_t depth = cur.depth + 1;
        if (depth > stats_.div_depth_max) stats_.div_depth_max = depth;
        const std::int32_t rpc =
            run.bra_pc >= 0 &&
                    run.bra_pc < static_cast<std::int32_t>(prog_.rpc.size())
                ? prog_.rpc[run.bra_pc]
                : -1;
        insert(run.pc, cur.lanes & ~run.taken_mask, rpc, depth,
               &stats_.cohort_merges);
        insert(run.target, cur.lanes & run.taken_mask, rpc, depth,
               &stats_.cohort_merges);
        if (cohorts.size() > stats_.cohort_max_live) {
          stats_.cohort_max_live = static_cast<std::uint32_t>(cohorts.size());
        }
        break;
      }
      case CohortStop::Exited: {
        for (int i = 0; i < n; ++i) w.pc[lane_buf[i]] = -1;
        live &= ~cur.lanes;
        break;  // cohorts may now be empty: the warp finished
      }
      case CohortStop::Barrier: {
        // Sync pc[] first so divergence_detail names the live lanes at
        // their true pcs (never pre-split state, never exited lanes).
        for (int i = 0; i < n; ++i) w.pc[lane_buf[i]] = run.pc;
        for (const Cohort& c : cohorts) {
          for (std::uint64_t b = c.lanes; b != 0; b &= b - 1) {
            w.pc[std::countr_zero(b)] = c.pc;
          }
        }
        if (cur.lanes != live) {
          const std::string detail =
              divergence_detail(w, lane_buf, n, run.pc);
          if (!bsan_ ||
              !bsan_->divergent_barrier(run.pc, cur.lanes, detail)) {
            throw DeviceFault("divergent barrier in " + fn_.name + ": " +
                              detail);
          }
        }
        stats_.barrier_count++;
        for (int i = 0; i < n; ++i) w.pc[lane_buf[i]] = run.pc + 1;
        w.waiting = true;
        return false;
      }
    }
  }
  return false;  // every lane exited; pc[] is -1 throughout
}

void BlockExecutor::run_warp(Warp& w) {
  for (;;) {
    if (w.converged) {
      switch (dispatch_) {
        case DispatchMode::Switch: run_converged(w); break;
        case DispatchMode::Threaded: run_converged_goto<false>(w); break;
        case DispatchMode::Simd: run_converged_goto<true>(w); break;
      }
      if (w.converged) return;  // parked at a barrier or finished
      continue;                 // diverged: a divergent scheduler takes over
    }
    if (cohort_path_) {
      if (!run_divergent(w)) return;  // parked or finished
      continue;                       // reconverged: fast path resumes
    }
    if (!step(w)) return;
  }
}

BlockStats BlockExecutor::run() {
  for (;;) {
    bool all_finished = true;
    for (Warp& w : warps_) {
      if (w.finished()) continue;
      all_finished = false;
      if (!w.waiting) run_warp(w);
    }
    if (all_finished) break;

    bool all_parked = true;
    for (const Warp& w : warps_) {
      if (!w.finished() && !w.waiting) all_parked = false;
    }
    if (all_parked) {
      for (Warp& w : warps_) w.waiting = false;  // release the barrier
      // The barrier orders every prior shared-memory access before every
      // later one: racecheck's cross-instruction hazard window resets.
      if (bsan_) [[unlikely]] bsan_->barrier_release();
    } else {
      // Some warp is neither finished, waiting, nor able to progress.
      bool stuck = true;
      for (Warp& w : warps_) {
        if (!w.finished() && !w.waiting) {
          // It will be run on the next outer iteration; progress happens
          // unless the step budget trips. Guard against livelock:
          stuck = false;
        }
      }
      GPC_CHECK(!stuck, "block scheduler stuck in " + fn_.name);
    }
  }
  // Successful completion only: a faulted block throws past this, dropping
  // its partial characterization data just like its BlockStats.
  if (baiwc_) [[unlikely]] baiwc_->flush();
  return stats_;
}

}  // namespace gpc::sim
