// SIMT interpreter: executes one work-group (thread block) of a compiled
// kernel over the device's hardware lockstep width.
//
// Execution model (this is where several of the paper's §V findings emerge):
//  * Work-items are grouped into hardware warps of DeviceSpec::warp_size
//    (32 on NVIDIA, 64 wavefronts on Cypress, 1 on the CPU/Cell runtimes,
//    where work-items run serially to the next barrier).
//  * Within a warp, lanes execute in lockstep with min-PC divergence
//    scheduling: each step executes the instruction at the smallest live PC
//    for exactly the lanes parked there, so divergent branches serialise and
//    reconverge naturally.
//  * Intra-warp memory visibility is per-instruction: all lanes of one
//    executed instruction read before any of them write the next one. A
//    read-modify-write performed by two simultaneously active lanes on the
//    same address therefore loses an update — which is precisely how the
//    RdxS warp-size-32 assumption breaks on a 64-wide wavefront (Table VI's
//    "FL"), and stale reads are how it breaks on the serialising CPU runtime.
//  * Barriers are work-group-wide; a barrier executed by a divergent warp
//    subset faults (illegal in CUDA/OpenCL, and a bug we want loud).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/device_spec.h"
#include "ir/function.h"
#include "sim/cache.h"
#include "sim/memory.h"
#include "sim/stats.h"

namespace gpc::sim {

struct Dim3 {
  int x = 1, y = 1, z = 1;
  long long count() const {
    return static_cast<long long>(x) * y * z;
  }
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  int dynamic_shared_bytes = 0;
};

/// One kernel argument, already encoded into a 64-bit slot per its type.
struct KernelArg {
  ir::Type type = ir::Type::U32;
  std::uint64_t raw = 0;

  static KernelArg ptr(std::uint64_t device_addr);
  static KernelArg s32(std::int32_t v);
  static KernelArg u32(std::uint32_t v);
  static KernelArg f32(float v);
};

/// A texture unit binding (CUDA path only).
struct TexBinding {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  ir::Type elem = ir::Type::F32;
};

/// Executes one block. `caches` may be null when the device has no texture
/// cache / L1 (stats then count every access as a DRAM transaction).
class BlockExecutor {
 public:
  BlockExecutor(const arch::DeviceSpec& spec, const ir::Function& fn,
                std::span<const KernelArg> args, DeviceMemory& mem,
                std::span<const TexBinding> textures,
                const LaunchConfig& config, Dim3 block_id);

  /// Runs the block to completion and returns its statistics.
  /// Throws DeviceFault on illegal kernel behaviour.
  BlockStats run();

 private:
  struct Warp {
    int base = 0;    // first flat thread id in the block
    int width = 0;   // live lanes (last warp may be partial)
    std::vector<int> pc;            // per lane; -1 = exited
    std::vector<std::uint64_t> regs;  // num_vregs * width
    std::vector<std::uint8_t> local;  // local_bytes * width
    bool waiting = false;           // parked at a barrier
    bool finished() const {
      for (int p : pc) {
        if (p >= 0) return false;
      }
      return true;
    }
  };

  void run_warp(Warp& w);
  // Executes one instruction step; returns false when the warp cannot make
  // further progress right now (waiting or finished).
  bool step(Warp& w);

  std::uint64_t operand(const Warp& w, const ir::Operand& o, ir::Type t,
                        int lane) const;
  bool guard_pass(const Warp& w, const ir::Instr& in, int lane) const;

  void exec_memory(Warp& w, const ir::Instr& in,
                   const std::vector<int>& lanes);
  void exec_compute(Warp& w, const ir::Instr& in,
                    const std::vector<int>& lanes);
  std::uint64_t sreg_value(ir::SReg s, const Warp& w, int lane) const;

  void account_global(const std::vector<std::uint64_t>& addrs, int size,
                      bool is_read);
  void account_shared(const std::vector<std::uint64_t>& addrs);
  void account_const(const std::vector<std::uint64_t>& addrs);

  const arch::DeviceSpec& spec_;
  const ir::Function& fn_;
  std::span<const KernelArg> args_;
  DeviceMemory& mem_;
  std::span<const TexBinding> textures_;
  LaunchConfig config_;
  Dim3 block_id_;

  std::vector<std::uint8_t> shared_;
  std::vector<Warp> warps_;
  CacheModel tex_cache_;
  CacheModel l1_cache_;
  BlockStats stats_;
  std::uint64_t steps_ = 0;

  // Scratch buffers reused across steps (the interpreter's hot path).
  std::vector<int> mask_scratch_;
  std::vector<int> exec_scratch_;
  std::vector<std::uint64_t> addr_scratch_;
  std::vector<std::uint64_t> val_scratch_;
  std::vector<std::uint64_t> seg_scratch_;
};

}  // namespace gpc::sim
