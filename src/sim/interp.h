// SIMT interpreter: executes one work-group (thread block) of a compiled
// kernel over the device's hardware lockstep width.
//
// Execution model (this is where several of the paper's §V findings emerge):
//  * Work-items are grouped into hardware warps of DeviceSpec::warp_size
//    (32 on NVIDIA, 64 wavefronts on Cypress, 1 on the CPU/Cell runtimes,
//    where work-items run serially to the next barrier).
//  * Within a warp, lanes execute in lockstep with min-PC divergence
//    scheduling: each step executes the instruction at the smallest live PC
//    for exactly the lanes parked there, so divergent branches serialise and
//    reconverge naturally.
//  * Intra-warp memory visibility is per-instruction: all lanes of one
//    executed instruction read before any of them write the next one. A
//    read-modify-write performed by two simultaneously active lanes on the
//    same address therefore loses an update — which is precisely how the
//    RdxS warp-size-32 assumption breaks on a 64-wide wavefront (Table VI's
//    "FL"), and stale reads are how it breaks on the serialising CPU runtime.
//  * Barriers are work-group-wide; a barrier executed by a divergent warp
//    subset faults (illegal in CUDA/OpenCL, and a bug we want loud).
//
// Performance architecture (see DESIGN.md "Simulator performance
// architecture"): instructions execute from the pre-decoded micro-op stream
// (sim/decode.h); a warp whose live lanes all share one PC runs on the
// convergent fast path — a tight loop over contiguous lanes with no mask
// construction or per-lane PC bookkeeping. A diverged warp runs on the
// reconvergence-stack cohort scheduler (DESIGN.md §15): lanes group into
// per-PC cohorts kept sorted by pc, and the min-pc cohort executes
// straight-line through the computed-goto engine until it reaches the next
// cohort's pc, reproducing the historical min-PC issue order exactly (the
// min-PC scan itself remains as the `switch`-mode / GPC_SIM_COHORT=0
// reference). All block-local storage lives in a caller-owned ExecArena so
// repeated block executions reuse allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aiwc/aiwc.h"
#include "arch/device_spec.h"
#include "ir/function.h"
#include "sim/cache.h"
#include "sim/decode.h"
#include "sim/dispatch.h"
#include "sim/memory.h"
#include "sim/sanitizer.h"
#include "sim/stats.h"

namespace gpc::sim {

struct Dim3 {
  int x = 1, y = 1, z = 1;
  long long count() const {
    return static_cast<long long>(x) * y * z;
  }
};

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  int dynamic_shared_bytes = 0;
  /// Checks to run for this launch, OR-ed with GPC_SIM_SANITIZE from the
  /// environment by launch_kernel. All off (the default) costs nothing.
  SanitizeOptions sanitize;
  /// Per-block instruction budget; 0 means GPC_SIM_STEP_BUDGET from the
  /// environment, then the resilience watchdog (GPC_WATCHDOG), then the
  /// built-in ~8G-step runaway-kernel backstop.
  std::uint64_t step_budget = 0;
  /// Split-launch support (resil policy layer): this launch executes the
  /// sub-grid `grid` at block-id offset `grid_offset` of a logical grid of
  /// `logical_grid` blocks. Kernels observe logical coordinates (CtaId is
  /// offset, NCtaId reports logical_grid), so a grid halved by the policy
  /// layer computes exactly what the single full launch would. logical_grid
  /// all-zero (the default) means "not split": the grid is the whole launch.
  Dim3 grid_offset{0, 0, 0};
  Dim3 logical_grid{0, 0, 0};
  /// The NCtaId / grid-size values kernels should observe.
  const Dim3& logical() const {
    return logical_grid.x > 0 ? logical_grid : grid;
  }
  /// Degraded-execution mode (resil policy layer): per-block resource
  /// overflows (local store, registers, code budget) no longer abort at
  /// occupancy validation; the device model instead runs the kernel as if
  /// the runtime spilled/emulated the excess — occupancy clamps to one
  /// block per SM and the timing model charges an emulation penalty (see
  /// sim/timing.cpp). Functional results are unaffected. This is how Table
  /// VI's four Cell/BE ABTs complete as "DEG" when degradation is enabled.
  bool degraded_exec = false;
  /// Architecture-independent workload characterization (gpc::aiwc,
  /// DESIGN.md §16). OR-ed with GPC_AIWC from the environment by
  /// launch_kernel. Off (the default) costs one null test per hook site.
  bool aiwc = false;
};

/// One kernel argument, already encoded into a 64-bit slot per its type.
struct KernelArg {
  ir::Type type = ir::Type::U32;
  std::uint64_t raw = 0;

  static KernelArg ptr(std::uint64_t device_addr);
  static KernelArg s32(std::int32_t v);
  static KernelArg u32(std::uint32_t v);
  static KernelArg f32(float v);
};

/// A texture unit binding (CUDA path only).
struct TexBinding {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  ir::Type elem = ir::Type::F32;
};

/// Globally enables/disables the convergent-warp fast path. Defaults to
/// enabled; the differential tests force it off to prove bit-identical
/// results, and GPC_SIM_FASTPATH=0 in the environment does the same for ad
/// hoc debugging. Takes effect at BlockExecutor construction.
void set_convergent_fast_path(bool enabled);
bool convergent_fast_path_enabled();

/// Whether this build carries the computed-goto cohort engine (GNU/Clang
/// computed goto). When false, divergent warps always use the min-PC
/// scheduler regardless of GPC_SIM_COHORT.
bool cohort_engine_available();

/// One divergent-warp PC cohort: the set of lanes (bitmask over lane ids)
/// parked together at `pc`. The scheduler keeps cohorts sorted by pc with
/// DISTINCT pcs — equal-pc cohorts merge on insert — so running the front
/// cohort until it reaches the next cohort's pc reproduces the min-PC issue
/// order exactly. `rpc`/`depth` are reconvergence-stack metadata stamped at
/// branch splits (immediate post-dominators from DecodedProgram::rpc); they
/// feed the BlockStats cohort_*/div_depth_* diagnostics only and never
/// influence execution.
struct Cohort {
  std::int32_t pc = 0;
  std::int32_t rpc = -1;
  std::uint32_t depth = 0;
  std::uint64_t lanes = 0;
};

/// Block-local storage pooled across block executions. launch_kernel keeps
/// one arena per worker thread so the per-block register files, shared
/// memory, PC arrays, cache-model tags and scratch vectors are allocated
/// once per worker instead of once per block.
struct ExecArena {
  std::vector<std::int32_t> pc;      // per flat thread id; -1 = exited
  std::vector<std::uint64_t> regs;   // num_vregs * width, per warp
  std::vector<std::uint8_t> local;   // local_bytes * width, per warp
  std::vector<std::uint8_t> shared;
  std::vector<int> mask;             // divergent-path lane list
  std::vector<int> exec;             // guard-filtered lane list
  std::vector<Cohort> cohorts;       // cohort-scheduler work list
  std::vector<int> all_lanes;        // identity 0..warp_size-1
  std::vector<std::uint64_t> addr, val, seg;
  CacheModel tex_cache;
  CacheModel l1_cache;

  // Immediate-operand splat buffers for the threaded/SIMD engines: an
  // immediate operand is broadcast into one of these contiguous [width]
  // rows so every handler loop reads operands through stride-1 pointers.
  std::vector<std::uint64_t> splat;  // 3 rows of warp_size

  // O(n) stamped scratch for account_shared / account_const: open-address
  // dedup keyed by epoch stamps (no clearing between instructions) plus
  // per-bank conflict degrees. Replaces the sort+unique per shared-memory
  // instruction that dominated convergent MxM profiles.
  std::vector<std::uint64_t> dedup_key;
  std::vector<std::uint64_t> dedup_stamp;
  std::vector<std::uint64_t> bank_stamp;
  std::vector<int> bank_count;
  std::vector<std::uint64_t> bank_word;  // conflict-free fast-path scratch
  std::uint64_t dedup_epoch = 0;
};

/// Executes one block. `caches` may be null when the device has no texture
/// cache / L1 (stats then count every access as a DRAM transaction).
class BlockExecutor {
 public:
  /// `sanitizer`, when non-null, enables the checking layer for this block
  /// (see sim/sanitizer.h); findings funnel into it from all blocks.
  BlockExecutor(const arch::DeviceSpec& spec, const ir::Function& fn,
                const DecodedProgram& prog, std::span<const KernelArg> args,
                DeviceMemory& mem, std::span<const TexBinding> textures,
                const LaunchConfig& config, Dim3 block_id, ExecArena& arena,
                Sanitizer* sanitizer = nullptr,
                aiwc::Collector* aiwc = nullptr);

  /// Runs the block to completion and returns its statistics.
  /// Throws DeviceFault on illegal kernel behaviour.
  BlockStats run();

 private:
  struct Warp {
    int base = 0;    // first flat thread id in the block
    int width = 0;   // live lanes (last warp may be partial)
    std::int32_t* pc = nullptr;      // [width], into ExecArena::pc
    std::uint64_t* regs = nullptr;   // [num_vregs * width]
    std::uint8_t* local = nullptr;   // [local_bytes * width]
    bool waiting = false;            // parked at a barrier
    // Convergent fast path: when true, all `width` lanes are live at `cpc`
    // and the pc[] array is kept in sync only at mode boundaries.
    bool converged = false;
    int cpc = 0;
    bool finished() const {
      for (int l = 0; l < width; ++l) {
        if (pc[l] >= 0) return false;
      }
      return true;
    }
  };

  // Why the front cohort stopped executing (sim/interp_threaded.cpp).
  enum class CohortStop : std::uint8_t {
    Limit,    // pc reached the next cohort's pc: merge / re-sort
    Split,    // guarded branch partially taken: push two cohorts
    Exited,   // all cohort lanes executed Exit
    Barrier,  // cohort arrived at a Bar: scheduler resolves it
  };

  // One straight-line cohort run through the goto engine. `lanes`/`n` name
  // the cohort's lanes (ascending ids); `pc` is the start pc on entry and
  // the stop pc on return; the run ends as soon as pc >= `limit` (the next
  // cohort's pc, or INT32_MAX for the last cohort). On Split the engine
  // fills `bra_pc` (the branch micro-op), `target`, `taken_mask` (lane-id
  // bits that took the branch) and leaves `pc` at the fallthrough.
  struct CohortRun {
    const int* lanes = nullptr;
    int n = 0;
    std::int32_t pc = 0;
    std::int32_t limit = 0;
    std::int32_t bra_pc = -1;
    std::int32_t target = -1;
    std::uint64_t taken_mask = 0;
  };

  void run_warp(Warp& w);
  // Convergent fast path, switch engine: executes from w.cpc until the warp
  // diverges, parks at a barrier, or finishes. pc[] is synced on return.
  void run_converged(Warp& w);
  // Convergent fast path, computed-goto engine over the widened XOp handler
  // table, executing superinstruction groups fused (sim/interp_threaded.cpp).
  // kSimd selects contiguous-lane loops the compiler vectorizes; otherwise
  // lanes go through the identity lane list like the scalar engines. Both
  // are bit-identical to run_converged.
  template <bool kSimd>
  void run_converged_goto(Warp& w);
  // Divergent path, cohort scheduler: runs the warp until it reconverges
  // (returns true; caller re-enters the fast path), parks at a barrier, or
  // finishes (returns false). Bit-identical to looping step().
  bool run_divergent(Warp& w);
  // One cohort's straight-line run on the goto engine (scalar lane lists —
  // cohort lanes are non-contiguous, so the SIMD shape does not apply).
  CohortStop run_cohort_goto(Warp& w, CohortRun& run);
  // The shared engine body behind run_converged_goto and run_cohort_goto.
  template <bool kSimd, bool kCohort>
  CohortStop engine_goto(Warp& w, CohortRun& run);
  // Executes one divergent-scheduler step; returns false when the warp
  // cannot make further progress right now (waiting or finished).
  bool step(Warp& w);

  // Inline: this is the single hottest call on the divergent path (every
  // branch and guarded op evaluates it per lane).
  bool guard_pass(const Warp& w, const MicroOp& m, int lane) const {
    if (m.guard < 0) return true;
    const bool p =
        (w.regs[static_cast<std::size_t>(m.guard) * w.width + lane] & 1) != 0;
    return m.guard_negated ? !p : p;
  }

  void exec_memory(Warp& w, const MicroOp& m, const int* lanes, int n);
  void exec_compute(Warp& w, const MicroOp& m, const int* lanes, int n);
  std::uint64_t sreg_value(ir::SReg s, const Warp& w, int lane) const;

  void account_global(const std::uint64_t* addrs, int n, int size,
                      bool is_read);
  void account_shared(const std::uint64_t* addrs, int n);
  void account_const(const std::uint64_t* addrs, int n);

  void check_budget();
  /// Charges `extra` additional budget steps at once (fused groups charge
  /// their full component count before executing; components only write
  /// registers, so a trip mid-group discards the block's state exactly like
  /// a trip between the unfused components would).
  void check_budget_extra(std::uint64_t extra);

  /// Shared Div/Rem-by-zero semantics: the quotient/remainder is 0 (GPU
  /// behaviour), and with the sanitizer's memcheck enabled the event is
  /// surfaced as a per-lane "div-by-zero" diagnostic instead of silently
  /// burying it. Every engine (switch, threaded, simd, min-PC) routes
  /// through this one helper.
  void note_div_by_zero(const MicroOp& m);

  /// Micro-op index of `m` within prog_.ops (the ops vector is contiguous),
  /// used as finding/fault provenance.
  std::int32_t mop_pc(const MicroOp& m) const;

  /// Human-readable description of a divergent barrier: which lanes arrived
  /// and where the remaining live lanes are parked.
  std::string divergence_detail(const Warp& w, const int* arrived, int n,
                                std::int32_t bar_pc) const;

  const arch::DeviceSpec& spec_;
  const ir::Function& fn_;
  const DecodedProgram& prog_;
  std::span<const KernelArg> args_;
  DeviceMemory& mem_;
  std::span<const TexBinding> textures_;
  LaunchConfig config_;
  Dim3 block_id_;
  ExecArena& arena_;

  std::vector<Warp> warps_;
  BlockStats stats_;
  std::uint64_t steps_ = 0;
  std::uint64_t budget_ = 0;
  bool fast_path_ = true;
  // Divergent warps use the cohort scheduler (vs the min-PC scan): requires
  // the fast path, a goto engine, GPC_SIM_COHORT not 0, and computed-goto
  // support in the build. Latched at construction like dispatch_.
  bool cohort_path_ = false;
  DispatchMode dispatch_ = DispatchMode::Simd;
  std::unique_ptr<BlockSanitizer> bsan_;  // null when sanitizing is off
  std::unique_ptr<aiwc::BlockAiwc> baiwc_;  // null when aiwc is off
};

}  // namespace gpc::sim
