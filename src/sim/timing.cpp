#include "sim/timing.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace gpc::sim {

Occupancy compute_occupancy(const arch::DeviceSpec& spec,
                            const compiler::CompiledKernel& ck,
                            const LaunchConfig& config) {
  const int threads = static_cast<int>(config.block.count());
  GPC_REQUIRE(threads > 0, "empty block");
  if (threads > spec.max_threads_per_group) {
    throw OutOfResources("work-group size " + std::to_string(threads) +
                         " exceeds device limit " +
                         std::to_string(spec.max_threads_per_group) + " on " +
                         spec.short_name);
  }
  // Per-block resource budgets. With degraded execution requested (resil
  // policy layer) an overflow no longer aborts: the launch is marked
  // degraded and the kernel runs as if the runtime spilled/emulated the
  // excess — functional results are unaffected, the timing model charges
  // kDegradedPenalty, and occupancy clamps to one block per SM below.
  bool degraded = false;
  int shared = ck.shared_bytes() + config.dynamic_shared_bytes;
  if (spec.private_mem_in_local_store) {
    shared += threads * ck.local_bytes_per_thread();
  }
  if (shared > spec.shared_mem_per_sm) {
    if (!config.degraded_exec) {
      throw OutOfResources("kernel " + ck.name() + " needs " +
                           std::to_string(shared) + " B local memory; " +
                           spec.short_name + " provides " +
                           std::to_string(spec.shared_mem_per_sm) + " B");
    }
    degraded = true;
  }
  if (ck.reg_estimate > spec.max_regs_per_thread ||
      ck.reg_estimate * threads > spec.regs_per_sm) {
    if (!config.degraded_exec) {
      if (ck.reg_estimate > spec.max_regs_per_thread) {
        throw OutOfResources("kernel " + ck.name() + " needs " +
                             std::to_string(ck.reg_estimate) +
                             " registers/work-item; " + spec.short_name +
                             " allows " +
                             std::to_string(spec.max_regs_per_thread));
      }
      throw OutOfResources("register file exhausted for " + ck.name() +
                           " on " + spec.short_name);
    }
    degraded = true;
  }
  const int code_bytes = static_cast<int>(ck.fn.body.size()) * 8;
  if (spec.max_code_bytes > 0 && code_bytes > spec.max_code_bytes) {
    if (!config.degraded_exec) {
      throw OutOfResources("kernel " + ck.name() + " code size " +
                           std::to_string(code_bytes) + " B exceeds " +
                           spec.short_name + " code budget of " +
                           std::to_string(spec.max_code_bytes) + " B");
    }
    degraded = true;
  }

  Occupancy occ;
  if (degraded) {
    occ.degraded = true;
    occ.limiter = "degraded";
    occ.warps_per_block = (threads + spec.warp_size - 1) / spec.warp_size;
    occ.blocks_per_sm = 1;
    occ.resident_warps = occ.warps_per_block;
    const int max_warps_deg =
        std::max(1, spec.max_threads_per_sm / std::max(1, spec.warp_size));
    occ.fraction = std::min(
        1.0, static_cast<double>(occ.resident_warps) / max_warps_deg);
    return occ;
  }
  occ.warps_per_block = (threads + spec.warp_size - 1) / spec.warp_size;

  int by_groups = spec.max_groups_per_sm;
  int by_threads = spec.max_threads_per_sm / threads;
  int by_shared = shared > 0 ? spec.shared_mem_per_sm / shared : 1 << 20;
  int by_regs = ck.reg_estimate > 0
                    ? spec.regs_per_sm / (ck.reg_estimate * threads)
                    : 1 << 20;
  occ.blocks_per_sm = std::max(
      1, std::min(std::min(by_groups, by_threads), std::min(by_shared, by_regs)));

  if (occ.blocks_per_sm == by_regs && by_regs <= by_threads) {
    occ.limiter = "registers";
  } else if (occ.blocks_per_sm == by_shared && by_shared <= by_threads) {
    occ.limiter = "shared memory";
  } else if (occ.blocks_per_sm == by_groups) {
    occ.limiter = "group slots";
  } else {
    occ.limiter = "threads";
  }

  occ.resident_warps = occ.blocks_per_sm * occ.warps_per_block;
  const int max_warps =
      std::max(1, spec.max_threads_per_sm / std::max(1, spec.warp_size));
  occ.fraction = std::min(1.0, static_cast<double>(occ.resident_warps) /
                                   max_warps);
  return occ;
}

namespace {

/// Unscaled issue cycles of one stats bucket (before the calibrated issue
/// efficiency is applied); also used by the launcher for per-SM attribution.
double raw_issue_cycles(const BlockStats& s, const arch::DeviceSpec& spec) {
  const double base =
      spec.is_gpu()
          ? static_cast<double>(spec.warp_size) / spec.cores_per_sm
          : 1.0;
  const double mad = static_cast<double>(s.mad_issues);
  const double mul = static_cast<double>(s.mul_issues);
  // GT200 co-issues a mul with a mad in one slot (the R=3 of Eq. 3);
  // everywhere else they serialise.
  const double fp_slots =
      spec.dual_issue_mul_mad ? std::max(mad, mul) : mad + mul;
  double cycles = 0;
  cycles += static_cast<double>(s.alu_issues) * base;
  // Integer/address/logic instructions co-issue on the second pipe
  // (GT200's SFU/MAD dual issue; Fermi's dual warp schedulers).
  cycles += static_cast<double>(s.ialu_issues) * base * 0.5;
  cycles += static_cast<double>(s.agu_issues) * base * 0.25;
  cycles += fp_slots * base;
  cycles += static_cast<double>(s.sfu_issues) * base * spec.sfu_cost_scale;
  cycles += static_cast<double>(s.branch_issues) * base * 1.5;
  cycles += static_cast<double>(s.mem_issues) * base;
  cycles += static_cast<double>(s.shared_cycles) * base;
  cycles += static_cast<double>(s.const_cycles) * base;
  cycles += static_cast<double>(s.barrier_count) * base * 2.0;
  cycles += static_cast<double>(s.atomic_serial_ops) * base;
  return cycles;
}

}  // namespace

double issue_cycles_for_attribution(const BlockStats& s,
                                    const arch::DeviceSpec& spec) {
  return raw_issue_cycles(s, spec);
}

KernelTiming time_kernel(const arch::DeviceSpec& spec,
                         const arch::RuntimeSpec& runtime,
                         const compiler::CompiledKernel& ck,
                         const LaunchConfig& config,
                         const LaunchStats& stats) {
  KernelTiming t;
  t.occupancy = compute_occupancy(spec, ck, config);

  const double clock_hz = spec.core_clock_mhz * 1e6;
  const double eff = spec.flop_efficiency(ck.toolchain);

  // Issue-bound component with round-robin load imbalance. Kernels whose
  // code footprint exceeds the per-SM instruction cache pay refetch stalls —
  // this is what makes blind 9x unrolling *hurt* the CSE-less OpenCL FDTD
  // in Fig. 7 while the compact CUDA version still fits.
  const double code_bytes = static_cast<double>(ck.fn.body.size()) * 8.0;
  double icache_penalty = 1.0;
  if (spec.icache_bytes > 0 && code_bytes > spec.icache_bytes) {
    icache_penalty = std::min(2.5, code_bytes / spec.icache_bytes);
  }
  const double total_cycles =
      raw_issue_cycles(stats.total, spec) * icache_penalty / eff;
  double imbalance = 1.0;
  double bucket_sum = 0, bucket_max = 0;
  for (double b : stats.sm_issue_weight) {
    bucket_sum += b;
    bucket_max = std::max(bucket_max, b);
  }
  const int sms = static_cast<int>(stats.sm_issue_weight.size());
  if (bucket_sum > 0 && sms > 0) {
    imbalance = bucket_max * sms / bucket_sum;
  }
  t.issue_s = total_cycles * imbalance / (std::max(1, sms) * clock_hz);

  // DRAM-bound component. Local-memory traffic is DRAM on cacheless parts
  // and mostly L1-resident on Fermi/CPUs.
  const double local_to_dram = spec.has_l1 ? 0.1 : 1.0;
  const double bytes = static_cast<double>(stats.total.dram_bytes()) +
                       local_to_dram * static_cast<double>(stats.total.local_bytes);
  const double bw =
      spec.theoretical_bandwidth_gbs() * 1e9 * spec.dram_efficiency(ck.toolchain);
  const double dram_raw = bytes / bw;

  // Latency hiding: with few resident warps per SM, DRAM latency is exposed.
  // ~8 resident warps suffice for streaming kernels (unrolled bodies carry
  // their own memory-level parallelism), matching GT200-era guidance.
  const double warps_needed = spec.is_gpu() ? 8.0 : 1.0;
  t.latency_factor =
      std::min(1.0, t.occupancy.resident_warps / warps_needed);
  if (t.latency_factor <= 0) t.latency_factor = 1.0 / warps_needed;
  t.dram_s = dram_raw / t.latency_factor;

  t.launch_s = runtime.launch_overhead_us * 1e-6 +
               runtime.launch_overhead_us_per_1k_groups * 1e-6 *
                   (static_cast<double>(stats.blocks) / 1000.0);

  // Degraded execution (resource overflow run in spill/emulation mode):
  // both compute and memory paths slow down by the emulation penalty.
  if (t.occupancy.degraded) {
    t.issue_s *= kDegradedPenalty;
    t.dram_s *= kDegradedPenalty;
  }

  t.seconds = t.launch_s + std::max(t.issue_s, t.dram_s);
  return t;
}

}  // namespace gpc::sim
