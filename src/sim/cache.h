// Small set-associative LRU cache model, used for the per-SM texture cache
// and the Fermi L1. Tracks hits/misses only — contents are irrelevant since
// functional data always comes from DeviceMemory.
#pragma once

#include <cstdint>
#include <vector>

namespace gpc::sim {

class CacheModel {
 public:
  /// An empty model; reconfigure() before use.
  CacheModel() = default;

  /// size_bytes must be a multiple of line_bytes * ways.
  CacheModel(int size_bytes, int line_bytes, int ways);

  /// Re-shapes the model in place and clears all state, reusing the tag
  /// storage when the geometry is unchanged (the per-block pooling path).
  void reconfigure(int size_bytes, int line_bytes, int ways);

  /// Accesses the line containing addr; returns true on hit and updates
  /// LRU/fill state.
  bool access(std::uint64_t addr);

  void clear();

  int line_bytes() const { return line_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  int line_bytes_ = 0;
  int ways_ = 0;
  int sets_ = 0;
  // tags_[set * ways + way]; 0 = invalid. lru_ ticks per entry.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gpc::sim
