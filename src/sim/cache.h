// Small set-associative LRU cache model, used for the per-SM texture cache
// and the Fermi L1. Tracks hits/misses only — contents are irrelevant since
// functional data always comes from DeviceMemory.
#pragma once

#include <cstdint>
#include <vector>

namespace gpc::sim {

class CacheModel {
 public:
  /// An empty model; reconfigure() before use.
  CacheModel() = default;

  /// size_bytes must be a multiple of line_bytes * ways.
  CacheModel(int size_bytes, int line_bytes, int ways);

  /// Re-shapes the model in place and clears all state, reusing the tag
  /// storage when the geometry is unchanged (the per-block pooling path).
  void reconfigure(int size_bytes, int line_bytes, int ways);

  /// Accesses the line containing addr; returns true on hit and updates
  /// LRU/fill state. Inline (called once per distinct DRAM segment per
  /// memory instruction); power-of-two geometry — every modelled GPU —
  /// resolves line/set with a shift and mask instead of divides.
  bool access(std::uint64_t addr) {
    const std::uint64_t line =
        line_shift_ >= 0 ? addr >> line_shift_ : addr / line_bytes_;
    const int set = static_cast<int>(
        set_mask_ != 0 || sets_ == 1 ? line & set_mask_ : line % sets_);
    const std::uint64_t tag = line + 1;  // +1 so tag 0 means invalid
    ++tick_;
    const int base = set * ways_;
    int victim = base;
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        lru_[base + w] = tick_;
        ++hits_;
        return true;
      }
      if (lru_[base + w] < lru_[victim]) victim = base + w;
    }
    tags_[victim] = tag;
    lru_[victim] = tick_;
    ++misses_;
    return false;
  }

  void clear();

  int line_bytes() const { return line_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  int line_bytes_ = 0;
  int ways_ = 0;
  int sets_ = 0;
  int line_shift_ = -1;     // log2(line_bytes_) when a power of two, else -1
  std::uint64_t set_mask_ = 0;  // sets_-1 when a power of two, else 0
  // tags_[set * ways + way]; 0 = invalid. lru_ ticks per entry.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gpc::sim
