// Analytical timing model: converts execution statistics into kernel time.
//
// The model is roofline-style with explicit launch overhead:
//
//   T = T_launch + max(T_issue, T_dram / latency_hiding) + T_sync
//
//   T_issue : per-SM issue cycles (ALU/SFU/memory/shared/constant slots,
//             with GT200 mul+mad co-issue credit), load-imbalance via the
//             max over the round-robin block->SM attribution, divided by
//             the calibrated issue efficiency (DeviceSpec::flop_eff_*).
//   T_dram  : DRAM bytes actually moved (after coalescing and caches)
//             divided by TP_BW * calibrated streaming efficiency
//             (DeviceSpec::dram_eff_*).
//   latency_hiding : occupancy-dependent; low resident-warp counts expose
//             memory latency (relevant for small grids, e.g. BFS tails).
//   T_launch: runtime-specific enqueue-to-start latency; the CUDA/OpenCL
//             difference here is the paper's §IV-B.4 BFS finding.
#pragma once

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "sim/interp.h"
#include "sim/stats.h"

namespace gpc::sim {

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_block = 0;
  int resident_warps = 0;   // per SM
  double fraction = 0;      // resident / max warps
  const char* limiter = "";  // what capped it
  /// True when the launch only fit via degraded execution
  /// (LaunchConfig::degraded_exec): a per-block resource budget was
  /// exceeded and the device model ran the kernel in spill/emulation mode
  /// instead of aborting. The timing model charges kDegradedPenalty.
  bool degraded = false;
};

/// Slowdown applied to the issue- and memory-bound components of a launch
/// that only fits via degraded execution — the cost of spilling the excess
/// local store / register / code footprint to emulated storage.
inline constexpr double kDegradedPenalty = 4.0;

/// Computes the occupancy for a kernel+config on a device; throws
/// OutOfResources if even a single block does not fit (the Cell/BE "ABT"
/// path of Table VI). With config.degraded_exec set, per-block overflows
/// (local store, registers, code budget) clamp to a degraded occupancy
/// instead of throwing; only the hard work-group size limit still aborts.
Occupancy compute_occupancy(const arch::DeviceSpec& spec,
                            const compiler::CompiledKernel& ck,
                            const LaunchConfig& config);

struct KernelTiming {
  double seconds = 0;       // total, including launch overhead
  double launch_s = 0;
  double issue_s = 0;       // compute/issue bound component
  double dram_s = 0;        // memory bound component (after latency hiding)
  double latency_factor = 1;
  Occupancy occupancy;
};

KernelTiming time_kernel(const arch::DeviceSpec& spec,
                         const arch::RuntimeSpec& runtime,
                         const compiler::CompiledKernel& ck,
                         const LaunchConfig& config, const LaunchStats& stats);

}  // namespace gpc::sim
