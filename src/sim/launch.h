// Kernel launch: resource validation, grid iteration, parallel block
// execution on the host thread pool, statistics merge, timing.
#pragma once

#include <span>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "sim/interp.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "sim/timing.h"

namespace gpc::sim {

struct LaunchResult {
  LaunchStats stats;
  KernelTiming timing;
  /// Findings from the opt-in checking layer; `sanitizer.enabled()` is
  /// false (and the report empty) unless LaunchConfig::sanitize or
  /// GPC_SIM_SANITIZE asked for checks.
  SanitizerReport sanitizer;
  /// Raw workload-characterization features (gpc::aiwc); null unless
  /// LaunchConfig::aiwc or GPC_AIWC armed collection. Split/sliced launches
  /// merge sub-launch features in place (aiwc::Features::merge), so the
  /// merged object is bit-identical to one whole-grid launch.
  std::shared_ptr<aiwc::Features> aiwc;
};

/// Runs one kernel grid to completion (functionally) and prices it with the
/// timing model. Throws OutOfResources before touching memory when the
/// kernel does not fit the device (Table VI "ABT"), and DeviceFault on
/// illegal kernel behaviour.
LaunchResult launch_kernel(const arch::DeviceSpec& spec,
                           const arch::RuntimeSpec& runtime,
                           const compiler::CompiledKernel& ck,
                           const LaunchConfig& config,
                           std::span<const KernelArg> args, DeviceMemory& mem,
                           std::span<const TexBinding> textures = {});

/// Internal: per-SM attribution weight of one block (exposed for tests).
double issue_cycles_for_attribution(const BlockStats& s,
                                    const arch::DeviceSpec& spec);

}  // namespace gpc::sim
