#include "sim/sanitizer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "sim/memory.h"

namespace gpc::sim {

SanitizeOptions operator|(SanitizeOptions a, SanitizeOptions b) {
  return SanitizeOptions{a.race || b.race, a.mem || b.mem, a.sync || b.sync};
}

SanitizeOptions parse_sanitize_spec(const char* spec) {
  SanitizeOptions o;
  if (spec == nullptr) return o;
  const char* p = spec;
  while (*p != '\0') {
    while (*p == ',' || *p == ' ') ++p;
    const char* start = p;
    while (*p != '\0' && *p != ',' && *p != ' ') ++p;
    const std::size_t len = static_cast<std::size_t>(p - start);
    auto is = [&](const char* tok) {
      return len == std::strlen(tok) && std::strncmp(start, tok, len) == 0;
    };
    if (is("race")) o.race = true;
    if (is("mem")) o.mem = true;
    if (is("sync")) o.sync = true;
    if (is("all") || is("1")) o.race = o.mem = o.sync = true;
  }
  return o;
}

SanitizeOptions sanitize_options_from_env() {
  return parse_sanitize_spec(std::getenv("GPC_SIM_SANITIZE"));
}

const char* to_string(SanitizerTool t) {
  switch (t) {
    case SanitizerTool::Racecheck: return "racecheck";
    case SanitizerTool::Memcheck: return "memcheck";
    case SanitizerTool::Synccheck: return "synccheck";
  }
  return "?";
}

std::string SanitizerReport::to_string() const {
  if (clean()) return {};
  std::string out;
  const std::string kernel = findings.empty() ? "" : findings.front().kernel;
  out += "==SANITIZER== kernel " + kernel + ": " +
         std::to_string(findings.size()) + " distinct finding site(s)";
  if (dropped > 0) {
    out += " (+" + std::to_string(dropped) + " dropped past the cap)";
  }
  out += "\n";
  for (const SanitizerFinding& f : findings) {
    out += "==SANITIZER== [" + std::string(sim::to_string(f.tool)) + "] " +
           f.kind + " at micro-op " + std::to_string(f.pc) + ", block (" +
           std::to_string(f.block[0]) + "," + std::to_string(f.block[1]) +
           "," + std::to_string(f.block[2]) + ")";
    if (f.occurrences > 1) {
      out += ", " + std::to_string(f.occurrences) + " occurrences";
    }
    out += ": " + f.message + "\n";
  }
  return out;
}

Sanitizer::Sanitizer(SanitizeOptions opts, std::string kernel_name)
    : opts_(opts), kernel_(std::move(kernel_name)) {}

void Sanitizer::record(SanitizerTool tool, const char* kind, std::int32_t pc,
                       const int block[3], std::string message,
                       std::uint64_t cohort_mask) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (SanitizerFinding& f : findings_) {
    if (f.tool == tool && f.pc == pc && f.kind == kind) {
      ++f.occurrences;
      return;
    }
  }
  if (findings_.size() >= kMaxFindings) {
    ++dropped_;
    return;
  }
  SanitizerFinding f;
  f.tool = tool;
  f.kind = kind;
  f.message = std::move(message);
  f.kernel = kernel_;
  f.pc = pc;
  f.block[0] = block[0];
  f.block[1] = block[1];
  f.block[2] = block[2];
  f.cohort_mask = cohort_mask;
  findings_.push_back(std::move(f));
}

SanitizerReport Sanitizer::report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SanitizerReport r;
  r.checks = opts_;
  r.findings = findings_;
  r.dropped = dropped_;
  return r;
}

BlockSanitizer::BlockSanitizer(Sanitizer& collector, int warp_size,
                               std::size_t shared_bytes, int bx, int by,
                               int bz)
    : collector_(collector),
      warp_size_(warp_size < 1 ? 1 : warp_size),
      block_{bx, by, bz},
      words_((shared_bytes + 3) / 4) {}

void BlockSanitizer::report(SanitizerTool tool, const char* kind,
                            std::int32_t pc, std::string message,
                            std::uint64_t cohort_mask) {
  collector_.record(tool, kind, pc, block_, std::move(message), cohort_mask);
}

void BlockSanitizer::shared_load(const std::uint64_t* addrs, const int* lanes,
                                 int n, int base_lane, int size,
                                 std::int32_t pc) {
  // Pass 1: checks against the pre-instruction shadow.
  for (int i = 0; i < n; ++i) {
    const int tid = base_lane + lanes[i];
    for (std::uint64_t wd = addrs[i] / 4; wd <= (addrs[i] + size - 1) / 4;
         ++wd) {
      const Word& w = words_[wd];
      if (mem_on() && !w.init) {
        report(SanitizerTool::Memcheck, "uninit-shared-read", pc,
               "thread " + std::to_string(tid) + " reads shared word at byte "
               "offset " + std::to_string(wd * 4) +
               " that no thread has written");
      }
      if (race_on() && w.writer >= 0 && w.writer != tid &&
          w.write_epoch == epoch_ && split_warp(w.writer, tid)) {
        report(SanitizerTool::Racecheck, "split-warp-read-after-write", pc,
               "thread " + std::to_string(tid) + " reads shared word at byte "
               "offset " + std::to_string(wd * 4) + " written by thread " +
               std::to_string(w.writer) + " (micro-op " +
               std::to_string(w.write_pc) +
               ") with no barrier in between; both threads sit in the same "
               "assumed 32-wide warp but execute in different hardware warps "
               "of width " + std::to_string(warp_size_) +
               ", so the warp-synchronous value is not the one a 32-wide "
               "lockstep execution would produce");
      }
    }
  }
  // Pass 2: shadow update.
  for (int i = 0; i < n; ++i) {
    const int tid = base_lane + lanes[i];
    for (std::uint64_t wd = addrs[i] / 4; wd <= (addrs[i] + size - 1) / 4;
         ++wd) {
      words_[wd].reader = tid;
      words_[wd].read_epoch = epoch_;
    }
  }
}

void BlockSanitizer::shared_store(const std::uint64_t* addrs,
                                  const std::uint64_t* vals, const int* lanes,
                                  int n, int base_lane, int size,
                                  std::int32_t pc) {
  if (race_on()) {
    // Same-instruction conflicts: two lanes of one lockstep store hitting
    // one word. With gather-then-write semantics one of the two values is
    // silently dropped — the §V RdxS lost update when both lanes had
    // previously read the word (a colliding read-modify-write).
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const std::uint64_t lo = std::min(addrs[i], addrs[j]);
        const std::uint64_t hi = std::max(addrs[i], addrs[j]);
        if (hi - lo >= static_cast<std::uint64_t>(size)) continue;
        const Word& w = words_[hi / 4];
        const bool rmw = w.read_epoch == epoch_ && w.reader >= 0;
        if (!rmw && vals[i] == vals[j]) continue;  // benign broadcast
        const int ti = base_lane + lanes[i], tj = base_lane + lanes[j];
        report(SanitizerTool::Racecheck,
               rmw ? "lost-update" : "write-write-conflict", pc,
               "threads " + std::to_string(ti) + " and " + std::to_string(tj) +
                   " write the shared word at byte offset " +
                   std::to_string(lo) + " in the same lockstep instruction" +
                   (rmw ? " after both read it — one read-modify-write "
                          "update is lost"
                        : " with different values — one store is lost"));
      }
    }
    // Split-warp hazards against earlier instructions in this barrier
    // interval (checked before this instruction updates the shadow).
    for (int i = 0; i < n; ++i) {
      const int tid = base_lane + lanes[i];
      for (std::uint64_t wd = addrs[i] / 4; wd <= (addrs[i] + size - 1) / 4;
           ++wd) {
        const Word& w = words_[wd];
        if (w.write_epoch == epoch_ && w.writer >= 0 && w.writer != tid &&
            split_warp(w.writer, tid)) {
          report(SanitizerTool::Racecheck, "split-warp-write-after-write", pc,
                 "thread " + std::to_string(tid) + " overwrites shared word "
                 "at byte offset " + std::to_string(wd * 4) +
                 " written by thread " + std::to_string(w.writer) +
                 " (micro-op " + std::to_string(w.write_pc) +
                 ") with no barrier in between, and the hardware warp of "
                 "width " + std::to_string(warp_size_) +
                 " split their assumed 32-wide warp");
        } else if (w.read_epoch == epoch_ && w.reader >= 0 &&
                   w.reader != tid && split_warp(w.reader, tid)) {
          report(SanitizerTool::Racecheck, "split-warp-write-after-read", pc,
                 "thread " + std::to_string(tid) + " overwrites shared word "
                 "at byte offset " + std::to_string(wd * 4) +
                 " read by thread " + std::to_string(w.reader) +
                 " with no barrier in between, and the hardware warp of "
                 "width " + std::to_string(warp_size_) +
                 " split their assumed 32-wide warp");
        }
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const int tid = base_lane + lanes[i];
    for (std::uint64_t wd = addrs[i] / 4; wd <= (addrs[i] + size - 1) / 4;
         ++wd) {
      Word& w = words_[wd];
      w.writer = tid;
      w.write_pc = pc;
      w.write_epoch = epoch_;
      w.init = true;
      w.reader = -1;
    }
  }
}

void BlockSanitizer::shared_atomic(const std::uint64_t* addrs,
                                   const int* lanes, int n, int base_lane,
                                   int size, std::int32_t pc) {
  for (int i = 0; i < n; ++i) {
    const int tid = base_lane + lanes[i];
    for (std::uint64_t wd = addrs[i] / 4; wd <= (addrs[i] + size - 1) / 4;
         ++wd) {
      Word& w = words_[wd];
      if (mem_on() && !w.init) {
        report(SanitizerTool::Memcheck, "uninit-shared-read", pc,
               "thread " + std::to_string(tid) +
                   " atomically updates shared word at byte offset " +
                   std::to_string(wd * 4) + " that no thread has written");
      }
      w.writer = tid;
      w.write_pc = pc;
      w.write_epoch = epoch_;
      w.init = true;
      w.reader = -1;
    }
  }
}

void BlockSanitizer::global_batch(const DeviceMemory& mem,
                                  const std::uint64_t* addrs, int n, int size,
                                  bool is_store, std::int32_t pc) {
  if (!mem_on()) return;
  const char* verb = is_store ? "write" : "read";
  for (int i = 0; i < n; ++i) {
    const std::uint64_t a = addrs[i];
    const DeviceMemory::Allocation* al = mem.find_allocation(a);
    if (al == nullptr) {
      // Inside the heap (the hard whole-heap check passed or will fault
      // loudly) but in no allocation: alignment padding, a red zone, or
      // past the bump pointer. Identify the nearest preceding allocation.
      const DeviceMemory::Allocation* prev = mem.preceding_allocation(a);
      std::string msg = std::to_string(size) + "-byte global " + verb +
                        " at address " + std::to_string(a) +
                        " touches unallocated device memory";
      if (prev != nullptr) {
        msg += " " + std::to_string(a - (prev->base + prev->bytes)) +
               " byte(s) past the end of the " + std::to_string(prev->bytes) +
               "-byte allocation at " + std::to_string(prev->base);
      }
      report(SanitizerTool::Memcheck, "global-oob", pc, std::move(msg));
    } else if (a + size > al->base + al->bytes) {
      report(SanitizerTool::Memcheck, "global-oob", pc,
             std::to_string(size) + "-byte global " + verb + " at address " +
                 std::to_string(a) + " spills past the end of the " +
                 std::to_string(al->bytes) + "-byte allocation at " +
                 std::to_string(al->base) +
                 " into the neighbouring allocation or padding");
    }
  }
}

bool BlockSanitizer::divergent_barrier(std::int32_t pc, std::uint64_t arrived,
                                       const std::string& detail) {
  report(SanitizerTool::Synccheck, "divergent-barrier", pc, detail, arrived);
  return sync_on();
}

void BlockSanitizer::div_by_zero(std::int32_t pc) {
  if (!mem_on()) return;
  report(SanitizerTool::Memcheck, "div-by-zero", pc,
         "division by zero at micro-op " + std::to_string(pc) +
         " (quotient/remainder is 0 on the device)");
}

void BlockSanitizer::barrier_release() { ++epoch_; }

}  // namespace gpc::sim
