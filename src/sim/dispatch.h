// Interpreter dispatch-mode knob (GPC_SIM_DISPATCH).
//
// Three engines execute a convergent warp, all bit-identical (locked by
// tests/dispatch_test.cpp against the min-PC scheduler):
//  * switch   — the original nested-switch interpreter (run_converged),
//               kept as the portable reference engine;
//  * threaded — computed-goto dispatch over the widened XOp handler table
//               with superinstruction fusion, scalar per-lane loops;
//  * simd     — the threaded engine with contiguous-lane loops the compiler
//               auto-vectorizes (the default: fastest on every workload we
//               measure, see BENCH_sim_throughput.json).
// Divergent warps always run on the min-PC scheduler regardless of mode.
#pragma once

namespace gpc::sim {

enum class DispatchMode : int { Switch = 0, Threaded = 1, Simd = 2 };

const char* to_string(DispatchMode m);

/// Parses "switch" / "threaded" / "simd". Returns false (leaving `out`
/// untouched) on anything else, including null/empty.
bool parse_dispatch_mode(const char* spec, DispatchMode* out);

/// Process-wide dispatch mode. Initialised from GPC_SIM_DISPATCH (default
/// Simd); settable at runtime for tests and benches. Takes effect at
/// BlockExecutor construction, i.e. per block.
DispatchMode dispatch_mode();
void set_dispatch_mode(DispatchMode m);

}  // namespace gpc::sim
