// Interpreter dispatch-mode knob (GPC_SIM_DISPATCH).
//
// Three engines execute a convergent warp, all bit-identical (locked by
// tests/dispatch_test.cpp against the min-PC scheduler):
//  * switch   — the original nested-switch interpreter (run_converged),
//               kept as the portable reference engine;
//  * threaded — computed-goto dispatch over the widened XOp handler table
//               with superinstruction fusion, scalar per-lane loops;
//  * simd     — the threaded engine with contiguous-lane loops the compiler
//               auto-vectorizes (the default: fastest on every workload we
//               measure, see BENCH_sim_throughput.json).
// Divergent warps run on the reconvergence-stack cohort scheduler
// (DESIGN.md §15) under the goto engines, and on the min-PC scan under
// `switch` (the reference) or when GPC_SIM_COHORT=0 — bit-identical either
// way, locked by the same differential tests.
#pragma once

namespace gpc::sim {

enum class DispatchMode : int { Switch = 0, Threaded = 1, Simd = 2 };

const char* to_string(DispatchMode m);

/// Parses "switch" / "threaded" / "simd". Returns false (leaving `out`
/// untouched) on anything else, including null/empty.
bool parse_dispatch_mode(const char* spec, DispatchMode* out);

/// Process-wide dispatch mode. Initialised from GPC_SIM_DISPATCH (default
/// Simd); settable at runtime for tests and benches. Takes effect at
/// BlockExecutor construction, i.e. per block.
DispatchMode dispatch_mode();
void set_dispatch_mode(DispatchMode m);

/// Process-wide divergent-path knob. When enabled (the default; GPC_SIM_COHORT
/// accepts 0/1), divergent warps under the threaded/simd engines run on the
/// reconvergence-stack cohort scheduler instead of the min-PC scan. Takes
/// effect at BlockExecutor construction, like the dispatch mode.
bool cohort_scheduler_enabled();
void set_cohort_scheduler(bool on);

}  // namespace gpc::sim
