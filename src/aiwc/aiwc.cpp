#include "aiwc/aiwc.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace gpc::aiwc {

namespace {

/// Mirror of sim/decode.h to_string(XKind) — this library cannot include sim
/// headers (gpc_sim links gpc_aiwc). tests/aiwc_test.cpp locks the two
/// tables against each other.
constexpr const char* kKindNames[16] = {
    "bra",       "exit",      "bar",       "ld_param",
    "mem_global", "mem_shared", "mem_local", "mem_const",
    "mem_tex",   "read_sreg", "mov",       "cvt",
    "setp",      "selp",      "float_op",  "int_op",
};

void add_vec(std::vector<std::uint64_t>& a,
             const std::vector<std::uint64_t>& b) {
  if (b.empty()) return;
  if (a.empty()) {
    a = b;
    return;
  }
  GPC_CHECK(a.size() == b.size(),
            "aiwc: merging features of different programs");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void add_map(std::unordered_map<std::uint64_t, std::uint64_t>& a,
             const std::unordered_map<std::uint64_t, std::uint64_t>& b) {
  for (const auto& [k, v] : b) a[k] += v;
}

struct Fnv {
  std::uint64_t h = 14695981039346656037ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  void mix_vec(const std::vector<std::uint64_t>& v) {
    mix(v.size());
    for (std::uint64_t x : v) mix(x);
  }
  void mix_map(const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> kv(m.begin(),
                                                            m.end());
    std::sort(kv.begin(), kv.end());
    mix(kv.size());
    for (const auto& [k, v] : kv) {
      mix(k);
      mix(v);
    }
  }
};

/// Shannon entropy (bits) of a count distribution.
double entropy(const std::vector<std::uint64_t>& counts,
               std::uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

const char* kind_name(std::uint8_t kind) {
  return kind < 16 ? kKindNames[kind] : "?";
}

void Features::merge(const Features& o) {
  if (sites.empty()) sites = o.sites;
  if (static_ops == 0) static_ops = o.static_ops;
  if (static_fused_ops == 0) static_fused_ops = o.static_fused_ops;
  blocks += o.blocks;
  warps += o.warps;
  if (threads_per_block == 0) threads_per_block = o.threads_per_block;
  if (warp_size == 0) warp_size = o.warp_size;

  add_vec(site_issues, o.site_issues);
  add_vec(site_lanes, o.site_lanes);
  add_vec(branch_exec, o.branch_exec);
  add_vec(branch_taken, o.branch_taken);
  add_vec(branch_eval, o.branch_eval);
  add_vec(branch_split, o.branch_split);
  for (int i = 0; i < 65; ++i) occupancy_hist[i] += o.occupancy_hist[i];

  add_map(global_words, o.global_words);
  add_map(shared_words, o.shared_words);
  for (int i = 0; i < kReuseBuckets; ++i) reuse_hist[i] += o.reuse_hist[i];
  reuse_cold += o.reuse_cold;
  for (int i = 0; i < 4; ++i) stride_class[i] += o.stride_class[i];
  global_accesses += o.global_accesses;
  shared_accesses += o.shared_accesses;
  global_instrs += o.global_instrs;
}

std::uint64_t Features::total_issues() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : site_issues) s += v;
  return s;
}

std::uint64_t Features::total_lanes() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : site_lanes) s += v;
  return s;
}

std::uint64_t Features::digest() const {
  Fnv f;
  f.mix(sites.size());
  for (const SiteInfo& s : sites) {
    f.mix(static_cast<std::uint64_t>(s.kind) |
          (static_cast<std::uint64_t>(s.op) << 8) |
          (static_cast<std::uint64_t>(s.type) << 16) |
          (static_cast<std::uint64_t>(s.flops) << 24));
  }
  f.mix(static_ops);
  f.mix(static_fused_ops);
  f.mix(blocks);
  f.mix(warps);
  f.mix(static_cast<std::uint64_t>(threads_per_block));
  f.mix(static_cast<std::uint64_t>(warp_size));
  f.mix_vec(site_issues);
  f.mix_vec(site_lanes);
  f.mix_vec(branch_exec);
  f.mix_vec(branch_taken);
  f.mix_vec(branch_eval);
  f.mix_vec(branch_split);
  for (int i = 0; i < 65; ++i) f.mix(occupancy_hist[i]);
  f.mix_map(global_words);
  f.mix_map(shared_words);
  for (int i = 0; i < kReuseBuckets; ++i) f.mix(reuse_hist[i]);
  f.mix(reuse_cold);
  for (int i = 0; i < 4; ++i) f.mix(stride_class[i]);
  f.mix(global_accesses);
  f.mix(shared_accesses);
  f.mix(global_instrs);
  return f.h;
}

std::vector<Metric> finalize(const Features& f) {
  std::vector<Metric> out;
  const auto put = [&out](const char* name, double v) {
    out.push_back(Metric{name, v});
  };

  const std::uint64_t issues = f.total_issues();
  const std::uint64_t lanes = f.total_lanes();

  // Opcode histogram over the fusion-invariant (kind, op, type) triple,
  // folded from per-pc issue counts via a sorted map.
  std::map<std::uint32_t, std::uint64_t> opcode_hist;
  std::uint64_t flop_issues = 0;
  std::uint64_t barrier_issues = 0;
  for (std::size_t pc = 0; pc < f.site_issues.size() && pc < f.sites.size();
       ++pc) {
    const std::uint64_t c = f.site_issues[pc];
    if (c == 0) continue;
    const SiteInfo& s = f.sites[pc];
    const std::uint32_t key = static_cast<std::uint32_t>(s.kind) << 16 |
                              static_cast<std::uint32_t>(s.op) << 8 |
                              static_cast<std::uint32_t>(s.type);
    opcode_hist[key] += c;
    if (s.flops > 0) flop_issues += c;
    if (s.kind == kKindBar) barrier_issues += c;
  }
  std::vector<std::uint64_t> opcode_counts;
  opcode_counts.reserve(opcode_hist.size());
  for (const auto& [k, v] : opcode_hist) opcode_counts.push_back(v);
  put("opcode_unique", static_cast<double>(opcode_hist.size()));
  put("opcode_entropy", entropy(opcode_counts, issues));
  put("flop_issue_fraction",
      issues ? static_cast<double>(flop_issues) / issues : 0.0);
  put("fused_idiom_density",
      f.static_ops ? static_cast<double>(f.static_fused_ops) / f.static_ops
                   : 0.0);

  // Branch entropy: execution-weighted mean of the per-site binary entropy
  // of the taken/not-taken split (AIWC's "branch entropy"; 0 = perfectly
  // predictable, 1 = coin-flip everywhere).
  double br_h = 0.0;
  std::uint64_t br_weight = 0, br_exec = 0, br_split = 0;
  for (std::size_t pc = 0; pc < f.branch_eval.size(); ++pc) {
    const std::uint64_t ev = f.branch_eval[pc];
    br_exec += pc < f.branch_exec.size() ? f.branch_exec[pc] : 0;
    br_split += pc < f.branch_split.size() ? f.branch_split[pc] : 0;
    if (ev == 0) continue;
    const double p = static_cast<double>(f.branch_taken[pc]) /
                     static_cast<double>(ev);
    double h = 0.0;
    if (p > 0.0 && p < 1.0) {
      h = -(p * std::log2(p) + (1.0 - p) * std::log2(1.0 - p));
    }
    br_h += h * static_cast<double>(ev);
    br_weight += ev;
  }
  put("branch_entropy", br_weight ? br_h / static_cast<double>(br_weight)
                                  : 0.0);
  put("branch_divergence_rate",
      br_exec ? static_cast<double>(br_split) / br_exec : 0.0);

  put("simt_efficiency",
      issues && f.warp_size
          ? static_cast<double>(lanes) /
                (static_cast<double>(issues) * f.warp_size)
          : 0.0);
  const int wpb =
      f.warp_size > 0
          ? (f.threads_per_block + f.warp_size - 1) / f.warp_size
          : 0;
  put("workgroup_utilization",
      wpb ? static_cast<double>(f.threads_per_block) /
                (static_cast<double>(wpb) * f.warp_size)
          : 0.0);
  put("barriers_per_warp",
      f.warps ? static_cast<double>(barrier_issues) / f.warps : 0.0);

  put("global_unique_words", static_cast<double>(f.global_words.size()));
  put("shared_unique_words", static_cast<double>(f.shared_words.size()));

  // Memory-access entropy at kEntropyLevels decimation levels: level L
  // groups word addresses by (word >> L). The level-0 value is the plain
  // access entropy; the decay across levels is AIWC's locality curve.
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> words(
        f.global_words.begin(), f.global_words.end());
    std::sort(words.begin(), words.end());
    std::uint64_t total = 0;
    for (const auto& [w, c] : words) total += c;
    for (int level = 0; level < kEntropyLevels; ++level) {
      std::vector<std::uint64_t> groups;
      std::uint64_t run = 0, key = 0;
      bool first = true;
      for (const auto& [w, c] : words) {
        const std::uint64_t g = w >> level;
        if (first || g != key) {
          if (!first) groups.push_back(run);
          key = g;
          run = 0;
          first = false;
        }
        run += c;
      }
      if (!first) groups.push_back(run);
      const std::string name = "mem_entropy_l" + std::to_string(level);
      out.push_back(Metric{name, entropy(groups, total)});
    }
  }

  put("reuse_cold_fraction",
      f.global_accesses
          ? static_cast<double>(f.reuse_cold) / f.global_accesses
          : 0.0);
  // Weighted median log2 reuse distance of the non-cold accesses.
  {
    std::uint64_t warm = 0;
    for (int i = 0; i < kReuseBuckets; ++i) warm += f.reuse_hist[i];
    double median = 0.0;
    if (warm > 0) {
      std::uint64_t acc = 0;
      for (int i = 0; i < kReuseBuckets; ++i) {
        acc += f.reuse_hist[i];
        if (acc * 2 >= warm) {
          median = static_cast<double>(i);
          break;
        }
      }
    }
    put("reuse_median_log2", median);
  }

  static const char* kStrideNames[4] = {
      "stride_broadcast_fraction", "stride_unit_fraction",
      "stride_strided_fraction", "stride_gather_fraction"};
  for (int i = 0; i < 4; ++i) {
    put(kStrideNames[i], f.global_instrs
                             ? static_cast<double>(f.stride_class[i]) /
                                   f.global_instrs
                             : 0.0);
  }
  return out;
}

bool enabled_from_env() {
  // Deliberately re-read per call: tests and tools toggle GPC_AIWC between
  // launches (same contract as sanitize_options_from_env).
  const char* e = std::getenv("GPC_AIWC");
  return e != nullptr && !(e[0] == '0' && e[1] == '\0');
}

// ---------------------------------------------------------------------------
// Collector

Collector::Collector(std::vector<SiteInfo> sites, std::uint64_t blocks,
                     int threads_per_block, int warp_size,
                     std::uint32_t static_ops,
                     std::uint32_t static_fused_ops) {
  agg_.sites = std::move(sites);
  agg_.blocks = blocks;
  agg_.threads_per_block = threads_per_block;
  agg_.warp_size = warp_size;
  agg_.static_ops = static_ops;
  agg_.static_fused_ops = static_fused_ops;
  const std::uint64_t wpb =
      warp_size > 0
          ? static_cast<std::uint64_t>((threads_per_block + warp_size - 1) /
                                       warp_size)
          : 0;
  agg_.warps = blocks * wpb;
}

void Collector::absorb(const Features& block_features) {
  std::lock_guard<std::mutex> lock(mu_);
  agg_.merge(block_features);
}

std::shared_ptr<Features> Collector::take() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<Features>(std::move(agg_));
}

// ---------------------------------------------------------------------------
// BlockAiwc

BlockAiwc::BlockAiwc(Collector& collector) : collector_(collector) {
  const std::size_t n = collector.num_sites();
  f_.site_issues.assign(n, 0);
  f_.site_lanes.assign(n, 0);
  f_.branch_exec.assign(n, 0);
  f_.branch_taken.assign(n, 0);
  f_.branch_eval.assign(n, 0);
  f_.branch_split.assign(n, 0);
}

void BlockAiwc::fenwick_add(std::uint32_t pos, int delta) {
  const std::uint32_t d = static_cast<std::uint32_t>(delta);
  for (; pos < fenwick_.size(); pos += pos & (~pos + 1)) {
    fenwick_[pos] += d;
  }
}

std::uint32_t BlockAiwc::fenwick_prefix(std::uint32_t pos) const {
  std::uint32_t s = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) s += fenwick_[pos];
  return s;
}

std::uint64_t BlockAiwc::reuse_distance(std::uint64_t line) {
  ++time_;
  if (static_cast<std::size_t>(time_) >= fenwick_.size()) {
    // Grow and rebuild: one set bit per distinct line at its last-access
    // time. O(lines * log) on each doubling — amortized constant per access.
    std::size_t cap = fenwick_.empty() ? 1024 : fenwick_.size();
    while (cap <= time_) cap *= 2;
    fenwick_.assign(cap, 0);
    for (const auto& [ln, t] : last_access_) {
      for (std::uint32_t p = t; p < cap; p += p & (~p + 1)) fenwick_[p]++;
    }
  }
  std::uint64_t d = 0;  // 0 = cold (first touch)
  const auto it = last_access_.find(line);
  if (it != last_access_.end()) {
    // Stack position = lines touched more recently than this one, plus one.
    d = last_access_.size() - fenwick_prefix(it->second) + 1;
    fenwick_add(it->second, -1);
    it->second = time_;
  } else {
    last_access_.emplace(line, time_);
  }
  fenwick_add(time_, +1);
  return d;
}

void BlockAiwc::global_access(const std::uint64_t* addrs, int n, int size) {
  if (n <= 0) return;
  f_.global_instrs++;
  f_.global_accesses += static_cast<std::uint64_t>(n);

  int cls = kUnitStride;  // single-lane instructions count as unit stride
  if (n > 1) {
    bool same = true, unit = true, constant = true;
    const std::int64_t d0 = static_cast<std::int64_t>(addrs[1] - addrs[0]);
    for (int i = 1; i < n; ++i) {
      const std::int64_t d =
          static_cast<std::int64_t>(addrs[i] - addrs[i - 1]);
      same &= d == 0;
      unit &= d == size;
      constant &= d == d0;
    }
    cls = same ? kBroadcast : unit ? kUnitStride
                 : constant ? kStrided : kGather;
  }
  f_.stride_class[cls]++;

  for (int i = 0; i < n; ++i) {
    f_.global_words[addrs[i] >> 2]++;
    const std::uint64_t d = reuse_distance(addrs[i] / kReuseLineBytes);
    if (d == 0) {
      f_.reuse_cold++;
    } else {
      int b = std::bit_width(d) - 1;
      if (b >= kReuseBuckets) b = kReuseBuckets - 1;
      f_.reuse_hist[b]++;
    }
  }
}

void BlockAiwc::shared_access(const std::uint64_t* addrs, int n) {
  if (n <= 0) return;
  f_.shared_accesses += static_cast<std::uint64_t>(n);
  for (int i = 0; i < n; ++i) f_.shared_words[addrs[i] >> 2]++;
}

void BlockAiwc::flush() { collector_.absorb(f_); }

}  // namespace gpc::aiwc
