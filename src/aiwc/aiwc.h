// gpc::aiwc — architecture-independent workload characterization
// (DESIGN.md §16).
//
// Per-launch feature extraction in the style of AIWC (Chilukuri et al.,
// arXiv:2003.06064): opcode-mix entropy, branch entropy, memory-access
// entropy at ten decimation levels, LRU reuse-distance histograms, stride
// classification, and SIMT-parallelism metrics, all computed from raw
// integral event streams the interpreter feeds through four hooks
// (issue / branch / global_access / shared_access).
//
// Determinism contract: every datum collected here is an integral count
// keyed by a static program location or an address, merged across blocks,
// sub-launches (split/preempted grids) and tenants by order-independent
// sums. Because every dispatch engine (switch / threaded / simd, min-PC and
// cohort schedulers) issues the same warp-instruction sequence with the same
// lane sets — the bit-identity contract locked by tests/dispatch_test.cpp —
// the merged Features of one logical launch are bit-identical no matter how
// the launch was executed. Floating-point derived features are computed only
// at finalize() time from the raw integers, iterating sorted keys, so they
// are a pure function of the raw data. digest() fingerprints the raw data.
//
// Layering: this library depends only on gpc_common and gpc_ir (names for
// ops/types). It never sees simulator types — the sim layer passes plain
// integers and address arrays, which is what keeps gpc_sim -> gpc_aiwc a
// one-way dependency.
//
// Cost: disarmed (GPC_AIWC unset and LaunchConfig::aiwc false) the only
// residue in the interpreter is a null-pointer test per hook site, the same
// discipline as the sanitizer (`if (baiwc_) [[unlikely]]`). Armed, each
// block owns a private BlockAiwc merged into the launch Collector once at
// block end — no contention on the per-instruction path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gpc::aiwc {

/// Number of log2 buckets in the reuse-distance histogram: bucket i counts
/// accesses whose LRU stack distance d (in 64-byte lines, d >= 1) satisfies
/// floor(log2(d)) == i. 40 buckets cover every distance a bounded simulation
/// can produce.
constexpr int kReuseBuckets = 40;

/// Memory-access entropy is reported at this many decimation levels: level L
/// drops the L low bits of the word address before computing the Shannon
/// entropy of the access distribution (the AIWC "entropy scaling" curve —
/// its slope distinguishes strided from scattered access).
constexpr int kEntropyLevels = 10;

/// Bytes per line for the reuse-distance stack (one GPU cache line).
constexpr int kReuseLineBytes = 64;

/// Stride classes of one warp-level global memory instruction, from the
/// lane-order address deltas: every lane the same address (broadcast),
/// consecutive element-sized deltas (unit), a constant non-element delta
/// (strided), anything else (gather). Single-lane instructions count as
/// unit. Indexes stride_class[].
enum StrideClass : int {
  kBroadcast = 0,
  kUnitStride = 1,
  kStrided = 2,
  kGather = 3,
};

/// Static, fusion-invariant facts about one micro-op, copied from the
/// decoded program by the launch layer. The (kind, op, type) triple is the
/// opcode-histogram key: the decode fusion pass never alters these fields
/// (only the widened xop/fused_len annotations differ on group heads), so
/// the opcode histogram is identical whether or not superinstructions ran.
struct SiteInfo {
  std::uint8_t kind = 0;   // sim::XKind value
  std::uint8_t op = 0;     // ir::Opcode value
  std::uint8_t type = 0;   // ir::Type value
  std::uint8_t flops = 0;  // per-lane flop count
};

/// XKind index of barrier micro-ops (sim::XKind::Bar). Mirrored here (with
/// the name table below) so this library never includes sim headers; locked
/// against sim::to_string(XKind) by tests/aiwc_test.cpp.
constexpr std::uint8_t kKindBar = 2;

/// Lower-snake-case name of a sim::XKind value ("bra", "mem_global", ...),
/// mirroring sim/decode.h's to_string. Returns "?" out of range.
const char* kind_name(std::uint8_t kind);

/// Raw per-launch characterization data. Everything here is integral and
/// merges by order-independent sums — see the determinism contract above.
struct Features {
  // ---- Static program facts (identical in every contribution; merge
  // copies them from whichever side has them) ----
  std::vector<SiteInfo> sites;        // one per micro-op pc
  std::uint32_t static_ops = 0;       // program length (micro-ops)
  std::uint32_t static_fused_ops = 0; // micro-ops inside fused idiom groups

  // ---- Launch geometry (blocks/warps sum across sub-launches) ----
  std::uint64_t blocks = 0;
  std::uint64_t warps = 0;
  int threads_per_block = 0;
  int warp_size = 0;

  // ---- Compute / control: per-pc scheduler-issue counts ----
  std::vector<std::uint64_t> site_issues;  // issues of the op at pc
  std::vector<std::uint64_t> site_lanes;   // scheduled lanes summed over issues
  std::vector<std::uint64_t> branch_exec;  // branch executions at pc
  std::vector<std::uint64_t> branch_taken; // lanes that took the branch
  std::vector<std::uint64_t> branch_eval;  // lanes that evaluated the branch
  std::vector<std::uint64_t> branch_split; // executions with 0 < taken < eval

  /// Issues by scheduled-lane count (index = live lanes at issue, <= 64).
  std::uint64_t occupancy_hist[65] = {};

  // ---- Memory ----
  /// Access counts per 4-byte word address (addr >> 2), global and shared
  /// address spaces separately. Texture fetches count as global.
  std::unordered_map<std::uint64_t, std::uint64_t> global_words;
  std::unordered_map<std::uint64_t, std::uint64_t> shared_words;
  /// LRU stack-distance histogram over 64-byte lines (log2 buckets; see
  /// kReuseBuckets) plus first-touch ("cold") accesses. Per-block LRU state:
  /// the stack resets at block boundaries, which is what makes the histogram
  /// independent of block execution order.
  std::uint64_t reuse_hist[kReuseBuckets] = {};
  std::uint64_t reuse_cold = 0;
  std::uint64_t stride_class[4] = {};  // per warp-level global instruction
  std::uint64_t global_accesses = 0;   // per-lane global accesses
  std::uint64_t shared_accesses = 0;   // per-lane shared accesses
  std::uint64_t global_instrs = 0;     // warp-level global instructions

  /// Order-independent sum-merge (vectors must be same-sized or empty;
  /// static/geometry scalars copy from whichever side is populated).
  void merge(const Features& o);

  std::uint64_t total_issues() const;
  std::uint64_t total_lanes() const;

  /// FNV-1a fingerprint of every raw field above, iterating map keys in
  /// sorted order. Bit-identical digests <=> bit-identical raw features.
  std::uint64_t digest() const;
};

/// One derived (floating-point) feature, computed by finalize().
struct Metric {
  std::string name;
  double value = 0;
};

/// Derives the architecture-independent feature vector from raw Features.
/// Deterministic: a pure function of the raw integers, iterating sorted
/// keys. Metric order is fixed (documented in DESIGN.md §16):
///   opcode_unique, opcode_entropy, flop_issue_fraction, fused_idiom_density,
///   branch_entropy, branch_divergence_rate, simt_efficiency,
///   workgroup_utilization, barriers_per_warp,
///   global_unique_words, shared_unique_words,
///   mem_entropy_l0 .. mem_entropy_l9,
///   reuse_cold_fraction, reuse_median_log2,
///   stride_broadcast_fraction, stride_unit_fraction, stride_strided_fraction,
///   stride_gather_fraction
std::vector<Metric> finalize(const Features& f);

/// True when GPC_AIWC is set to anything but "0" in the environment.
/// Deliberately re-read per launch (mirrors sanitize_options_from_env) so
/// tests and tools can toggle collection between launches.
bool enabled_from_env();

/// Launch-scoped sink: blocks merge their BlockAiwc data here. The launch
/// layer constructs it with the static site table and grid geometry, hands
/// it to every BlockExecutor, and take()s the merged result once the grid
/// completes.
class Collector {
 public:
  Collector(std::vector<SiteInfo> sites, std::uint64_t blocks,
            int threads_per_block, int warp_size, std::uint32_t static_ops,
            std::uint32_t static_fused_ops);

  std::size_t num_sites() const { return agg_.sites.size(); }
  int warp_size() const { return agg_.warp_size; }

  void absorb(const Features& block_features);

  /// Returns the merged launch features. Call once, after the grid is done.
  std::shared_ptr<Features> take();

 private:
  std::mutex mu_;
  Features agg_;
};

/// Per-block event collector, owned by one BlockExecutor (single-threaded).
/// The interpreter hooks call into it for every scheduler-issued warp
/// instruction and every global/shared warp memory access; flush() merges
/// the block's data into the launch Collector (call once, at successful
/// block completion — a faulted block's partial data is simply dropped,
/// matching the discard of its BlockStats).
class BlockAiwc {
 public:
  explicit BlockAiwc(Collector& collector);

  /// One scheduler-issued warp instruction at micro-op `pc` with `lanes`
  /// scheduled (pre-guard-filter) lanes.
  void issue(std::int32_t pc, int lanes) {
    f_.site_issues[static_cast<std::size_t>(pc)]++;
    f_.site_lanes[static_cast<std::size_t>(pc)] +=
        static_cast<std::uint64_t>(lanes);
    f_.occupancy_hist[lanes]++;
  }

  /// One executed branch at `pc`: `taken` of `evaluated` lanes took it.
  void branch(std::int32_t pc, int taken, int evaluated) {
    const auto i = static_cast<std::size_t>(pc);
    f_.branch_exec[i]++;
    f_.branch_taken[i] += static_cast<std::uint64_t>(taken);
    f_.branch_eval[i] += static_cast<std::uint64_t>(evaluated);
    if (taken > 0 && taken < evaluated) f_.branch_split[i]++;
  }

  /// One warp-level global (or texture) memory instruction: `n` lane
  /// addresses in lane order, each accessing `size` bytes.
  void global_access(const std::uint64_t* addrs, int n, int size);

  /// One warp-level shared memory instruction: `n` lane byte addresses.
  void shared_access(const std::uint64_t* addrs, int n);

  void flush();

 private:
  std::uint64_t reuse_distance(std::uint64_t line);

  Collector& collector_;
  Features f_;

  // Exact LRU stack distance in O(log n) per access: a Fenwick tree over
  // access times holds one set bit per distinct line at its LAST access
  // time; the distance of a re-access is the number of lines with a later
  // last-access time, plus one.
  std::unordered_map<std::uint64_t, std::uint32_t> last_access_;
  std::vector<std::uint32_t> fenwick_;  // 1-based BIT over time stamps
  std::uint32_t time_ = 0;

  void fenwick_add(std::uint32_t pos, int delta);
  std::uint32_t fenwick_prefix(std::uint32_t pos) const;
};

}  // namespace gpc::aiwc
