#include "ir/function.h"

#include <cstring>
#include <sstream>

#include "common/error.h"

namespace gpc::ir {

int Function::param_index(const std::string& pname) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].name == pname) return static_cast<int>(i);
  }
  throw InvalidArgument("no kernel parameter named '" + pname + "' in " + name);
}

std::string Histogram::mnemonic(const Instr& in) {
  switch (in.op) {
    case Opcode::Ld:
      return std::string("ld.") + to_string(in.space);
    case Opcode::St:
      return std::string("st.") + to_string(in.space);
    case Opcode::ReadSReg:
      return "mov";  // PTX reads special registers with mov
    default:
      return to_string(in.op);
  }
}

Histogram Histogram::of(const Function& fn) {
  Histogram h;
  for (const Instr& in : fn.body) {
    if (in.op == Opcode::Exit) continue;
    h.counts_[classify(in)][mnemonic(in)]++;
  }
  return h;
}

int Histogram::count(const std::string& m) const {
  for (const auto& [cls, map] : counts_) {
    auto it = map.find(m);
    if (it != map.end()) return it->second;
  }
  return 0;
}

int Histogram::class_total(InstrClass c) const {
  auto it = counts_.find(c);
  if (it == counts_.end()) return 0;
  int sum = 0;
  for (const auto& [m, n] : it->second) sum += n;
  return sum;
}

int Histogram::total() const {
  int sum = 0;
  for (const auto& [cls, map] : counts_) {
    for (const auto& [m, n] : map) sum += n;
  }
  return sum;
}

const std::map<std::string, int>& Histogram::mnemonics(InstrClass c) const {
  auto it = counts_.find(c);
  return it == counts_.end() ? empty_ : it->second;
}

namespace {

std::string operand_text(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::None: return "";
    case Operand::Kind::Reg: return "%r" + std::to_string(o.reg);
    case Operand::Kind::ImmInt: return std::to_string(o.ival);
    case Operand::Kind::ImmFloat: {
      std::ostringstream os;
      os << o.fval << "f";
      return os.str();
    }
  }
  return "?";
}

}  // namespace

std::string to_text(const Function& fn) {
  std::ostringstream os;
  os << ".entry " << fn.name << "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) os << ", ";
    os << (fn.params[i].is_pointer ? ".ptr " : ".val ")
       << to_string(fn.params[i].type) << " " << fn.params[i].name;
  }
  os << ") .shared=" << fn.static_shared_bytes
     << " .local=" << fn.local_bytes << " .const=" << fn.const_data.size()
     << " .regs=" << fn.num_vregs << "\n";
  for (std::size_t i = 0; i < fn.body.size(); ++i) {
    const Instr& in = fn.body[i];
    os << "  [" << i << "] ";
    if (in.guard >= 0) {
      os << "@" << (in.guard_negated ? "!" : "") << "%p" << in.guard << " ";
    }
    os << Histogram::mnemonic(in);
    if (in.op != Opcode::Bra && in.op != Opcode::Bar && in.op != Opcode::Exit) {
      os << "." << to_string(in.type);
    }
    if (in.op == Opcode::SetP) os << "." << to_string(in.cmp);
    if (in.dst >= 0) os << " %r" << in.dst;
    for (const Operand* o : {&in.a, &in.b, &in.c}) {
      if (!o->is_none()) os << ", " << operand_text(*o);
    }
    if (in.op == Opcode::ReadSReg) os << ", " << to_string(in.sreg);
    if (in.op == Opcode::Bra) os << " -> [" << in.target << "]";
    if (in.op == Opcode::Tex) os << " (unit " << in.tex_unit << ")";
    os << "\n";
  }
  return os.str();
}

FunctionBuilder::FunctionBuilder(std::string name) { fn_.name = std::move(name); }

int FunctionBuilder::add_param(Param p) {
  fn_.params.push_back(std::move(p));
  return static_cast<int>(fn_.params.size()) - 1;
}

int FunctionBuilder::emit(Instr in) {
  GPC_CHECK(!finished_, "emit after finish");
  fn_.body.push_back(in);
  return static_cast<int>(fn_.body.size()) - 1;
}

int FunctionBuilder::new_label() {
  label_pos_.push_back(-1);
  return static_cast<int>(label_pos_.size()) - 1;
}

void FunctionBuilder::bind_label(int label) {
  GPC_CHECK(label >= 0 && label < static_cast<int>(label_pos_.size()));
  GPC_CHECK(label_pos_[label] == -1, "label bound twice");
  label_pos_[label] = static_cast<int>(fn_.body.size());
}

void FunctionBuilder::emit_branch(int label, int guard, bool guard_negated) {
  Instr in;
  in.op = Opcode::Bra;
  in.guard = guard;
  in.guard_negated = guard_negated;
  in.target = -1;
  const int idx = emit(in);
  fixups_.emplace_back(idx, label);
}

namespace {
int align_up(int v, int align) { return (v + align - 1) / align * align; }
}  // namespace

int FunctionBuilder::add_const_data(const void* data, int bytes, int align) {
  const int offset = align_up(static_cast<int>(fn_.const_data.size()), align);
  fn_.const_data.resize(static_cast<std::size_t>(offset) + bytes);
  if (data != nullptr) {
    std::memcpy(fn_.const_data.data() + offset, data, bytes);
  }
  return offset;
}

int FunctionBuilder::add_shared(int bytes, int align) {
  const int offset = align_up(fn_.static_shared_bytes, align);
  fn_.static_shared_bytes = offset + bytes;
  return offset;
}

int FunctionBuilder::add_local(int bytes, int align) {
  const int offset = align_up(fn_.local_bytes, align);
  fn_.local_bytes = offset + bytes;
  return offset;
}

Function FunctionBuilder::finish() {
  GPC_CHECK(!finished_, "finish called twice");
  finished_ = true;
  // Ensure the function terminates.
  if (fn_.body.empty() || fn_.body.back().op != Opcode::Exit) {
    Instr ex;
    ex.op = Opcode::Exit;
    fn_.body.push_back(ex);
  }
  for (const auto& [idx, label] : fixups_) {
    GPC_CHECK(label_pos_[label] >= 0, "branch to unbound label in " + fn_.name);
    fn_.body[idx].target = label_pos_[label];
    GPC_CHECK(fn_.body[idx].target <= static_cast<int>(fn_.body.size()));
  }
  return std::move(fn_);
}

}  // namespace gpc::ir
