#include "ir/instr.h"

namespace gpc::ir {

const char* to_string(Type t) {
  switch (t) {
    case Type::Pred: return "pred";
    case Type::S32: return "s32";
    case Type::U32: return "u32";
    case Type::F32: return "f32";
    case Type::U64: return "u64";
    case Type::F64: return "f64";
  }
  return "?";
}

const char* to_string(Space s) {
  switch (s) {
    case Space::Reg: return "reg";
    case Space::Global: return "global";
    case Space::Shared: return "shared";
    case Space::Const: return "const";
    case Space::Local: return "local";
    case Space::Param: return "param";
    case Space::Texture: return "tex";
  }
  return "?";
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::MulHi: return "mul.hi";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::Mad: return "mad";
    case Opcode::Fma: return "fma";
    case Opcode::Neg: return "neg";
    case Opcode::Abs: return "abs";
    case Opcode::Min: return "min";
    case Opcode::Max: return "max";
    case Opcode::Sqrt: return "sqrt";
    case Opcode::Rsqrt: return "rsqrt";
    case Opcode::Rcp: return "rcp";
    case Opcode::Sin: return "sin";
    case Opcode::Cos: return "cos";
    case Opcode::Ex2: return "ex2";
    case Opcode::Lg2: return "lg2";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Not: return "not";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Mov: return "mov";
    case Opcode::Cvt: return "cvt";
    case Opcode::Ld: return "ld";
    case Opcode::St: return "st";
    case Opcode::Tex: return "tex";
    case Opcode::AtomAdd: return "atom.add";
    case Opcode::AtomMin: return "atom.min";
    case Opcode::AtomMax: return "atom.max";
    case Opcode::AtomExch: return "atom.exch";
    case Opcode::AtomCas: return "atom.cas";
    case Opcode::SetP: return "setp";
    case Opcode::SelP: return "selp";
    case Opcode::Bra: return "bra";
    case Opcode::Bar: return "bar";
    case Opcode::Exit: return "exit";
    case Opcode::ReadSReg: return "mov.sreg";
  }
  return "?";
}

const char* to_string(SReg s) {
  switch (s) {
    case SReg::TidX: return "%tid.x";
    case SReg::TidY: return "%tid.y";
    case SReg::TidZ: return "%tid.z";
    case SReg::NTidX: return "%ntid.x";
    case SReg::NTidY: return "%ntid.y";
    case SReg::NTidZ: return "%ntid.z";
    case SReg::CtaIdX: return "%ctaid.x";
    case SReg::CtaIdY: return "%ctaid.y";
    case SReg::CtaIdZ: return "%ctaid.z";
    case SReg::NCtaIdX: return "%nctaid.x";
    case SReg::NCtaIdY: return "%nctaid.y";
    case SReg::NCtaIdZ: return "%nctaid.z";
    case SReg::LaneId: return "%laneid";
    case SReg::WarpSize: return "WARP_SZ";
    case SReg::GridDimFlatX: return "%griddim.flat";
  }
  return "?";
}

const char* to_string(CmpOp c) {
  switch (c) {
    case CmpOp::Eq: return "eq";
    case CmpOp::Ne: return "ne";
    case CmpOp::Lt: return "lt";
    case CmpOp::Le: return "le";
    case CmpOp::Gt: return "gt";
    case CmpOp::Ge: return "ge";
  }
  return "?";
}

const char* to_string(InstrClass c) {
  switch (c) {
    case InstrClass::Arithmetic: return "Arithmetic";
    case InstrClass::LogicShift: return "Logic/Shift";
    case InstrClass::DataMovement: return "Data Movement";
    case InstrClass::FlowControl: return "Flow Control";
    case InstrClass::Synchronization: return "Synchronization";
    case InstrClass::Other: return "Other";
  }
  return "?";
}

InstrClass classify(const Instr& in) {
  switch (in.op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::MulHi:
    case Opcode::Div: case Opcode::Rem: case Opcode::Mad: case Opcode::Fma:
    case Opcode::Neg: case Opcode::Abs: case Opcode::Min: case Opcode::Max:
    case Opcode::Sqrt: case Opcode::Rsqrt: case Opcode::Rcp: case Opcode::Sin:
    case Opcode::Cos: case Opcode::Ex2: case Opcode::Lg2:
      return InstrClass::Arithmetic;
    case Opcode::And: case Opcode::Or: case Opcode::Xor: case Opcode::Not:
    case Opcode::Shl: case Opcode::Shr:
      return InstrClass::LogicShift;
    case Opcode::Mov: case Opcode::Cvt: case Opcode::Ld: case Opcode::St:
    case Opcode::Tex: case Opcode::ReadSReg:
      return InstrClass::DataMovement;
    case Opcode::AtomAdd: case Opcode::AtomMin: case Opcode::AtomMax:
    case Opcode::AtomExch: case Opcode::AtomCas:
      return InstrClass::DataMovement;
    case Opcode::SetP: case Opcode::SelP: case Opcode::Bra:
      return InstrClass::FlowControl;
    case Opcode::Bar:
      return InstrClass::Synchronization;
    case Opcode::Exit:
      return InstrClass::Other;
  }
  return InstrClass::Other;
}

int flop_count(const Instr& in) {
  if (!is_float(in.type)) return 0;
  switch (in.op) {
    case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Neg:
    case Opcode::Abs: case Opcode::Min: case Opcode::Max: case Opcode::Div:
    case Opcode::Rcp: case Opcode::Sqrt: case Opcode::Rsqrt: case Opcode::Sin:
    case Opcode::Cos: case Opcode::Ex2: case Opcode::Lg2:
      return 1;
    case Opcode::Mad: case Opcode::Fma:
      return 2;
    default:
      return 0;
  }
}

}  // namespace gpc::ir
