// Function = one compiled kernel in the PTX-like ISA, plus the metadata the
// simulator needs (parameter layout, constant segment, shared/local sizes).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/instr.h"
#include "ir/types.h"

namespace gpc::ir {

/// A kernel parameter. Pointers are 64-bit device addresses passed by value;
/// `points_to` records the address space for documentation/disassembly (all
/// pointer params in this study point to Global).
struct Param {
  std::string name;
  Type type = Type::U32;
  bool is_pointer = false;
  Space points_to = Space::Global;
};

struct Function {
  std::string name;
  std::vector<Param> params;
  std::vector<Instr> body;
  int num_vregs = 0;
  /// Statically declared shared (OpenCL: local) memory, bytes.
  int static_shared_bytes = 0;
  /// Per-thread .local memory (register spills), bytes.
  int local_bytes = 0;
  /// Device constant segment: user __constant__ arrays first, then the
  /// front-end's literal pool (OpenCL places float literals here).
  std::vector<std::uint8_t> const_data;

  int param_index(const std::string& pname) const;
};

/// Static instruction histogram in the shape of the paper's Table V:
/// mnemonics (with state-space suffix for ld/st) grouped by class.
class Histogram {
 public:
  static Histogram of(const Function& fn);

  /// Count for one mnemonic, e.g. "add", "ld.global". 0 when absent.
  int count(const std::string& mnemonic) const;
  int class_total(InstrClass c) const;
  int total() const;

  const std::map<std::string, int>& mnemonics(InstrClass c) const;

  /// The mnemonic Table V would use for an instruction.
  static std::string mnemonic(const Instr& in);

 private:
  std::map<InstrClass, std::map<std::string, int>> counts_;
  mutable std::map<std::string, int> empty_;
};

/// Renders the function as pseudo-PTX text (debugging, golden tests).
std::string to_text(const Function& fn);

/// Incremental builder used by the compiler back end: label management and
/// branch patching over a flat instruction vector.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name);

  int add_param(Param p);
  int new_reg() { return fn_.num_vregs++; }

  /// Appends an instruction, returns its index.
  int emit(Instr in);

  /// Creates an unbound label; bind_label attaches it to the next emitted
  /// instruction index. Branches to unbound labels are patched at finish().
  int new_label();
  void bind_label(int label);
  void emit_branch(int label, int guard = -1, bool guard_negated = false);

  /// Reserves `bytes` in the constant segment (aligned), returns the offset.
  int add_const_data(const void* data, int bytes, int align);

  /// Reserves shared memory, returns byte offset.
  int add_shared(int bytes, int align);

  /// Allocates per-thread local memory (spill slots), returns byte offset.
  int add_local(int bytes, int align);

  Function& fn() { return fn_; }

  /// Validates (all labels bound, targets in range) and returns the function.
  Function finish();

 private:
  Function fn_;
  std::vector<int> label_pos_;               // -1 while unbound
  std::vector<std::pair<int, int>> fixups_;  // (instr index, label)
  bool finished_ = false;
};

}  // namespace gpc::ir
