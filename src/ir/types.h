// Scalar types and address spaces of the PTX-like virtual ISA.
#pragma once

#include <cstdint>

namespace gpc::ir {

/// Scalar value types. Every virtual register holds one 64-bit slot; Type
/// tells instructions how to interpret it (f32 operations round to float
/// precision exactly like single-precision hardware would).
enum class Type : std::uint8_t { Pred, S32, U32, F32, U64, F64 };

constexpr int size_of(Type t) {
  switch (t) {
    case Type::Pred: return 1;
    case Type::S32:
    case Type::U32:
    case Type::F32: return 4;
    case Type::U64:
    case Type::F64: return 8;
  }
  return 0;
}

constexpr bool is_float(Type t) { return t == Type::F32 || t == Type::F64; }
constexpr bool is_signed_int(Type t) { return t == Type::S32; }

const char* to_string(Type t);

/// PTX state spaces. Reg is implicit; the rest select which memory system
/// component a ld/st/atom instruction touches, which drives both semantics
/// (separate backing stores) and cost (coalescing vs banks vs caches).
enum class Space : std::uint8_t {
  Reg,
  Global,
  Shared,
  Const,
  Local,
  Param,
  Texture,
};

const char* to_string(Space s);

}  // namespace gpc::ir
