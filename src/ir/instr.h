// Instruction definitions of the PTX-like virtual ISA.
//
// The opcode vocabulary deliberately mirrors PTX 2.x because Table V of the
// paper is a histogram over PTX opcodes (add/sub/mul/div/fma/mad/neg,
// and/or/not/xor, shl/shr, cvt/mov/ld.*/st.*, setp/selp/bra, bar); compiling
// a kernel through our two front-ends and histogramming the result is how
// that table is regenerated.
#pragma once

#include <cstdint>

#include "ir/types.h"

namespace gpc::ir {

enum class Opcode : std::uint8_t {
  // Arithmetic
  Add, Sub, Mul, MulHi, Div, Rem, Mad, Fma, Neg, Abs, Min, Max,
  // Special function unit (transcendental); costed separately by the timing
  // model but classified as arithmetic for Table V purposes.
  Sqrt, Rsqrt, Rcp, Sin, Cos, Ex2, Lg2,
  // Logic & shift
  And, Or, Xor, Not, Shl, Shr,
  // Data movement
  Mov, Cvt, Ld, St, Tex,
  // Atomics (global or shared space)
  AtomAdd, AtomMin, AtomMax, AtomExch, AtomCas,
  // Flow control
  SetP, SelP, Bra, Bar, Exit,
  // Special-register read (tid/ntid/ctaid/nctaid/laneid)
  ReadSReg,
};

const char* to_string(Opcode op);

enum class SReg : std::uint8_t {
  TidX, TidY, TidZ,
  NTidX, NTidY, NTidZ,
  CtaIdX, CtaIdY, CtaIdZ,
  NCtaIdX, NCtaIdY, NCtaIdZ,
  LaneId, WarpSize, GridDimFlatX,
};

const char* to_string(SReg s);

enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

const char* to_string(CmpOp c);

/// An instruction operand: a virtual register or an immediate.
struct Operand {
  enum class Kind : std::uint8_t { None, Reg, ImmInt, ImmFloat };
  Kind kind = Kind::None;
  int reg = -1;
  std::int64_t ival = 0;
  double fval = 0.0;

  static Operand none() { return {}; }
  static Operand vreg(int r) {
    Operand o;
    o.kind = Kind::Reg;
    o.reg = r;
    return o;
  }
  static Operand imm(std::int64_t v) {
    Operand o;
    o.kind = Kind::ImmInt;
    o.ival = v;
    return o;
  }
  static Operand immf(double v) {
    Operand o;
    o.kind = Kind::ImmFloat;
    o.fval = v;
    return o;
  }
  bool is_reg() const { return kind == Kind::Reg; }
  bool is_imm() const {
    return kind == Kind::ImmInt || kind == Kind::ImmFloat;
  }
  bool is_none() const { return kind == Kind::None; }
};

/// One flat instruction. Branch targets are indices into the owning
/// function's instruction vector (resolved by FunctionBuilder).
struct Instr {
  Opcode op = Opcode::Exit;
  Type type = Type::S32;       // operating type
  Type src_type = Type::S32;   // for Cvt: source interpretation
  Space space = Space::Reg;    // for Ld/St/Atom*
  CmpOp cmp = CmpOp::Eq;       // for SetP
  SReg sreg = SReg::TidX;      // for ReadSReg
  int dst = -1;                // destination vreg, or -1
  Operand a, b, c;
  int guard = -1;              // guard predicate vreg (-1 = unconditional)
  bool guard_negated = false;
  int target = -1;             // branch target instruction index
  int tex_unit = -1;           // for Tex: bound texture unit

  bool is_memory() const {
    return op == Opcode::Ld || op == Opcode::St || op == Opcode::Tex ||
           is_atomic();
  }
  bool is_atomic() const {
    return op == Opcode::AtomAdd || op == Opcode::AtomMin ||
           op == Opcode::AtomMax || op == Opcode::AtomExch ||
           op == Opcode::AtomCas;
  }
  bool is_branch() const { return op == Opcode::Bra; }
  bool is_sfu() const {
    return op == Opcode::Sqrt || op == Opcode::Rsqrt || op == Opcode::Rcp ||
           op == Opcode::Sin || op == Opcode::Cos || op == Opcode::Ex2 ||
           op == Opcode::Lg2 || (op == Opcode::Div && is_float(type));
  }
};

/// Instruction classes as used by the paper's Table V.
enum class InstrClass : std::uint8_t {
  Arithmetic,
  LogicShift,
  DataMovement,
  FlowControl,
  Synchronization,
  Other,
};

const char* to_string(InstrClass c);

InstrClass classify(const Instr& in);

/// Floating-point operation count of one executed instance of `in`
/// (per active lane); used for GFlops metrics. mad/fma count as 2.
int flop_count(const Instr& in);

}  // namespace gpc::ir
