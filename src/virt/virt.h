// gpc::virt — multi-tenant virtual devices over one simulated device
// (gxen/GPUvm-inspired, see ROADMAP "Multi-tenant virtual devices").
//
// Why it exists: the paper's comparison runs one benchmark at a time on a
// dedicated device; a production-scale serving system multiplexes one device
// across many mutually untrusting tenants. PR 5 (gpc::resil) answered the
// single-session robustness question — can one session's faults be retried,
// degraded and classified — and this layer answers the multi-tenant one: can
// one tenant's hang, fault or resource hogging ever take down or starve a
// neighbour?
//
// Model: a VirtualDeviceManager carves one physical device into N virtual
// devices (tenants). Each tenant gets
//
//   * a MEMORY QUOTA: tenant sessions size their DeviceMemory heap to the
//     quota, so over-quota allocation surfaces as the ordinary
//     CL_OUT_OF_RESOURCES / gpc::OutOfResources at allocation time — to that
//     tenant only — and flows into the PR 5 retry/degrade ladder. The
//     manager refuses to over-carve the physical DRAM at construction.
//   * a COMMAND QUEUE (TenantQueue): every kernel launch of a tenant session
//     is submitted here instead of running on the caller's thread. Launches
//     are executed in sub-grid chunks through the exact split-launch
//     mechanism of PR 5 (LaunchConfig::grid_offset + logical_grid): kernels
//     observe logical CtaId/NCtaId coordinates, so a preempted-and-resumed
//     grid computes bit-identical results to an unsliced launch. Timing is
//     re-derived once per logical launch from the merged LaunchStats, so a
//     launch split into 100 slices is charged ONE launch overhead, exactly
//     like the unsliced launch.
//   * a CREDIT-BASED FAIR-SHARE SCHEDULER (Xen-credit-style): tenants hold
//     credits replenished proportionally to their weight and debited by the
//     warp-instruction issues their slices actually executed; the runnable
//     tenant with the most credits runs next. The scheduling quantum
//     ("slice", default 50000 warp-instructions) is the same unit as the
//     PR 2/PR 5 step budget — the preemption tick is the step budget applied
//     at chunk granularity. The scheduler is work-conserving: a
//     single-tenant manager executes launches exactly as the unvirtualized
//     path would (one launch_kernel call — the tenants=1 <=2% A/B bar); in
//     a multi-tenant manager an uncontended tenant runs slice-sized chunks
//     without ever yielding, re-checking for newly runnable neighbours at
//     every chunk boundary, and the quantum is enforced only while another
//     tenant is actually runnable (or VirtConfig::force_slice is set, which
//     the bit-identity tests use).
//
// Driving model: there is no scheduler thread. The device is a lock; a
// submitting tenant thread whose job is pending becomes the driver when no
// other driver is active, and executes slices *in credit order across all
// tenants* until its own job completes, then hands the driver role to the
// next waiter. One slice executes at a time — the simulated device runs one
// (sub-)grid at a time, same as the real hardware the model prices.
//
// Fault isolation: a chunk that throws (injected or organic OutOfResources /
// DeviceFault / watchdog trip) fails only the owning tenant's job — the
// error is parked on the job and rethrown on the submitting thread, where
// the PR 5 session policy (retry / split / degrade) and the benchmark
// classification ladder handle it. The scheduler itself never unwinds.
// Injected hangs are surfaced as watchdog trips without burning cycles, and
// organic runaways are bounded per block by VirtConfig::block_budget /
// GPC_WATCHDOG / the built-in step backstop, so a victim tenant can delay a
// neighbour by at most one block execution, never stall it.
//
// Per-tenant fault injection: a TenantQueue can own a private
// resil::FaultPlan (enqueue / hang / midgrid sites) sampled on the
// SUBMITTING thread in program order — so a tenant's fault sequence is a
// pure function of its own plan seeds and launch sequence, independent of
// cross-tenant scheduling. This is what makes the virt soak's outcome
// vector replayable bit-for-bit under real concurrency.
//
// Observability: per-tenant counters (launches, slices, preemptions,
// executed steps, contended steps, faults, quota rejections, memory
// peak/used) snapshot via TenantQueue::stats(); launches recorded through
// gpc::prof carry the tenant id and land on per-tenant rows of the device
// track in the Chrome trace ("tenant N (w=W)" threads).
//
// Enablement: construct a VirtualDeviceManager explicitly, or with the
// GPC_VIRT environment configuration:
//
//   GPC_VIRT="tenants=8,slice=50000,weights=4:2:1:1,quota_mb=64,
//             phys_mb=512,watchdog=N,force_slice=1"
//
// With GPC_VIRT unset and no manager constructed, nothing in the launch
// path changes beyond one null-pointer test (fig03/table06 bit-identical,
// locked by tests).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "resil/fault.h"
#include "sim/launch.h"

namespace gpc::virt {

struct VirtConfig {
  int tenants = 1;
  /// Scheduling quantum in warp-instruction issues (the step-budget unit):
  /// a contended tenant is preempted at the first chunk boundary at or past
  /// this many executed issues.
  std::uint64_t slice = 50'000;
  /// Per-tenant scheduling weights (fair share ∝ weight). Shorter vectors
  /// are padded with 1.0; empty = equal shares.
  std::vector<double> weights;
  /// Physical simulated DRAM carved among the tenants.
  std::size_t phys_bytes = std::size_t{512} << 20;
  /// Per-tenant memory quota; 0 = phys_bytes / tenants. The manager throws
  /// InvalidArgument when tenants * quota exceeds phys_bytes.
  std::size_t quota_bytes = 0;
  /// Per-block step budget applied to sliced chunks whose launch did not set
  /// one (0 = inherit GPC_SIM_STEP_BUDGET / GPC_WATCHDOG / the built-in
  /// backstop). Bounds how long one tenant block can occupy the device.
  std::uint64_t block_budget = 0;
  /// Slice even without contention — the preempt/resume bit-identity tests
  /// use this to force checkpointing on every launch.
  bool force_slice = false;
};

/// Parses GPC_VIRT (see file comment). Malformed entries are ignored —
/// robustness layer; an env typo must never abort the host.
VirtConfig virt_config_from_env();

/// Snapshot of one tenant's accounting (all counters monotonic since
/// manager construction).
struct TenantStats {
  int id = 0;
  double weight = 1.0;
  std::uint64_t launches = 0;     // completed logical launches
  std::uint64_t slices = 0;       // scheduler quanta executed
  std::uint64_t preemptions = 0;  // slices that checkpointed mid-grid
  std::uint64_t steps = 0;        // warp-instruction issues executed
  std::uint64_t contended_steps = 0;  // ...while >= 2 tenants were runnable
  std::uint64_t faults = 0;           // failed launches (injected or organic)
  std::uint64_t quota_rejections = 0;  // over-quota allocation attempts
  std::size_t quota_bytes = 0;
  std::size_t mem_used = 0;  // live bytes reported by the tenant session
  std::size_t mem_peak = 0;
};

class VirtualDeviceManager;

/// One tenant's command queue + accounting. Obtained from the manager; the
/// handle stays valid for the manager's lifetime. launch() is the entry the
/// runtime front-ends (cuda::Context / ocl::CommandQueue) call when a
/// tenant queue is attached; everything else is harness/tests plumbing.
class TenantQueue {
 public:
  int tenant_id() const { return id_; }
  double weight() const { return weight_; }
  std::size_t quota() const { return quota_; }

  /// Submits one logical launch and blocks until the scheduler has executed
  /// it to completion (possibly across many slices, interleaved with other
  /// tenants). Throws exactly what an unvirtualized sim::launch_kernel
  /// would (OutOfResources / DeviceFault / ...), scoped to this tenant.
  sim::LaunchResult launch(const arch::DeviceSpec& spec,
                           const arch::RuntimeSpec& runtime,
                           const compiler::CompiledKernel& ck,
                           const sim::LaunchConfig& config,
                           std::span<const sim::KernelArg> args,
                           sim::DeviceMemory& mem,
                           std::span<const sim::TexBinding> textures);

  /// Per-tenant deterministic fault injection (enqueue / hang / midgrid
  /// sites), sampled on the submitting thread in program order. Pass
  /// nullptr to disarm. The plan is owned by the queue.
  void set_fault_plan(std::unique_ptr<resil::FaultPlan> plan);
  resil::FaultPlan* fault_plan() { return plan_.get(); }

  /// Memory accounting callbacks (TenantSession). note_quota_rejection is
  /// bumped when an allocation bounced off the quota.
  void note_alloc(std::size_t bytes);
  void note_mem_reset();
  void note_quota_rejection();

  TenantStats stats() const;

 private:
  friend class VirtualDeviceManager;
  TenantQueue(VirtualDeviceManager* mgr, int id, double weight,
              std::size_t quota)
      : mgr_(mgr), id_(id), weight_(weight), quota_(quota) {}

  /// One submitted logical launch and its checkpoint state. Only the
  /// submitting thread (before enqueue / after completion) and the single
  /// active driver (in between, handed off under the manager mutex) touch a
  /// Job, so the fields need no locking of their own.
  struct Job {
    const arch::DeviceSpec* spec = nullptr;
    const arch::RuntimeSpec* runtime = nullptr;
    const compiler::CompiledKernel* ck = nullptr;
    sim::LaunchConfig cfg;  // the logical launch (itself possibly a sub-grid)
    std::span<const sim::KernelArg> args;
    sim::DeviceMemory* mem = nullptr;
    std::span<const sim::TexBinding> textures;

    long long total_blocks = 0;
    long long next_block = 0;  // checkpoint: first unexecuted flat block
    double est_steps_per_block = 0;  // adaptive chunk sizing
    long long victim_block = -1;     // injected midgrid fault target
    std::string victim_detail;
    sim::LaunchResult acc;  // merged stats/sanitizer; timing filled at end
    bool done = false;
    std::exception_ptr error;
  };

  VirtualDeviceManager* mgr_;
  int id_;
  double weight_;
  std::size_t quota_;
  std::unique_ptr<resil::FaultPlan> plan_;

  // Scheduler state — guarded by the manager mutex.
  double credits_ = 0;
  std::deque<Job*> jobs_;

  // Accounting — relaxed atomics, written by whichever thread did the work.
  std::atomic<std::uint64_t> launches_{0};
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> preemptions_{0};
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> contended_steps_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
  std::atomic<std::uint64_t> mem_used_{0};
  std::atomic<std::uint64_t> mem_peak_{0};
};

class VirtualDeviceManager {
 public:
  /// Validates the carve (weights padded, quota defaulted, sum of quotas
  /// checked against phys_bytes); throws InvalidArgument on an impossible
  /// configuration.
  explicit VirtualDeviceManager(VirtConfig cfg = virt_config_from_env());
  ~VirtualDeviceManager();

  VirtualDeviceManager(const VirtualDeviceManager&) = delete;
  VirtualDeviceManager& operator=(const VirtualDeviceManager&) = delete;

  const VirtConfig& config() const { return cfg_; }
  int tenants() const { return static_cast<int>(tenants_.size()); }
  TenantQueue& tenant(int id);
  std::size_t quota(int id);

  /// All tenants' accounting in id order.
  std::vector<TenantStats> stats() const;

 private:
  friend class TenantQueue;
  using Job = TenantQueue::Job;

  /// Enqueues `job` for `t` and blocks until it is done, driving the
  /// scheduler whenever no other thread is. Called on the submitting thread.
  void run_job(TenantQueue& t, Job& job);

  // All four below require mu_ held.
  TenantQueue* pick_next();
  void refill_credits();
  void drive(std::unique_lock<std::mutex>& lk, const Job& until_done);
  /// Executes one scheduling quantum of (t, j): unlocks mu_ around the
  /// chunk executions, relocks to commit accounting and completion.
  void run_slice(std::unique_lock<std::mutex>& lk, TenantQueue& t, Job& j);

  VirtConfig cfg_;
  std::vector<std::unique_ptr<TenantQueue>> tenants_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool driving_ = false;
  /// Tenants with a non-empty queue; kept as an atomic so an uncontended
  /// driver can detect a new arrival between chunks without taking mu_.
  std::atomic<int> runnable_{0};
};

/// Warp-instruction issues of one chunk — the unit slices are measured in
/// (the same unit as the PR 2 step budget: one issue ≈ one interpreter step).
std::uint64_t issue_steps(const sim::BlockStats& s);

}  // namespace gpc::virt
