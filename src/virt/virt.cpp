#include "virt/virt.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/error.h"
#include "sim/timing.h"

namespace gpc::virt {

namespace {

// GPC_VIRT parsing, same robustness contract as resil::policy_from_env:
// malformed entries are ignored, never fatal.
bool parse_u64(const std::string& v, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  *out = n;
  return true;
}

bool parse_weights(const std::string& v, std::vector<double>* out) {
  std::vector<double> w;
  std::size_t pos = 0;
  while (pos <= v.size()) {
    const std::size_t colon = v.find(':', pos);
    const std::string tok =
        v.substr(pos, colon == std::string::npos ? colon : colon - pos);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || d <= 0) return false;
    w.push_back(d);
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (w.empty()) return false;
  *out = std::move(w);
  return true;
}

}  // namespace

VirtConfig virt_config_from_env() {
  VirtConfig cfg;
  const char* e = std::getenv("GPC_VIRT");
  if (!e || !*e) return cfg;
  const std::string spec(e);
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string entry =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = entry.find('=');
    if (eq != std::string::npos) {
      const std::string key = entry.substr(0, eq);
      const std::string val = entry.substr(eq + 1);
      std::uint64_t n = 0;
      if (key == "tenants" && parse_u64(val, &n) && n >= 1 && n <= 4096) {
        cfg.tenants = static_cast<int>(n);
      } else if (key == "slice" && parse_u64(val, &n) && n > 0) {
        cfg.slice = n;
      } else if (key == "weights") {
        parse_weights(val, &cfg.weights);
      } else if (key == "phys_mb" && parse_u64(val, &n) && n > 0) {
        cfg.phys_bytes = static_cast<std::size_t>(n) << 20;
      } else if (key == "quota_mb" && parse_u64(val, &n) && n > 0) {
        cfg.quota_bytes = static_cast<std::size_t>(n) << 20;
      } else if (key == "watchdog" && parse_u64(val, &n) && n > 0) {
        cfg.block_budget = n;
      } else if (key == "force_slice" && parse_u64(val, &n)) {
        cfg.force_slice = n != 0;
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return cfg;
}

std::uint64_t issue_steps(const sim::BlockStats& s) {
  return s.alu_issues + s.ialu_issues + s.agu_issues + s.mad_issues +
         s.mul_issues + s.sfu_issues + s.branch_issues + s.mem_issues;
}

// ---------------------------------------------------------------------------
// TenantQueue

sim::LaunchResult TenantQueue::launch(const arch::DeviceSpec& spec,
                                      const arch::RuntimeSpec& runtime,
                                      const compiler::CompiledKernel& ck,
                                      const sim::LaunchConfig& config,
                                      std::span<const sim::KernelArg> args,
                                      sim::DeviceMemory& mem,
                                      std::span<const sim::TexBinding> textures) {
  GPC_REQUIRE(config.grid.count() > 0, "empty grid");

  Job job;
  job.spec = &spec;
  job.runtime = &runtime;
  job.ck = &ck;
  job.cfg = config;
  job.args = args;
  job.mem = &mem;
  job.textures = textures;
  job.total_blocks = config.grid.count();

  // Per-tenant fault injection, sampled HERE — on the submitting thread, in
  // this tenant's program order — so a tenant's fault sequence is a pure
  // function of its own plan and launch sequence, never of how the
  // scheduler happened to interleave tenants. This is what makes the virt
  // soak's outcome vector replayable bit-for-bit under real concurrency.
  if (plan_ && plan_->armed()) {
    const std::string where = ck.name() + " [tenant " + std::to_string(id_) + "]";
    if (auto inj = plan_->sample(resil::Site::Enqueue, where)) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw OutOfResources(inj->detail + " on " + spec.short_name);
    }
    if (auto inj = plan_->sample(resil::Site::Hang, where)) {
      // Same contract as the global plan in sim::launch_kernel: a hung
      // launch surfaces as the watchdog-classified DeviceFault without
      // burning cycles — and without ever occupying the shared device.
      resil::note_watchdog_trip();
      faults_.fetch_add(1, std::memory_order_relaxed);
      throw DeviceFault(inj->detail + ": kernel exceeded instruction budget" +
                        " (hung launch tripped the watchdog)");
    }
    if (auto inj = plan_->sample(resil::Site::MidGrid, where)) {
      job.victim_block = static_cast<long long>(
          inj->aux % static_cast<std::uint64_t>(job.total_blocks));
      job.victim_detail = inj->detail;
    }
  }

  mgr_->run_job(*this, job);

  if (job.error) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    std::rethrow_exception(job.error);
  }
  launches_.fetch_add(1, std::memory_order_relaxed);
  return std::move(job.acc);
}

void TenantQueue::set_fault_plan(std::unique_ptr<resil::FaultPlan> plan) {
  plan_ = std::move(plan);
}

void TenantQueue::note_alloc(std::size_t used_now) {
  mem_used_.store(used_now, std::memory_order_relaxed);
  std::uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
  while (used_now > peak &&
         !mem_peak_.compare_exchange_weak(peak, used_now,
                                          std::memory_order_relaxed)) {
  }
}

void TenantQueue::note_mem_reset() {
  mem_used_.store(0, std::memory_order_relaxed);
}

void TenantQueue::note_quota_rejection() {
  quota_rejections_.fetch_add(1, std::memory_order_relaxed);
}

TenantStats TenantQueue::stats() const {
  TenantStats s;
  s.id = id_;
  s.weight = weight_;
  s.quota_bytes = quota_;
  s.launches = launches_.load(std::memory_order_relaxed);
  s.slices = slices_.load(std::memory_order_relaxed);
  s.preemptions = preemptions_.load(std::memory_order_relaxed);
  s.steps = steps_.load(std::memory_order_relaxed);
  s.contended_steps = contended_steps_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.quota_rejections = quota_rejections_.load(std::memory_order_relaxed);
  s.mem_used = mem_used_.load(std::memory_order_relaxed);
  s.mem_peak = mem_peak_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// VirtualDeviceManager

VirtualDeviceManager::VirtualDeviceManager(VirtConfig cfg)
    : cfg_(std::move(cfg)) {
  GPC_REQUIRE(cfg_.tenants >= 1, "GPC_VIRT: tenants must be >= 1");
  GPC_REQUIRE(cfg_.slice > 0, "GPC_VIRT: slice must be > 0");
  cfg_.weights.resize(static_cast<std::size_t>(cfg_.tenants), 1.0);
  for (double w : cfg_.weights) {
    GPC_REQUIRE(w > 0, "GPC_VIRT: weights must be positive");
  }
  if (cfg_.quota_bytes == 0) {
    cfg_.quota_bytes = cfg_.phys_bytes / static_cast<std::size_t>(cfg_.tenants);
  }
  GPC_REQUIRE(cfg_.quota_bytes > 256,
              "GPC_VIRT: per-tenant quota too small for the null page");
  // Refuse to over-carve the physical DRAM: quotas are hard reservations,
  // not ballast — a tenant inside its quota must never hit a neighbour's
  // allocation pressure.
  GPC_REQUIRE(cfg_.quota_bytes * static_cast<std::size_t>(cfg_.tenants) <=
                  cfg_.phys_bytes,
              "GPC_VIRT: tenants * quota exceeds physical memory");

  tenants_.reserve(static_cast<std::size_t>(cfg_.tenants));
  for (int i = 0; i < cfg_.tenants; ++i) {
    tenants_.emplace_back(new TenantQueue(
        this, i, cfg_.weights[static_cast<std::size_t>(i)], cfg_.quota_bytes));
  }
}

VirtualDeviceManager::~VirtualDeviceManager() = default;

TenantQueue& VirtualDeviceManager::tenant(int id) {
  GPC_REQUIRE(id >= 0 && id < tenants(), "tenant id out of range");
  return *tenants_[static_cast<std::size_t>(id)];
}

std::size_t VirtualDeviceManager::quota(int id) {
  return tenant(id).quota();
}

std::vector<TenantStats> VirtualDeviceManager::stats() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t->stats());
  return out;
}

void VirtualDeviceManager::run_job(TenantQueue& t, Job& job) {
  std::unique_lock<std::mutex> lk(mu_);
  t.jobs_.push_back(&job);
  if (t.jobs_.size() == 1) runnable_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();

  while (!job.done) {
    if (!driving_) {
      // Become the driver: execute slices across ALL tenants in credit
      // order until our own job completes, then hand the role off. The
      // device is effectively this lock — one slice runs at a time, just
      // like the single simulated device the timing model prices.
      driving_ = true;
      drive(lk, job);
      driving_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return job.done || !driving_; });
    }
  }
}

TenantQueue* VirtualDeviceManager::pick_next() {
  auto best = [this]() -> TenantQueue* {
    TenantQueue* b = nullptr;
    for (const auto& t : tenants_) {
      if (t->jobs_.empty()) continue;
      if (!b || t->credits_ > b->credits_) b = t.get();
    }
    return b;
  };
  TenantQueue* b = best();
  if (b && b->credits_ <= 0) {
    refill_credits();
    b = best();
  }
  return b;
}

void VirtualDeviceManager::refill_credits() {
  // Xen-credit-style refill: when every runnable tenant has exhausted its
  // credits, grant one scheduling round's worth — one slice per runnable
  // tenant — divided proportionally to weight. Debits are the actual
  // warp-instruction issues a slice consumed, so long-run executed steps
  // converge to the weight ratios regardless of per-launch granularity.
  double wsum = 0;
  int runnable = 0;
  for (const auto& t : tenants_) {
    if (t->jobs_.empty()) continue;
    wsum += t->weight_;
    ++runnable;
  }
  if (runnable == 0 || wsum <= 0) return;
  const double round = static_cast<double>(cfg_.slice) * runnable;
  for (const auto& t : tenants_) {
    if (t->jobs_.empty()) continue;
    const double grant = round * (t->weight_ / wsum);
    t->credits_ += grant;
    // Cap at two rounds so a tenant that ran shorter slices than granted
    // cannot bank unbounded credit and later monopolise the device.
    t->credits_ = std::min(t->credits_, 2 * grant);
  }
}

void VirtualDeviceManager::drive(std::unique_lock<std::mutex>& lk,
                                 const Job& until_done) {
  while (!until_done.done) {
    TenantQueue* t = pick_next();
    GPC_CHECK(t != nullptr, "virt scheduler: driver's job lost");
    run_slice(lk, *t, *t->jobs_.front());
  }
}

void VirtualDeviceManager::run_slice(std::unique_lock<std::mutex>& lk,
                                     TenantQueue& t, Job& j) {
  auto contended_now = [&] {
    return runnable_.load(std::memory_order_relaxed) >= 2 || cfg_.force_slice;
  };

  auto complete = [&](std::exception_ptr err) {
    // Called with mu_ held: commit completion and wake the submitter.
    j.error = std::move(err);
    j.done = true;
    t.jobs_.pop_front();
    if (t.jobs_.empty()) runnable_.fetch_sub(1, std::memory_order_relaxed);
    cv_.notify_all();
  };

  std::uint64_t consumed = 0;
  std::uint64_t contended_consumed = 0;
  t.slices_.fetch_add(1, std::memory_order_relaxed);

  if (tenants_.size() == 1 && !cfg_.force_slice && j.victim_block < 0) {
    // Work-conserving fast path, single-tenant managers only (nothing can
    // ever contend): execute the whole launch exactly as the unvirtualized
    // path would — one sim::launch_kernel call, unmodified config. The
    // scheduler adds only this function's bookkeeping (the <=2% A/B bar).
    // Multi-tenant managers always take the chunked path below, because a
    // whole-grid chunk could not notice a neighbour arriving mid-launch.
    lk.unlock();
    std::exception_ptr err;
    try {
      j.acc = sim::launch_kernel(*j.spec, *j.runtime, *j.ck, j.cfg, j.args,
                                 *j.mem, j.textures);
      consumed = issue_steps(j.acc.stats.total);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    t.credits_ -= static_cast<double>(consumed);
    t.steps_.fetch_add(consumed, std::memory_order_relaxed);
    complete(std::move(err));
    return;
  }

  // Sliced path: execute sub-grid chunks through the PR 5 split-launch
  // mechanism until the slice quantum is consumed or the job completes.
  // Chunks are runs of blocks within one x-row of the job's grid, so every
  // chunk is expressible as a (n,1,1) box at a grid_offset; kernels observe
  // logical CtaId/NCtaId via logical_grid, which is what makes a
  // preempted-and-resumed grid bit-identical to the unsliced launch.
  //
  // The quantum is only ENFORCED while contended, but contention is
  // re-sampled at every chunk boundary: an uncontended tenant keeps running
  // slice-sized chunks without yielding (work conservation), and a
  // neighbour that submits mid-launch is noticed within one slice's worth
  // of steps — not at the next launch boundary, where two ping-ponging
  // tenants would each always look uncontended and never interleave.
  const sim::Dim3 logical = j.cfg.logical();
  const long long gx = j.cfg.grid.x;
  const long long gy = j.cfg.grid.y;

  while (!j.done) {
    const bool contended = contended_now();
    const std::uint64_t budget =
        contended ? (cfg_.slice > consumed ? cfg_.slice - consumed
                                           : std::uint64_t{1})
                  : cfg_.slice;
    // Chunk size: calibrate on one block, then fit the remaining quantum
    // using the measured steps-per-block of this job's earlier chunks.
    long long chunk =
        j.est_steps_per_block > 0
            ? std::max<long long>(
                  1, static_cast<long long>(static_cast<double>(budget) /
                                            j.est_steps_per_block))
            : 1;
    chunk = std::min(chunk, j.total_blocks - j.next_block);
    // Clamp to the end of the current x-row so the chunk stays a box.
    const long long col = j.next_block % gx;
    chunk = std::min(chunk, gx - col);

    // Injected mid-grid fault: execute up to the victim block, then fail
    // the job at exactly that block — deterministic regardless of how the
    // grid was sliced.
    if (j.victim_block >= j.next_block) {
      if (j.victim_block == j.next_block) {
        complete(std::make_exception_ptr(DeviceFault(
            j.victim_detail + " (block " + std::to_string(j.victim_block) +
            "/" + std::to_string(j.total_blocks) + ")")));
        break;
      }
      chunk = std::min(chunk, j.victim_block - j.next_block);
    }

    sim::LaunchConfig sub = j.cfg;
    sub.grid = {static_cast<int>(chunk), 1, 1};
    const long long row = j.next_block / gx;
    sub.grid_offset.x = j.cfg.grid_offset.x + static_cast<int>(col);
    sub.grid_offset.y = j.cfg.grid_offset.y + static_cast<int>(row % gy);
    sub.grid_offset.z = j.cfg.grid_offset.z + static_cast<int>(row / gy);
    sub.logical_grid = logical;
    if (sub.step_budget == 0) sub.step_budget = cfg_.block_budget;

    lk.unlock();
    sim::LaunchResult res;
    std::exception_ptr err;
    try {
      res = sim::launch_kernel(*j.spec, *j.runtime, *j.ck, sub, j.args, *j.mem,
                               j.textures);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();

    if (err) {
      // Fault isolation: the failure is parked on THIS tenant's job and
      // rethrown on its submitting thread; the scheduler itself never
      // unwinds, and no other tenant observes anything but time.
      complete(std::move(err));
      break;
    }

    const std::uint64_t chunk_steps = issue_steps(res.stats.total);
    consumed += chunk_steps;
    if (contended) contended_consumed += chunk_steps;
    j.est_steps_per_block = static_cast<double>(chunk_steps) /
                            static_cast<double>(chunk);

    // Merge chunk statistics into the logical launch's accumulator.
    if (j.acc.stats.sm_issue_weight.empty()) {
      j.acc.stats.sm_issue_weight.assign(res.stats.sm_issue_weight.size(), 0.0);
    }
    j.acc.stats.total.merge(res.stats.total);
    for (std::size_t i = 0; i < res.stats.sm_issue_weight.size(); ++i) {
      j.acc.stats.sm_issue_weight[i] += res.stats.sm_issue_weight[i];
    }
    j.acc.sanitizer.checks = j.acc.sanitizer.checks | res.sanitizer.checks;
    for (auto& f : res.sanitizer.findings) {
      j.acc.sanitizer.findings.push_back(std::move(f));
    }
    j.acc.sanitizer.dropped += res.sanitizer.dropped;
    // AIWC features merge by order-independent sums: the sliced/preempted
    // launch reports features bit-identical to the whole-grid launch.
    if (!j.acc.aiwc) {
      j.acc.aiwc = res.aiwc;
    } else if (res.aiwc) {
      j.acc.aiwc->merge(*res.aiwc);
    }

    j.next_block += chunk;
    if (j.next_block == j.total_blocks) {
      // Logical launch complete: price it ONCE from the merged statistics,
      // exactly as the unsliced launch would be priced — a launch split
      // into 100 slices is charged one launch overhead, not 100.
      j.acc.stats.blocks = static_cast<int>(j.total_blocks);
      j.acc.stats.threads_per_block = static_cast<int>(j.cfg.block.count());
      j.acc.timing =
          sim::time_kernel(*j.spec, *j.runtime, *j.ck, j.cfg, j.acc.stats);
      complete(nullptr);
      break;
    }
    if (contended_now() && consumed >= cfg_.slice) {
      // Quantum exhausted mid-grid while contended: checkpoint (next_block)
      // and yield to the credit scheduler.
      t.preemptions_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }

  t.credits_ -= static_cast<double>(consumed);
  t.steps_.fetch_add(consumed, std::memory_order_relaxed);
  t.contended_steps_.fetch_add(contended_consumed, std::memory_order_relaxed);
}

}  // namespace gpc::virt
