// Fluent builder for KernelDef with hash-consed expression nodes.
//
// Hash-consing matters beyond convenience: identical subexpressions become
// the *same* node, so the CUDA front-end's CSE (a memo over node identity)
// finds every repeated index computation, while the OpenCL front-end —
// modelling the less mature 2010-era compiler — re-lowers each *use*,
// reproducing the arithmetic-instruction inflation of the paper's Table V.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/types.h"
#include "kernel/ast.h"

namespace gpc::kernel {

class KernelBuilder;

/// Immutable expression handle. Copyable, cheap; arithmetic operators build
/// new nodes through the owning builder.
class Val {
 public:
  Val() = default;
  Val(ExprP node, KernelBuilder* kb) : node_(std::move(node)), kb_(kb) {}
  const ExprP& node() const { return node_; }
  KernelBuilder* builder() const { return kb_; }
  ir::Type type() const { return node_->type; }
  bool valid() const { return node_ != nullptr; }

 private:
  ExprP node_;
  KernelBuilder* kb_ = nullptr;
};

/// Handle to a mutable kernel variable. Reading a Var yields its current
/// value at that point in the program (a VarRef node).
class Var {
 public:
  Var() = default;
  Var(int id, ir::Type type, KernelBuilder* kb) : id_(id), type_(type), kb_(kb) {}
  int id() const { return id_; }
  ir::Type type() const { return type_; }
  operator Val() const;  // NOLINT(google-explicit-constructor): reads the var

 private:
  int id_ = -1;
  ir::Type type_ = ir::Type::S32;
  KernelBuilder* kb_ = nullptr;
};

/// Handle to a pointer kernel parameter.
struct Ptr {
  int param = -1;
  ir::Type elem = ir::Type::F32;
};

struct Shared { int id = -1; ir::Type elem = ir::Type::F32; };
struct ConstArr { int id = -1; ir::Type elem = ir::Type::F32; };
struct Priv { int id = -1; ir::Type elem = ir::Type::F32; };
struct Tex { int unit = -1; ir::Type elem = ir::Type::F32; };

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name);

  // ---- Parameters ----
  Ptr ptr_param(const std::string& name, ir::Type elem);
  Val s32_param(const std::string& name);
  Val u32_param(const std::string& name);
  Val f32_param(const std::string& name);

  // ---- Declarations ----
  Var var(const std::string& name, ir::Type type);
  Var var_s32(const std::string& name) { return var(name, ir::Type::S32); }
  Var var_f32(const std::string& name) { return var(name, ir::Type::F32); }
  Shared shared_array(const std::string& name, ir::Type elem, int count);
  ConstArr const_array_f32(const std::string& name, std::span<const float> data);
  ConstArr const_array_s32(const std::string& name, std::span<const int> data);
  Priv private_array(const std::string& name, ir::Type elem, int count);
  Tex texture(const std::string& name, ir::Type elem);

  // ---- Constants & builtins ----
  Val c32(std::int64_t v);                 // s32 constant
  Val cu32(std::uint32_t v);               // u32 constant
  Val cf(double v);                        // f32 constant
  Val builtin(BuiltinId id);
  Val tid_x() { return builtin(BuiltinId::TidX); }
  Val tid_y() { return builtin(BuiltinId::TidY); }
  Val ntid_x() { return builtin(BuiltinId::NTidX); }
  Val ntid_y() { return builtin(BuiltinId::NTidY); }
  Val ctaid_x() { return builtin(BuiltinId::CtaIdX); }
  Val ctaid_y() { return builtin(BuiltinId::CtaIdY); }
  Val nctaid_x() { return builtin(BuiltinId::NCtaIdX); }
  Val nctaid_y() { return builtin(BuiltinId::NCtaIdY); }
  Val global_id_x() { return builtin(BuiltinId::GlobalIdX); }
  Val global_id_y() { return builtin(BuiltinId::GlobalIdY); }
  Val lane_id() { return builtin(BuiltinId::LaneId); }

  // ---- Expressions ----
  Val binary(BinOp op, Val a, Val b);
  Val unary(UnOp op, Val a);
  Val select(Val cond, Val a, Val b);
  Val cast(Val a, ir::Type to);
  Val min_(Val a, Val b) { return binary(BinOp::Min, a, b); }
  Val max_(Val a, Val b) { return binary(BinOp::Max, a, b); }
  Val abs_(Val a) { return unary(UnOp::Abs, a); }
  Val sqrt_(Val a) { return unary(UnOp::Sqrt, a); }
  Val rsqrt_(Val a) { return unary(UnOp::Rsqrt, a); }
  Val rcp_(Val a) { return unary(UnOp::Rcp, a); }
  Val sin_(Val a) { return unary(UnOp::Sin, a); }
  Val cos_(Val a) { return unary(UnOp::Cos, a); }
  Val exp2_(Val a) { return unary(UnOp::Exp2, a); }
  Val log2_(Val a) { return unary(UnOp::Log2, a); }

  Val ld(Ptr p, Val index);
  Val lds(Shared s, Val index);
  Val ldc(ConstArr c, Val index);
  Val ldp(Priv p, Val index);
  /// CUDA texture fetch with a plain-load fallback (`fallback[index]`) used
  /// when the variant/toolchain has no texture path.
  Val tex1d(Tex t, Ptr fallback, Val index);

  // ---- Statements ----
  void set(Var v, Val value);
  void st(Ptr p, Val index, Val value);
  void sts(Shared s, Val index, Val value);
  void stp(Priv p, Val index, Val value);
  void atomic_add(Ptr p, Val index, Val value);
  void atomic_add_shared(Shared s, Val index, Val value);
  void barrier();

  void for_(Var v, Val lo, Val hi, Val step, Unroll unroll,
            const std::function<void()>& body_fn);
  void for_(Var v, std::int64_t lo, Val hi, std::int64_t step, Unroll unroll,
            const std::function<void()>& body_fn);
  void while_(Val cond, const std::function<void()>& body_fn);
  void if_(Val cond, const std::function<void()>& then_fn);
  void if_else(Val cond, const std::function<void()>& then_fn,
               const std::function<void()>& else_fn);

  /// Finalises and returns the kernel definition (builder unusable after).
  KernelDef finish();

  // Internal: hash-consed node construction (public for the free operators).
  Val make(Expr proto);

 private:
  void push_stmt(Stmt s);
  std::vector<Stmt>* current_block();

  KernelDef def_;
  std::vector<std::vector<Stmt>*> block_stack_;
  std::unordered_map<std::size_t, std::vector<ExprP>> cons_table_;
  bool finished_ = false;
};

// ---- Operator sugar on Val ----
Val operator+(Val a, Val b);
Val operator-(Val a, Val b);
Val operator*(Val a, Val b);
Val operator/(Val a, Val b);
Val operator%(Val a, Val b);
Val operator&(Val a, Val b);
Val operator|(Val a, Val b);
Val operator^(Val a, Val b);
Val operator<<(Val a, Val b);
Val operator>>(Val a, Val b);
Val operator<(Val a, Val b);
Val operator<=(Val a, Val b);
Val operator>(Val a, Val b);
Val operator>=(Val a, Val b);
Val operator==(Val a, Val b);
Val operator!=(Val a, Val b);
Val operator-(Val a);

// Mixed int-literal convenience: the literal adopts the Val's type
// (ConstFloat for f32/f64 operands).
Val lit_like(Val like, double v);
Val operator+(Val a, std::int64_t b);
Val operator+(std::int64_t a, Val b);
Val operator-(Val a, std::int64_t b);
Val operator-(std::int64_t a, Val b);
Val operator*(Val a, std::int64_t b);
Val operator*(std::int64_t a, Val b);
Val operator/(Val a, std::int64_t b);
Val operator%(Val a, std::int64_t b);
Val operator&(Val a, std::int64_t b);
Val operator|(Val a, std::int64_t b);
Val operator^(Val a, std::int64_t b);
Val operator<<(Val a, std::int64_t b);
Val operator>>(Val a, std::int64_t b);
Val operator<(Val a, std::int64_t b);
Val operator<=(Val a, std::int64_t b);
Val operator>(Val a, std::int64_t b);
Val operator>=(Val a, std::int64_t b);
Val operator==(Val a, std::int64_t b);
Val operator!=(Val a, std::int64_t b);

}  // namespace gpc::kernel
