#include "kernel/builder.h"

#include <cstring>

#include "common/error.h"

namespace gpc::kernel {

using ir::Type;

namespace {

bool is_int(Type t) { return t == Type::S32 || t == Type::U32 || t == Type::U64; }

std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

std::size_t node_hash(const Expr& e) {
  std::size_t h = hash_combine(static_cast<std::size_t>(e.kind),
                               static_cast<std::size_t>(e.type));
  h = hash_combine(h, static_cast<std::size_t>(e.ival));
  std::uint64_t fbits;
  std::memcpy(&fbits, &e.fval, sizeof(fbits));
  h = hash_combine(h, fbits);
  h = hash_combine(h, static_cast<std::size_t>(e.param + 1));
  h = hash_combine(h, static_cast<std::size_t>(e.var + 1));
  h = hash_combine(h, static_cast<std::size_t>(e.array + 1));
  h = hash_combine(h, static_cast<std::size_t>(e.tex_unit + 1));
  h = hash_combine(h, static_cast<std::size_t>(e.builtin));
  h = hash_combine(h, static_cast<std::size_t>(e.bop));
  h = hash_combine(h, static_cast<std::size_t>(e.uop));
  h = hash_combine(h, std::hash<const Expr*>{}(e.a.get()));
  h = hash_combine(h, std::hash<const Expr*>{}(e.b.get()));
  h = hash_combine(h, std::hash<const Expr*>{}(e.c.get()));
  return h;
}

bool node_equal(const Expr& x, const Expr& y) {
  return x.kind == y.kind && x.type == y.type && x.ival == y.ival &&
         std::memcmp(&x.fval, &y.fval, sizeof(double)) == 0 &&
         x.param == y.param && x.var == y.var && x.array == y.array &&
         x.tex_unit == y.tex_unit && x.builtin == y.builtin &&
         x.bop == y.bop && x.uop == y.uop && x.a == y.a && x.b == y.b &&
         x.c == y.c;
}

}  // namespace

KernelBuilder::KernelBuilder(std::string name) {
  def_.name = std::move(name);
  block_stack_.push_back(&def_.body);
}

Val KernelBuilder::make(Expr proto) {
  const std::size_t h = node_hash(proto);
  auto& bucket = cons_table_[h];
  for (const ExprP& existing : bucket) {
    if (node_equal(*existing, proto)) return Val(existing, this);
  }
  auto node = std::make_shared<Expr>(std::move(proto));
  bucket.push_back(node);
  return Val(node, this);
}

// ---- Parameters ----

Ptr KernelBuilder::ptr_param(const std::string& name, Type elem) {
  ParamDecl p;
  p.name = name;
  p.type = Type::U64;
  p.is_pointer = true;
  p.pointee = elem;
  def_.params.push_back(p);
  return Ptr{static_cast<int>(def_.params.size()) - 1, elem};
}

Val KernelBuilder::s32_param(const std::string& name) {
  def_.params.push_back({name, Type::S32, false, Type::F32});
  Expr e;
  e.kind = ExprKind::ParamRef;
  e.type = Type::S32;
  e.param = static_cast<int>(def_.params.size()) - 1;
  return make(e);
}

Val KernelBuilder::u32_param(const std::string& name) {
  def_.params.push_back({name, Type::U32, false, Type::F32});
  Expr e;
  e.kind = ExprKind::ParamRef;
  e.type = Type::U32;
  e.param = static_cast<int>(def_.params.size()) - 1;
  return make(e);
}

Val KernelBuilder::f32_param(const std::string& name) {
  def_.params.push_back({name, Type::F32, false, Type::F32});
  Expr e;
  e.kind = ExprKind::ParamRef;
  e.type = Type::F32;
  e.param = static_cast<int>(def_.params.size()) - 1;
  return make(e);
}

// ---- Declarations ----

Var KernelBuilder::var(const std::string& name, Type type) {
  def_.vars.push_back({name, type});
  return Var(static_cast<int>(def_.vars.size()) - 1, type, this);
}

Shared KernelBuilder::shared_array(const std::string& name, Type elem,
                                   int count) {
  GPC_REQUIRE(count > 0, "shared array needs positive size");
  def_.shared_arrays.push_back({name, elem, count});
  return Shared{static_cast<int>(def_.shared_arrays.size()) - 1, elem};
}

ConstArr KernelBuilder::const_array_f32(const std::string& name,
                                        std::span<const float> data) {
  ConstArrayDecl d;
  d.name = name;
  d.elem = Type::F32;
  d.count = static_cast<int>(data.size());
  d.data.resize(data.size_bytes());
  std::memcpy(d.data.data(), data.data(), data.size_bytes());
  def_.const_arrays.push_back(std::move(d));
  return ConstArr{static_cast<int>(def_.const_arrays.size()) - 1, Type::F32};
}

ConstArr KernelBuilder::const_array_s32(const std::string& name,
                                        std::span<const int> data) {
  ConstArrayDecl d;
  d.name = name;
  d.elem = Type::S32;
  d.count = static_cast<int>(data.size());
  d.data.resize(data.size_bytes());
  std::memcpy(d.data.data(), data.data(), data.size_bytes());
  def_.const_arrays.push_back(std::move(d));
  return ConstArr{static_cast<int>(def_.const_arrays.size()) - 1, Type::S32};
}

Priv KernelBuilder::private_array(const std::string& name, Type elem,
                                  int count) {
  GPC_REQUIRE(count > 0, "private array needs positive size");
  def_.private_arrays.push_back({name, elem, count});
  return Priv{static_cast<int>(def_.private_arrays.size()) - 1, elem};
}

Tex KernelBuilder::texture(const std::string& name, Type elem) {
  def_.textures.push_back({name, elem});
  return Tex{static_cast<int>(def_.textures.size()) - 1, elem};
}

// ---- Constants & builtins ----

Val KernelBuilder::c32(std::int64_t v) {
  Expr e;
  e.kind = ExprKind::ConstInt;
  e.type = Type::S32;
  e.ival = v;
  return make(e);
}

Val KernelBuilder::cu32(std::uint32_t v) {
  Expr e;
  e.kind = ExprKind::ConstInt;
  e.type = Type::U32;
  e.ival = v;
  return make(e);
}

Val KernelBuilder::cf(double v) {
  Expr e;
  e.kind = ExprKind::ConstFloat;
  e.type = Type::F32;
  e.fval = v;
  return make(e);
}

Val KernelBuilder::builtin(BuiltinId id) {
  Expr e;
  e.kind = ExprKind::Builtin;
  e.type = Type::S32;
  e.builtin = id;
  return make(e);
}

// ---- Expressions ----

Val KernelBuilder::binary(BinOp op, Val a, Val b) {
  GPC_REQUIRE(a.valid() && b.valid(), "binary on invalid Val");
  const Type ta = a.type(), tb = b.type();
  Type result;
  switch (op) {
    case BinOp::Shl:
    case BinOp::Shr:
      GPC_REQUIRE(is_int(ta), "shift needs integer lhs");
      GPC_REQUIRE(is_int(tb), "shift needs integer rhs");
      result = ta;
      break;
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt:
    case BinOp::Ge: case BinOp::Eq: case BinOp::Ne:
      GPC_REQUIRE(ta == tb, "comparison operand types differ");
      result = Type::Pred;
      break;
    case BinOp::And: case BinOp::Or: case BinOp::Xor:
      GPC_REQUIRE(ta == tb, "logic operand types differ");
      GPC_REQUIRE(is_int(ta) || ta == Type::Pred, "logic needs int or pred");
      result = ta;
      break;
    case BinOp::Rem:
      GPC_REQUIRE(ta == tb && is_int(ta), "rem needs matching integer types");
      result = ta;
      break;
    default:
      GPC_REQUIRE(ta == tb, std::string("arith operand types differ in ") +
                                def_.name);
      result = ta;
      break;
  }
  Expr e;
  e.kind = ExprKind::Binary;
  e.type = result;
  e.bop = op;
  e.a = a.node();
  e.b = b.node();
  return make(e);
}

Val KernelBuilder::unary(UnOp op, Val a) {
  GPC_REQUIRE(a.valid(), "unary on invalid Val");
  switch (op) {
    case UnOp::Sqrt: case UnOp::Rsqrt: case UnOp::Rcp: case UnOp::Sin:
    case UnOp::Cos: case UnOp::Exp2: case UnOp::Log2:
      GPC_REQUIRE(a.type() == Type::F32, "transcendental needs f32");
      break;
    case UnOp::Not:
      GPC_REQUIRE(is_int(a.type()) || a.type() == Type::Pred, "not needs int");
      break;
    default:
      break;
  }
  Expr e;
  e.kind = ExprKind::Unary;
  e.type = a.type();
  e.uop = op;
  e.a = a.node();
  return make(e);
}

Val KernelBuilder::select(Val cond, Val a, Val b) {
  GPC_REQUIRE(cond.type() == Type::Pred, "select condition must be a pred");
  GPC_REQUIRE(a.type() == b.type(), "select arm types differ");
  Expr e;
  e.kind = ExprKind::Select;
  e.type = a.type();
  e.a = cond.node();
  e.b = a.node();
  e.c = b.node();
  return make(e);
}

Val KernelBuilder::cast(Val a, Type to) {
  if (a.type() == to) return a;
  Expr e;
  e.kind = ExprKind::Cast;
  e.type = to;
  e.a = a.node();
  return make(e);
}

Val KernelBuilder::ld(Ptr p, Val index) {
  GPC_REQUIRE(p.param >= 0, "load through invalid pointer");
  GPC_REQUIRE(is_int(index.type()), "load index must be integer");
  Expr e;
  e.kind = ExprKind::LoadGlobal;
  e.type = p.elem;
  e.param = p.param;
  e.a = index.node();
  return make(e);
}

Val KernelBuilder::lds(Shared s, Val index) {
  Expr e;
  e.kind = ExprKind::LoadShared;
  e.type = s.elem;
  e.array = s.id;
  e.a = index.node();
  return make(e);
}

Val KernelBuilder::ldc(ConstArr c, Val index) {
  Expr e;
  e.kind = ExprKind::LoadConst;
  e.type = c.elem;
  e.array = c.id;
  e.a = index.node();
  return make(e);
}

Val KernelBuilder::ldp(Priv p, Val index) {
  Expr e;
  e.kind = ExprKind::LoadPrivate;
  e.type = p.elem;
  e.array = p.id;
  e.a = index.node();
  return make(e);
}

Val KernelBuilder::tex1d(Tex t, Ptr fallback, Val index) {
  GPC_REQUIRE(t.elem == fallback.elem,
              "texture and fallback pointer element types differ");
  Expr e;
  e.kind = ExprKind::TexFetch;
  e.type = t.elem;
  e.tex_unit = t.unit;
  e.a = index.node();
  e.b = ld(fallback, index).node();
  return make(e);
}

// ---- Statements ----

void KernelBuilder::push_stmt(Stmt s) {
  GPC_CHECK(!finished_, "statement after finish");
  current_block()->push_back(std::move(s));
}

std::vector<Stmt>* KernelBuilder::current_block() {
  return block_stack_.back();
}

void KernelBuilder::set(Var v, Val value) {
  GPC_REQUIRE(v.id() >= 0, "assignment to undeclared var");
  GPC_REQUIRE(v.type() == value.type(),
              "assignment type mismatch for " + def_.vars[v.id()].name);
  Stmt s;
  s.kind = StmtKind::Assign;
  s.var = v.id();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::st(Ptr p, Val index, Val value) {
  GPC_REQUIRE(p.elem == value.type(), "store type mismatch");
  Stmt s;
  s.kind = StmtKind::StoreGlobal;
  s.ptr_param = p.param;
  s.index = index.node();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::sts(Shared sh, Val index, Val value) {
  GPC_REQUIRE(sh.elem == value.type(), "shared store type mismatch");
  Stmt s;
  s.kind = StmtKind::StoreShared;
  s.array = sh.id;
  s.index = index.node();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::stp(Priv p, Val index, Val value) {
  GPC_REQUIRE(p.elem == value.type(), "private store type mismatch");
  Stmt s;
  s.kind = StmtKind::StorePrivate;
  s.array = p.id;
  s.index = index.node();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::atomic_add(Ptr p, Val index, Val value) {
  GPC_REQUIRE(p.elem == value.type(), "atomic type mismatch");
  Stmt s;
  s.kind = StmtKind::AtomicAddGlobal;
  s.ptr_param = p.param;
  s.index = index.node();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::atomic_add_shared(Shared sh, Val index, Val value) {
  GPC_REQUIRE(sh.elem == value.type(), "atomic type mismatch");
  Stmt s;
  s.kind = StmtKind::AtomicAddShared;
  s.array = sh.id;
  s.index = index.node();
  s.value = value.node();
  push_stmt(std::move(s));
}

void KernelBuilder::barrier() {
  Stmt s;
  s.kind = StmtKind::Barrier;
  push_stmt(std::move(s));
}

void KernelBuilder::for_(Var v, Val lo, Val hi, Val step, Unroll unroll,
                         const std::function<void()>& body_fn) {
  GPC_REQUIRE(v.type() == Type::S32, "loop variable must be s32");
  Stmt s;
  s.kind = StmtKind::For;
  s.loop_var = v.id();
  s.lo = lo.node();
  s.hi = hi.node();
  s.step = step.node();
  s.unroll = unroll;
  block_stack_.push_back(&s.body);
  body_fn();
  block_stack_.pop_back();
  push_stmt(std::move(s));
}

void KernelBuilder::for_(Var v, std::int64_t lo, Val hi, std::int64_t step,
                         Unroll unroll, const std::function<void()>& body_fn) {
  for_(v, c32(lo), hi, c32(step), unroll, body_fn);
}

void KernelBuilder::while_(Val cond, const std::function<void()>& body_fn) {
  GPC_REQUIRE(cond.type() == Type::Pred, "while condition must be a pred");
  Stmt s;
  s.kind = StmtKind::While;
  s.cond = cond.node();
  block_stack_.push_back(&s.body);
  body_fn();
  block_stack_.pop_back();
  push_stmt(std::move(s));
}

void KernelBuilder::if_(Val cond, const std::function<void()>& then_fn) {
  GPC_REQUIRE(cond.type() == Type::Pred, "if condition must be a pred");
  Stmt s;
  s.kind = StmtKind::If;
  s.cond = cond.node();
  block_stack_.push_back(&s.body);
  then_fn();
  block_stack_.pop_back();
  push_stmt(std::move(s));
}

void KernelBuilder::if_else(Val cond, const std::function<void()>& then_fn,
                            const std::function<void()>& else_fn) {
  GPC_REQUIRE(cond.type() == Type::Pred, "if condition must be a pred");
  Stmt s;
  s.kind = StmtKind::If;
  s.cond = cond.node();
  block_stack_.push_back(&s.body);
  then_fn();
  block_stack_.pop_back();
  block_stack_.push_back(&s.else_body);
  else_fn();
  block_stack_.pop_back();
  push_stmt(std::move(s));
}

KernelDef KernelBuilder::finish() {
  GPC_CHECK(!finished_, "finish called twice");
  GPC_CHECK(block_stack_.size() == 1, "unbalanced block nesting");
  finished_ = true;
  return std::move(def_);
}

// ---- Var ----

Var::operator Val() const {
  GPC_CHECK(kb_ != nullptr, "reading an uninitialised Var handle");
  Expr e;
  e.kind = ExprKind::VarRef;
  e.type = type_;
  e.var = id_;
  return kb_->make(e);
}

// ---- Operators ----

namespace {
KernelBuilder* kb_of(Val a, Val b) {
  KernelBuilder* kb = a.builder() != nullptr ? a.builder() : b.builder();
  GPC_CHECK(kb != nullptr, "operator on detached Vals");
  return kb;
}
}  // namespace

Val operator+(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Add, a, b); }
Val operator-(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Sub, a, b); }
Val operator*(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Mul, a, b); }
Val operator/(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Div, a, b); }
Val operator%(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Rem, a, b); }
Val operator&(Val a, Val b) { return kb_of(a, b)->binary(BinOp::And, a, b); }
Val operator|(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Or, a, b); }
Val operator^(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Xor, a, b); }
Val operator<<(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Shl, a, b); }
Val operator>>(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Shr, a, b); }
Val operator<(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Lt, a, b); }
Val operator<=(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Le, a, b); }
Val operator>(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Gt, a, b); }
Val operator>=(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Ge, a, b); }
Val operator==(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Eq, a, b); }
Val operator!=(Val a, Val b) { return kb_of(a, b)->binary(BinOp::Ne, a, b); }
Val operator-(Val a) { return a.builder()->unary(UnOp::Neg, a); }

Val lit_like(Val like, double v) {
  KernelBuilder* kb = like.builder();
  GPC_CHECK(kb != nullptr, "lit_like on detached Val");
  switch (like.type()) {
    case Type::F32:
    case Type::F64:
      return kb->cf(v);
    case Type::U32:
      return kb->cu32(static_cast<std::uint32_t>(v));
    default:
      return kb->c32(static_cast<std::int64_t>(v));
  }
}

#define GPC_MIXED_OP(OP)                                        \
  Val operator OP(Val a, std::int64_t b) {                      \
    return a OP lit_like(a, static_cast<double>(b));            \
  }
#define GPC_MIXED_OP_COMM(OP)                                   \
  GPC_MIXED_OP(OP)                                              \
  Val operator OP(std::int64_t a, Val b) {                      \
    return lit_like(b, static_cast<double>(a)) OP b;            \
  }

GPC_MIXED_OP_COMM(+)
GPC_MIXED_OP(*)
Val operator*(std::int64_t a, Val b) { return b * a; }
Val operator-(Val a, std::int64_t b) {
  return a - lit_like(a, static_cast<double>(b));
}
Val operator-(std::int64_t a, Val b) {
  return lit_like(b, static_cast<double>(a)) - b;
}
GPC_MIXED_OP(/)
GPC_MIXED_OP(%)
GPC_MIXED_OP(&)
GPC_MIXED_OP(|)
GPC_MIXED_OP(^)
GPC_MIXED_OP(<<)
GPC_MIXED_OP(>>)
GPC_MIXED_OP(<)
GPC_MIXED_OP(<=)
GPC_MIXED_OP(>)
GPC_MIXED_OP(>=)
GPC_MIXED_OP(==)
GPC_MIXED_OP(!=)

#undef GPC_MIXED_OP
#undef GPC_MIXED_OP_COMM

}  // namespace gpc::kernel
