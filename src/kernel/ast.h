// The "native kernel" language: a small typed AST in which all 16 benchmarks
// express their device kernels exactly once. The paper's central experimental
// control — "the two implementations use the same native kernel" — is made
// literal here: one KernelDef object is compiled by both the CUDA and the
// OpenCL front-end (src/compiler), which differ only in code-generation
// maturity, exactly the axis §IV-B.4 and Table V of the paper analyse.
//
// Per-toolchain artefacts that the paper treats as part of the *source* are
// annotated on the AST:
//   * Unroll pragmas carry independent CUDA/OpenCL factors, because in the
//     paper's FDTD study the CUDA source has `#pragma unroll` at point (a)
//     while the OpenCL source does not (Fig. 6/7).
//   * Texture fetches are CUDA-only constructs; kernels that use them (MD,
//     SPMV) provide a plain-load fallback expression that the OpenCL
//     front-end (or a "texture removed" variant) lowers instead (Fig. 4/5).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/types.h"

namespace gpc::kernel {

struct Expr;
using ExprP = std::shared_ptr<const Expr>;

enum class ExprKind : std::uint8_t {
  ConstInt,
  ConstFloat,
  ParamRef,   // scalar kernel parameter
  VarRef,     // mutable local variable
  Builtin,    // tid/ctaid/... (see BuiltinId)
  Binary,
  Unary,
  Select,     // cond ? a : b
  Cast,
  LoadGlobal,   // ptr_param[index]
  LoadShared,   // shared_array[index]
  LoadConst,    // const_array[index]
  LoadPrivate,  // private per-thread array[index]
  TexFetch,     // CUDA texture read; `a` is the index, `b` the fallback
                // plain-load expression used when textures are unavailable
};

enum class BuiltinId : std::uint8_t {
  TidX, TidY, TidZ,
  NTidX, NTidY, NTidZ,
  CtaIdX, CtaIdY, CtaIdZ,
  NCtaIdX, NCtaIdY, NCtaIdZ,
  GlobalIdX, GlobalIdY,  // convenience: ctaid*ntid+tid
  LaneId,                // tid.x % hardware warp size
};

enum class BinOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem, Min, Max,
  And, Or, Xor, Shl, Shr,
  Lt, Le, Gt, Ge, Eq, Ne,  // produce Pred
};

enum class UnOp : std::uint8_t {
  Neg, Not, Abs, Sqrt, Rsqrt, Rcp, Sin, Cos, Exp2, Log2,
};

struct Expr {
  ExprKind kind = ExprKind::ConstInt;
  ir::Type type = ir::Type::S32;

  std::int64_t ival = 0;  // ConstInt
  double fval = 0.0;      // ConstFloat
  int param = -1;         // ParamRef / LoadGlobal pointer param
  int var = -1;           // VarRef
  int array = -1;         // Load{Shared,Const,Private} array id
  int tex_unit = -1;      // TexFetch
  BuiltinId builtin = BuiltinId::TidX;
  BinOp bop = BinOp::Add;
  UnOp uop = UnOp::Neg;
  ExprP a, b, c;  // children: Binary(a,b) Unary(a) Select(a=cond,b,c)
                  // Cast(a) Load*(a=index) TexFetch(a=index, b=fallback)
};

enum class StmtKind : std::uint8_t {
  Assign,        // var = value
  StoreGlobal,   // ptr_param[index] = value
  StoreShared,
  StorePrivate,
  AtomicAddGlobal,
  AtomicAddShared,
  Barrier,
  For,
  While,
  If,
};

/// Loop-unroll pragma with per-toolchain factors, mirroring the paper's FDTD
/// source difference. 0 = no pragma; -1 = `#pragma unroll` (full);
/// k>1 = `#pragma unroll k`.
struct Unroll {
  int cuda_factor = 0;
  int opencl_factor = 0;
  static Unroll none() { return {0, 0}; }
  static Unroll both(int f) { return {f, f}; }
  static Unroll cuda_only(int f) { return {f, 0}; }
  static Unroll opencl_only(int f) { return {0, f}; }
};

struct Stmt {
  StmtKind kind = StmtKind::Barrier;

  // Assign / Store* / AtomicAdd*
  int var = -1;        // Assign target
  int ptr_param = -1;  // StoreGlobal/AtomicAddGlobal pointer param
  int array = -1;      // StoreShared/StorePrivate/AtomicAddShared array id
  ExprP index;
  ExprP value;

  // For
  int loop_var = -1;
  ExprP lo, hi, step;  // for (v = lo; v < hi; v += step)
  Unroll unroll;

  // While / If
  ExprP cond;

  std::vector<Stmt> body;       // For/While body, If then-branch
  std::vector<Stmt> else_body;  // If else-branch
};

struct VarDecl {
  std::string name;
  ir::Type type = ir::Type::S32;
};

struct SharedArrayDecl {
  std::string name;
  ir::Type elem = ir::Type::F32;
  int count = 0;
};

struct ConstArrayDecl {
  std::string name;
  ir::Type elem = ir::Type::F32;
  std::vector<std::uint8_t> data;  // raw initialiser, count*size_of(elem)
  int count = 0;
};

struct PrivateArrayDecl {
  std::string name;
  ir::Type elem = ir::Type::F32;
  int count = 0;
};

struct TextureDecl {
  std::string name;
  ir::Type elem = ir::Type::F32;
};

struct ParamDecl {
  std::string name;
  ir::Type type = ir::Type::U32;
  bool is_pointer = false;
  ir::Type pointee = ir::Type::F32;
};

/// A complete device kernel, front-end independent.
struct KernelDef {
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<VarDecl> vars;
  std::vector<SharedArrayDecl> shared_arrays;
  std::vector<ConstArrayDecl> const_arrays;
  std::vector<PrivateArrayDecl> private_arrays;
  std::vector<TextureDecl> textures;
  std::vector<Stmt> body;
};

}  // namespace gpc::kernel
