#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.h"

namespace gpc {

namespace {

// Slot of the current thread: 0 for any non-worker thread, 1..N inside a
// worker. Nested parallel_for calls from inside a body run inline under
// this slot (parallelising them would deadlock the fixed-size pool).
thread_local std::size_t tls_slot = 0;
thread_local bool tls_in_parallel = false;
// Cancellation flag of the batch the current thread is executing, so
// ThreadPool::cancelled() can be polled from inside long-running bodies.
thread_local const std::atomic<bool>* tls_cancel = nullptr;

}  // namespace

struct ThreadPool::Batch {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Set by the first chunk that throws. Claimed-but-unstarted chunks are
  // then skipped (their indices never run), and bodies may poll it via
  // ThreadPool::cancelled() to bail out of long iterations early.
  std::atomic<bool> cancelled{false};
  std::size_t chunks = 0;
  std::size_t chunk_size = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // With one worker everything runs inline in parallel_for; do not spawn.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Batch& b, std::size_t slot) {
  const std::atomic<bool>* prev_cancel = tls_cancel;
  tls_cancel = &b.cancelled;
  for (;;) {
    const std::size_t c = b.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= b.chunks) break;
    const std::size_t begin = c * b.chunk_size;
    const std::size_t end = std::min(b.count, begin + b.chunk_size);
    // A chunk claimed after a sibling failed is skipped entirely, and the
    // flag is rechecked between indices so a fault in block 3 of 10,000
    // does not simulate the other 9,997 before rethrowing. Skipped chunks
    // still count towards `done` so the caller's wait completes.
    if (!b.cancelled.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = begin; i < end; ++i) {
          if (b.cancelled.load(std::memory_order_relaxed)) break;
          (*b.body)(slot, i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(b.error_mutex);
          if (!b.first_error) b.first_error = std::current_exception();
        }
        b.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    if (b.done.fetch_add(1) + 1 == b.chunks) {
      std::lock_guard<std::mutex> lock(b.done_mutex);
      b.done_cv.notify_all();
    }
  }
  tls_cancel = prev_cancel;
}

bool ThreadPool::cancelled() {
  return tls_cancel != nullptr &&
         tls_cancel->load(std::memory_order_relaxed);
}

void ThreadPool::worker_loop(std::size_t slot) {
  tls_slot = slot;
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> b;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      b = batch_;
    }
    if (!b) continue;
    tls_in_parallel = true;
    run_chunks(*b, slot);
    tls_in_parallel = false;
  }
}

void ThreadPool::parallel_for_slotted(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t nworkers = workers_.size();
  // Inline when there is no one to share with, the batch is trivially small,
  // or we are already inside a body on this pool (nested calls must not wait
  // on workers that may be executing us).
  if (nworkers == 0 || count == 1 || tls_in_parallel) {
    for (std::size_t i = 0; i < count; ++i) body(tls_slot, i);
    return;
  }

  // The batch is owned by a shared_ptr so a worker that observes it late
  // (after the caller returned and published a newer generation) still holds
  // a live object; it then finds all chunks claimed and moves on.
  auto batch = std::make_shared<Batch>();
  batch->chunks = std::min(count, (nworkers + 1) * 4);
  batch->chunk_size = (count + batch->chunks - 1) / batch->chunks;
  batch->count = count;
  batch->body = &body;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  cv_.notify_all();

  tls_in_parallel = true;
  run_chunks(*batch, /*slot=*/0);  // the caller participates as slot 0
  tls_in_parallel = false;

  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock,
                        [&] { return batch->done.load() >= batch->chunks; });
  }
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_slotted(count,
                       [&body](std::size_t, std::size_t i) { body(i); });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    if (const char* e = std::getenv("GPC_SIM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(e, &end, 10);
      if (end != e && *end == '\0' && v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return std::size_t{0};  // 0 = hardware concurrency
  }());
  return pool;
}

}  // namespace gpc
