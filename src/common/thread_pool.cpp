#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/error.h"

namespace gpc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // With one worker everything runs inline in parallel_for; do not spawn.
  if (threads == 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = workers_.size();
  if (workers == 0 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Chunked dynamic scheduling. Shared state is owned by a shared_ptr so
  // late-dequeued worker tasks outliving this call never touch a dead stack
  // frame; the body pointer is only dereferenced for chunk indices below
  // `chunks`, all of which complete before the caller returns.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t chunks = 0;
    std::size_t chunk_size = 0;
    std::size_t count = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::condition_variable done_cv;
    std::mutex done_mutex;
  };
  auto batch = std::make_shared<Batch>();
  batch->chunks = std::min(count, workers * 4);
  batch->chunk_size = (count + batch->chunks - 1) / batch->chunks;
  batch->count = count;
  batch->body = &body;

  auto run_chunks = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const std::size_t c = b->next.fetch_add(1);
      if (c >= b->chunks) break;
      const std::size_t begin = c * b->chunk_size;
      const std::size_t end = std::min(b->count, begin + b->chunk_size);
      try {
        for (std::size_t i = begin; i < end; ++i) (*b->body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(b->error_mutex);
        if (!b->first_error) b->first_error = std::current_exception();
      }
      if (b->done.fetch_add(1) + 1 == b->chunks) {
        std::lock_guard<std::mutex> lock(b->done_mutex);
        b->done_cv.notify_all();
      }
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < workers; ++i) {
      tasks_.emplace([batch, run_chunks] { run_chunks(batch); });
    }
  }
  cv_.notify_all();
  run_chunks(batch);  // The caller participates too.

  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock,
                        [&] { return batch->done.load() >= batch->chunks; });
  }
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gpc
