// Error handling primitives shared by the whole library.
//
// Internally the library throws gpc::Error (invariant violations, bad API
// usage). The public OpenCL-like API (src/ocl) converts these into error
// codes at the boundary, mirroring how a real OpenCL implementation reports
// CL_OUT_OF_RESOURCES and friends instead of unwinding the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace gpc {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

/// A precondition supplied by the caller does not hold (bad argument,
/// out-of-range size, mismatched types).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(std::string what) : Error(std::move(what)) {}
};

/// The simulated device cannot satisfy a resource request (registers,
/// shared/local memory, work-group size). The ocl API maps this to
/// CL_OUT_OF_RESOURCES.
class OutOfResources : public Error {
 public:
  explicit OutOfResources(std::string what) : Error(std::move(what)) {}
};

/// A kernel performed an illegal operation at simulated run time
/// (out-of-bounds access, misaligned access, executing past the end).
class DeviceFault : public Error {
 public:
  explicit DeviceFault(std::string what) : Error(std::move(what)) {}
};

/// A transient host-side failure (memcpy hiccup, flaky program build) that
/// is expected to succeed if retried. Only ever raised by the fault-injection
/// layer (src/resil) or runtime conditions that are genuinely retryable; the
/// resilience policy retries these with backoff instead of aborting.
class TransientFault : public Error {
 public:
  explicit TransientFault(std::string what) : Error(std::move(what)) {}
};

/// An internal invariant of the library broke; always a bug in this code.
class InternalError : public Error {
 public:
  explicit InternalError(std::string what) : Error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

/// GPC_CHECK(cond) / GPC_CHECK(cond, "context"): internal invariant check,
/// throws InternalError. Enabled in all build types: the simulator is a
/// correctness tool, and a silent invariant break would invalidate results.
#define GPC_CHECK(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::gpc::detail::throw_check_failure("GPC_CHECK", #cond, __FILE__,   \
                                         __LINE__, ::std::string{__VA_ARGS__}); \
    }                                                                    \
  } while (false)

/// GPC_REQUIRE(cond, msg): caller-facing precondition, throws InvalidArgument.
#define GPC_REQUIRE(cond, msg)                         \
  do {                                                 \
    if (!(cond)) {                                     \
      throw ::gpc::InvalidArgument(::std::string{msg}); \
    }                                                  \
  } while (false)

}  // namespace gpc
