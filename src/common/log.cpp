#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gpc::log {
namespace {

Level parse_env() {
  const char* env = std::getenv("GPC_LOG");
  if (env == nullptr) return Level::Warn;
  if (std::strcmp(env, "debug") == 0) return Level::Debug;
  if (std::strcmp(env, "info") == 0) return Level::Info;
  if (std::strcmp(env, "warn") == 0) return Level::Warn;
  if (std::strcmp(env, "error") == 0) return Level::Error;
  if (std::strcmp(env, "off") == 0) return Level::Off;
  return Level::Warn;
}

Level g_threshold = parse_env();
std::mutex g_mutex;

const char* prefix(Level level) {
  switch (level) {
    case Level::Debug: return "[debug]";
    case Level::Info:  return "[info ]";
    case Level::Warn:  return "[warn ]";
    case Level::Error: return "[error]";
    case Level::Off:   return "[off  ]";
  }
  return "[?]";
}

}  // namespace

Level threshold() { return g_threshold; }
void set_threshold(Level level) { g_threshold = level; }

void emit(Level level, const std::string& message) {
  if (level < g_threshold) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s %s\n", prefix(level), message.c_str());
}

}  // namespace gpc::log
