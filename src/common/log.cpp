#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gpc::log {
namespace {

Level parse_env() {
  const char* env = std::getenv("GPC_LOG");
  if (env == nullptr) return Level::Warn;
  if (std::strcmp(env, "debug") == 0) return Level::Debug;
  if (std::strcmp(env, "info") == 0) return Level::Info;
  if (std::strcmp(env, "warn") == 0) return Level::Warn;
  if (std::strcmp(env, "error") == 0) return Level::Error;
  if (std::strcmp(env, "off") == 0) return Level::Off;
  return Level::Warn;
}

std::atomic<Level> g_threshold{parse_env()};
std::mutex g_mutex;  // serializes line emission only, never held in user code

const char* prefix(Level level) {
  switch (level) {
    case Level::Debug: return "[debug]";
    case Level::Info:  return "[info ]";
    case Level::Warn:  return "[warn ]";
    case Level::Error: return "[error]";
    case Level::Off:   return "[off  ]";
  }
  return "[?]";
}

}  // namespace

Level threshold() { return g_threshold.load(std::memory_order_relaxed); }
void set_threshold(Level level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

int thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void emit(Level level, const std::string& message) {
  if (level < threshold()) return;
  const std::int64_t t = now_ns();
  const int tid = thread_id();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[+%lld.%06llds T%02d] %s %s\n",
               static_cast<long long>(t / 1000000000),
               static_cast<long long>(t % 1000000000) / 1000, tid,
               prefix(level), message.c_str());
}

}  // namespace gpc::log
