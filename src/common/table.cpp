#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace gpc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GPC_REQUIRE(!headers_.empty(), "TextTable needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GPC_REQUIRE(cells.size() == headers_.size(),
              "TextTable row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

}  // namespace gpc
