// A small fixed-size thread pool with a parallel_for helper.
//
// The simulator executes independent work-groups ("thread blocks") across host
// threads; each block owns its shared memory and statistics accumulator, so
// the only cross-thread state is the simulated global memory, which kernels
// access data-race-free by construction (and through atomic_ref in the
// interpreter for the benign-race cases BFS relies on).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gpc {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs body(i) for every i in [0, count). Blocks until all complete.
  /// Work is distributed in contiguous chunks to keep per-task overhead low.
  /// If the pool has a single worker (or count is small) the calling thread
  /// executes everything inline.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide pool, sized to the machine. Intended for simulator use so
  /// every Device shares one set of workers.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace gpc
