// A small fixed-size thread pool with parallel_for helpers.
//
// The simulator executes independent work-groups ("thread blocks") across host
// threads; each block owns its shared memory and statistics accumulator, so
// the only cross-thread state is the simulated global memory, which kernels
// access data-race-free by construction (and through atomic_ref in the
// interpreter for the benign-race cases BFS relies on).
//
// Scheduling: a parallel_for publishes ONE batch descriptor (a shared_ptr
// swapped under the pool mutex and announced by a generation bump) instead of
// queueing a std::function per worker. Workers then claim contiguous index
// chunks off the batch with a single atomic fetch_add each — no allocation,
// no queue traffic, no per-chunk locking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpc {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Number of distinct `slot` values parallel_for_slotted can hand out:
  /// one per worker plus one for the calling thread.
  std::size_t slots() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, count). Blocks until all complete.
  /// Work is distributed in contiguous chunks to keep per-task overhead low.
  /// If the pool has no workers (or count is 1) the calling thread executes
  /// everything inline.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Like parallel_for, but body also receives the executing thread's slot
  /// index in [0, slots()): the caller runs as slot 0, workers as 1..size().
  /// At most one thread runs with a given slot at a time, so callers can
  /// keep contention-free per-slot accumulators and merge them afterwards.
  /// Nested calls from inside a body run inline under the caller's slot.
  void parallel_for_slotted(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// Process-wide pool, sized to the machine, or to $GPC_SIM_THREADS when
  /// that is set to a positive integer (see README "Simulator threads").
  static ThreadPool& shared();

  /// True when the batch the calling thread is currently executing has been
  /// cancelled (a sibling chunk threw). Long-running bodies can poll this and
  /// return early; the first exception is still rethrown to the caller of
  /// parallel_for. Always false outside a parallel_for body.
  static bool cancelled();

 private:
  struct Batch;

  void worker_loop(std::size_t slot);
  static void run_chunks(Batch& b, std::size_t slot);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::shared_ptr<Batch> batch_;   // currently published batch
  std::uint64_t generation_ = 0;   // bumped on each publication
  bool stop_ = false;
};

}  // namespace gpc
