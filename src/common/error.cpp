#include "common/error.h"

#include <sstream>

namespace gpc::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace gpc::detail
