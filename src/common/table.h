// Fixed-width plain-text table printer used by the bench harness to emit the
// paper's tables and figure data series in a uniform, diffable format.
#pragma once

#include <string>
#include <vector>

namespace gpc {

class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` significant-looking
  /// decimals, trimming trailing zeros is deliberately NOT done so columns
  /// stay aligned.
  static std::string num(double v, int precision = 3);

  /// Renders the table with a header rule, column padding, and a title line.
  std::string to_string(const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpc
