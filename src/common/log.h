// Minimal leveled logger. Quiet by default (Warn); benches raise verbosity
// with --verbose or GPC_LOG=info|debug.
#pragma once

#include <sstream>
#include <string>

namespace gpc::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Reads GPC_LOG on first use.
Level threshold();
void set_threshold(Level level);

/// Emits one line to stderr with a level prefix.
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { emit(level_, os_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline bool enabled(Level level) { return level >= threshold(); }

}  // namespace gpc::log

#define GPC_LOG(level)                                   \
  if (!::gpc::log::enabled(::gpc::log::Level::level)) {} \
  else ::gpc::log::detail::LineStream(::gpc::log::Level::level)
