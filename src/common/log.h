// Minimal leveled logger. Quiet by default (Warn); benches raise verbosity
// with --verbose or GPC_LOG=info|debug.
//
// Emission is serialized (one lock per line, never held across user code) and
// every line carries a monotonic timestamp plus a dense per-thread id, so
// interleaved output from ThreadPool workers stays attributable:
//
//   [+0.014562s T03] [info ] message
//
// The clock and thread-id helpers are shared with the profiler (gpc::prof),
// which stamps its trace events from the same epoch so log lines and trace
// spans line up when viewed side by side.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace gpc::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped. Reads GPC_LOG on first use.
Level threshold();
void set_threshold(Level level);

/// Nanoseconds on the monotonic clock since the process's logging epoch (the
/// first use of the logger or profiler). Also the profiler's trace clock.
std::int64_t now_ns();

/// Dense id of the calling thread: 0 for the first thread that logs (usually
/// main), then 1, 2, ... in first-use order. Stable for a thread's lifetime.
int thread_id();

/// Emits one line to stderr with a timestamp/thread-id/level prefix.
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level level) : level_(level) {}
  ~LineStream() { emit(level_, os_.str()); }
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;

  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

inline bool enabled(Level level) { return level >= threshold(); }

}  // namespace gpc::log

#define GPC_LOG(level)                                   \
  if (!::gpc::log::enabled(::gpc::log::Level::level)) {} \
  else ::gpc::log::detail::LineStream(::gpc::log::Level::level)
