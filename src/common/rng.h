// Deterministic random number generation for workload generators.
//
// All benchmarks must be reproducible run-to-run, so they take a Rng seeded
// with a fixed constant instead of std::random_device. SplitMix64 is used as
// the engine: tiny, fast, and statistically adequate for workload synthesis.
#pragma once

#include <cstdint>

namespace gpc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly random bits (SplitMix64 step).
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(next_u32()) *
                                       bound) >> 32);
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gpc
