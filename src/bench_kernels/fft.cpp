// Batched 512-point complex FFT (SHOC "FFT", Table II). One transform per
// work-group: Sande-Tukey decimation-in-frequency radix-2 over shared
// memory, twiddles computed at run time with sin/cos, bit-reversed output
// permutation built from shift/mask arithmetic.
//
// This "forward" kernel is the subject of the paper's Table V: compiled
// through both front-ends, the OpenCL PTX carries the software sin/cos
// polynomial (arithmetic + logic/shift + setp/selp inflation, literal pool
// in the constant bank) while CUDA maps the twiddles onto SFU instructions
// and CSEs the index math — bench/table05_ptx_stats regenerates the
// comparison.
#include <cmath>
#include <complex>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace {
constexpr int kFftN = 512;
constexpr int kFftThreads = 64;
constexpr int kFftLog2N = 9;
}  // namespace

namespace kernels {

KernelDef fft_forward();

KernelDef fft_forward() {
  KernelBuilder kb("fft512_forward");
  auto re_in = kb.ptr_param("re_in", ir::Type::F32);
  auto im_in = kb.ptr_param("im_in", ir::Type::F32);
  auto re_out = kb.ptr_param("re_out", ir::Type::F32);
  auto im_out = kb.ptr_param("im_out", ir::Type::F32);
  auto sr = kb.shared_array("sr", ir::Type::F32, kFftN);
  auto si = kb.shared_array("si", ir::Type::F32, kFftN);

  Val tid = kb.tid_x();
  Val base = kb.ctaid_x() * kFftN;

  Var m = kb.var_s32("m");
  kb.for_(m, 0, kb.c32(kFftN / kFftThreads), 1, Unroll::both(-1), [&] {
    Val idx = tid + Val(m) * kFftThreads;
    kb.sts(sr, idx, kb.ld(re_in, base + idx));
    kb.sts(si, idx, kb.ld(im_in, base + idx));
  });
  kb.barrier();

  Var span = kb.var_s32("span");
  Var ar = kb.var_f32("ar");
  Var ai = kb.var_f32("ai");
  Var br = kb.var_f32("br");
  Var bi = kb.var_f32("bi");
  Var tr = kb.var_f32("tr");
  Var ti = kb.var_f32("ti");
  Var wr = kb.var_f32("wr");
  Var wi = kb.var_f32("wi");
  Var i0 = kb.var_s32("i0");
  Var i1 = kb.var_s32("i1");

  kb.set(span, kb.c32(kFftN / 2));
  kb.while_(Val(span) > 0, [&] {
    Var pm = kb.var_s32("pm");
    // 256 butterflies per stage, 4 per thread (pragma'd in both sources).
    kb.for_(pm, 0, kb.c32(kFftN / 2 / kFftThreads), 1, Unroll::both(-1), [&] {
      Val p = tid + Val(pm) * kFftThreads;
      Val g = p / Val(span);
      Val rr = p % Val(span);
      kb.set(i0, g * (2 * Val(span)) + rr);
      kb.set(i1, Val(i0) + Val(span));
      kb.set(ar, kb.lds(sr, Val(i0)));
      kb.set(ai, kb.lds(si, Val(i0)));
      kb.set(br, kb.lds(sr, Val(i1)));
      kb.set(bi, kb.lds(si, Val(i1)));
      kb.sts(sr, Val(i0), Val(ar) + Val(br));
      kb.sts(si, Val(i0), Val(ai) + Val(bi));
      kb.set(tr, Val(ar) - Val(br));
      kb.set(ti, Val(ai) - Val(bi));
      // W = exp(-i*pi*r/span): run-time twiddle, the Table V divergence.
      Val ang = kb.cf(-3.14159265358979) * kb.cast(rr, ir::Type::F32) /
                kb.cast(Val(span), ir::Type::F32);
      kb.set(wr, kb.cos_(ang));
      kb.set(wi, kb.sin_(ang));
      kb.sts(sr, Val(i1), Val(tr) * Val(wr) - Val(ti) * Val(wi));
      kb.sts(si, Val(i1), Val(tr) * Val(wi) + Val(ti) * Val(wr));
    });
    kb.barrier();
    kb.set(span, Val(span) >> 1);
  });

  // Bit-reversed write-back; the reversal is pure shift/mask arithmetic.
  Var rv = kb.var_s32("rv");
  Var bbit = kb.var_s32("bbit");
  Var idxv = kb.var_s32("idxv");
  kb.for_(m, 0, kb.c32(kFftN / kFftThreads), 1, Unroll::both(-1), [&] {
    kb.set(idxv, tid + Val(m) * kFftThreads);
    kb.set(rv, kb.c32(0));
    kb.for_(bbit, 0, kb.c32(kFftLog2N), 1, Unroll::both(-1), [&] {
      kb.set(rv, (Val(rv) << 1) | ((Val(idxv) >> Val(bbit)) & 1));
    });
    kb.st(re_out, base + Val(rv), kb.lds(sr, Val(idxv)));
    kb.st(im_out, base + Val(rv), kb.lds(si, Val(idxv)));
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

void dft_reference(const std::vector<float>& re, const std::vector<float>& im,
                   int offset, std::vector<std::complex<double>>* out) {
  out->assign(kFftN, {0, 0});
  for (int k = 0; k < kFftN; ++k) {
    std::complex<double> acc{0, 0};
    for (int n = 0; n < kFftN; ++n) {
      const double ang = -2.0 * M_PI * k * n / kFftN;
      acc += std::complex<double>(re[offset + n], im[offset + n]) *
             std::complex<double>(std::cos(ang), std::sin(ang));
    }
    (*out)[k] = acc;
  }
}

class FftBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "FFT"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Spectral Methods"; }
  std::string description() const override {
    return "Fast Fourier Transform";
  }
  Metric metric() const override { return Metric::GFlops; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int batch = std::max(8, static_cast<int>(64 * opts.scale));
    const int n = batch * kFftN;

    std::vector<float> re(n), im(n);
    Rng rng(47);
    for (int i = 0; i < n; ++i) {
      re[i] = rng.next_float(-1.0f, 1.0f);
      im[i] = rng.next_float(-1.0f, 1.0f);
    }
    const auto d_re_in = s.upload<float>(re);
    const auto d_im_in = s.upload<float>(im);
    const auto d_re_out = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto d_im_out = s.alloc(static_cast<std::size_t>(n) * 4);

    auto ck = s.compile(kernels::fft_forward());
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(d_re_in), sim::KernelArg::ptr(d_im_in),
        sim::KernelArg::ptr(d_re_out), sim::KernelArg::ptr(d_im_out)};
    auto lr = s.launch(ck, {batch, 1, 1}, {kFftThreads, 1, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> gre(n), gim(n);
    s.download<float>(d_re_out, gre);
    s.download<float>(d_im_out, gim);

    // Verify the first transforms against a double-precision DFT.
    r->correct = true;
    for (int b = 0; b < std::min(batch, 3) && r->correct; ++b) {
      std::vector<std::complex<double>> want;
      dft_reference(re, im, b * kFftN, &want);
      for (int k = 0; k < kFftN; ++k) {
        const double wr = want[k].real(), wi = want[k].imag();
        const double tol = 1e-2 * std::max(1.0, std::abs(wr) + std::abs(wi));
        if (std::abs(gre[b * kFftN + k] - wr) > tol ||
            std::abs(gim[b * kFftN + k] - wi) > tol) {
          r->correct = false;
          break;
        }
      }
    }

    const double flops = 5.0 * kFftN * kFftLog2N * batch;
    r->value = flops / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_fft_benchmark() {
  static const FftBenchmark b;
  return &b;
}

}  // namespace gpc::bench
