// Sorting networks (NVIDIA SDK "STNW", Table II): bitonic sort of key/value
// pairs. Large (k, j) stages run as global compare-exchange kernels; once
// j fits inside a block the remaining stages of that k run in one
// shared-memory kernel. The shared kernel stages keys AND values twice
// (double-buffered), which is what exhausts the Cell/BE local store
// (Table VI "ABT").
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef sortnw_global_step() {
  KernelBuilder kb("bitonic_global_step");
  auto keys = kb.ptr_param("keys", ir::Type::S32);
  auto vals = kb.ptr_param("vals", ir::Type::S32);
  Val j = kb.s32_param("j");
  Val k = kb.s32_param("k");
  Val gid = kb.global_id_x();

  Val ixj = gid ^ j;
  Var ka = kb.var_s32("ka");
  Var kc = kb.var_s32("kc");
  Var va = kb.var_s32("va");
  Var vc = kb.var_s32("vc");
  kb.if_(ixj > gid, [&] {
    kb.set(ka, kb.ld(keys, gid));
    kb.set(kc, kb.ld(keys, ixj));
    Val ascending = (gid & k) == 0;
    Val should_swap =
        kb.select(ascending, Val(kc) < Val(ka), Val(ka) < Val(kc));
    kb.if_(should_swap, [&] {
      kb.set(va, kb.ld(vals, gid));
      kb.set(vc, kb.ld(vals, ixj));
      kb.st(keys, gid, kc);
      kb.st(keys, ixj, ka);
      kb.st(vals, gid, vc);
      kb.st(vals, ixj, va);
    });
  });
  return kb.finish();
}

KernelDef sortnw_shared(int block) {
  const int n = 2 * block;  // elements staged per block
  KernelBuilder kb("bitonic_shared_tail");
  auto keys = kb.ptr_param("keys", ir::Type::S32);
  auto vals = kb.ptr_param("vals", ir::Type::S32);
  Val j0 = kb.s32_param("j0");  // first j of the tail (j0 < n)
  Val k = kb.s32_param("k");

  auto skey = kb.shared_array("skey", ir::Type::S32, n);
  auto sval = kb.shared_array("sval", ir::Type::S32, n);
  // Double buffer, as the SDK kernel stages ping-pong style.
  auto skey2 = kb.shared_array("skey2", ir::Type::S32, n);
  auto sval2 = kb.shared_array("sval2", ir::Type::S32, n);

  Val tid = kb.tid_x();
  Val base = kb.ctaid_x() * n;
  for (int half = 0; half < 2; ++half) {
    Val li = tid + half * block;
    kb.sts(skey, li, kb.ld(keys, base + li));
    kb.sts(sval, li, kb.ld(vals, base + li));
  }
  kb.barrier();

  Var j = kb.var_s32("j");
  Var ka = kb.var_s32("ka");
  Var kc = kb.var_s32("kc");
  Var va = kb.var_s32("va");
  Var vc = kb.var_s32("vc");
  Var pi = kb.var_s32("pi");
  Var pp = kb.var_s32("pp");
  kb.set(j, j0);
  kb.while_(Val(j) > 0, [&] {
    // Each thread handles one compare-exchange pair per sub-stage.
    kb.set(pi, 2 * tid - (tid & (Val(j) - 1)));
    kb.set(pp, Val(pi) + Val(j));
    Val gi = base + Val(pi);  // global index decides the sort direction
    kb.set(ka, kb.lds(skey, Val(pi)));
    kb.set(kc, kb.lds(skey, Val(pp)));
    Val ascending = (gi & k) == 0;
    Val should_swap =
        kb.select(ascending, Val(kc) < Val(ka), Val(ka) < Val(kc));
    kb.if_(should_swap, [&] {
      kb.set(va, kb.lds(sval, Val(pi)));
      kb.set(vc, kb.lds(sval, Val(pp)));
      kb.sts(skey, Val(pi), kc);
      kb.sts(skey, Val(pp), ka);
      kb.sts(sval, Val(pi), vc);
      kb.sts(sval, Val(pp), va);
    });
    kb.barrier();
    kb.set(j, Val(j) >> 1);
  });

  // Stage through the second buffer before the coalesced write-back.
  for (int half = 0; half < 2; ++half) {
    Val li = tid + half * block;
    kb.sts(skey2, li, kb.lds(skey, li));
    kb.sts(sval2, li, kb.lds(sval, li));
  }
  kb.barrier();
  for (int half = 0; half < 2; ++half) {
    Val li = tid + half * block;
    kb.st(keys, base + li, kb.lds(skey2, li));
    kb.st(vals, base + li, kb.lds(sval2, li));
  }
  return kb.finish();
}

}  // namespace kernels

namespace {

class SortNwBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "STNW"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Sort"; }
  std::string description() const override {
    return "Use comparator networks to sort an array";
  }
  Metric metric() const override { return Metric::MElemsPerSec; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 128;
    int n = static_cast<int>(16384 * opts.scale);
    // Round to a power of two.
    int pow2 = 1;
    while (pow2 * 2 <= n) pow2 *= 2;
    n = pow2;
    const int per_block = 2 * block;

    std::vector<std::int32_t> keys(n), vals(n);
    Rng rng(29);
    for (int i = 0; i < n; ++i) {
      keys[i] = static_cast<std::int32_t>(rng.next_below(1 << 30));
      vals[i] = i;
    }
    const auto d_keys = s.upload<std::int32_t>(keys);
    const auto d_vals = s.upload<std::int32_t>(vals);

    auto k_global = s.compile(kernels::sortnw_global_step());
    auto k_shared = s.compile(kernels::sortnw_shared(block));

    sim::BlockStats agg;
    for (int k = 2; k <= n; k <<= 1) {
      int j = k >> 1;
      for (; j >= per_block; j >>= 1) {
        std::vector<sim::KernelArg> args = {
            sim::KernelArg::ptr(d_keys), sim::KernelArg::ptr(d_vals),
            sim::KernelArg::s32(j), sim::KernelArg::s32(k)};
        auto lr = s.launch(k_global, {n / block, 1, 1}, {block, 1, 1}, args);
        agg.merge(lr.stats.total);
      }
      // Remaining sub-stages fit in one shared-memory kernel.
      std::vector<sim::KernelArg> args = {
          sim::KernelArg::ptr(d_keys), sim::KernelArg::ptr(d_vals),
          sim::KernelArg::s32(j), sim::KernelArg::s32(k)};
      auto lr =
          s.launch(k_shared, {n / per_block, 1, 1}, {block, 1, 1}, args);
      agg.merge(lr.stats.total);
    }
    r->stats = agg;

    std::vector<std::int32_t> got_keys(n), got_vals(n);
    s.download<std::int32_t>(d_keys, got_keys);
    s.download<std::int32_t>(d_vals, got_vals);
    r->correct = true;
    for (int i = 0; i + 1 < n && r->correct; ++i) {
      if (got_keys[i] > got_keys[i + 1]) r->correct = false;
    }
    // Values must still pair with their keys.
    for (int i = 0; i < n && r->correct; ++i) {
      if (got_vals[i] < 0 || got_vals[i] >= n ||
          keys[got_vals[i]] != got_keys[i]) {
        r->correct = false;
      }
    }
    r->value = static_cast<double>(n) / s.kernel_seconds() / 1e6;
  }
};

}  // namespace

const Benchmark* make_sortnw_benchmark() {
  static const SortNwBenchmark b;
  return &b;
}

}  // namespace gpc::bench
