#include "bench_kernels/registry.h"

#include "common/error.h"

namespace gpc::bench {

const std::vector<const Benchmark*>& real_world_benchmarks() {
  // Table II order.
  static const std::vector<const Benchmark*> all = {
      make_bfs_benchmark(),      make_sobel_benchmark(),
      make_tranp_benchmark(),    make_reduce_benchmark(),
      make_fft_benchmark(),      make_md_benchmark(),
      make_spmv_benchmark(),     make_stencil2d_benchmark(),
      make_dxtc_benchmark(),     make_radixsort_benchmark(),
      make_scan_benchmark(),     make_sortnw_benchmark(),
      make_mxm_benchmark(),      make_fdtd_benchmark(),
  };
  return all;
}

const Benchmark& benchmark_by_name(const std::string& name) {
  for (const Benchmark* b : real_world_benchmarks()) {
    if (b->name() == name) return *b;
  }
  if (name == "DeviceMemory") return devicememory_benchmark();
  if (name == "MaxFlops") return maxflops_benchmark();
  throw InvalidArgument("unknown benchmark: " + name);
}

}  // namespace gpc::bench
