// Matrix transposition with shared memory (SELF, Table II). The shared tile
// is padded by one column to avoid bank conflicts; the `use_local=false`
// variant is the naive direct transpose, used for the §V observation that
// explicit local-memory staging *hurts* on CPU OpenCL devices where all
// memory is hardware-cached anyway.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef tranp(bool use_local, int tile) {
  KernelBuilder kb(use_local ? "transpose_shared" : "transpose_naive");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val n = kb.s32_param("n");  // square matrix edge

  Val tx = kb.tid_x();
  Val ty = kb.tid_y();

  if (!use_local) {
    Val x = kb.ctaid_x() * tile + tx;
    Val y = kb.ctaid_y() * tile + ty;
    kb.if_((x < n) & (y < n),
           [&] { kb.st(out, x * n + y, kb.ld(in, y * n + x)); });
    return kb.finish();
  }

  // Padded tile: +1 column keeps the column-wise read conflict-free.
  auto smem = kb.shared_array("tile", ir::Type::F32, tile * (tile + 1));
  Val x_in = kb.ctaid_x() * tile + tx;
  Val y_in = kb.ctaid_y() * tile + ty;
  kb.if_((x_in < n) & (y_in < n), [&] {
    kb.sts(smem, ty * (tile + 1) + tx, kb.ld(in, y_in * n + x_in));
  });
  kb.barrier();
  // Write the transposed tile with coalesced stores: output block indices
  // swap, thread roles swap inside the tile.
  Val x_out = kb.ctaid_y() * tile + tx;
  Val y_out = kb.ctaid_x() * tile + ty;
  kb.if_((x_out < n) & (y_out < n), [&] {
    kb.st(out, y_out * n + x_out, kb.lds(smem, tx * (tile + 1) + ty));
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

class TranPBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "TranP"; }
  std::string suite() const override { return "SELF"; }
  std::string dwarf() const override { return "Dense Linear Algebra"; }
  std::string description() const override {
    return "Matrix transposition with shared memory";
  }
  Metric metric() const override { return Metric::GBps; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 16;
    const int n = scaled_dim(512, opts.scale, tile);

    std::vector<float> a(static_cast<std::size_t>(n) * n);
    Rng rng(11);
    for (float& v : a) v = rng.next_float();
    const auto d_in = s.upload<float>(a);
    const auto d_out = s.alloc(a.size() * 4);

    auto ck = s.compile(kernels::tranp(opts.tranp_use_local, tile));
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_in),
                                        sim::KernelArg::ptr(d_out),
                                        sim::KernelArg::s32(n)};
    auto lr =
        s.launch(ck, {n / tile, n / tile, 1}, {tile, tile, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> got(a.size());
    s.download<float>(d_out, got);
    r->correct = true;
    for (int y = 0; y < n && r->correct; ++y) {
      for (int x = 0; x < n; ++x) {
        if (got[static_cast<std::size_t>(x) * n + y] !=
            a[static_cast<std::size_t>(y) * n + x]) {
          r->correct = false;
          break;
        }
      }
    }
    const double bytes = 2.0 * a.size() * 4;  // read + write
    r->value = bytes / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_tranp_benchmark() {
  static const TranPBenchmark b;
  return &b;
}

}  // namespace gpc::bench
