// Shared scaffolding for benchmark implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/benchmark.h"
#include "harness/session.h"
#include "kernel/builder.h"

namespace gpc::bench {

/// Base class handling the uniform failure protocol: run_impl() performs
/// the benchmark and sets value/correct; this wrapper maps resource failures
/// to "ABT" and verification failures to "FL" — the two failure spellings
/// of the paper's Table VI — and, when the resilience policy enables
/// degradation (GPC_DEGRADE / resil::set_policy_override), adds "DEG":
///
///  * A run whose session used a resilience fallback (split launch or
///    degraded execution) completed at reduced width/fidelity -> "DEG".
///  * A resource abort is retried down a work-group shrink ladder
///    (128/64/32), then once more with degraded execution allowed — this is
///    how Table VI's four Cell/BE ABTs complete as "DEG".
///  * Wrong-result runs stay quarantined as "FL" (value zeroed, excluded
///    from PR aggregates via Result::ok()); resil::counters().quarantined
///    counts them.
class BenchmarkBase : public Benchmark {
 public:
  Result run(const arch::DeviceSpec& device, arch::Toolchain tc,
             const Options& opts) const final;
  Result run_in_session(harness::DeviceSession& session,
                        const Options& opts) const final;

 protected:
  /// Must set r->value (metric units) and r->correct. Kernel time is read
  /// from the session afterwards.
  virtual void run_impl(harness::DeviceSession& session, const Options& opts,
                        Result* r) const = 0;

 private:
  /// One classified attempt on a caller-owned session (timers and device
  /// heap reset first, so repeated attempts start clean); sets
  /// *resource_abort when the failure was an OutOfResources (the only abort
  /// kind the shrink ladder can help).
  Result attempt_in(harness::DeviceSession& session, const Options& opts,
                    bool allow_degraded_exec, bool* resource_abort) const;
};

/// Element-wise comparison with mixed absolute/relative tolerance.
bool nearly_equal(std::span<const float> got, std::span<const float> want,
                  float rtol, float atol);

/// Scales a base problem dimension by sqrt(scale) (areas) or scale (linear),
/// keeping it a multiple of `multiple`.
int scaled_dim(int base, double scale, int multiple);

}  // namespace gpc::bench
