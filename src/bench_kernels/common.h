// Shared scaffolding for benchmark implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/benchmark.h"
#include "harness/session.h"
#include "kernel/builder.h"

namespace gpc::bench {

/// Base class handling the uniform failure protocol: run_impl() performs
/// the benchmark and sets value/correct; this wrapper maps resource failures
/// to "ABT" and verification failures to "FL" — the two failure spellings
/// of the paper's Table VI.
class BenchmarkBase : public Benchmark {
 public:
  Result run(const arch::DeviceSpec& device, arch::Toolchain tc,
             const Options& opts) const final;

 protected:
  /// Must set r->value (metric units) and r->correct. Kernel time is read
  /// from the session afterwards.
  virtual void run_impl(harness::DeviceSession& session, const Options& opts,
                        Result* r) const = 0;
};

/// Element-wise comparison with mixed absolute/relative tolerance.
bool nearly_equal(std::span<const float> got, std::span<const float> want,
                  float rtol, float atol);

/// Scales a base problem dimension by sqrt(scale) (areas) or scale (linear),
/// keeping it a multiple of `multiple`.
int scaled_dim(int base, double scale, int multiple);

}  // namespace gpc::bench
