// Two-dimensional nine-point stencil (SHOC, Table II). Shared-memory tiled
// with a one-cell halo; double-buffered over a fixed number of iterations.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef stencil2d(int tile) {
  KernelBuilder kb("stencil2d_9pt");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val w = kb.s32_param("width");
  Val h = kb.s32_param("height");
  Val c_center = kb.f32_param("w_center");
  Val c_adj = kb.f32_param("w_adjacent");
  Val c_diag = kb.f32_param("w_diagonal");

  const int halo = tile + 2;
  auto smem = kb.shared_array("tile", ir::Type::F32, halo * halo);

  Val tx = kb.tid_x();
  Val ty = kb.tid_y();
  Val gx = kb.ctaid_x() * tile + tx;
  Val gy = kb.ctaid_y() * tile + ty;

  Var ly = kb.var_s32("ly");
  Var lx = kb.var_s32("lx");
  kb.for_(ly, 0, kb.c32(2), 1, Unroll::both(-1), [&] {
    kb.for_(lx, 0, kb.c32(2), 1, Unroll::both(-1), [&] {
      Val sy = ty + Val(ly) * tile;
      Val sx = tx + Val(lx) * tile;
      kb.if_((sy < halo) & (sx < halo), [&] {
        Val iy = kb.max_(kb.c32(0),
                         kb.min_(h - 1, kb.ctaid_y() * tile + sy - 1));
        Val ix = kb.max_(kb.c32(0),
                         kb.min_(w - 1, kb.ctaid_x() * tile + sx - 1));
        kb.sts(smem, sy * halo + sx, kb.ld(in, iy * w + ix));
      });
    });
  });
  kb.barrier();

  kb.if_((gx > 0) & (gx < w - 1) & (gy > 0) & (gy < h - 1), [&] {
    Val cy = ty + 1, cx = tx + 1;
    Val center = kb.lds(smem, cy * halo + cx);
    Val adj = kb.lds(smem, (cy - 1) * halo + cx) +
              kb.lds(smem, (cy + 1) * halo + cx) +
              kb.lds(smem, cy * halo + (cx - 1)) +
              kb.lds(smem, cy * halo + (cx + 1));
    Val diag = kb.lds(smem, (cy - 1) * halo + (cx - 1)) +
               kb.lds(smem, (cy - 1) * halo + (cx + 1)) +
               kb.lds(smem, (cy + 1) * halo + (cx - 1)) +
               kb.lds(smem, (cy + 1) * halo + (cx + 1));
    kb.st(out, gy * w + gx, c_center * center + c_adj * adj + c_diag * diag);
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

void stencil_reference(std::vector<float>* grid, int w, int h, float cc,
                       float ca, float cd, int iters) {
  std::vector<float> next = *grid;
  for (int it = 0; it < iters; ++it) {
    for (int y = 1; y < h - 1; ++y) {
      for (int x = 1; x < w - 1; ++x) {
        const auto at = [&](int yy, int xx) {
          return (*grid)[static_cast<std::size_t>(yy) * w + xx];
        };
        const float adj =
            at(y - 1, x) + at(y + 1, x) + at(y, x - 1) + at(y, x + 1);
        const float diag = at(y - 1, x - 1) + at(y - 1, x + 1) +
                           at(y + 1, x - 1) + at(y + 1, x + 1);
        next[static_cast<std::size_t>(y) * w + x] =
            cc * at(y, x) + ca * adj + cd * diag;
      }
    }
    std::swap(*grid, next);
  }
}

class Stencil2DBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "St2D"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Structured Grids"; }
  std::string description() const override {
    return "A two-dimensional nine point stencil calculation";
  }
  Metric metric() const override { return Metric::Seconds; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 16;
    const int w = scaled_dim(384, opts.scale, tile);
    const int h = w;
    const int iters = 2;
    const float cc = 0.25f, ca = 0.15f, cd = 0.0375f;

    std::vector<float> grid(static_cast<std::size_t>(w) * h);
    Rng rng(13);
    for (float& v : grid) v = rng.next_float();
    const auto d_a = s.upload<float>(grid);
    const auto d_b = s.upload<float>(grid);  // borders stay fixed

    auto ck = s.compile(kernels::stencil2d(tile));
    std::uint64_t src = d_a, dst = d_b;
    sim::BlockStats agg;
    for (int it = 0; it < iters; ++it) {
      std::vector<sim::KernelArg> args = {
          sim::KernelArg::ptr(src), sim::KernelArg::ptr(dst),
          sim::KernelArg::s32(w),   sim::KernelArg::s32(h),
          sim::KernelArg::f32(cc),  sim::KernelArg::f32(ca),
          sim::KernelArg::f32(cd)};
      auto lr = s.launch(ck, {w / tile, h / tile, 1}, {tile, tile, 1}, args);
      agg.merge(lr.stats.total);
      std::swap(src, dst);
    }
    r->stats = agg;

    std::vector<float> got(grid.size());
    s.download<float>(src, got);  // src holds the last written buffer
    stencil_reference(&grid, w, h, cc, ca, cd, iters);
    r->correct = nearly_equal(got, grid, 1e-4f, 1e-4f);
    r->value = s.kernel_seconds();
  }
};

}  // namespace

const Benchmark* make_stencil2d_benchmark() {
  static const Stencil2DBenchmark b;
  return &b;
}

}  // namespace gpc::bench
