// Synthetic peak-measurement benchmarks: DeviceMemory and MaxFlops
// (SHOC-style, §III-B.1 / §IV-A of the paper).
#include <algorithm>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "common/error.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef devicememory(int elems_per_thread) {
  KernelBuilder kb("device_memory_read");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val n = kb.s32_param("n");
  Val gid = kb.global_id_x();
  Val stride = kb.ntid_x() * kb.nctaid_x();
  (void)n;  // sizing is exact by construction (SHOC style, no tail check)
  Var sum = kb.var_f32("sum");
  kb.set(sum, kb.cf(0.0));
  Var i = kb.var_s32("i");
  // Grid-stride coalesced read: lane l of warp w touches consecutive
  // addresses, the canonical peak-bandwidth pattern. The read loop is
  // fully unrolled in both sources, as SHOC's DeviceMemory does.
  kb.set(i, gid);
  Var k = kb.var_s32("k");
  kb.for_(k, 0, kb.c32(elems_per_thread), 1, Unroll::both(-1), [&] {
    kb.set(sum, Val(sum) + kb.ld(in, i));
    kb.set(i, Val(i) + stride);
  });
  kb.st(out, gid, sum);
  return kb.finish();
}

KernelDef maxflops(int inner_unroll, bool interleave_mul) {
  KernelBuilder kb(interleave_mul ? "max_flops_madmul" : "max_flops_mad");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val b = kb.f32_param("b");
  Val c = kb.f32_param("c");
  Val iters = kb.s32_param("iters");
  Val gid = kb.global_id_x();
  Var x = kb.var_f32("x");
  Var y = kb.var_f32("y");
  kb.set(x, kb.cast(gid, ir::Type::F32) * kb.cf(1e-6));
  kb.set(y, kb.cf(0.999999));
  Var it = kb.var_s32("it");
  Var u = kb.var_s32("u");
  kb.for_(it, 0, iters, 1, Unroll::none(), [&] {
    kb.for_(u, 0, kb.c32(inner_unroll), 1, Unroll::both(-1), [&] {
      // mad: x = x*b + c (2 flops)
      kb.set(x, Val(x) * b + c);
      if (interleave_mul) {
        // mul co-issues with the mad on GT200's dual-issue pipe (R = 3).
        kb.set(y, Val(y) * b);
      }
    });
  });
  kb.st(out, gid, Val(x) + Val(y));
  return kb.finish();
}

}  // namespace kernels

namespace {

class DeviceMemoryBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "DeviceMemory"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Synthetic"; }
  std::string description() const override {
    return "Peak device-memory read bandwidth (coalesced)";
  }
  Metric metric() const override { return Metric::GBps; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 256;
    // Large enough that the enqueue latency is noise, as in SHOC.
    const int elems_per_thread = 64;
    const int blocks = std::max(480, s.device().sm_count * 16);
    const int threads = blocks * block;
    const int n = threads * elems_per_thread;  // one pass, fully coalesced

    std::vector<float> host(n);
    Rng rng(1);
    for (float& v : host) v = rng.next_float();
    const auto in = s.upload<float>(host);
    const auto out = s.alloc(static_cast<std::size_t>(threads) * 4);

    auto ck = s.compile(kernels::devicememory(elems_per_thread));
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(in),
                                        sim::KernelArg::ptr(out),
                                        sim::KernelArg::s32(n)};
    auto lr = s.launch(ck, {blocks, 1, 1}, {block, 1, 1}, args);
    r->stats = lr.stats.total;

    // Verify one thread's strided partial sum.
    std::vector<float> got(threads);
    s.download<float>(out, got);
    double want0 = 0;
    for (int i = 0; i < n; i += threads) want0 += host[i];
    r->correct = std::fabs(got[0] - want0) <=
                 1e-3 * std::max(1.0, std::fabs(want0));

    const double bytes = static_cast<double>(n) * 4;
    r->value = bytes / s.kernel_seconds() / 1e9;
  }
};

class MaxFlopsBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "MaxFlops"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Synthetic"; }
  std::string description() const override {
    return "Peak single-precision floating-point throughput";
  }
  Metric metric() const override { return Metric::GFlops; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    // §IV-A.2: on GTX280 a mul and a mad are interleaved (dual issue);
    // GTX480 issues mads only.
    const bool interleave = s.device().dual_issue_mul_mad;
    const int block = opts.workgroup > 0 ? opts.workgroup : 256;
    const int inner = 128;
    const int iters = 32;
    const int blocks = s.device().sm_count * 4;
    const int threads = blocks * block;

    const auto out = s.alloc(static_cast<std::size_t>(threads) * 4);
    auto ck = s.compile(kernels::maxflops(inner, interleave));
    const float b = 0.99993f, c = 1.0e-7f;
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(out), sim::KernelArg::f32(b),
        sim::KernelArg::f32(c), sim::KernelArg::s32(iters)};
    auto lr = s.launch(ck, {blocks, 1, 1}, {block, 1, 1}, args);
    r->stats = lr.stats.total;

    // Verify thread 0 against the host-evaluated recurrence.
    float x = 0.0f, y = 0.999999f;
    for (int i = 0; i < iters * inner; ++i) {
      x = x * b + c;
      if (interleave) y = y * b;
    }
    std::vector<float> got(1);
    s.read(got.data(), out, 4);
    const float want = x + y;
    r->correct = std::fabs(got[0] - want) <= 1e-3f * std::fabs(want) + 1e-5f;

    const double flops_per_thread =
        static_cast<double>(iters) * inner * (interleave ? 3.0 : 2.0);
    r->value = flops_per_thread * threads / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark& devicememory_benchmark() {
  static const DeviceMemoryBenchmark b;
  return b;
}

const Benchmark& maxflops_benchmark() {
  static const MaxFlopsBenchmark b;
  return b;
}

}  // namespace gpc::bench
