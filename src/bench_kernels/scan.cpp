// Exclusive prefix sum (NVIDIA SDK "Scan", Table II): work-efficient
// Blelloch scan per block, scanned block sums, uniform add.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef scan_block(int block) {
  const int n = 2 * block;  // elements per block
  KernelBuilder kb("scan_block");
  auto in = kb.ptr_param("in", ir::Type::S32);
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto sums = kb.ptr_param("block_sums", ir::Type::S32);
  Val total = kb.s32_param("n");
  auto temp = kb.shared_array("temp", ir::Type::S32, n);

  Val tid = kb.tid_x();
  Val base = kb.ctaid_x() * n;

  // Load two elements per thread, zero-padding the tail.
  for (int half = 0; half < 2; ++half) {
    Val li = tid + half * block;
    Val gi = base + li;
    kb.if_else(
        gi < total, [&] { kb.sts(temp, li, kb.ld(in, gi)); },
        [&] { kb.sts(temp, li, kb.c32(0)); });
  }
  kb.barrier();

  // Up-sweep (reduce) phase.
  Var offset = kb.var_s32("offset");
  Var d = kb.var_s32("d");
  Var ai = kb.var_s32("ai");
  Var bi = kb.var_s32("bi");
  kb.set(offset, kb.c32(1));
  kb.set(d, kb.c32(n / 2));
  kb.while_(Val(d) > 0, [&] {
    kb.if_(tid < Val(d), [&] {
      kb.set(ai, Val(offset) * (2 * tid + 1) - 1);
      kb.set(bi, Val(offset) * (2 * tid + 2) - 1);
      kb.sts(temp, Val(bi), kb.lds(temp, Val(bi)) + kb.lds(temp, Val(ai)));
    });
    kb.barrier();
    kb.set(offset, Val(offset) << 1);
    kb.set(d, Val(d) >> 1);
  });

  // Record the block total and clear the root.
  kb.if_(tid == 0, [&] {
    kb.st(sums, kb.ctaid_x(), kb.lds(temp, kb.c32(n - 1)));
    kb.sts(temp, kb.c32(n - 1), kb.c32(0));
  });
  kb.barrier();

  // Down-sweep phase. The left child's value must be captured in a variable
  // BEFORE the swap stores: AST expressions evaluate at their use site.
  Var t = kb.var_s32("t");
  kb.set(d, kb.c32(1));
  kb.while_(Val(d) < n, [&] {
    kb.set(offset, Val(offset) >> 1);
    kb.if_(tid < Val(d), [&] {
      kb.set(ai, Val(offset) * (2 * tid + 1) - 1);
      kb.set(bi, Val(offset) * (2 * tid + 2) - 1);
      kb.set(t, kb.lds(temp, Val(ai)));
      kb.sts(temp, Val(ai), kb.lds(temp, Val(bi)));
      kb.sts(temp, Val(bi), kb.lds(temp, Val(bi)) + Val(t));
    });
    kb.barrier();
    kb.set(d, Val(d) << 1);
  });
  kb.barrier();

  for (int half = 0; half < 2; ++half) {
    Val li = tid + half * block;
    Val gi = base + li;
    kb.if_(gi < total, [&] { kb.st(out, gi, kb.lds(temp, li)); });
  }
  return kb.finish();
}

KernelDef scan_add_sums(int block) {
  const int n = 2 * block;
  KernelBuilder kb("scan_add_sums");
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto scanned_sums = kb.ptr_param("scanned_sums", ir::Type::S32);
  Val total = kb.s32_param("n");
  Val tid = kb.tid_x();
  Val base = kb.ctaid_x() * n;
  Val add = kb.ld(scanned_sums, kb.ctaid_x());
  for (int half = 0; half < 2; ++half) {
    Val gi = base + tid + half * block;
    kb.if_(gi < total, [&] { kb.st(out, gi, kb.ld(out, gi) + add); });
  }
  return kb.finish();
}

}  // namespace kernels

namespace {

class ScanBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "Scan"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Scan"; }
  std::string description() const override {
    return "Get prefix sum of an array";
  }
  Metric metric() const override { return Metric::MElemsPerSec; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 256;
    const int per_block = 2 * block;
    int n = static_cast<int>(262144 * opts.scale);
    // One level of block-sum scanning: cap the size so the per-block sums
    // fit a single scan group (relevant when tuning tiny work-groups).
    n = std::min(n, per_block * per_block);
    n = std::max(per_block, n / per_block * per_block);
    const int blocks = n / per_block;

    std::vector<std::int32_t> data(n);
    Rng rng(23);
    for (auto& v : data) v = static_cast<std::int32_t>(rng.next_below(16));
    const auto d_in = s.upload<std::int32_t>(data);
    const auto d_out = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto d_sums = s.alloc(static_cast<std::size_t>(per_block) * 4);
    const auto d_sums_scanned = s.alloc(static_cast<std::size_t>(per_block) * 4);
    const auto d_dummy = s.alloc(16);

    auto k_scan = s.compile(kernels::scan_block(block));
    auto k_add = s.compile(kernels::scan_add_sums(block));

    std::vector<sim::KernelArg> a1 = {
        sim::KernelArg::ptr(d_in), sim::KernelArg::ptr(d_out),
        sim::KernelArg::ptr(d_sums), sim::KernelArg::s32(n)};
    auto lr = s.launch(k_scan, {blocks, 1, 1}, {block, 1, 1}, a1);
    r->stats = lr.stats.total;

    // Scan the per-block sums with one more block, then add them back.
    std::vector<sim::KernelArg> a2 = {
        sim::KernelArg::ptr(d_sums), sim::KernelArg::ptr(d_sums_scanned),
        sim::KernelArg::ptr(d_dummy), sim::KernelArg::s32(blocks)};
    s.launch(k_scan, {1, 1, 1}, {block, 1, 1}, a2);
    std::vector<sim::KernelArg> a3 = {sim::KernelArg::ptr(d_out),
                                      sim::KernelArg::ptr(d_sums_scanned),
                                      sim::KernelArg::s32(n)};
    s.launch(k_add, {blocks, 1, 1}, {block, 1, 1}, a3);

    std::vector<std::int32_t> got(n);
    s.download<std::int32_t>(d_out, got);
    std::int64_t acc = 0;
    r->correct = true;
    for (int i = 0; i < n; ++i) {
      if (got[i] != acc) {
        r->correct = false;
        break;
      }
      acc += data[i];
    }
    r->value = static_cast<double>(n) / s.kernel_seconds() / 1e6;
  }
};

}  // namespace

const Benchmark* make_scan_benchmark() {
  static const ScanBenchmark b;
  return &b;
}

}  // namespace gpc::bench
