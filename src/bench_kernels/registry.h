// Internal registration hooks: each benchmark translation unit exposes one
// factory returning its singleton; registry.cpp assembles Table II order.
#pragma once

#include "harness/benchmark.h"

namespace gpc::bench {

const Benchmark* make_bfs_benchmark();
const Benchmark* make_sobel_benchmark();
const Benchmark* make_tranp_benchmark();
const Benchmark* make_reduce_benchmark();
const Benchmark* make_fft_benchmark();
const Benchmark* make_md_benchmark();
const Benchmark* make_spmv_benchmark();
const Benchmark* make_stencil2d_benchmark();
const Benchmark* make_dxtc_benchmark();
const Benchmark* make_radixsort_benchmark();
const Benchmark* make_scan_benchmark();
const Benchmark* make_sortnw_benchmark();
const Benchmark* make_mxm_benchmark();
const Benchmark* make_fdtd_benchmark();

}  // namespace gpc::bench
