// Kernel factories for all 16 benchmarks. Exposed separately from the
// Benchmark classes so analysis tools (Table V PTX histograms, the
// auto-tuner, unit tests) can compile individual kernels directly.
//
// Every factory returns ONE KernelDef used by both toolchains — the paper's
// "same native kernel" control. Variant parameters correspond to *source*
// differences the paper studies (texture usage, constant memory, unroll
// pragmas), not toolchain differences.
#pragma once

#include "kernel/ast.h"

namespace gpc::bench::kernels {

using kernel::KernelDef;
using kernel::Unroll;

// ---- Synthetic (§III-B.1) ----
/// Coalesced grid-stride read; measures achievable device-memory bandwidth.
KernelDef devicememory(int elems_per_thread);
/// Dense mad chain; `interleave_mul` alternates mul with mad so the GT200
/// dual-issue path (R = 3) can pair them.
KernelDef maxflops(int inner_unroll, bool interleave_mul);

// ---- Real-world (Table II) ----
/// 3x3 Sobel X-gradient over a shared-memory tile; the filter lives in
/// constant memory when `constant_filter`, in a global buffer otherwise
/// (the Fig. 8 experiment).
KernelDef sobel(bool constant_filter, int tile);

/// Tiled matrix transpose through padded shared memory (`use_local`) or the
/// naive direct version (the §V CPU local-memory penalty experiment).
KernelDef tranp(bool use_local, int tile);

/// Stage 1 of the two-stage sum reduction (grid-stride + shared tree).
KernelDef reduce_stage1(int block);
/// Stage 2: reduce the per-block partials in a single work-group.
KernelDef reduce_stage2(int block);

/// Tiled SGEMM (square N, 16x16 tiles).
KernelDef mxm(int tile);

/// Two-dimensional 9-point stencil, shared-memory tiled with halo.
KernelDef stencil2d(int tile);

/// 3D finite-difference time domain, radius-4 star stencil. `unroll_a` is
/// the z-plane loop pragma (point a of Fig. 6/7; factor 9 in the paper's
/// CUDA source), `unroll_b` the radius loop pragma (point b).
KernelDef fdtd(Unroll unroll_a, Unroll unroll_b);

/// Batched 512-point complex FFT, decimation in frequency, shared-memory
/// staged, runtime sin/cos twiddles — the paper's Table V "forward" kernel.
KernelDef fft_forward();

/// Lennard-Jones force with a fixed-size neighbour list. Positions are read
/// through a texture on the CUDA path (units 0..2 bound to x/y/z); the
/// AST carries the plain-load fallback (Fig. 4/5).
KernelDef md(int neighbors);

/// CSR sparse matrix-vector product, one thread per row. The source vector
/// is read through texture unit 0 on CUDA.
KernelDef spmv_scalar();
/// Warp-per-row variant with a shared-memory partial reduction (the §V
/// CPU warp-oriented penalty experiment).
KernelDef spmv_vector(int block);

/// Work-efficient (Blelloch) per-block exclusive scan; writes block sums.
KernelDef scan_block(int block);
/// Adds scanned block sums back into the per-block results.
KernelDef scan_add_sums(int block);

/// Bitonic sort global compare-exchange stage (one (k, j) step).
KernelDef sortnw_global_step();
/// Bitonic sort shared-memory stage for j < block (the Cell/BE local-memory
/// hog that ABTs in Table VI).
KernelDef sortnw_shared(int block);

/// DXT1 block compression: one thread per 4x4 texel block.
KernelDef dxtc();

/// Radix sort pass kernels (4-bit digits, the Zagha/Blelloch 4-step scheme
/// of refs [28][29]). The ranking step is warp-synchronous and hard-codes
/// warp size 32 — the Table VI "FL" bug on wavefront-64 / serialising
/// devices.
KernelDef radix_block_sort(int block, int radix_bits);
KernelDef radix_scatter(int block, int radix_bits);

/// Rodinia-style BFS kernel pair (frontier expansion + frontier update).
KernelDef bfs_expand();
KernelDef bfs_update();

}  // namespace gpc::bench::kernels
