#include "bench_kernels/common.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "prof/prof.h"
#include "resil/fault.h"
#include "resil/policy.h"

namespace gpc::bench {

Result BenchmarkBase::attempt_in(harness::DeviceSession& session,
                                 const Options& opts,
                                 bool allow_degraded_exec,
                                 bool* resource_abort) const {
  const arch::DeviceSpec& device = session.device();
  Result r;
  r.metric = metric();
  *resource_abort = false;
  // The session may be reused across attempts (and across benchmarks, for
  // tenant sessions): degradation is judged against this attempt's baseline,
  // and timers + the device heap start clean so classification and metric
  // values match a fresh-session run.
  const int deg_baseline = session.degraded_events();
  session.set_allow_degraded_exec(allow_degraded_exec);
  session.reset_timers();
  session.reset_memory();
  try {
    prof::ScopedSpan span("bench", name());
    run_impl(session, opts, &r);
    r.seconds = session.kernel_seconds();
    r.launches = session.launches();
    r.launch_seconds = session.launch_seconds();
    r.issue_seconds = session.issue_seconds();
    r.dram_seconds = session.dram_seconds();
    r.occupancy = session.last_occupancy();
    // A session that fell back to a split launch or degraded execution
    // completed, but not at full width/fidelity: classify DEG. Wrong
    // results without degradation are FL — quarantined from PR aggregates
    // (Result::ok() is false) rather than poisoning them.
    const bool degraded = session.degraded_events() > deg_baseline;
    r.status = degraded ? "DEG" : (r.correct ? "OK" : "FL");
    if (!r.correct) {
      r.value = 0;
      if (!degraded) {
        resil::counters().quarantined.fetch_add(1, std::memory_order_relaxed);
        if (prof::enabled()) {
          prof::recorder().record_instant("resil", "quarantine:" + name());
        }
      }
    }
  } catch (const OutOfResources& e) {
    GPC_LOG(Info) << name() << " on " << device.short_name << ": ABT — "
                  << e.what();
    r.status = "ABT";
    r.value = 0;
    r.correct = false;
    *resource_abort = true;
  } catch (const DeviceFault& e) {
    // A kernel that faults mid-run aborts the benchmark the way a real
    // launch failure would — Table VI's "ABT", not a crash of the harness.
    GPC_LOG(Info) << name() << " on " << device.short_name
                  << ": ABT (device fault) — " << e.what();
    r.status = "ABT";
    r.value = 0;
    r.correct = false;
  } catch (const TransientFault& e) {
    // A transient host-side fault that survived its retry budget: the run
    // is over, but it still ends classified.
    GPC_LOG(Info) << name() << " on " << device.short_name
                  << ": ABT (transient fault) — " << e.what();
    r.status = "ABT";
    r.value = 0;
    r.correct = false;
  }
  return r;
}

Result BenchmarkBase::run(const arch::DeviceSpec& device, arch::Toolchain tc,
                          const Options& opts) const {
  harness::DeviceSession session(device, tc);
  return run_in_session(session, opts);
}

Result BenchmarkBase::run_in_session(harness::DeviceSession& session,
                                     const Options& opts) const {
  bool resource_abort = false;
  Result r = attempt_in(session, opts, /*allow_degraded_exec=*/false,
                        &resource_abort);
  if (r.status != "ABT" || !resource_abort || !session.policy().degrade) {
    return r;
  }

  // Graceful degradation: first try to fit by shrinking the work group
  // (benchmarks that honour opts.workgroup may simply fit at lower width),
  // then allow degraded execution as the last resort — kernels that
  // hard-code their group shape (FFT's 512-point plan, RdxS's warp scan)
  // can only complete that way.
  for (const int wg : {128, 64, 32}) {
    if (opts.workgroup != 0 && wg >= opts.workgroup) continue;
    Options shrunk = opts;
    shrunk.workgroup = wg;
    bool ra = false;
    Result rs = attempt_in(session, shrunk, false, &ra);
    if (rs.status != "ABT") {
      GPC_LOG(Info) << name() << " on " << session.device().short_name
                    << ": DEG — completed at work-group size " << wg;
      rs.status = "DEG";
      return rs;
    }
  }
  bool ra = false;
  Result rd = attempt_in(session, opts, /*allow_degraded_exec=*/true, &ra);
  if (rd.status != "ABT") {
    rd.status = "DEG";
    return rd;
  }
  return r;
}

bool nearly_equal(std::span<const float> got, std::span<const float> want,
                  float rtol, float atol) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float diff = std::fabs(got[i] - want[i]);
    const float bound = atol + rtol * std::fabs(want[i]);
    if (!(diff <= bound)) {
      GPC_LOG(Debug) << "mismatch at " << i << ": got " << got[i] << " want "
                     << want[i];
      return false;
    }
  }
  return true;
}

int scaled_dim(int base, double scale, int multiple) {
  const int raw = static_cast<int>(base * std::sqrt(scale));
  const int snapped = std::max(multiple, raw / multiple * multiple);
  return snapped;
}

}  // namespace gpc::bench
