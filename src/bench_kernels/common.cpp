#include "bench_kernels/common.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "prof/prof.h"

namespace gpc::bench {

Result BenchmarkBase::run(const arch::DeviceSpec& device, arch::Toolchain tc,
                          const Options& opts) const {
  Result r;
  r.metric = metric();
  try {
    prof::ScopedSpan span("bench", name());
    harness::DeviceSession session(device, tc);
    run_impl(session, opts, &r);
    r.seconds = session.kernel_seconds();
    r.launches = session.launches();
    r.launch_seconds = session.launch_seconds();
    r.issue_seconds = session.issue_seconds();
    r.dram_seconds = session.dram_seconds();
    r.occupancy = session.last_occupancy();
    r.status = r.correct ? "OK" : "FL";
    if (!r.correct) r.value = 0;
  } catch (const OutOfResources& e) {
    GPC_LOG(Info) << name() << " on " << device.short_name << ": ABT — "
                  << e.what();
    r.status = "ABT";
    r.value = 0;
    r.correct = false;
  } catch (const DeviceFault& e) {
    // A kernel that faults mid-run aborts the benchmark the way a real
    // launch failure would — Table VI's "ABT", not a crash of the harness.
    GPC_LOG(Info) << name() << " on " << device.short_name
                  << ": ABT (device fault) — " << e.what();
    r.status = "ABT";
    r.value = 0;
    r.correct = false;
  }
  return r;
}

bool nearly_equal(std::span<const float> got, std::span<const float> want,
                  float rtol, float atol) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float diff = std::fabs(got[i] - want[i]);
    const float bound = atol + rtol * std::fabs(want[i]);
    if (!(diff <= bound)) {
      GPC_LOG(Debug) << "mismatch at " << i << ": got " << got[i] << " want "
                     << want[i];
      return false;
    }
  }
  return true;
}

int scaled_dim(int base, double scale, int multiple) {
  const int raw = static_cast<int>(base * std::sqrt(scale));
  const int snapped = std::max(multiple, raw / multiple * multiple);
  return snapped;
}

}  // namespace gpc::bench
