// DXT1 texture compression (NVIDIA SDK "DXTC", Table II). One thread
// compresses one 4x4 texel block: bounding-box endpoints in RGB565, a
// four-colour palette, and a 2-bit index per texel. All arithmetic is
// integer so both toolchains (and the host reference) agree bit-exactly.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef dxtc() {
  KernelBuilder kb("dxt1_compress");
  auto image = kb.ptr_param("image", ir::Type::S32);  // packed 0x00RRGGBB
  auto out = kb.ptr_param("out", ir::Type::S32);      // 2 words per block
  Val wblocks = kb.s32_param("wblocks");
  Val hblocks = kb.s32_param("hblocks");

  Val bx = kb.global_id_x();
  Val by = kb.global_id_y();
  // Per-thread staging of the 16 texels (private memory — which on the
  // Cell/BE lives in the SPE local store and, together with the palette
  // state, is what exhausts it: Table VI's "ABT").
  auto pixels = kb.private_array("pixels", ir::Type::S32, 16);
  kb.if_((bx < wblocks) & (by < hblocks), [&] {
    Val width = wblocks * 4;

    // Pass 1: stage pixels and take the per-channel bounding box.
    Var rmin = kb.var_s32("rmin"); Var rmax = kb.var_s32("rmax");
    Var gmin = kb.var_s32("gmin"); Var gmax = kb.var_s32("gmax");
    Var bmin = kb.var_s32("bmin"); Var bmax = kb.var_s32("bmax");
    kb.set(rmin, kb.c32(255)); kb.set(rmax, kb.c32(0));
    kb.set(gmin, kb.c32(255)); kb.set(gmax, kb.c32(0));
    kb.set(bmin, kb.c32(255)); kb.set(bmax, kb.c32(0));

    Var py = kb.var_s32("py");
    Var px = kb.var_s32("px");
    Var pix = kb.var_s32("pix");
    Var pr = kb.var_s32("pr");
    Var pg = kb.var_s32("pg");
    Var pb = kb.var_s32("pb");
    kb.for_(py, 0, kb.c32(4), 1, Unroll::none(), [&] {
      kb.for_(px, 0, kb.c32(4), 1, Unroll::none(), [&] {
        kb.set(pix, kb.ld(image, (by * 4 + Val(py)) * width + bx * 4 + Val(px)));
        kb.stp(pixels, Val(py) * 4 + Val(px), pix);
        kb.set(pr, (Val(pix) >> 16) & 255);
        kb.set(pg, (Val(pix) >> 8) & 255);
        kb.set(pb, Val(pix) & 255);
        kb.set(rmin, kb.min_(Val(rmin), Val(pr)));
        kb.set(rmax, kb.max_(Val(rmax), Val(pr)));
        kb.set(gmin, kb.min_(Val(gmin), Val(pg)));
        kb.set(gmax, kb.max_(Val(gmax), Val(pg)));
        kb.set(bmin, kb.min_(Val(bmin), Val(pb)));
        kb.set(bmax, kb.max_(Val(bmax), Val(pb)));
      });
    });

    // Endpoints quantised to RGB565 and expanded back (the palette the
    // decoder will reconstruct).
    auto quant = [&](Val r, Val g, Val b) {
      return ((r >> 3) << 11) | ((g >> 2) << 5) | (b >> 3);
    };
    auto expand_r = [&](Val c565) {
      Val r5 = (c565 >> 11) & 31;
      return (r5 << 3) | (r5 >> 2);
    };
    auto expand_g = [&](Val c565) {
      Val g6 = (c565 >> 5) & 63;
      return (g6 << 2) | (g6 >> 4);
    };
    auto expand_b = [&](Val c565) {
      Val b5 = c565 & 31;
      return (b5 << 3) | (b5 >> 2);
    };

    Var c0 = kb.var_s32("c0");
    Var c1 = kb.var_s32("c1");
    kb.set(c0, quant(Val(rmax), Val(gmax), Val(bmax)));
    kb.set(c1, quant(Val(rmin), Val(gmin), Val(bmin)));
    // DXT1 4-colour mode requires c0 > c1; swap degenerate boxes.
    Var tswap = kb.var_s32("tswap");
    kb.if_(Val(c0) < Val(c1), [&] {
      kb.set(tswap, Val(c0));
      kb.set(c0, Val(c1));
      kb.set(c1, Val(tswap));
    });

    // Palette: p0, p1, (2*p0+p1)/3, (p0+2*p1)/3 per channel.
    Var p0r = kb.var_s32("p0r"); Var p0g = kb.var_s32("p0g");
    Var p0b = kb.var_s32("p0b");
    Var p1r = kb.var_s32("p1r"); Var p1g = kb.var_s32("p1g");
    Var p1b = kb.var_s32("p1b");
    kb.set(p0r, expand_r(Val(c0)));
    kb.set(p0g, expand_g(Val(c0)));
    kb.set(p0b, expand_b(Val(c0)));
    kb.set(p1r, expand_r(Val(c1)));
    kb.set(p1g, expand_g(Val(c1)));
    kb.set(p1b, expand_b(Val(c1)));
    Var p2r = kb.var_s32("p2r"); Var p2g = kb.var_s32("p2g");
    Var p2b = kb.var_s32("p2b");
    Var p3r = kb.var_s32("p3r"); Var p3g = kb.var_s32("p3g");
    Var p3b = kb.var_s32("p3b");
    kb.set(p2r, (2 * Val(p0r) + Val(p1r)) / 3);
    kb.set(p2g, (2 * Val(p0g) + Val(p1g)) / 3);
    kb.set(p2b, (2 * Val(p0b) + Val(p1b)) / 3);
    kb.set(p3r, (Val(p0r) + 2 * Val(p1r)) / 3);
    kb.set(p3g, (Val(p0g) + 2 * Val(p1g)) / 3);
    kb.set(p3b, (Val(p0b) + 2 * Val(p1b)) / 3);

    // Pass 2: nearest palette index per texel (from the staged pixels),
    // packed 2 bits each.
    Var indices = kb.var_s32("indices");
    kb.set(indices, kb.c32(0));
    Var best = kb.var_s32("best");
    Var bestd = kb.var_s32("bestd");
    Var dd = kb.var_s32("dd");
    Var ti = kb.var_s32("ti");
    kb.for_(ti, 0, kb.c32(16), 1, Unroll::none(), [&] {
      kb.set(pix, kb.ldp(pixels, Val(ti)));
      kb.set(pr, (Val(pix) >> 16) & 255);
      kb.set(pg, (Val(pix) >> 8) & 255);
      kb.set(pb, Val(pix) & 255);
      auto dist = [&](Val cr, Val cg, Val cb) {
        Val dr = Val(pr) - cr;
        Val dg = Val(pg) - cg;
        Val db = Val(pb) - cb;
        return dr * dr + dg * dg + db * db;
      };
      kb.set(best, kb.c32(0));
      kb.set(bestd, dist(Val(p0r), Val(p0g), Val(p0b)));
      kb.set(dd, dist(Val(p1r), Val(p1g), Val(p1b)));
      kb.if_(Val(dd) < Val(bestd), [&] {
        kb.set(best, kb.c32(1));
        kb.set(bestd, Val(dd));
      });
      kb.set(dd, dist(Val(p2r), Val(p2g), Val(p2b)));
      kb.if_(Val(dd) < Val(bestd), [&] {
        kb.set(best, kb.c32(2));
        kb.set(bestd, Val(dd));
      });
      kb.set(dd, dist(Val(p3r), Val(p3g), Val(p3b)));
      kb.if_(Val(dd) < Val(bestd), [&] {
        kb.set(best, kb.c32(3));
        kb.set(bestd, Val(dd));
      });
      kb.set(indices, Val(indices) | (Val(best) << (Val(ti) * 2)));
    });

    Val blk = by * wblocks + bx;
    kb.st(out, blk * 2, Val(c0) | (Val(c1) << 16));
    kb.st(out, blk * 2 + 1, indices);
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

void dxtc_reference(const std::vector<std::int32_t>& img, int wblocks,
                    int hblocks, std::vector<std::int32_t>* out) {
  const int width = wblocks * 4;
  out->assign(static_cast<std::size_t>(wblocks) * hblocks * 2, 0);
  auto expand = [](int c565, int& r, int& g, int& b) {
    const int r5 = (c565 >> 11) & 31, g6 = (c565 >> 5) & 63, b5 = c565 & 31;
    r = (r5 << 3) | (r5 >> 2);
    g = (g6 << 2) | (g6 >> 4);
    b = (b5 << 3) | (b5 >> 2);
  };
  for (int by = 0; by < hblocks; ++by) {
    for (int bx = 0; bx < wblocks; ++bx) {
      int rmin = 255, rmax = 0, gmin = 255, gmax = 0, bmin = 255, bmax = 0;
      for (int py = 0; py < 4; ++py) {
        for (int px = 0; px < 4; ++px) {
          const int pix = img[(by * 4 + py) * width + bx * 4 + px];
          const int r = (pix >> 16) & 255, g = (pix >> 8) & 255, b = pix & 255;
          rmin = std::min(rmin, r); rmax = std::max(rmax, r);
          gmin = std::min(gmin, g); gmax = std::max(gmax, g);
          bmin = std::min(bmin, b); bmax = std::max(bmax, b);
        }
      }
      int c0 = ((rmax >> 3) << 11) | ((gmax >> 2) << 5) | (bmax >> 3);
      int c1 = ((rmin >> 3) << 11) | ((gmin >> 2) << 5) | (bmin >> 3);
      if (c0 < c1) std::swap(c0, c1);
      int pr[4], pg[4], pb[4];
      expand(c0, pr[0], pg[0], pb[0]);
      expand(c1, pr[1], pg[1], pb[1]);
      pr[2] = (2 * pr[0] + pr[1]) / 3;
      pg[2] = (2 * pg[0] + pg[1]) / 3;
      pb[2] = (2 * pb[0] + pb[1]) / 3;
      pr[3] = (pr[0] + 2 * pr[1]) / 3;
      pg[3] = (pg[0] + 2 * pg[1]) / 3;
      pb[3] = (pb[0] + 2 * pb[1]) / 3;
      std::int32_t indices = 0;
      int ti = 0;
      for (int py = 0; py < 4; ++py) {
        for (int px = 0; px < 4; ++px) {
          const int pix = img[(by * 4 + py) * width + bx * 4 + px];
          const int r = (pix >> 16) & 255, g = (pix >> 8) & 255, b = pix & 255;
          int best = 0, bestd = INT32_MAX;
          for (int p = 0; p < 4; ++p) {
            const int dr = r - pr[p], dg = g - pg[p], db = b - pb[p];
            const int d = dr * dr + dg * dg + db * db;
            if (d < bestd) {
              bestd = d;
              best = p;
            }
          }
          indices |= best << (ti * 2);
          ++ti;
        }
      }
      const std::size_t blk = static_cast<std::size_t>(by) * wblocks + bx;
      (*out)[blk * 2] = c0 | (c1 << 16);
      (*out)[blk * 2 + 1] = indices;
    }
  }
}

class DxtcBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "DXTC"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Dense Linear Algebra"; }
  std::string description() const override {
    return "High quality DXT compression";
  }
  Metric metric() const override { return Metric::MPixelsPerSec; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 8;  // threads per block edge (8x8 blocks of texels)
    const int w = scaled_dim(256, opts.scale, 4 * tile);
    const int h = w;
    const int wb = w / 4, hb = h / 4;

    std::vector<std::int32_t> img(static_cast<std::size_t>(w) * h);
    Rng rng(43);
    for (auto& v : img) {
      v = static_cast<std::int32_t>(rng.next_u32() & 0x00FFFFFF);
    }
    const auto d_img = s.upload<std::int32_t>(img);
    const auto d_out = s.alloc(static_cast<std::size_t>(wb) * hb * 2 * 4);

    auto ck = s.compile(kernels::dxtc());
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(d_img), sim::KernelArg::ptr(d_out),
        sim::KernelArg::s32(wb), sim::KernelArg::s32(hb)};
    auto lr = s.launch(ck, {wb / tile, hb / tile, 1}, {tile, tile, 1}, args);
    r->stats = lr.stats.total;

    std::vector<std::int32_t> got(static_cast<std::size_t>(wb) * hb * 2);
    s.download<std::int32_t>(d_out, got);
    std::vector<std::int32_t> want;
    dxtc_reference(img, wb, hb, &want);
    r->correct = got == want;
    r->value = static_cast<double>(w) * h / s.kernel_seconds() / 1e6;
  }
};

}  // namespace

const Benchmark* make_dxtc_benchmark() {
  static const DxtcBenchmark b;
  return &b;
}

}  // namespace gpc::bench
