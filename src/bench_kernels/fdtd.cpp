// 3D finite-difference time-domain stencil (NVIDIA SDK, Table II) — the
// loop-unrolling study of Figs. 6 & 7. Each thread owns an (x, y) column and
// marches the z-plane loop; the paper's CUDA source carries
// `#pragma unroll 9` on that loop (point a) and both sources carry a pragma
// on the radius loop (point b).
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace {
constexpr int kRadius = 4;
constexpr float kCoef[kRadius + 1] = {0.35f, 0.12f, 0.05f, 0.02f, 0.0075f};
}  // namespace

namespace kernels {

KernelDef fdtd(Unroll unroll_a, Unroll unroll_b) {
  KernelBuilder kb("fdtd3d");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val w = kb.s32_param("dimx");
  Val h = kb.s32_param("dimy");
  Val d = kb.s32_param("dimz");
  auto coef = kb.const_array_f32("c_coef", kCoef);

  Val gx = kb.global_id_x();
  Val gy = kb.global_id_y();
  Val plane = w * h;

  kb.if_((gx >= kRadius) & (gx < w - kRadius) & (gy >= kRadius) &
             (gy < h - kRadius),
         [&] {
           Var iz = kb.var_s32("iz");
           Var idx = kb.var_s32("idx");
           // Step through the xy-planes — unroll point (a).
           kb.for_(iz, kb.c32(kRadius), d - kRadius, kb.c32(1), unroll_a, [&] {
             kb.set(idx, (Val(iz) * h + gy) * w + gx);
             Var sum = kb.var_f32("sum");
             kb.set(sum, kb.ldc(coef, kb.c32(0)) * kb.ld(in, idx));
             Var rr = kb.var_s32("rr");
             // Radius loop — unroll point (b).
             kb.for_(rr, 1, kb.c32(kRadius + 1), 1, unroll_b, [&] {
               Val cr = kb.ldc(coef, rr);
               Val along_x =
                   kb.ld(in, Val(idx) - Val(rr)) + kb.ld(in, Val(idx) + Val(rr));
               Val along_y = kb.ld(in, Val(idx) - Val(rr) * w) +
                             kb.ld(in, Val(idx) + Val(rr) * w);
               Val along_z = kb.ld(in, Val(idx) - Val(rr) * plane) +
                             kb.ld(in, Val(idx) + Val(rr) * plane);
               kb.set(sum, Val(sum) + cr * (along_x + along_y + along_z));
             });
             kb.st(out, Val(idx), sum);
           });
         });
  return kb.finish();
}

}  // namespace kernels

namespace {

void fdtd_reference(const std::vector<float>& in, int w, int h, int d,
                    std::vector<float>* out) {
  *out = in;
  for (int z = kRadius; z < d - kRadius; ++z) {
    for (int y = kRadius; y < h - kRadius; ++y) {
      for (int x = kRadius; x < w - kRadius; ++x) {
        const std::size_t idx =
            (static_cast<std::size_t>(z) * h + y) * w + x;
        float sum = kCoef[0] * in[idx];
        for (int r = 1; r <= kRadius; ++r) {
          sum += kCoef[r] *
                 (in[idx - r] + in[idx + r] +
                  in[idx - static_cast<std::size_t>(r) * w] +
                  in[idx + static_cast<std::size_t>(r) * w] +
                  in[idx - static_cast<std::size_t>(r) * w * h] +
                  in[idx + static_cast<std::size_t>(r) * w * h]);
        }
        (*out)[idx] = sum;
      }
    }
  }
}

class FdtdBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "FDTD"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Structured Grids"; }
  std::string description() const override {
    return "Finite-difference time-domain method";
  }
  Metric metric() const override { return Metric::MPointsPerSec; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 16;
    const int w = scaled_dim(48, opts.scale, tile);
    const int h = w;
    const int d = 48;

    const Unroll a{opts.fdtd_unroll_a_cuda ? 9 : 0,
                   opts.fdtd_unroll_a_opencl ? 9 : 0};
    const Unroll b{opts.fdtd_unroll_b_cuda ? -1 : 0,
                   opts.fdtd_unroll_b_opencl ? -1 : 0};

    std::vector<float> grid(static_cast<std::size_t>(w) * h * d);
    Rng rng(17);
    for (float& v : grid) v = rng.next_float(-1.0f, 1.0f);
    const auto d_in = s.upload<float>(grid);
    const auto d_out = s.upload<float>(grid);  // borders copy through

    auto ck = s.compile(kernels::fdtd(a, b));
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(d_in), sim::KernelArg::ptr(d_out),
        sim::KernelArg::s32(w), sim::KernelArg::s32(h),
        sim::KernelArg::s32(d)};
    auto lr = s.launch(ck, {w / tile, h / tile, 1}, {tile, tile, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> got(grid.size());
    s.download<float>(d_out, got);
    std::vector<float> want;
    fdtd_reference(grid, w, h, d, &want);
    r->correct = nearly_equal(got, want, 1e-4f, 1e-4f);

    const double points = static_cast<double>(w) * h * d;
    r->value = points / s.kernel_seconds() / 1e6;
  }
};

}  // namespace

const Benchmark* make_fdtd_benchmark() {
  static const FdtdBenchmark b;
  return &b;
}

}  // namespace gpc::bench
