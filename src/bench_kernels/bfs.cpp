// Breadth-first search, Rodinia style (Table II): one kernel expands the
// current frontier, a second folds the updating mask back into the frontier.
// The host relaunches the pair once per BFS level and polls a stop flag, so
// kernel-launch latency — where CUDA and OpenCL runtimes differ (§IV-B.4) —
// is a first-order term of the total time.
#include <queue>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef bfs_expand() {
  KernelBuilder kb("bfs_expand");
  auto rowptr = kb.ptr_param("rowptr", ir::Type::S32);
  auto cols = kb.ptr_param("cols", ir::Type::S32);
  auto frontier = kb.ptr_param("frontier", ir::Type::S32);
  auto updating = kb.ptr_param("updating", ir::Type::S32);
  auto visited = kb.ptr_param("visited", ir::Type::S32);
  auto cost = kb.ptr_param("cost", ir::Type::S32);
  Val n = kb.s32_param("n");

  Val tid = kb.global_id_x();
  kb.if_(tid < n, [&] {
    kb.if_(kb.ld(frontier, tid) != 0, [&] {
      kb.st(frontier, tid, kb.c32(0));
      Var e = kb.var_s32("e");
      Var j = kb.var_s32("j");
      kb.for_(e, kb.ld(rowptr, tid), kb.ld(rowptr, tid + 1), kb.c32(1),
              Unroll::none(), [&] {
                kb.set(j, kb.ld(cols, Val(e)));
                kb.if_(kb.ld(visited, Val(j)) == 0, [&] {
                  // Benign races: every writer stores the same level value.
                  kb.st(cost, Val(j), kb.ld(cost, tid) + 1);
                  kb.st(updating, Val(j), kb.c32(1));
                });
              });
    });
  });
  return kb.finish();
}

KernelDef bfs_update() {
  KernelBuilder kb("bfs_update");
  auto frontier = kb.ptr_param("frontier", ir::Type::S32);
  auto updating = kb.ptr_param("updating", ir::Type::S32);
  auto visited = kb.ptr_param("visited", ir::Type::S32);
  auto stop = kb.ptr_param("stop", ir::Type::S32);
  Val n = kb.s32_param("n");

  Val tid = kb.global_id_x();
  kb.if_(tid < n, [&] {
    kb.if_(kb.ld(updating, tid) != 0, [&] {
      kb.st(frontier, tid, kb.c32(1));
      kb.st(visited, tid, kb.c32(1));
      kb.st(updating, tid, kb.c32(0));
      kb.st(stop, kb.c32(0), kb.c32(1));  // same value from all writers
    });
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

struct Graph {
  std::vector<std::int32_t> rowptr, cols;
  int n = 0;
};

Graph make_graph(int n, int degree) {
  Graph g;
  g.n = n;
  g.rowptr.resize(n + 1);
  Rng rng(41);
  for (int i = 0; i < n; ++i) {
    g.rowptr[i] = static_cast<std::int32_t>(g.cols.size());
    for (int e = 0; e < degree; ++e) {
      g.cols.push_back(static_cast<std::int32_t>(rng.next_below(n)));
    }
  }
  g.rowptr[n] = static_cast<std::int32_t>(g.cols.size());
  return g;
}

std::vector<std::int32_t> bfs_reference(const Graph& g, int src) {
  std::vector<std::int32_t> cost(g.n, -1);
  std::queue<int> q;
  cost[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int e = g.rowptr[u]; e < g.rowptr[u + 1]; ++e) {
      const int v = g.cols[e];
      if (cost[v] < 0) {
        cost[v] = cost[u] + 1;
        q.push(v);
      }
    }
  }
  return cost;
}

class BfsBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "BFS"; }
  std::string suite() const override { return "Rodinia"; }
  std::string dwarf() const override { return "Graph Traversal"; }
  std::string description() const override {
    return "Graph breadth first search";
  }
  Metric metric() const override { return Metric::Seconds; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 256;
    int n = static_cast<int>(32768 * opts.scale);
    n = std::max(block, n / block * block);
    const Graph g = make_graph(n, 8);
    const int src = 0;

    const auto d_rowptr = s.upload<std::int32_t>(g.rowptr);
    const auto d_cols = s.upload<std::int32_t>(g.cols);
    std::vector<std::int32_t> zeros(n, 0), minus1(n, -1);
    std::vector<std::int32_t> init_frontier(n, 0), init_visited(n, 0);
    std::vector<std::int32_t> init_cost(n, -1);
    init_frontier[src] = 1;
    init_visited[src] = 1;
    init_cost[src] = 0;
    const auto d_frontier = s.upload<std::int32_t>(init_frontier);
    const auto d_updating = s.upload<std::int32_t>(zeros);
    const auto d_visited = s.upload<std::int32_t>(init_visited);
    const auto d_cost = s.upload<std::int32_t>(init_cost);
    const auto d_stop = s.alloc(4);

    auto k1 = s.compile(kernels::bfs_expand());
    auto k2 = s.compile(kernels::bfs_update());

    const int grid = n / block;
    sim::BlockStats agg;
    std::int32_t stop = 1;
    int levels = 0;
    while (stop != 0 && levels < n) {
      stop = 0;
      s.write(d_stop, &stop, 4);
      std::vector<sim::KernelArg> a1 = {
          sim::KernelArg::ptr(d_rowptr), sim::KernelArg::ptr(d_cols),
          sim::KernelArg::ptr(d_frontier), sim::KernelArg::ptr(d_updating),
          sim::KernelArg::ptr(d_visited), sim::KernelArg::ptr(d_cost),
          sim::KernelArg::s32(n)};
      auto lr = s.launch(k1, {grid, 1, 1}, {block, 1, 1}, a1);
      agg.merge(lr.stats.total);
      std::vector<sim::KernelArg> a2 = {
          sim::KernelArg::ptr(d_frontier), sim::KernelArg::ptr(d_updating),
          sim::KernelArg::ptr(d_visited), sim::KernelArg::ptr(d_stop),
          sim::KernelArg::s32(n)};
      auto lr2 = s.launch(k2, {grid, 1, 1}, {block, 1, 1}, a2);
      agg.merge(lr2.stats.total);
      s.read(&stop, d_stop, 4);
      ++levels;
    }
    r->stats = agg;

    std::vector<std::int32_t> got(n);
    s.download<std::int32_t>(d_cost, got);
    const auto want = bfs_reference(g, src);
    r->correct = got == want;
    r->value = s.kernel_seconds();
  }
};

}  // namespace

const Benchmark* make_bfs_benchmark() {
  static const BfsBenchmark b;
  return &b;
}

}  // namespace gpc::bench
