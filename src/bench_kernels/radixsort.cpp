// Radix sort of key/value pairs (NVIDIA SDK "RdxS", Table II), following
// the four-step scheme of Zagha & Blelloch / Satish et al. (paper refs
// [28][29]): per-block ranking + local sort, per-block digit histograms,
// a global scan, and a scatter pass. 2-bit digits, four passes.
//
// The block kernel is deliberately *warp-synchronous with a hard-coded warp
// size of 32*, like the SDK original. That assumption is the paper's §V
// finding — RdxS completes but produces wrong results ("FL" in Table VI) on
// devices whose execution width is not 32:
//   * On a 64-wide wavefront (HD5870) the per-warp "leader" accumulation
//     into the block digit counters runs two assumed-warps in lockstep;
//     their read-modify-writes collide and half the counts vanish — the
//     paper's "only one half warp of threads are able to map keys into
//     buckets".
//   * On the serialising CPU runtime (Intel920) the barrier-free warp scan
//     reads lanes that have not executed yet, so ranks and warp totals are
//     stale.
// On 32-wide NVIDIA hardware both idioms are correct.
#include <algorithm>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace {
constexpr int kWarp = 32;  // hard-coded in the source, per the SDK
}

namespace kernels {

KernelDef radix_block_sort(int block, int radix_bits) {
  const int digits = 1 << radix_bits;
  const int warps = block / kWarp;
  KernelBuilder kb("radix_block_sort");
  auto keys_in = kb.ptr_param("keys_in", ir::Type::S32);
  auto vals_in = kb.ptr_param("vals_in", ir::Type::S32);
  auto keys_out = kb.ptr_param("keys_out", ir::Type::S32);
  auto vals_out = kb.ptr_param("vals_out", ir::Type::S32);
  auto block_hist = kb.ptr_param("block_hist", ir::Type::S32);
  auto block_digit_start = kb.ptr_param("block_digit_start", ir::Type::S32);
  Val shift = kb.s32_param("shift");
  Val nblocks = kb.s32_param("nblocks");

  auto s_scan = kb.shared_array("s_scan", ir::Type::S32, block);
  auto s_keys = kb.shared_array("s_keys", ir::Type::S32, block);
  auto s_vals = kb.shared_array("s_vals", ir::Type::S32, block);
  auto s_keys2 = kb.shared_array("s_keys2", ir::Type::S32, block);
  auto s_vals2 = kb.shared_array("s_vals2", ir::Type::S32, block);
  auto warp_total = kb.shared_array("warp_total", ir::Type::S32,
                                    warps * digits);
  auto warp_base = kb.shared_array("warp_base", ir::Type::S32,
                                   warps * digits);
  auto digit_count = kb.shared_array("digit_count", ir::Type::S32, digits);
  auto digit_start = kb.shared_array("digit_start", ir::Type::S32, digits);

  Val tid = kb.tid_x();
  Val lane = tid & (kWarp - 1);
  Val wid = tid >> 5;
  Val base = kb.ctaid_x() * block;

  Var key = kb.var_s32("key");
  Var val = kb.var_s32("val");
  kb.set(key, kb.ld(keys_in, base + tid));
  kb.set(val, kb.ld(vals_in, base + tid));
  Val d = (Val(key) >> shift) & (digits - 1);

  kb.if_(tid < warps * digits, [&] { kb.sts(warp_total, tid, kb.c32(0)); });
  kb.if_(tid < digits, [&] { kb.sts(digit_count, tid, kb.c32(0)); });
  kb.barrier();

  // Step 1: rank within the assumed 32-wide warp, one boolean warp scan per
  // digit value. No barriers — warp-synchronous by design.
  Var rank = kb.var_s32("rank");
  kb.set(rank, kb.c32(0));
  Var b = kb.var_s32("b");
  kb.for_(b, 0, kb.c32(digits), 1, Unroll::both(-1), [&] {
    kb.sts(s_scan, tid, kb.select(d == Val(b), kb.c32(1), kb.c32(0)));
    for (int off = 1; off < kWarp; off <<= 1) {
      kb.if_(lane >= off, [&] {
        kb.sts(s_scan, tid, kb.lds(s_scan, tid) + kb.lds(s_scan, tid - off));
      });
    }
    kb.if_(d == Val(b), [&] { kb.set(rank, kb.lds(s_scan, tid) - 1); });
    // The last lane of each assumed warp publishes the warp's digit count.
    kb.if_(lane == kWarp - 1, [&] {
      kb.sts(warp_total, wid * digits + Val(b), kb.lds(s_scan, tid));
    });
    // Warp leaders fold their total into the block counter — still without
    // a barrier. On a 64-wide wavefront tid and tid+32 are BOTH lane-0
    // leaders executing this read-modify-write in lockstep: one update is
    // lost per wavefront (the §V failure).
    kb.if_(lane == 0, [&] {
      kb.sts(digit_count, Val(b),
             kb.lds(digit_count, Val(b)) +
                 kb.lds(warp_total, wid * digits + Val(b)));
    });
  });
  kb.barrier();

  // Step 2: block-level offsets from the (assumed correct) counters.
  Var run = kb.var_s32("run");
  Var w = kb.var_s32("w");
  Var t = kb.var_s32("t");
  kb.if_(tid < digits, [&] {
    kb.set(run, kb.c32(0));
    kb.for_(w, 0, kb.c32(warps), 1, Unroll::none(), [&] {
      kb.set(t, kb.lds(warp_total, Val(w) * digits + tid));
      kb.sts(warp_base, Val(w) * digits + tid, run);
      kb.set(run, Val(run) + Val(t));
    });
  });
  kb.if_(tid == 0, [&] {
    kb.set(run, kb.c32(0));
    kb.for_(b, 0, kb.c32(digits), 1, Unroll::both(-1), [&] {
      kb.sts(digit_start, Val(b), run);
      kb.set(run, Val(run) + kb.lds(digit_count, Val(b)));
    });
  });
  kb.barrier();

  // Step 3: local scatter (stable). The position mask keeps the staging
  // write inside the tile even when broken counters produce bad offsets —
  // matching hardware behaviour where the sort completes with wrong data
  // rather than faulting.
  Var pos = kb.var_s32("pos");
  kb.set(pos, (kb.lds(digit_start, d) + kb.lds(warp_base, wid * digits + d) +
               Val(rank)) &
                  (block - 1));
  kb.sts(s_keys, Val(pos), key);
  kb.sts(s_vals, Val(pos), val);
  kb.barrier();
  kb.sts(s_keys2, tid, kb.lds(s_keys, tid));
  kb.sts(s_vals2, tid, kb.lds(s_vals, tid));
  kb.barrier();
  kb.st(keys_out, base + tid, kb.lds(s_keys2, tid));
  kb.st(vals_out, base + tid, kb.lds(s_vals2, tid));

  kb.if_(tid < digits, [&] {
    kb.st(block_hist, tid * nblocks + kb.ctaid_x(),
          kb.lds(digit_count, tid));
    kb.st(block_digit_start, kb.ctaid_x() * digits + tid,
          kb.lds(digit_start, tid));
  });
  return kb.finish();
}

KernelDef radix_scatter(int block, int radix_bits) {
  const int digits = 1 << radix_bits;
  KernelBuilder kb("radix_scatter");
  auto keys_in = kb.ptr_param("keys_in", ir::Type::S32);
  auto vals_in = kb.ptr_param("vals_in", ir::Type::S32);
  auto keys_out = kb.ptr_param("keys_out", ir::Type::S32);
  auto vals_out = kb.ptr_param("vals_out", ir::Type::S32);
  auto scanned_hist = kb.ptr_param("scanned_hist", ir::Type::S32);
  auto block_digit_start = kb.ptr_param("block_digit_start", ir::Type::S32);
  Val shift = kb.s32_param("shift");
  Val nblocks = kb.s32_param("nblocks");
  Val n = kb.s32_param("n");

  Val tid = kb.tid_x();
  Val bid = kb.ctaid_x();
  Val base = bid * block;
  Val key = kb.ld(keys_in, base + tid);
  Val val = kb.ld(vals_in, base + tid);
  Val d = (key >> shift) & (digits - 1);
  Val local_rank = tid - kb.ld(block_digit_start, bid * digits + d);
  // Bounds mask — see the block kernel's comment.
  Var pos = kb.var_s32("pos");
  kb.set(pos,
         (kb.ld(scanned_hist, d * nblocks + bid) + local_rank) & (n - 1));
  kb.st(keys_out, Val(pos), key);
  kb.st(vals_out, Val(pos), val);
  return kb.finish();
}

}  // namespace kernels

namespace {

class RadixSortBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "RdxS"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Sort"; }
  std::string description() const override { return "Radix sort"; }
  Metric metric() const override { return Metric::MElemsPerSec; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = 256;
    const int radix_bits = 2;
    const int digits = 1 << radix_bits;
    const int key_bits = 8;
    int n = static_cast<int>(16384 * opts.scale);
    int pow2 = block;
    while (pow2 * 2 <= n) pow2 *= 2;
    n = pow2;
    const int nblocks = n / block;

    std::vector<std::int32_t> keys(n), vals(n);
    Rng rng(53);
    for (int i = 0; i < n; ++i) {
      keys[i] = static_cast<std::int32_t>(rng.next_below(1 << key_bits));
      vals[i] = i;
    }
    const auto d_keys_a = s.upload<std::int32_t>(keys);
    const auto d_vals_a = s.upload<std::int32_t>(vals);
    const auto d_keys_b = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto d_vals_b = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto d_hist = s.alloc(static_cast<std::size_t>(digits) * nblocks * 4);
    const auto d_hist_scanned =
        s.alloc(static_cast<std::size_t>(digits) * nblocks * 4);
    const auto d_block_start =
        s.alloc(static_cast<std::size_t>(nblocks) * digits * 4);
    const auto d_scan_sums = s.alloc(4096);
    const auto d_dummy = s.alloc(16);

    auto k_block = s.compile(kernels::radix_block_sort(block, radix_bits));
    auto k_scatter = s.compile(kernels::radix_scatter(block, radix_bits));
    auto k_scan = s.compile(kernels::scan_block(block));
    const int hist_n = digits * nblocks;
    GPC_REQUIRE(hist_n <= 2 * block, "histogram must fit one scan block");

    std::uint64_t ka = d_keys_a, va = d_vals_a, kbuf = d_keys_b,
                  vb = d_vals_b;
    sim::BlockStats agg;
    for (int pass = 0; pass < key_bits / radix_bits; ++pass) {
      const int shift = pass * radix_bits;
      std::vector<sim::KernelArg> a1 = {
          sim::KernelArg::ptr(ka), sim::KernelArg::ptr(va),
          sim::KernelArg::ptr(kbuf), sim::KernelArg::ptr(vb),
          sim::KernelArg::ptr(d_hist), sim::KernelArg::ptr(d_block_start),
          sim::KernelArg::s32(shift), sim::KernelArg::s32(nblocks)};
      auto lr = s.launch(k_block, {nblocks, 1, 1}, {block, 1, 1}, a1);
      agg.merge(lr.stats.total);

      std::vector<sim::KernelArg> a2 = {
          sim::KernelArg::ptr(d_hist), sim::KernelArg::ptr(d_hist_scanned),
          sim::KernelArg::ptr(d_scan_sums), sim::KernelArg::s32(hist_n)};
      auto lr2 = s.launch(k_scan, {1, 1, 1}, {block, 1, 1}, a2);
      agg.merge(lr2.stats.total);

      std::vector<sim::KernelArg> a3 = {
          sim::KernelArg::ptr(kbuf), sim::KernelArg::ptr(vb),
          sim::KernelArg::ptr(ka), sim::KernelArg::ptr(va),
          sim::KernelArg::ptr(d_hist_scanned),
          sim::KernelArg::ptr(d_block_start), sim::KernelArg::s32(shift),
          sim::KernelArg::s32(nblocks), sim::KernelArg::s32(n)};
      auto lr3 = s.launch(k_scatter, {nblocks, 1, 1}, {block, 1, 1}, a3);
      agg.merge(lr3.stats.total);
    }
    r->stats = agg;

    std::vector<std::int32_t> got_keys(n), got_vals(n);
    s.download<std::int32_t>(ka, got_keys);
    s.download<std::int32_t>(va, got_vals);
    r->correct = true;
    for (int i = 0; i + 1 < n && r->correct; ++i) {
      if (got_keys[i] > got_keys[i + 1]) r->correct = false;
    }
    std::vector<bool> seen(n, false);
    for (int i = 0; i < n && r->correct; ++i) {
      const std::int32_t v = got_vals[i];
      if (v < 0 || v >= n || seen[v] || keys[v] != got_keys[i]) {
        r->correct = false;
      } else {
        seen[v] = true;
      }
    }
    r->value = static_cast<double>(n) / s.kernel_seconds() / 1e6;
  }
};

}  // namespace

const Benchmark* make_radixsort_benchmark() {
  static const RadixSortBenchmark b;
  return &b;
}

}  // namespace gpc::bench
