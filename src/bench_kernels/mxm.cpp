// Tiled single-precision matrix multiplication (NVIDIA SDK, Table II).
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef mxm(int tile) {
  KernelBuilder kb("mxm_tiled");
  auto a = kb.ptr_param("a", ir::Type::F32);
  auto b = kb.ptr_param("b", ir::Type::F32);
  auto c = kb.ptr_param("c", ir::Type::F32);
  Val n = kb.s32_param("n");  // square, multiple of tile

  auto as = kb.shared_array("as", ir::Type::F32, tile * tile);
  auto bs = kb.shared_array("bs", ir::Type::F32, tile * tile);

  Val tx = kb.tid_x();
  Val ty = kb.tid_y();
  Val row = kb.ctaid_y() * tile + ty;
  Val col = kb.ctaid_x() * tile + tx;

  Var acc = kb.var_f32("acc");
  kb.set(acc, kb.cf(0.0));
  Var t = kb.var_s32("t");
  Var k = kb.var_s32("k");
  kb.for_(t, 0, n / tile, 1, Unroll::none(), [&] {
    kb.sts(as, ty * tile + tx, kb.ld(a, row * n + (Val(t) * tile + tx)));
    kb.sts(bs, ty * tile + tx, kb.ld(b, (Val(t) * tile + ty) * n + col));
    kb.barrier();
    // The SDK kernel carries "#pragma unroll" on the inner product loop in
    // both sources.
    kb.for_(k, 0, kb.c32(tile), 1, Unroll::both(-1), [&] {
      kb.set(acc, Val(acc) + kb.lds(as, ty * tile + Val(k)) *
                                 kb.lds(bs, Val(k) * tile + tx));
    });
    kb.barrier();
  });
  kb.st(c, row * n + col, acc);
  return kb.finish();
}

}  // namespace kernels

namespace {

class MxMBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "MxM"; }
  std::string suite() const override { return "NSDK"; }
  std::string dwarf() const override { return "Dense Linear Algebra"; }
  std::string description() const override {
    return "Matrix multiplication";
  }
  Metric metric() const override { return Metric::GFlops; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 16;
    const int n = scaled_dim(128, opts.scale, tile);

    std::vector<float> a(static_cast<std::size_t>(n) * n);
    std::vector<float> b(a.size());
    Rng rng(5);
    for (float& v : a) v = rng.next_float(-1.0f, 1.0f);
    for (float& v : b) v = rng.next_float(-1.0f, 1.0f);
    const auto da = s.upload<float>(a);
    const auto db = s.upload<float>(b);
    const auto dc = s.alloc(a.size() * 4);

    auto ck = s.compile(kernels::mxm(tile));
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(da), sim::KernelArg::ptr(db),
        sim::KernelArg::ptr(dc), sim::KernelArg::s32(n)};
    auto lr = s.launch(ck, {n / tile, n / tile, 1}, {tile, tile, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> got(a.size());
    s.download<float>(dc, got);
    std::vector<float> want(a.size(), 0.0f);
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < n; ++k) {
        const float aik = a[static_cast<std::size_t>(i) * n + k];
        for (int j = 0; j < n; ++j) {
          want[static_cast<std::size_t>(i) * n + j] +=
              aik * b[static_cast<std::size_t>(k) * n + j];
        }
      }
    }
    r->correct = nearly_equal(got, want, 2e-3f, 2e-3f);
    r->value = 2.0 * n * n * static_cast<double>(n) / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_mxm_benchmark() {
  static const MxMBenchmark b;
  return &b;
}

}  // namespace gpc::bench
