// Array sum reduction (SHOC, Table II): grid-stride load + shared-memory
// tree per block, then a single-block pass over the partials.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

namespace {
// Shared tree reduction over `block` elements of `smem`; leaves the total in
// smem[0]. Classic halving loop with a barrier per level.
void emit_tree_reduce(KernelBuilder& kb, kernel::Shared smem, int block) {
  Val tid = kb.tid_x();
  Var stride = kb.var_s32("stride");
  kb.set(stride, kb.c32(block / 2));
  kb.while_(Val(stride) > 0, [&] {
    kb.if_(tid < Val(stride), [&] {
      kb.sts(smem, tid, kb.lds(smem, tid) + kb.lds(smem, tid + Val(stride)));
    });
    kb.barrier();
    kb.set(stride, Val(stride) >> 1);
  });
}
}  // namespace

KernelDef reduce_stage1(int block) {
  KernelBuilder kb("reduce_stage1");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto partials = kb.ptr_param("partials", ir::Type::F32);
  Val n = kb.s32_param("n");
  auto smem = kb.shared_array("sdata", ir::Type::F32, block);

  Val tid = kb.tid_x();
  Val gid = kb.global_id_x();
  Val stride = kb.ntid_x() * kb.nctaid_x();
  Var sum = kb.var_f32("sum");
  kb.set(sum, kb.cf(0.0));
  Var i = kb.var_s32("i");
  kb.set(i, gid);
  kb.while_(Val(i) < n, [&] {
    kb.set(sum, Val(sum) + kb.ld(in, i));
    kb.set(i, Val(i) + stride);
  });
  kb.sts(smem, tid, sum);
  kb.barrier();
  emit_tree_reduce(kb, smem, block);
  kb.if_(tid == 0,
         [&] { kb.st(partials, kb.ctaid_x(), kb.lds(smem, kb.c32(0))); });
  return kb.finish();
}

KernelDef reduce_stage2(int block) {
  KernelBuilder kb("reduce_stage2");
  auto partials = kb.ptr_param("partials", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val n = kb.s32_param("n");
  auto smem = kb.shared_array("sdata", ir::Type::F32, block);

  Val tid = kb.tid_x();
  kb.if_else(
      tid < n, [&] { kb.sts(smem, tid, kb.ld(partials, tid)); },
      [&] { kb.sts(smem, tid, kb.cf(0.0)); });
  kb.barrier();
  emit_tree_reduce(kb, smem, block);
  kb.if_(tid == 0, [&] { kb.st(out, kb.c32(0), kb.lds(smem, kb.c32(0))); });
  return kb.finish();
}

}  // namespace kernels

namespace {

class ReduceBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "Reduce"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Reduce"; }
  std::string description() const override {
    return "Calculate a reduction of an array";
  }
  Metric metric() const override { return Metric::GBps; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 256;
    const int n = static_cast<int>(1048576 * opts.scale);
    // Stage 2 reduces the per-block partials with a single block of `block`
    // threads, so there must be at most `block` partials — small work-group
    // overrides (autotuner sweeps, fig09's wg=64 audit) used to leave the
    // excess partials out of the sum and fail verification.
    const int blocks = std::min({256, s.device().sm_count * 6, block});

    std::vector<float> data(n);
    Rng rng(3);
    // Integer-valued floats keep the sum exactly representable, so the
    // verification tolerance only has to absorb summation-order effects.
    for (float& v : data) v = static_cast<float>(rng.next_below(8));
    const auto d_in = s.upload<float>(data);
    const auto d_part = s.alloc(static_cast<std::size_t>(blocks) * 4);
    const auto d_out = s.alloc(4);

    auto k1 = s.compile(kernels::reduce_stage1(block));
    auto k2 = s.compile(kernels::reduce_stage2(block));
    std::vector<sim::KernelArg> a1 = {sim::KernelArg::ptr(d_in),
                                      sim::KernelArg::ptr(d_part),
                                      sim::KernelArg::s32(n)};
    auto lr = s.launch(k1, {blocks, 1, 1}, {block, 1, 1}, a1);
    r->stats = lr.stats.total;
    std::vector<sim::KernelArg> a2 = {sim::KernelArg::ptr(d_part),
                                      sim::KernelArg::ptr(d_out),
                                      sim::KernelArg::s32(blocks)};
    s.launch(k2, {1, 1, 1}, {block, 1, 1}, a2);

    float got = 0;
    s.read(&got, d_out, 4);
    double want = 0;
    for (float v : data) want += v;
    r->correct = std::fabs(got - want) <= 1e-5 * want + 1e-3;
    r->value = static_cast<double>(n) * 4 / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_reduce_benchmark() {
  static const ReduceBenchmark b;
  return &b;
}

}  // namespace gpc::bench
