// Molecular dynamics: Lennard-Jones forces over a fixed-size neighbour list
// (SHOC "MD", Table II). The CUDA source reads the position arrays through
// textures — the neighbour gather is irregular but spatially local, so the
// texture cache absorbs most of it. Removing the texture (Fig. 4) exposes
// the scattered reads to raw DRAM on cache-less parts.
#include <algorithm>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace {
constexpr float kCutoff2 = 13.5f;
constexpr float kLj1 = 1.5f;   // 4*eps*sigma^12 (scaled)
constexpr float kLj2 = 2.0f;   // 4*eps*sigma^6 (scaled)
constexpr int kFlopsPerInteraction = 26;  // SHOC's counting convention
}  // namespace

namespace kernels {

KernelDef md(int neighbors) {
  KernelBuilder kb("md_lj_force");
  auto posx = kb.ptr_param("posx", ir::Type::F32);
  auto posy = kb.ptr_param("posy", ir::Type::F32);
  auto posz = kb.ptr_param("posz", ir::Type::F32);
  auto neigh = kb.ptr_param("neigh", ir::Type::S32);
  auto fx = kb.ptr_param("fx", ir::Type::F32);
  auto fy = kb.ptr_param("fy", ir::Type::F32);
  auto fz = kb.ptr_param("fz", ir::Type::F32);
  Val n = kb.s32_param("n");
  auto tx = kb.texture("posxTex", ir::Type::F32);
  auto ty = kb.texture("posyTex", ir::Type::F32);
  auto tz = kb.texture("poszTex", ir::Type::F32);

  Val i = kb.global_id_x();
  kb.if_(i < n, [&] {
    Var xi = kb.var_f32("xi");
    Var yi = kb.var_f32("yi");
    Var zi = kb.var_f32("zi");
    kb.set(xi, kb.ld(posx, i));
    kb.set(yi, kb.ld(posy, i));
    kb.set(zi, kb.ld(posz, i));
    Var ax = kb.var_f32("ax");
    Var ay = kb.var_f32("ay");
    Var az = kb.var_f32("az");
    kb.set(ax, kb.cf(0.0));
    kb.set(ay, kb.cf(0.0));
    kb.set(az, kb.cf(0.0));

    Var k = kb.var_s32("k");
    Var dx = kb.var_f32("dx");
    Var dy = kb.var_f32("dy");
    Var dz = kb.var_f32("dz");
    Var r2 = kb.var_f32("r2");
    kb.for_(k, 0, kb.c32(neighbors), 1, Unroll::none(), [&] {
      // Column-major neighbour list: lane-consecutive atoms read
      // consecutive addresses.
      Val j = kb.ld(neigh, Val(k) * n + i);
      kb.set(dx, Val(xi) - kb.tex1d(tx, posx, j));
      kb.set(dy, Val(yi) - kb.tex1d(ty, posy, j));
      kb.set(dz, Val(zi) - kb.tex1d(tz, posz, j));
      // Plummer-softened to keep forces finite for synthetic inputs.
      kb.set(r2, Val(dx) * Val(dx) + Val(dy) * Val(dy) +
                     Val(dz) * Val(dz) + kb.cf(0.25));
      kb.if_(Val(r2) < kb.cf(kCutoff2), [&] {
        Val inv2 = kb.cf(1.0) / Val(r2);
        Val inv6 = inv2 * inv2 * inv2;
        Val force = inv2 * inv6 * (kb.cf(kLj1) * inv6 - kb.cf(kLj2));
        kb.set(ax, Val(ax) + force * Val(dx));
        kb.set(ay, Val(ay) + force * Val(dy));
        kb.set(az, Val(az) + force * Val(dz));
      });
    });
    kb.st(fx, i, ax);
    kb.st(fy, i, ay);
    kb.st(fz, i, az);
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

struct MdData {
  std::vector<float> x, y, z;
  std::vector<std::int32_t> neigh;  // column-major [k*n + i]
  int n = 0;
  int k = 0;
};

MdData make_md_data(int n, int k) {
  MdData d;
  d.n = n;
  d.k = k;
  d.x.resize(n);
  d.y.resize(n);
  d.z.resize(n);
  d.neigh.resize(static_cast<std::size_t>(n) * k);
  Rng rng(31);
  // Atoms along a jittered space-filling curve: index distance ~ spatial
  // distance, so neighbour indices cluster (texture-cache friendly, like a
  // spatially sorted SHOC input).
  for (int i = 0; i < n; ++i) {
    const float t = static_cast<float>(i);
    d.x[i] = 0.9f * (t * 0.37f - std::floor(t * 0.37f)) * 10.0f +
             rng.next_float(-0.05f, 0.05f);
    d.y[i] = 0.9f * (t * 0.21f - std::floor(t * 0.21f)) * 10.0f +
             rng.next_float(-0.05f, 0.05f);
    d.z[i] = t * 10.0f / n + rng.next_float(-0.05f, 0.05f);
  }
  // Wide neighbour windows (±2048 atoms, as a spatially sorted but dense
  // SHOC input produces): a warp's k-th gather scatters one lane per DRAM
  // segment, so plain loads waste ~16x of every transaction, while the
  // texture cache recovers the window's reuse across the k loop.
  for (int kk = 0; kk < k; ++kk) {
    for (int i = 0; i < n; ++i) {
      // Mixed locality, as real neighbour lists have: about two thirds of
      // the neighbours are immediate spatial neighbours (indices within
      // +-32), the rest scatter over a +-4096 window.
      const int span = kk % 3 != 0 ? 32 : 4096;
      int j = i + static_cast<int>(rng.next_below(2 * span)) - span;
      j = ((j % n) + n) % n;
      if (j == i) j = (i + 1) % n;
      d.neigh[static_cast<std::size_t>(kk) * n + i] = j;
    }
  }
  return d;
}

void md_reference(const MdData& d, std::vector<float>* fx,
                  std::vector<float>* fy, std::vector<float>* fz) {
  fx->assign(d.n, 0.0f);
  fy->assign(d.n, 0.0f);
  fz->assign(d.n, 0.0f);
  for (int i = 0; i < d.n; ++i) {
    float ax = 0, ay = 0, az = 0;
    for (int kk = 0; kk < d.k; ++kk) {
      const int j = d.neigh[static_cast<std::size_t>(kk) * d.n + i];
      const float dx = d.x[i] - d.x[j];
      const float dy = d.y[i] - d.y[j];
      const float dz = d.z[i] - d.z[j];
      const float r2 = dx * dx + dy * dy + dz * dz + 0.25f;
      if (r2 < kCutoff2) {
        const float inv2 = 1.0f / r2;
        const float inv6 = inv2 * inv2 * inv2;
        const float force = inv2 * inv6 * (kLj1 * inv6 - kLj2);
        ax += force * dx;
        ay += force * dy;
        az += force * dz;
      }
    }
    (*fx)[i] = ax;
    (*fy)[i] = ay;
    (*fz)[i] = az;
  }
}

class MdBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "MD"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "N-Body Methods"; }
  std::string description() const override { return "Molecular dynamics"; }
  Metric metric() const override { return Metric::GFlops; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = opts.workgroup > 0 ? opts.workgroup : 128;
    int n = static_cast<int>(8192 * opts.scale);
    n = std::max(block, n / block * block);
    const int k = 32;
    MdData data = make_md_data(n, k);

    const auto dx = s.upload<float>(data.x);
    const auto dy = s.upload<float>(data.y);
    const auto dz = s.upload<float>(data.z);
    const auto dn = s.upload<std::int32_t>(data.neigh);
    const auto dfx = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto dfy = s.alloc(static_cast<std::size_t>(n) * 4);
    const auto dfz = s.alloc(static_cast<std::size_t>(n) * 4);

    compiler::CompileOptions copts;
    copts.enable_textures = opts.use_texture;
    auto ck = s.compile(kernels::md(k), copts);
    s.bind_texture(0, dx, static_cast<std::size_t>(n) * 4, ir::Type::F32);
    s.bind_texture(1, dy, static_cast<std::size_t>(n) * 4, ir::Type::F32);
    s.bind_texture(2, dz, static_cast<std::size_t>(n) * 4, ir::Type::F32);

    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(dx), sim::KernelArg::ptr(dy),
        sim::KernelArg::ptr(dz), sim::KernelArg::ptr(dn),
        sim::KernelArg::ptr(dfx), sim::KernelArg::ptr(dfy),
        sim::KernelArg::ptr(dfz), sim::KernelArg::s32(n)};
    auto lr = s.launch(ck, {n / block, 1, 1}, {block, 1, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> gfx(n), gfy(n), gfz(n);
    s.download<float>(dfx, gfx);
    s.download<float>(dfy, gfy);
    s.download<float>(dfz, gfz);
    std::vector<float> wfx, wfy, wfz;
    md_reference(data, &wfx, &wfy, &wfz);
    r->correct = nearly_equal(gfx, wfx, 5e-3f, 5e-3f) &&
                 nearly_equal(gfy, wfy, 5e-3f, 5e-3f) &&
                 nearly_equal(gfz, wfz, 5e-3f, 5e-3f);

    const double interactions = static_cast<double>(n) * k;
    r->value =
        interactions * kFlopsPerInteraction / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_md_benchmark() {
  static const MdBenchmark b;
  return &b;
}

}  // namespace gpc::bench
