// Sobel X-gradient on a grey image (SELF, Table II). The architecture study
// of Fig. 8: the OpenCL source keeps the 3x3 filter in constant memory, the
// CUDA source reads it from a global buffer. On the cache-less GT200 the
// repeated global filter reads dominate the kernel; Fermi's L1 makes them
// nearly free, which is why the GTX480 numbers barely move.
#include <algorithm>
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef sobel(bool constant_filter, int tile) {
  (void)tile;
  KernelBuilder kb(constant_filter ? "sobel_x_const" : "sobel_x_global");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  auto filter_g = kb.ptr_param("filter", ir::Type::F32);
  Val w = kb.s32_param("width");
  Val h = kb.s32_param("height");

  // Sobel X coefficients, row-major 3x3.
  static const float kFilter[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  kernel::ConstArr filter_c;
  if (constant_filter) {
    filter_c = kb.const_array_f32("c_filter", kFilter);
  }

  // Naive per-pixel convolution, as the paper's SELF-written kernel: every
  // thread reads its nine neighbours and nine filter taps directly. On the
  // cache-less GT200 the uniform filter reads cost a full DRAM transaction
  // each unless the filter sits in constant memory (Fig. 8); Fermi's L1
  // absorbs them either way.
  Val gx = kb.global_id_x();
  Val gy = kb.global_id_y();
  kb.if_((gx < w) & (gy < h), [&] {
    Var sum = kb.var_f32("sum");
    kb.set(sum, kb.cf(0.0));
    Var ky = kb.var_s32("ky");
    Var kx = kb.var_s32("kx");
    kb.if_else(
        (gx > 0) & (gx < w - 1) & (gy > 0) & (gy < h - 1),
        [&] {
          kb.for_(ky, 0, kb.c32(3), 1, Unroll::both(-1), [&] {
            kb.for_(kx, 0, kb.c32(3), 1, Unroll::both(-1), [&] {
              Val coef = constant_filter
                             ? kb.ldc(filter_c, Val(ky) * 3 + Val(kx))
                             : kb.ld(filter_g, Val(ky) * 3 + Val(kx));
              Val pix = kb.ld(in, (gy + Val(ky) - 1) * w + (gx + Val(kx) - 1));
              kb.set(sum, Val(sum) + coef * pix);
            });
          });
          kb.st(out, gy * w + gx, sum);
        },
        [&] { kb.st(out, gy * w + gx, kb.cf(0.0)); });
  });
  return kb.finish();
}

}  // namespace kernels

namespace {

void sobel_reference(const std::vector<float>& in, int w, int h,
                     std::vector<float>* out) {
  static const float f[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
  out->assign(static_cast<std::size_t>(w) * h, 0.0f);
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      float s = 0;
      for (int ky = 0; ky < 3; ++ky) {
        for (int kx = 0; kx < 3; ++kx) {
          s += f[ky * 3 + kx] * in[(y + ky - 1) * w + (x + kx - 1)];
        }
      }
      (*out)[y * w + x] = s;
    }
  }
}

class SobelBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "Sobel"; }
  std::string suite() const override { return "SELF"; }
  std::string dwarf() const override { return "Dense Linear Algebra"; }
  std::string description() const override {
    return "Sobel operator on a gray image in X direction";
  }
  Metric metric() const override { return Metric::Seconds; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int tile = 16;
    const int w = scaled_dim(512, opts.scale, tile);
    const int h = w;
    const bool constant_filter = s.toolchain() == arch::Toolchain::Cuda
                                     ? opts.sobel_constant_cuda
                                     : opts.sobel_constant_opencl;

    std::vector<float> img(static_cast<std::size_t>(w) * h);
    Rng rng(7);
    for (float& v : img) v = rng.next_float(0.0f, 255.0f);
    static const float kFilter[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};

    const auto d_in = s.upload<float>(img);
    const auto d_out = s.alloc(img.size() * 4);
    const auto d_filter = s.upload<float>(std::span<const float>(kFilter));

    auto ck = s.compile(kernels::sobel(constant_filter, tile));
    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(d_in), sim::KernelArg::ptr(d_out),
        sim::KernelArg::ptr(d_filter), sim::KernelArg::s32(w),
        sim::KernelArg::s32(h)};
    auto lr = s.launch(ck, {w / tile, h / tile, 1}, {tile, tile, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> got(img.size());
    s.download<float>(d_out, got);
    std::vector<float> want;
    sobel_reference(img, w, h, &want);
    r->correct = nearly_equal(got, want, 1e-4f, 1e-3f);
    r->value = s.kernel_seconds();
  }
};

}  // namespace

const Benchmark* make_sobel_benchmark() {
  static const SobelBenchmark b;
  return &b;
}

}  // namespace gpc::bench
