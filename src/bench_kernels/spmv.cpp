// Sparse matrix-vector multiplication, CSR format (SHOC "SPMV", Table II).
// Two kernels: the scalar thread-per-row version and the vector
// (warp-per-row) version with a shared-memory partial reduction. The source
// vector x is read through texture unit 0 under CUDA (Fig. 4/5); §V's CPU
// study shows the warp-oriented kernel collapsing on the Intel920.
#include <vector>

#include "bench_kernels/common.h"
#include "bench_kernels/kernels.h"
#include "bench_kernels/registry.h"

namespace gpc::bench {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

namespace kernels {

KernelDef spmv_scalar() {
  KernelBuilder kb("spmv_csr_scalar");
  auto rowptr = kb.ptr_param("rowptr", ir::Type::S32);
  auto cols = kb.ptr_param("cols", ir::Type::S32);
  auto vals = kb.ptr_param("vals", ir::Type::F32);
  auto x = kb.ptr_param("x", ir::Type::F32);
  auto y = kb.ptr_param("y", ir::Type::F32);
  Val n = kb.s32_param("n");
  auto xt = kb.texture("xTex", ir::Type::F32);

  Val row = kb.global_id_x();
  kb.if_(row < n, [&] {
    Var sum = kb.var_f32("sum");
    kb.set(sum, kb.cf(0.0));
    Var j = kb.var_s32("j");
    kb.for_(j, kb.ld(rowptr, row), kb.ld(rowptr, row + 1), kb.c32(1),
            Unroll::none(), [&] {
              kb.set(sum, Val(sum) + kb.ld(vals, Val(j)) *
                                         kb.tex1d(xt, x, kb.ld(cols, Val(j))));
            });
    kb.st(y, row, sum);
  });
  return kb.finish();
}

KernelDef spmv_vector(int block) {
  const int warp = 32;  // the CUDA source bakes in its warp size
  KernelBuilder kb("spmv_csr_vector");
  auto rowptr = kb.ptr_param("rowptr", ir::Type::S32);
  auto cols = kb.ptr_param("cols", ir::Type::S32);
  auto vals = kb.ptr_param("vals", ir::Type::F32);
  auto x = kb.ptr_param("x", ir::Type::F32);
  auto y = kb.ptr_param("y", ir::Type::F32);
  Val n = kb.s32_param("n");
  auto xt = kb.texture("xTex", ir::Type::F32);
  auto part = kb.shared_array("partials", ir::Type::F32, block);

  Val tid = kb.tid_x();
  Val lane = tid & (warp - 1);
  Val wid = tid >> 5;
  Val row = kb.ctaid_x() * (block / warp) + wid;

  Var sum = kb.var_f32("sum");
  kb.set(sum, kb.cf(0.0));
  Var j = kb.var_s32("j");
  Var row_end = kb.var_s32("row_end");
  kb.if_(row < n, [&] {
    kb.set(j, kb.ld(rowptr, row) + lane);
    kb.set(row_end, kb.ld(rowptr, row + 1));
    kb.while_(Val(j) < Val(row_end), [&] {
      kb.set(sum, Val(sum) + kb.ld(vals, Val(j)) *
                                 kb.tex1d(xt, x, kb.ld(cols, Val(j))));
      kb.set(j, Val(j) + warp);
    });
  });
  kb.sts(part, tid, sum);
  kb.barrier();
  // Tree reduction within each 32-lane segment (barriers keep it portable —
  // the slowness on CPUs comes from the barrier-serialised schedule itself).
  for (int s = warp / 2; s > 0; s >>= 1) {
    kb.if_(lane < s, [&] {
      kb.sts(part, tid, kb.lds(part, tid) + kb.lds(part, tid + s));
    });
    kb.barrier();
  }
  kb.if_((lane == 0) & (row < n),
         [&] { kb.st(y, row, kb.lds(part, tid)); });
  return kb.finish();
}

}  // namespace kernels

namespace {

struct Csr {
  std::vector<std::int32_t> rowptr, cols;
  std::vector<float> vals, x;
  int n = 0;
  int nnz() const { return static_cast<int>(cols.size()); }
};

Csr make_csr(int n, int nnz_per_row) {
  Csr m;
  m.n = n;
  m.rowptr.resize(n + 1);
  Rng rng(37);
  for (int i = 0; i < n; ++i) {
    m.rowptr[i] = static_cast<std::int32_t>(m.cols.size());
    // Banded sparsity (±2048 columns): the x gathers scatter one lane per
    // DRAM segment without the texture cache.
    for (int e = 0; e < nnz_per_row; ++e) {
      int c = i + static_cast<int>(rng.next_below(4096)) - 2048;
      m.cols.push_back(std::clamp(c, 0, n - 1));
      m.vals.push_back(rng.next_float(-1.0f, 1.0f));
    }
  }
  m.rowptr[n] = static_cast<std::int32_t>(m.cols.size());
  m.x.resize(n);
  for (float& v : m.x) v = rng.next_float(-1.0f, 1.0f);
  return m;
}

class SpmvBenchmark final : public BenchmarkBase {
 public:
  std::string name() const override { return "SPMV"; }
  std::string suite() const override { return "SHOC"; }
  std::string dwarf() const override { return "Sparse Linear Algebra"; }
  std::string description() const override {
    return "Multiplication of sparse matrix and vector (CSR)";
  }
  Metric metric() const override { return Metric::GFlops; }

 protected:
  void run_impl(harness::DeviceSession& s, const Options& opts,
                Result* r) const override {
    const int block = 128;
    int n = static_cast<int>(8192 * opts.scale);
    n = std::max(block, n / block * block);
    const Csr m = make_csr(n, 32);

    const auto d_rowptr = s.upload<std::int32_t>(m.rowptr);
    const auto d_cols = s.upload<std::int32_t>(m.cols);
    const auto d_vals = s.upload<float>(m.vals);
    const auto d_x = s.upload<float>(m.x);
    const auto d_y = s.alloc(static_cast<std::size_t>(n) * 4);

    // The "warp-oriented" kernel is the GPU default; serialising runtimes
    // default to the scalar kernel, matching how the paper reports Table VI
    // (and its §V experiment flips this).
    const bool vector = opts.spmv_force_vector ||
                        (opts.spmv_vector && s.device().warp_size >= 32);

    compiler::CompileOptions copts;
    copts.enable_textures = opts.use_texture;
    auto ck = s.compile(
        vector ? kernels::spmv_vector(block) : kernels::spmv_scalar(), copts);
    s.bind_texture(0, d_x, static_cast<std::size_t>(n) * 4, ir::Type::F32);

    std::vector<sim::KernelArg> args = {
        sim::KernelArg::ptr(d_rowptr), sim::KernelArg::ptr(d_cols),
        sim::KernelArg::ptr(d_vals), sim::KernelArg::ptr(d_x),
        sim::KernelArg::ptr(d_y), sim::KernelArg::s32(n)};
    const int rows_per_block = vector ? block / 32 : block;
    const int grid = (n + rows_per_block - 1) / rows_per_block;
    auto lr = s.launch(ck, {grid, 1, 1}, {block, 1, 1}, args);
    r->stats = lr.stats.total;

    std::vector<float> got(n);
    s.download<float>(d_y, got);
    std::vector<float> want(n, 0.0f);
    for (int i = 0; i < n; ++i) {
      float sum = 0;
      for (int j = m.rowptr[i]; j < m.rowptr[i + 1]; ++j) {
        sum += m.vals[j] * m.x[m.cols[j]];
      }
      want[i] = sum;
    }
    // The warp reduction reorders the summation; tolerance absorbs it.
    r->correct = nearly_equal(got, want, 1e-3f, 1e-3f);
    r->value = 2.0 * m.nnz() / s.kernel_seconds() / 1e9;
  }
};

}  // namespace

const Benchmark* make_spmv_benchmark() {
  static const SpmvBenchmark b;
  return &b;
}

}  // namespace gpc::bench
