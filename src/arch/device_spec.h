// Device models for the five platforms of the paper (Tables III & IV):
// NVIDIA GTX280 (GT200), NVIDIA GTX480 (Fermi), ATI Radeon HD5870 (Cypress),
// Intel Core i7-920 (X86, used as an OpenCL CPU device through AMD APP), and
// the Cell Broadband Engine (IBM OpenCL).
//
// A DeviceSpec carries three kinds of data:
//   1. the specification values the paper prints in Table IV,
//   2. microarchitectural parameters the simulator needs (lockstep width,
//      cache topology, coalescing granularity, bank count, resource limits),
//   3. calibration constants mapping theoretical to achieved peak rates.
//      These are the only "fitted" numbers in the reproduction; everything
//      else (who wins, crossovers, failures) emerges from simulation. Each
//      constant is documented next to its value in devices.cpp.
#pragma once

#include <string>

namespace gpc::arch {

enum class Vendor { Nvidia, Amd, Ibm, Intel };
enum class ArchFamily { GT200, Fermi, Cypress, X86, CellBE };

/// Which toolchain produced and launches the kernel. The paper's entire
/// subject is the behavioural difference between these two.
enum class Toolchain { Cuda, OpenCl };

const char* to_string(Vendor v);
const char* to_string(ArchFamily f);
const char* to_string(Toolchain t);

struct DeviceSpec {
  std::string name;        // marketing name, e.g. "GeForce GTX 480"
  std::string short_name;  // paper name, e.g. "GTX480"
  Vendor vendor = Vendor::Nvidia;
  ArchFamily family = ArchFamily::Fermi;

  // ---- Table IV values (printed verbatim by bench/table03_platforms) ----
  int compute_units_paper = 0;  // "#Compute Unit" as the paper counts it
  int cores = 0;                // "#Cores"
  int processing_elements = 0;  // "#Processing Elements" (ATI only, else 0)
  double core_clock_mhz = 0;    // shader clock
  double mem_clock_mhz = 0;     // "Memory Clock(MHz)" as listed in Table IV
  int miw_bits = 0;             // memory interface width
  double mem_capacity_gb = 0;
  std::string mem_type;         // "GDDR5", ...

  // ---- Execution model ----
  int sm_count = 0;           // simulated compute units
  int cores_per_sm = 0;       // scalar lanes issuing per cycle per CU
  int warp_size = 32;         // hardware lockstep width; 1 = work-items are
                              // serialized to the next barrier (CPU runtimes)
  int max_threads_per_sm = 1024;
  int max_threads_per_group = 512;
  int max_groups_per_sm = 8;
  int shared_mem_per_sm = 16 << 10;   // bytes
  int regs_per_sm = 16 << 10;         // 32-bit registers
  int max_regs_per_thread = 128;      // compiler/runtime per-thread cap
  int max_code_bytes = 0;             // kernel code-size cap (0 = none);
                                      // Cell/BE SPE code shares the 256 KB
                                      // local store with data
  bool private_mem_in_local_store = false;  // Cell/BE: per-work-item private
                                            // arrays also consume the local
                                            // store budget

  // ---- Memory system ----
  double mem_transfers_per_clock = 2;  // Eq. 2 uses 2 (DDR); HD5870 GDDR5 is
                                       // quad-pumped relative to its listed
                                       // 1200 MHz command clock
  bool has_l1 = false;      // Fermi-only among the GPUs
  bool has_l2 = false;
  int l1_bytes = 0;
  int l2_bytes = 0;
  bool has_texture_cache = false;
  int tex_cache_bytes = 0;
  bool has_constant_cache = false;
  int const_cache_bytes = 0;
  int dram_segment_bytes = 64;  // coalescing transaction granularity
  int shared_banks = 16;
  int icache_bytes = 4 << 10;  // per-SM instruction cache; kernels whose
                               // body exceeds it pay an issue penalty
  double dram_latency_cycles = 440;  // exposed when occupancy is too low

  // ---- Compute issue ----
  bool dual_issue_mul_mad = false;  // GT200: mul+mad co-issue (R = 3)
  int flops_per_core_per_clock = 2; // R in Eq. 3
  double sfu_cost_scale = 4.0;      // transcendental ops vs simple ALU ops

  // ---- Calibration constants (achieved/theoretical, see devices.cpp) ----
  double dram_eff_cuda = 0.80;    // perfect-stream efficiency under CUDA
  double dram_eff_opencl = 0.80;  // ... under OpenCL
  double flop_eff_cuda = 0.95;
  double flop_eff_opencl = 0.95;

  // ---- Host link ----
  double pcie_gb_per_s = 5.2;

  // Derived, Eq. 2 of the paper: TP_BW = MC * (MIW/8) * transfers * 1e-9.
  double theoretical_bandwidth_gbs() const {
    return mem_clock_mhz * 1e6 * (miw_bits / 8.0) * mem_transfers_per_clock *
           1e-9;
  }

  // Derived, Eq. 3 of the paper: TP_FLOPS = CC * #Cores * R * 1e-9.
  double theoretical_gflops() const {
    return core_clock_mhz * 1e6 * cores * flops_per_core_per_clock * 1e-9;
  }

  double dram_efficiency(Toolchain tc) const {
    return tc == Toolchain::Cuda ? dram_eff_cuda : dram_eff_opencl;
  }
  double flop_efficiency(Toolchain tc) const {
    return tc == Toolchain::Cuda ? flop_eff_cuda : flop_eff_opencl;
  }

  bool is_cpu_like() const { return family == ArchFamily::X86; }
  bool is_gpu() const {
    return family == ArchFamily::GT200 || family == ArchFamily::Fermi ||
           family == ArchFamily::Cypress;
  }
};

/// Per-toolchain runtime behaviour that is independent of the device.
struct RuntimeSpec {
  Toolchain toolchain = Toolchain::Cuda;
  // Time from enqueue to kernel start. The paper (§IV-B.4) observes that the
  // OpenCL launch path is slower than CUDA's and that this dominates
  // iterative multi-launch applications like BFS. Values follow Karimi et
  // al. [18]-style measurements (order of magnitude).
  double launch_overhead_us = 7.0;
  // Additional per-launch cost proportional to grid size (driver builds the
  // dispatch descriptor); tiny but measurable.
  double launch_overhead_us_per_1k_groups = 0.25;
};

RuntimeSpec cuda_runtime();
RuntimeSpec opencl_runtime();

// The five devices of the paper. References are to static storage.
const DeviceSpec& gtx280();
const DeviceSpec& gtx480();
const DeviceSpec& hd5870();
const DeviceSpec& intel920();
const DeviceSpec& cellbe();

/// Looks a device up by its paper short name ("GTX280", ...); throws
/// InvalidArgument for unknown names.
const DeviceSpec& device_by_name(const std::string& short_name);

/// Host platform descriptions (paper Table III).
struct PlatformConfig {
  std::string platform_name;  // "Saturn", "Dutijc", "Jupiter"
  std::string host_cpu;
  std::string gpu_short_name;
  std::string gcc_version;
  std::string cuda_version;  // "-" when not applicable
  std::string app_version;   // "-" when not applicable
};

/// The three testbeds of Table III, in paper order (Saturn, Dutijc, Jupiter).
const PlatformConfig* platforms(int* count);

}  // namespace gpc::arch
