#include "arch/device_spec.h"

#include "common/error.h"

namespace gpc::arch {

const char* to_string(Vendor v) {
  switch (v) {
    case Vendor::Nvidia: return "NVIDIA";
    case Vendor::Amd: return "AMD";
    case Vendor::Ibm: return "IBM";
    case Vendor::Intel: return "Intel";
  }
  return "?";
}

const char* to_string(ArchFamily f) {
  switch (f) {
    case ArchFamily::GT200: return "GT200s";
    case ArchFamily::Fermi: return "Fermi";
    case ArchFamily::Cypress: return "Cypress";
    case ArchFamily::X86: return "x86";
    case ArchFamily::CellBE: return "Cell/BE";
  }
  return "?";
}

const char* to_string(Toolchain t) {
  return t == Toolchain::Cuda ? "CUDA" : "OpenCL";
}

RuntimeSpec cuda_runtime() {
  RuntimeSpec rs;
  rs.toolchain = Toolchain::Cuda;
  // Kernel-launch latency on the CUDA 3.2 driver path; the paper's §IV-B.4
  // notes OpenCL's is longer and that the gap grows with problem size.
  rs.launch_overhead_us = 7.0;
  rs.launch_overhead_us_per_1k_groups = 0.2;
  return rs;
}

RuntimeSpec opencl_runtime() {
  RuntimeSpec rs;
  rs.toolchain = Toolchain::OpenCl;
  // Command-queue enqueue + dispatch is heavier in the OpenCL 1.1 runtime.
  rs.launch_overhead_us = 17.0;
  rs.launch_overhead_us_per_1k_groups = 0.5;
  return rs;
}

namespace {

DeviceSpec make_gtx280() {
  DeviceSpec d;
  d.name = "GeForce GTX 280";
  d.short_name = "GTX280";
  d.vendor = Vendor::Nvidia;
  d.family = ArchFamily::GT200;

  // Table IV row.
  d.compute_units_paper = 30;
  d.cores = 240;
  d.processing_elements = 0;
  d.core_clock_mhz = 1296;
  d.mem_clock_mhz = 1107;
  d.miw_bits = 512;
  d.mem_capacity_gb = 1.0;
  d.mem_type = "GDDR3";

  // GT200 microarchitecture: 30 SMs x 8 SPs, 16 KB shared / 16 K regs per
  // SM, no general-purpose data cache, 16 shared-memory banks, 64 B
  // coalescing segments (compute capability 1.3 rules).
  d.sm_count = 30;
  d.cores_per_sm = 8;
  d.warp_size = 32;
  d.max_threads_per_sm = 1024;
  d.max_threads_per_group = 512;
  d.max_groups_per_sm = 8;
  d.shared_mem_per_sm = 16 << 10;
  d.regs_per_sm = 16 << 10;
  d.max_regs_per_thread = 124;
  d.mem_transfers_per_clock = 2;  // GDDR3, matches the paper's Eq. 2
  d.has_l1 = false;
  d.has_l2 = false;
  d.has_texture_cache = true;
  d.tex_cache_bytes = 8 << 10;  // per-SM L1 texture cache
  d.has_constant_cache = true;
  d.const_cache_bytes = 8 << 10;
  d.dram_segment_bytes = 64;
  d.shared_banks = 16;
  d.icache_bytes = 8 << 10;
  d.dram_latency_cycles = 500;
  d.dual_issue_mul_mad = true;  // mad+mul co-issue => R = 3 in Eq. 3
  d.flops_per_core_per_clock = 3;
  d.sfu_cost_scale = 4.0;

  // CALIBRATION. Figure 1 reports the OpenCL DeviceMemory benchmark reaching
  // 68.6% of TP_BW on GTX280 and beating CUDA by 8.5%; Figure 2 reports both
  // models achieving ~71.5% of TP_FLOPS with the mul/mad interleave. The
  // constants below are fitted by tools/calibrate.py so the *measured*
  // synthetic benchmarks land on the paper's achieved-peak values; they are
  // model-correction factors, not physical efficiencies, and may sit
  // slightly above the paper's raw percentages to absorb modelled overheads
  // (launch latency, loop issue slots) the paper's timer placement did not
  // capture.
  d.dram_eff_opencl = 0.7363;  // GPC_CALIB GTX280 dram_opencl target 97.21
  d.dram_eff_cuda = 0.6554;    // GPC_CALIB GTX280 dram_cuda target 89.55
  d.flop_eff_cuda = 0.7495;    // GPC_CALIB GTX280 flop_cuda target 667.18
  d.flop_eff_opencl = 0.7600;  // GPC_CALIB GTX280 flop_opencl target 664.38
  d.pcie_gb_per_s = 5.2;
  return d;
}

DeviceSpec make_gtx480() {
  DeviceSpec d;
  d.name = "GeForce GTX 480";
  d.short_name = "GTX480";
  d.vendor = Vendor::Nvidia;
  d.family = ArchFamily::Fermi;

  // Table IV row. (The paper counts 60 "compute units"; microarchitecturally
  // GF100 has 15 SMs x 32 cores — we print the paper's number in Table IV
  // and simulate the 15-SM organisation.)
  d.compute_units_paper = 60;
  d.cores = 480;
  d.processing_elements = 0;
  d.core_clock_mhz = 1401;
  d.mem_clock_mhz = 1848;
  d.miw_bits = 384;
  d.mem_capacity_gb = 1.5;
  d.mem_type = "GDDR5";

  d.sm_count = 15;
  d.cores_per_sm = 32;
  d.warp_size = 32;
  d.max_threads_per_sm = 1536;
  d.max_threads_per_group = 1024;
  d.max_groups_per_sm = 8;
  d.shared_mem_per_sm = 48 << 10;  // 48 KB shared / 16 KB L1 configuration
  d.regs_per_sm = 32 << 10;
  d.max_regs_per_thread = 63;
  d.mem_transfers_per_clock = 2;
  d.has_l1 = true;
  d.l1_bytes = 16 << 10;
  d.has_l2 = true;
  d.l2_bytes = 768 << 10;
  d.has_texture_cache = true;
  d.tex_cache_bytes = 12 << 10;
  d.has_constant_cache = true;
  d.const_cache_bytes = 8 << 10;
  d.dram_segment_bytes = 128;  // L1 cache-line granularity
  d.shared_banks = 32;
  d.icache_bytes = 12 << 10;
  d.dram_latency_cycles = 400;
  d.dual_issue_mul_mad = false;  // Fermi: FMA only, R = 2
  d.flops_per_core_per_clock = 2;
  d.sfu_cost_scale = 8.0;

  // CALIBRATION (see GTX280 note; fitted by tools/calibrate.py). Figure 1:
  // OpenCL reaches 87.7% of TP_BW and beats CUDA by 2.4%; Figure 2: ~97.7%
  // of TP_FLOPS for both models (mad-only issue).
  d.dram_eff_opencl = 0.9738;  // GPC_CALIB GTX480 dram_opencl target 155.58
  d.dram_eff_cuda = 0.9004;    // GPC_CALIB GTX480 dram_cuda target 151.93
  d.flop_eff_cuda = 1.0907;    // GPC_CALIB GTX480 flop_cuda target 1314.03
  d.flop_eff_opencl = 1.2269;  // GPC_CALIB GTX480 flop_opencl target 1311.34
  d.pcie_gb_per_s = 5.6;
  return d;
}

DeviceSpec make_hd5870() {
  DeviceSpec d;
  d.name = "ATI Radeon HD5870";
  d.short_name = "HD5870";
  d.vendor = Vendor::Amd;
  d.family = ArchFamily::Cypress;

  // Table IV row.
  d.compute_units_paper = 20;
  d.cores = 320;
  d.processing_elements = 1600;
  d.core_clock_mhz = 850;
  d.mem_clock_mhz = 1200;
  d.miw_bits = 256;
  d.mem_capacity_gb = 1.0;
  d.mem_type = "GDDR5";

  // Cypress: 20 SIMD engines, 16 VLIW5 units each (80 lanes per engine),
  // 64-wide wavefronts, 32 KB LDS with 32 banks.
  d.sm_count = 20;
  d.cores_per_sm = 80;
  d.warp_size = 64;  // wavefront size — the RdxS failure hinges on this
  d.max_threads_per_sm = 1536;
  d.max_threads_per_group = 256;
  d.max_groups_per_sm = 8;
  d.shared_mem_per_sm = 32 << 10;
  d.regs_per_sm = 16 << 10;
  d.max_regs_per_thread = 128;
  d.mem_transfers_per_clock = 4;  // GDDR5 quad rate vs the listed 1200 MHz
  d.has_l1 = false;
  d.has_l2 = false;
  d.has_texture_cache = true;
  d.tex_cache_bytes = 8 << 10;
  d.has_constant_cache = true;
  d.const_cache_bytes = 8 << 10;
  d.dram_segment_bytes = 64;
  d.shared_banks = 32;
  d.dram_latency_cycles = 500;
  d.dual_issue_mul_mad = false;
  d.flops_per_core_per_clock = 2;
  d.sfu_cost_scale = 4.0;

  // CALIBRATION. Table VI shows HD5870 roughly on par with GTX280 for most
  // CUDA-SDK-style kernels without retuning: scalar kernels occupy only one
  // of the five VLIW slots (~0.35 packing) and streaming efficiency on
  // Cypress under APP 2.2 is mid-range.
  d.dram_eff_opencl = 0.62;
  d.dram_eff_cuda = 0.62;  // unused: no CUDA on ATI
  d.flop_eff_opencl = 0.35;
  d.flop_eff_cuda = 0.35;
  d.pcie_gb_per_s = 5.0;
  return d;
}

DeviceSpec make_intel920() {
  DeviceSpec d;
  d.name = "Intel(R) Core(TM) i7 CPU 920 @ 2.67GHz";
  d.short_name = "Intel920";
  d.vendor = Vendor::Intel;
  d.family = ArchFamily::X86;

  d.compute_units_paper = 4;
  d.cores = 4;
  d.processing_elements = 0;
  d.core_clock_mhz = 2670;
  d.mem_clock_mhz = 533;  // DDR3-1066, triple channel
  d.miw_bits = 192;
  d.mem_capacity_gb = 6.0;
  d.mem_type = "DDR3";

  // AMD APP 2.2 CPU runtime: one worker thread per core; work-items of a
  // group run to the next barrier one after another (lockstep width 1).
  // This is what breaks warp-synchronous kernels like RdxS (§V).
  d.sm_count = 4;
  d.cores_per_sm = 4;  // SSE lanes
  d.warp_size = 1;
  d.max_threads_per_sm = 1024;
  d.max_threads_per_group = 1024;
  d.max_groups_per_sm = 1;
  d.shared_mem_per_sm = 32 << 10;  // emulated in cached system memory
  d.regs_per_sm = 1 << 20;
  d.max_regs_per_thread = 256;
  d.mem_transfers_per_clock = 2;
  d.has_l1 = true;
  d.l1_bytes = 32 << 10;
  d.has_l2 = true;
  d.l2_bytes = 8 << 20;  // shared L3, modelled as one level
  d.has_texture_cache = false;  // images fall back to plain cached loads
  d.has_constant_cache = true;  // constant data is just cached memory
  d.const_cache_bytes = 32 << 10;
  d.dram_segment_bytes = 64;  // cache line
  d.shared_banks = 1;         // no banked scratchpad — no conflicts either
  d.dram_latency_cycles = 200;
  d.dual_issue_mul_mad = false;
  d.flops_per_core_per_clock = 8;  // 4-wide SSE mul+add
  d.sfu_cost_scale = 10.0;

  // CALIBRATION. The APP CPU compiler of 2010/2011 did not vectorise across
  // work-items; Table VI's CPU rows (e.g. MxM 0.886 GFlops, Reduce ~1 GB/s)
  // are consistent with scalar per-work-item code plus scheduling overhead.
  d.dram_eff_opencl = 0.30;
  d.dram_eff_cuda = 0.30;
  d.flop_eff_opencl = 0.055;
  d.flop_eff_cuda = 0.055;
  d.pcie_gb_per_s = 8.0;  // "transfers" are in-memory copies
  return d;
}

DeviceSpec make_cellbe() {
  DeviceSpec d;
  d.name = "Cell Broadband Engine";
  d.short_name = "Cell/BE";
  d.vendor = Vendor::Ibm;
  d.family = ArchFamily::CellBE;

  d.compute_units_paper = 8;  // SPEs
  d.cores = 8;
  d.processing_elements = 0;
  d.core_clock_mhz = 3200;
  d.mem_clock_mhz = 1600;  // XDR, modelled as 25.6 GB/s
  d.miw_bits = 64;
  d.mem_capacity_gb = 1.0;
  d.mem_type = "XDR";

  // IBM OpenCL (Dec 2010): SPE work-item serialisation, 256 KB local store
  // per SPE shared between code, stack, register spill and OpenCL local
  // memory. The published limits were tight; register-hungry or local-
  // memory-hungry kernels fail at enqueue with CL_OUT_OF_RESOURCES, which
  // is exactly Table VI's "ABT" entries.
  d.sm_count = 8;
  d.cores_per_sm = 4;  // SPU 4-wide SIMD
  d.warp_size = 1;
  d.max_threads_per_sm = 256;
  d.max_threads_per_group = 256;
  d.max_groups_per_sm = 1;
  // The 256 KB local store holds code, stack, spill and OpenCL local memory;
  // IBM's runtime reserved most of it, leaving a ~3.5 KB usable local-memory
  // budget per work-group. FFT/DXTC/RdxS/STNW exceed it (or the register
  // budget below) and abort at enqueue — Table VI's "ABT" rows.
  d.shared_mem_per_sm = 3584;
  d.regs_per_sm = 16 << 10;
  d.max_regs_per_thread = 40;  // spill space in the local store runs out
  d.max_code_bytes = 64 << 10;  // SPE text segment budget
  d.private_mem_in_local_store = true;
  d.mem_transfers_per_clock = 2;
  d.has_l1 = false;
  d.has_l2 = false;
  d.has_texture_cache = false;
  d.has_constant_cache = false;  // constants are DMAed like everything else
  d.dram_segment_bytes = 128;    // DMA granularity
  d.shared_banks = 1;
  d.dram_latency_cycles = 600;
  d.dual_issue_mul_mad = false;
  d.flops_per_core_per_clock = 8;
  d.sfu_cost_scale = 12.0;

  // CALIBRATION. Table VI's Cell/BE rows are one to two orders of magnitude
  // below the GPUs (MxM 1.47 GFlops, Reduce 0.05 GB/s): the SPE code path
  // in IBM's OpenCL interpreted work-items scalarly and DMA pipelining was
  // poor for irregular access.
  d.dram_eff_opencl = 0.10;
  d.dram_eff_cuda = 0.10;
  d.flop_eff_opencl = 0.03;
  d.flop_eff_cuda = 0.03;
  d.pcie_gb_per_s = 4.0;
  return d;
}

const PlatformConfig kPlatforms[] = {
    {"Saturn", "Intel(R) Core(TM) i7 CPU 920@2.67GHz", "GTX480", "4.4.1",
     "3.2", "-"},
    {"Dutijc", "Intel(R) Core(TM) i7 CPU 920@2.67GHz", "GTX280", "4.4.3",
     "3.2", "-"},
    {"Jupiter", "Intel(R) Core(TM) i7 CPU 920@2.67GHz", "HD5870", "4.4.1", "-",
     "2.2"},
};

}  // namespace

const DeviceSpec& gtx280() {
  static const DeviceSpec d = make_gtx280();
  return d;
}
const DeviceSpec& gtx480() {
  static const DeviceSpec d = make_gtx480();
  return d;
}
const DeviceSpec& hd5870() {
  static const DeviceSpec d = make_hd5870();
  return d;
}
const DeviceSpec& intel920() {
  static const DeviceSpec d = make_intel920();
  return d;
}
const DeviceSpec& cellbe() {
  static const DeviceSpec d = make_cellbe();
  return d;
}

const DeviceSpec& device_by_name(const std::string& short_name) {
  for (const DeviceSpec* d :
       {&gtx280(), &gtx480(), &hd5870(), &intel920(), &cellbe()}) {
    if (d->short_name == short_name) return *d;
  }
  throw InvalidArgument("unknown device: " + short_name);
}

const PlatformConfig* platforms(int* count) {
  *count = static_cast<int>(std::size(kPlatforms));
  return kPlatforms;
}

}  // namespace gpc::arch
