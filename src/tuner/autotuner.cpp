#include "tuner/autotuner.h"

#include <algorithm>

#include "common/log.h"

namespace gpc::tuner {

std::vector<int> candidate_workgroups(const arch::DeviceSpec& device) {
  std::vector<int> out;
  const int lo = std::max(32, device.warp_size);
  const int hi = std::min(512, device.max_threads_per_group);
  for (int w = lo; w <= hi; w <<= 1) out.push_back(w);
  if (out.empty()) out.push_back(device.max_threads_per_group);
  return out;
}

namespace {
double performance_of(const bench::Result& r) {
  if (!r.ok() || r.value <= 0) return 0;
  return bench::higher_is_better(r.metric) ? r.value : 1.0 / r.value;
}
}  // namespace

TuneReport tune(const bench::Benchmark& benchmark,
                const arch::DeviceSpec& device, arch::Toolchain tc,
                bench::Options base_options) {
  TuneReport report;

  bench::Options defaults = base_options;
  defaults.workgroup = 0;
  const bench::Result default_result = benchmark.run(device, tc, defaults);
  report.default_value = default_result.value;
  const double default_perf = performance_of(default_result);

  double best_perf = 0;
  for (int w : candidate_workgroups(device)) {
    bench::Options opts = base_options;
    opts.workgroup = w;
    Sample s;
    s.workgroup = w;
    s.result = benchmark.run(device, tc, opts);
    GPC_LOG(Info) << "tune " << benchmark.name() << " on "
                  << device.short_name << " wg=" << w << " -> "
                  << s.result.status << " " << s.result.value;
    const double perf = performance_of(s.result);
    if (perf > best_perf) {
      best_perf = perf;
      report.best_workgroup = w;
      report.best_value = s.result.value;
    }
    report.samples.push_back(std::move(s));
  }
  report.improvement = default_perf > 0 ? best_perf / default_perf : 0;
  return report;
}

}  // namespace gpc::tuner
