// Work-group-size auto-tuner — the future work the paper announces in §VI
// ("we would like to develop an auto-tuner to adapt general-purpose OpenCL
// programs to all available specific platforms").
//
// Strategy: exhaustive sweep over candidate work-group sizes (filtered to
// the device's limits), re-running the benchmark and keeping the best
// verified result. Deliberately simple — it is the baseline every fancier
// tuner is measured against.
#pragma once

#include <string>
#include <vector>

#include "arch/device_spec.h"
#include "harness/benchmark.h"

namespace gpc::tuner {

struct Sample {
  int workgroup = 0;
  bench::Result result;
};

struct TuneReport {
  std::vector<Sample> samples;   // all attempted sizes, in sweep order
  int best_workgroup = 0;        // 0 = nothing verified
  double best_value = 0;         // metric value of the winner
  double default_value = 0;      // value at the benchmark's default size
  /// best/default in performance terms (>1 means tuning helped).
  double improvement = 0;
};

/// Candidate sizes: powers of two from 32 (or the device wavefront) up to
/// the device's work-group limit, capped at 512.
std::vector<int> candidate_workgroups(const arch::DeviceSpec& device);

/// Sweeps work-group sizes for `benchmark` on device+toolchain. Results
/// that fail verification or abort are recorded but never win.
TuneReport tune(const bench::Benchmark& benchmark,
                const arch::DeviceSpec& device, arch::Toolchain tc,
                bench::Options base_options);

}  // namespace gpc::tuner
