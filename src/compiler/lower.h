// AST -> PTX-like IR lowering, parameterised by a front-end Policy.
//
// The output of lower() is "PTX-level" code: verbose, mov-heavy, exactly the
// stage the paper's Table V histograms. A separate ptxas pass (ptxas.h)
// cleans it up for execution, mirroring the paper's two-stage pipeline
// (NVOPENCC/CLC -> PTX -> PTXAS -> binary).
#pragma once

#include "compiler/compiled_kernel.h"
#include "compiler/policy.h"
#include "ir/function.h"
#include "kernel/ast.h"

namespace gpc::compiler {

/// Lowers `def` to PTX-level IR under `policy`. Throws InvalidArgument for
/// malformed kernels (type errors are caught at build time; this catches
/// structural issues such as full-unroll requests on unbounded loops).
ir::Function lower(const kernel::KernelDef& def, const Policy& policy,
                   const CompileOptions& opts);

}  // namespace gpc::compiler
