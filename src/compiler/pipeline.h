// The two compile pipelines (Fig. 9, steps 5-6 of the paper):
//   CUDA:   NVOPENCC-policy front end -> PTX -> shared PTXAS back end
//   OpenCL: CLC-policy front end      -> PTX -> shared PTXAS back end
#pragma once

#include "compiler/compiled_kernel.h"
#include "kernel/ast.h"

namespace gpc::compiler {

/// Compiles one kernel definition for the given toolchain. The returned
/// CompiledKernel carries both the PTX-level function (histogrammed by
/// bench/table05_ptx_stats) and the cleaned executable function.
CompiledKernel compile(const kernel::KernelDef& def, arch::Toolchain tc,
                       const CompileOptions& opts = {});

}  // namespace gpc::compiler
