// PTXAS-like back end: cleans up the verbose PTX-level IR for execution and
// estimates per-thread register usage for the occupancy model and launch
// validation.
//
// Both toolchains share this back end — in the paper's pipeline (Fig. 9,
// steps 5-6) PTXAS is common to CUDA and OpenCL, and the performance-relevant
// differences come from what the *front ends* emit. Consequently redundant
// movs are removed for both sides equally, while real work (the OpenCL
// side's un-CSE'd arithmetic, software sin/cos, address chains) survives to
// execution.
#pragma once

#include "ir/function.h"

namespace gpc::compiler::ptxas {

/// Runs copy propagation + dead-mov elimination and returns the cleaned
/// function. Branch targets are remapped.
ir::Function optimize(const ir::Function& fn);

/// Linear-scan estimate of per-thread registers: maximum number of
/// simultaneously live virtual registers plus a small ABI bias.
int estimate_registers(const ir::Function& fn);

}  // namespace gpc::compiler::ptxas
