// Front-end code-generation policies.
//
// The paper's Table V shows that the *same* FFT kernel source compiles to
// very different PTX through the CUDA and OpenCL front-ends of 2010/2011:
// the CUDA compiler (NVOPENCC, mature) emits few arithmetic instructions but
// many movs and .local traffic; the OpenCL front-end emits roughly twice the
// arithmetic, heavy logic/shift from address computation, a literal pool in
// the constant bank, and rolled control flow (setp/selp/bra).
//
// Each of those observations maps to one policy knob below. The two policies
// are the ONLY difference between the toolchains at compile time; everything
// downstream (ptxas, simulator) is shared, which is what makes the
// comparison "fair" in the paper's sense once the knobs are equalised.
#pragma once

namespace gpc::compiler {

struct Policy {
  /// True for the CUDA pipeline; selects which side of an Unroll pragma to
  /// honour and enables texture lowering.
  bool is_cuda = true;

  /// Memoise lowered subexpressions (common-subexpression elimination)
  /// across the whole kernel. CUDA: yes. OpenCL: no.
  bool cse = true;

  /// Weaker CSE that only lives inside a single statement (expression-DAG
  /// sharing, which even the 2010 OpenCL C compiler performed). Redundancy
  /// ACROSS statements is re-expanded — the Table V arithmetic inflation.
  bool cse_statement_local = false;

  /// Canonicalise integer index expressions to polynomial normal form before
  /// CSE, so algebraically equal addresses (e.g. the overlapping z-column
  /// loads of an unrolled FDTD plane loop) share one load. This models
  /// NVOPENCC's reassociation/induction analysis and is what makes
  /// `#pragma unroll 9` actually pay off in Fig. 6.
  bool affine_cse = true;

  /// Re-read special registers per use instead of caching them (the OpenCL
  /// front-end re-emits mov-from-sreg and re-derives global ids).
  bool memoize_builtins = true;

  /// Fold integer constant expressions (both front-ends do this).
  bool fold_int_constants = true;

  /// Fold float constant expressions including transcendentals at compile
  /// time (sinf/cosf of literals). CUDA: yes; OpenCL 1.1: no.
  bool fold_float_constants = true;

  /// Fuse a*b+c into mad.f32 (CUDA style).
  bool fuse_mul_add = true;

  /// Contract a*b+c into fma.f32 (the OpenCL front-end's preference).
  bool fuse_to_fma = false;

  /// Place f32 literals in a constant-bank literal pool and load them with
  /// ld.const (OpenCL); CUDA materialises literals with mov-immediate.
  bool literal_pool_f32 = false;

  /// Address lowering for global/shared/local accesses.
  ///   MadWide: one mad.wide(index, elem_size, base)            (CUDA)
  ///   ShlAdd:  cvt + shl + (and mask) + add chain per access   (OpenCL)
  enum class AddrMode { MadWide, ShlAdd };
  AddrMode addr_mode = AddrMode::MadWide;

  /// Emit an extra `and` truncating the index to 32 bits in the ShlAdd
  /// chain (the OpenCL front-end's defensive 32-bit wrap semantics).
  bool mask_32bit_index = false;

  /// Loops with a compile-time trip count at or below this limit are fully
  /// unrolled even without a pragma. CUDA is aggressive; OpenCL honours
  /// only explicit pragmas.
  int auto_full_unroll_limit = 64;

  /// Private (per-thread) arrays whose footprint is at or below this byte
  /// limit AND whose accesses all have compile-time indices are promoted to
  /// registers; larger or dynamically indexed arrays live in .local.
  int private_promote_bytes = 32;

  /// Predicate small if-bodies with @p guards instead of branching (CUDA).
  bool predicate_small_ifs = true;
  int max_predicated_stmts = 4;

  /// Convert single-assignment ifs into setp+selp (OpenCL if-conversion).
  bool selp_single_assign = false;

  /// Expand sin/cos into a software polynomial (range reduction with
  /// and/shl/setp/selp plus fma Horner chains). CUDA maps them to SFU
  /// hardware approximation instructions instead. This single difference
  /// accounts for most of Table V's arithmetic/logic/flow-control inflation
  /// on the OpenCL side of the FFT kernel.
  bool software_sincos = false;
};

/// NVOPENCC-like policy (CUDA 3.2 era).
Policy cuda_policy();

/// OpenCL C front-end policy (driver 260.x era).
Policy opencl_policy();

}  // namespace gpc::compiler
