#include "compiler/ptxas.h"

#include <algorithm>
#include <vector>

#include "common/error.h"

namespace gpc::compiler::ptxas {

using ir::Instr;
using ir::Opcode;
using ir::Operand;

namespace {

bool defines(const Instr& in) {
  return in.dst >= 0;
}

template <typename Fn>
void for_each_use(const Instr& in, Fn&& fn) {
  for (const Operand* o : {&in.a, &in.b, &in.c}) {
    if (o->is_reg()) fn(o->reg);
  }
  if (in.guard >= 0) fn(in.guard);
}

}  // namespace

ir::Function optimize(const ir::Function& fn) {
  ir::Function out = fn;
  auto& body = out.body;
  const int n = static_cast<int>(body.size());

  std::vector<int> def_count(out.num_vregs, 0);
  std::vector<int> use_count(out.num_vregs, 0);
  for (const Instr& in : body) {
    if (defines(in)) def_count[in.dst]++;
    for_each_use(in, [&](int r) { use_count[r]++; });
  }

  std::vector<bool> deleted(n, false);

  // Pass 1: immediate copy propagation. `mov t, imm` where t has a single
  // definition and the mov is unguarded: forward the immediate into every
  // use and delete the mov. (This is where the CUDA front-end's hundreds of
  // constant-materialisation movs disappear before execution.)
  for (int i = 0; i < n; ++i) {
    Instr& in = body[i];
    if (in.op != Opcode::Mov || in.guard >= 0) continue;
    if (!in.a.is_imm()) continue;
    const int t = in.dst;
    if (def_count[t] != 1) continue;
    bool guard_use = false;
    for (const Instr& u : body) {
      if (u.guard == t) guard_use = true;  // predicates cannot hold immediates
    }
    if (guard_use) continue;
    for (Instr& u : body) {
      for (Operand* o : {&u.a, &u.b, &u.c}) {
        if (o->is_reg() && o->reg == t) *o = in.a;
      }
    }
    use_count[t] = 0;
    deleted[i] = true;
  }

  // Pass 2: mov fusion. A defining instruction immediately followed by
  // `mov v, t` (same guard, t used exactly once) writes v directly.
  // Re-count uses after pass 1.
  std::fill(use_count.begin(), use_count.end(), 0);
  for (int i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    for_each_use(body[i], [&](int r) { use_count[r]++; });
  }
  for (int i = 0; i + 1 < n; ++i) {
    if (deleted[i] || deleted[i + 1]) continue;
    Instr& def = body[i];
    Instr& mv = body[i + 1];
    if (mv.op != Opcode::Mov || !mv.a.is_reg()) continue;
    if (!defines(def) || def.dst != mv.a.reg) continue;
    if (def.guard != mv.guard || def.guard_negated != mv.guard_negated) continue;
    if (use_count[def.dst] != 1) continue;
    if (def.op == Opcode::Bra) continue;
    // A branch may land between def and mov; only fuse if no label targets
    // instruction i+1. Targets are checked below by scanning branches.
    bool is_target = false;
    for (const Instr& b : body) {
      if (b.op == Opcode::Bra && b.target == i + 1) is_target = true;
    }
    if (is_target) continue;
    def.dst = mv.dst;
    deleted[i + 1] = true;
  }

  // Pass 3: self-moves.
  for (int i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    const Instr& in = body[i];
    if (in.op == Opcode::Mov && in.a.is_reg() && in.a.reg == in.dst) {
      deleted[i] = true;
    }
  }

  // Compact and remap branch targets. A target pointing at a deleted
  // instruction moves to the next surviving one.
  std::vector<int> new_index(n + 1, 0);
  int kept = 0;
  for (int i = 0; i < n; ++i) {
    new_index[i] = kept;
    if (!deleted[i]) ++kept;
  }
  new_index[n] = kept;
  // Forward deleted slots to the next survivor.
  for (int i = n - 1; i >= 0; --i) {
    if (deleted[i]) new_index[i] = new_index[i + 1];
  }

  std::vector<Instr> compacted;
  compacted.reserve(kept);
  for (int i = 0; i < n; ++i) {
    if (deleted[i]) continue;
    Instr in = body[i];
    if (in.op == Opcode::Bra) {
      GPC_CHECK(in.target >= 0 && in.target <= n, "branch target out of range");
      in.target = new_index[in.target];
    }
    compacted.push_back(in);
  }
  out.body = std::move(compacted);
  return out;
}

int estimate_registers(const ir::Function& fn) {
  const int n = static_cast<int>(fn.body.size());
  if (fn.num_vregs == 0 || n == 0) return 2;

  // Appearance interval per vreg (first to last position it occurs at,
  // def or use). Loops keep registers alive across their whole span because
  // the loop-carried uses appear inside the body.
  std::vector<int> first(fn.num_vregs, -1);
  std::vector<int> last(fn.num_vregs, -1);
  auto touch = [&](int r, int pos) {
    if (first[r] < 0) first[r] = pos;
    last[r] = pos;
  };
  for (int i = 0; i < n; ++i) {
    const Instr& in = fn.body[i];
    if (defines(in)) touch(in.dst, i);
    for_each_use(in, [&](int r) { touch(r, i); });
  }

  // Max overlap via event sweep.
  std::vector<int> delta(n + 1, 0);
  for (int r = 0; r < fn.num_vregs; ++r) {
    if (first[r] < 0) continue;
    delta[first[r]]++;
    delta[last[r] + 1]--;
  }
  int live = 0, peak = 0;
  for (int i = 0; i <= n; ++i) {
    live += delta[i];
    peak = std::max(peak, live);
  }
  // ABI/bookkeeping bias, matching ptxas' habit of using a few registers
  // for addresses and the stack pointer.
  return peak + 4;
}

}  // namespace gpc::compiler::ptxas
