#include "compiler/pipeline.h"

#include "compiler/lower.h"
#include "compiler/ptxas.h"

namespace gpc::compiler {

Policy cuda_policy() {
  Policy p;
  p.is_cuda = true;
  p.cse = true;
  p.affine_cse = true;
  p.memoize_builtins = true;
  p.fold_int_constants = true;
  p.fold_float_constants = true;
  p.fuse_mul_add = true;
  p.fuse_to_fma = false;
  p.literal_pool_f32 = false;
  p.addr_mode = Policy::AddrMode::MadWide;
  p.mask_32bit_index = false;
  p.auto_full_unroll_limit = 8;
  p.private_promote_bytes = 32;
  p.predicate_small_ifs = true;
  p.max_predicated_stmts = 4;
  p.selp_single_assign = false;
  p.software_sincos = false;
  return p;
}

Policy opencl_policy() {
  Policy p;
  p.is_cuda = false;
  p.cse = false;
  p.cse_statement_local = true;
  p.affine_cse = false;
  p.memoize_builtins = true;  // special registers are cached by any compiler
  p.fold_int_constants = true;
  p.fold_float_constants = false;
  p.fuse_mul_add = false;
  p.fuse_to_fma = true;
  p.literal_pool_f32 = true;
  p.addr_mode = Policy::AddrMode::ShlAdd;
  p.mask_32bit_index = true;
  p.auto_full_unroll_limit = 0;  // unrolls only where the source says so
  p.private_promote_bytes = 0;
  p.predicate_small_ifs = false;
  p.max_predicated_stmts = 0;
  p.selp_single_assign = true;
  p.software_sincos = true;
  return p;
}

CompiledKernel compile(const kernel::KernelDef& def, arch::Toolchain tc,
                       const CompileOptions& opts) {
  const Policy policy =
      tc == arch::Toolchain::Cuda ? cuda_policy() : opencl_policy();
  CompiledKernel ck;
  ck.toolchain = tc;
  ck.ptx = lower(def, policy, opts);
  ck.fn = ptxas::optimize(ck.ptx);
  ck.reg_estimate = ptxas::estimate_registers(ck.fn);
  for (const ir::Instr& in : ck.fn.body) {
    if (in.op == ir::Opcode::Tex) {
      ck.num_textures = std::max(ck.num_textures, in.tex_unit + 1);
    }
  }
  return ck;
}

}  // namespace gpc::compiler
