#include "compiler/lower.h"

#include <cmath>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace gpc::compiler {

using ir::Opcode;
using ir::Operand;
using ir::Space;
using ir::Type;
using kernel::BinOp;
using kernel::BuiltinId;
using kernel::Expr;
using kernel::ExprKind;
using kernel::ExprP;
using kernel::KernelDef;
using kernel::Stmt;
using kernel::StmtKind;
using kernel::UnOp;

namespace {

constexpr int kMaxFullUnroll = 4096;  // runaway-unroll backstop

float as_f32(double v) { return static_cast<float>(v); }

std::int32_t wrap_s32(std::int64_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t wrap_u32(std::int64_t v) { return static_cast<std::uint32_t>(v); }

int log2_exact(int v) {
  int l = 0;
  while ((1 << l) < v) ++l;
  return (1 << l) == v ? l : -1;
}

/// A lowered value: either a compile-time constant or a virtual register.
struct RV {
  Type type = Type::S32;
  bool is_const = false;
  int reg = -1;
  std::int64_t ic = 0;  // integer / pred constant
  double fc = 0.0;      // float constant

  static RV of_reg(int r, Type t) {
    RV v;
    v.type = t;
    v.reg = r;
    return v;
  }
  static RV of_int(std::int64_t i, Type t) {
    RV v;
    v.type = t;
    v.is_const = true;
    v.ic = t == Type::S32 ? wrap_s32(i) : (t == Type::U32 ? wrap_u32(i) : i);
    return v;
  }
  static RV of_float(double f, Type t) {
    RV v;
    v.type = t;
    v.is_const = true;
    v.fc = t == Type::F32 ? as_f32(f) : f;
    return v;
  }
};

Operand to_operand(const RV& v) {
  if (!v.is_const) return Operand::vreg(v.reg);
  if (ir::is_float(v.type)) return Operand::immf(v.fc);
  return Operand::imm(v.ic);
}

/// Static analysis facts about an expression node, cached by pointer.
struct ExprInfo {
  std::uint64_t var_bloom = 0;  // bit (var % 64) per referenced variable
  std::uint64_t load_param_bloom = 0;  // bit (param % 64) per loaded pointer
  bool has_shared_load = false;
  bool has_private_load = false;
  bool has_mutable_load = false;  // any global/shared/private/tex load
};

/// Canonical polynomial form of an s32 expression: a sum of integer-scaled
/// monomials (sorted products of opaque atom nodes) plus a constant. Two
/// algebraically equal index expressions normalise to the same Poly even
/// when their trees differ — the backbone of the mature front end's address
/// CSE (NVOPENCC-style reassociation), and the mechanism that lets the
/// unrolled FDTD plane loop share its overlapping z-column loads (Fig. 6).
struct Poly {
  using Monomial = std::vector<const Expr*>;  // sorted atom pointers
  std::vector<std::pair<Monomial, std::int64_t>> terms;  // sorted by monomial
  std::int64_t c = 0;

  bool operator==(const Poly& o) const { return c == o.c && terms == o.terms; }

  void add_term(Monomial m, std::int64_t coeff) {
    if (coeff == 0) return;
    std::sort(m.begin(), m.end());
    for (auto& [tm, tc] : terms) {
      if (tm == m) {
        tc += coeff;
        return;
      }
    }
    terms.emplace_back(std::move(m), coeff);
  }

  void normalise() {
    std::erase_if(terms, [](const auto& t) { return t.second == 0; });
    std::sort(terms.begin(), terms.end());
  }
};

class Lowerer {
 public:
  Lowerer(const KernelDef& def, const Policy& policy,
          const CompileOptions& opts)
      : def_(def), pol_(policy), opts_(opts), fb_(def.name) {}

  ir::Function run();

 private:
  // ---- plumbing ----
  const KernelDef& def_;
  const Policy& pol_;
  const CompileOptions& opts_;
  ir::FunctionBuilder fb_;

  // var id -> vreg; lazily allocated.
  std::vector<int> var_reg_;
  // var id -> known compile-time constant (validity flag + RV).
  struct EnvEntry { bool known = false; RV value; };
  std::vector<EnvEntry> env_;

  // var id -> polynomial the variable currently holds (copy propagation for
  // the affine-CSE machinery: a kernel-source local like `idx = (iz*h+gy)*w
  // + gx` stays transparent to cross-iteration load sharing). Entries carry
  // the same invalidation facts as memo entries.
  struct EnvPoly {
    bool known = false;
    Poly poly;
    std::uint64_t var_bloom = 0;
    std::uint64_t load_param_bloom = 0;
    bool has_shared_load = false;
    bool has_private_load = false;
  };
  std::vector<EnvPoly> env_poly_;

  // CSE memo: scope stack. Entries match by node identity, or — for s32
  // arithmetic and global loads under affine_cse — by canonical polynomial.
  // Invalidation facts are captured at store time (post-folding: atoms of
  // the polynomial rather than the raw tree, so an unrolled loop variable
  // folded into the constant no longer pins the entry).
  struct MemoEntry {
    const Expr* node = nullptr;
    RV value;
    std::uint64_t var_bloom = 0;
    std::uint64_t load_param_bloom = 0;
    bool has_shared_load = false;
    bool has_private_load = false;
    bool has_poly = false;
    Poly poly;           // of the expression, or of the load index
    int poly_param = -1;  // -1: arithmetic; >=0: ld.global of this param
  };
  std::vector<std::vector<MemoEntry>> memo_scopes_;
  // Keeps unroll-substituted statement clones (and thus their Expr nodes,
  // which memo entries reference by pointer) alive for the whole lowering.
  std::vector<std::vector<Stmt>> clone_keepalive_;

  // Literal pool cache (OpenCL): f32 bits -> vreg holding the literal.
  // Scoped like the memo so branch-local loads do not leak.
  std::vector<std::vector<std::pair<std::uint32_t, int>>> literal_scopes_;
  std::unordered_map<std::uint32_t, int> literal_offsets_;

  std::unordered_map<const Expr*, ExprInfo> info_cache_;

  std::vector<int> param_reg_;
  std::vector<int> shared_off_;
  std::vector<int> const_off_;
  std::vector<int> local_off_;
  std::unordered_map<int, int> builtin_reg_;  // CUDA entry materialisation

  int guard_reg_ = -1;
  bool guard_neg_ = false;
  int conditional_depth_ = 0;

  // ---- helpers ----
  int unroll_factor(const kernel::Unroll& u) const {
    return pol_.is_cuda ? u.cuda_factor : u.opencl_factor;
  }

  const ExprInfo& info(const Expr* e);

  int emit(Opcode op, Type t, Operand a = Operand::none(),
           Operand b = Operand::none(), Operand c = Operand::none());
  ir::Instr guarded(ir::Instr in) const;

  RV materialize(const RV& v);          // ensure value is in a register
  int var_register(int var);
  void set_env(int var, const EnvEntry& e) { env_[var] = e; }
  void invalidate_var(int var);
  void invalidate_loads();
  void materialize_var(int var);
  void collect_assigned(const std::vector<Stmt>& stmts, std::vector<int>* out);

  void push_scope();
  void pop_scope();
  bool memo_lookup(const Expr* node, RV* out);
  void memo_store(const Expr* node, const RV& v);
  bool poly_lookup(const Poly& p, int param, RV* out);
  void poly_store(const Expr* node, const Poly& p, int param, const RV& v);
  void fill_entry_facts(MemoEntry* e) const;
  std::optional<Poly> poly_of(const ExprP& e, int depth = 0);
  void invalidate_global_loads(int param);
  void invalidate_shared_loads();
  void invalidate_private_loads();
  ExprP clone_subst(const ExprP& e, int var, const ExprP& replacement);
  Stmt clone_subst_stmt(const Stmt& s, int var, const ExprP& replacement);
  ExprP find_varref(const std::vector<Stmt>& body, int var) const;
  ExprP find_varref_expr(const ExprP& e, int var) const;

  // ---- expression lowering ----
  RV lower_expr(const ExprP& e);
  RV lower_binary(const Expr& e);
  RV lower_unary(const Expr& e);
  RV lower_builtin(BuiltinId id);
  RV lower_load_global(const Expr& e);
  RV lower_load_array(const Expr& e, Space space, int base_off, Type elem);
  RV lower_tex(const Expr& e);
  RV address_global(int ptr_param, const ExprP& index, Type elem);
  RV address_offset(int base_off, const ExprP& index, Type elem);
  RV emit_sincos_poly(RV x, bool is_cos);
  RV float_literal(double v);  // materialisation path for f32 constants

  std::optional<std::int64_t> eval_const_int(const ExprP& e);

  // ---- statement lowering ----
  void lower_stmts(const std::vector<Stmt>& stmts);
  void lower_stmt(const Stmt& s);
  void lower_assign(const Stmt& s);
  void lower_store_global(const Stmt& s, bool atomic);
  void lower_store_array(const Stmt& s, Space space, int base_off, Type elem,
                         bool atomic);
  void lower_for(const Stmt& s);
  void lower_while(const Stmt& s);
  void lower_if(const Stmt& s);
  void lower_body_as_region(const std::vector<Stmt>& body);
  bool stmts_predicable(const std::vector<Stmt>& stmts) const;

  void prescan_builtins(const std::vector<Stmt>& stmts);
  void prescan_expr_builtins(const ExprP& e, std::vector<BuiltinId>* out);
};

// ---------------------------------------------------------------------------
// Infrastructure

const ExprInfo& Lowerer::info(const Expr* e) {
  auto it = info_cache_.find(e);
  if (it != info_cache_.end()) return it->second;
  ExprInfo fi;
  if (e->kind == ExprKind::VarRef) {
    fi.var_bloom |= 1ull << (e->var % 64);
  }
  if (e->kind == ExprKind::LoadGlobal) {
    fi.has_mutable_load = true;
    fi.load_param_bloom |= 1ull << (e->param % 64);
  }
  if (e->kind == ExprKind::LoadShared) {
    fi.has_mutable_load = true;
    fi.has_shared_load = true;
  }
  if (e->kind == ExprKind::LoadPrivate) {
    fi.has_mutable_load = true;
    fi.has_private_load = true;
  }
  if (e->kind == ExprKind::TexFetch) {
    fi.has_mutable_load = true;  // fallback child contributes the param bit
  }
  for (const ExprP* child : {&e->a, &e->b, &e->c}) {
    if (*child) {
      const ExprInfo& ci = info(child->get());
      fi.var_bloom |= ci.var_bloom;
      fi.load_param_bloom |= ci.load_param_bloom;
      fi.has_shared_load |= ci.has_shared_load;
      fi.has_private_load |= ci.has_private_load;
      fi.has_mutable_load |= ci.has_mutable_load;
    }
  }
  return info_cache_.emplace(e, fi).first->second;
}

ir::Instr Lowerer::guarded(ir::Instr in) const {
  in.guard = guard_reg_;
  in.guard_negated = guard_neg_;
  return in;
}

int Lowerer::emit(Opcode op, Type t, Operand a, Operand b, Operand c) {
  ir::Instr in;
  in.op = op;
  in.type = t;
  in.a = a;
  in.b = b;
  in.c = c;
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  return in.dst;
}

int Lowerer::var_register(int var) {
  if (var_reg_[var] < 0) var_reg_[var] = fb_.new_reg();
  return var_reg_[var];
}

RV Lowerer::materialize(const RV& v) {
  if (!v.is_const) return v;
  if (v.type == Type::F32 && pol_.literal_pool_f32) return float_literal(v.fc);
  ir::Instr in;
  in.op = Opcode::Mov;
  in.type = v.type;
  in.a = to_operand(v);
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  return RV::of_reg(in.dst, v.type);
}

RV Lowerer::float_literal(double v) {
  const float f = as_f32(v);
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  for (auto it = literal_scopes_.rbegin(); it != literal_scopes_.rend(); ++it) {
    for (const auto& [b, reg] : *it) {
      if (b == bits) return RV::of_reg(reg, Type::F32);
    }
  }
  int off;
  auto oit = literal_offsets_.find(bits);
  if (oit != literal_offsets_.end()) {
    off = oit->second;
  } else {
    off = fb_.add_const_data(&f, sizeof(f), 4);
    literal_offsets_.emplace(bits, off);
  }
  ir::Instr in;
  in.op = Opcode::Ld;
  in.space = Space::Const;
  in.type = Type::F32;
  in.a = Operand::imm(off);
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  literal_scopes_.back().emplace_back(bits, in.dst);
  return RV::of_reg(in.dst, Type::F32);
}

void Lowerer::push_scope() {
  memo_scopes_.emplace_back();
  literal_scopes_.emplace_back();
}

void Lowerer::pop_scope() {
  memo_scopes_.pop_back();
  literal_scopes_.pop_back();
}

bool Lowerer::memo_lookup(const Expr* node, RV* out) {
  if (!pol_.cse && !pol_.cse_statement_local) return false;
  for (auto it = memo_scopes_.rbegin(); it != memo_scopes_.rend(); ++it) {
    for (const MemoEntry& m : *it) {
      // Poly-keyed entries fold environment constants into their key; the
      // node pointer alone is ambiguous across unrolled iterations, so they
      // only ever match through poly_lookup.
      if (!m.has_poly && m.node == node) {
        *out = m.value;
        return true;
      }
    }
  }
  return false;
}

void Lowerer::fill_entry_facts(MemoEntry* e) const {
  if (e->has_poly) {
    // Post-folding facts: only the polynomial's surviving atoms pin the
    // entry (a loop counter folded into the constant no longer does).
    for (const auto& [mono, coeff] : e->poly.terms) {
      for (const Expr* atom : mono) {
        const auto it = info_cache_.find(atom);
        // Atoms were analysed when the polynomial was built.
        if (it != info_cache_.end()) {
          e->var_bloom |= it->second.var_bloom;
          e->load_param_bloom |= it->second.load_param_bloom;
          e->has_shared_load |= it->second.has_shared_load;
          e->has_private_load |= it->second.has_private_load;
        }
      }
    }
    if (e->poly_param >= 0) {
      e->load_param_bloom |= 1ull << (e->poly_param % 64);
    }
    return;
  }
  GPC_CHECK(e->node != nullptr);
  const ExprInfo& fi =
      const_cast<Lowerer*>(this)->info(e->node);  // info() caches lazily
  e->var_bloom = fi.var_bloom;
  e->load_param_bloom = fi.load_param_bloom;
  e->has_shared_load = fi.has_shared_load;
  e->has_private_load = fi.has_private_load;
}

void Lowerer::memo_store(const Expr* node, const RV& v) {
  if (!pol_.cse && !pol_.cse_statement_local) return;
  if (guard_reg_ >= 0) return;  // conditionally computed: do not reuse later
  MemoEntry e;
  e.node = node;
  e.value = v;
  fill_entry_facts(&e);
  memo_scopes_.back().push_back(std::move(e));
}

bool Lowerer::poly_lookup(const Poly& p, int param, RV* out) {
  if (!pol_.cse || !pol_.affine_cse) return false;
  for (auto it = memo_scopes_.rbegin(); it != memo_scopes_.rend(); ++it) {
    for (const MemoEntry& m : *it) {
      if (m.has_poly && m.poly_param == param && m.poly == p) {
        *out = m.value;
        return true;
      }
    }
  }
  return false;
}

void Lowerer::poly_store(const Expr* node, const Poly& p, int param,
                         const RV& v) {
  if (!pol_.cse || !pol_.affine_cse) return;
  if (guard_reg_ >= 0) return;
  MemoEntry e;
  e.node = node;
  e.value = v;
  e.has_poly = true;
  e.poly = p;
  e.poly_param = param;
  fill_entry_facts(&e);
  memo_scopes_.back().push_back(std::move(e));
}

void Lowerer::invalidate_var(int var) {
  env_[var].known = false;
  env_poly_[var].known = false;
  const std::uint64_t bit = 1ull << (var % 64);
  for (auto& scope : memo_scopes_) {
    std::erase_if(scope,
                  [&](const MemoEntry& m) { return (m.var_bloom & bit) != 0; });
  }
  for (auto& ep : env_poly_) {
    if (ep.known && (ep.var_bloom & bit) != 0) ep.known = false;
  }
}

void Lowerer::invalidate_loads() {
  for (auto& scope : memo_scopes_) {
    std::erase_if(scope, [&](const MemoEntry& m) {
      return m.load_param_bloom != 0 || m.has_shared_load ||
             m.has_private_load || (m.node != nullptr && info(m.node).has_mutable_load);
    });
  }
  for (auto& ep : env_poly_) {
    if (ep.known && (ep.load_param_bloom != 0 || ep.has_shared_load ||
                     ep.has_private_load)) {
      ep.known = false;
    }
  }
}

void Lowerer::invalidate_global_loads(int param) {
  const std::uint64_t bit = 1ull << (param % 64);
  for (auto& scope : memo_scopes_) {
    std::erase_if(scope, [&](const MemoEntry& m) {
      return (m.load_param_bloom & bit) != 0;
    });
  }
  for (auto& ep : env_poly_) {
    if (ep.known && (ep.load_param_bloom & bit) != 0) ep.known = false;
  }
}

void Lowerer::invalidate_shared_loads() {
  for (auto& scope : memo_scopes_) {
    std::erase_if(scope,
                  [&](const MemoEntry& m) { return m.has_shared_load; });
  }
  for (auto& ep : env_poly_) {
    if (ep.known && ep.has_shared_load) ep.known = false;
  }
}

void Lowerer::invalidate_private_loads() {
  for (auto& scope : memo_scopes_) {
    std::erase_if(scope,
                  [&](const MemoEntry& m) { return m.has_private_load; });
  }
  for (auto& ep : env_poly_) {
    if (ep.known && ep.has_private_load) ep.known = false;
  }
}

// Polynomial normalisation of s32 expressions. Depth/width bounded; returns
// nullopt when the expression does not profitably normalise.
std::optional<Poly> Lowerer::poly_of(const ExprP& e, int depth) {
  constexpr int kMaxTerms = 12;
  constexpr int kMaxDegree = 4;
  if (depth > 24) return std::nullopt;
  if (e->type != Type::S32) return std::nullopt;

  switch (e->kind) {
    case ExprKind::ConstInt: {
      Poly p;
      p.c = wrap_s32(e->ival);
      return p;
    }
    case ExprKind::VarRef:
      if (env_[e->var].known && !ir::is_float(env_[e->var].value.type)) {
        Poly p;
        p.c = wrap_s32(env_[e->var].value.ic);
        return p;
      }
      if (env_poly_[e->var].known) return env_poly_[e->var].poly;
      break;
    case ExprKind::Binary: {
      if (e->bop == BinOp::Add || e->bop == BinOp::Sub) {
        auto a = poly_of(e->a, depth + 1);
        auto b = poly_of(e->b, depth + 1);
        if (!a || !b) return std::nullopt;
        const std::int64_t sign = e->bop == BinOp::Add ? 1 : -1;
        for (auto& [m, coeff] : b->terms) a->add_term(m, sign * coeff);
        a->c += sign * b->c;
        a->normalise();
        if (static_cast<int>(a->terms.size()) > kMaxTerms) return std::nullopt;
        return a;
      }
      if (e->bop == BinOp::Mul) {
        auto a = poly_of(e->a, depth + 1);
        auto b = poly_of(e->b, depth + 1);
        if (!a || !b) return std::nullopt;
        Poly r;
        r.c = a->c * b->c;
        for (auto& [ma, ca] : a->terms) r.add_term(ma, ca * b->c);
        for (auto& [mb, cb] : b->terms) r.add_term(mb, cb * a->c);
        for (auto& [ma, ca] : a->terms) {
          for (auto& [mb, cb] : b->terms) {
            Poly::Monomial m = ma;
            m.insert(m.end(), mb.begin(), mb.end());
            if (static_cast<int>(m.size()) > kMaxDegree) return std::nullopt;
            r.add_term(std::move(m), ca * cb);
          }
        }
        r.normalise();
        if (static_cast<int>(r.terms.size()) > kMaxTerms) return std::nullopt;
        return r;
      }
      if (e->bop == BinOp::Shl) {
        auto b = poly_of(e->b, depth + 1);
        if (!b || !b->terms.empty()) return std::nullopt;
        auto a = poly_of(e->a, depth + 1);
        if (!a) return std::nullopt;
        const std::int64_t f = std::int64_t{1} << (b->c & 31);
        for (auto& [m, coeff] : a->terms) coeff *= f;
        a->c *= f;
        return a;
      }
      break;
    }
    case ExprKind::Unary:
      if (e->uop == UnOp::Neg) {
        auto a = poly_of(e->a, depth + 1);
        if (!a) return std::nullopt;
        for (auto& [m, coeff] : a->terms) coeff = -coeff;
        a->c = -a->c;
        return a;
      }
      break;
    default:
      break;
  }
  // Opaque atom: make sure its analysis facts are cached for
  // fill_entry_facts, then represent it as a degree-1 monomial.
  (void)info(e.get());
  Poly p;
  p.add_term({e.get()}, 1);
  return p;
}

void Lowerer::materialize_var(int var) {
  if (!env_[var].known) return;
  RV r = materialize(env_[var].value);
  ir::Instr in;
  in.op = Opcode::Mov;
  in.type = env_[var].value.type;
  in.a = to_operand(r);
  in.dst = var_register(var);
  fb_.emit(guarded(in));
  env_[var].known = false;
}

void Lowerer::collect_assigned(const std::vector<Stmt>& stmts,
                               std::vector<int>* out) {
  for (const Stmt& s : stmts) {
    if (s.kind == StmtKind::Assign) out->push_back(s.var);
    if (s.kind == StmtKind::For) out->push_back(s.loop_var);
    collect_assigned(s.body, out);
    collect_assigned(s.else_body, out);
  }
}

// ---------------------------------------------------------------------------
// Constant evaluation (trip counts & folding)

std::optional<std::int64_t> Lowerer::eval_const_int(const ExprP& e) {
  switch (e->kind) {
    case ExprKind::ConstInt:
      return e->ival;
    case ExprKind::VarRef:
      if (env_[e->var].known && !ir::is_float(env_[e->var].value.type)) {
        return env_[e->var].value.ic;
      }
      return std::nullopt;
    case ExprKind::ParamRef:
      return std::nullopt;
    case ExprKind::Cast: {
      if (ir::is_float(e->type)) return std::nullopt;
      auto a = eval_const_int(e->a);
      if (!a) return std::nullopt;
      return e->type == Type::S32 ? wrap_s32(*a)
                                  : static_cast<std::int64_t>(wrap_u32(*a));
    }
    case ExprKind::Binary: {
      if (ir::is_float(e->type) && e->type != Type::Pred) return std::nullopt;
      auto a = eval_const_int(e->a);
      auto b = eval_const_int(e->b);
      if (!a || !b) return std::nullopt;
      const std::int64_t x = *a, y = *b;
      std::int64_t r;
      switch (e->bop) {
        case BinOp::Add: r = x + y; break;
        case BinOp::Sub: r = x - y; break;
        case BinOp::Mul: r = x * y; break;
        case BinOp::Div: r = y == 0 ? 0 : x / y; break;
        case BinOp::Rem: r = y == 0 ? 0 : x % y; break;
        case BinOp::Min: r = std::min(x, y); break;
        case BinOp::Max: r = std::max(x, y); break;
        case BinOp::And: r = x & y; break;
        case BinOp::Or:  r = x | y; break;
        case BinOp::Xor: r = x ^ y; break;
        case BinOp::Shl: r = x << (y & 63); break;
        case BinOp::Shr:
          r = e->a->type == Type::S32
                  ? (static_cast<std::int32_t>(x) >> (y & 31))
                  : static_cast<std::int64_t>(wrap_u32(x) >> (y & 31));
          break;
        case BinOp::Lt: r = x < y; break;
        case BinOp::Le: r = x <= y; break;
        case BinOp::Gt: r = x > y; break;
        case BinOp::Ge: r = x >= y; break;
        case BinOp::Eq: r = x == y; break;
        case BinOp::Ne: r = x != y; break;
        default: return std::nullopt;
      }
      if (e->type == Type::S32) return wrap_s32(r);
      if (e->type == Type::U32) return static_cast<std::int64_t>(wrap_u32(r));
      return r;
    }
    default:
      return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Expression lowering

RV Lowerer::lower_expr(const ExprP& e) {
  switch (e->kind) {
    case ExprKind::ConstInt:
      return RV::of_int(e->ival, e->type);
    case ExprKind::ConstFloat:
      return RV::of_float(e->fval, e->type);
    case ExprKind::ParamRef:
      return RV::of_reg(param_reg_[e->param], e->type);
    case ExprKind::VarRef:
      if (env_[e->var].known) return env_[e->var].value;
      return RV::of_reg(var_register(e->var), e->type);
    case ExprKind::Builtin:
      return lower_builtin(e->builtin);
    case ExprKind::Binary:
      return lower_binary(*e);
    case ExprKind::Unary:
      return lower_unary(*e);
    case ExprKind::Select: {
      RV m;
      if (memo_lookup(e.get(), &m)) return m;
      RV cond = lower_expr(e->a);
      if (cond.is_const) return lower_expr(cond.ic ? e->b : e->c);
      RV x = lower_expr(e->b);
      RV y = lower_expr(e->c);
      const int dst = emit(Opcode::SelP, e->type, Operand::vreg(cond.reg),
                           to_operand(x), to_operand(y));
      RV r = RV::of_reg(dst, e->type);
      memo_store(e.get(), r);
      return r;
    }
    case ExprKind::Cast: {
      RV m;
      if (memo_lookup(e.get(), &m)) return m;
      RV a = lower_expr(e->a);
      const Type from = e->a->type;
      if (a.is_const &&
          (pol_.fold_int_constants && !ir::is_float(e->type) &&
           !ir::is_float(from))) {
        return RV::of_int(a.ic, e->type);
      }
      if (a.is_const && pol_.fold_float_constants) {
        if (ir::is_float(e->type)) {
          const double v = ir::is_float(from) ? a.fc
                                              : static_cast<double>(a.ic);
          return RV::of_float(v, e->type);
        }
        if (ir::is_float(from)) {
          return RV::of_int(static_cast<std::int64_t>(a.fc), e->type);
        }
        return RV::of_int(a.ic, e->type);
      }
      ir::Instr in;
      in.op = Opcode::Cvt;
      in.type = e->type;
      in.src_type = from;
      in.a = to_operand(a);
      in.dst = fb_.new_reg();
      fb_.emit(guarded(in));
      RV r = RV::of_reg(in.dst, e->type);
      memo_store(e.get(), r);
      return r;
    }
    case ExprKind::LoadGlobal:
      return lower_load_global(*e);
    case ExprKind::LoadShared:
      return lower_load_array(*e, Space::Shared, shared_off_[e->array],
                              def_.shared_arrays[e->array].elem);
    case ExprKind::LoadConst:
      return lower_load_array(*e, Space::Const, const_off_[e->array],
                              def_.const_arrays[e->array].elem);
    case ExprKind::LoadPrivate:
      return lower_load_array(*e, Space::Local, local_off_[e->array],
                              def_.private_arrays[e->array].elem);
    case ExprKind::TexFetch:
      return lower_tex(*e);
  }
  throw InternalError("unhandled expression kind");
}

RV Lowerer::lower_builtin(BuiltinId id) {
  auto cached = builtin_reg_.find(static_cast<int>(id));
  if (cached != builtin_reg_.end()) {
    return RV::of_reg(cached->second, Type::S32);
  }

  auto sreg = [&](ir::SReg s) {
    ir::Instr in;
    in.op = Opcode::ReadSReg;
    in.type = Type::S32;
    in.sreg = s;
    in.dst = fb_.new_reg();
    fb_.emit(guarded(in));
    return RV::of_reg(in.dst, Type::S32);
  };

  RV r;
  switch (id) {
    case BuiltinId::TidX: r = sreg(ir::SReg::TidX); break;
    case BuiltinId::TidY: r = sreg(ir::SReg::TidY); break;
    case BuiltinId::TidZ: r = sreg(ir::SReg::TidZ); break;
    case BuiltinId::NTidX: r = sreg(ir::SReg::NTidX); break;
    case BuiltinId::NTidY: r = sreg(ir::SReg::NTidY); break;
    case BuiltinId::NTidZ: r = sreg(ir::SReg::NTidZ); break;
    case BuiltinId::CtaIdX: r = sreg(ir::SReg::CtaIdX); break;
    case BuiltinId::CtaIdY: r = sreg(ir::SReg::CtaIdY); break;
    case BuiltinId::CtaIdZ: r = sreg(ir::SReg::CtaIdZ); break;
    case BuiltinId::NCtaIdX: r = sreg(ir::SReg::NCtaIdX); break;
    case BuiltinId::NCtaIdY: r = sreg(ir::SReg::NCtaIdY); break;
    case BuiltinId::NCtaIdZ: r = sreg(ir::SReg::NCtaIdZ); break;
    case BuiltinId::LaneId: r = sreg(ir::SReg::LaneId); break;
    case BuiltinId::GlobalIdX: {
      RV cta = lower_builtin(BuiltinId::CtaIdX);
      RV ntid = lower_builtin(BuiltinId::NTidX);
      RV tid = lower_builtin(BuiltinId::TidX);
      const int dst = emit(Opcode::Mad, Type::S32, to_operand(cta),
                           to_operand(ntid), to_operand(tid));
      r = RV::of_reg(dst, Type::S32);
      break;
    }
    case BuiltinId::GlobalIdY: {
      RV cta = lower_builtin(BuiltinId::CtaIdY);
      RV ntid = lower_builtin(BuiltinId::NTidY);
      RV tid = lower_builtin(BuiltinId::TidY);
      const int dst = emit(Opcode::Mad, Type::S32, to_operand(cta),
                           to_operand(ntid), to_operand(tid));
      r = RV::of_reg(dst, Type::S32);
      break;
    }
  }
  if (pol_.memoize_builtins && guard_reg_ < 0) {
    builtin_reg_[static_cast<int>(id)] = r.reg;
  }
  return r;
}

RV Lowerer::lower_binary(const Expr& e) {
  RV m;
  if (memo_lookup(&e, &m)) return m;

  // Polynomial CSE for integer index arithmetic (mature front end only).
  std::optional<Poly> epoly;
  if (pol_.affine_cse && e.type == Type::S32) {
    // poly_of needs a shared_ptr; rebuild a transient wrapper around e's
    // children is wrong — instead normalise via the children directly.
    ExprP self = std::make_shared<Expr>(e);
    if (auto p = poly_of(self)) {
      const bool opaque_self = p->terms.size() == 1 && p->c == 0 &&
                               p->terms[0].second == 1 &&
                               p->terms[0].first.size() == 1 &&
                               p->terms[0].first[0] == self.get();
      if (p->terms.empty()) {
        // Fully constant under the environment.
        return RV::of_int(p->c, Type::S32);
      }
      if (!opaque_self) {
        if (poly_lookup(*p, -1, &m)) return m;
        epoly = std::move(*p);
      }
    }
  }

  // mad/fma fusion: Add(Mul(a,b), c) or Add(c, Mul(a,b)).
  const bool fuse = (pol_.fuse_mul_add || (pol_.fuse_to_fma && ir::is_float(e.type)));
  if (e.bop == BinOp::Add && fuse && e.type != Type::Pred) {
    const Expr* mul = nullptr;
    ExprP other;
    if (e.a->kind == ExprKind::Binary && e.a->bop == BinOp::Mul) {
      mul = e.a.get();
      other = e.b;
    } else if (e.b->kind == ExprKind::Binary && e.b->bop == BinOp::Mul) {
      mul = e.b.get();
      other = e.a;
    }
    if (mul != nullptr) {
      RV x = lower_expr(mul->a);
      RV y = lower_expr(mul->b);
      RV z = lower_expr(other);
      const bool all_const = x.is_const && y.is_const && z.is_const;
      const bool may_fold = ir::is_float(e.type) ? pol_.fold_float_constants
                                                 : pol_.fold_int_constants;
      if (!(all_const && may_fold)) {
        const Opcode op = (ir::is_float(e.type) && pol_.fuse_to_fma)
                              ? Opcode::Fma
                              : Opcode::Mad;
        const int dst =
            emit(op, e.type, to_operand(x), to_operand(y), to_operand(z));
        RV r = RV::of_reg(dst, e.type);
        memo_store(&e, r);
        if (epoly) poly_store(&e, *epoly, -1, r);
        return r;
      }
      // fall through to folding below
    }
  }

  RV a = lower_expr(e.a);
  RV b = lower_expr(e.b);

  // Constant folding.
  if (a.is_const && b.is_const) {
    const bool int_like = !ir::is_float(e.a->type);
    if (int_like && pol_.fold_int_constants) {
      const std::int64_t x = a.ic, y = b.ic;
      std::int64_t r = 0;
      bool folded = true;
      switch (e.bop) {
        case BinOp::Add: r = x + y; break;
        case BinOp::Sub: r = x - y; break;
        case BinOp::Mul: r = x * y; break;
        case BinOp::Div: r = y == 0 ? 0 : x / y; break;
        case BinOp::Rem: r = y == 0 ? 0 : x % y; break;
        case BinOp::Min: r = std::min(x, y); break;
        case BinOp::Max: r = std::max(x, y); break;
        case BinOp::And: r = x & y; break;
        case BinOp::Or:  r = x | y; break;
        case BinOp::Xor: r = x ^ y; break;
        case BinOp::Shl: r = x << (y & 63); break;
        case BinOp::Shr:
          r = e.a->type == Type::S32
                  ? (static_cast<std::int32_t>(x) >> (y & 31))
                  : static_cast<std::int64_t>(wrap_u32(x) >> (y & 31));
          break;
        case BinOp::Lt: r = x < y; break;
        case BinOp::Le: r = x <= y; break;
        case BinOp::Gt: r = x > y; break;
        case BinOp::Ge: r = x >= y; break;
        case BinOp::Eq: r = x == y; break;
        case BinOp::Ne: r = x != y; break;
        default: folded = false; break;
      }
      if (folded) return RV::of_int(r, e.type);
    }
    if (!int_like && pol_.fold_float_constants) {
      const double x = a.fc, y = b.fc;
      double r = 0;
      bool folded = true;
      switch (e.bop) {
        case BinOp::Add: r = as_f32(x) + as_f32(y); break;
        case BinOp::Sub: r = as_f32(x) - as_f32(y); break;
        case BinOp::Mul: r = as_f32(x) * as_f32(y); break;
        case BinOp::Div: r = as_f32(y) == 0 ? 0 : as_f32(x) / as_f32(y); break;
        case BinOp::Min: r = std::min(as_f32(x), as_f32(y)); break;
        case BinOp::Max: r = std::max(as_f32(x), as_f32(y)); break;
        case BinOp::Lt: return RV::of_int(as_f32(x) < as_f32(y), Type::Pred);
        case BinOp::Le: return RV::of_int(as_f32(x) <= as_f32(y), Type::Pred);
        case BinOp::Gt: return RV::of_int(as_f32(x) > as_f32(y), Type::Pred);
        case BinOp::Ge: return RV::of_int(as_f32(x) >= as_f32(y), Type::Pred);
        case BinOp::Eq: return RV::of_int(as_f32(x) == as_f32(y), Type::Pred);
        case BinOp::Ne: return RV::of_int(as_f32(x) != as_f32(y), Type::Pred);
        default: folded = false; break;
      }
      if (folded) return RV::of_float(r, e.type);
    }
  }

  Opcode op = Opcode::Add;
  switch (e.bop) {
    case BinOp::Add: op = Opcode::Add; break;
    case BinOp::Sub: op = Opcode::Sub; break;
    case BinOp::Mul: op = Opcode::Mul; break;
    case BinOp::Div:
      if (ir::is_float(e.type) && pol_.is_cuda) {
        // CUDA fast-math: a/b -> a * rcp(b). This is why Table V shows zero
        // div instructions on the CUDA side.
        RV rb = RV::of_reg(emit(Opcode::Rcp, e.type, to_operand(b)), e.type);
        const int dst =
            emit(Opcode::Mul, e.type, to_operand(a), to_operand(rb));
        RV r = RV::of_reg(dst, e.type);
        memo_store(&e, r);
        return r;
      }
      op = Opcode::Div;
      break;
    case BinOp::Rem: op = Opcode::Rem; break;
    case BinOp::Min: op = Opcode::Min; break;
    case BinOp::Max: op = Opcode::Max; break;
    case BinOp::And: op = Opcode::And; break;
    case BinOp::Or: op = Opcode::Or; break;
    case BinOp::Xor: op = Opcode::Xor; break;
    case BinOp::Shl: op = Opcode::Shl; break;
    case BinOp::Shr: op = Opcode::Shr; break;
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt:
    case BinOp::Ge: case BinOp::Eq: case BinOp::Ne: {
      ir::Instr in;
      in.op = Opcode::SetP;
      in.type = e.a->type;
      switch (e.bop) {
        case BinOp::Lt: in.cmp = ir::CmpOp::Lt; break;
        case BinOp::Le: in.cmp = ir::CmpOp::Le; break;
        case BinOp::Gt: in.cmp = ir::CmpOp::Gt; break;
        case BinOp::Ge: in.cmp = ir::CmpOp::Ge; break;
        case BinOp::Eq: in.cmp = ir::CmpOp::Eq; break;
        default: in.cmp = ir::CmpOp::Ne; break;
      }
      in.a = to_operand(a);
      in.b = to_operand(b);
      in.dst = fb_.new_reg();
      fb_.emit(guarded(in));
      RV r = RV::of_reg(in.dst, Type::Pred);
      memo_store(&e, r);
      return r;
    }
  }
  const int dst = emit(op, e.type, to_operand(a), to_operand(b));
  RV r = RV::of_reg(dst, e.type);
  memo_store(&e, r);
  if (epoly) poly_store(&e, *epoly, -1, r);
  return r;
}

RV Lowerer::lower_unary(const Expr& e) {
  RV m;
  if (memo_lookup(&e, &m)) return m;
  RV a = lower_expr(e.a);

  if (a.is_const) {
    if (!ir::is_float(e.type) && pol_.fold_int_constants) {
      switch (e.uop) {
        case UnOp::Neg: return RV::of_int(-a.ic, e.type);
        case UnOp::Not:
          if (e.type == Type::Pred) return RV::of_int(!a.ic, e.type);
          return RV::of_int(~a.ic, e.type);
        case UnOp::Abs: return RV::of_int(std::abs(a.ic), e.type);
        default: break;
      }
    }
    if (ir::is_float(e.type) && pol_.fold_float_constants) {
      const float x = as_f32(a.fc);
      switch (e.uop) {
        case UnOp::Neg: return RV::of_float(-x, e.type);
        case UnOp::Abs: return RV::of_float(std::fabs(x), e.type);
        case UnOp::Sqrt: return RV::of_float(std::sqrt(x), e.type);
        case UnOp::Rsqrt: return RV::of_float(1.0f / std::sqrt(x), e.type);
        case UnOp::Rcp: return RV::of_float(1.0f / x, e.type);
        case UnOp::Sin: return RV::of_float(std::sin(x), e.type);
        case UnOp::Cos: return RV::of_float(std::cos(x), e.type);
        case UnOp::Exp2: return RV::of_float(std::exp2(x), e.type);
        case UnOp::Log2: return RV::of_float(std::log2(x), e.type);
        default: break;
      }
    }
  }

  if ((e.uop == UnOp::Sin || e.uop == UnOp::Cos) && pol_.software_sincos) {
    RV xr = materialize(a);
    RV r = emit_sincos_poly(xr, e.uop == UnOp::Cos);
    memo_store(&e, r);
    return r;
  }

  Opcode op;
  switch (e.uop) {
    case UnOp::Neg: op = Opcode::Neg; break;
    case UnOp::Not: op = Opcode::Not; break;
    case UnOp::Abs: op = Opcode::Abs; break;
    case UnOp::Sqrt: op = Opcode::Sqrt; break;
    case UnOp::Rsqrt: op = Opcode::Rsqrt; break;
    case UnOp::Rcp: op = Opcode::Rcp; break;
    case UnOp::Sin: op = Opcode::Sin; break;
    case UnOp::Cos: op = Opcode::Cos; break;
    case UnOp::Exp2: op = Opcode::Ex2; break;
    case UnOp::Log2: op = Opcode::Lg2; break;
    default: throw InternalError("unhandled unary op");
  }
  const int dst = emit(op, e.type, to_operand(a));
  RV r = RV::of_reg(dst, e.type);
  memo_store(&e, r);
  return r;
}

// Software sin/cos expansion (the OpenCL front-end path): Cody-Waite range
// reduction to [-pi/4, pi/4] plus degree-7/degree-6 minimax-style polynomials,
// quadrant handled branchlessly with setp/selp. This is both functionally
// correct (tests compare against std::sin to ~1e-4) and the source of the
// arithmetic/logic/flow-control instruction inflation Table V reports for
// OpenCL-compiled kernels.
RV Lowerer::emit_sincos_poly(RV x, bool is_cos) {
  auto f = [&](double v) { return Operand::immf(v); };
  auto reg = [&](int r) { return Operand::vreg(r); };

  // n = (int)(x * 2/pi + copysign(0.5, x)); branchless round-to-nearest.
  const int t0 = emit(Opcode::Mul, Type::F32, reg(x.reg), f(0.6366197723675814));
  ir::Instr sp;
  sp.op = Opcode::SetP;
  sp.type = Type::F32;
  sp.cmp = ir::CmpOp::Ge;
  sp.a = reg(t0);
  sp.b = f(0.0);
  sp.dst = fb_.new_reg();
  fb_.emit(guarded(sp));
  const int half = emit(Opcode::SelP, Type::F32, reg(sp.dst), f(0.5), f(-0.5));
  const int t1 = emit(Opcode::Add, Type::F32, reg(t0), reg(half));
  ir::Instr cv;
  cv.op = Opcode::Cvt;
  cv.type = Type::S32;
  cv.src_type = Type::F32;
  cv.a = reg(t1);
  cv.dst = fb_.new_reg();
  fb_.emit(guarded(cv));
  const int n = cv.dst;
  ir::Instr cv2;
  cv2.op = Opcode::Cvt;
  cv2.type = Type::F32;
  cv2.src_type = Type::S32;
  cv2.a = reg(n);
  cv2.dst = fb_.new_reg();
  fb_.emit(guarded(cv2));
  const int fn = cv2.dst;

  // y = x - n*pio2_hi - n*pio2_mid - n*pio2_lo (three-step Cody-Waite).
  RV hi = float_literal(-1.5707855224609375);        // pio2 head (ld.const)
  RV mid = float_literal(-1.0780334472656e-5);       // pio2 mid
  RV lo = float_literal(-2.5579538487363607e-10);    // pio2 tail
  int y = emit(Opcode::Fma, Type::F32, reg(fn), to_operand(hi), reg(x.reg));
  y = emit(Opcode::Fma, Type::F32, reg(fn), to_operand(mid), reg(y));
  y = emit(Opcode::Fma, Type::F32, reg(fn), to_operand(lo), reg(y));

  // Quadrant bits; cos(x) = sin(x + pi/2) so bias n by 1.
  int q = n;
  if (is_cos) q = emit(Opcode::Add, Type::S32, reg(n), Operand::imm(1));
  const int qodd = emit(Opcode::And, Type::S32, reg(q), Operand::imm(1));
  const int qneg = emit(Opcode::And, Type::S32, reg(q), Operand::imm(2));

  const int z = emit(Opcode::Mul, Type::F32, reg(y), reg(y));

  // sin poly: y * (1 + z*(S1 + z*(S2 + z*S3)))
  RV s3 = float_literal(-1.9515295891e-4);
  RV s2 = float_literal(8.3321608736e-3);
  RV s1 = float_literal(-1.6666654611e-1);
  int ps = emit(Opcode::Fma, Type::F32, reg(z), to_operand(s3), to_operand(s2));
  ps = emit(Opcode::Fma, Type::F32, reg(z), reg(ps), to_operand(s1));
  ps = emit(Opcode::Mul, Type::F32, reg(ps), reg(z));
  ps = emit(Opcode::Fma, Type::F32, reg(ps), reg(y), reg(y));

  // cos poly: 1 + z*(C1 + z*(C2 + z*C3))
  RV c3 = float_literal(-1.388731625493765e-3);
  RV c2 = float_literal(4.166664568298827e-2);
  RV c1 = float_literal(-0.5);
  int pc = emit(Opcode::Fma, Type::F32, reg(z), to_operand(c3), to_operand(c2));
  pc = emit(Opcode::Fma, Type::F32, reg(z), reg(pc), to_operand(c1));
  pc = emit(Opcode::Fma, Type::F32, reg(z), reg(pc), f(1.0));

  ir::Instr po;
  po.op = Opcode::SetP;
  po.type = Type::S32;
  po.cmp = ir::CmpOp::Ne;
  po.a = reg(qodd);
  po.b = Operand::imm(0);
  po.dst = fb_.new_reg();
  fb_.emit(guarded(po));
  const int sel = emit(Opcode::SelP, Type::F32, reg(po.dst), reg(pc), reg(ps));

  ir::Instr pn;
  pn.op = Opcode::SetP;
  pn.type = Type::S32;
  pn.cmp = ir::CmpOp::Ne;
  pn.a = reg(qneg);
  pn.b = Operand::imm(0);
  pn.dst = fb_.new_reg();
  fb_.emit(guarded(pn));
  const int negv = emit(Opcode::Neg, Type::F32, reg(sel));
  const int out = emit(Opcode::SelP, Type::F32, reg(pn.dst), reg(negv), reg(sel));
  return RV::of_reg(out, Type::F32);
}

// ---------------------------------------------------------------------------
// Addressing & memory

RV Lowerer::address_global(int ptr_param, const ExprP& index, Type elem) {
  RV idx = lower_expr(index);
  const int size = ir::size_of(elem);
  const int base = param_reg_[ptr_param];
  if (pol_.addr_mode == Policy::AddrMode::MadWide) {
    const int dst = emit(Opcode::Mad, Type::U64, to_operand(idx),
                         Operand::imm(size), Operand::vreg(base));
    return RV::of_reg(dst, Type::U64);
  }
  // ShlAdd chain: cvt + (and) + shl + add.
  ir::Instr cv;
  cv.op = Opcode::Cvt;
  cv.type = Type::U64;
  cv.src_type = idx.type;
  cv.a = to_operand(idx);
  cv.dst = fb_.new_reg();
  fb_.emit(guarded(cv));
  int r = cv.dst;
  if (pol_.mask_32bit_index) {
    r = emit(Opcode::And, Type::U64, Operand::vreg(r),
             Operand::imm(0xFFFFFFFFll));
  }
  const int l2 = log2_exact(size);
  if (l2 > 0) {
    r = emit(Opcode::Shl, Type::U64, Operand::vreg(r), Operand::imm(l2));
  } else if (l2 < 0) {
    r = emit(Opcode::Mul, Type::U64, Operand::vreg(r), Operand::imm(size));
  }
  r = emit(Opcode::Add, Type::U64, Operand::vreg(r), Operand::vreg(base));
  return RV::of_reg(r, Type::U64);
}

RV Lowerer::address_offset(int base_off, const ExprP& index, Type elem) {
  RV idx = lower_expr(index);
  const int size = ir::size_of(elem);
  if (idx.is_const) {
    return RV::of_int(base_off + idx.ic * size, Type::U32);
  }
  if (pol_.addr_mode == Policy::AddrMode::MadWide) {
    const int dst = emit(Opcode::Mad, Type::U32, to_operand(idx),
                         Operand::imm(size), Operand::imm(base_off));
    return RV::of_reg(dst, Type::U32);
  }
  int r = idx.reg;
  const int l2 = log2_exact(size);
  if (l2 > 0) {
    r = emit(Opcode::Shl, Type::U32, Operand::vreg(r), Operand::imm(l2));
  } else if (l2 < 0) {
    r = emit(Opcode::Mul, Type::U32, Operand::vreg(r), Operand::imm(size));
  }
  if (base_off != 0) {
    r = emit(Opcode::Add, Type::U32, Operand::vreg(r), Operand::imm(base_off));
  }
  return RV::of_reg(r, Type::U32);
}

RV Lowerer::lower_load_global(const Expr& e) {
  RV m;
  if (memo_lookup(&e, &m)) return m;
  std::optional<Poly> ipoly;
  if (pol_.affine_cse) {
    ipoly = poly_of(e.a);
    if (ipoly && poly_lookup(*ipoly, e.param, &m)) return m;
  }
  RV addr = address_global(e.param, e.a, e.type);
  ir::Instr in;
  in.op = Opcode::Ld;
  in.space = Space::Global;
  in.type = e.type;
  in.a = to_operand(addr);
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  RV r = RV::of_reg(in.dst, e.type);
  memo_store(&e, r);
  if (ipoly) poly_store(&e, *ipoly, e.param, r);
  return r;
}

RV Lowerer::lower_load_array(const Expr& e, Space space, int base_off,
                             Type elem) {
  RV m;
  if (memo_lookup(&e, &m)) return m;
  RV addr = address_offset(base_off, e.a, elem);
  ir::Instr in;
  in.op = Opcode::Ld;
  in.space = space;
  in.type = elem;
  in.a = to_operand(addr);
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  RV r = RV::of_reg(in.dst, elem);
  memo_store(&e, r);
  return r;
}

RV Lowerer::lower_tex(const Expr& e) {
  if (!(pol_.is_cuda && opts_.enable_textures)) {
    return lower_expr(e.b);  // fallback plain load
  }
  RV m;
  if (memo_lookup(&e, &m)) return m;
  RV idx = lower_expr(e.a);
  ir::Instr in;
  in.op = Opcode::Tex;
  in.space = Space::Texture;
  in.type = e.type;
  in.tex_unit = e.tex_unit;
  in.a = to_operand(idx);
  in.dst = fb_.new_reg();
  fb_.emit(guarded(in));
  RV r = RV::of_reg(in.dst, e.type);
  memo_store(&e, r);
  return r;
}

// ---------------------------------------------------------------------------
// Statement lowering

void Lowerer::lower_stmts(const std::vector<Stmt>& stmts) {
  for (const Stmt& s : stmts) {
    lower_stmt(s);
    if (pol_.cse_statement_local && !memo_scopes_.empty()) {
      // Statement-local CSE: sharing does not survive statement boundaries.
      memo_scopes_.back().clear();
    }
  }
}

void Lowerer::lower_stmt(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign: lower_assign(s); return;
    case StmtKind::StoreGlobal: lower_store_global(s, /*atomic=*/false); return;
    case StmtKind::AtomicAddGlobal: lower_store_global(s, true); return;
    case StmtKind::StoreShared:
      lower_store_array(s, Space::Shared, shared_off_[s.array],
                        def_.shared_arrays[s.array].elem, false);
      return;
    case StmtKind::AtomicAddShared:
      lower_store_array(s, Space::Shared, shared_off_[s.array],
                        def_.shared_arrays[s.array].elem, true);
      return;
    case StmtKind::StorePrivate:
      lower_store_array(s, Space::Local, local_off_[s.array],
                        def_.private_arrays[s.array].elem, false);
      return;
    case StmtKind::Barrier: {
      ir::Instr in;
      in.op = Opcode::Bar;
      GPC_REQUIRE(guard_reg_ < 0, "barrier inside predicated region");
      fb_.emit(in);
      invalidate_loads();
      return;
    }
    case StmtKind::For: lower_for(s); return;
    case StmtKind::While: lower_while(s); return;
    case StmtKind::If: lower_if(s); return;
  }
}

void Lowerer::lower_assign(const Stmt& s) {
  RV v = lower_expr(s.value);
  const Type t = def_.vars[s.var].type;
  if (v.is_const && conditional_depth_ == 0 && guard_reg_ < 0) {
    // Known constant: record in the environment AND materialise into the
    // variable's register (PTX front-ends are verbose; the movs this emits
    // are the paper's Table V mov counts, cleaned up later by ptxas).
    invalidate_var(s.var);
    RV r = materialize(v);
    ir::Instr in;
    in.op = Opcode::Mov;
    in.type = t;
    in.a = to_operand(r);
    in.dst = var_register(s.var);
    fb_.emit(guarded(in));
    set_env(s.var, {true, v});
    return;
  }
  RV r = materialize(v);
  invalidate_var(s.var);
  ir::Instr in;
  in.op = Opcode::Mov;
  in.type = t;
  in.a = to_operand(r);
  in.dst = var_register(s.var);
  fb_.emit(guarded(in));

  // Copy-propagate the assigned polynomial so later index expressions see
  // through this local (unconditional s32 assignments only; the polynomial
  // must not reference the variable itself).
  if (pol_.affine_cse && t == Type::S32 && conditional_depth_ >= 0 &&
      guard_reg_ < 0) {
    if (auto p = poly_of(s.value)) {
      EnvPoly ep;
      ep.known = true;
      ep.poly = std::move(*p);
      for (const auto& [mono, coeff] : ep.poly.terms) {
        for (const Expr* atom : mono) {
          const ExprInfo& fi = info(atom);
          ep.var_bloom |= fi.var_bloom;
          ep.load_param_bloom |= fi.load_param_bloom;
          ep.has_shared_load |= fi.has_shared_load;
          ep.has_private_load |= fi.has_private_load;
        }
      }
      const std::uint64_t self_bit = 1ull << (s.var % 64);
      if ((ep.var_bloom & self_bit) == 0) {
        env_poly_[s.var] = std::move(ep);
      }
    }
  }
}

void Lowerer::lower_store_global(const Stmt& s, bool atomic) {
  RV addr = address_global(s.ptr_param, s.index,
                           def_.params[s.ptr_param].pointee);
  RV v = lower_expr(s.value);
  ir::Instr in;
  in.op = atomic ? Opcode::AtomAdd : Opcode::St;
  in.space = Space::Global;
  in.type = def_.params[s.ptr_param].pointee;
  in.a = to_operand(addr);
  in.b = to_operand(v);
  fb_.emit(guarded(in));
  invalidate_global_loads(s.ptr_param);
}

void Lowerer::lower_store_array(const Stmt& s, Space space, int base_off,
                                Type elem, bool atomic) {
  RV addr = address_offset(base_off, s.index, elem);
  RV v = lower_expr(s.value);
  ir::Instr in;
  in.op = atomic ? Opcode::AtomAdd : Opcode::St;
  in.space = space;
  in.type = elem;
  in.a = to_operand(addr);
  in.b = to_operand(v);
  fb_.emit(guarded(in));
  if (space == Space::Shared) {
    invalidate_shared_loads();
  } else {
    invalidate_private_loads();
  }
}

void Lowerer::lower_body_as_region(const std::vector<Stmt>& body) {
  std::vector<int> assigned;
  collect_assigned(body, &assigned);
  for (int v : assigned) materialize_var(v);
  push_scope();
  auto saved_env = env_;
  ++conditional_depth_;
  lower_stmts(body);
  --conditional_depth_;
  env_ = saved_env;
  for (int v : assigned) invalidate_var(v);
  pop_scope();
}

ExprP Lowerer::find_varref_expr(const ExprP& e, int var) const {
  if (!e) return nullptr;
  if (e->kind == ExprKind::VarRef && e->var == var) return e;
  for (const ExprP* c : {&e->a, &e->b, &e->c}) {
    if (ExprP r = find_varref_expr(*c, var)) return r;
  }
  return nullptr;
}

ExprP Lowerer::find_varref(const std::vector<Stmt>& body, int var) const {
  for (const Stmt& s : body) {
    for (const ExprP* e : {&s.index, &s.value, &s.lo, &s.hi, &s.step, &s.cond}) {
      if (ExprP r = find_varref_expr(*e, var)) return r;
    }
    if (ExprP r = find_varref(s.body, var)) return r;
    if (ExprP r = find_varref(s.else_body, var)) return r;
  }
  return nullptr;
}

ExprP Lowerer::clone_subst(const ExprP& e, int var, const ExprP& repl) {
  if (!e) return e;
  if (e->kind == ExprKind::VarRef && e->var == var) return repl;
  const std::uint64_t bit = 1ull << (var % 64);
  if ((info(e.get()).var_bloom & bit) == 0) return e;  // share untouched trees
  auto n = std::make_shared<Expr>(*e);
  n->a = clone_subst(e->a, var, repl);
  n->b = clone_subst(e->b, var, repl);
  n->c = clone_subst(e->c, var, repl);
  return n;
}

Stmt Lowerer::clone_subst_stmt(const Stmt& s, int var, const ExprP& repl) {
  Stmt n = s;
  n.index = clone_subst(s.index, var, repl);
  n.value = clone_subst(s.value, var, repl);
  n.lo = clone_subst(s.lo, var, repl);
  n.hi = clone_subst(s.hi, var, repl);
  n.step = clone_subst(s.step, var, repl);
  n.cond = clone_subst(s.cond, var, repl);
  n.body.clear();
  for (const Stmt& c : s.body) n.body.push_back(clone_subst_stmt(c, var, repl));
  n.else_body.clear();
  for (const Stmt& c : s.else_body) {
    n.else_body.push_back(clone_subst_stmt(c, var, repl));
  }
  return n;
}

void Lowerer::lower_for(const Stmt& s) {
  const auto lo_c = eval_const_int(s.lo);
  const auto hi_c = eval_const_int(s.hi);
  const auto step_c = eval_const_int(s.step);

  std::optional<std::int64_t> trip;
  if (lo_c && hi_c && step_c && *step_c > 0) {
    trip = (*hi_c - *lo_c + *step_c - 1) / *step_c;
    if (*trip < 0) trip = 0;
  }

  int factor = unroll_factor(s.unroll);
  // CUDA auto-unrolls short constant-trip loops even without a pragma.
  const bool full =
      (trip && (factor == -1 || (factor > 0 && factor >= *trip) ||
                (factor == 0 && *trip <= pol_.auto_full_unroll_limit)));

  if (full) {
    GPC_REQUIRE(*trip <= kMaxFullUnroll, "full unroll beyond backstop limit");
    for (std::int64_t k = 0; k < *trip; ++k) {
      invalidate_var(s.loop_var);
      set_env(s.loop_var, {true, RV::of_int(*lo_c + k * *step_c, Type::S32)});
      lower_stmts(s.body);
    }
    invalidate_var(s.loop_var);
    return;
  }

  if (factor == -1) factor = 1;  // cannot fully unroll unknown trip counts
  if (factor <= 0) factor = 1;

  // Materialise loop state and any variables assigned in the body.
  std::vector<int> assigned;
  collect_assigned(s.body, &assigned);
  for (int v : assigned) materialize_var(v);
  materialize_var(s.loop_var);
  invalidate_var(s.loop_var);

  RV lo = lower_expr(s.lo);
  const int ireg = var_register(s.loop_var);
  {
    ir::Instr in;
    in.op = Opcode::Mov;
    in.type = Type::S32;
    in.a = to_operand(lo);
    in.dst = ireg;
    fb_.emit(guarded(in));
  }
  GPC_REQUIRE(guard_reg_ < 0, "loop inside predicated region");

  push_scope();
  auto saved_env = env_;
  ++conditional_depth_;

  // hi/step evaluated once before the loop (loop-invariant hoisting; both
  // front-ends perform trip-bound hoisting).
  RV hi = lower_expr(s.hi);
  RV step = lower_expr(s.step);

  const int label_cond = fb_.new_label();
  const int label_end = fb_.new_label();
  const int label_rem_cond = factor > 1 ? fb_.new_label() : -1;
  const int label_rem_end = factor > 1 ? fb_.new_label() : -1;

  fb_.bind_label(label_cond);
  if (factor > 1) {
    // while (i + (f-1)*step < hi) { f copies }
    std::int64_t pre = step_c ? (*step_c) * (factor - 1) : 0;
    int limit_reg;
    if (step_c) {
      limit_reg = emit(Opcode::Add, Type::S32, Operand::vreg(ireg),
                       Operand::imm(pre));
    } else {
      const int t = emit(Opcode::Mul, Type::S32, to_operand(step),
                         Operand::imm(factor - 1));
      limit_reg = emit(Opcode::Add, Type::S32, Operand::vreg(ireg),
                       Operand::vreg(t));
    }
    ir::Instr sp;
    sp.op = Opcode::SetP;
    sp.type = Type::S32;
    sp.cmp = ir::CmpOp::Ge;
    sp.a = Operand::vreg(limit_reg);
    sp.b = to_operand(hi);
    sp.dst = fb_.new_reg();
    fb_.emit(sp);
    fb_.emit_branch(label_rem_cond, sp.dst, false);
    if (step_c) {
      // Substitution-based unrolling: the induction variable stays fixed
      // across the f copies (copy k sees i + k*step), so polynomial CSE can
      // share loads whose addresses overlap between iterations — the payoff
      // the paper measures for FDTD's `#pragma unroll 9` (Fig. 6).
      // All copies must substitute through the SAME VarRef node (the body's
      // own hash-consed one), otherwise the polynomial atoms differ by
      // pointer and cross-copy load sharing never matches.
      ExprP vr = find_varref(s.body, s.loop_var);
      if (!vr) {
        auto fresh = std::make_shared<Expr>();
        fresh->kind = ExprKind::VarRef;
        fresh->type = Type::S32;
        fresh->var = s.loop_var;
        vr = fresh;
      }
      for (int k = 0; k < factor; ++k) {
        if (k == 0) {
          lower_stmts(s.body);
        } else {
          auto off = std::make_shared<Expr>();
          off->kind = ExprKind::ConstInt;
          off->type = Type::S32;
          off->ival = k * *step_c;
          auto repl = std::make_shared<Expr>();
          repl->kind = ExprKind::Binary;
          repl->type = Type::S32;
          repl->bop = BinOp::Add;
          repl->a = vr;
          repl->b = off;
          std::vector<Stmt> copy;
          copy.reserve(s.body.size());
          for (const Stmt& st : s.body) {
            copy.push_back(clone_subst_stmt(st, s.loop_var, repl));
          }
          clone_keepalive_.push_back(std::move(copy));
          lower_stmts(clone_keepalive_.back());
        }
      }
      ir::Instr inc;
      inc.op = Opcode::Add;
      inc.type = Type::S32;
      inc.a = Operand::vreg(ireg);
      inc.b = Operand::imm(*step_c * factor);
      inc.dst = ireg;
      fb_.emit(inc);
      invalidate_var(s.loop_var);
      for (int v : assigned) invalidate_var(v);
    } else {
      for (int k = 0; k < factor; ++k) {
        lower_stmts(s.body);
        ir::Instr inc;
        inc.op = Opcode::Add;
        inc.type = Type::S32;
        inc.a = Operand::vreg(ireg);
        inc.b = to_operand(step);
        inc.dst = ireg;
        fb_.emit(inc);
        invalidate_var(s.loop_var);
        for (int v : assigned) invalidate_var(v);
      }
    }
    fb_.emit_branch(label_cond);
    fb_.bind_label(label_rem_cond);
  }

  // Rolled (remainder) loop: while (i < hi) { body }
  const int head = factor > 1 ? label_rem_cond : label_cond;
  if (factor > 1) {
    // label already bound above; loop head check below re-enters here
  }
  {
    ir::Instr sp;
    sp.op = Opcode::SetP;
    sp.type = Type::S32;
    sp.cmp = ir::CmpOp::Ge;
    sp.a = Operand::vreg(ireg);
    sp.b = to_operand(hi);
    sp.dst = fb_.new_reg();
    fb_.emit(sp);
    fb_.emit_branch(factor > 1 ? label_rem_end : label_end, sp.dst, false);
    lower_stmts(s.body);
    ir::Instr inc;
    inc.op = Opcode::Add;
    inc.type = Type::S32;
    inc.a = Operand::vreg(ireg);
    inc.b = to_operand(step);
    inc.dst = ireg;
    fb_.emit(inc);
    invalidate_var(s.loop_var);
    for (int v : assigned) invalidate_var(v);
    fb_.emit_branch(head);
    if (factor > 1) {
      fb_.bind_label(label_rem_end);
    }
    fb_.bind_label(label_end);
  }

  --conditional_depth_;
  env_ = saved_env;
  invalidate_var(s.loop_var);
  for (int v : assigned) invalidate_var(v);
  pop_scope();
}

void Lowerer::lower_while(const Stmt& s) {
  GPC_REQUIRE(guard_reg_ < 0, "while inside predicated region");
  std::vector<int> assigned;
  collect_assigned(s.body, &assigned);
  for (int v : assigned) materialize_var(v);

  push_scope();
  auto saved_env = env_;
  // The condition depends on loop-carried state; invalidate before lowering.
  for (int v : assigned) invalidate_var(v);
  ++conditional_depth_;

  const int label_cond = fb_.new_label();
  const int label_end = fb_.new_label();
  fb_.bind_label(label_cond);
  RV cond = lower_expr(s.cond);
  GPC_REQUIRE(!cond.is_const || cond.ic == 0,
              "while(true) loops are not supported");
  if (cond.is_const) {
    // while(false): nothing to emit beyond the (already emitted) cond code.
  } else {
    fb_.emit_branch(label_end, cond.reg, /*negated=*/true);
    lower_stmts(s.body);
    for (int v : assigned) invalidate_var(v);
    invalidate_loads();
    fb_.emit_branch(label_cond);
  }
  fb_.bind_label(label_end);

  --conditional_depth_;
  env_ = saved_env;
  for (int v : assigned) invalidate_var(v);
  pop_scope();
}

bool Lowerer::stmts_predicable(const std::vector<Stmt>& stmts) const {
  if (static_cast<int>(stmts.size()) > pol_.max_predicated_stmts) return false;
  for (const Stmt& s : stmts) {
    switch (s.kind) {
      case StmtKind::Assign:
      case StmtKind::StoreGlobal:
      case StmtKind::StoreShared:
      case StmtKind::StorePrivate:
      case StmtKind::AtomicAddGlobal:
      case StmtKind::AtomicAddShared:
        break;
      default:
        return false;
    }
  }
  return true;
}

void Lowerer::lower_if(const Stmt& s) {
  RV cond = lower_expr(s.cond);
  if (cond.is_const) {
    lower_stmts(cond.ic ? s.body : s.else_body);
    return;
  }

  // OpenCL-style if-conversion: single assignment without loads -> selp.
  if (pol_.selp_single_assign && s.else_body.empty() && s.body.size() == 1 &&
      s.body[0].kind == StmtKind::Assign &&
      !info(s.body[0].value.get()).has_mutable_load) {
    const Stmt& a = s.body[0];
    materialize_var(a.var);
    RV v = materialize(lower_expr(a.value));
    const int vr = var_register(a.var);
    ir::Instr in;
    in.op = Opcode::SelP;
    in.type = def_.vars[a.var].type;
    in.a = Operand::vreg(cond.reg);
    in.b = to_operand(v);
    in.c = Operand::vreg(vr);
    in.dst = vr;
    fb_.emit(guarded(in));
    invalidate_var(a.var);
    return;
  }

  // CUDA-style predication of small bodies.
  if (pol_.predicate_small_ifs && guard_reg_ < 0 && stmts_predicable(s.body) &&
      stmts_predicable(s.else_body)) {
    std::vector<int> assigned;
    collect_assigned(s.body, &assigned);
    collect_assigned(s.else_body, &assigned);
    for (int v : assigned) materialize_var(v);
    ++conditional_depth_;
    guard_reg_ = cond.reg;
    guard_neg_ = false;
    lower_stmts(s.body);
    if (!s.else_body.empty()) {
      guard_neg_ = true;
      lower_stmts(s.else_body);
    }
    guard_reg_ = -1;
    guard_neg_ = false;
    --conditional_depth_;
    for (int v : assigned) invalidate_var(v);
    invalidate_loads();
    return;
  }

  // Generic branching lowering. Variables assigned inside either branch must
  // hold their current value in a register before the branch, otherwise the
  // not-taken path would leave them unmaterialised.
  GPC_REQUIRE(guard_reg_ < 0, "nested control flow inside predicated region");
  {
    std::vector<int> assigned;
    collect_assigned(s.body, &assigned);
    collect_assigned(s.else_body, &assigned);
    for (int v : assigned) materialize_var(v);
  }
  const int label_else = fb_.new_label();
  const int label_end = fb_.new_label();
  fb_.emit_branch(s.else_body.empty() ? label_end : label_else, cond.reg,
                  /*negated=*/true);
  lower_body_as_region(s.body);
  if (!s.else_body.empty()) {
    fb_.emit_branch(label_end);
    fb_.bind_label(label_else);
    lower_body_as_region(s.else_body);
  }
  fb_.bind_label(label_end);
  invalidate_loads();
}

// ---------------------------------------------------------------------------
// Entry

void Lowerer::prescan_expr_builtins(const ExprP& e,
                                    std::vector<BuiltinId>* out) {
  if (!e) return;
  if (e->kind == ExprKind::Builtin) out->push_back(e->builtin);
  prescan_expr_builtins(e->a, out);
  prescan_expr_builtins(e->b, out);
  prescan_expr_builtins(e->c, out);
}

void Lowerer::prescan_builtins(const std::vector<Stmt>& stmts) {
  std::vector<BuiltinId> used;
  std::function<void(const std::vector<Stmt>&)> walk =
      [&](const std::vector<Stmt>& ss) {
        for (const Stmt& s : ss) {
          for (const ExprP* e :
               {&s.index, &s.value, &s.lo, &s.hi, &s.step, &s.cond}) {
            prescan_expr_builtins(*e, &used);
          }
          walk(s.body);
          walk(s.else_body);
        }
      };
  walk(stmts);
  for (BuiltinId id : used) lower_builtin(id);
}

ir::Function Lowerer::run() {
  var_reg_.assign(def_.vars.size(), -1);
  env_.assign(def_.vars.size(), {});
  env_poly_.assign(def_.vars.size(), {});
  param_reg_.resize(def_.params.size());
  push_scope();

  // Constant arrays first so user data precedes the literal pool.
  for (const auto& ca : def_.const_arrays) {
    const_off_.push_back(fb_.add_const_data(
        ca.data.data(), static_cast<int>(ca.data.size()), ir::size_of(ca.elem)));
  }
  for (const auto& sa : def_.shared_arrays) {
    shared_off_.push_back(
        fb_.add_shared(sa.count * ir::size_of(sa.elem), ir::size_of(sa.elem)));
  }
  for (const auto& pa : def_.private_arrays) {
    local_off_.push_back(
        fb_.add_local(pa.count * ir::size_of(pa.elem), ir::size_of(pa.elem)));
  }
  for (const auto& p : def_.params) {
    ir::Param ip;
    ip.name = p.name;
    ip.type = p.type;
    ip.is_pointer = p.is_pointer;
    fb_.add_param(ip);
  }

  // Parameter loads at entry.
  for (std::size_t i = 0; i < def_.params.size(); ++i) {
    ir::Instr in;
    in.op = Opcode::Ld;
    in.space = Space::Param;
    in.type = def_.params[i].type;
    in.a = Operand::imm(static_cast<std::int64_t>(i));
    in.dst = fb_.new_reg();
    fb_.emit(in);
    param_reg_[i] = in.dst;
  }

  // CUDA materialises special registers once at entry; the OpenCL front-end
  // re-reads them at each use.
  if (pol_.memoize_builtins) prescan_builtins(def_.body);

  lower_stmts(def_.body);
  return fb_.finish();
}

}  // namespace

ir::Function lower(const KernelDef& def, const Policy& policy,
                   const CompileOptions& opts) {
  Lowerer l(def, policy, opts);
  return l.run();
}

}  // namespace gpc::compiler
