// The artefact a front-end + back-end pipeline produces: the PTX-like
// function plus the resource metadata (register estimate, shared/local/const
// sizes) that launch-time validation and the occupancy model consume.
#pragma once

#include <memory>
#include <string>

#include "arch/device_spec.h"
#include "ir/function.h"

namespace gpc::compiler {

/// Opaque base for consumer-attached caches. The simulator derives its
/// pre-decoded micro-op program from this (sim/decode.h) and parks it on the
/// kernel so decode runs once per CompiledKernel rather than once per block;
/// the indirection avoids a compiler -> sim dependency. Caches must be
/// self-contained (no pointers into `fn`) because copies of a CompiledKernel
/// share the same cache object.
struct KernelCache {
  virtual ~KernelCache() = default;
};

struct CompiledKernel {
  /// Executable function (post-PTXAS cleanup).
  ir::Function fn;
  /// PTX-level function as the front end emitted it (pre-PTXAS); this is
  /// what Table V histograms.
  ir::Function ptx;
  arch::Toolchain toolchain = arch::Toolchain::Cuda;
  /// PTXAS-style per-thread register estimate (max simultaneously live
  /// virtual registers plus an ABI bias).
  int reg_estimate = 0;
  /// Number of texture units the kernel references (CUDA only; 0 after
  /// texture removal or under OpenCL).
  int num_textures = 0;
  /// Lazily-filled decode cache (see KernelCache above). Guarded by a mutex
  /// inside sim/decode.cpp; never written after first fill.
  mutable std::shared_ptr<const KernelCache> sim_cache;

  int shared_bytes() const { return fn.static_shared_bytes; }
  int local_bytes_per_thread() const { return fn.local_bytes; }
  const std::string& name() const { return fn.name; }
};

struct CompileOptions {
  /// Lower TexFetch nodes to texture instructions (CUDA default). Setting
  /// this to false reproduces the paper's "after removing texture memory"
  /// variants of MD and SPMV (Figs. 4 & 5).
  bool enable_textures = true;
};

}  // namespace gpc::compiler
