#include "prof/prof.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "sim/decode.h"

namespace gpc::prof {

// ---------------------------------------------------------------------------
// Storage: per-thread chunked append-only buffers.
//
// Each thread owns one ThreadBuffer; only the owner writes events, and it
// publishes them with a release store of the running count. Readers
// (snapshot / exporters) acquire the count and walk the chunk list — chunks
// are heap nodes linked through an atomic next pointer and are never moved
// or freed, so pointers handed out by snapshot() stay valid for the process
// lifetime. That makes the append path lock-free and the whole structure
// safe under ThreadSanitizer without any hot-path mutex.
// ---------------------------------------------------------------------------

namespace {
constexpr int kChunkCap = 256;

/// Latency-histogram slot of a span category, or -1 for categories without
/// percentile tracking (only launch / memcpy / build spans and serve
/// completions feed the serving-layer percentiles).
int latency_slot(const char* category) {
  if (std::strcmp(category, "api") == 0) return 0;
  if (std::strcmp(category, "xfer") == 0) return 1;
  if (std::strcmp(category, "compile") == 0) return 2;
  if (std::strcmp(category, "serve") == 0) return 3;
  return -1;
}
}  // namespace

struct Recorder::ThreadBuffer {
  struct Chunk {
    Event events[kChunkCap];
    std::atomic<Chunk*> next{nullptr};
  };

  explicit ThreadBuffer(int thread_id) : tid(thread_id), tail(&head) {}

  const int tid;
  Chunk head;
  Chunk* tail;              // owner thread only
  int tail_count = 0;       // owner thread only
  std::atomic<std::int64_t> published{0};  // events visible to readers
  std::atomic<std::int64_t> cleared{0};    // events logically dropped

  void push(Event ev) {
    if (tail_count == kChunkCap) {
      Chunk* c = new Chunk;
      tail->next.store(c, std::memory_order_release);
      tail = c;
      tail_count = 0;
    }
    tail->events[tail_count++] = std::move(ev);
    published.store(published.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

  /// Reader-side visit of events [cleared, published).
  template <typename Fn>
  void visit(Fn&& fn) const {
    const std::int64_t n = published.load(std::memory_order_acquire);
    const std::int64_t skip = cleared.load(std::memory_order_relaxed);
    const Chunk* c = &head;
    for (std::int64_t i = 0; i < n; i += kChunkCap) {
      const std::int64_t in_chunk = std::min<std::int64_t>(kChunkCap, n - i);
      for (std::int64_t j = 0; j < in_chunk; ++j) {
        if (i + j >= skip) fn(c->events[j]);
      }
      if (i + kChunkCap < n) c = c->next.load(std::memory_order_acquire);
    }
  }
};

Recorder::Recorder() {
  if (const char* env = std::getenv("GPC_PROF")) {
    set_modes(parse_modes(env));
  }
}

Recorder& Recorder::instance() {
  // Leaked on purpose: exporters run from atexit, after static destructors
  // of other translation units may have run.
  static Recorder* r = new Recorder;
  return *r;
}

unsigned parse_modes(std::string_view spec) {
  unsigned m = kOff;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view tok = spec.substr(pos, comma - pos);
    if (tok == "summary") {
      m |= kSummary;
    } else if (tok == "trace") {
      m |= kTrace;
    } else if (tok == "counters") {
      m |= kCounters;
    } else if (tok == "all" || tok == "1") {
      m |= kAll;
    } else if (tok == "off" || tok == "0" || tok.empty()) {
      // no-op
    } else {
      GPC_LOG(Warn) << "GPC_PROF: unknown mode '" << std::string(tok)
                    << "' ignored (known: summary,trace,counters,all,off)";
    }
    pos = comma + 1;
  }
  return m;
}

void Recorder::set_modes(unsigned modes) {
  modes_.store(modes & kAll, std::memory_order_relaxed);
  if (modes != kOff && !exit_hook_armed_.exchange(true)) {
    std::atexit([] { Recorder::instance().report(stderr); });
  }
}

void Recorder::set_output_dir(std::string dir) {
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    output_dir_ = std::move(dir);
  }
  set_modes(modes() | kTrace | kCounters);
}

Recorder::ThreadBuffer& Recorder::local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    buf = new ThreadBuffer(log::thread_id());  // leaked; see snapshot()
    std::lock_guard<std::mutex> lock(register_mutex_);
    buffers_.push_back(buf);
  }
  return *buf;
}

void Recorder::append(Event ev) { local_buffer().push(std::move(ev)); }

void Recorder::record_span(Track track, const char* category,
                           std::string name, std::int64_t start_ns,
                           std::int64_t end_ns) {
  if (!enabled()) return;
  // Log2-bucket latency histogram: one relaxed fetch_add per span, no lock.
  const int slot = latency_slot(category);
  if (slot >= 0) {
    const std::uint64_t dur =
        end_ns > start_ns ? static_cast<std::uint64_t>(end_ns - start_ns) : 0;
    lat_hist_[slot][std::bit_width(dur)].fetch_add(
        1, std::memory_order_relaxed);
  }
  Event ev;
  ev.kind = Event::Kind::Span;
  ev.track = track;
  ev.category = category;
  ev.name = std::move(name);
  ev.tid = log::thread_id();
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  append(std::move(ev));
}

void Recorder::record_instant(const char* category, std::string name) {
  if (!enabled()) return;
  Event ev;
  ev.kind = Event::Kind::Instant;
  ev.category = category;
  ev.name = std::move(name);
  ev.tid = log::thread_id();
  ev.start_ns = ev.end_ns = log::now_ns();
  append(std::move(ev));
}

void Recorder::record_launch(arch::Toolchain tc, const std::string& device,
                             const std::string& kernel,
                             const sim::KernelTiming& t,
                             const sim::LaunchStats& stats, int tenant,
                             std::shared_ptr<const aiwc::Features> features) {
  if (!enabled()) return;

  // Place the launch on the runtime's synthetic device timeline: it starts
  // at its host enqueue time or at the end of the previous launch on that
  // runtime, whichever is later (a device processes one grid at a time).
  const int rt = tc == arch::Toolchain::Cuda ? 0 : 1;
  const std::int64_t dur_ns =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(t.seconds * 1e9));
  const std::int64_t host_now = log::now_ns();
  std::atomic<std::int64_t>& clock = device_clock_ns_[rt];
  std::int64_t start = clock.load(std::memory_order_relaxed);
  std::int64_t begin;
  do {
    begin = std::max(start, host_now);
  } while (!clock.compare_exchange_weak(start, begin + dur_ns,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed));

  Event ev;
  ev.kind = Event::Kind::Launch;
  ev.track = rt == 0 ? Track::CudaDevice : Track::OclDevice;
  ev.category = "kernel";
  ev.name = kernel;
  ev.tid = log::thread_id();
  ev.start_ns = begin;
  ev.end_ns = begin + dur_ns;
  ev.launch = std::make_unique<LaunchRecord>();
  ev.launch->kernel = kernel;
  ev.launch->toolchain = tc;
  ev.launch->device = device;
  ev.launch->timing = t;
  ev.launch->counters = stats.total;
  ev.launch->blocks = stats.blocks;
  ev.launch->threads_per_block = stats.threads_per_block;
  ev.launch->tenant = tenant;
  ev.launch->dispatch = stats.dispatch;
  ev.launch->static_ops = stats.static_ops;
  ev.launch->static_fused_ops = stats.static_fused_ops;
  for (int p = 0; p < sim::kNumFusedPatterns; ++p) {
    ev.launch->static_fused_groups[p] = stats.static_fused_groups[p];
  }
  ev.launch->aiwc = std::move(features);
  append(std::move(ev));
}

void Recorder::record_serve(ServeRecord record) {
  if (!enabled()) return;
  const std::uint64_t dur =
      record.total_ns > 0 ? static_cast<std::uint64_t>(record.total_ns) : 0;
  lat_hist_[3][std::bit_width(dur)].fetch_add(1, std::memory_order_relaxed);
  Event ev;
  ev.kind = Event::Kind::Serve;
  ev.category = "serve";
  ev.name = record.kernel;
  ev.tid = log::thread_id();
  ev.end_ns = log::now_ns();
  ev.start_ns = ev.end_ns - record.total_ns;
  ev.serve = std::make_unique<ServeRecord>(std::move(record));
  append(std::move(ev));
}

Recorder::LatencyPercentiles Recorder::span_latency(
    const char* category) const {
  LatencyPercentiles out;
  const int slot = latency_slot(category);
  if (slot < 0) return out;
  std::uint64_t counts[64];
  for (int b = 0; b < 64; ++b) {
    counts[b] = lat_hist_[slot][b].load(std::memory_order_relaxed);
    out.count += counts[b];
  }
  if (out.count == 0) return out;
  const auto quantile = [&](double q) -> std::int64_t {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(out.count - 1));
    std::uint64_t seen = 0;
    for (int b = 0; b < 64; ++b) {
      seen += counts[b];
      if (counts[b] > 0 && seen > rank) {
        // Bucket b holds durations in [2^(b-1), 2^b); report the upper
        // bound (bucket 0 is the sub-nanosecond bucket).
        return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
      }
    }
    return 0;
  };
  out.p50_ns = quantile(0.50);
  out.p95_ns = quantile(0.95);
  out.p99_ns = quantile(0.99);
  return out;
}

std::vector<const Event*> Recorder::snapshot() const {
  std::vector<ThreadBuffer*> bufs;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    bufs = buffers_;
  }
  std::vector<const Event*> out;
  for (const ThreadBuffer* b : bufs) {
    b->visit([&out](const Event& ev) { out.push_back(&ev); });
  }
  return out;
}

void Recorder::clear() {
  std::vector<ThreadBuffer*> bufs;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    bufs = buffers_;
  }
  for (ThreadBuffer* b : bufs) {
    b->cleared.store(b->published.load(std::memory_order_acquire),
                     std::memory_order_relaxed);
  }
  device_clock_ns_[0].store(0, std::memory_order_relaxed);
  device_clock_ns_[1].store(0, std::memory_order_relaxed);
  for (auto& hist : lat_hist_) {
    for (auto& bucket : hist) bucket.store(0, std::memory_order_relaxed);
  }
}

void ScopedSpan::begin(const char* category, std::string_view name) {
  armed_ = true;
  category_ = category;
  name_.assign(name);
  start_ns_ = log::now_ns();
}

void ScopedSpan::end() {
  recorder().record_span(Track::Host, category_, std::move(name_), start_ns_,
                         log::now_ns());
}

}  // namespace gpc::prof
