// nvprof-style end-of-run summary: per-runtime kernel table (calls, total,
// avg, % of that runtime's device time, avg launch overhead, limiter) and a
// host API-call table, aggregated from the recorded events.
#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "prof/prof.h"
#include "resil/fault.h"

namespace gpc::prof {
namespace {

struct KernelAgg {
  int calls = 0;
  double seconds = 0;       // simulated device seconds, incl. launch overhead
  double launch_seconds = 0;
  const char* limiter = "";
};

struct ApiAgg {
  int calls = 0;
  double seconds = 0;  // host wall-clock
};

std::string pct(double part, double whole) {
  return whole > 0 ? TextTable::num(100.0 * part / whole, 1) + "%" : "-";
}

/// Metric value by name from a finalize()d feature vector (0 if absent).
double metric(const std::vector<aiwc::Metric>& m, const char* name) {
  for (const aiwc::Metric& x : m) {
    if (x.name == name) return x.value;
  }
  return 0.0;
}

}  // namespace

std::string Recorder::summary() const {
  // Keyed by runtime then kernel name; std::map keeps the output stable.
  std::map<std::string, KernelAgg> kernels[2];
  double device_seconds[2] = {0, 0};
  std::map<std::string, ApiAgg> api;
  // Serving-layer aggregation (gpc::serve completions).
  struct ServeAgg {
    std::uint64_t jobs = 0;
    std::uint64_t by_class[4] = {};  // OK / DEG / ABT / SHED
    std::uint64_t batch_sum = 0;
    std::uint64_t max_queue_depth = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  } serve;
  const auto serve_class_index = [](const std::string& c) {
    if (c == "OK") return 0;
    if (c == "DEG") return 1;
    if (c == "ABT") return 2;
    return 3;  // SHED
  };
  // AIWC raw features merged per (runtime, kernel) — merging before
  // finalize() keeps the derived metrics a pure function of the summed
  // integral data, the same contract split launches rely on.
  std::map<std::string, aiwc::Features> aiwc_agg[2];

  for (const Event* ev : snapshot()) {
    if (ev->kind == Event::Kind::Launch) {
      const LaunchRecord& l = *ev->launch;
      const int rt = l.toolchain == arch::Toolchain::Cuda ? 0 : 1;
      KernelAgg& a = kernels[rt][l.kernel];
      ++a.calls;
      a.seconds += l.timing.seconds;
      a.launch_seconds += l.timing.launch_s;
      a.limiter = l.timing.occupancy.limiter;
      device_seconds[rt] += l.timing.seconds;
      if (l.aiwc) {
        aiwc::Features& agg = aiwc_agg[rt][l.kernel];
        // Same kernel name, different program (e.g. a rebuilt variant):
        // keep the first program's aggregate rather than aborting on the
        // merge-size check.
        if (agg.site_issues.empty() ||
            agg.site_issues.size() == l.aiwc->site_issues.size()) {
          agg.merge(*l.aiwc);
        }
      }
    } else if (ev->kind == Event::Kind::Span && ev->track == Track::Host) {
      ApiAgg& a = api[ev->name];
      ++a.calls;
      a.seconds += static_cast<double>(ev->end_ns - ev->start_ns) * 1e-9;
    } else if (ev->kind == Event::Kind::Serve) {
      const ServeRecord& s = *ev->serve;
      ++serve.jobs;
      ++serve.by_class[serve_class_index(s.cls)];
      serve.batch_sum += static_cast<std::uint64_t>(s.batch);
      serve.max_queue_depth = std::max(
          serve.max_queue_depth, static_cast<std::uint64_t>(s.queue_depth));
      if (s.cls == "OK" || s.cls == "DEG") {
        ++(s.cache_hit ? serve.cache_hits : serve.cache_misses);
      }
    }
  }

  std::string out = "\ngpc::prof summary\n";
  for (int rt = 0; rt < 2; ++rt) {
    if (kernels[rt].empty()) continue;
    const char* rt_name = rt == 0 ? "CUDA" : "OpenCL";
    TextTable t({"Kernel", "Calls", "Total ms", "Avg us", "Launch us/call",
                 "Time %", "Occ. limiter"});
    // Rows sorted by total time, heaviest first, like nvprof.
    std::vector<std::pair<std::string, KernelAgg>> rows(kernels[rt].begin(),
                                                        kernels[rt].end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.seconds > b.second.seconds;
    });
    for (const auto& [name, a] : rows) {
      t.add_row({name, std::to_string(a.calls),
                 TextTable::num(a.seconds * 1e3, 3),
                 TextTable::num(a.seconds * 1e6 / a.calls, 2),
                 TextTable::num(a.launch_seconds * 1e6 / a.calls, 2),
                 pct(a.seconds, device_seconds[rt]), a.limiter});
    }
    out += t.to_string(std::string(rt_name) + " kernels (simulated device time: " +
                       TextTable::num(device_seconds[rt] * 1e3, 3) + " ms)");
  }

  if (!api.empty()) {
    TextTable t({"API call", "Calls", "Total ms", "Avg us"});
    std::vector<std::pair<std::string, ApiAgg>> rows(api.begin(), api.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.seconds > b.second.seconds;
    });
    for (const auto& [name, a] : rows) {
      t.add_row({name, std::to_string(a.calls),
                 TextTable::num(a.seconds * 1e3, 3),
                 TextTable::num(a.seconds * 1e6 / a.calls, 2)});
    }
    out += t.to_string("Host API calls (wall clock)");
  }

  // AIWC workload characterization (gpc::aiwc, DESIGN.md §16): one row per
  // kernel with the headline architecture-independent features, merged over
  // every launch of that kernel. Only present when GPC_AIWC armed collection.
  for (int rt = 0; rt < 2; ++rt) {
    if (aiwc_agg[rt].empty()) continue;
    const char* rt_name = rt == 0 ? "CUDA" : "OpenCL";
    TextTable t({"Kernel", "Opc H", "Br H", "SIMT eff", "Mem H(l0)",
                 "Cold %", "Unit str %", "Bar/warp"});
    for (const auto& [name, raw] : aiwc_agg[rt]) {
      const std::vector<aiwc::Metric> m = aiwc::finalize(raw);
      t.add_row({name, TextTable::num(metric(m, "opcode_entropy"), 2),
                 TextTable::num(metric(m, "branch_entropy"), 3),
                 TextTable::num(metric(m, "simt_efficiency"), 3),
                 TextTable::num(metric(m, "mem_entropy_l0"), 2),
                 TextTable::num(metric(m, "reuse_cold_fraction") * 100, 1),
                 TextTable::num(metric(m, "stride_unit_fraction") * 100, 1),
                 TextTable::num(metric(m, "barriers_per_warp"), 1)});
    }
    out += t.to_string(std::string(rt_name) +
                       " AIWC features (architecture-independent)");
  }

  // Span-latency percentiles from the lock-free log2-bucket histograms:
  // the launch/memcpy/build latency distribution tails (bucket upper
  // bounds, exact to a factor of 2), nvprof's missing p99 column.
  {
    static const char* kCats[4] = {"api", "xfer", "compile", "serve"};
    static const char* kLabels[4] = {"launch/API", "memcpy", "build",
                                     "serve e2e"};
    TextTable t({"Span", "Count", "p50 us", "p95 us", "p99 us"});
    bool have = false;
    for (int i = 0; i < 4; ++i) {
      const LatencyPercentiles p = span_latency(kCats[i]);
      if (p.count == 0) continue;
      have = true;
      t.add_row({kLabels[i], std::to_string(p.count),
                 TextTable::num(static_cast<double>(p.p50_ns) * 1e-3, 2),
                 TextTable::num(static_cast<double>(p.p95_ns) * 1e-3, 2),
                 TextTable::num(static_cast<double>(p.p99_ns) * 1e-3, 2)});
    }
    if (have) out += t.to_string("Host span latency percentiles (log2 buckets)");
  }

  // Serving activity (gpc::serve): job classification mix, queue/batch
  // shape and the compiled-kernel cache hit rate. Omitted when no jobs were
  // served, so non-serving runs keep their familiar report.
  if (serve.jobs > 0) {
    TextTable t({"Metric", "Value"});
    t.add_row({"jobs served", std::to_string(serve.jobs)});
    t.add_row({"OK", std::to_string(serve.by_class[0])});
    t.add_row({"DEG", std::to_string(serve.by_class[1])});
    t.add_row({"ABT", std::to_string(serve.by_class[2])});
    t.add_row({"SHED (load shed)", std::to_string(serve.by_class[3])});
    t.add_row({"max queue depth", std::to_string(serve.max_queue_depth)});
    t.add_row({"avg batch size",
               TextTable::num(static_cast<double>(serve.batch_sum) /
                                  static_cast<double>(serve.jobs),
                              2)});
    const std::uint64_t lookups = serve.cache_hits + serve.cache_misses;
    t.add_row({"kernel-cache hit rate",
               lookups == 0 ? std::string("-")
                            : TextTable::num(100.0 *
                                                 static_cast<double>(
                                                     serve.cache_hits) /
                                                 static_cast<double>(lookups),
                                             1) +
                                  "% (" + std::to_string(serve.cache_hits) +
                                  "/" + std::to_string(lookups) + ")"});
    out += t.to_string("Serving (gpc::serve)");
  }

  // Resilience activity (gpc::resil counters): a soak's recovery story —
  // how often the policy layer retried, split, degraded, how many watchdog
  // trips and quarantined wrong-result runs — without parsing the JSONL
  // stream. Omitted entirely when nothing happened, so quiet runs keep the
  // familiar two-table report.
  {
    const resil::Counters& c = resil::counters();
    const std::uint64_t retries =
        c.retries.load(std::memory_order_relaxed);
    const std::uint64_t splits =
        c.split_launches.load(std::memory_order_relaxed);
    const std::uint64_t degraded =
        c.degraded_launches.load(std::memory_order_relaxed);
    const std::uint64_t trips =
        c.watchdog_trips.load(std::memory_order_relaxed);
    const std::uint64_t quarantined =
        c.quarantined.load(std::memory_order_relaxed);
    if (retries + splits + degraded + trips + quarantined > 0) {
      TextTable t({"Event", "Count"});
      t.add_row({"retries", std::to_string(retries)});
      t.add_row({"split launches", std::to_string(splits)});
      t.add_row({"degraded launches", std::to_string(degraded)});
      t.add_row({"watchdog trips", std::to_string(trips)});
      t.add_row({"quarantined (FL)", std::to_string(quarantined)});
      out += t.to_string("Resilience (gpc::resil recovery activity)");
    }
  }
  return out;
}

void Recorder::report(std::FILE* out) {
  const unsigned m = modes();
  if (m == kOff) return;

  std::string dir;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    dir = output_dir_;
  }
  if ((m & (kTrace | kCounters)) != 0 && !dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      GPC_LOG(Error) << "prof: cannot create output dir " << dir << ": "
                     << ec.message();
    }
  }
  const std::string prefix = dir.empty() ? std::string() : dir + "/";
  if ((m & kTrace) != 0) {
    const std::string path = prefix + "trace.json";
    if (write_chrome_trace(path)) {
      std::fprintf(out, "gpc::prof: wrote %s (open in https://ui.perfetto.dev)\n",
                   path.c_str());
    }
  }
  if ((m & kCounters) != 0) {
    const std::string path = prefix + "counters.jsonl";
    if (write_counters_jsonl(path)) {
      std::fprintf(out, "gpc::prof: wrote %s\n", path.c_str());
    }
    // The AIWC feature stream rides the counters mode: it only appears when
    // some launch actually carried features (GPC_AIWC armed), so disarmed
    // runs produce byte-identical prof output to pre-aiwc builds.
    const std::string apath = prefix + "aiwc.jsonl";
    if (write_aiwc_jsonl(apath)) {
      std::fprintf(out, "gpc::prof: wrote %s\n", apath.c_str());
    }
  }
  if ((m & kSummary) != 0) {
    std::fprintf(out, "%s", summary().c_str());
  }
}

}  // namespace gpc::prof
