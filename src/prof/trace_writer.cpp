// Exporters: chrome://tracing / Perfetto trace_event JSON and the JSONL
// counter stream. Formats are documented in DESIGN.md §11 and validated by
// tools/validate_trace.py (schema) and tests/prof_test.cpp (round-trip).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "prof/prof.h"
#include "sim/decode.h"
#include "sim/dispatch.h"

namespace gpc::prof {
namespace {

/// JSON string escaping (control chars, quote, backslash).
std::string esc(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// trace_event `pid` per track: one synthetic "process" per timeline so the
/// viewer stacks host threads and the two device timelines separately.
int track_pid(Track t) { return static_cast<int>(t); }

const char* runtime_name(arch::Toolchain tc) {
  return tc == arch::Toolchain::Cuda ? "CUDA" : "OpenCL";
}

double us(std::int64_t ns) { return static_cast<double>(ns) * 1e-3; }

void emit_complete(std::FILE* f, int pid, int tid, const char* cat,
                   const std::string& name, std::int64_t start_ns,
                   std::int64_t end_ns, const std::string& args_json,
                   bool* first) {
  std::fprintf(f,
               "%s  {\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"cat\":\"%s\","
               "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f%s%s}",
               *first ? "" : ",\n", pid, tid, cat, esc(name).c_str(),
               us(start_ns), us(end_ns - start_ns),
               args_json.empty() ? "" : ",\"args\":", args_json.c_str());
  *first = false;
}

void emit_meta(std::FILE* f, int pid, int tid, const char* what,
               const std::string& name, bool* first) {
  std::fprintf(f,
               "%s  {\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
               "\"args\":{\"name\":\"%s\"}}",
               *first ? "" : ",\n", pid, tid, what, esc(name).c_str());
  *first = false;
}

std::string launch_args_json(const LaunchRecord& l) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"device\":\"%s\",\"runtime\":\"%s\",\"blocks\":%d,\"tpb\":%d,"
      "\"launch_us\":%.3f,\"issue_us\":%.3f,\"dram_us\":%.3f,"
      "\"latency_factor\":%.4f,\"occupancy\":%.4f,\"limiter\":\"%s\"}",
      esc(l.device).c_str(), runtime_name(l.toolchain), l.blocks,
      l.threads_per_block, l.timing.launch_s * 1e6, l.timing.issue_s * 1e6,
      l.timing.dram_s * 1e6, l.timing.latency_factor,
      l.timing.occupancy.fraction, l.timing.occupancy.limiter);
  return buf;
}

}  // namespace

bool Recorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    GPC_LOG(Error) << "prof: cannot write trace to " << path;
    return false;
  }
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  std::set<std::pair<int, int>> tenant_rows;  // (pid, tid) rows to name

  // Track naming so Perfetto shows meaningful labels instead of pids.
  emit_meta(f, track_pid(Track::Host), 0, "process_name", "host", &first);
  emit_meta(f, track_pid(Track::CudaDevice), 0, "process_name",
            "CUDA device (simulated)", &first);
  emit_meta(f, track_pid(Track::OclDevice), 0, "process_name",
            "OpenCL device (simulated)", &first);

  for (const Event* ev : snapshot()) {
    switch (ev->kind) {
      case Event::Kind::Span:
        emit_complete(f, track_pid(ev->track), ev->tid, ev->category,
                      ev->name, ev->start_ns, ev->end_ns, "", &first);
        break;
      case Event::Kind::Instant:
        std::fprintf(f,
                     "%s  {\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"cat\":\"%s\","
                     "\"name\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
                     first ? "" : ",\n", track_pid(ev->track), ev->tid,
                     ev->category, esc(ev->name).c_str(), us(ev->start_ns));
        first = false;
        break;
      case Event::Kind::Launch: {
        // Two slices on the device track: the runtime's launch overhead
        // (enqueue to kernel start — §IV-B.4's quantity), then execution.
        // Virtual-device launches land on a per-tenant row (tid = tenant+1)
        // of the same device track, so the trace viewer shows each tenant's
        // share of the one serialized device timeline; unvirtualized
        // launches stay on row 0.
        const LaunchRecord& l = *ev->launch;
        const int tid = l.tenant >= 0 ? l.tenant + 1 : 0;
        if (tid > 0) {
          tenant_rows.insert({track_pid(ev->track), tid});
        }
        const auto launch_ns =
            static_cast<std::int64_t>(l.timing.launch_s * 1e9);
        const std::int64_t split =
            std::min(ev->end_ns, ev->start_ns + std::max<std::int64_t>(
                                                    launch_ns, 0));
        emit_complete(f, track_pid(ev->track), tid, "launch",
                      "[launch] " + l.kernel, ev->start_ns, split, "", &first);
        emit_complete(f, track_pid(ev->track), tid, "kernel", l.kernel, split,
                      ev->end_ns, launch_args_json(l), &first);
        if (l.aiwc) {
          // Headline AIWC series as Chrome counter tracks ("C" events),
          // sampled once per launch at kernel start on the device timeline —
          // scrubbing the trace shows how workload character shifts across
          // the launch sequence (e.g. BFS levels diverging).
          const std::vector<aiwc::Metric> m = aiwc::finalize(*l.aiwc);
          const auto get = [&m](const char* name) {
            for (const aiwc::Metric& x : m) {
              if (x.name == name) return x.value;
            }
            return 0.0;
          };
          std::fprintf(
              f,
              "%s  {\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"cat\":\"aiwc\","
              "\"name\":\"aiwc\",\"ts\":%.3f,\"args\":{"
              "\"simt_efficiency\":%.6f,\"branch_entropy\":%.6f,"
              "\"opcode_entropy\":%.6f,\"mem_entropy_l0\":%.6f,"
              "\"reuse_cold_fraction\":%.6f}}",
              first ? "" : ",\n", track_pid(ev->track), tid, us(split),
              get("simt_efficiency"), get("branch_entropy"),
              get("opcode_entropy"), get("mem_entropy_l0"),
              get("reuse_cold_fraction"));
          first = false;
        }
        break;
      }
      case Event::Kind::Serve:
        // Serve completions span submit (client thread) to completion
        // (worker thread); emitting them as host spans would break the
        // per-thread nesting the trace schema guarantees. They are exported
        // via counters.jsonl ("type":"serve") and the exit summary instead.
        break;
    }
  }
  for (const auto& [pid, tid] : tenant_rows) {
    emit_meta(f, pid, tid, "thread_name",
              "tenant " + std::to_string(tid - 1), &first);
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

bool Recorder::write_counters_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    GPC_LOG(Error) << "prof: cannot write counters to " << path;
    return false;
  }
  for (const Event* ev : snapshot()) {
    if (ev->kind == Event::Kind::Serve) {
      // One line per served job (gpc::serve): classification, queue/serve
      // latency, batching and kernel-cache provenance. Tagged with
      // "type":"serve" so consumers (tools/validate_trace.py) separate the
      // serving stream from the per-launch counter stream.
      const ServeRecord& s = *ev->serve;
      std::fprintf(f,
                   "{\"type\":\"serve\",\"job\":%" PRIu64
                   ",\"class\":\"%s\",\"kernel\":\"%s\",\"device\":\"%s\","
                   "\"shard\":%d,\"batch\":%d,\"queue_depth\":%d,"
                   "\"cache_hit\":%s,\"queue_ns\":%" PRId64
                   ",\"total_ns\":%" PRId64 "}\n",
                   s.job_id, s.cls.c_str(), esc(s.kernel).c_str(),
                   esc(s.device).c_str(), s.shard, s.batch, s.queue_depth,
                   s.cache_hit ? "true" : "false", s.queue_ns, s.total_ns);
      continue;
    }
    if (ev->kind != Event::Kind::Launch) continue;
    const LaunchRecord& l = *ev->launch;
    const sim::BlockStats& c = l.counters;
    std::fprintf(
        f,
        "{\"kernel\":\"%s\",\"runtime\":\"%s\",\"device\":\"%s\","
        "\"blocks\":%d,\"tpb\":%d,"
        "\"seconds\":%.9e,\"launch_s\":%.9e,\"issue_s\":%.9e,"
        "\"dram_s\":%.9e,\"latency_factor\":%.6f,"
        "\"occupancy\":%.6f,\"resident_warps\":%d,\"limiter\":\"%s\","
        "\"counters\":{"
        "\"alu_issues\":%" PRIu64 ",\"ialu_issues\":%" PRIu64
        ",\"agu_issues\":%" PRIu64 ",\"mad_issues\":%" PRIu64
        ",\"mul_issues\":%" PRIu64 ",\"sfu_issues\":%" PRIu64
        ",\"branch_issues\":%" PRIu64 ",\"mem_issues\":%" PRIu64
        ",\"shared_cycles\":%" PRIu64 ",\"const_cycles\":%" PRIu64
        ",\"barrier_count\":%" PRIu64 ",\"dram_read_bytes\":%" PRIu64
        ",\"dram_write_bytes\":%" PRIu64 ",\"dram_transactions\":%" PRIu64
        ",\"useful_global_bytes\":%" PRIu64 ",\"local_bytes\":%" PRIu64
        ",\"tex_requests\":%" PRIu64 ",\"tex_hits\":%" PRIu64
        ",\"l1_hits\":%" PRIu64 ",\"atomic_serial_ops\":%" PRIu64
        ",\"flops\":%.6e}",
        esc(l.kernel).c_str(), runtime_name(l.toolchain),
        esc(l.device).c_str(), l.blocks, l.threads_per_block,
        l.timing.seconds, l.timing.launch_s, l.timing.issue_s,
        l.timing.dram_s, l.timing.latency_factor, l.timing.occupancy.fraction,
        l.timing.occupancy.resident_warps, l.timing.occupancy.limiter,
        c.alu_issues, c.ialu_issues, c.agu_issues, c.mad_issues, c.mul_issues,
        c.sfu_issues, c.branch_issues, c.mem_issues, c.shared_cycles,
        c.const_cycles, c.barrier_count, c.dram_read_bytes,
        c.dram_write_bytes, c.dram_transactions, c.useful_global_bytes,
        c.local_bytes, c.tex_requests, c.tex_hits, c.l1_hits,
        c.atomic_serial_ops, c.flops);
    // Dispatch provenance + instruction mix (Issue 7): which engine ran the
    // launch, the dynamic per-XKind issue mix (mode-invariant), how many
    // superinstruction groups actually executed fused (mode-dependent), and
    // the decode pass's static fusion census of the kernel.
    std::fprintf(f, ",\"dispatch\":\"%s\",\"xkind_issues\":{",
                 sim::to_string(static_cast<sim::DispatchMode>(l.dispatch)));
    for (int k = 0; k < sim::kNumXKinds; ++k) {
      std::fprintf(f, "%s\"%s\":%" PRIu64, k == 0 ? "" : ",",
                   sim::to_string(static_cast<sim::XKind>(k)),
                   c.xkind_issues[k]);
    }
    std::fprintf(f, "},\"fused_groups\":%" PRIu64 ",\"fused_exec\":{",
                 c.fused_groups);
    for (int p = 0; p < sim::kNumFusedPatterns; ++p) {
      std::fprintf(f, "%s\"%s\":%" PRIu64, p == 0 ? "" : ",",
                   sim::to_string(static_cast<sim::FusedPattern>(p)),
                   c.fused_exec[p]);
    }
    std::fprintf(f,
                 "},\"static_fusion\":{\"ops\":%u,\"fused_ops\":%u,"
                 "\"groups\":{",
                 l.static_ops, l.static_fused_ops);
    for (int p = 0; p < sim::kNumFusedPatterns; ++p) {
      std::fprintf(f, "%s\"%s\":%u", p == 0 ? "" : ",",
                   sim::to_string(static_cast<sim::FusedPattern>(p)),
                   l.static_fused_groups[p]);
    }
    std::fprintf(f, "}}");
    // Divergence structure from the cohort scheduler (Issue 8): branch
    // splits, limit merges, peak simultaneously-live cohorts in one warp,
    // and the deepest divergence nesting seen. All zero on fully convergent
    // launches and under the min-PC reference scheduler (mode-dependent
    // diagnostics, excluded from the bit-identity contract).
    std::fprintf(f,
                 ",\"cohort\":{\"splits\":%" PRIu64 ",\"merges\":%" PRIu64
                 ",\"max_live\":%u,\"depth_max\":%u}",
                 c.cohort_splits, c.cohort_merges, c.cohort_max_live,
                 c.div_depth_max);
    if (l.tenant >= 0) std::fprintf(f, ",\"tenant\":%d", l.tenant);
    std::fprintf(f, "}\n");
  }
  std::fclose(f);
  return true;
}

bool Recorder::write_aiwc_jsonl(const std::string& path) const {
  // One JSON line per launch that carried aiwc::Features (DESIGN.md §16):
  // launch identity + geometry, the derived feature vector in finalize()'s
  // fixed order, the raw occupancy / reuse-distance / stride histograms,
  // the raw totals the cross-invariants are stated over, and the FNV-1a
  // digest of the raw data (the bit-identity fingerprint).
  const std::vector<const Event*> events = snapshot();
  bool any = false;
  for (const Event* ev : events) {
    if (ev->kind == Event::Kind::Launch && ev->launch->aiwc) {
      any = true;
      break;
    }
  }
  if (!any) return false;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    GPC_LOG(Error) << "prof: cannot write aiwc features to " << path;
    return false;
  }
  for (const Event* ev : events) {
    if (ev->kind != Event::Kind::Launch || !ev->launch->aiwc) continue;
    const LaunchRecord& l = *ev->launch;
    const aiwc::Features& a = *l.aiwc;
    std::fprintf(f,
                 "{\"kernel\":\"%s\",\"runtime\":\"%s\",\"device\":\"%s\","
                 "\"blocks\":%" PRIu64 ",\"tpb\":%d,\"warp_size\":%d,"
                 "\"warps\":%" PRIu64,
                 esc(l.kernel).c_str(), runtime_name(l.toolchain),
                 esc(l.device).c_str(), a.blocks, a.threads_per_block,
                 a.warp_size, a.warps);

    std::fprintf(f, ",\"features\":{");
    const std::vector<aiwc::Metric> metrics = aiwc::finalize(a);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      std::fprintf(f, "%s\"%s\":%.9g", i == 0 ? "" : ",",
                   metrics[i].name.c_str(), metrics[i].value);
    }

    std::fprintf(f, "},\"histograms\":{\"occupancy\":[");
    for (int i = 0; i < 65; ++i) {
      std::fprintf(f, "%s%" PRIu64, i == 0 ? "" : ",", a.occupancy_hist[i]);
    }
    std::fprintf(f, "],\"reuse\":[");
    for (int i = 0; i < aiwc::kReuseBuckets; ++i) {
      std::fprintf(f, "%s%" PRIu64, i == 0 ? "" : ",", a.reuse_hist[i]);
    }
    std::fprintf(f, "],\"stride\":[");
    for (int i = 0; i < 4; ++i) {
      std::fprintf(f, "%s%" PRIu64, i == 0 ? "" : ",", a.stride_class[i]);
    }

    std::uint64_t branch_exec = 0, branch_splits = 0;
    for (std::uint64_t v : a.branch_exec) branch_exec += v;
    for (std::uint64_t v : a.branch_split) branch_splits += v;
    std::fprintf(f,
                 "]},\"totals\":{\"issues\":%" PRIu64 ",\"lanes\":%" PRIu64
                 ",\"branch_exec\":%" PRIu64 ",\"branch_splits\":%" PRIu64
                 ",\"global_accesses\":%" PRIu64 ",\"shared_accesses\":%" PRIu64
                 ",\"global_instrs\":%" PRIu64 ",\"global_unique_words\":%zu"
                 ",\"shared_unique_words\":%zu,\"reuse_cold\":%" PRIu64 "}",
                 a.total_issues(), a.total_lanes(), branch_exec, branch_splits,
                 a.global_accesses, a.shared_accesses, a.global_instrs,
                 a.global_words.size(), a.shared_words.size(), a.reuse_cold);

    std::fprintf(f, ",\"digest\":\"%016" PRIx64 "\"", a.digest());
    if (l.tenant >= 0) std::fprintf(f, ",\"tenant\":%d", l.tenant);
    std::fprintf(f, "}\n");
  }
  std::fclose(f);
  return true;
}

}  // namespace gpc::prof
