// gpc::prof — CUPTI/nvprof-style runtime profiling for both runtime
// front-ends and the simulator underneath them.
//
// Why it exists: the paper's runtime-difference findings (most visibly
// OpenCL's higher kernel-launch latency dominating iterative apps like BFS,
// §IV-B.4) are claims about *per-launch timelines*, and a PR number alone
// cannot show them. The profiler records one event per host API call (alloc,
// memcpy, build/compile, enqueue) and one per kernel launch — the launch
// record carries the full simulated KernelTiming breakdown
// (launch/issue/dram/latency-hiding, occupancy + limiter) and the complete
// BlockStats counter set — and exports them as a chrome://tracing / Perfetto
// trace, a JSONL counter stream, and an nvprof-style end-of-run summary.
//
// Cost model (see DESIGN.md §11 and bench/extra_prof_overhead):
//  * Off (GPC_PROF unset): every instrumentation site is one relaxed atomic
//    load and a predictable branch. No allocation, no locking, no change to
//    any LaunchResult (locked by tests/prof_test.cpp's differential test).
//  * On: events append to a lock-free per-thread chunk list (single producer,
//    acquire/release published counter; chunks never move or free, so
//    readers keep stable pointers). The only cross-thread write on the hot
//    path is one CAS loop advancing the per-runtime synthetic device clock.
//
// Enablement: GPC_PROF=summary,trace,counters (or "all") in the environment,
// or programmatically via recorder().set_modes(). Exporters run automatically
// at process exit (summary to stderr; trace.json/counters.jsonl into the
// output directory when an output dir was set with set_output_dir(), e.g. by
// the bench binaries' --prof-out flag).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "aiwc/aiwc.h"
#include "arch/device_spec.h"
#include "sim/stats.h"
#include "sim/timing.h"

namespace gpc::prof {

/// What the recorder collects / exports. Bitmask; kOff disables everything.
enum Mode : unsigned {
  kOff = 0,
  kSummary = 1u << 0,   // end-of-run per-kernel/per-API summary table
  kTrace = 1u << 1,     // chrome://tracing / Perfetto trace_event JSON
  kCounters = 1u << 2,  // JSONL counter stream, one line per launch
  kAll = kSummary | kTrace | kCounters,
};

/// Parses a GPC_PROF-style comma-separated mode list ("summary,trace",
/// "all", "off"); unknown tokens are ignored with a warning.
unsigned parse_modes(std::string_view spec);

/// Which timeline an event belongs to. Host spans run on real wall-clock
/// time per OS thread; device tracks are synthetic timelines (one per
/// runtime) on which simulated kernel spans are laid out end to end, anchored
/// at their host enqueue time — which is exactly what makes the CUDA-vs-
/// OpenCL launch-overhead gap visually obvious in the trace viewer.
enum class Track : std::uint8_t { Host = 0, CudaDevice = 1, OclDevice = 2 };

/// Everything the profiler knows about one kernel launch.
struct LaunchRecord {
  std::string kernel;
  arch::Toolchain toolchain = arch::Toolchain::Cuda;
  std::string device;        // paper short name, e.g. "GTX480"
  sim::KernelTiming timing;  // launch/issue/dram/latency + occupancy+limiter
  sim::BlockStats counters;  // LaunchStats::total, bit-for-bit
  int blocks = 0;
  int threads_per_block = 0;
  /// Virtual-device tenant that issued the launch (gpc::virt), or -1 for an
  /// unvirtualized launch. Tenant launches land on per-tenant rows (tid =
  /// tenant + 1) of the runtime's device track in the Chrome trace.
  int tenant = -1;
  /// Dispatch/fusion provenance (LaunchStats): the sim::DispatchMode the
  /// launch ran under and the decode pass's static fusion census, exported
  /// per launch in counters.jsonl alongside the dynamic instruction mix
  /// (BlockStats::xkind_issues) and fused-execution counters.
  int dispatch = 0;
  std::uint32_t static_ops = 0;
  std::uint32_t static_fused_ops = 0;
  std::uint32_t static_fused_groups[4] = {};
  /// Raw workload-characterization features (gpc::aiwc) when GPC_AIWC /
  /// LaunchConfig::aiwc armed collection for this launch; null otherwise.
  /// Shared with the LaunchResult — the recorder never mutates it.
  std::shared_ptr<const aiwc::Features> aiwc;
};

/// Everything the profiler knows about one served job (gpc::serve): its
/// terminal classification, queue/service latency, and the batching/cache
/// provenance. Serve records feed counters.jsonl ("type":"serve" lines) and
/// the exit summary; they are deliberately NOT emitted into the Chrome
/// trace — an enqueue-to-complete span starts on the submitting thread and
/// ends on a worker, which would violate the per-thread span nesting the
/// trace schema guarantees.
struct ServeRecord {
  std::uint64_t job_id = 0;
  std::string cls;     // "OK" / "DEG" / "ABT" / "SHED"
  std::string kernel;  // empty for jobs shed before inspection
  std::string device;
  int shard = -1;
  int batch = 1;           // coalesced batch size the job executed in
  int queue_depth = 0;     // shard depth observed at dequeue
  bool cache_hit = false;  // compiled-kernel cache outcome
  std::int64_t queue_ns = 0;  // submit -> dequeue
  std::int64_t total_ns = 0;  // submit -> completion (the serve span)
};

struct Event {
  enum class Kind : std::uint8_t { Span, Launch, Instant, Serve };

  Kind kind = Kind::Span;
  Track track = Track::Host;
  const char* category = "";  // static string: "api", "xfer", "compile", ...
  std::string name;
  int tid = 0;                  // log::thread_id() of the emitting thread
  std::int64_t start_ns = 0;    // log::now_ns() clock (host) or device clock
  std::int64_t end_ns = 0;      // == start_ns for instants
  std::unique_ptr<LaunchRecord> launch;  // Kind::Launch only
  std::unique_ptr<ServeRecord> serve;    // Kind::Serve only
};

class Recorder {
 public:
  /// Process-wide recorder. Never destroyed (safe to use from atexit hooks).
  static Recorder& instance();

  unsigned modes() const { return modes_.load(std::memory_order_relaxed); }
  bool enabled() const { return modes() != kOff; }
  bool has_mode(Mode m) const { return (modes() & m) != 0; }
  /// Replaces the mode set. Enabling any mode arms the process-exit report.
  void set_modes(unsigned modes);

  /// Directory the process-exit exporters write trace.json / counters.jsonl
  /// into (created if missing). Setting it also enables kTrace|kCounters.
  void set_output_dir(std::string dir);
  const std::string& output_dir() const { return output_dir_; }

  // ---- Recording (all no-ops when disabled) ----
  void record_span(Track track, const char* category, std::string name,
                   std::int64_t start_ns, std::int64_t end_ns);
  void record_instant(const char* category, std::string name);
  /// Records one kernel launch: the host-side enqueue instant plus the
  /// launch-overhead + execution spans on the runtime's device track.
  /// `tenant` >= 0 tags the launch with its virtual-device tenant id
  /// (gpc::virt); -1 (the default) is an unvirtualized launch.
  void record_launch(arch::Toolchain tc, const std::string& device,
                     const std::string& kernel, const sim::KernelTiming& t,
                     const sim::LaunchStats& stats, int tenant = -1,
                     std::shared_ptr<const aiwc::Features> features = nullptr);
  /// Records one served job's completion (gpc::serve): lands in
  /// counters.jsonl and the exit summary, and feeds the "serve" latency
  /// histogram with the enqueue-to-complete duration.
  void record_serve(ServeRecord record);

  /// Span-latency percentiles from the lock-free log2-bucket histogram the
  /// recorder maintains per span category ("api" = launch API calls, "xfer"
  /// = memcpys, "compile" = builds, "serve" = gpc::serve enqueue-to-
  /// complete). Percentiles are bucket upper bounds (exact to a factor of
  /// 2), the serving-layer p50/p99 machinery.
  struct LatencyPercentiles {
    std::uint64_t count = 0;
    std::int64_t p50_ns = 0;
    std::int64_t p95_ns = 0;
    std::int64_t p99_ns = 0;
  };
  LatencyPercentiles span_latency(const char* category) const;

  // ---- Inspection / export ----
  /// Stable pointers to every event published since the last clear(), in
  /// per-thread order (cross-thread order is by start_ns, not guaranteed).
  std::vector<const Event*> snapshot() const;
  /// Logically drops all recorded events (buffers are retained; safe while
  /// other threads keep recording new events).
  void clear();

  bool write_chrome_trace(const std::string& path) const;
  bool write_counters_jsonl(const std::string& path) const;
  /// Per-launch AIWC feature stream (one JSON line per launch that carried
  /// aiwc::Features — see DESIGN.md §16 for the record format). Returns
  /// false (and writes nothing) when no recorded launch carried features.
  bool write_aiwc_jsonl(const std::string& path) const;
  /// nvprof-style per-runtime kernel table + host API call table.
  std::string summary() const;

  /// Runs the end-of-run report now (summary to `out`, trace/JSONL into the
  /// output dir per the active modes). Idempotent per recorded data.
  void report(std::FILE* out);

 private:
  Recorder();
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();
  void append(Event ev);

  std::atomic<unsigned> modes_{kOff};
  std::atomic<std::int64_t> device_clock_ns_[2]{};
  // Log2-bucket span-duration histograms, one per latency category (0 =
  // "api", 1 = "xfer", 2 = "compile", 3 = "serve"; bucket =
  // bit_width(duration_ns)). Relaxed fetch_add on record_span — lock-free,
  // never reset by clear() readers mid-flight (clear() stores 0s).
  std::atomic<std::uint64_t> lat_hist_[4][64]{};
  mutable std::mutex register_mutex_;   // buffer list + output dir only
  std::vector<ThreadBuffer*> buffers_;  // never shrinks; entries leak by design
  std::string output_dir_;
  std::atomic<bool> exit_hook_armed_{false};
};

inline Recorder& recorder() { return Recorder::instance(); }
inline bool enabled() { return recorder().enabled(); }

/// RAII host span: captures the start time at construction when profiling is
/// enabled, records on destruction. Cost when disabled: one relaxed load.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, std::string_view name) {
    if (recorder().enabled()) begin(category, name);
  }
  ~ScopedSpan() {
    if (armed_) end();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(const char* category, std::string_view name);
  void end();

  bool armed_ = false;
  const char* category_ = "";
  std::string name_;
  std::int64_t start_ns_ = 0;
};

}  // namespace gpc::prof
