#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "prof/prof.h"
#include "virt/virt.h"

namespace gpc::serve {

namespace {
// Backoff-jitter salt for the serve-level build retry ladder (distinct from
// the harness session salts so jitter streams do not alias).
constexpr std::uint64_t kSaltServeBuild = 0x44;
}  // namespace

const char* class_name(JobClass c) {
  switch (c) {
    case JobClass::Ok: return "OK";
    case JobClass::Deg: return "DEG";
    case JobClass::Abt: return "ABT";
    case JobClass::Shed: return "SHED";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Config

ServeConfig parse_serve_config(const std::string& spec) {
  ServeConfig cfg;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      throw InvalidArgument("GPC_SERVE: expected key=value, got '" +
                            std::string(kv) + "'");
    }
    const std::string_view key = kv.substr(0, eq);
    const std::string val(kv.substr(eq + 1));
    char* end = nullptr;
    auto parse_int = [&](long lo) {
      const long v = std::strtol(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0' || v < lo) {
        throw InvalidArgument("GPC_SERVE: bad value '" + val + "' for '" +
                              std::string(key) + "'");
      }
      return static_cast<int>(v);
    };
    auto parse_ms = [&] {
      const double v = std::strtod(val.c_str(), &end);
      if (end == val.c_str() || *end != '\0' || v < 0.0) {
        throw InvalidArgument("GPC_SERVE: bad value '" + val + "' for '" +
                              std::string(key) + "'");
      }
      return v;
    };
    if (key == "workers") {
      cfg.workers = parse_int(0);
    } else if (key == "shards") {
      cfg.shards = parse_int(1);
    } else if (key == "queue_cap") {
      cfg.queue_cap = parse_int(1);
    } else if (key == "deadline_ms") {
      cfg.deadline_ms = parse_ms();
    } else if (key == "breaker") {
      cfg.breaker = parse_int(0);
    } else if (key == "breaker_cooldown_ms") {
      cfg.breaker_cooldown_ms = parse_ms();
    } else if (key == "batch") {
      cfg.batch = parse_int(1);
    } else if (key == "steps_per_ms") {
      const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
      if (end == val.c_str() || *end != '\0' || v == 0) {
        throw InvalidArgument("GPC_SERVE: bad value '" + val +
                              "' for 'steps_per_ms'");
      }
      cfg.steps_per_ms = v;
    } else {
      throw InvalidArgument(
          "GPC_SERVE: unknown option '" + std::string(key) +
          "' (expected workers|shards|queue_cap|deadline_ms|breaker|"
          "breaker_cooldown_ms|batch|steps_per_ms)");
    }
  }
  return cfg;
}

ServeConfig serve_config_from_env() {
  if (const char* e = std::getenv("GPC_SERVE")) return parse_serve_config(e);
  return ServeConfig{};
}

// ---------------------------------------------------------------------------
// Internal structures

struct JobHandle::State {
  std::mutex m;
  std::condition_variable cv;
  std::atomic<bool> claimed{false};  // exactly-once completion latch
  std::atomic<bool> done{false};
  Completion completion;
};

bool JobHandle::done() const {
  GPC_REQUIRE(state_ != nullptr, "empty JobHandle");
  return state_->done.load(std::memory_order_acquire);
}

const Completion& JobHandle::wait() const {
  GPC_REQUIRE(state_ != nullptr, "empty JobHandle");
  std::unique_lock<std::mutex> lk(state_->m);
  state_->cv.wait(lk, [&] { return state_->done.load(std::memory_order_acquire); });
  return state_->completion;
}

struct Server::Job {
  JobSpec spec;
  std::shared_ptr<JobHandle::State> state;
  std::uint64_t id = 0;
  int shard = -1;
  int queue_depth = 0;  // shard depth observed at dequeue (incl. this job)
  std::int64_t submit_ns = 0;
  std::int64_t start_ns = 0;
  bool probe = false;          // HalfOpen breaker probe
  Breaker* breaker = nullptr;  // stable (owned by breakers_)
};

struct Server::Shard {
  std::mutex m;
  std::deque<Job> q;
};

struct Server::Breaker {
  enum class St : std::uint8_t { Closed, Open, HalfOpen };
  std::string key;
  St st = St::Closed;
  int consecutive = 0;          // consecutive DeviceFault completions
  std::int64_t open_until_ns = 0;
  bool probing = false;         // HalfOpen probe in flight
};

struct Server::WorkerState {
  // One session per (device, toolchain, tenant), reused across jobs so the
  // simulated context/queue setup cost amortises like a real driver's.
  std::unordered_map<std::string, std::unique_ptr<harness::DeviceSession>>
      sessions;
};

// ---------------------------------------------------------------------------
// Server lifecycle

Server::Server(ServeConfig cfg) : cfg_(cfg), policy_(resil::active_policy()) {
  GPC_REQUIRE(cfg_.shards >= 1 && cfg_.queue_cap >= 1 && cfg_.batch >= 1,
              "invalid ServeConfig");
  int workers = cfg_.workers;
  if (workers <= 0) {
    workers = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  cfg_.workers = workers;
  shards_.reserve(cfg_.shards);
  for (int i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Server::~Server() { shutdown(); }

void Server::set_policy(const resil::Policy& p) {
  std::lock_guard<std::mutex> lk(breaker_mutex_);
  policy_ = p;
}

void Server::attach_virt(virt::VirtualDeviceManager* mgr) { virt_mgr_ = mgr; }

void Server::pause() { paused_.store(true, std::memory_order_release); }

void Server::resume() {
  paused_.store(false, std::memory_order_release);
  idle_cv_.notify_all();
}

void Server::drain() {
  std::unique_lock<std::mutex> lk(drain_mutex_);
  drain_cv_.wait(lk, [&] {
    return finished_.load(std::memory_order_acquire) ==
           accepted_.load(std::memory_order_acquire);
  });
}

void Server::shutdown() {
  accepting_.store(false, std::memory_order_release);
  resume();  // a paused server must still drain its queue
  drain();
  stop_.store(true, std::memory_order_release);
  idle_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Exactly-once backstop: a submit that passed the accepting_ fast check
  // concurrently with this shutdown may have enqueued after drain()
  // returned. Sweep every shard so no accepted job is ever orphaned.
  for (const auto& sp : shards_) {
    std::lock_guard<std::mutex> lk(sp->m);
    while (!sp->q.empty()) {
      Job job = std::move(sp->q.front());
      sp->q.pop_front();
      shed_job(job, "server shut down before execution");
      finished_.fetch_add(1, std::memory_order_release);
    }
  }
}

Server::Stats Server::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = class_counts_[0].load(std::memory_order_relaxed);
  s.deg = class_counts_[1].load(std::memory_order_relaxed);
  s.abt = class_counts_[2].load(std::memory_order_relaxed);
  s.shed = class_counts_[3].load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_jobs = batched_jobs_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_trips_.load(std::memory_order_relaxed);
  const CompiledKernelCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  return s;
}

// ---------------------------------------------------------------------------
// Submission / admission

JobHandle Server::submit(JobSpec spec) {
  GPC_REQUIRE(spec.kernel != nullptr, "serve: job has no kernel");
  GPC_REQUIRE(spec.device != nullptr, "serve: job has no device");
  GPC_REQUIRE(spec.grid.count() > 0 && spec.block.count() > 0,
              "serve: empty grid or block");
  GPC_REQUIRE(spec.kernel->textures.empty(),
              "serve: texture kernels are not servable (bind_texture is a "
              "session-scoped side channel)");
  for (const JobArg& a : spec.args) {
    GPC_REQUIRE(!a.is_buffer || !a.bytes.empty(),
                "serve: empty buffer argument");
  }
  if (spec.tenant >= 0) {
    GPC_REQUIRE(virt_mgr_ != nullptr,
                "serve: tenant job without attach_virt()");
    GPC_REQUIRE(spec.tenant < virt_mgr_->tenants(),
                "serve: tenant id out of range");
  }

  Job job;
  job.spec = std::move(spec);
  job.state = std::make_shared<JobHandle::State>();
  job.id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  job.submit_ns = log::now_ns();
  JobHandle h;
  h.state_ = job.state;
  submitted_.fetch_add(1, std::memory_order_relaxed);

  if (!accepting_.load(std::memory_order_acquire)) {
    shed_job(job, "server is shut down");
    return h;
  }

  const int nshards = static_cast<int>(shards_.size());
  const std::uint64_t start = rr_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < nshards; ++i) {
    const int idx = static_cast<int>((start + i) % nshards);
    Shard& s = *shards_[idx];
    std::unique_lock<std::mutex> lk(s.m);
    // Re-checked under the shard lock: a shutdown that swept this shard
    // cannot race a late push past it (the sweep also locks every shard
    // after accepting_ is cleared).
    if (!accepting_.load(std::memory_order_acquire)) break;
    if (static_cast<int>(s.q.size()) >= cfg_.queue_cap) continue;
    job.shard = idx;
    accepted_.fetch_add(1, std::memory_order_release);
    const std::uint64_t depth = s.q.size() + 1;
    s.q.push_back(std::move(job));
    lk.unlock();
    std::uint64_t prev = max_queue_depth_.load(std::memory_order_relaxed);
    while (prev < depth && !max_queue_depth_.compare_exchange_weak(
                               prev, depth, std::memory_order_relaxed)) {
    }
    idle_cv_.notify_one();
    return h;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    shed_job(job, "server is shut down");
    return h;
  }
  // Bounded admission: reject-with-status, never block-forever.
  shed_job(job, "admission rejected: all " + std::to_string(nshards) +
                    " shard queues at capacity " +
                    std::to_string(cfg_.queue_cap));
  return h;
}

void Server::shed_job(Job& job, const std::string& reason) {
  Completion c;
  c.cls = JobClass::Shed;
  c.status = class_name(JobClass::Shed);
  c.detail = reason;
  resil::counters().shed.fetch_add(1, std::memory_order_relaxed);
  complete_job(job, std::move(c));
}

void Server::complete_job(Job& job, Completion&& c) {
  c.job_id = job.id;
  c.submit_ns = job.submit_ns;
  c.start_ns = job.start_ns != 0 ? job.start_ns : job.submit_ns;
  c.complete_ns = log::now_ns();

  auto st = job.state;
  GPC_CHECK(!st->claimed.exchange(true, std::memory_order_acq_rel),
            "serve: job completed twice (exactly-once violation)");
  class_counts_[static_cast<int>(c.cls)].fetch_add(1,
                                                   std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  if (prof::enabled()) {
    prof::ServeRecord r;
    r.job_id = c.job_id;
    r.cls = c.status;
    r.kernel = job.spec.kernel ? job.spec.kernel->name : std::string();
    r.device = job.spec.device ? job.spec.device->short_name : std::string();
    r.shard = job.shard;
    r.batch = c.batch;
    r.queue_depth = job.queue_depth;
    r.cache_hit = c.cache_hit;
    r.queue_ns = c.start_ns - c.submit_ns;
    r.total_ns = c.complete_ns - c.submit_ns;
    prof::recorder().record_serve(std::move(r));
  }

  {
    std::lock_guard<std::mutex> lk(st->m);
    st->completion = std::move(c);
    st->done.store(true, std::memory_order_release);
  }
  st->cv.notify_all();
  if (job.spec.on_complete) job.spec.on_complete(st->completion);
}

// ---------------------------------------------------------------------------
// Workers

namespace {
std::string session_key(const JobSpec& spec) {
  return spec.device->short_name + "|" +
         (spec.toolchain == arch::Toolchain::Cuda ? "cuda" : "ocl") + "|t" +
         std::to_string(spec.tenant);
}
}  // namespace

std::vector<Server::Job> Server::claim_batch(int worker_id) {
  const int nshards = static_cast<int>(shards_.size());
  for (int i = 0; i < nshards; ++i) {
    Shard& s = *shards_[(worker_id + i) % nshards];
    std::lock_guard<std::mutex> lk(s.m);
    if (s.q.empty()) continue;
    const int depth = static_cast<int>(s.q.size());
    const std::int64_t now = log::now_ns();
    std::vector<Job> batch;
    batch.push_back(std::move(s.q.front()));
    s.q.pop_front();
    const std::string key = session_key(batch.front().spec);
    // Coalesce a contiguous run of same-(device, toolchain, tenant) jobs so
    // they execute back to back on one session without re-queue round trips.
    while (static_cast<int>(batch.size()) < cfg_.batch && !s.q.empty() &&
           session_key(s.q.front().spec) == key) {
      batch.push_back(std::move(s.q.front()));
      s.q.pop_front();
    }
    for (Job& j : batch) {
      j.start_ns = now;
      j.queue_depth = depth;
    }
    return batch;
  }
  return {};
}

void Server::worker_main(int worker_id) {
  WorkerState ws;
  while (!stop_.load(std::memory_order_acquire)) {
    if (paused_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lk(idle_mutex_);
      idle_cv_.wait_for(lk, std::chrono::milliseconds(1));
      continue;
    }
    std::vector<Job> batch = claim_batch(worker_id);
    if (batch.empty()) {
      std::unique_lock<std::mutex> lk(idle_mutex_);
      if (stop_.load(std::memory_order_acquire)) return;
      idle_cv_.wait_for(lk, std::chrono::milliseconds(1));
      continue;
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_jobs_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (Job& job : batch) {
      execute_job(ws, job, static_cast<int>(batch.size()));
      finished_.fetch_add(1, std::memory_order_release);
    }
    // Lock-then-notify so a drain() that just evaluated its predicate
    // cannot miss this batch's completions.
    {
      std::lock_guard<std::mutex> lk(drain_mutex_);
    }
    drain_cv_.notify_all();
  }
}

harness::DeviceSession& Server::session_for(WorkerState& ws,
                                            const JobSpec& spec) {
  const std::string key = session_key(spec);
  auto it = ws.sessions.find(key);
  if (it == ws.sessions.end()) {
    std::unique_ptr<harness::DeviceSession> sess;
    if (spec.tenant >= 0) {
      sess = std::make_unique<harness::TenantSession>(
          *spec.device, spec.toolchain, virt_mgr_->tenant(spec.tenant));
    } else {
      sess = std::make_unique<harness::DeviceSession>(*spec.device,
                                                      spec.toolchain);
    }
    it = ws.sessions.emplace(key, std::move(sess)).first;
  }
  return *it->second;
}

bool Server::breaker_admit(Job& job) {
  if (cfg_.breaker <= 0) return true;
  const std::string key =
      job.spec.device->short_name + "|" +
      (job.spec.toolchain == arch::Toolchain::Cuda ? "cuda" : "ocl");
  bool shed = false;
  std::string reason;
  {
    std::lock_guard<std::mutex> lk(breaker_mutex_);
    Breaker* b = nullptr;
    for (const auto& p : breakers_) {
      if (p->key == key) {
        b = p.get();
        break;
      }
    }
    if (b == nullptr) {
      breakers_.push_back(std::make_unique<Breaker>());
      b = breakers_.back().get();
      b->key = key;
    }
    const std::int64_t now = log::now_ns();
    switch (b->st) {
      case Breaker::St::Closed:
        break;
      case Breaker::St::Open:
        if (now < b->open_until_ns) {
          shed = true;
          reason = "circuit breaker open for " + key;
        } else {
          // Cooldown elapsed: admit this job as the single HalfOpen probe.
          b->st = Breaker::St::HalfOpen;
          b->probing = true;
          job.probe = true;
        }
        break;
      case Breaker::St::HalfOpen:
        if (b->probing) {
          shed = true;
          reason = "circuit breaker half-open (probe in flight) for " + key;
        } else {
          b->probing = true;
          job.probe = true;
        }
        break;
    }
    if (!shed) job.breaker = b;
  }
  if (shed) {
    shed_job(job, reason);
    return false;
  }
  return true;
}

void Server::breaker_note_result(const Job& job, bool success,
                                 bool device_fault) {
  if (cfg_.breaker <= 0 || job.breaker == nullptr) return;
  bool tripped = false;
  {
    std::lock_guard<std::mutex> lk(breaker_mutex_);
    Breaker& b = *job.breaker;
    if (success) {
      b.consecutive = 0;
      b.st = Breaker::St::Closed;
      b.probing = false;
    } else if (device_fault) {
      ++b.consecutive;
      if (b.st == Breaker::St::HalfOpen || b.consecutive >= cfg_.breaker) {
        b.st = Breaker::St::Open;
        b.open_until_ns =
            log::now_ns() +
            static_cast<std::int64_t>(cfg_.breaker_cooldown_ms * 1e6);
        b.probing = false;
        b.consecutive = 0;
        tripped = true;
      }
    } else if (job.probe) {
      // A probe that failed for a non-DeviceFault reason (e.g. quota)
      // releases the probe slot without deciding the breaker either way.
      b.probing = false;
    }
  }
  if (tripped) {
    breaker_trips_.fetch_add(1, std::memory_order_relaxed);
    resil::counters().breaker_trips.fetch_add(1, std::memory_order_relaxed);
    if (prof::enabled()) {
      prof::recorder().record_instant("serve", "breaker_trip");
    }
    GPC_LOG(Warn) << "serve: circuit breaker tripped for "
                  << job.breaker->key << " (cooldown "
                  << cfg_.breaker_cooldown_ms << " ms)";
  }
}

void Server::execute_job(WorkerState& ws, Job& job, int batch_size) {
  // Deadline admission: an expired job is shed without touching the device.
  const double deadline_ms =
      job.spec.deadline_ms < 0 ? cfg_.deadline_ms : job.spec.deadline_ms;
  if (deadline_ms > 0 &&
      log::now_ns() - job.submit_ns >=
          static_cast<std::int64_t>(deadline_ms * 1e6)) {
    shed_job(job, "deadline (" + std::to_string(deadline_ms) +
                      " ms) expired before execution");
    return;
  }
  if (!breaker_admit(job)) return;

  // The job's private fault plan governs every instrumented site below for
  // the duration of this job (see header comment: determinism contract).
  resil::ThreadPlanScope plan_scope(job.spec.fault_plan.get());

  resil::Policy pol;
  {
    std::lock_guard<std::mutex> lk(breaker_mutex_);
    pol = policy_;
  }

  Completion c;
  c.batch = batch_size;
  bool success = false;
  bool device_fault = false;
  try {
    harness::DeviceSession& sess = session_for(ws, job.spec);
    sess.set_policy(pol);
    sess.set_allow_degraded_exec(pol.degrade);
    sess.reset_memory();
    sess.set_step_budget(
        deadline_ms > 0
            ? std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(deadline_ms *
                                                static_cast<double>(
                                                    cfg_.steps_per_ms)))
            : 0);
    const int retries_before = sess.retries();
    const int deg_before = sess.degraded_events();
    int serve_retries = 0;

    // Build through the content-addressed cache. The job's Build fault site
    // is sampled here once per attempt — BEFORE the cache lookup — so a
    // job's build-fault sequence is deterministic whether or not another
    // job already compiled the kernel (cache state is scheduling-dependent;
    // the fault stream must not be). The actual compile runs with the
    // thread plan suspended so the site is not sampled twice.
    const kernel::KernelDef& def = *job.spec.kernel;
    compiler::CompileOptions opts;
    CompiledKernelCache::KernelPtr ck;
    for (int attempt = 0;; ++attempt) {
      try {
        if (resil::armed()) {
          if (auto inj = resil::sample(resil::Site::Build, def.name)) {
            throw TransientFault(inj->detail);
          }
        }
        ck = cache_.get_or_compile(def, job.spec.toolchain,
                                   job.spec.device->short_name, opts,
                                   [&] {
                                     resil::ThreadPlanScope off(nullptr);
                                     return sess.compile(def, opts);
                                   },
                                   &c.cache_hit);
        break;
      } catch (const TransientFault&) {
        if (attempt >= pol.max_retries) throw;
        ++serve_retries;
        resil::counters().retries.fetch_add(1, std::memory_order_relaxed);
        resil::backoff_sleep(pol, attempt, kSaltServeBuild);
      }
    }

    // Allocate + upload buffer args. A quota/resource bounce resets this
    // job's allocations and retries once from scratch (graceful degradation
    // under gpc::virt quota pressure); a second bounce aborts the job.
    std::vector<sim::KernelArg> args;
    std::vector<std::pair<std::uint64_t, const JobArg*>> readbacks;
    for (int attempt = 0;; ++attempt) {
      try {
        args.clear();
        readbacks.clear();
        args.reserve(job.spec.args.size());
        for (const JobArg& a : job.spec.args) {
          if (!a.is_buffer) {
            args.push_back(a.scalar);
            continue;
          }
          const std::uint64_t addr = sess.alloc(a.bytes.size());
          sess.write(addr, a.bytes.data(), a.bytes.size());
          args.push_back(sim::KernelArg::ptr(addr));
          if (a.readback) readbacks.emplace_back(addr, &a);
        }
        break;
      } catch (const OutOfResources&) {
        if (attempt >= 1) throw;
        sess.reset_memory();
      }
    }

    // Launch through the full PR 5 retry / split / degrade ladder.
    c.result = sess.launch(*ck, job.spec.grid, job.spec.block, args,
                           job.spec.dynamic_shared_bytes);

    c.outputs.reserve(readbacks.size());
    for (const auto& [addr, arg] : readbacks) {
      std::vector<unsigned char> out(arg->bytes.size());
      sess.read(out.data(), addr, out.size());
      c.outputs.push_back(std::move(out));
    }

    c.retries = sess.retries() - retries_before + serve_retries;
    c.degraded_events = sess.degraded_events() - deg_before;
    c.cls = c.degraded_events > 0 ? JobClass::Deg : JobClass::Ok;
    c.status = class_name(c.cls);
    success = true;
  } catch (const DeviceFault& e) {
    device_fault = true;
    c.cls = JobClass::Abt;
    c.status = class_name(c.cls);
    c.detail = e.what();
  } catch (const std::exception& e) {
    c.cls = JobClass::Abt;
    c.status = class_name(c.cls);
    c.detail = e.what();
  }

  breaker_note_result(job, success, device_fault);
  complete_job(job, std::move(c));
}

}  // namespace gpc::serve
