// Content-addressed compiled-kernel cache for the serving layer.
//
// Key = (structural AST hash, front-end toolchain, device, compile options):
// two jobs that submit structurally identical KernelDefs through the same
// front-end for the same device share one CompiledKernel — the second
// submission never recompiles (locked by tests/serve_test.cpp). This is the
// cache Demidov et al. motivate for runtime-compiled kernels: under a
// serving workload the clBuildProgram/nvcc cost is paid once per distinct
// kernel, not once per job, which is what keeps the >1M launches/min target
// reachable on small kernels.
//
// Sharing is safe because a CompiledKernel is immutable after compilation
// and its lazily-filled sim decode cache (compiler::KernelCache) is
// mutex-guarded and shared by design.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/device_spec.h"
#include "compiler/compiled_kernel.h"
#include "kernel/ast.h"

namespace gpc::serve {

/// Structural FNV-1a hash of a KernelDef: every node kind, operator, type,
/// literal, pragma and declaration enters the stream, so any change that
/// could alter generated code changes the hash. Names of params/vars/arrays
/// are positional in the AST and do not affect codegen, but the kernel's own
/// name does (it names the compiled artefact) and is included.
std::uint64_t ast_hash(const kernel::KernelDef& def);

/// Thread-safe content-addressed cache. In-flight compiles are deduplicated:
/// a second thread requesting a key that is currently compiling blocks on
/// the first thread's result (counted as a hit — no recompile happens).
class CompiledKernelCache {
 public:
  using KernelPtr = std::shared_ptr<const compiler::CompiledKernel>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Returns the cached kernel for (def, tc, device, opts), compiling it
  /// with `compile_fn` on first use. `compile_fn` runs outside the cache
  /// lock; if it throws, the key is vacated (a later call retries) and the
  /// exception propagates to every waiter.
  KernelPtr get_or_compile(
      const kernel::KernelDef& def, arch::Toolchain tc,
      const std::string& device, const compiler::CompileOptions& opts,
      const std::function<compiler::CompiledKernel()>& compile_fn,
      bool* was_hit = nullptr);

  Stats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<KernelPtr>> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace gpc::serve
