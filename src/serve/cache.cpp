#include "serve/cache.h"

#include <utility>

namespace gpc::serve {

namespace {

/// FNV-1a 64-bit, fed field-by-field. Each composite node hashes a kind tag
/// first, so (Binary Add) and (Unary Neg) can never collide by field reuse.
struct Fnv {
  std::uint64_t h = 0xCBF29CE484222325ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001B3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { bytes(&v, sizeof(v)); }
  void u8(std::uint8_t v) { bytes(&v, sizeof(v)); }
  void i32(std::int32_t v) { bytes(&v, sizeof(v)); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

void hash_expr(Fnv& f, const kernel::ExprP& e) {
  if (!e) {
    f.u8(0xFF);  // absent-child marker, distinct from any ExprKind
    return;
  }
  f.u8(static_cast<std::uint8_t>(e->kind));
  f.u8(static_cast<std::uint8_t>(e->type));
  f.i64(e->ival);
  f.f64(e->fval);
  f.i32(e->param);
  f.i32(e->var);
  f.i32(e->array);
  f.i32(e->tex_unit);
  f.u8(static_cast<std::uint8_t>(e->builtin));
  f.u8(static_cast<std::uint8_t>(e->bop));
  f.u8(static_cast<std::uint8_t>(e->uop));
  hash_expr(f, e->a);
  hash_expr(f, e->b);
  hash_expr(f, e->c);
}

void hash_stmts(Fnv& f, const std::vector<kernel::Stmt>& body) {
  f.u64(body.size());
  for (const kernel::Stmt& s : body) {
    f.u8(static_cast<std::uint8_t>(s.kind));
    f.i32(s.var);
    f.i32(s.ptr_param);
    f.i32(s.array);
    hash_expr(f, s.index);
    hash_expr(f, s.value);
    f.i32(s.loop_var);
    hash_expr(f, s.lo);
    hash_expr(f, s.hi);
    hash_expr(f, s.step);
    f.i32(s.unroll.cuda_factor);
    f.i32(s.unroll.opencl_factor);
    hash_expr(f, s.cond);
    hash_stmts(f, s.body);
    hash_stmts(f, s.else_body);
  }
}

}  // namespace

std::uint64_t ast_hash(const kernel::KernelDef& def) {
  Fnv f;
  f.str(def.name);
  f.u64(def.params.size());
  for (const kernel::ParamDecl& p : def.params) {
    f.u8(static_cast<std::uint8_t>(p.type));
    f.u8(p.is_pointer ? 1 : 0);
    f.u8(static_cast<std::uint8_t>(p.pointee));
  }
  f.u64(def.vars.size());
  for (const kernel::VarDecl& v : def.vars) {
    f.u8(static_cast<std::uint8_t>(v.type));
  }
  f.u64(def.shared_arrays.size());
  for (const kernel::SharedArrayDecl& a : def.shared_arrays) {
    f.u8(static_cast<std::uint8_t>(a.elem));
    f.i32(a.count);
  }
  f.u64(def.const_arrays.size());
  for (const kernel::ConstArrayDecl& a : def.const_arrays) {
    f.u8(static_cast<std::uint8_t>(a.elem));
    f.i32(a.count);
    f.u64(a.data.size());
    f.bytes(a.data.data(), a.data.size());
  }
  f.u64(def.private_arrays.size());
  for (const kernel::PrivateArrayDecl& a : def.private_arrays) {
    f.u8(static_cast<std::uint8_t>(a.elem));
    f.i32(a.count);
  }
  f.u64(def.textures.size());
  for (const kernel::TextureDecl& t : def.textures) {
    f.u8(static_cast<std::uint8_t>(t.elem));
  }
  hash_stmts(f, def.body);
  return f.h;
}

CompiledKernelCache::KernelPtr CompiledKernelCache::get_or_compile(
    const kernel::KernelDef& def, arch::Toolchain tc,
    const std::string& device, const compiler::CompileOptions& opts,
    const std::function<compiler::CompiledKernel()>& compile_fn,
    bool* was_hit) {
  const std::string key =
      std::to_string(ast_hash(def)) + "|" +
      (tc == arch::Toolchain::Cuda ? "cuda" : "ocl") + "|" + device + "|" +
      (opts.enable_textures ? "tex" : "notex");

  std::shared_future<KernelPtr> fut;
  std::promise<KernelPtr> prom;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      fut = it->second;
    } else {
      fut = prom.get_future().share();
      map_.emplace(key, fut);
      owner = true;
    }
  }

  if (!owner) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return fut.get();  // blocks on an in-flight compile; rethrows its error
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  if (was_hit != nullptr) *was_hit = false;
  try {
    KernelPtr p = std::make_shared<compiler::CompiledKernel>(compile_fn());
    prom.set_value(p);
    return p;
  } catch (...) {
    // Vacate the key so a later submission retries the compile; waiters on
    // THIS attempt share this attempt's failure.
    prom.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(key);
    throw;
  }
}

}  // namespace gpc::serve
