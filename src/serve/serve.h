// gpc::serve — a fault-hardened asynchronous kernel-launch server.
//
// The paper's launch-latency findings (CUDA ≈7 µs vs OpenCL ≈17 µs per
// enqueue, §IV-B.4) become a *system-level* metric here: clients submit
// (kernel, args, grid) jobs, worker threads compile through a
// content-addressed CompiledKernel cache (serve/cache.h), coalesce
// same-device jobs into batches, launch through the harness::DeviceSession
// retry/degrade ladder, and deliver the full LaunchResult via an async
// completion event. bench/extra_serve_latency turns the enqueue-to-complete
// p50/p99 under load into a regression-guarded number.
//
// Robustness model (DESIGN.md §17):
//  * Bounded admission: each shard queue holds at most queue_cap jobs; a
//    submit that finds every shard full is rejected immediately with a SHED
//    completion — the server never blocks a client and never queues
//    unboundedly.
//  * Deadlines: a job deadline (per job or the config default) is checked at
//    dequeue — an expired job is SHED without touching the device — and
//    propagated into the PR 2/PR 5 step-budget watchdog as
//    deadline_ms * steps_per_ms, so an over-deadline kernel terminates as a
//    classified DeviceFault, not a wall-clock stall.
//  * Circuit breaker, per (device, toolchain): `breaker` consecutive jobs
//    ending in DeviceFault trip it Open; while Open (cooldown_ms) jobs for
//    that device are SHED. After the cooldown one probe job is admitted
//    (HalfOpen) through the full retry/degrade ladder; success closes the
//    breaker, failure re-opens it.
//  * Exactly-once completion: every accepted job is owned by exactly one
//    worker, and the completion latch (an atomic exchange) makes a second
//    completion of the same job a hard GPC_CHECK failure. Jobs still queued
//    at shutdown are drained, not dropped — no lost, duplicated or orphaned
//    jobs. Proven under chaos by bench/extra_serve_soak.
//  * Deterministic chaos: a job may carry its own resil::FaultPlan; the
//    executing worker installs it as the thread-local plan
//    (resil::set_thread_plan) for the duration of the job, so the five
//    GPC_FAULT sites sample the job's private plan in the job's own serial
//    call order — the injected fault sequence is a pure function of the
//    job's seeds, independent of how jobs interleave across workers. This
//    is the same determinism contract gpc::virt established for tenants.
//
// Enablement: construct a Server explicitly, or let it read GPC_SERVE:
//
//   GPC_SERVE="workers=4,shards=2,queue_cap=256,deadline_ms=100,breaker=5"
//
// (all keys optional; unknown keys or malformed values are rejected with
// InvalidArgument — a serving config typo must not silently serve).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/device_spec.h"
#include "harness/session.h"
#include "kernel/ast.h"
#include "resil/fault.h"
#include "resil/policy.h"
#include "serve/cache.h"
#include "sim/launch.h"

namespace gpc::virt {
class VirtualDeviceManager;
}  // namespace gpc::virt

namespace gpc::serve {

struct ServeConfig {
  int workers = 0;        // worker threads; 0 = hardware concurrency
  int shards = 1;         // submission queue shards
  int queue_cap = 1024;   // bounded admission: max queued jobs PER shard
  double deadline_ms = 0;  // default job deadline; 0 = none
  int breaker = 0;        // consecutive-DeviceFault trip threshold; 0 = off
  double breaker_cooldown_ms = 10.0;  // Open -> HalfOpen delay
  int batch = 8;          // max same-device jobs coalesced per dequeue
  // Deadline -> watchdog conversion: simulated interpreter steps budgeted
  // per millisecond of deadline (the budget uses the full deadline, not the
  // wall-clock remainder, so injected-fault replay stays deterministic).
  std::uint64_t steps_per_ms = 1'000'000;
};

/// Parses a GPC_SERVE-style comma-separated key=value list. Throws
/// InvalidArgument on unknown keys, malformed or out-of-range values.
ServeConfig parse_serve_config(const std::string& spec);
/// GPC_SERVE from the environment, or defaults when unset.
ServeConfig serve_config_from_env();

/// Terminal classification of one job, mirroring the benchmark outcome
/// protocol (OK/DEG/ABT) plus the serving-layer reject class.
enum class JobClass : std::uint8_t { Ok = 0, Deg, Abt, Shed };
const char* class_name(JobClass c);

/// One kernel argument as submitted: either a scalar passed through, or a
/// device buffer the server allocates and uploads before launch (and reads
/// back into Completion::outputs when `readback` is set).
struct JobArg {
  sim::KernelArg scalar;
  std::vector<unsigned char> bytes;  // buffer content (is_buffer)
  bool is_buffer = false;
  bool readback = false;

  static JobArg scalar_arg(sim::KernelArg a) {
    JobArg j;
    j.scalar = a;
    return j;
  }
  static JobArg buffer(std::vector<unsigned char> data, bool readback_out) {
    JobArg j;
    j.bytes = std::move(data);
    j.is_buffer = true;
    j.readback = readback_out;
    return j;
  }
};

struct Completion;

/// A self-contained job: everything a worker needs to compile, upload,
/// launch and read back without touching client state.
struct JobSpec {
  std::shared_ptr<const kernel::KernelDef> kernel;
  const arch::DeviceSpec* device = nullptr;
  arch::Toolchain toolchain = arch::Toolchain::Cuda;
  sim::Dim3 grid{1, 1, 1};
  sim::Dim3 block{1, 1, 1};
  int dynamic_shared_bytes = 0;
  std::vector<JobArg> args;
  /// Per-job deadline in milliseconds; -1 = the config default, 0 = none.
  double deadline_ms = -1;
  /// gpc::virt tenant id (requires attach_virt on the server); -1 = none.
  int tenant = -1;
  /// Per-job deterministic fault plan (see header comment); null = none.
  std::shared_ptr<resil::FaultPlan> fault_plan;
  /// Async completion event, invoked exactly once on the completing thread
  /// (a worker, or the submitting thread for submit-time sheds).
  std::function<void(const Completion&)> on_complete;
};

/// The completion event: classification plus the full launch result.
struct Completion {
  std::uint64_t job_id = 0;
  JobClass cls = JobClass::Ok;
  std::string status;  // "OK" / "DEG" / "ABT" / "SHED"
  std::string detail;  // error / shed reason (empty for OK)
  sim::LaunchResult result;  // valid for Ok and Deg
  std::vector<std::vector<unsigned char>> outputs;  // readback args, in order
  int retries = 0;
  int degraded_events = 0;
  bool cache_hit = false;
  int batch = 1;  // size of the coalesced batch this job executed in
  std::int64_t submit_ns = 0;
  std::int64_t start_ns = 0;     // dequeue time (== submit_ns for sheds)
  std::int64_t complete_ns = 0;
};

/// Client-side handle. wait() blocks until the job's single completion.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const;
  const Completion& wait() const;

 private:
  friend class Server;
  struct State;
  std::shared_ptr<State> state_;
};

class Server {
 public:
  explicit Server(ServeConfig cfg = serve_config_from_env());
  ~Server();  // drains accepted jobs, then stops the workers

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServeConfig& config() const { return cfg_; }

  /// Resilience policy applied to every worker session (defaults to
  /// resil::active_policy() at construction).
  void set_policy(const resil::Policy& p);

  /// Routes tenant jobs (JobSpec::tenant >= 0) through the manager's
  /// per-tenant queues/quotas. The manager must outlive the server.
  void attach_virt(virt::VirtualDeviceManager* mgr);

  /// Submits a job. Never blocks: a job that cannot be admitted (every
  /// shard full, or the server is shut down) completes immediately as SHED.
  /// Throws InvalidArgument only for malformed jobs (null kernel/device,
  /// empty grid, texture kernels, tenant without attach_virt).
  JobHandle submit(JobSpec job);

  /// Blocks until every accepted job has completed.
  void drain();
  /// Stops admission (subsequent submits SHED), drains, joins the workers.
  /// Idempotent.
  void shutdown();

  /// Test hooks: freeze/unfreeze the workers' dequeue loop so admission
  /// control can be exercised deterministically.
  void pause();
  void resume();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  // == submitted after drain()
    std::uint64_t ok = 0;
    std::uint64_t deg = 0;
    std::uint64_t abt = 0;
    std::uint64_t shed = 0;
    std::uint64_t batches = 0;       // dequeue rounds
    std::uint64_t batched_jobs = 0;  // jobs executed across those rounds
    std::uint64_t max_queue_depth = 0;
    std::uint64_t breaker_trips = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };
  Stats stats() const;
  CompiledKernelCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  struct Job;     // JobSpec + handle state + timestamps
  struct Shard;
  struct Breaker;
  struct WorkerState;

  void worker_main(int worker_id);
  /// Claims up to cfg_.batch same-(device,toolchain,tenant) jobs from one
  /// shard. Returns an empty vector when every shard is empty.
  std::vector<Job> claim_batch(int worker_id);
  void execute_job(WorkerState& ws, Job& job, int batch_size);
  void complete_job(Job& job, Completion&& c);
  /// Breaker admission for the job's device; returns false (and sheds) when
  /// the breaker is open. Marks the job as the HalfOpen probe when it is.
  bool breaker_admit(Job& job);
  void breaker_note_result(const Job& job, bool success, bool device_fault);
  harness::DeviceSession& session_for(WorkerState& ws, const JobSpec& spec);
  void shed_job(Job& job, const std::string& reason);

  ServeConfig cfg_;
  resil::Policy policy_;
  virt::VirtualDeviceManager* virt_mgr_ = nullptr;
  CompiledKernelCache cache_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> next_job_id_{1};
  std::atomic<std::uint64_t> rr_{0};  // round-robin shard cursor

  std::mutex breaker_mutex_;
  std::vector<std::unique_ptr<Breaker>> breakers_;  // keyed by name, few

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> finished_{0};  // accepted jobs completed
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> class_counts_[4]{};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> breaker_trips_{0};
};

}  // namespace gpc::serve
