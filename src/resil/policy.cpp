#include "resil/policy.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace gpc::resil {

namespace {

std::mutex g_override_mutex;
std::optional<Policy> g_override;

std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  std::uint64_t z = seed + (n + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Policy policy_from_env() {
  Policy p;
  if (const char* e = std::getenv("GPC_RETRY")) {
    // "N[:base_us[:seed]]"
    char* end = nullptr;
    const long n = std::strtol(e, &end, 10);
    if (end != e && n >= 0) {
      p.max_retries = static_cast<int>(n);
      if (*end == ':') {
        const char* rest = end + 1;
        const double base = std::strtod(rest, &end);
        if (end != rest && base > 0) p.backoff_base_us = base;
        if (*end == ':') {
          const char* seed_s = end + 1;
          const unsigned long long seed = std::strtoull(seed_s, &end, 10);
          if (end != seed_s) p.jitter_seed = seed;
        }
      }
    }
  }
  if (const char* e = std::getenv("GPC_DEGRADE")) {
    p.degrade = !(e[0] == '0' && e[1] == '\0');
  }
  if (const char* e = std::getenv("GPC_WATCHDOG")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(e, &end, 10);
    if (end != e && *end == '\0' && v > 0) p.watchdog_budget = v;
  }
  return p;
}

void set_policy_override(const std::optional<Policy>& p) {
  std::lock_guard<std::mutex> lock(g_override_mutex);
  g_override = p;
}

Policy active_policy() {
  {
    std::lock_guard<std::mutex> lock(g_override_mutex);
    if (g_override) return *g_override;
  }
  return policy_from_env();
}

double backoff_us(const Policy& p, int attempt, std::uint64_t salt) {
  const double expo =
      p.backoff_base_us * static_cast<double>(1ull << std::min(attempt, 20));
  const std::uint64_t draw = mix(p.jitter_seed ^ salt,
                                 static_cast<std::uint64_t>(attempt));
  const double jitter =
      0.5 + static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
  return expo * jitter;  // in [50%, 150%] of the exponential step
}

void backoff_sleep(const Policy& p, int attempt, std::uint64_t salt) {
  const double us = std::min(backoff_us(p, attempt, salt), 50'000.0);
  if (us <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(us)));
}

}  // namespace gpc::resil
