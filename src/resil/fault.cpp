#include "resil/fault.h"

#include <cstdlib>
#include <string_view>

#include "common/error.h"

namespace gpc::resil {

namespace {

/// SplitMix64 finalizer (same engine as common/rng.h): mixes the per-site
/// seed with the call index into one uniform 64-bit draw. Stateless, so the
/// decision for call N is independent of sampling order across threads.
std::uint64_t mix(std::uint64_t seed, std::uint64_t n) {
  std::uint64_t z = seed + (n + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double unit_double(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

std::optional<Site> site_from_name(std::string_view name) {
  if (name == "enqueue") return Site::Enqueue;
  if (name == "midgrid") return Site::MidGrid;
  if (name == "hang") return Site::Hang;
  if (name == "build") return Site::Build;
  if (name == "memcpy") return Site::Memcpy;
  return std::nullopt;
}

}  // namespace

const char* site_name(Site s) {
  switch (s) {
    case Site::Enqueue: return "enqueue";
    case Site::MidGrid: return "midgrid";
    case Site::Hang: return "hang";
    case Site::Build: return "build";
    case Site::Memcpy: return "memcpy";
  }
  return "?";
}

namespace {
thread_local FaultPlan* t_plan = nullptr;
}  // namespace

void set_thread_plan(FaultPlan* p) { t_plan = p; }
FaultPlan* thread_plan() { return t_plan; }

FaultPlan& FaultPlan::instance() {
  // Leaked (usable from exit hooks); GPC_FAULT configures only the global
  // plan — standalone plans constructed elsewhere stay disarmed until
  // configured programmatically.
  static FaultPlan* p = [] {
    auto* plan = new FaultPlan();
    if (const char* e = std::getenv("GPC_FAULT")) plan->configure(e);
    return plan;
  }();
  return *p;
}

void FaultPlan::configure(const std::string& spec) {
  reset();
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    const std::string_view name = entry.substr(0, colon);
    const std::optional<Site> site = site_from_name(name);
    if (!site) {
      throw InvalidArgument("GPC_FAULT: unknown injection site '" +
                            std::string(name) +
                            "' (expected enqueue|midgrid|hang|build|memcpy)");
    }
    SiteSpec ss;
    ss.enabled = true;
    // Default per-site seed: the site index itself, so two sites with no
    // explicit seed still draw independent sequences.
    ss.seed = 0x5EEDull + static_cast<std::uint64_t>(*site);
    std::string_view opts =
        colon == std::string_view::npos ? std::string_view{}
                                        : entry.substr(colon + 1);
    while (!opts.empty()) {
      const std::size_t c = opts.find(':');
      std::string_view kv = opts.substr(0, c);
      opts = c == std::string_view::npos ? std::string_view{}
                                         : opts.substr(c + 1);
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        throw InvalidArgument("GPC_FAULT: expected key=value, got '" +
                              std::string(kv) + "'");
      }
      const std::string_view key = kv.substr(0, eq);
      const std::string val(kv.substr(eq + 1));
      char* end = nullptr;
      if (key == "p") {
        ss.probability = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0' || ss.probability < 0.0 ||
            ss.probability > 1.0) {
          throw InvalidArgument("GPC_FAULT: bad probability '" + val + "'");
        }
      } else if (key == "seed") {
        ss.seed = std::strtoull(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0') {
          throw InvalidArgument("GPC_FAULT: bad seed '" + val + "'");
        }
      } else if (key == "after") {
        ss.after = std::strtoull(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0') {
          throw InvalidArgument("GPC_FAULT: bad after '" + val + "'");
        }
      } else if (key == "count") {
        ss.count = std::strtoull(val.c_str(), &end, 10);
        if (end == val.c_str() || *end != '\0') {
          throw InvalidArgument("GPC_FAULT: bad count '" + val + "'");
        }
      } else {
        throw InvalidArgument("GPC_FAULT: unknown option '" +
                              std::string(key) +
                              "' (expected p|seed|after|count)");
      }
    }
    set(*site, ss);
  }
}

void FaultPlan::set(Site s, SiteSpec spec) {
  spec.enabled = true;
  SiteState& st = sites_[static_cast<int>(s)];
  st.spec = spec;
  st.calls.store(0, std::memory_order_relaxed);
  st.injected.store(0, std::memory_order_relaxed);
  rearm();
}

void FaultPlan::reset() {
  for (SiteState& st : sites_) {
    st.spec = SiteSpec{};
    st.calls.store(0, std::memory_order_relaxed);
    st.injected.store(0, std::memory_order_relaxed);
  }
  armed_.store(false, std::memory_order_relaxed);
}

void FaultPlan::rearm() {
  bool any = false;
  for (const SiteState& st : sites_) any = any || st.spec.enabled;
  armed_.store(any, std::memory_order_relaxed);
}

std::optional<Injection> FaultPlan::sample(Site s, const std::string& where) {
  SiteState& st = sites_[static_cast<int>(s)];
  const SiteSpec& spec = st.spec;
  if (!spec.enabled) return std::nullopt;

  const std::uint64_t n = st.calls.fetch_add(1, std::memory_order_relaxed);
  if (n < spec.after) return std::nullopt;
  const std::uint64_t draw = mix(spec.seed, n);
  if (unit_double(draw) >= spec.probability) return std::nullopt;
  // Enforce the per-site injection budget last, so a bounded `count` spends
  // itself on exactly the first `count` calls the probability selects.
  const std::uint64_t k = st.injected.fetch_add(1, std::memory_order_relaxed);
  if (k >= spec.count) {
    st.injected.fetch_sub(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  Injection inj;
  inj.aux = mix(spec.seed ^ 0xA5A5A5A5A5A5A5A5ull, n);
  inj.detail = std::string("injected ") + site_name(s) + " fault #" +
               std::to_string(k + 1) + " (call " + std::to_string(n) +
               ") at " + where;
  return inj;
}

SiteSpec FaultPlan::spec(Site s) const {
  return sites_[static_cast<int>(s)].spec;
}

std::uint64_t FaultPlan::calls(Site s) const {
  return sites_[static_cast<int>(s)].calls.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::injections(Site s) const {
  return sites_[static_cast<int>(s)].injected.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::total_injections() const {
  std::uint64_t sum = 0;
  for (int i = 0; i < kNumSites; ++i) {
    sum += injections(static_cast<Site>(i));
  }
  return sum;
}

Counters& counters() {
  static Counters* c = new Counters();  // leaked: usable from exit hooks
  return *c;
}

void reset_counters() {
  Counters& c = counters();
  c.retries.store(0, std::memory_order_relaxed);
  c.split_launches.store(0, std::memory_order_relaxed);
  c.degraded_launches.store(0, std::memory_order_relaxed);
  c.watchdog_trips.store(0, std::memory_order_relaxed);
  c.quarantined.store(0, std::memory_order_relaxed);
  c.shed.store(0, std::memory_order_relaxed);
  c.breaker_trips.store(0, std::memory_order_relaxed);
}

void note_watchdog_trip() {
  counters().watchdog_trips.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gpc::resil
