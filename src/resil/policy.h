// gpc::resil policy — what the launch paths *do* about faults.
//
// The injection layer (resil/fault.h) makes launches fail; this header
// decides the response. harness::DeviceSession consults the active policy on
// every failed operation:
//
//   * transient faults (TransientFault, DeviceFault, non-structural
//     OutOfResources) -> bounded retry with exponential backoff and
//     deterministic jitter (same SplitMix64 discipline as the fault plan, so
//     a replayed chaos run backs off identically);
//   * structural OutOfResources (the kernel genuinely does not fit the
//     device — probed against sim::compute_occupancy, which consumes no
//     injection samples) -> when degradation is enabled, either a
//     split-launch (half the grid per attempt, results merged) for
//     grid-shaped pressure, or degraded execution (the occupancy clamp +
//     emulation timing penalty of sim/timing.cpp) for per-block pressure;
//     the benchmark layer reports such completions as "DEG";
//   * runaway launches -> the per-launch watchdog arms PR 2's step budget
//     (GPC_WATCHDOG) so a hung kernel becomes a classified DeviceFault.
//
// Environment knobs (all off by default; parsed per query so tests can
// toggle them):
//   GPC_RETRY="N[:base_us[:seed]]"  max retries, backoff base, jitter seed
//   GPC_DEGRADE=1                   enable split-launch + degraded exec
//   GPC_WATCHDOG=N                  per-launch step budget when none is set
#pragma once

#include <cstdint>
#include <optional>

namespace gpc::resil {

struct Policy {
  int max_retries = 0;           // 0 = fail on first error (the PR 2 paths)
  double backoff_base_us = 50;   // attempt k sleeps ~base * 2^k (+ jitter)
  std::uint64_t jitter_seed = 1;
  bool degrade = false;          // split-launch / degraded-exec fallbacks
  int max_split_depth = 4;       // split recursion bound (2^4 partial grids)
  std::uint64_t watchdog_budget = 0;  // steps/block; 0 = not configured
};

/// Parses GPC_RETRY / GPC_DEGRADE / GPC_WATCHDOG. Malformed values are
/// ignored (robustness layer; never aborts the host over an env typo).
Policy policy_from_env();

/// Programmatic override for tests and the chaos harness; nullopt restores
/// env-driven behaviour.
void set_policy_override(const std::optional<Policy>& p);

/// The override when set, else policy_from_env().
Policy active_policy();

/// Deterministic backoff: base_us * 2^attempt, jittered to [50%, 150%] by a
/// SplitMix64 draw of (jitter_seed, attempt, salt). Pure function — the
/// replay guarantee of the chaos soak depends on it.
double backoff_us(const Policy& p, int attempt, std::uint64_t salt);

/// Sleeps for backoff_us (clamped to 50 ms so chaos runs cannot stall).
void backoff_sleep(const Policy& p, int attempt, std::uint64_t salt);

}  // namespace gpc::resil
