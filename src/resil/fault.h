// gpc::resil — deterministic, seeded fault injection for the simulator and
// both host APIs.
//
// Why it exists: PR 2 gave the stack fail-fast fault *paths* (OutOfResources
// at enqueue, DeviceFault mid-grid, step-budget runaways), but those paths
// were only reachable through hand-written kernels that really misbehave. A
// robustness layer needs faults on demand, everywhere, reproducibly: the
// chaos soak (bench/extra_chaos_soak) runs every benchmark under seeded
// injection and asserts every run ends in a classified outcome, and the
// policy layer (resil/policy.h + harness::DeviceSession) is tested against
// exactly these injected faults.
//
// Model: a process-wide FaultPlan holds one SiteSpec per injection site.
// Every instrumented call site asks `sample(site, where)`; the decision is a
// pure function of (site seed, call index at that site), drawn with
// SplitMix64 — so a given spec string replays the same fault sequence on
// every run, regardless of wall clock or address-space layout. Sites:
//
//   enqueue  OutOfResources thrown by sim::launch_kernel before any block
//            executes (the CL_OUT_OF_RESOURCES path of Table VI).
//   midgrid  DeviceFault raised by one deterministic victim block while the
//            grid is in flight (exercises the pool's batch cancellation).
//   hang     a launch that would stall forever; surfaced as the step-budget
//            watchdog trip (DeviceFault) without burning real cycles.
//   build    transient program-build failure (ocl::Program::build returns
//            BuildProgramFailure; cuda/harness compile throws
//            TransientFault) — succeeds on retry once the spec's budget for
//            the site is consumed.
//   memcpy   transient host<->device copy failure (ocl buffer ops return
//            OutOfHostMemory; cuda memcpy throws TransientFault).
//
// Cost model (same bar as gpc::prof, see bench/extra_resil_overhead): with
// no plan configured every site is `armed()` — one relaxed atomic load and a
// predictable branch. No allocation, no locking, no result perturbation
// (Table VI / fig03 stay bit-identical, locked by tests).
//
// Enablement: GPC_FAULT in the environment (parsed once, lazily) or the
// programmatic configure()/set() API used by tests and the chaos harness.
// Spec grammar, semicolon-separated sites with colon-separated options:
//
//   GPC_FAULT="enqueue:p=0.1:seed=7;midgrid:p=0.02;build:after=3:count=1"
//
//   p=X      per-call injection probability (default 1.0)
//   seed=N   per-site RNG seed (default: global seed 0 folded with the site)
//   after=N  skip the first N calls at the site (default 0)
//   count=N  inject at most N times at the site (default unlimited)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace gpc::resil {

enum class Site : int { Enqueue = 0, MidGrid, Hang, Build, Memcpy };
inline constexpr int kNumSites = 5;

const char* site_name(Site s);

struct SiteSpec {
  bool enabled = false;
  double probability = 1.0;
  std::uint64_t seed = 0;
  std::uint64_t after = 0;                // eligible only from call `after`
  std::uint64_t count = ~std::uint64_t{0};  // max injections at this site
};

/// The decision returned when a fault fires at a site.
struct Injection {
  /// Auxiliary deterministic draw for the site to aim with (e.g. the
  /// mid-grid victim block index, modulo the grid size).
  std::uint64_t aux = 0;
  /// Human-readable provenance ("injected midgrid fault #2 at <where>"),
  /// embedded in the thrown error / status detail so injected failures are
  /// distinguishable from organic ones in logs and tests.
  std::string detail;
};

/// Process-wide injection plan. All methods are thread-safe; sample() is
/// wait-free apart from the per-site call counter fetch_add.
class FaultPlan {
 public:
  /// A standalone, disarmed plan. The process-wide instance() additionally
  /// configures itself from GPC_FAULT on first use; standalone plans (e.g.
  /// gpc::virt's per-tenant plans) never read the environment, so arming a
  /// global chaos spec cannot leak into tenant-scoped injection.
  FaultPlan() = default;

  static FaultPlan& instance();

  /// The one test every instrumented site performs first. False (the
  /// default) means no site is enabled: a single relaxed load.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Parses a GPC_FAULT-style spec string and replaces the whole plan.
  /// Throws InvalidArgument on malformed specs / unknown sites.
  void configure(const std::string& spec);
  /// Programmatic per-site configuration (marks the site enabled).
  void set(Site s, SiteSpec spec);
  /// Disarms every site and zeroes the per-site call/injection counters.
  void reset();

  /// Deterministic sampling: returns the injection decision for this call,
  /// or nullopt. `where` (kernel/op name) only decorates Injection::detail —
  /// it does not enter the RNG, so fault sequences are stable across
  /// renames.
  std::optional<Injection> sample(Site s, const std::string& where);

  /// Introspection for tests and the chaos harness.
  SiteSpec spec(Site s) const;
  std::uint64_t calls(Site s) const;
  std::uint64_t injections(Site s) const;
  std::uint64_t total_injections() const;

 private:
  struct SiteState {
    SiteSpec spec;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> injected{0};
  };

  void rearm();  // recomputes armed_ from the per-site enabled bits

  std::atomic<bool> armed_{false};
  SiteState sites_[kNumSites];
};

// ---------------------------------------------------------------------------
// Thread-local plan override. gpc::serve executes each job single-threaded
// inside a worker and attaches a standalone per-job FaultPlan: installing it
// here for the duration of the job makes every instrumented site below the
// worker (launch entry, build, memcpy) sample the JOB's plan in the job's
// own serial call order — so the injected fault sequence is a pure function
// of (job seed), independent of how jobs interleave across workers. The
// global instance() stays authoritative for every thread without an
// override, preserving GPC_FAULT semantics everywhere else.

/// Installs `p` as the calling thread's active plan (nullptr restores the
/// process-wide plan). The caller keeps ownership; `p` must outlive the
/// override window.
void set_thread_plan(FaultPlan* p);
/// The calling thread's override, or nullptr when none is installed.
FaultPlan* thread_plan();

/// RAII override scope used by serve workers around one job's execution.
class ThreadPlanScope {
 public:
  explicit ThreadPlanScope(FaultPlan* p) : prev_(thread_plan()) {
    set_thread_plan(p);
  }
  ~ThreadPlanScope() { set_thread_plan(prev_); }
  ThreadPlanScope(const ThreadPlanScope&) = delete;
  ThreadPlanScope& operator=(const ThreadPlanScope&) = delete;

 private:
  FaultPlan* prev_;
};

inline FaultPlan& plan() {
  FaultPlan* t = thread_plan();
  return t ? *t : FaultPlan::instance();
}
/// Hot-path helper: `if (resil::armed()) { ... sample ... }`. Cost with no
/// override and no plan configured: one thread-local read + one relaxed load.
inline bool armed() { return plan().armed(); }
inline std::optional<Injection> sample(Site s, const std::string& where) {
  return plan().sample(s, where);
}

// ---------------------------------------------------------------------------
// Resilience counters. Incremented by the policy layer (harness) and the
// watchdog (sim); read by tests, the chaos harness and bench binaries.
// Separate from FaultPlan because they also count organic events (a real
// step-budget trip bumps watchdog_trips whether or not injection is armed).

struct Counters {
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> split_launches{0};
  std::atomic<std::uint64_t> degraded_launches{0};
  std::atomic<std::uint64_t> watchdog_trips{0};
  std::atomic<std::uint64_t> quarantined{0};
  // Serving-layer events (gpc::serve): jobs rejected by admission control /
  // deadlines / an open breaker, and breaker Closed->Open transitions.
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> breaker_trips{0};
};

Counters& counters();
void reset_counters();

/// Called by the interpreter when a block trips its step budget (the
/// watchdog event). Cheap: only runs on the throw path.
void note_watchdog_trip();

}  // namespace gpc::resil
