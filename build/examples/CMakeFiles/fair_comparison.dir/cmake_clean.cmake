file(REMOVE_RECURSE
  "CMakeFiles/fair_comparison.dir/fair_comparison.cpp.o"
  "CMakeFiles/fair_comparison.dir/fair_comparison.cpp.o.d"
  "fair_comparison"
  "fair_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
