# Empty compiler generated dependencies file for fair_comparison.
# This may be replaced when dependencies are built.
