file(REMOVE_RECURSE
  "CMakeFiles/portability_sweep.dir/portability_sweep.cpp.o"
  "CMakeFiles/portability_sweep.dir/portability_sweep.cpp.o.d"
  "portability_sweep"
  "portability_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
