# Empty dependencies file for extra_launch_overhead.
# This may be replaced when dependencies are built.
