file(REMOVE_RECURSE
  "CMakeFiles/extra_launch_overhead.dir/extra_launch_overhead.cpp.o"
  "CMakeFiles/extra_launch_overhead.dir/extra_launch_overhead.cpp.o.d"
  "extra_launch_overhead"
  "extra_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
