file(REMOVE_RECURSE
  "CMakeFiles/fig04_texture.dir/fig04_texture.cpp.o"
  "CMakeFiles/fig04_texture.dir/fig04_texture.cpp.o.d"
  "fig04_texture"
  "fig04_texture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_texture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
