# Empty compiler generated dependencies file for fig04_texture.
# This may be replaced when dependencies are built.
