# Empty dependencies file for extra_autotuner.
# This may be replaced when dependencies are built.
