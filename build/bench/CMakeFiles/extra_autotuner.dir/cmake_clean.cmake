file(REMOVE_RECURSE
  "CMakeFiles/extra_autotuner.dir/extra_autotuner.cpp.o"
  "CMakeFiles/extra_autotuner.dir/extra_autotuner.cpp.o.d"
  "extra_autotuner"
  "extra_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
