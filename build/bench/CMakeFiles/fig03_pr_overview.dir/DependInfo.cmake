
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_pr_overview.cpp" "bench/CMakeFiles/fig03_pr_overview.dir/fig03_pr_overview.cpp.o" "gcc" "bench/CMakeFiles/fig03_pr_overview.dir/fig03_pr_overview.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/gpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/gpc_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/gpc_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/gpc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/gpc_tuner.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
