# Empty compiler generated dependencies file for fig03_pr_overview.
# This may be replaced when dependencies are built.
