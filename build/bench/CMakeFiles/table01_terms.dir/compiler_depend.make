# Empty compiler generated dependencies file for table01_terms.
# This may be replaced when dependencies are built.
