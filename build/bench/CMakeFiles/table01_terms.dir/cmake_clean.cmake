file(REMOVE_RECURSE
  "CMakeFiles/table01_terms.dir/table01_terms.cpp.o"
  "CMakeFiles/table01_terms.dir/table01_terms.cpp.o.d"
  "table01_terms"
  "table01_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
