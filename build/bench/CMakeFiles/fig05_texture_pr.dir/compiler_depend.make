# Empty compiler generated dependencies file for fig05_texture_pr.
# This may be replaced when dependencies are built.
