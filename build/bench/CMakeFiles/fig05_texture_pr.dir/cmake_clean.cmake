file(REMOVE_RECURSE
  "CMakeFiles/fig05_texture_pr.dir/fig05_texture_pr.cpp.o"
  "CMakeFiles/fig05_texture_pr.dir/fig05_texture_pr.cpp.o.d"
  "fig05_texture_pr"
  "fig05_texture_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_texture_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
