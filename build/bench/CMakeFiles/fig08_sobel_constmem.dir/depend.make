# Empty dependencies file for fig08_sobel_constmem.
# This may be replaced when dependencies are built.
