file(REMOVE_RECURSE
  "CMakeFiles/fig08_sobel_constmem.dir/fig08_sobel_constmem.cpp.o"
  "CMakeFiles/fig08_sobel_constmem.dir/fig08_sobel_constmem.cpp.o.d"
  "fig08_sobel_constmem"
  "fig08_sobel_constmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sobel_constmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
