file(REMOVE_RECURSE
  "CMakeFiles/fig09_fairness_audit.dir/fig09_fairness_audit.cpp.o"
  "CMakeFiles/fig09_fairness_audit.dir/fig09_fairness_audit.cpp.o.d"
  "fig09_fairness_audit"
  "fig09_fairness_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_fairness_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
