# Empty compiler generated dependencies file for fig09_fairness_audit.
# This may be replaced when dependencies are built.
