# Empty compiler generated dependencies file for table06_portability.
# This may be replaced when dependencies are built.
