file(REMOVE_RECURSE
  "CMakeFiles/table06_portability.dir/table06_portability.cpp.o"
  "CMakeFiles/table06_portability.dir/table06_portability.cpp.o.d"
  "table06_portability"
  "table06_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
