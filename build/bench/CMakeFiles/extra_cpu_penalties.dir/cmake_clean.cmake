file(REMOVE_RECURSE
  "CMakeFiles/extra_cpu_penalties.dir/extra_cpu_penalties.cpp.o"
  "CMakeFiles/extra_cpu_penalties.dir/extra_cpu_penalties.cpp.o.d"
  "extra_cpu_penalties"
  "extra_cpu_penalties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_cpu_penalties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
