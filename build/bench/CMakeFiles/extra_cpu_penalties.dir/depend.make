# Empty dependencies file for extra_cpu_penalties.
# This may be replaced when dependencies are built.
