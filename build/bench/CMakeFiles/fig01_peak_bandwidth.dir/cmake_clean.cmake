file(REMOVE_RECURSE
  "CMakeFiles/fig01_peak_bandwidth.dir/fig01_peak_bandwidth.cpp.o"
  "CMakeFiles/fig01_peak_bandwidth.dir/fig01_peak_bandwidth.cpp.o.d"
  "fig01_peak_bandwidth"
  "fig01_peak_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_peak_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
