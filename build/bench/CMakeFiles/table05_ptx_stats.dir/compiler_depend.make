# Empty compiler generated dependencies file for table05_ptx_stats.
# This may be replaced when dependencies are built.
