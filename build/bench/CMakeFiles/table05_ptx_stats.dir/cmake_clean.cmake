file(REMOVE_RECURSE
  "CMakeFiles/table05_ptx_stats.dir/table05_ptx_stats.cpp.o"
  "CMakeFiles/table05_ptx_stats.dir/table05_ptx_stats.cpp.o.d"
  "table05_ptx_stats"
  "table05_ptx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_ptx_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
