file(REMOVE_RECURSE
  "CMakeFiles/table03_platforms.dir/table03_platforms.cpp.o"
  "CMakeFiles/table03_platforms.dir/table03_platforms.cpp.o.d"
  "table03_platforms"
  "table03_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
