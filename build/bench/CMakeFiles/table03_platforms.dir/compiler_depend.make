# Empty compiler generated dependencies file for table03_platforms.
# This may be replaced when dependencies are built.
