file(REMOVE_RECURSE
  "CMakeFiles/fig06_unroll.dir/fig06_unroll.cpp.o"
  "CMakeFiles/fig06_unroll.dir/fig06_unroll.cpp.o.d"
  "fig06_unroll"
  "fig06_unroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_unroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
