# Empty dependencies file for fig06_unroll.
# This may be replaced when dependencies are built.
