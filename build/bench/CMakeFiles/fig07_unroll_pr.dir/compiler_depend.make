# Empty compiler generated dependencies file for fig07_unroll_pr.
# This may be replaced when dependencies are built.
