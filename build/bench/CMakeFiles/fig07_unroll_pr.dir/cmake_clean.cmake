file(REMOVE_RECURSE
  "CMakeFiles/fig07_unroll_pr.dir/fig07_unroll_pr.cpp.o"
  "CMakeFiles/fig07_unroll_pr.dir/fig07_unroll_pr.cpp.o.d"
  "fig07_unroll_pr"
  "fig07_unroll_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_unroll_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
