# Empty dependencies file for fig02_peak_flops.
# This may be replaced when dependencies are built.
