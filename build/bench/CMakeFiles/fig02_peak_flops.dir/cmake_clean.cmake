file(REMOVE_RECURSE
  "CMakeFiles/fig02_peak_flops.dir/fig02_peak_flops.cpp.o"
  "CMakeFiles/fig02_peak_flops.dir/fig02_peak_flops.cpp.o.d"
  "fig02_peak_flops"
  "fig02_peak_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_peak_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
