# Empty compiler generated dependencies file for gpcc.
# This may be replaced when dependencies are built.
