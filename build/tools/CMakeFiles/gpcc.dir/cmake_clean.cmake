file(REMOVE_RECURSE
  "CMakeFiles/gpcc.dir/gpcc.cpp.o"
  "CMakeFiles/gpcc.dir/gpcc.cpp.o.d"
  "gpcc"
  "gpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
