file(REMOVE_RECURSE
  "CMakeFiles/gpc_ir.dir/function.cpp.o"
  "CMakeFiles/gpc_ir.dir/function.cpp.o.d"
  "CMakeFiles/gpc_ir.dir/instr.cpp.o"
  "CMakeFiles/gpc_ir.dir/instr.cpp.o.d"
  "libgpc_ir.a"
  "libgpc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
