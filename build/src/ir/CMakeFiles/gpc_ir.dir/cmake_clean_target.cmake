file(REMOVE_RECURSE
  "libgpc_ir.a"
)
