# Empty compiler generated dependencies file for gpc_ir.
# This may be replaced when dependencies are built.
