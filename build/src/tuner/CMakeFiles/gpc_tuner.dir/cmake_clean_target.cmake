file(REMOVE_RECURSE
  "libgpc_tuner.a"
)
