file(REMOVE_RECURSE
  "CMakeFiles/gpc_tuner.dir/autotuner.cpp.o"
  "CMakeFiles/gpc_tuner.dir/autotuner.cpp.o.d"
  "libgpc_tuner.a"
  "libgpc_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
