# Empty compiler generated dependencies file for gpc_tuner.
# This may be replaced when dependencies are built.
