file(REMOVE_RECURSE
  "libgpc_sim.a"
)
