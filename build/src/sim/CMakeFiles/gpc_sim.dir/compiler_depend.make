# Empty compiler generated dependencies file for gpc_sim.
# This may be replaced when dependencies are built.
