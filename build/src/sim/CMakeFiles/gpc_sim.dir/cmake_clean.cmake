file(REMOVE_RECURSE
  "CMakeFiles/gpc_sim.dir/cache.cpp.o"
  "CMakeFiles/gpc_sim.dir/cache.cpp.o.d"
  "CMakeFiles/gpc_sim.dir/interp.cpp.o"
  "CMakeFiles/gpc_sim.dir/interp.cpp.o.d"
  "CMakeFiles/gpc_sim.dir/launch.cpp.o"
  "CMakeFiles/gpc_sim.dir/launch.cpp.o.d"
  "CMakeFiles/gpc_sim.dir/memory.cpp.o"
  "CMakeFiles/gpc_sim.dir/memory.cpp.o.d"
  "CMakeFiles/gpc_sim.dir/timing.cpp.o"
  "CMakeFiles/gpc_sim.dir/timing.cpp.o.d"
  "libgpc_sim.a"
  "libgpc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
