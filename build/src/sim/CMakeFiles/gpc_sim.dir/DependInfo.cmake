
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/gpc_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/gpc_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/interp.cpp" "src/sim/CMakeFiles/gpc_sim.dir/interp.cpp.o" "gcc" "src/sim/CMakeFiles/gpc_sim.dir/interp.cpp.o.d"
  "/root/repo/src/sim/launch.cpp" "src/sim/CMakeFiles/gpc_sim.dir/launch.cpp.o" "gcc" "src/sim/CMakeFiles/gpc_sim.dir/launch.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/gpc_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/gpc_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/timing.cpp" "src/sim/CMakeFiles/gpc_sim.dir/timing.cpp.o" "gcc" "src/sim/CMakeFiles/gpc_sim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/gpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpc_kernel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
