file(REMOVE_RECURSE
  "CMakeFiles/gpc_cuda.dir/runtime.cpp.o"
  "CMakeFiles/gpc_cuda.dir/runtime.cpp.o.d"
  "libgpc_cuda.a"
  "libgpc_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
