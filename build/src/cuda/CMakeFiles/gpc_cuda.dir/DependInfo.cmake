
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuda/runtime.cpp" "src/cuda/CMakeFiles/gpc_cuda.dir/runtime.cpp.o" "gcc" "src/cuda/CMakeFiles/gpc_cuda.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/gpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
