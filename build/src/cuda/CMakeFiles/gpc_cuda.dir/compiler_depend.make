# Empty compiler generated dependencies file for gpc_cuda.
# This may be replaced when dependencies are built.
