file(REMOVE_RECURSE
  "libgpc_cuda.a"
)
