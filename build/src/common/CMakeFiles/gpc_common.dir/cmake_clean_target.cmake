file(REMOVE_RECURSE
  "libgpc_common.a"
)
