# Empty compiler generated dependencies file for gpc_common.
# This may be replaced when dependencies are built.
