file(REMOVE_RECURSE
  "CMakeFiles/gpc_common.dir/error.cpp.o"
  "CMakeFiles/gpc_common.dir/error.cpp.o.d"
  "CMakeFiles/gpc_common.dir/log.cpp.o"
  "CMakeFiles/gpc_common.dir/log.cpp.o.d"
  "CMakeFiles/gpc_common.dir/table.cpp.o"
  "CMakeFiles/gpc_common.dir/table.cpp.o.d"
  "CMakeFiles/gpc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/gpc_common.dir/thread_pool.cpp.o.d"
  "libgpc_common.a"
  "libgpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
