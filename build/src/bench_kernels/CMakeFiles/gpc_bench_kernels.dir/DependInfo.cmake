
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_kernels/bfs.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/bfs.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/bfs.cpp.o.d"
  "/root/repo/src/bench_kernels/common.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/common.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/common.cpp.o.d"
  "/root/repo/src/bench_kernels/dxtc.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/dxtc.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/dxtc.cpp.o.d"
  "/root/repo/src/bench_kernels/fdtd.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/fdtd.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/fdtd.cpp.o.d"
  "/root/repo/src/bench_kernels/fft.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/fft.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/fft.cpp.o.d"
  "/root/repo/src/bench_kernels/md.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/md.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/md.cpp.o.d"
  "/root/repo/src/bench_kernels/mxm.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/mxm.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/mxm.cpp.o.d"
  "/root/repo/src/bench_kernels/radixsort.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/radixsort.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/radixsort.cpp.o.d"
  "/root/repo/src/bench_kernels/reduce.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/reduce.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/reduce.cpp.o.d"
  "/root/repo/src/bench_kernels/registry.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/registry.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/registry.cpp.o.d"
  "/root/repo/src/bench_kernels/scan.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/scan.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/scan.cpp.o.d"
  "/root/repo/src/bench_kernels/sobel.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/sobel.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/sobel.cpp.o.d"
  "/root/repo/src/bench_kernels/sortnw.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/sortnw.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/sortnw.cpp.o.d"
  "/root/repo/src/bench_kernels/spmv.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/spmv.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/spmv.cpp.o.d"
  "/root/repo/src/bench_kernels/stencil2d.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/stencil2d.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/stencil2d.cpp.o.d"
  "/root/repo/src/bench_kernels/synthetic.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/synthetic.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/synthetic.cpp.o.d"
  "/root/repo/src/bench_kernels/tranp.cpp" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/tranp.cpp.o" "gcc" "src/bench_kernels/CMakeFiles/gpc_bench_kernels.dir/tranp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gpc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/gpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/gpc_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/gpc_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
