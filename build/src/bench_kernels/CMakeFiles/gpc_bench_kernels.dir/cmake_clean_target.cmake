file(REMOVE_RECURSE
  "libgpc_bench_kernels.a"
)
