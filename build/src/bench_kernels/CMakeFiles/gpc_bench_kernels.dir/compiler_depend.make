# Empty compiler generated dependencies file for gpc_bench_kernels.
# This may be replaced when dependencies are built.
