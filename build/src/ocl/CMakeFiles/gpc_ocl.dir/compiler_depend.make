# Empty compiler generated dependencies file for gpc_ocl.
# This may be replaced when dependencies are built.
