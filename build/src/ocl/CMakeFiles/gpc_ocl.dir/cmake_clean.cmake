file(REMOVE_RECURSE
  "CMakeFiles/gpc_ocl.dir/opencl.cpp.o"
  "CMakeFiles/gpc_ocl.dir/opencl.cpp.o.d"
  "libgpc_ocl.a"
  "libgpc_ocl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_ocl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
