file(REMOVE_RECURSE
  "libgpc_ocl.a"
)
