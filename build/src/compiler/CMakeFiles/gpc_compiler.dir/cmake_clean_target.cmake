file(REMOVE_RECURSE
  "libgpc_compiler.a"
)
