
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/lower.cpp" "src/compiler/CMakeFiles/gpc_compiler.dir/lower.cpp.o" "gcc" "src/compiler/CMakeFiles/gpc_compiler.dir/lower.cpp.o.d"
  "/root/repo/src/compiler/pipeline.cpp" "src/compiler/CMakeFiles/gpc_compiler.dir/pipeline.cpp.o" "gcc" "src/compiler/CMakeFiles/gpc_compiler.dir/pipeline.cpp.o.d"
  "/root/repo/src/compiler/ptxas.cpp" "src/compiler/CMakeFiles/gpc_compiler.dir/ptxas.cpp.o" "gcc" "src/compiler/CMakeFiles/gpc_compiler.dir/ptxas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gpc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpc_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
