file(REMOVE_RECURSE
  "CMakeFiles/gpc_compiler.dir/lower.cpp.o"
  "CMakeFiles/gpc_compiler.dir/lower.cpp.o.d"
  "CMakeFiles/gpc_compiler.dir/pipeline.cpp.o"
  "CMakeFiles/gpc_compiler.dir/pipeline.cpp.o.d"
  "CMakeFiles/gpc_compiler.dir/ptxas.cpp.o"
  "CMakeFiles/gpc_compiler.dir/ptxas.cpp.o.d"
  "libgpc_compiler.a"
  "libgpc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
