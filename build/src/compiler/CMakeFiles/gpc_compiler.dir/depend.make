# Empty dependencies file for gpc_compiler.
# This may be replaced when dependencies are built.
