file(REMOVE_RECURSE
  "CMakeFiles/gpc_harness.dir/benchmark.cpp.o"
  "CMakeFiles/gpc_harness.dir/benchmark.cpp.o.d"
  "CMakeFiles/gpc_harness.dir/fairness.cpp.o"
  "CMakeFiles/gpc_harness.dir/fairness.cpp.o.d"
  "CMakeFiles/gpc_harness.dir/session.cpp.o"
  "CMakeFiles/gpc_harness.dir/session.cpp.o.d"
  "libgpc_harness.a"
  "libgpc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
