file(REMOVE_RECURSE
  "libgpc_harness.a"
)
