# Empty dependencies file for gpc_harness.
# This may be replaced when dependencies are built.
