file(REMOVE_RECURSE
  "libgpc_kernel.a"
)
