# Empty compiler generated dependencies file for gpc_kernel.
# This may be replaced when dependencies are built.
