file(REMOVE_RECURSE
  "CMakeFiles/gpc_kernel.dir/builder.cpp.o"
  "CMakeFiles/gpc_kernel.dir/builder.cpp.o.d"
  "libgpc_kernel.a"
  "libgpc_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
