file(REMOVE_RECURSE
  "CMakeFiles/gpc_arch.dir/devices.cpp.o"
  "CMakeFiles/gpc_arch.dir/devices.cpp.o.d"
  "libgpc_arch.a"
  "libgpc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
