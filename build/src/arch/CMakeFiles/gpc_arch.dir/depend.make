# Empty dependencies file for gpc_arch.
# This may be replaced when dependencies are built.
