file(REMOVE_RECURSE
  "libgpc_arch.a"
)
