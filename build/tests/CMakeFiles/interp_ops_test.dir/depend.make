# Empty dependencies file for interp_ops_test.
# This may be replaced when dependencies are built.
