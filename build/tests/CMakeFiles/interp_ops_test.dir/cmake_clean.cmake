file(REMOVE_RECURSE
  "CMakeFiles/interp_ops_test.dir/interp_ops_test.cpp.o"
  "CMakeFiles/interp_ops_test.dir/interp_ops_test.cpp.o.d"
  "interp_ops_test"
  "interp_ops_test.pdb"
  "interp_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
