# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/benchmarks_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/interp_ops_test[1]_include.cmake")
