#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace gpc {
namespace {

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_NE(va, c.next_u64());  // astronomically unlikely to collide
  }
}

TEST(Rng, FloatRangesHold) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = r.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
    const float g = r.next_float(-2.0f, 3.0f);
    EXPECT_GE(g, -2.0f);
    EXPECT_LT(g, 3.0f);
    const auto b = r.next_below(17);
    EXPECT_LT(b, 17u);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw InvalidArgument("boom");
                   }),
               InvalidArgument);
}

namespace {
bool spin_until(const std::atomic<bool>& flag) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!flag.load(std::memory_order_relaxed)) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}
}  // namespace

TEST(ThreadPool, CancelSkipsUnclaimedChunks) {
  // The first exception cancels the batch: chunks not yet claimed are
  // skipped (they still count toward completion), so a faulting launch
  // stops the grid instead of grinding through every remaining block.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::atomic<bool> sibling_started{false};
  std::atomic<bool> cancel_seen{false};
  const std::size_t count = 1 << 16;
  EXPECT_THROW(
      pool.parallel_for(count,
                        [&](std::size_t i) {
                          executed.fetch_add(1, std::memory_order_relaxed);
                          if (i == 0) {
                            // Wait for a sibling chunk to be genuinely in
                            // flight so the cancel races with real work.
                            spin_until(sibling_started);
                            throw DeviceFault("block 0 faulted");
                          }
                          // Hold this chunk open until the cancel flag
                          // arrives, keeping the remaining chunks unclaimed
                          // when the batch is cancelled.
                          sibling_started.store(true,
                                                std::memory_order_relaxed);
                          const auto deadline =
                              std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
                          while (!ThreadPool::cancelled() &&
                                 std::chrono::steady_clock::now() < deadline) {
                            std::this_thread::yield();
                          }
                          if (ThreadPool::cancelled()) {
                            cancel_seen.store(true, std::memory_order_relaxed);
                          }
                        }),
      DeviceFault);
  // The thrower plus the handful of bodies in flight when the cancel hit;
  // everything else — tens of thousands of indices — was skipped.
  EXPECT_LT(executed.load(), 64)
      << "cancellation did not skip unclaimed chunks";
  EXPECT_TRUE(cancel_seen.load()) << "in-flight body never saw cancelled()";
}

TEST(ThreadPool, BodyCanPollCancellation) {
  ThreadPool pool(2);
  std::atomic<bool> observed{false};
  std::atomic<bool> partner_running{false};
  EXPECT_THROW(
      pool.parallel_for(1024,
                        [&](std::size_t i) {
                          if (i == 0) {
                            spin_until(partner_running);
                            throw DeviceFault("boom");
                          }
                          partner_running.store(true,
                                                std::memory_order_relaxed);
                          const auto deadline =
                              std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
                          while (!ThreadPool::cancelled() &&
                                 std::chrono::steady_clock::now() < deadline) {
                            std::this_thread::yield();
                          }
                          if (ThreadPool::cancelled()) {
                            observed.store(true, std::memory_order_relaxed);
                          }
                        }),
      DeviceFault);
  EXPECT_TRUE(observed.load());
}

TEST(ThreadPool, CancelledIsFalseOutsideABatch) {
  EXPECT_FALSE(ThreadPool::cancelled());
  ThreadPool pool(2);
  pool.parallel_for(16, [&](std::size_t) {
    EXPECT_FALSE(ThreadPool::cancelled());
  });
  EXPECT_FALSE(ThreadPool::cancelled());
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no spawned workers
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1.0   |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Errors, CheckMacroThrowsInternalError) {
  EXPECT_THROW(GPC_CHECK(false, "context"), InternalError);
  EXPECT_NO_THROW(GPC_CHECK(true));
  EXPECT_THROW(GPC_REQUIRE(false, "bad arg"), InvalidArgument);
}

}  // namespace
}  // namespace gpc
