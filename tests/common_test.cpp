#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace gpc {
namespace {

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    EXPECT_NE(va, c.next_u64());  // astronomically unlikely to collide
  }
}

TEST(Rng, FloatRangesHold) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = r.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
    const float g = r.next_float(-2.0f, 3.0f);
    EXPECT_GE(g, -2.0f);
    EXPECT_LT(g, 3.0f);
    const auto b = r.next_below(17);
    EXPECT_LT(b, 17u);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [&](std::size_t i) {
                     if (i == 57) throw InvalidArgument("boom");
                   }),
               InvalidArgument);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 0u);  // no spawned workers
  int sum = 0;
  pool.parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(TextTable, FormatsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.0"});
  t.add_row({"b", "22.5"});
  const std::string s = t.to_string("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1.0   |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Errors, CheckMacroThrowsInternalError) {
  EXPECT_THROW(GPC_CHECK(false, "context"), InternalError);
  EXPECT_NO_THROW(GPC_CHECK(true));
  EXPECT_THROW(GPC_REQUIRE(false, "bad arg"), InvalidArgument);
}

}  // namespace
}  // namespace gpc
