#include <gtest/gtest.h>

#include "common/error.h"
#include "ir/function.h"
#include "ir/instr.h"

namespace gpc::ir {
namespace {

TEST(Types, SizesMatchPtx) {
  EXPECT_EQ(size_of(Type::S32), 4);
  EXPECT_EQ(size_of(Type::U32), 4);
  EXPECT_EQ(size_of(Type::F32), 4);
  EXPECT_EQ(size_of(Type::U64), 8);
  EXPECT_EQ(size_of(Type::F64), 8);
  EXPECT_EQ(size_of(Type::Pred), 1);
}

TEST(Instr, ClassificationMatchesTableV) {
  Instr in;
  in.op = Opcode::Add;
  EXPECT_EQ(classify(in), InstrClass::Arithmetic);
  in.op = Opcode::Shl;
  EXPECT_EQ(classify(in), InstrClass::LogicShift);
  in.op = Opcode::Mov;
  EXPECT_EQ(classify(in), InstrClass::DataMovement);
  in.op = Opcode::Ld;
  EXPECT_EQ(classify(in), InstrClass::DataMovement);
  in.op = Opcode::SetP;
  EXPECT_EQ(classify(in), InstrClass::FlowControl);
  in.op = Opcode::SelP;
  EXPECT_EQ(classify(in), InstrClass::FlowControl);
  in.op = Opcode::Bra;
  EXPECT_EQ(classify(in), InstrClass::FlowControl);
  in.op = Opcode::Bar;
  EXPECT_EQ(classify(in), InstrClass::Synchronization);
}

TEST(Instr, FlopCounts) {
  Instr in;
  in.type = Type::F32;
  in.op = Opcode::Add;
  EXPECT_EQ(flop_count(in), 1);
  in.op = Opcode::Mad;
  EXPECT_EQ(flop_count(in), 2);
  in.op = Opcode::Fma;
  EXPECT_EQ(flop_count(in), 2);
  in.type = Type::S32;
  EXPECT_EQ(flop_count(in), 0);
}

TEST(Instr, SfuDetection) {
  Instr in;
  in.type = Type::F32;
  in.op = Opcode::Sin;
  EXPECT_TRUE(in.is_sfu());
  in.op = Opcode::Div;
  EXPECT_TRUE(in.is_sfu());
  in.type = Type::S32;
  EXPECT_FALSE(in.is_sfu()) << "integer div is not an SFU op";
  in.op = Opcode::Add;
  EXPECT_FALSE(in.is_sfu());
}

TEST(Histogram, MnemonicsCarryStateSpaces) {
  Instr ld;
  ld.op = Opcode::Ld;
  ld.space = Space::Global;
  EXPECT_EQ(Histogram::mnemonic(ld), "ld.global");
  ld.space = Space::Local;
  EXPECT_EQ(Histogram::mnemonic(ld), "ld.local");
  Instr sreg;
  sreg.op = Opcode::ReadSReg;
  EXPECT_EQ(Histogram::mnemonic(sreg), "mov");
}

TEST(FunctionBuilder, ResolvesForwardBranches) {
  FunctionBuilder fb("f");
  const int label = fb.new_label();
  fb.emit_branch(label);
  Instr mov;
  mov.op = Opcode::Mov;
  mov.type = Type::S32;
  mov.dst = fb.new_reg();
  mov.a = Operand::imm(1);
  fb.emit(mov);
  fb.bind_label(label);
  Function fn = fb.finish();
  ASSERT_GE(fn.body.size(), 3u);  // bra, mov, exit
  EXPECT_EQ(fn.body[0].op, Opcode::Bra);
  EXPECT_EQ(fn.body[0].target, 2);
  EXPECT_EQ(fn.body.back().op, Opcode::Exit);
}

TEST(FunctionBuilder, UnboundLabelFaults) {
  FunctionBuilder fb("f");
  fb.emit_branch(fb.new_label());
  EXPECT_THROW(fb.finish(), InternalError);
}

TEST(FunctionBuilder, ConstShareAndLocalOffsetsAreAligned) {
  FunctionBuilder fb("f");
  const float v = 2.5f;
  EXPECT_EQ(fb.add_const_data(&v, 4, 4), 0);
  char c = 'x';
  EXPECT_EQ(fb.add_const_data(&c, 1, 1), 4);
  EXPECT_EQ(fb.add_const_data(&v, 4, 4), 8);  // realigned
  EXPECT_EQ(fb.add_shared(100, 4), 0);
  EXPECT_EQ(fb.add_shared(8, 8), 104);
  EXPECT_EQ(fb.fn().static_shared_bytes, 112);
  EXPECT_EQ(fb.add_local(3, 1), 0);
  EXPECT_EQ(fb.add_local(4, 4), 4);
}

TEST(Histogram, CountsAndTotals) {
  FunctionBuilder fb("f");
  for (int i = 0; i < 3; ++i) {
    Instr in;
    in.op = Opcode::Add;
    in.type = Type::F32;
    in.dst = fb.new_reg();
    fb.emit(in);
  }
  Instr ld;
  ld.op = Opcode::Ld;
  ld.space = Space::Global;
  ld.dst = fb.new_reg();
  fb.emit(ld);
  Function fn = fb.finish();
  Histogram h = Histogram::of(fn);
  EXPECT_EQ(h.count("add"), 3);
  EXPECT_EQ(h.count("ld.global"), 1);
  EXPECT_EQ(h.count("sub"), 0);
  EXPECT_EQ(h.class_total(InstrClass::Arithmetic), 3);
  EXPECT_EQ(h.class_total(InstrClass::DataMovement), 1);
  EXPECT_EQ(h.total(), 4);  // exit is not counted
}

TEST(Disassembler, ProducesReadableText) {
  FunctionBuilder fb("k");
  Param p;
  p.name = "out";
  p.type = Type::U64;
  p.is_pointer = true;
  fb.add_param(p);
  Instr in;
  in.op = Opcode::Mov;
  in.type = Type::F32;
  in.dst = fb.new_reg();
  in.a = Operand::immf(1.5);
  fb.emit(in);
  const std::string text = to_text(fb.finish());
  EXPECT_NE(text.find(".entry k"), std::string::npos);
  EXPECT_NE(text.find("mov.f32"), std::string::npos);
  EXPECT_NE(text.find("1.5f"), std::string::npos);
}

}  // namespace
}  // namespace gpc::ir
