// Differential compiler testing: randomly generated kernels must compute the
// same values through BOTH front-ends as a host-side evaluation of the same
// expression tree. This is the strongest guard on the "same native kernel,
// two compilers" contract — any divergence between the CUDA pipeline (CSE,
// polynomial canonicalisation, predication, mad fusion) and the OpenCL
// pipeline (statement-local CSE, selp if-conversion, software transcendentals)
// that changes semantics shows up here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <vector>

#include "arch/device_spec.h"
#include "common/rng.h"
#include "compiler/pipeline.h"
#include "harness/benchmark.h"
#include "kernel/builder.h"
#include "sim/launch.h"

namespace gpc {
namespace {

// Force a single simulator thread before the shared pool is created: the
// per-block BlockStats are bit-exact regardless of scheduling, but the merge
// order of the floating-point `flops` accumulator is not, and this file
// asserts exact equality across fast-path modes.
const bool g_single_sim_thread = [] {
  setenv("GPC_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

/// RAII toggle for the convergent-warp fast path.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool enabled)
      : prev_(sim::convergent_fast_path_enabled()) {
    sim::set_convergent_fast_path(enabled);
  }
  ~FastPathGuard() { sim::set_convergent_fast_path(prev_); }

 private:
  bool prev_;
};

void expect_stats_equal(const sim::BlockStats& slow,
                        const sim::BlockStats& fast) {
  EXPECT_EQ(slow.alu_issues, fast.alu_issues);
  EXPECT_EQ(slow.ialu_issues, fast.ialu_issues);
  EXPECT_EQ(slow.agu_issues, fast.agu_issues);
  EXPECT_EQ(slow.mad_issues, fast.mad_issues);
  EXPECT_EQ(slow.mul_issues, fast.mul_issues);
  EXPECT_EQ(slow.sfu_issues, fast.sfu_issues);
  EXPECT_EQ(slow.branch_issues, fast.branch_issues);
  EXPECT_EQ(slow.mem_issues, fast.mem_issues);
  EXPECT_EQ(slow.shared_cycles, fast.shared_cycles);
  EXPECT_EQ(slow.const_cycles, fast.const_cycles);
  EXPECT_EQ(slow.barrier_count, fast.barrier_count);
  EXPECT_EQ(slow.dram_read_bytes, fast.dram_read_bytes);
  EXPECT_EQ(slow.dram_write_bytes, fast.dram_write_bytes);
  EXPECT_EQ(slow.dram_transactions, fast.dram_transactions);
  EXPECT_EQ(slow.useful_global_bytes, fast.useful_global_bytes);
  EXPECT_EQ(slow.local_bytes, fast.local_bytes);
  EXPECT_EQ(slow.tex_requests, fast.tex_requests);
  EXPECT_EQ(slow.tex_hits, fast.tex_hits);
  EXPECT_EQ(slow.l1_hits, fast.l1_hits);
  EXPECT_EQ(slow.atomic_serial_ops, fast.atomic_serial_ops);
  EXPECT_EQ(slow.flops, fast.flops);
}

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

// A host-evaluable mirror: each generated node carries both the AST value
// and a lambda computing the reference result from (tid, p0, p1).
struct GenValue {
  Val val;
  std::function<std::int64_t(int, int, int)> eval;
};

struct Generator {
  KernelBuilder& kb;
  Rng& rng;
  Val tid, p0v, p1v;

  GenValue leaf() {
    switch (rng.next_below(4)) {
      case 0: {
        const int c = static_cast<int>(rng.next_below(64)) - 32;
        return {kb.c32(c), [c](int, int, int) { return c; }};
      }
      case 1:
        return {tid, [](int t, int, int) { return t; }};
      case 2:
        return {p0v, [](int, int a, int) { return a; }};
      default:
        return {p1v, [](int, int, int b) { return b; }};
    }
  }

  GenValue gen(int depth) {
    if (depth <= 0) return leaf();
    GenValue a = gen(depth - 1);
    GenValue b = gen(depth - 1);
    auto wrap = [](std::int64_t v) {
      return static_cast<std::int64_t>(static_cast<std::int32_t>(v));
    };
    switch (rng.next_below(8)) {
      case 0:
        return {a.val + b.val, [=](int t, int x, int y) {
                  return wrap(a.eval(t, x, y) + b.eval(t, x, y));
                }};
      case 1:
        return {a.val - b.val, [=](int t, int x, int y) {
                  return wrap(a.eval(t, x, y) - b.eval(t, x, y));
                }};
      case 2:
        return {a.val * b.val, [=](int t, int x, int y) {
                  return wrap(a.eval(t, x, y) * b.eval(t, x, y));
                }};
      case 3:
        return {a.val & b.val, [=](int t, int x, int y) {
                  return a.eval(t, x, y) & b.eval(t, x, y);
                }};
      case 4:
        return {a.val ^ b.val, [=](int t, int x, int y) {
                  return a.eval(t, x, y) ^ b.eval(t, x, y);
                }};
      case 5:
        return {a.val << 3, [=](int t, int x, int y) {
                  return wrap(a.eval(t, x, y) << 3);
                }};
      case 6: {
        // Select keeps control-flow lowering honest.
        Val cond = a.val < b.val;
        GenValue c = gen(depth - 1);
        return {kb.select(cond, b.val, c.val), [=](int t, int x, int y) {
                  return a.eval(t, x, y) < b.eval(t, x, y) ? b.eval(t, x, y)
                                                           : c.eval(t, x, y);
                }};
      }
      default:
        return {kb.min_(a.val, b.val), [=](int t, int x, int y) {
                  return std::min(a.eval(t, x, y), b.eval(t, x, y));
                }};
    }
  }
};

struct Generated {
  KernelDef def;
  std::vector<std::int64_t> expect;  // per tid
};

Generated generate_case(std::uint64_t seed, int threads, int p0, int p1) {
  Rng rng(seed);
  KernelBuilder kb("fuzz");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Val a = kb.s32_param("p0");
  Val b = kb.s32_param("p1");
  Val tid = kb.tid_x();
  Generator g{kb, rng, tid, a, b};

  // A few statements with variables (exercises materialisation, env
  // tracking, statement-local CSE) plus an if and a loop.
  Var acc = kb.var_s32("acc");
  GenValue e0 = g.gen(3);
  kb.set(acc, e0.val);
  GenValue e1 = g.gen(3);
  kb.if_(Val(acc) > e1.val, [&] { kb.set(acc, Val(acc) - e1.val); });
  GenValue e2 = g.gen(2);
  Var i = kb.var_s32("i");
  const int trip = 1 + static_cast<int>(rng.next_below(6));
  const int factor = 1 + static_cast<int>(rng.next_below(4));
  kb.for_(i, 0, kb.c32(trip), 1, Unroll::both(factor), [&] {
    kb.set(acc, Val(acc) + e2.val * (Val(i) + 1));
  });
  kb.st(out, tid, acc);
  KernelDef def = kb.finish();

  std::vector<std::int64_t> expect(threads);
  for (int t = 0; t < threads; ++t) {
    auto wrap = [](std::int64_t v) {
      return static_cast<std::int64_t>(static_cast<std::int32_t>(v));
    };
    std::int64_t acc_v = e0.eval(t, p0, p1);
    const std::int64_t v1 = e1.eval(t, p0, p1);
    if (acc_v > v1) acc_v = wrap(acc_v - v1);
    const std::int64_t v2 = e2.eval(t, p0, p1);
    for (int k = 0; k < trip; ++k) acc_v = wrap(acc_v + wrap(v2 * (k + 1)));
    expect[t] = acc_v;
  }
  return {std::move(def), std::move(expect)};
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, BothToolchainsMatchHostSemantics) {
  const int threads = 64;
  const int p0 = 17, p1 = -5;
  Generated c = generate_case(1000 + GetParam() * 7919, threads, p0, p1);

  for (auto tc : {arch::Toolchain::Cuda, arch::Toolchain::OpenCl}) {
    SCOPED_TRACE(arch::to_string(tc));
    auto ck = compiler::compile(c.def, tc);
    // Run through the divergence scheduler and the convergent fast path;
    // both must match host semantics, each other (bitwise), and produce the
    // same dynamic statistics.
    std::vector<std::int32_t> got[2];
    sim::BlockStats stats[2];
    for (int mode = 0; mode < 2; ++mode) {
      FastPathGuard guard(mode == 1);
      sim::DeviceMemory mem(1 << 20);
      const auto out = mem.alloc(threads * 4);
      sim::LaunchConfig cfg;
      cfg.grid = {1, 1, 1};
      cfg.block = {threads, 1, 1};
      std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out),
                                          sim::KernelArg::s32(p0),
                                          sim::KernelArg::s32(p1)};
      auto r = sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck,
                                  cfg, args, mem);
      stats[mode] = r.stats.total;
      got[mode].resize(threads);
      mem.read(out, got[mode].data(), threads * 4);
      for (int t = 0; t < threads; ++t) {
        ASSERT_EQ(static_cast<std::int64_t>(got[mode][t]), c.expect[t])
            << "seed case " << GetParam() << " tid " << t << " fast-path "
            << mode;
      }
    }
    EXPECT_EQ(got[0], got[1]) << "fast path changed output bits";
    expect_stats_equal(stats[0], stats[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range(0, 48));

// The same differential idea for f32 math including the software sin/cos
// path: both toolchains within tolerance of the host.
class FloatDifferential : public ::testing::TestWithParam<int> {};

TEST_P(FloatDifferential, TranscendentalChainsAgree) {
  const int threads = 32;
  Rng rng(500 + GetParam());
  const float a = rng.next_float(-4.0f, 4.0f);
  const float b = rng.next_float(0.5f, 2.0f);

  KernelBuilder kb("fmath");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val pa = kb.f32_param("a");
  Val pb = kb.f32_param("b");
  Val t = kb.cast(kb.tid_x(), ir::Type::F32);
  Val x = t * pa + pb;
  Val y = kb.sin_(x) * kb.cos_(x * pb) + kb.sqrt_(t + kb.cf(1.0)) / pb;
  kb.st(out, kb.tid_x(), y);
  auto def = kb.finish();

  for (auto tc : {arch::Toolchain::Cuda, arch::Toolchain::OpenCl}) {
    SCOPED_TRACE(arch::to_string(tc));
    auto ck = compiler::compile(def, tc);
    sim::DeviceMemory mem(1 << 20);
    const auto d_out = mem.alloc(threads * 4);
    sim::LaunchConfig cfg;
    cfg.grid = {1, 1, 1};
    cfg.block = {threads, 1, 1};
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out),
                                        sim::KernelArg::f32(a),
                                        sim::KernelArg::f32(b)};
    sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                       mem);
    std::vector<float> got(threads);
    mem.read(d_out, got.data(), threads * 4);
    for (int tdx = 0; tdx < threads; ++tdx) {
      const float xf = static_cast<float>(tdx) * a + b;
      const float want =
          std::sin(xf) * std::cos(xf * b) + std::sqrt(tdx + 1.0f) / b;
      ASSERT_NEAR(got[tdx], want, 5e-4f + 5e-4f * std::fabs(want))
          << "tid " << tdx << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloatDifferential, ::testing::Range(0, 24));

// The convergent-warp fast path must be invisible: every registered
// real-world benchmark, run end to end (compile, launches, verification),
// produces the same metric value, verification verdict and dynamic
// statistics with the fast path force-disabled and force-enabled. The two
// device/toolchain combos cover both lockstep widths (warp 32, wavefront 64)
// and both compiler front-ends.
class FastPathDifferential
    : public ::testing::TestWithParam<const bench::Benchmark*> {};

TEST_P(FastPathDifferential, BenchmarksBitIdenticalAcrossFastPathModes) {
  const bench::Benchmark& b = *GetParam();
  bench::Options opts;
  opts.scale = 0.25;  // keep runtime small; any scale exercises both paths

  struct Combo {
    const arch::DeviceSpec& device;
    arch::Toolchain tc;
  };
  const Combo combos[] = {{arch::gtx480(), arch::Toolchain::Cuda},
                          {arch::hd5870(), arch::Toolchain::OpenCl}};

  for (const Combo& combo : combos) {
    SCOPED_TRACE(b.name() + " on " + combo.device.name);
    bench::Result results[2];
    for (int mode = 0; mode < 2; ++mode) {
      FastPathGuard guard(mode == 1);
      results[mode] = b.run(combo.device, combo.tc, opts);
    }
    const bench::Result& slow = results[0];
    const bench::Result& fast = results[1];
    EXPECT_EQ(slow.status, fast.status);
    EXPECT_EQ(slow.correct, fast.correct);
    EXPECT_EQ(slow.launches, fast.launches);
    EXPECT_EQ(slow.value, fast.value);
    EXPECT_EQ(slow.seconds, fast.seconds);
    expect_stats_equal(slow.stats, fast.stats);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRealWorld, FastPathDifferential,
    ::testing::ValuesIn(bench::real_world_benchmarks()),
    [](const ::testing::TestParamInfo<const bench::Benchmark*>& info) {
      return info.param->name();
    });

}  // namespace
}  // namespace gpc
