// Exhaustive-ish coverage of interpreter operation semantics: every opcode
// the front-ends can emit, executed on-device and compared against host
// arithmetic, plus atomics, type conversions and integer edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "arch/device_spec.h"
#include "compiler/pipeline.h"
#include "kernel/builder.h"
#include "sim/dispatch.h"
#include "sim/interp.h"
#include "sim/launch.h"

namespace gpc {
namespace {

using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

// Runs a single-thread kernel writing one s32 result per output slot.
std::vector<std::int32_t> run_s32(const KernelDef& def, arch::Toolchain tc,
                                  int outputs,
                                  std::vector<sim::KernelArg> extra = {}) {
  auto ck = compiler::compile(def, tc);
  sim::DeviceMemory mem(1 << 20);
  const auto out = mem.alloc(static_cast<std::size_t>(outputs) * 4);
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out)};
  for (auto& a : extra) args.push_back(a);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  std::vector<std::int32_t> got(outputs);
  mem.read(out, got.data(), static_cast<std::size_t>(outputs) * 4);
  return got;
}

class BothToolchains : public ::testing::TestWithParam<arch::Toolchain> {};
INSTANTIATE_TEST_SUITE_P(TC, BothToolchains,
                         ::testing::Values(arch::Toolchain::Cuda,
                                           arch::Toolchain::OpenCl),
                         [](const auto& i) {
                           return std::string(arch::to_string(i.param));
                         });

TEST_P(BothToolchains, IntegerArithmeticEdgeCases) {
  KernelBuilder kb("intops");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Val a = kb.s32_param("a");  // runtime values defeat constant folding
  Val b = kb.s32_param("b");
  int slot = 0;
  auto emit = [&](Val v) { kb.st(out, kb.c32(slot++), v); };
  emit(a + b);
  emit(a - b);
  emit(a * b);
  emit(a / b);
  emit(a % b);
  emit(kb.min_(a, b));
  emit(kb.max_(a, b));
  emit(kb.abs_(b));
  emit(a & b);
  emit(a | b);
  emit(a ^ b);
  emit(a << 3);
  emit(a >> 2);       // arithmetic shift on negative values
  emit(-a);
  emit(kb.select(a < b, kb.c32(111), kb.c32(222)));
  emit((a / (b - b + 1)) * 0 + a / kb.c32(0));  // s32 div-by-zero -> 0
  auto def = kb.finish();

  const int av = -1000, bv = 7;
  std::vector<sim::KernelArg> extra = {sim::KernelArg::s32(av),
                                       sim::KernelArg::s32(bv)};
  const auto got = run_s32(def, GetParam(), 16, extra);
  const std::int32_t want[] = {
      av + bv, av - bv,  av * bv, av / bv, av % bv, std::min(av, bv),
      std::max(av, bv), std::abs(bv), av & bv, av | bv, av ^ bv,
      av << 3, av >> 2, -av, 111, 0};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(got[i], want[i]) << "slot " << i;
}

TEST_P(BothToolchains, UnsignedComparisonsAndShifts) {
  KernelBuilder kb("uops");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Val a = kb.u32_param("a");
  Val b = kb.u32_param("b");
  int slot = 0;
  auto emitp = [&](Val pred) {
    kb.st(out, kb.c32(slot++), kb.select(pred, kb.c32(1), kb.c32(0)));
  };
  emitp(a < b);   // unsigned: 0xFFFFFFF0 < 2 is false
  emitp(a > b);
  auto def = kb.finish();
  std::vector<sim::KernelArg> extra = {sim::KernelArg::u32(0xFFFFFFF0u),
                                       sim::KernelArg::u32(2u)};
  const auto got = run_s32(def, GetParam(), 2, extra);
  EXPECT_EQ(got[0], 0);
  EXPECT_EQ(got[1], 1);
}

TEST_P(BothToolchains, FloatOpsMatchHost) {
  KernelBuilder kb("fops");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  int slot = 0;
  auto emit = [&](Val v) { kb.st(out, kb.c32(slot++), v); };
  emit(kb.sqrt_(x));
  emit(kb.rsqrt_(x));
  emit(kb.rcp_(x));
  emit(kb.exp2_(x));
  emit(kb.log2_(x));
  emit(kb.abs_(-x));
  emit(kb.min_(x, kb.cf(2.0)));
  emit(kb.max_(x, kb.cf(2.0)));
  auto def = kb.finish();

  for (auto tc : {GetParam()}) {
    auto ck = compiler::compile(def, tc);
    sim::DeviceMemory mem(1 << 20);
    const auto out_addr = mem.alloc(64);
    const float xv = 2.7182818f;
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out_addr),
                                        sim::KernelArg::f32(xv)};
    sim::LaunchConfig cfg;
    cfg.grid = {1, 1, 1};
    cfg.block = {1, 1, 1};
    sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                       mem);
    std::vector<float> got(8);
    mem.read(out_addr, got.data(), 32);
    const float want[] = {std::sqrt(xv),      1.0f / std::sqrt(xv),
                          1.0f / xv,          std::exp2(xv),
                          std::log2(xv),      xv,
                          2.0f,               xv};
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-5f * std::fabs(want[i]) + 1e-6f)
          << "slot " << i;
    }
  }
}

TEST_P(BothToolchains, CastsRoundTowardZero) {
  KernelBuilder kb("casts");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Val x = kb.f32_param("x");
  kb.st(out, kb.c32(0), kb.cast(x, ir::Type::S32));
  kb.st(out, kb.c32(1), kb.cast(-x, ir::Type::S32));
  kb.st(out, kb.c32(2),
        kb.cast(kb.cast(kb.s32_param("i"), ir::Type::F32), ir::Type::S32));
  auto def = kb.finish();
  std::vector<sim::KernelArg> extra = {sim::KernelArg::f32(3.99f),
                                       sim::KernelArg::s32(-123)};
  const auto got = run_s32(def, GetParam(), 3, extra);
  EXPECT_EQ(got[0], 3);
  EXPECT_EQ(got[1], -3);
  EXPECT_EQ(got[2], -123);
}

TEST_P(BothToolchains, GlobalAtomicsAccumulateAcrossBlocks) {
  KernelBuilder kb("atom");
  auto counter = kb.ptr_param("counter", ir::Type::S32);
  auto fsum = kb.ptr_param("fsum", ir::Type::F32);
  kb.atomic_add(counter, kb.c32(0), kb.c32(1));
  kb.atomic_add(fsum, kb.c32(0), kb.cf(0.5));
  auto def = kb.finish();
  auto ck = compiler::compile(def, GetParam());

  sim::DeviceMemory mem(1 << 20);
  const auto c = mem.alloc(16);
  const auto f = mem.alloc(16);
  sim::LaunchConfig cfg;
  cfg.grid = {32, 1, 1};
  cfg.block = {64, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(c),
                                      sim::KernelArg::ptr(f)};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  std::int32_t count = 0;
  mem.read(c, &count, 4);
  EXPECT_EQ(count, 32 * 64);
  float sum = 0;
  mem.read(f, &sum, 4);
  EXPECT_FLOAT_EQ(sum, 32 * 64 * 0.5f);
}

TEST_P(BothToolchains, SharedAtomicsSerialiseWithinBlock) {
  KernelBuilder kb("satom");
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto cnt = kb.shared_array("cnt", ir::Type::S32, 1);
  kb.if_(kb.tid_x() == 0, [&] { kb.sts(cnt, kb.c32(0), kb.c32(0)); });
  kb.barrier();
  kb.atomic_add_shared(cnt, kb.c32(0), kb.c32(1));
  kb.barrier();
  kb.if_(kb.tid_x() == 0,
         [&] { kb.st(out, kb.ctaid_x(), kb.lds(cnt, kb.c32(0))); });
  auto def = kb.finish();
  auto ck = compiler::compile(def, GetParam());
  sim::DeviceMemory mem(1 << 20);
  const auto out_addr = mem.alloc(64);
  sim::LaunchConfig cfg;
  cfg.grid = {4, 1, 1};
  cfg.block = {96, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out_addr)};
  // Unlike the lockstep-lost-update idiom, atomics are correct even on the
  // 64-wide wavefront device.
  sim::launch_kernel(arch::hd5870(), arch::opencl_runtime(), ck, cfg, args,
                     mem);
  std::vector<std::int32_t> got(4);
  mem.read(out_addr, got.data(), 16);
  for (int b = 0; b < 4; ++b) EXPECT_EQ(got[b], 96) << "block " << b;
}

TEST_P(BothToolchains, WhileLoopWithDataDependentTripCount) {
  // Collatz-ish: count steps until 1. Divergent trip counts across lanes.
  KernelBuilder kb("collatz");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Var n = kb.var_s32("n");
  Var steps = kb.var_s32("steps");
  kb.set(n, kb.tid_x() + 2);
  kb.set(steps, kb.c32(0));
  kb.while_(Val(n) != 1, [&] {
    kb.if_else(
        (Val(n) & 1) == 0, [&] { kb.set(n, Val(n) >> 1); },
        [&] { kb.set(n, 3 * Val(n) + 1); });
    kb.set(steps, Val(steps) + 1);
  });
  kb.st(out, kb.tid_x(), steps);
  auto def = kb.finish();
  auto ck = compiler::compile(def, GetParam());
  sim::DeviceMemory mem(1 << 20);
  const auto out_addr = mem.alloc(32 * 4);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {32, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out_addr)};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  std::vector<std::int32_t> got(32);
  mem.read(out_addr, got.data(), 128);
  for (int t = 0; t < 32; ++t) {
    int n = t + 2, steps = 0;
    while (n != 1) {
      n = (n % 2 == 0) ? n / 2 : 3 * n + 1;
      ++steps;
    }
    EXPECT_EQ(got[t], steps) << "lane " << t;
  }
}

TEST(Interpreter, ConstantArraysAreReadOnlyData) {
  KernelBuilder kb("constarr");
  auto out = kb.ptr_param("out", ir::Type::S32);
  const int table[5] = {10, 20, 30, 40, 50};
  auto ca = kb.const_array_s32("table", table);
  kb.st(out, kb.tid_x(), kb.ldc(ca, kb.tid_x()));
  auto def = kb.finish();
  auto ck = compiler::compile(def, arch::Toolchain::Cuda);
  sim::DeviceMemory mem(1 << 20);
  const auto out_addr = mem.alloc(64);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {5, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out_addr)};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  std::vector<std::int32_t> got(5);
  mem.read(out_addr, got.data(), 20);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], table[i]);
}

TEST(Interpreter, PrivateArraysArePerThread) {
  KernelBuilder kb("priv");
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto scratch = kb.private_array("scratch", ir::Type::S32, 4);
  Val tid = kb.tid_x();
  Var i = kb.var_s32("i");
  kb.for_(i, 0, kb.c32(4), 1, kernel::Unroll::none(),
          [&] { kb.stp(scratch, Val(i), tid * 10 + Val(i)); });
  Var sum = kb.var_s32("sum");
  kb.set(sum, kb.c32(0));
  kb.for_(i, 0, kb.c32(4), 1, kernel::Unroll::none(),
          [&] { kb.set(sum, Val(sum) + kb.ldp(scratch, Val(i))); });
  kb.st(out, tid, sum);
  auto def = kb.finish();
  auto ck = compiler::compile(def, arch::Toolchain::OpenCl);
  EXPECT_EQ(ck.local_bytes_per_thread(), 16);
  sim::DeviceMemory mem(1 << 20);
  const auto out_addr = mem.alloc(64 * 4);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out_addr)};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  std::vector<std::int32_t> got(64);
  mem.read(out_addr, got.data(), 256);
  for (int t = 0; t < 64; ++t) {
    EXPECT_EQ(got[t], 4 * (t * 10) + 0 + 1 + 2 + 3) << "thread " << t;
  }
}

// F64 transcendentals must evaluate at double precision: the interpreter
// used to narrow the operand to float before std::sin/std::cos regardless of
// the instruction type. Built at the IR level because the front-ends only
// emit f32 math. F32 keeps its float-precision (SFU-style) semantics.
TEST(FloatOps, SinCosUseDoublePrecisionForF64) {
  const double x = 1.0;  // sin(1.0) differs between float and double eval

  ir::FunctionBuilder fb("f64_trig");
  fb.add_param({"out", ir::Type::U64, /*is_pointer=*/true, ir::Space::Global});
  const int r_ptr = fb.new_reg();
  const int r_x = fb.new_reg();
  const int r_sin = fb.new_reg();
  const int r_cos = fb.new_reg();
  const int r_addr = fb.new_reg();
  auto instr = [](ir::Opcode op, ir::Type t, int dst, ir::Operand a,
                  ir::Operand b = ir::Operand::none()) {
    ir::Instr in;
    in.op = op;
    in.type = t;
    in.dst = dst;
    in.a = a;
    in.b = b;
    return in;
  };
  {
    ir::Instr ld;
    ld.op = ir::Opcode::Ld;
    ld.space = ir::Space::Param;
    ld.type = ir::Type::U64;
    ld.dst = r_ptr;
    ld.a = ir::Operand::imm(0);
    fb.emit(ld);
  }
  fb.emit(instr(ir::Opcode::Mov, ir::Type::F64, r_x, ir::Operand::immf(x)));
  fb.emit(instr(ir::Opcode::Sin, ir::Type::F64, r_sin, ir::Operand::vreg(r_x)));
  fb.emit(instr(ir::Opcode::Cos, ir::Type::F64, r_cos, ir::Operand::vreg(r_x)));
  auto store = [&](int addr_reg, int val_reg) {
    ir::Instr st;
    st.op = ir::Opcode::St;
    st.space = ir::Space::Global;
    st.type = ir::Type::F64;
    st.a = ir::Operand::vreg(addr_reg);
    st.b = ir::Operand::vreg(val_reg);
    fb.emit(st);
  };
  store(r_ptr, r_sin);
  fb.emit(instr(ir::Opcode::Add, ir::Type::U64, r_addr,
                ir::Operand::vreg(r_ptr), ir::Operand::imm(8)));
  store(r_addr, r_cos);
  fb.emit(ir::Instr{});  // Exit

  compiler::CompiledKernel ck;
  ck.fn = fb.finish();
  ck.ptx = ck.fn;

  sim::DeviceMemory mem(1 << 20);
  const auto out = mem.alloc(16);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out)};
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);

  double got[2];
  mem.read(out, got, 16);
  EXPECT_EQ(got[0], std::sin(x));
  EXPECT_EQ(got[1], std::cos(x));
  // The old float-narrowing behaviour is measurably different.
  EXPECT_NE(got[0],
            static_cast<double>(std::sin(static_cast<float>(x))));
}

// ---------------------------------------------------------------------------
// Divergent-cohort op coverage (Issue 8): ops whose goto-engine handlers
// have a dedicated cohort path (special-register reads, guarded shared
// memory) must produce exact per-lane values when the executing cohort's
// lane set is sparse and non-consecutive — under every scheduler.

/// Saves and restores the engine knobs around a test body.
class AllSchedulersLoop {
 public:
  AllSchedulersLoop()
      : prev_mode_(sim::dispatch_mode()),
        prev_fast_(sim::convergent_fast_path_enabled()) {}
  ~AllSchedulersLoop() {
    sim::set_dispatch_mode(prev_mode_);
    sim::set_convergent_fast_path(prev_fast_);
  }

  /// Runs fn once per scheduler: min-PC, switch, threaded, simd.
  void run(const std::function<void(const std::string&)>& fn) {
    sim::set_convergent_fast_path(false);
    sim::set_dispatch_mode(sim::DispatchMode::Switch);
    fn("minpc");
    sim::set_convergent_fast_path(true);
    for (auto m : {sim::DispatchMode::Switch, sim::DispatchMode::Threaded,
                   sim::DispatchMode::Simd}) {
      sim::set_dispatch_mode(m);
      fn(sim::to_string(m));
    }
  }

 private:
  sim::DispatchMode prev_mode_;
  bool prev_fast_;
};

TEST_P(BothToolchains, SpecialRegisterReadsInsideDivergentRegion) {
  // Odd lanes re-read tid/lane/ctaid/ntid AFTER the warp has split, so the
  // cohort engine's ReadSReg path computes them for a sparse lane set
  // (every other lane). Two blocks of two warps check the base offsets.
  KernelBuilder kb("divsreg");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Val t = kb.tid_x();
  kb.if_else(
      (t & 1) == 1,
      [&] {
        kb.st(out, kb.global_id_x(),
              kb.ctaid_x() * 1000000 + kb.tid_x() * 1000 + kb.lane_id() +
                  kb.ntid_x() * 100000);
      },
      [&] { kb.st(out, kb.global_id_x(), 0 - t); });
  auto def = kb.finish();

  const int threads = 64, blocks = 2, warp = 32;
  AllSchedulersLoop loop;
  loop.run([&](const std::string& sched) {
    SCOPED_TRACE(sched);
    auto ck = compiler::compile(def, GetParam());
    sim::DeviceMemory mem(1 << 20);
    const auto d_out = mem.alloc(blocks * threads * 4);
    sim::LaunchConfig cfg;
    cfg.grid = {blocks, 1, 1};
    cfg.block = {threads, 1, 1};
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out)};
    sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                       mem);
    std::vector<std::int32_t> got(blocks * threads);
    mem.read(d_out, got.data(), got.size() * 4);
    for (int b = 0; b < blocks; ++b) {
      for (int tid = 0; tid < threads; ++tid) {
        const int g = b * threads + tid;
        const std::int32_t want =
            (tid & 1) == 1 ? b * 1000000 + tid * 1000 + tid % warp +
                                 threads * 100000
                           : -tid;
        EXPECT_EQ(got[g], want) << "block " << b << " tid " << tid;
      }
    }
  });
}

TEST_P(BothToolchains, SharedMemorySwapUnderDivergentGuard) {
  // Odd lanes double their even neighbour's staged value while the warp is
  // split: the shared-load/store handlers run with a sparse cohort, and the
  // barriers around the swap must see the reconverged warp.
  KernelBuilder kb("divshared");
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto s = kb.shared_array("s", ir::Type::S32, 64);
  Val t = kb.tid_x();
  kb.sts(s, t, t * 7 + 1);
  kb.barrier();
  kb.if_((t & 1) == 1, [&] { kb.sts(s, t, kb.lds(s, t ^ 1) * 2); });
  kb.barrier();
  kb.st(out, kb.global_id_x(), kb.lds(s, t));
  auto def = kb.finish();

  const int threads = 64;
  AllSchedulersLoop loop;
  loop.run([&](const std::string& sched) {
    SCOPED_TRACE(sched);
    auto ck = compiler::compile(def, GetParam());
    sim::DeviceMemory mem(1 << 20);
    const auto d_out = mem.alloc(2 * threads * 4);
    sim::LaunchConfig cfg;
    cfg.grid = {2, 1, 1};
    cfg.block = {threads, 1, 1};
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out)};
    sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                       mem);
    std::vector<std::int32_t> got(2 * threads);
    mem.read(d_out, got.data(), got.size() * 4);
    for (int g = 0; g < 2 * threads; ++g) {
      const int tid = g % threads;
      const std::int32_t want =
          (tid & 1) == 1 ? ((tid ^ 1) * 7 + 1) * 2 : tid * 7 + 1;
      EXPECT_EQ(got[g], want) << "global id " << g;
    }
  });
}

}  // namespace
}  // namespace gpc
