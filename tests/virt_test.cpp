// gpc::virt tests: GPC_VIRT config parsing, quota enforcement (over-quota
// tenant gets OutOfResources, neighbours unaffected), preempt/resume
// bit-identity of time-sliced execution vs. the un-sliced launch for every
// registered benchmark, weighted fair-share ratios under real contention,
// and victim-tenant fault containment through both the CUDA and OpenCL
// runtimes. Labelled "virt" in ctest and run under ThreadSanitizer by
// tools/run_tsan.sh — the credit accounting and job handoff must be clean.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/device_spec.h"
#include "bench_kernels/registry.h"
#include "common/error.h"
#include "harness/session.h"
#include "kernel/builder.h"
#include "resil/fault.h"
#include "virt/virt.h"

namespace gpc {
namespace {

using arch::Toolchain;
using kernel::KernelBuilder;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

// Single-threaded block execution so the differential assertions below can
// demand EXACT equality: with one worker, blocks run in flat order in both
// the sliced and unsliced executions, so even the floating-point
// accumulations (flops, per-SM issue weights) see the identical sequence of
// additions. Static initialization order: this runs before main(), before
// the pool is constructed.
const bool g_single_threaded = [] {
  ::setenv("GPC_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

void expect_stats_equal(const sim::BlockStats& a, const sim::BlockStats& b) {
  EXPECT_EQ(a.alu_issues, b.alu_issues);
  EXPECT_EQ(a.ialu_issues, b.ialu_issues);
  EXPECT_EQ(a.agu_issues, b.agu_issues);
  EXPECT_EQ(a.mad_issues, b.mad_issues);
  EXPECT_EQ(a.mul_issues, b.mul_issues);
  EXPECT_EQ(a.sfu_issues, b.sfu_issues);
  EXPECT_EQ(a.branch_issues, b.branch_issues);
  EXPECT_EQ(a.mem_issues, b.mem_issues);
  EXPECT_EQ(a.shared_cycles, b.shared_cycles);
  EXPECT_EQ(a.const_cycles, b.const_cycles);
  EXPECT_EQ(a.barrier_count, b.barrier_count);
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
  EXPECT_EQ(a.dram_transactions, b.dram_transactions);
  EXPECT_EQ(a.useful_global_bytes, b.useful_global_bytes);
  EXPECT_EQ(a.local_bytes, b.local_bytes);
  EXPECT_EQ(a.tex_requests, b.tex_requests);
  EXPECT_EQ(a.tex_hits, b.tex_hits);
  EXPECT_EQ(a.l1_hits, b.l1_hits);
  EXPECT_EQ(a.atomic_serial_ops, b.atomic_serial_ops);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
}

// ---------------------------------------------------------------------------
// GPC_VIRT parsing

TEST(VirtConfig, ParsesFullSpec) {
  ::setenv("GPC_VIRT",
           "tenants=8,slice=12345,weights=4:2:1,quota_mb=64,phys_mb=512,"
           "watchdog=777,force_slice=1",
           1);
  const virt::VirtConfig cfg = virt::virt_config_from_env();
  ::unsetenv("GPC_VIRT");
  EXPECT_EQ(cfg.tenants, 8);
  EXPECT_EQ(cfg.slice, 12345u);
  ASSERT_EQ(cfg.weights.size(), 3u);
  EXPECT_DOUBLE_EQ(cfg.weights[0], 4.0);
  EXPECT_DOUBLE_EQ(cfg.weights[2], 1.0);
  EXPECT_EQ(cfg.quota_bytes, std::size_t{64} << 20);
  EXPECT_EQ(cfg.phys_bytes, std::size_t{512} << 20);
  EXPECT_EQ(cfg.block_budget, 777u);
  EXPECT_TRUE(cfg.force_slice);
}

TEST(VirtConfig, MalformedEntriesIgnored) {
  ::setenv("GPC_VIRT", "tenants=bogus,slice=0,weights=1:-2,junk,quota_mb=", 1);
  const virt::VirtConfig cfg = virt::virt_config_from_env();
  ::unsetenv("GPC_VIRT");
  const virt::VirtConfig def;
  EXPECT_EQ(cfg.tenants, def.tenants);
  EXPECT_EQ(cfg.slice, def.slice);
  EXPECT_TRUE(cfg.weights.empty());
  EXPECT_EQ(cfg.quota_bytes, def.quota_bytes);
}

TEST(VirtConfig, UnsetMeansDefaults) {
  ::unsetenv("GPC_VIRT");
  const virt::VirtConfig cfg = virt::virt_config_from_env();
  EXPECT_EQ(cfg.tenants, 1);
  EXPECT_FALSE(cfg.force_slice);
}

TEST(VirtConfig, ManagerRejectsOvercommittedQuota) {
  virt::VirtConfig cfg;
  cfg.tenants = 4;
  cfg.phys_bytes = std::size_t{64} << 20;
  cfg.quota_bytes = std::size_t{32} << 20;  // 4 * 32MB > 64MB
  EXPECT_THROW(virt::VirtualDeviceManager{cfg}, InvalidArgument);
}

// ---------------------------------------------------------------------------
// Quota enforcement

TEST(VirtQuota, OverQuotaTenantGetsOORNeighboursUnaffected) {
  virt::VirtConfig cfg;
  cfg.tenants = 2;
  cfg.phys_bytes = std::size_t{64} << 20;
  cfg.quota_bytes = std::size_t{8} << 20;
  virt::VirtualDeviceManager mgr(cfg);

  harness::TenantSession greedy(arch::gtx480(), Toolchain::Cuda,
                                mgr.tenant(0));
  harness::TenantSession neighbour(arch::gtx480(), Toolchain::Cuda,
                                   mgr.tenant(1));

  // Inside quota: fine.
  (void)greedy.alloc(std::size_t{4} << 20);
  // Over quota: OutOfResources scoped to THIS tenant, tagged as a quota
  // rejection in both the message and the tenant's accounting.
  try {
    (void)greedy.alloc(std::size_t{8} << 20);
    FAIL() << "over-quota alloc did not throw";
  } catch (const OutOfResources& e) {
    EXPECT_NE(std::string(e.what()).find("quota"), std::string::npos);
  }
  EXPECT_EQ(mgr.tenant(0).stats().quota_rejections, 1u);

  // The neighbour's quota is untouched by tenant 0's exhaustion.
  (void)neighbour.alloc(std::size_t{7} << 20);
  EXPECT_EQ(mgr.tenant(1).stats().quota_rejections, 0u);
  EXPECT_GE(mgr.tenant(0).stats().mem_peak, std::size_t{4} << 20);
}

// ---------------------------------------------------------------------------
// Preempt/resume bit-identity: every registered benchmark, sliced vs. not.

class VirtDifferential : public ::testing::TestWithParam<int> {};

TEST_P(VirtDifferential, SlicedExecutionIsBitIdentical) {
  const bench::Benchmark* b =
      bench::real_world_benchmarks()[static_cast<std::size_t>(GetParam())];
  bench::Options opts;
  // FDTD's 48x48 plane collapses to a single 16x16 tile at scale 0.1 — a
  // one-block grid has nothing to preempt; run it at 0.5 (a 2x2 grid).
  opts.scale = b->name() == "FDTD" ? 0.5 : 0.1;

  // Baseline: plain un-virtualized session.
  harness::DeviceSession plain(arch::gtx480(), Toolchain::Cuda);
  const bench::Result want = b->run_in_session(plain, opts);

  // Same benchmark inside a tenant whose every launch is force-sliced into
  // the smallest possible preempt/resume chunks: a 1-step quantum preempts
  // after every single block, the maximal checkpointing stress.
  virt::VirtConfig cfg;
  cfg.tenants = 1;
  cfg.slice = 1;
  cfg.force_slice = true;
  virt::VirtualDeviceManager mgr(cfg);
  harness::TenantSession tenant(arch::gtx480(), Toolchain::Cuda,
                                mgr.tenant(0));
  const bench::Result got = b->run_in_session(tenant, opts);

  EXPECT_EQ(got.status, want.status) << b->name();
  EXPECT_EQ(got.correct, want.correct) << b->name();
  EXPECT_EQ(got.launches, want.launches) << b->name();
  expect_stats_equal(got.stats, want.stats);
  // Timing is re-derived once per logical launch from the merged stats, so
  // slicing must not change the metric or the accumulated kernel seconds.
  EXPECT_DOUBLE_EQ(got.seconds, want.seconds) << b->name();
  EXPECT_DOUBLE_EQ(got.value, want.value) << b->name();

  // And the slicing really happened: some launch was preempted mid-grid and
  // resumed on a later slice. Every slice either completed a launch or
  // checkpointed one (no faults here), so the counters must reconcile.
  const virt::TenantStats st = mgr.tenant(0).stats();
  EXPECT_GT(st.preemptions, 0u) << b->name();
  EXPECT_EQ(st.slices, st.launches + st.preemptions) << b->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, VirtDifferential,
    ::testing::Range(0, static_cast<int>(bench::real_world_benchmarks().size())),
    [](const ::testing::TestParamInfo<int>& info) {
      return bench::real_world_benchmarks()[static_cast<std::size_t>(
                                                info.param)]
          ->name();
    });

TEST(VirtDifferentialOcl, SlicedExecutionIsBitIdenticalThroughOpenCL) {
  const bench::Benchmark& b = bench::benchmark_by_name("BFS");
  bench::Options opts;
  opts.scale = 0.1;
  harness::DeviceSession plain(arch::gtx480(), Toolchain::OpenCl);
  const bench::Result want = b.run_in_session(plain, opts);

  virt::VirtConfig cfg;
  cfg.tenants = 1;
  cfg.slice = 20'000;
  cfg.force_slice = true;
  virt::VirtualDeviceManager mgr(cfg);
  harness::TenantSession tenant(arch::gtx480(), Toolchain::OpenCl,
                                mgr.tenant(0));
  const bench::Result got = b.run_in_session(tenant, opts);

  EXPECT_EQ(got.status, want.status);
  expect_stats_equal(got.stats, want.stats);
  EXPECT_DOUBLE_EQ(got.seconds, want.seconds);
  EXPECT_DOUBLE_EQ(got.value, want.value);
}

// ---------------------------------------------------------------------------
// Fair share

TEST(VirtFairShare, WeightedTenantsSplitContendedStepsByWeight) {
  virt::VirtConfig cfg;
  cfg.tenants = 2;
  cfg.slice = 10'000;
  cfg.weights = {3.0, 1.0};
  virt::VirtualDeviceManager mgr(cfg);

  // Two tenant threads hammer the device with the identical loop-heavy
  // kernel (~100 iterations x 64 blocks: a couple hundred thousand issues
  // per launch, dozens of slices) concurrently; the caller-driven scheduler
  // interleaves their slices in credit order.
  auto tenant_loop = [&](int id, int rounds) {
    harness::TenantSession s(arch::gtx480(), Toolchain::Cuda, mgr.tenant(id));
    KernelBuilder kb("spin");
    auto out = kb.ptr_param("out", ir::Type::F32);
    Var acc = kb.var_f32("acc");
    kb.set(acc, kb.cf(1.0));
    Var i = kb.var_s32("i");
    kb.for_(i, 0, kb.c32(100), 1, Unroll::none(), [&] {
      kb.set(acc, Val(acc) * kb.cf(1.0000001) + kb.cf(0.5));
    });
    kb.st(out, kb.global_id_x(), acc);
    const auto ck = s.compile(kb.finish());
    const auto d_out = s.alloc(64 * 256 * 4);
    const std::vector<sim::KernelArg> args{sim::KernelArg::ptr(d_out)};
    for (int r = 0; r < rounds; ++r) {
      (void)s.launch(ck, {64, 1, 1}, {256, 1, 1}, args);
    }
  };
  std::thread heavy(tenant_loop, 0, 20);
  std::thread light(tenant_loop, 1, 20);
  heavy.join();
  light.join();

  const auto st = mgr.stats();
  // Same total work per tenant, so both must have overlapped substantially;
  // the fair-share claim is about steps executed WHILE contended.
  ASSERT_GT(st[0].contended_steps, 0u);
  ASSERT_GT(st[1].contended_steps, 0u);
  const double ratio = static_cast<double>(st[0].contended_steps) /
                       static_cast<double>(st[1].contended_steps);
  // Weight ratio is 3.0; slice granularity (a slice overshoots its quantum
  // by at most one block) and edge slices blur it, so assert a broad band
  // around the target rather than a point.
  EXPECT_GT(ratio, 1.6) << "heavy tenant did not get its weighted share";
  EXPECT_LT(ratio, 6.0) << "heavy tenant starved the light one";
  EXPECT_GT(st[0].preemptions + st[1].preemptions, 0u);
}

// ---------------------------------------------------------------------------
// Fault containment

class VirtContainment : public ::testing::TestWithParam<Toolchain> {};

TEST_P(VirtContainment, VictimFaultsAreInvisibleToNeighbours) {
  const Toolchain tc = GetParam();
  bench::Options opts;
  opts.scale = 0.1;
  const bench::Benchmark& b = bench::benchmark_by_name("Reduce");

  // Unvirtualized baseline for the clean tenant's expected results.
  harness::DeviceSession plain(arch::gtx480(), tc);
  const bench::Result want = b.run_in_session(plain, opts);
  ASSERT_EQ(want.status, "OK");

  virt::VirtConfig cfg;
  cfg.tenants = 2;
  cfg.slice = 20'000;
  cfg.force_slice = true;  // keep both tenants interleaving
  virt::VirtualDeviceManager mgr(cfg);

  // Tenant 1 is the designated victim: every launch site injects.
  auto plan = std::make_unique<resil::FaultPlan>();
  EXPECT_FALSE(plan->armed());  // standalone plans never read GPC_FAULT
  resil::SiteSpec hang;
  hang.enabled = true;
  hang.probability = 1.0;
  hang.seed = 7;
  plan->set(resil::Site::Hang, hang);
  mgr.tenant(1).set_fault_plan(std::move(plan));

  bench::Result got;
  std::string victim_error;
  std::thread clean_thread([&] {
    harness::TenantSession s(arch::gtx480(), tc, mgr.tenant(0));
    got = b.run_in_session(s, opts);
  });
  std::thread victim_thread([&] {
    harness::TenantSession s(arch::gtx480(), tc, mgr.tenant(1));
    const bench::Result r = b.run_in_session(s, opts);
    // Hang injection on every launch: the victim cannot complete — but it
    // ends CLASSIFIED (the injected hang trips the watchdog path), not
    // hung, and not crashing the harness.
    victim_error = r.status;
  });
  clean_thread.join();
  victim_thread.join();

  EXPECT_EQ(victim_error, "ABT");
  EXPECT_GT(mgr.tenant(1).stats().faults, 0u);

  // The non-victim tenant is bit-identical to the unvirtualized run.
  EXPECT_EQ(got.status, "OK");
  expect_stats_equal(got.stats, want.stats);
  EXPECT_DOUBLE_EQ(got.value, want.value);
  EXPECT_EQ(mgr.tenant(0).stats().faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, VirtContainment,
                         ::testing::Values(Toolchain::Cuda,
                                           Toolchain::OpenCl),
                         [](const ::testing::TestParamInfo<Toolchain>& info) {
                           return info.param == Toolchain::Cuda ? "cuda"
                                                                : "ocl";
                         });

TEST(VirtContainment2, MidgridVictimFailsAtDeterministicBlock) {
  // Runs the identical single-tenant midgrid-injection scenario twice from
  // scratch (fresh manager, fresh identically-seeded plan) and demands the
  // identical fault message, victim block included — the per-tenant
  // determinism the soak's replay assertion builds on.
  const auto scenario = [] {
    virt::VirtConfig cfg;
    cfg.tenants = 1;
    cfg.slice = 5'000;
    cfg.force_slice = true;
    virt::VirtualDeviceManager mgr(cfg);

    auto plan = std::make_unique<resil::FaultPlan>();
    resil::SiteSpec mid;
    mid.enabled = true;
    mid.probability = 1.0;
    mid.seed = 11;
    plan->set(resil::Site::MidGrid, mid);
    mgr.tenant(0).set_fault_plan(std::move(plan));

    kernel::KernelBuilder kb("copy_v");
    auto in = kb.ptr_param("in", ir::Type::S32);
    auto out = kb.ptr_param("out", ir::Type::S32);
    kb.st(out, kb.global_id_x(), kb.ld(in, kb.global_id_x()));

    harness::TenantSession s(arch::gtx480(), Toolchain::Cuda, mgr.tenant(0));
    const auto ck = s.compile(kb.finish());
    const std::vector<std::int32_t> host(64 * 256, 7);
    const auto d_in = s.upload<std::int32_t>(host);
    const auto d_out = s.alloc(host.size() * 4);

    try {
      (void)s.launch(ck, {64, 1, 1}, {256, 1, 1},
                     std::vector<sim::KernelArg>{sim::KernelArg::ptr(d_in),
                                                 sim::KernelArg::ptr(d_out)});
    } catch (const DeviceFault& e) {
      return std::string(e.what());
    }
    return std::string("DID NOT THROW");
  };

  const std::string first = scenario();
  const std::string second = scenario();
  EXPECT_NE(first.find("injected midgrid fault"), std::string::npos) << first;
  EXPECT_NE(first.find("(block "), std::string::npos) << first;
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace gpc
