// gpc::aiwc tests (Issue 9): the mirrored kind-name table is locked against
// sim/decode.h, the exact-LRU reuse-distance stack is checked against
// hand-computed access strings (including Fenwick-tree growth past its
// initial capacity), stride classification follows the documented lane-delta
// priority, finalize() keeps the exported metric order and entropy bounds,
// and — the determinism contract — the merged per-launch feature digest is
// bit-identical across every dispatch engine, both compiler front-ends, and
// every execution shape that slices a launch (resil split launches, virt
// force-sliced tenants, sanitizer on). Disarmed launches carry no features,
// produce bit-identical results, and keep the hook sites cheap.
// Labelled "aiwc" in ctest; tools/run_tsan.sh runs it under tsan.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "aiwc/aiwc.h"
#include "arch/device_spec.h"
#include "bench_kernels/registry.h"
#include "compiler/pipeline.h"
#include "harness/benchmark.h"
#include "harness/session.h"
#include "kernel/builder.h"
#include "prof/prof.h"
#include "resil/fault.h"
#include "resil/policy.h"
#include "sim/decode.h"
#include "sim/dispatch.h"
#include "sim/launch.h"
#include "virt/virt.h"

// Timing assertions are meaningless under the sanitizers' instrumentation.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define GPC_AIWC_TEST_SAN 1
#endif
#if !defined(GPC_AIWC_TEST_SAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define GPC_AIWC_TEST_SAN 1
#endif
#endif
#ifndef GPC_AIWC_TEST_SAN
#define GPC_AIWC_TEST_SAN 0
#endif

namespace gpc {
namespace {

using arch::Toolchain;
using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Val;
using kernel::Var;

// One simulator thread so block merge order (and the floating-point `flops`
// sum) is identical across runs — same reasoning as dispatch_test.cpp. The
// aiwc digest itself is order-independent by construction; the exactness
// assertions on outputs/stats are what need this.
const bool g_single_sim_thread = [] {
  ::setenv("GPC_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

/// RAII engine selector (dispatch_test.cpp): mode < 0 disables the
/// convergent fast path so every warp runs the min-PC reference scheduler.
class EngineGuard {
 public:
  explicit EngineGuard(int mode)
      : prev_mode_(sim::dispatch_mode()),
        prev_fast_(sim::convergent_fast_path_enabled()) {
    if (mode < 0) {
      sim::set_convergent_fast_path(false);
    } else {
      sim::set_convergent_fast_path(true);
      sim::set_dispatch_mode(static_cast<sim::DispatchMode>(mode));
    }
  }
  ~EngineGuard() {
    sim::set_dispatch_mode(prev_mode_);
    sim::set_convergent_fast_path(prev_fast_);
  }

 private:
  sim::DispatchMode prev_mode_;
  bool prev_fast_;
};

constexpr int kMinPc = -1;
constexpr int kEngines[] = {static_cast<int>(sim::DispatchMode::Switch),
                            static_cast<int>(sim::DispatchMode::Threaded),
                            static_cast<int>(sim::DispatchMode::Simd)};

std::string engine_name(int mode) {
  return mode < 0 ? "minpc"
                  : sim::to_string(static_cast<sim::DispatchMode>(mode));
}

/// RAII profiler mode switch: snapshots stay scoped to the test and the
/// process-exit report is disarmed again on the way out.
class ProfGuard {
 public:
  explicit ProfGuard(unsigned modes) : prev_(prof::recorder().modes()) {
    prof::recorder().set_modes(modes);
    prof::recorder().clear();
  }
  ~ProfGuard() {
    prof::recorder().clear();
    prof::recorder().set_modes(prev_);
  }

 private:
  unsigned prev_;
};

/// Every test starts and ends with the aiwc/resil/sanitize env knobs clean.
class AiwcTest : public ::testing::Test {
 protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }

  static void clean() {
    resil::plan().reset();
    resil::reset_counters();
    resil::set_policy_override(std::nullopt);
    ::unsetenv("GPC_AIWC");
    ::unsetenv("GPC_SIM_SANITIZE");
  }

  /// One injected OOR at the enqueue site, no retries: the degrade ladder
  /// goes straight to the split-launch path (resil_test.cpp idiom).
  static void arm_split() {
    resil::SiteSpec s;
    s.enabled = true;
    s.probability = 1.0;
    s.seed = 41;
    s.after = 0;
    s.count = 1;
    resil::plan().set(resil::Site::Enqueue, s);
  }
};

/// Global loads/stores, shared staging behind a barrier, a divergent guard
/// and a tid-dependent loop: every aiwc hook (issue / branch / global_access
/// / shared_access) fires, with real divergence in the occupancy histogram.
KernelDef probe_kernel() {
  KernelBuilder kb("aiwc_probe");
  auto out = kb.ptr_param("out", ir::Type::S32);
  auto in = kb.ptr_param("in", ir::Type::S32);
  auto s = kb.shared_array("s", ir::Type::S32, 64);
  Val t = kb.tid_x();
  kb.sts(s, t, kb.ld(in, kb.global_id_x()));
  kb.barrier();
  Var acc = kb.var_s32("acc");
  kb.set(acc, kb.lds(s, t));
  kb.if_((t & 1) == 1, [&] { kb.set(acc, Val(acc) + 100); });
  Var i = kb.var_s32("i");
  kb.set(i, kb.c32(0));
  kb.while_(Val(i) < (t & 7), [&] {
    kb.set(acc, Val(acc) * 3 + Val(i));
    kb.set(i, Val(i) + 1);
  });
  kb.st(out, kb.global_id_x(), acc);
  return kb.finish();
}

constexpr int kProbeGrid = 4;
constexpr int kProbeBlock = 64;

struct ProbeRun {
  std::vector<std::int32_t> out;
  sim::BlockStats stats;
  std::shared_ptr<aiwc::Features> feats;
};

ProbeRun run_probe(harness::DeviceSession& s) {
  const int n = kProbeGrid * kProbeBlock;
  const auto ck = s.compile(probe_kernel());
  std::vector<std::int32_t> in(n);
  for (int i = 0; i < n; ++i) in[i] = 3 * i + 1;
  const auto d_in = s.upload(std::span<const std::int32_t>(in));
  const auto d_out = s.alloc(static_cast<std::size_t>(n) * 4);
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out),
                                      sim::KernelArg::ptr(d_in)};
  const auto r =
      s.launch(ck, {kProbeGrid, 1, 1}, {kProbeBlock, 1, 1}, args);
  ProbeRun pr;
  pr.out.resize(n);
  s.download(d_out, std::span<std::int32_t>(pr.out));
  pr.stats = r.stats.total;
  pr.feats = r.aiwc;
  return pr;
}

// ---------------------------------------------------------------------------
// Mirrored tables and the env knob

TEST(AiwcTables, KindTableMirrorsSimDecode) {
  // aiwc never includes sim headers (layering), so its private copy of the
  // XKind name table and the Bar index must track sim/decode.h exactly.
  for (int k = 0; k < sim::kNumXKinds; ++k) {
    EXPECT_STREQ(aiwc::kind_name(static_cast<std::uint8_t>(k)),
                 sim::to_string(static_cast<sim::XKind>(k)))
        << "kind " << k;
  }
  EXPECT_EQ(aiwc::kKindBar, static_cast<std::uint8_t>(sim::XKind::Bar));
  EXPECT_STREQ(aiwc::kind_name(sim::kNumXKinds), "?");
  EXPECT_STREQ(aiwc::kind_name(255), "?");
}

TEST(AiwcEnv, EnabledFromEnvIsRereadPerCall) {
  ::unsetenv("GPC_AIWC");
  EXPECT_FALSE(aiwc::enabled_from_env());
  ::setenv("GPC_AIWC", "1", 1);
  EXPECT_TRUE(aiwc::enabled_from_env());
  ::setenv("GPC_AIWC", "0", 1);
  EXPECT_FALSE(aiwc::enabled_from_env());
  ::setenv("GPC_AIWC", "features", 1);
  EXPECT_TRUE(aiwc::enabled_from_env());
  ::unsetenv("GPC_AIWC");
}

// ---------------------------------------------------------------------------
// Reuse-distance stack and stride classification, against hand-computed
// oracles (driving BlockAiwc directly, no simulator involved)

TEST(AiwcUnit, ReuseDistanceMatchesHandComputedLruStack) {
  aiwc::Collector c(std::vector<aiwc::SiteInfo>(1), 1, 32, 32, 1, 0);
  aiwc::BlockAiwc b(c);
  // Lines touched in order 0, 64, 128, 0, 0, 64 (single-lane accesses):
  // three cold misses, then line 0 at stack distance 3 (bucket 1), line 0
  // again at distance 1 (bucket 0), line 64 at distance 3 (bucket 1).
  for (std::uint64_t a : {0ull, 64ull, 128ull, 0ull, 0ull, 64ull}) {
    b.global_access(&a, 1, 4);
  }
  b.flush();
  const auto f = c.take();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->reuse_cold, 3u);
  EXPECT_EQ(f->reuse_hist[0], 1u);
  EXPECT_EQ(f->reuse_hist[1], 2u);
  for (int i = 2; i < aiwc::kReuseBuckets; ++i) {
    EXPECT_EQ(f->reuse_hist[i], 0u) << "bucket " << i;
  }
  EXPECT_EQ(f->global_accesses, 6u);
  EXPECT_EQ(f->global_instrs, 6u);
  // Word-granular footprint (addr >> 2): 0 touched three times, 16 twice,
  // 32 once.
  EXPECT_EQ(f->global_words.size(), 3u);
  EXPECT_EQ(f->global_words.at(0), 3u);
  EXPECT_EQ(f->global_words.at(16), 2u);
  EXPECT_EQ(f->global_words.at(32), 1u);
}

TEST(AiwcUnit, ReuseStackGrowsPastInitialFenwickCapacity) {
  aiwc::Collector c(std::vector<aiwc::SiteInfo>(1), 1, 32, 32, 1, 0);
  aiwc::BlockAiwc b(c);
  // 2000 distinct lines overflow the 1024-slot initial time axis; the
  // re-access of line 0 then has exact stack distance 2000 (bucket
  // floor(log2 2000) = 10). A capacity bug would mis-count the prefix.
  constexpr std::uint64_t kLines = 2000;
  for (std::uint64_t i = 0; i < kLines; ++i) {
    const std::uint64_t a = i * 64;
    b.global_access(&a, 1, 4);
  }
  const std::uint64_t first = 0;
  b.global_access(&first, 1, 4);
  b.flush();
  const auto f = c.take();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->reuse_cold, kLines);
  std::uint64_t warm = 0;
  for (const auto v : f->reuse_hist) warm += v;
  EXPECT_EQ(warm, 1u);
  EXPECT_EQ(f->reuse_hist[10], 1u);
}

TEST(AiwcUnit, StrideClassesFollowLaneDeltaPriority) {
  aiwc::Collector c(std::vector<aiwc::SiteInfo>(1), 1, 32, 32, 1, 0);
  aiwc::BlockAiwc b(c);
  const std::uint64_t broadcast[4] = {256, 256, 256, 256};
  const std::uint64_t unit[4] = {0, 4, 8, 12};
  const std::uint64_t single = 4096;  // single-lane counts as unit
  const std::uint64_t strided[4] = {0, 128, 256, 384};
  const std::uint64_t gather[4] = {0, 4, 64, 8};
  b.global_access(broadcast, 4, 4);
  b.global_access(unit, 4, 4);
  b.global_access(&single, 1, 4);
  b.global_access(strided, 4, 4);
  b.global_access(gather, 4, 4);
  b.flush();
  const auto f = c.take();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->stride_class[aiwc::kBroadcast], 1u);
  EXPECT_EQ(f->stride_class[aiwc::kUnitStride], 2u);
  EXPECT_EQ(f->stride_class[aiwc::kStrided], 1u);
  EXPECT_EQ(f->stride_class[aiwc::kGather], 1u);
  EXPECT_EQ(f->global_instrs, 5u);
  EXPECT_EQ(f->global_accesses, 17u);
}

TEST(AiwcUnit, SharedAccessCountsWordsWithoutTouchingReuseStack) {
  aiwc::Collector c(std::vector<aiwc::SiteInfo>(1), 1, 32, 32, 1, 0);
  aiwc::BlockAiwc b(c);
  const std::uint64_t addrs[3] = {0, 4, 4};
  b.shared_access(addrs, 3);
  b.flush();
  const auto f = c.take();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->shared_accesses, 3u);
  EXPECT_EQ(f->shared_words.size(), 2u);
  EXPECT_EQ(f->shared_words.at(0), 1u);
  EXPECT_EQ(f->shared_words.at(1), 2u);
  // Shared traffic stays out of the global-side histograms.
  EXPECT_EQ(f->global_accesses, 0u);
  EXPECT_EQ(f->global_instrs, 0u);
  EXPECT_EQ(f->reuse_cold, 0u);
}

// ---------------------------------------------------------------------------
// finalize(): exported metric order, bounds, and the sum invariants the
// aiwc_trace_schema ctest re-checks on the JSONL side

TEST_F(AiwcTest, FinalizeKeepsMetricOrderBoundsAndSumInvariants) {
  ::setenv("GPC_AIWC", "1", 1);
  harness::DeviceSession s(arch::gtx480(), Toolchain::Cuda);
  const auto pr = run_probe(s);
  ASSERT_TRUE(pr.feats);
  const aiwc::Features& f = *pr.feats;

  // The metric order IS the exported schema (DESIGN.md §16);
  // tools/validate_trace.py hard-codes the same list.
  static const char* const kOrder[] = {
      "opcode_unique",       "opcode_entropy",
      "flop_issue_fraction", "fused_idiom_density",
      "branch_entropy",      "branch_divergence_rate",
      "simt_efficiency",     "workgroup_utilization",
      "barriers_per_warp",   "global_unique_words",
      "shared_unique_words", "mem_entropy_l0",
      "mem_entropy_l1",      "mem_entropy_l2",
      "mem_entropy_l3",      "mem_entropy_l4",
      "mem_entropy_l5",      "mem_entropy_l6",
      "mem_entropy_l7",      "mem_entropy_l8",
      "mem_entropy_l9",      "reuse_cold_fraction",
      "reuse_median_log2",   "stride_broadcast_fraction",
      "stride_unit_fraction", "stride_strided_fraction",
      "stride_gather_fraction"};
  const auto metrics = aiwc::finalize(f);
  ASSERT_EQ(metrics.size(), std::size(kOrder));
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(metrics[i].name, kOrder[i]) << "metric " << i;
  }
  const auto get = [&](const std::string& name) {
    for (const auto& m : metrics) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };

  // Raw-data invariants: issues == occupancy mass == the sim's own
  // instruction-mix total; lanes bounded by full warps; every global access
  // lands in exactly one reuse bucket (or cold); every warp-level global
  // instruction gets exactly one stride class.
  std::uint64_t occ = 0;
  for (const auto v : f.occupancy_hist) occ += v;
  EXPECT_EQ(occ, f.total_issues());
  std::uint64_t xkind_total = 0;
  for (int k = 0; k < sim::kNumXKinds; ++k) {
    xkind_total += pr.stats.xkind_issues[k];
  }
  EXPECT_EQ(f.total_issues(), xkind_total);
  EXPECT_LE(f.total_lanes(), f.total_issues() * 32);
  std::uint64_t warm = 0;
  for (const auto v : f.reuse_hist) warm += v;
  EXPECT_EQ(warm + f.reuse_cold, f.global_accesses);
  std::uint64_t stride_total = 0;
  for (const auto v : f.stride_class) stride_total += v;
  EXPECT_EQ(stride_total, f.global_instrs);
  EXPECT_GT(f.global_accesses, 0u);
  EXPECT_GT(f.shared_accesses, 0u);

  // Entropy bounds and the decimation curve (dropping address bits can only
  // lose information, so the curve is non-increasing in the level).
  EXPECT_GE(get("opcode_entropy"), 0.0);
  EXPECT_LE(get("opcode_entropy"), std::log2(get("opcode_unique")) + 1e-9);
  double prev = get("mem_entropy_l0");
  EXPECT_LE(prev, std::log2(get("global_unique_words")) + 1e-9);
  for (int level = 1; level < aiwc::kEntropyLevels; ++level) {
    const double h = get("mem_entropy_l" + std::to_string(level));
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, prev + 1e-9) << "level " << level;
    prev = h;
  }
  for (const char* frac :
       {"flop_issue_fraction", "fused_idiom_density", "branch_divergence_rate",
        "simt_efficiency", "workgroup_utilization", "reuse_cold_fraction",
        "stride_broadcast_fraction", "stride_unit_fraction",
        "stride_strided_fraction", "stride_gather_fraction"}) {
    EXPECT_GE(get(frac), 0.0) << frac;
    EXPECT_LE(get(frac), 1.0) << frac;
  }

  // The probe really diverged, staged through shared memory and hit its one
  // barrier per warp.
  EXPECT_GT(get("branch_entropy"), 0.0);
  EXPECT_LT(get("simt_efficiency"), 1.0);
  EXPECT_DOUBLE_EQ(get("barriers_per_warp"), 1.0);
  EXPECT_DOUBLE_EQ(get("workgroup_utilization"), 1.0);
}

// ---------------------------------------------------------------------------
// Arming: env knob, LaunchConfig, and the disarmed contract

TEST_F(AiwcTest, DisarmedLaunchesCarryNoFeaturesAndMatchArmedBitForBit) {
  harness::DeviceSession off(arch::gtx480(), Toolchain::Cuda);
  const auto off_run = run_probe(off);
  EXPECT_EQ(off_run.feats, nullptr);

  ::setenv("GPC_AIWC", "1", 1);
  harness::DeviceSession on(arch::gtx480(), Toolchain::Cuda);
  const auto on_run = run_probe(on);
  ASSERT_TRUE(on_run.feats);
  EXPECT_GT(on_run.feats->total_issues(), 0u);

  // Collection is observation only: outputs, instruction mix, flops and the
  // priced time are bit-identical with and without it.
  EXPECT_EQ(on_run.out, off_run.out);
  EXPECT_EQ(on.kernel_seconds(), off.kernel_seconds());
  for (int k = 0; k < sim::kNumXKinds; ++k) {
    EXPECT_EQ(on_run.stats.xkind_issues[k], off_run.stats.xkind_issues[k]);
  }
  EXPECT_EQ(on_run.stats.flops, off_run.stats.flops);
  EXPECT_EQ(on_run.stats.dram_read_bytes, off_run.stats.dram_read_bytes);
  EXPECT_EQ(on_run.stats.dram_write_bytes, off_run.stats.dram_write_bytes);
  EXPECT_EQ(on_run.stats.barrier_count, off_run.stats.barrier_count);
}

TEST_F(AiwcTest, LaunchConfigArmsCollectionWithoutTheEnvKnob) {
  const auto ck = compiler::compile(probe_kernel(), Toolchain::Cuda);
  sim::DeviceMemory mem(1 << 20);
  const int n = kProbeGrid * kProbeBlock;
  std::vector<std::int32_t> in(n, 7);
  const auto d_in = mem.alloc(static_cast<std::size_t>(n) * 4);
  mem.write(d_in, in.data(), static_cast<std::size_t>(n) * 4);
  const auto d_out = mem.alloc(static_cast<std::size_t>(n) * 4);
  sim::LaunchConfig cfg;
  cfg.grid = {kProbeGrid, 1, 1};
  cfg.block = {kProbeBlock, 1, 1};
  cfg.aiwc = true;
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out),
                                      sim::KernelArg::ptr(d_in)};
  const auto r = sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck,
                                    cfg, args, mem);
  ASSERT_TRUE(r.aiwc);
  EXPECT_GT(r.aiwc->total_issues(), 0u);
  EXPECT_EQ(r.aiwc->blocks, static_cast<std::uint64_t>(kProbeGrid));
  EXPECT_EQ(r.aiwc->warps,
            static_cast<std::uint64_t>(kProbeGrid * kProbeBlock / 32));
  EXPECT_EQ(r.aiwc->warp_size, 32);
}

TEST_F(AiwcTest, DisarmedHookSitesStayCheap) {
#if GPC_AIWC_TEST_SAN
  GTEST_SKIP() << "timing bound is meaningless under sanitizer builds";
#else
  // The disarmed path is one null test per hook site, so disarmed launches
  // must not be slower than armed ones (generous 2x + absolute slack: this
  // guards against pathological regressions, not small noise).
  const auto time_launches = [](bool armed) {
    if (armed) {
      ::setenv("GPC_AIWC", "1", 1);
    } else {
      ::unsetenv("GPC_AIWC");
    }
    harness::DeviceSession s(arch::gtx480(), Toolchain::Cuda);
    const auto ck = s.compile(probe_kernel());
    const int n = kProbeGrid * kProbeBlock;
    std::vector<std::int32_t> in(n, 1);
    const auto d_in = s.upload(std::span<const std::int32_t>(in));
    const auto d_out = s.alloc(static_cast<std::size_t>(n) * 4);
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(d_out),
                                        sim::KernelArg::ptr(d_in)};
    const auto once = [&] {
      (void)s.launch(ck, {kProbeGrid, 1, 1}, {kProbeBlock, 1, 1}, args);
    };
    once();  // warm up (decode cache, allocator)
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 40; ++i) once();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const double armed = time_launches(true);
  const double disarmed = time_launches(false);
  ::unsetenv("GPC_AIWC");
  EXPECT_LT(disarmed, armed * 2.0 + 0.05)
      << "disarmed " << disarmed << "s vs armed " << armed << "s";
#endif
}

// ---------------------------------------------------------------------------
// The determinism contract: one logical launch, one feature vector — no
// matter which engine ran it, which front-end compiled it, or how it was
// sliced up on the way

TEST_F(AiwcTest, DigestBitIdenticalAcrossEnginesFrontEndsAndShapes) {
  ::setenv("GPC_AIWC", "1", 1);
  for (const auto tc : {Toolchain::Cuda, Toolchain::OpenCl}) {
    SCOPED_TRACE(arch::to_string(tc));
    std::uint64_t ref = 0;
    std::vector<std::int32_t> ref_out;
    {
      EngineGuard guard(kMinPc);
      harness::DeviceSession s(arch::gtx480(), tc);
      const auto pr = run_probe(s);
      ASSERT_TRUE(pr.feats);
      ASSERT_GT(pr.feats->total_issues(), 0u);
      ref = pr.feats->digest();
      ref_out = pr.out;
    }
    for (const int mode : kEngines) {
      SCOPED_TRACE("engine " + engine_name(mode));
      EngineGuard guard(mode);
      {  // plain
        harness::DeviceSession s(arch::gtx480(), tc);
        const auto pr = run_probe(s);
        ASSERT_TRUE(pr.feats);
        EXPECT_EQ(pr.feats->digest(), ref);
        EXPECT_EQ(pr.out, ref_out);
      }
      {  // sanitizer on: the checking layer must not perturb the stream.
        // The session (and its device heap) is built BEFORE the knob is
        // set: GPC_SIM_SANITIZE at heap construction arms memcheck's
        // 256-byte allocation red zones, which legitimately shift every
        // buffer address (and with them the address-granular memory
        // features). What must be invariant is the instrumentation itself.
        harness::DeviceSession s(arch::gtx480(), tc);
        ::setenv("GPC_SIM_SANITIZE", "all", 1);
        const auto pr = run_probe(s);
        ::unsetenv("GPC_SIM_SANITIZE");
        ASSERT_TRUE(pr.feats);
        EXPECT_EQ(pr.feats->digest(), ref) << "sanitize=all";
      }
      {  // resil split launch: merged half-grids == the whole grid
        resil::plan().reset();
        arm_split();
        harness::DeviceSession s(arch::gtx480(), tc);
        resil::Policy p;
        p.max_retries = 0;
        p.degrade = true;
        s.set_policy(p);
        const auto pr = run_probe(s);
        resil::plan().reset();
        EXPECT_GT(s.degraded_events(), 0) << "injection did not split";
        ASSERT_TRUE(pr.feats);
        EXPECT_EQ(pr.feats->digest(), ref) << "split launch";
        EXPECT_EQ(pr.out, ref_out);
      }
      {  // virt force-sliced tenant: preempt/resume must not skew features
        virt::VirtConfig cfg;
        cfg.tenants = 1;
        cfg.slice = 1;
        cfg.force_slice = true;
        virt::VirtualDeviceManager mgr(cfg);
        harness::TenantSession s(arch::gtx480(), tc, mgr.tenant(0));
        const auto pr = run_probe(s);
        EXPECT_GT(mgr.tenant(0).stats().preemptions, 0u)
            << "slicing did not actually preempt";
        ASSERT_TRUE(pr.feats);
        EXPECT_EQ(pr.feats->digest(), ref) << "force-sliced tenant";
      }
    }
  }
}

// Same contract end-to-end through the profiler: a real benchmark's
// per-kernel feature stream (as the prof recorder captured it, the source of
// aiwc.jsonl and bench/table_aiwc_features) is engine-invariant.
TEST_F(AiwcTest, RecorderFeatureStreamEngineInvariantOnRealBenchmark) {
  ::setenv("GPC_AIWC", "1", 1);
  ProfGuard prof_guard(prof::kCounters);
  const bench::Benchmark& b = bench::benchmark_by_name("MxM");
  bench::Options opts;
  opts.scale = 0.25;
  const auto digests = [&] {
    prof::recorder().clear();
    const auto r = b.run(arch::gtx480(), Toolchain::Cuda, opts);
    EXPECT_EQ(r.status, "OK");
    std::map<std::string, aiwc::Features> per_kernel;
    for (const prof::Event* e : prof::recorder().snapshot()) {
      if (e->kind == prof::Event::Kind::Launch && e->launch->aiwc) {
        per_kernel[e->launch->kernel].merge(*e->launch->aiwc);
      }
    }
    std::map<std::string, std::uint64_t> d;
    for (const auto& [kernel, feats] : per_kernel) d[kernel] = feats.digest();
    return d;
  };
  std::map<std::string, std::uint64_t> ref;
  {
    EngineGuard guard(kMinPc);
    ref = digests();
  }
  ASSERT_FALSE(ref.empty()) << "no launch carried features";
  for (const int mode : kEngines) {
    SCOPED_TRACE("engine " + engine_name(mode));
    EngineGuard guard(mode);
    EXPECT_EQ(digests(), ref);
  }
}

// ---------------------------------------------------------------------------
// gpc::prof satellite: span-latency percentiles from the lock-free
// log2-bucket histogram

TEST_F(AiwcTest, SpanLatencyPercentilesComeFromLogBuckets) {
  ProfGuard prof_guard(prof::kTrace);
  auto& rec = prof::recorder();
  EXPECT_EQ(rec.span_latency("api").count, 0u);
  // 90 spans of 100 ns (bucket 7), 8 of 1000 ns (bucket 10), 2 of 200 us
  // (bucket 18). Percentiles report bucket upper bounds: 2^b - 1.
  for (int i = 0; i < 90; ++i) {
    rec.record_span(prof::Track::Host, "api", "launch", 0, 100);
  }
  for (int i = 0; i < 8; ++i) {
    rec.record_span(prof::Track::Host, "api", "launch", 0, 1000);
  }
  for (int i = 0; i < 2; ++i) {
    rec.record_span(prof::Track::Host, "api", "launch", 0, 200000);
  }
  const auto p = rec.span_latency("api");
  EXPECT_EQ(p.count, 100u);
  EXPECT_EQ(p.p50_ns, 127);
  EXPECT_EQ(p.p95_ns, 1023);
  EXPECT_EQ(p.p99_ns, 262143);
  // Categories are independent slots; only launch/memcpy/build spans feed
  // percentile histograms.
  EXPECT_EQ(rec.span_latency("xfer").count, 0u);
  EXPECT_EQ(rec.span_latency("compile").count, 0u);
  EXPECT_EQ(rec.span_latency("kernel").count, 0u);
  rec.clear();
  EXPECT_EQ(rec.span_latency("api").count, 0u);
}

}  // namespace
}  // namespace gpc
