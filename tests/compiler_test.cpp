// Front-end policy tests: CSE, constant folding, literal pools, mad/fma
// fusion, unroll handling, if-conversion/predication, software sin/cos, and
// the PTXAS clean-up pass.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/device_spec.h"
#include "compiler/pipeline.h"
#include "compiler/ptxas.h"
#include "cuda/runtime.h"
#include "ir/function.h"
#include "kernel/builder.h"
#include "sim/launch.h"

namespace gpc {
namespace {

using arch::Toolchain;
using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

ir::Histogram hist(const compiler::CompiledKernel& ck) {
  return ir::Histogram::of(ck.ptx);
}

// Runs a compiled kernel with one thread and returns the f32 stored to out[0].
// Passes `input` as a second f32 argument when the kernel declares one.
float run_scalar_f32(const compiler::CompiledKernel& ck, float input) {
  sim::DeviceMemory mem(1 << 20);
  const std::uint64_t out = mem.alloc(64);
  sim::LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {1, 1, 1};
  std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(out)};
  if (ck.fn.params.size() > 1) args.push_back(sim::KernelArg::f32(input));
  sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args, mem);
  float v = 0;
  mem.read(out, &v, 4);
  return v;
}

KernelDef sincos_kernel() {
  KernelBuilder kb("sc");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  kb.st(out, kb.c32(0), kb.sin_(x) + kb.cos_(x));
  return kb.finish();
}

TEST(FrontEnds, SoftwareSinCosMatchesLibmClosely) {
  // The OpenCL front end expands sin/cos into polynomials; results must stay
  // within float-polynomial tolerance of libm over a wide range.
  auto cl = compiler::compile(sincos_kernel(), Toolchain::OpenCl);
  for (float x : {-25.0f, -3.14159f, -1.0f, -0.1f, 0.0f, 0.5f, 1.5708f, 2.5f,
                  10.0f, 77.7f}) {
    const float expect = std::sin(x) + std::cos(x);
    EXPECT_NEAR(run_scalar_f32(cl, x), expect, 2e-4f) << "x=" << x;
  }
}

TEST(FrontEnds, SoftwareSinCosInflatesInstructionMix) {
  auto cu = compiler::compile(sincos_kernel(), Toolchain::Cuda);
  auto cl = compiler::compile(sincos_kernel(), Toolchain::OpenCl);
  const auto hc = hist(cu);
  const auto ho = hist(cl);
  // CUDA: two SFU instructions. OpenCL: polynomial expansion with fma,
  // logic, setp/selp, and a constant literal pool.
  EXPECT_EQ(hc.count("sin"), 1);
  EXPECT_EQ(hc.count("cos"), 1);
  EXPECT_EQ(ho.count("sin"), 0);
  EXPECT_EQ(ho.count("cos"), 0);
  EXPECT_GT(ho.count("fma"), 8);
  EXPECT_GT(ho.count("and"), 0);
  EXPECT_GT(ho.count("selp"), 0);
  EXPECT_GT(ho.count("ld.const"), 0);
  EXPECT_EQ(hc.count("ld.const"), 0);
  EXPECT_GT(ho.class_total(ir::InstrClass::Arithmetic),
            2 * hc.class_total(ir::InstrClass::Arithmetic));
}

TEST(FrontEnds, CudaFoldsConstantTranscendentals) {
  // sin(const) folds at compile time under CUDA only.
  KernelBuilder kb("fold");
  auto out = kb.ptr_param("out", ir::Type::F32);
  kb.st(out, kb.c32(0), kb.sin_(kb.cf(0.5)) * kb.f32_param("x"));
  auto def = kb.finish();
  auto cu = compiler::compile(def, Toolchain::Cuda);
  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cu).count("sin"), 0);
  EXPECT_GT(hist(cl).count("fma") + hist(cl).count("mul"), 0);
  EXPECT_NEAR(run_scalar_f32(cu, 2.0f), 2.0f * std::sin(0.5f), 1e-6f);
  EXPECT_NEAR(run_scalar_f32(cl, 2.0f), 2.0f * std::sin(0.5f), 2e-4f);
}

TEST(FrontEnds, CseAcrossStatementsOnlyForCuda) {
  // The same subexpression used by THREE separate statements: the CUDA
  // front end computes it once; OpenCL's statement-local sharing recomputes
  // it per statement (the Table V arithmetic inflation).
  KernelBuilder kb("cse");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  Val e = x * x + x;  // hash-consed: the same node every time
  kb.st(out, kb.c32(0), e);
  kb.st(out, kb.c32(1), e);
  kb.st(out, kb.c32(2), e);
  auto def = kb.finish();
  auto cu = compiler::compile(def, Toolchain::Cuda);
  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cu).count("mad"), 4);  // 1 compute + 3 mad.wide addresses
  EXPECT_EQ(hist(cl).count("fma"), 3);  // recomputed per statement

  // Within ONE statement both front ends share the DAG.
  KernelBuilder kb2("cse2");
  auto out2 = kb2.ptr_param("out", ir::Type::F32);
  Val x2 = kb2.f32_param("x");
  Val e2 = x2 * x2 + x2;
  kb2.st(out2, kb2.c32(0), e2 + e2 + e2);
  auto cl2 = compiler::compile(kb2.finish(), Toolchain::OpenCl);
  EXPECT_EQ(hist(cl2).count("fma"), 1) << "statement-local DAG sharing";
}

TEST(FrontEnds, MadVsFmaFusion) {
  KernelBuilder kb("fuse");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  Val y = kb.f32_param("y");
  kb.st(out, kb.c32(0), x * y + kb.cf(3.0));
  auto def = kb.finish();
  // One f32 mad plus the mad.wide address computation of the store.
  EXPECT_EQ(hist(compiler::compile(def, Toolchain::Cuda)).count("mad"), 2);
  EXPECT_EQ(hist(compiler::compile(def, Toolchain::OpenCl)).count("fma"), 1);
}

TEST(FrontEnds, CudaDivBecomesRcpMul) {
  KernelBuilder kb("div");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  kb.st(out, kb.c32(0), kb.cf(1.0) / (x + kb.cf(1.0)));
  auto def = kb.finish();
  const auto hc = hist(compiler::compile(def, Toolchain::Cuda));
  const auto ho = hist(compiler::compile(def, Toolchain::OpenCl));
  EXPECT_EQ(hc.count("div"), 0);  // Table V: CUDA div = 0
  EXPECT_EQ(hc.count("rcp"), 1);
  EXPECT_EQ(ho.count("div"), 1);
}

TEST(FrontEnds, AddressChainsDifferButLoadsMatch) {
  KernelBuilder kb("addr");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val gid = kb.global_id_x();
  kb.st(out, gid, kb.ld(in, gid) * kb.cf(2.0));
  auto def = kb.finish();
  const auto hc = hist(compiler::compile(def, Toolchain::Cuda));
  const auto ho = hist(compiler::compile(def, Toolchain::OpenCl));
  // Table V: ld.global/st.global counts are identical across front ends.
  EXPECT_EQ(hc.count("ld.global"), ho.count("ld.global"));
  EXPECT_EQ(hc.count("st.global"), ho.count("st.global"));
  // OpenCL lowers addresses with shl/and chains; CUDA uses mad.wide.
  EXPECT_GT(ho.count("shl"), 0);
  EXPECT_GT(ho.count("and"), 0);
  EXPECT_EQ(hc.count("shl"), 0);
  EXPECT_EQ(hc.count("and"), 0);
}

TEST(FrontEnds, UnrollPragmaIsPerToolchain) {
  auto make = [](Unroll u) {
    KernelBuilder kb("unroll");
    auto out = kb.ptr_param("out", ir::Type::F32);
    Var acc = kb.var_f32("acc");
    kb.set(acc, kb.cf(0.0));
    Var i = kb.var_s32("i");
    kb.for_(i, 0, kb.c32(8), 1, u,
            [&] { kb.set(acc, Val(acc) + kb.cast(Val(i), ir::Type::F32)); });
    kb.st(out, kb.c32(0), acc);
    return kb.finish();
  };
  // Pragma only on the CUDA side (the paper's FDTD situation).
  auto def = make(Unroll::cuda_only(-1));
  auto cu = compiler::compile(def, Toolchain::Cuda);
  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cu).count("bra"), 0) << "fully unrolled";
  EXPECT_GT(hist(cl).count("bra"), 0) << "rolled loop keeps branches";
  EXPECT_GT(hist(cl).count("setp"), 0);
  // Both compute the same value.
  EXPECT_EQ(run_scalar_f32(cu, 0), 28.0f);
  EXPECT_EQ(run_scalar_f32(cl, 0), 28.0f);
}

TEST(FrontEnds, OpenClHonoursItsOwnPragma) {
  KernelBuilder kb("unroll2");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Var acc = kb.var_f32("acc");
  kb.set(acc, kb.cf(1.0));
  Var i = kb.var_s32("i");
  kb.for_(i, 0, kb.c32(4), 1, Unroll::both(-1),
          [&] { kb.set(acc, Val(acc) * kb.cf(2.0)); });
  kb.st(out, kb.c32(0), acc);
  auto def = kb.finish();
  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cl).count("bra"), 0) << "pragma'd loop unrolls in OpenCL too";
  EXPECT_EQ(run_scalar_f32(cl, 0), 16.0f);
}

TEST(FrontEnds, PartialUnrollKeepsSemanticsForRuntimeBounds) {
  // #pragma unroll 3 over a runtime trip count that is NOT divisible by 3:
  // main unrolled loop + remainder loop must cover every iteration.
  KernelBuilder kb("punroll");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val n = kb.s32_param("n");
  Var acc = kb.var_f32("acc");
  kb.set(acc, kb.cf(0.0));
  Var i = kb.var_s32("i");
  kb.for_(i, 0, n, 1, Unroll::both(3),
          [&] { kb.set(acc, Val(acc) + kb.cf(1.0)); });
  kb.st(out, kb.c32(0), acc);
  auto def = kb.finish();

  for (auto tc : {Toolchain::Cuda, Toolchain::OpenCl}) {
    auto ck = compiler::compile(def, tc);
    for (int n_val : {0, 1, 2, 3, 7, 9, 10}) {
      sim::DeviceMemory mem(1 << 20);
      const std::uint64_t addr = mem.alloc(16);
      sim::LaunchConfig cfg;
      cfg.grid = {1, 1, 1};
      cfg.block = {1, 1, 1};
      std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(addr),
                                          sim::KernelArg::s32(n_val)};
      sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                         mem);
      float v = -1;
      mem.read(addr, &v, 4);
      EXPECT_EQ(v, static_cast<float>(n_val))
          << "toolchain=" << arch::to_string(tc) << " n=" << n_val;
    }
  }
}

TEST(FrontEnds, IfConversionPoliciesDiffer) {
  KernelBuilder kb("ifc");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  Var best = kb.var_f32("best");
  kb.set(best, kb.cf(0.0));
  kb.if_(x > kb.cf(1.0), [&] { kb.set(best, x); });
  kb.st(out, kb.c32(0), best);
  auto def = kb.finish();
  auto cu = compiler::compile(def, Toolchain::Cuda);
  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cu).count("bra"), 0) << "CUDA predicates the small body";
  EXPECT_EQ(hist(cl).count("bra"), 0) << "OpenCL if-converts to selp";
  EXPECT_GT(hist(cl).count("selp"), 0);
  EXPECT_EQ(run_scalar_f32(cu, 3.0f), 3.0f);
  EXPECT_EQ(run_scalar_f32(cu, 0.5f), 0.0f);
  EXPECT_EQ(run_scalar_f32(cl, 3.0f), 3.0f);
  EXPECT_EQ(run_scalar_f32(cl, 0.5f), 0.0f);
}

TEST(FrontEnds, GuardedLoadsAreNeverIfConverted) {
  // if (p) v = load(...) must not execute the load speculatively.
  KernelBuilder kb("guard");
  auto in = kb.ptr_param("in", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val x = kb.f32_param("x");
  Var v = kb.var_f32("v");
  kb.set(v, kb.cf(-1.0));
  // Index -1000000 would fault if the load executed unconditionally.
  kb.if_(x > kb.cf(0.0), [&] { kb.set(v, kb.ld(in, kb.c32(-250000))); });
  kb.st(out, kb.c32(0), v);
  auto def = kb.finish();
  for (auto tc : {Toolchain::Cuda, Toolchain::OpenCl}) {
    auto ck = compiler::compile(def, tc);
    sim::DeviceMemory mem(1 << 20);
    const std::uint64_t in_addr = mem.alloc(64);
    const std::uint64_t out_addr = mem.alloc(64);
    sim::LaunchConfig cfg;
    cfg.grid = {1, 1, 1};
    cfg.block = {1, 1, 1};
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(in_addr),
                                        sim::KernelArg::ptr(out_addr),
                                        sim::KernelArg::f32(-1.0f)};
    EXPECT_NO_THROW(sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(),
                                       ck, cfg, args, mem))
        << arch::to_string(tc);
  }
}

TEST(Ptxas, EliminatesRedundantMovsButKeepsPtxHistogram) {
  KernelBuilder kb("movs");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Var a = kb.var_f32("a");
  kb.set(a, kb.cf(4.0));
  kb.set(a, Val(a) * kb.cf(2.0));
  kb.st(out, kb.c32(0), a);
  auto def = kb.finish();
  auto cu = compiler::compile(def, Toolchain::Cuda);
  const int ptx_movs = hist(cu).count("mov");
  const int exe_movs = ir::Histogram::of(cu.fn).count("mov");
  EXPECT_GT(ptx_movs, 0) << "front-end PTX is mov-verbose";
  EXPECT_LT(exe_movs, ptx_movs) << "ptxas cleans movs for execution";
  EXPECT_EQ(run_scalar_f32(cu, 0), 8.0f);
}

TEST(Ptxas, RegisterEstimateGrowsWithLiveValues) {
  auto make = [](int vars) {
    KernelBuilder kb("regs");
    auto out = kb.ptr_param("out", ir::Type::F32);
    std::vector<Var> vs;
    for (int i = 0; i < vars; ++i) {
      vs.push_back(kb.var_f32("v" + std::to_string(i)));
      kb.set(vs.back(), kb.f32_param("x") * kb.cf(i + 1.0));
    }
    Val sum = vs[0];
    for (int i = 1; i < vars; ++i) sum = sum + Val(vs[i]);
    kb.st(out, kb.c32(0), sum);
    return kb.finish();
  };
  const int small = compiler::compile(make(2), Toolchain::Cuda).reg_estimate;
  const int large = compiler::compile(make(40), Toolchain::Cuda).reg_estimate;
  EXPECT_GT(large, small + 20);
}

TEST(Ptxas, BranchTargetsSurviveCompaction) {
  // A loop that sums 0..9; after mov elimination the backward branch target
  // must still be correct.
  KernelBuilder kb("loop");
  auto out = kb.ptr_param("out", ir::Type::F32);
  Val n = kb.s32_param("n");
  Var acc = kb.var_f32("acc");
  kb.set(acc, kb.cf(0.0));
  Var i = kb.var_s32("i");
  kb.for_(i, 0, n, 1, Unroll::none(), [&] {
    kb.set(acc, Val(acc) + kb.cast(Val(i), ir::Type::F32));
  });
  kb.st(out, kb.c32(0), acc);
  auto def = kb.finish();
  for (auto tc : {Toolchain::Cuda, Toolchain::OpenCl}) {
    auto ck = compiler::compile(def, tc);
    sim::DeviceMemory mem(1 << 20);
    const std::uint64_t addr = mem.alloc(16);
    sim::LaunchConfig cfg;
    cfg.grid = {1, 1, 1};
    cfg.block = {1, 1, 1};
    std::vector<sim::KernelArg> args = {sim::KernelArg::ptr(addr),
                                        sim::KernelArg::s32(10)};
    sim::launch_kernel(arch::gtx480(), arch::cuda_runtime(), ck, cfg, args,
                       mem);
    float v = 0;
    mem.read(addr, &v, 4);
    EXPECT_EQ(v, 45.0f) << arch::to_string(tc);
  }
}

TEST(Textures, LowerToTexOnCudaAndFallbackOtherwise) {
  KernelBuilder kb("texk");
  auto data = kb.ptr_param("data", ir::Type::F32);
  auto out = kb.ptr_param("out", ir::Type::F32);
  auto tex = kb.texture("dataTex", ir::Type::F32);
  Val gid = kb.global_id_x();
  kb.st(out, gid, kb.tex1d(tex, data, gid));
  auto def = kb.finish();

  auto cu = compiler::compile(def, Toolchain::Cuda);
  EXPECT_EQ(hist(cu).count("tex"), 1);
  EXPECT_EQ(cu.num_textures, 1);

  compiler::CompileOptions no_tex;
  no_tex.enable_textures = false;
  auto cu_plain = compiler::compile(def, Toolchain::Cuda, no_tex);
  EXPECT_EQ(hist(cu_plain).count("tex"), 0);
  EXPECT_EQ(hist(cu_plain).count("ld.global"), 1);

  auto cl = compiler::compile(def, Toolchain::OpenCl);
  EXPECT_EQ(hist(cl).count("tex"), 0) << "OpenCL has no texture path";
}

}  // namespace
}  // namespace gpc
