// gpc::serve tests: GPC_SERVE config parsing (strict rejection of typos),
// submit/complete/readback through both front-ends, the content-addressed
// compiled-kernel cache (second submission of the same AST + front-end +
// device never recompiles), bounded admission (queue-full SHED), deadline
// handling (pre-dequeue shed and the deadline->step-budget watchdog abort),
// the per-device circuit breaker state machine, per-job thread-local fault
// plans, gpc::virt quota pressure, and exactly-once completion accounting
// through shutdown. Labelled "serve" in ctest and run under ThreadSanitizer
// by tools/run_tsan.sh — the queue handoff and completion latch must be
// clean.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "arch/device_spec.h"
#include "common/error.h"
#include "harness/session.h"
#include "kernel/builder.h"
#include "resil/fault.h"
#include "resil/policy.h"
#include "serve/cache.h"
#include "serve/serve.h"
#include "virt/virt.h"

namespace gpc {
namespace {

using arch::Toolchain;
using kernel::KernelBuilder;
using kernel::KernelDef;
using kernel::Unroll;
using kernel::Val;
using kernel::Var;

// Deterministic block execution for the differential assertions (same
// rationale as virt_test.cpp): one sim worker means flat block order.
const bool g_single_threaded = [] {
  ::setenv("GPC_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }

  static void clean() {
    resil::FaultPlan::instance().reset();
    resil::reset_counters();
    resil::set_policy_override(std::nullopt);
    ::unsetenv("GPC_SERVE");
    ::unsetenv("GPC_RETRY");
    ::unsetenv("GPC_DEGRADE");
    ::unsetenv("GPC_WATCHDOG");
    ::unsetenv("GPC_SIM_STEP_BUDGET");
  }
};

std::shared_ptr<const KernelDef> copy_kernel(const std::string& name = "copy1") {
  KernelBuilder kb(name);
  auto in = kb.ptr_param("in", ir::Type::S32);
  auto out = kb.ptr_param("out", ir::Type::S32);
  kb.st(out, kb.global_id_x(), kb.ld(in, kb.global_id_x()));
  return std::make_shared<KernelDef>(kb.finish());
}

std::shared_ptr<const KernelDef> scale_kernel(int factor) {
  KernelBuilder kb("scale");
  auto in = kb.ptr_param("in", ir::Type::S32);
  auto out = kb.ptr_param("out", ir::Type::S32);
  kb.st(out, kb.global_id_x(), kb.ld(in, kb.global_id_x()) * kb.c32(factor));
  return std::make_shared<KernelDef>(kb.finish());
}

std::shared_ptr<const KernelDef> spin_kernel(int iters) {
  KernelBuilder kb("spin");
  auto out = kb.ptr_param("out", ir::Type::S32);
  Var acc = kb.var_s32("acc");
  kb.set(acc, kb.c32(0));
  Var i = kb.var_s32("i");
  kb.for_(i, 0, kb.c32(iters), 1, Unroll::none(),
          [&] { kb.set(acc, Val(acc) + Val(i)); });
  kb.st(out, kb.c32(0), acc);
  return std::make_shared<KernelDef>(kb.finish());
}

std::vector<unsigned char> s32_bytes(const std::vector<std::int32_t>& v) {
  std::vector<unsigned char> out(v.size() * sizeof(std::int32_t));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

std::vector<std::int32_t> s32_values(const std::vector<unsigned char>& bytes) {
  std::vector<std::int32_t> out(bytes.size() / sizeof(std::int32_t));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

/// A ready-to-submit copy job over `n` elements with input i -> i * 3.
serve::JobSpec copy_job(const std::shared_ptr<const KernelDef>& k, int n,
                        Toolchain tc = Toolchain::Cuda) {
  std::vector<std::int32_t> in(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = i * 3;
  serve::JobSpec job;
  job.kernel = k;
  job.device = &arch::gtx480();
  job.toolchain = tc;
  job.grid = {std::max(1, n / 32), 1, 1};
  job.block = {32, 1, 1};
  job.args.push_back(serve::JobArg::buffer(s32_bytes(in), /*readback=*/false));
  job.args.push_back(serve::JobArg::buffer(
      s32_bytes(std::vector<std::int32_t>(static_cast<std::size_t>(n), 0)),
      /*readback=*/true));
  return job;
}

std::unique_ptr<resil::FaultPlan> plan_with(resil::Site site, double p,
                                            std::uint64_t seed,
                                            std::uint64_t count =
                                                ~std::uint64_t{0}) {
  auto plan = std::make_unique<resil::FaultPlan>();
  resil::SiteSpec s;
  s.enabled = true;
  s.probability = p;
  s.seed = seed;
  s.count = count;
  plan->set(site, s);
  return plan;
}

// ---------------------------------------------------------------------------
// GPC_SERVE config grammar

TEST_F(ServeTest, ConfigParsesFullSpec) {
  const serve::ServeConfig cfg = serve::parse_serve_config(
      "workers=4,shards=2,queue_cap=256,deadline_ms=100.5,breaker=5,"
      "breaker_cooldown_ms=25,batch=16,steps_per_ms=5000");
  EXPECT_EQ(cfg.workers, 4);
  EXPECT_EQ(cfg.shards, 2);
  EXPECT_EQ(cfg.queue_cap, 256);
  EXPECT_DOUBLE_EQ(cfg.deadline_ms, 100.5);
  EXPECT_EQ(cfg.breaker, 5);
  EXPECT_DOUBLE_EQ(cfg.breaker_cooldown_ms, 25.0);
  EXPECT_EQ(cfg.batch, 16);
  EXPECT_EQ(cfg.steps_per_ms, 5000u);
}

TEST_F(ServeTest, ConfigDefaultsWhenEmptyOrUnset) {
  const serve::ServeConfig cfg = serve::parse_serve_config("");
  EXPECT_EQ(cfg.workers, 0);
  EXPECT_EQ(cfg.shards, 1);
  EXPECT_EQ(cfg.queue_cap, 1024);
  EXPECT_DOUBLE_EQ(cfg.deadline_ms, 0.0);
  EXPECT_EQ(cfg.breaker, 0);
  const serve::ServeConfig env = serve::serve_config_from_env();
  EXPECT_EQ(env.queue_cap, 1024);
}

TEST_F(ServeTest, ConfigReadsEnvironment) {
  ::setenv("GPC_SERVE", "workers=2,queue_cap=8", 1);
  const serve::ServeConfig cfg = serve::serve_config_from_env();
  ::unsetenv("GPC_SERVE");
  EXPECT_EQ(cfg.workers, 2);
  EXPECT_EQ(cfg.queue_cap, 8);
  EXPECT_EQ(cfg.shards, 1);  // untouched keys keep defaults
}

TEST_F(ServeTest, ConfigRejectsTypos) {
  // A serving-config typo must not silently serve with defaults.
  EXPECT_THROW(serve::parse_serve_config("wrokers=4"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("workers"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("workers=abc"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("workers=-1"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("shards=0"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("queue_cap=0"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("deadline_ms=-5"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("deadline_ms=5x"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("batch=0"), InvalidArgument);
  EXPECT_THROW(serve::parse_serve_config("steps_per_ms=0"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Submit / complete / readback

TEST_F(ServeTest, SubmitCompletesWithReadback) {
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::Server server(cfg);
  const auto k = copy_kernel();
  serve::JobHandle h = server.submit(copy_job(k, 64));
  ASSERT_TRUE(h.valid());
  const serve::Completion& c = h.wait();
  EXPECT_EQ(c.cls, serve::JobClass::Ok);
  EXPECT_EQ(c.status, "OK");
  EXPECT_TRUE(c.detail.empty());
  ASSERT_EQ(c.outputs.size(), 1u);
  const std::vector<std::int32_t> out = s32_values(c.outputs[0]);
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
  EXPECT_GT(c.result.stats.total.mem_issues, 0u);
  server.shutdown();
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.ok, 1u);
}

TEST_F(ServeTest, ServesBothFrontEnds) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::Server server(cfg);
  const auto k = copy_kernel();
  serve::JobHandle cu = server.submit(copy_job(k, 32, Toolchain::Cuda));
  serve::JobSpec ocl_job = copy_job(k, 32, Toolchain::OpenCl);
  ocl_job.device = &arch::hd5870();
  serve::JobHandle cl = server.submit(std::move(ocl_job));
  EXPECT_EQ(cu.wait().cls, serve::JobClass::Ok);
  EXPECT_EQ(cl.wait().cls, serve::JobClass::Ok);
  // Results are the direct-session results, bit for bit.
  EXPECT_EQ(s32_values(cu.wait().outputs[0]), s32_values(cl.wait().outputs[0]));
}

TEST_F(ServeTest, MalformedJobsAreRejectedNotShed) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::Server server(cfg);
  serve::JobSpec job;  // no kernel / device
  EXPECT_THROW(server.submit(std::move(job)), InvalidArgument);
  serve::JobSpec tenant_job = copy_job(copy_kernel(), 32);
  tenant_job.tenant = 0;  // no attach_virt
  EXPECT_THROW(server.submit(std::move(tenant_job)), InvalidArgument);
  EXPECT_EQ(server.stats().completed, 0u);
}

TEST_F(ServeTest, OnCompleteCallbackFiresExactlyOnce) {
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::Server server(cfg);
  std::atomic<int> calls{0};
  const auto k = copy_kernel();
  constexpr int kJobs = 16;
  std::vector<serve::JobHandle> handles;
  for (int i = 0; i < kJobs; ++i) {
    serve::JobSpec job = copy_job(k, 32);
    job.on_complete = [&](const serve::Completion&) {
      calls.fetch_add(1, std::memory_order_relaxed);
    };
    handles.push_back(server.submit(std::move(job)));
  }
  server.drain();
  EXPECT_EQ(calls.load(), kJobs);
  for (const auto& h : handles) EXPECT_TRUE(h.done());
}

// ---------------------------------------------------------------------------
// Compiled-kernel cache

TEST_F(ServeTest, AstHashIsStructural) {
  const auto a = copy_kernel();
  const auto b = copy_kernel();  // built independently, same structure
  EXPECT_EQ(serve::ast_hash(*a), serve::ast_hash(*b));
  EXPECT_NE(serve::ast_hash(*a), serve::ast_hash(*scale_kernel(2)));
  // Same structure, different literal -> different code -> different hash.
  EXPECT_NE(serve::ast_hash(*scale_kernel(2)), serve::ast_hash(*scale_kernel(3)));
  // The kernel's name names the compiled artefact and enters the hash.
  EXPECT_NE(serve::ast_hash(*copy_kernel("copy1")),
            serve::ast_hash(*copy_kernel("copy2")));
}

TEST_F(ServeTest, SecondSubmissionNeverRecompiles) {
  serve::ServeConfig cfg;
  cfg.workers = 1;  // serialized, so hit/miss attribution is deterministic
  serve::Server server(cfg);
  const auto k = copy_kernel();

  const serve::JobHandle h1 = server.submit(copy_job(k, 32));
  const serve::Completion& first = h1.wait();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(server.cache_stats().misses, 1u);
  EXPECT_EQ(server.cache_stats().hits, 0u);

  // Same AST + front-end + device: MUST be a cache hit, no recompile.
  const serve::JobHandle h2 = server.submit(copy_job(k, 32));
  const serve::Completion& second = h2.wait();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(server.cache_stats().misses, 1u);
  EXPECT_EQ(server.cache_stats().hits, 1u);

  // A structurally identical def built by a different client also hits.
  const serve::JobHandle h3 = server.submit(copy_job(copy_kernel(), 32));
  EXPECT_TRUE(h3.wait().cache_hit);
  EXPECT_EQ(server.cache_stats().misses, 1u);

  // Same AST through the other front-end: distinct compiled artefact.
  serve::JobSpec ocl_job = copy_job(k, 32, Toolchain::OpenCl);
  ocl_job.device = &arch::hd5870();
  const serve::JobHandle h4 = server.submit(std::move(ocl_job));
  EXPECT_FALSE(h4.wait().cache_hit);
  EXPECT_EQ(server.cache_stats().misses, 2u);

  // Cached results are the same results: outputs bit-identical.
  EXPECT_EQ(s32_values(first.outputs[0]), s32_values(second.outputs[0]));
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.cache_misses, 2u);
}

// ---------------------------------------------------------------------------
// Bounded admission + deadlines

TEST_F(ServeTest, QueueFullShedsInsteadOfBlocking) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.queue_cap = 2;
  serve::Server server(cfg);
  server.pause();
  // Let the worker observe the pause before we fill the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto k = copy_kernel();
  serve::JobHandle a = server.submit(copy_job(k, 32));
  serve::JobHandle b = server.submit(copy_job(k, 32));
  serve::JobHandle c = server.submit(copy_job(k, 32));  // over capacity
  ASSERT_TRUE(c.done());  // shed synchronously on the submitting thread
  EXPECT_EQ(c.wait().cls, serve::JobClass::Shed);
  EXPECT_NE(c.wait().detail.find("admission rejected"), std::string::npos);
  server.resume();
  EXPECT_EQ(a.wait().cls, serve::JobClass::Ok);
  EXPECT_EQ(b.wait().cls, serve::JobClass::Ok);
  server.shutdown();
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.submitted, 3u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.ok, 2u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.max_queue_depth, 2u);
  EXPECT_EQ(resil::counters().shed.load(), 1u);
}

TEST_F(ServeTest, ExpiredDeadlineShedsBeforeExecution) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::Server server(cfg);
  server.pause();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  serve::JobSpec job = copy_job(copy_kernel(), 32);
  job.deadline_ms = 0.001;  // expires while the server is paused
  serve::JobHandle h = server.submit(std::move(job));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.resume();
  const serve::Completion& c = h.wait();
  EXPECT_EQ(c.cls, serve::JobClass::Shed);
  EXPECT_NE(c.detail.find("deadline"), std::string::npos);
}

TEST_F(ServeTest, DeadlineBecomesWatchdogBudget) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.deadline_ms = 1000;   // generous wall-clock deadline...
  cfg.steps_per_ms = 10;    // ...but a 10k-step execution budget
  serve::Server server(cfg);
  const std::uint64_t trips_before = resil::counters().watchdog_trips.load();
  serve::JobSpec job;
  job.kernel = spin_kernel(2'000'000);
  job.device = &arch::gtx480();
  job.grid = {1, 1, 1};
  job.block = {32, 1, 1};
  job.args.push_back(serve::JobArg::buffer(
      s32_bytes(std::vector<std::int32_t>(32, 0)), /*readback=*/false));
  const serve::JobHandle h = server.submit(std::move(job));
  // The over-budget kernel terminates as a classified DeviceFault abort,
  // not a wall-clock stall.
  EXPECT_EQ(h.wait().cls, serve::JobClass::Abt);
  EXPECT_GT(resil::counters().watchdog_trips.load(), trips_before);
}

// ---------------------------------------------------------------------------
// Per-job fault plans + circuit breaker

TEST_F(ServeTest, ThreadPlanOverrideScopesToJob) {
  auto local = plan_with(resil::Site::Build, 1.0, 7);
  EXPECT_FALSE(resil::armed());
  {
    resil::ThreadPlanScope scope(local.get());
    EXPECT_TRUE(resil::armed());
    EXPECT_TRUE(resil::sample(resil::Site::Build, "x").has_value());
    EXPECT_EQ(local->injections(resil::Site::Build), 1u);
  }
  EXPECT_FALSE(resil::armed());
  // The process-wide plan never saw the sample.
  EXPECT_EQ(resil::FaultPlan::instance().calls(resil::Site::Build), 0u);
}

TEST_F(ServeTest, PerJobFaultPlanIsDeterministic) {
  serve::ServeConfig cfg;
  cfg.workers = 2;
  serve::Server server(cfg);
  const auto k = copy_kernel();
  // A faulted job aborts; its neighbours (no plan) are untouched.
  serve::JobSpec bad = copy_job(k, 32);
  bad.fault_plan = plan_with(resil::Site::MidGrid, 1.0, 42);
  serve::JobHandle hb = server.submit(std::move(bad));
  serve::JobHandle ok1 = server.submit(copy_job(k, 32));
  serve::JobHandle ok2 = server.submit(copy_job(k, 32));
  const serve::Completion& cb = hb.wait();
  EXPECT_EQ(cb.cls, serve::JobClass::Abt);
  EXPECT_NE(cb.detail.find("midgrid"), std::string::npos);
  EXPECT_EQ(ok1.wait().cls, serve::JobClass::Ok);
  EXPECT_EQ(ok2.wait().cls, serve::JobClass::Ok);
}

TEST_F(ServeTest, BreakerTripsOpensAndSheds) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.breaker = 2;
  cfg.breaker_cooldown_ms = 60'000;  // stays open for the rest of the test
  serve::Server server(cfg);
  const auto k = copy_kernel();
  for (int i = 0; i < 2; ++i) {
    serve::JobSpec bad = copy_job(k, 32);
    bad.fault_plan = plan_with(resil::Site::MidGrid, 1.0, 42 + i);
    EXPECT_EQ(server.submit(std::move(bad)).wait().cls, serve::JobClass::Abt);
  }
  // Two consecutive DeviceFaults tripped the breaker: healthy jobs for the
  // same device are now shed during the cooldown.
  const serve::JobHandle hshed = server.submit(copy_job(k, 32));
  EXPECT_EQ(hshed.wait().cls, serve::JobClass::Shed);
  EXPECT_NE(hshed.wait().detail.find("circuit breaker open"),
            std::string::npos);
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.breaker_trips, 1u);
  EXPECT_EQ(s.abt, 2u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(resil::counters().breaker_trips.load(), 1u);
}

TEST_F(ServeTest, BreakerHalfOpenProbeClosesOnSuccess) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.breaker = 1;
  cfg.breaker_cooldown_ms = 0;  // next admission is immediately the probe
  serve::Server server(cfg);
  const auto k = copy_kernel();
  serve::JobSpec bad = copy_job(k, 32);
  bad.fault_plan = plan_with(resil::Site::MidGrid, 1.0, 9);
  EXPECT_EQ(server.submit(std::move(bad)).wait().cls, serve::JobClass::Abt);
  EXPECT_EQ(server.stats().breaker_trips, 1u);
  // Cooldown elapsed: the next job is the HalfOpen probe; its success
  // closes the breaker and normal service resumes.
  EXPECT_EQ(server.submit(copy_job(k, 32)).wait().cls, serve::JobClass::Ok);
  EXPECT_EQ(server.submit(copy_job(k, 32)).wait().cls, serve::JobClass::Ok);
  EXPECT_EQ(server.stats().breaker_trips, 1u);
}

TEST_F(ServeTest, BreakerFailedProbeReopens) {
  serve::ServeConfig cfg;
  cfg.workers = 1;
  cfg.breaker = 1;
  cfg.breaker_cooldown_ms = 0;
  serve::Server server(cfg);
  const auto k = copy_kernel();
  for (int i = 0; i < 2; ++i) {
    serve::JobSpec bad = copy_job(k, 32);
    bad.fault_plan = plan_with(resil::Site::MidGrid, 1.0, 100 + i);
    EXPECT_EQ(server.submit(std::move(bad)).wait().cls, serve::JobClass::Abt);
  }
  // First job tripped the breaker; the second was the HalfOpen probe and
  // its DeviceFault re-opened it — two trips total.
  EXPECT_EQ(server.stats().breaker_trips, 2u);
}

// ---------------------------------------------------------------------------
// gpc::virt quota pressure

TEST_F(ServeTest, TenantQuotaPressureDegradesGracefully) {
  virt::VirtConfig vcfg;
  vcfg.tenants = 2;
  vcfg.quota_bytes = std::size_t{1} << 20;  // 1 MiB per tenant
  vcfg.phys_bytes = std::size_t{16} << 20;
  virt::VirtualDeviceManager mgr(vcfg);
  serve::ServeConfig cfg;
  cfg.workers = 1;
  serve::Server server(cfg);
  server.attach_virt(&mgr);

  // Over-quota tenant job: classified ABT, never a crash or a hang.
  serve::JobSpec big = copy_job(copy_kernel(), 32);
  big.tenant = 0;
  big.args[0] = serve::JobArg::buffer(
      std::vector<unsigned char>(std::size_t{2} << 20, 0xAB), false);
  const serve::JobHandle hb = server.submit(std::move(big));
  EXPECT_EQ(hb.wait().cls, serve::JobClass::Abt);

  // The neighbour tenant is unaffected.
  serve::JobSpec small = copy_job(copy_kernel(), 32);
  small.tenant = 1;
  const serve::JobHandle hs = server.submit(std::move(small));
  EXPECT_EQ(hs.wait().cls, serve::JobClass::Ok);

  // Out-of-range tenant id is a submit-time InvalidArgument.
  serve::JobSpec bad = copy_job(copy_kernel(), 32);
  bad.tenant = 7;
  EXPECT_THROW(server.submit(std::move(bad)), InvalidArgument);
  server.shutdown();
}

// ---------------------------------------------------------------------------
// Exactly-once accounting through shutdown + concurrency

TEST_F(ServeTest, ShutdownAccountsEveryJobExactlyOnce) {
  serve::ServeConfig cfg;
  cfg.workers = 2;
  cfg.shards = 2;
  serve::Server server(cfg);
  const auto k = copy_kernel();
  std::vector<serve::JobHandle> handles;
  for (int i = 0; i < 24; ++i) handles.push_back(server.submit(copy_job(k, 32)));
  server.shutdown();
  for (const auto& h : handles) EXPECT_TRUE(h.done());
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.submitted, 24u);
  EXPECT_EQ(s.completed, 24u);
  EXPECT_EQ(s.ok + s.deg + s.abt + s.shed, 24u);
  // Submits after shutdown shed immediately — still exactly one completion.
  serve::JobHandle late = server.submit(copy_job(k, 32));
  EXPECT_EQ(late.wait().cls, serve::JobClass::Shed);
  EXPECT_NE(late.wait().detail.find("shut down"), std::string::npos);
  EXPECT_EQ(server.stats().completed, 25u);
}

TEST_F(ServeTest, ConcurrentMixedLoadCompletesEverything) {
  serve::ServeConfig cfg;
  cfg.workers = 4;
  cfg.shards = 2;
  cfg.batch = 4;
  serve::Server server(cfg);
  const auto copy = copy_kernel();
  const auto scale = scale_kernel(5);
  constexpr int kJobs = 96;
  std::vector<serve::JobHandle> handles;
  handles.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    serve::JobSpec job = copy_job(i % 2 == 0 ? copy : scale, 32);
    handles.push_back(server.submit(std::move(job)));
  }
  server.drain();
  for (int i = 0; i < kJobs; ++i) {
    const serve::Completion& c = handles[static_cast<std::size_t>(i)].wait();
    ASSERT_EQ(c.cls, serve::JobClass::Ok) << c.detail;
    const std::vector<std::int32_t> out = s32_values(c.outputs[0]);
    const int factor = i % 2 == 0 ? 1 : 5;
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(out[static_cast<std::size_t>(j)], j * 3 * factor);
    }
  }
  server.shutdown();
  const serve::Server::Stats s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(s.ok, static_cast<std::uint64_t>(kJobs));
  // Exactly one compile per distinct (AST, front-end, device).
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.cache_hits, static_cast<std::uint64_t>(kJobs) - 2u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_EQ(s.batched_jobs, static_cast<std::uint64_t>(kJobs));
}

}  // namespace
}  // namespace gpc
